/**
 * @file
 * Reproduces **Fig. 7**: APC's Memcached power savings and performance
 * impact —
 *   (a) idle SoC+DRAM power for Cshallow / CPC1A / Cdeep,
 *   (b) power and savings vs request rate (CPC1A vs Cshallow),
 *   (c) average-latency impact vs request rate (<0.1%).
 * Also prints the Sec. 1 headline: up to 41% energy savings, ~25% on
 * average over the low-load operating range.
 */

#include "bench_common.h"

using namespace apc;

int
main()
{
    bench::banner("Fig. 7: PC1A power savings & performance impact");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    // (a) Idle power.
    const auto idle_sh = bench::runIdle(soc::PackagePolicy::Cshallow);
    const auto idle_apc = bench::runIdle(soc::PackagePolicy::Cpc1a);
    const auto idle_dp = bench::runIdle(soc::PackagePolicy::Cdeep);

    TablePrinter a("Fig. 7(a) — idle SoC+DRAM power");
    a.header({"Config", "Power (sim)", "Power (paper)"});
    a.row({"Cshallow", TablePrinter::watts(idle_sh.totalPowerW()),
           "49.5W"});
    a.row({"C_PC1A", TablePrinter::watts(idle_apc.totalPowerW()),
           "29.1W"});
    a.row({"Cdeep", TablePrinter::watts(idle_dp.totalPowerW()),
           "12.5W"});
    a.print();
    std::printf("Idle reduction C_PC1A vs Cshallow: %s (paper: 41%%)\n",
                TablePrinter::percent(1.0 - idle_apc.totalPowerW() /
                                      idle_sh.totalPowerW()).c_str());

    // (b)+(c) Load sweep.
    const double qps_points[] = {4e3, 10e3, 25e3, 50e3, 75e3, 100e3};
    TablePrinter b("Fig. 7(b,c) — power & latency vs load");
    b.header({"QPS", "Cshallow W", "C_PC1A W", "Savings", "paper",
              "lat Cshallow us", "lat C_PC1A us", "impact"});
    double savings_sum = 0;
    int n = 0;
    for (const double qps : qps_points) {
        const auto wl = workload::WorkloadConfig::memcachedEtc(qps);
        const auto sh =
            bench::runServer(soc::PackagePolicy::Cshallow, wl);
        const auto apc = bench::runServer(soc::PackagePolicy::Cpc1a, wl);
        const double savings =
            1.0 - apc.totalPowerW() / sh.totalPowerW();
        const double impact =
            (apc.avgLatencyUs - sh.avgLatencyUs) / sh.avgLatencyUs;
        savings_sum += savings;
        ++n;
        std::string paper = "-";
        if (qps == 4e3)
            paper = "37%";
        else if (qps == 50e3)
            paper = "14%";
        b.row({TablePrinter::num(qps / 1000, 0) + "K",
               TablePrinter::num(sh.totalPowerW()),
               TablePrinter::num(apc.totalPowerW()),
               TablePrinter::percent(savings), paper,
               TablePrinter::num(sh.avgLatencyUs, 2),
               TablePrinter::num(apc.avgLatencyUs, 2),
               TablePrinter::percent(impact, 3)});
    }
    b.print();
    std::printf("\nAverage savings over the low-load range: %s "
                "(paper: ~25%% avg, up to 41%%); paper bound on "
                "latency impact: <0.1%%\n",
                TablePrinter::percent(savings_sum / n).c_str());
    return 0;
}
