/**
 * @file
 * Reproduces **Fig. 6**: the PC1A opportunity for Memcached on the
 * Cshallow baseline —
 *   (a) per-core CC0/CC1 residency vs request rate,
 *   (b) PC1A residency (all cores simultaneously in CC1, measured with
 *       the SoCWatch 10 µs floor) vs request rate,
 *   (c) the distribution of fully-idle period lengths at low load.
 */

#include "bench_common.h"

using namespace apc;

int
main()
{
    bench::banner("Fig. 6: PC1A opportunity (Memcached, Cshallow)");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    const double qps_points[] = {4e3, 10e3, 25e3, 50e3, 75e3, 100e3};

    TablePrinter a("Fig. 6(a,b) — residency vs load (Cshallow)");
    a.header({"QPS", "CC0 (util)", "CC1", "all-idle", "PC1A opp. "
              "(SoCWatch >=10us)", "paper"});
    std::vector<server::ServerResult> runs;
    for (const double qps : qps_points) {
        const auto wl = workload::WorkloadConfig::memcachedEtc(qps);
        auto r = bench::runServer(soc::PackagePolicy::Cshallow, wl);
        std::string paper = "-";
        if (qps == 4e3)
            paper = "77%";
        else if (qps == 50e3)
            paper = "20%";
        else if (qps == 100e3)
            paper = ">=12%";
        a.row({TablePrinter::num(qps / 1000, 0) + "K",
               TablePrinter::percent(r.utilization),
               TablePrinter::percent(r.coreResidency[1]),
               TablePrinter::percent(r.allIdleFraction),
               TablePrinter::percent(r.socWatchIdleFraction), paper});
        runs.push_back(std::move(r));
    }
    a.print();

    // Fig. 6(c): idle-period length distribution at low load.
    const auto &low = runs.front();
    TablePrinter c("Fig. 6(c) — fully-idle period lengths at 4K QPS");
    c.header({"Bucket", "Fraction", "Paper"});
    c.row({"< 10 us", TablePrinter::percent(
                          low.idlePeriodFraction(0.001, 10.0)), "-"});
    c.row({"10-20 us", TablePrinter::percent(
                           low.idlePeriodFraction(10.0, 20.0)), "-"});
    c.row({"20-200 us", TablePrinter::percent(
                            low.idlePeriodFraction(20.0, 200.0)),
           "~60%"});
    c.row({"200us-1ms", TablePrinter::percent(
                            low.idlePeriodFraction(200.0, 1000.0)), "-"});
    c.row({"> 1 ms", TablePrinter::percent(
                         low.idlePeriodFraction(1000.0, 1e9)), "-"});
    c.print();
    std::printf("\nPC1A transition (<=200ns) is ~100x shorter than the "
                "dominant idle-period bucket; PC6 (>50us) is not.\n");
    return 0;
}
