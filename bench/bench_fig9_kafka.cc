/**
 * @file
 * Reproduces **Fig. 9**: Kafka at low/high request rates (8% / 16%
 * processor load): (a) residency (paper: 15–47% PC1A opportunity),
 * (b) average power reduction (paper: 9–19%).
 */

#include "bench_common.h"

using namespace apc;

int
main()
{
    bench::banner("Fig. 9: Kafka residency & power reduction");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    const auto base_wl = workload::WorkloadConfig::kafka(0);
    struct Point
    {
        const char *name;
        double util;
        const char *paper_savings;
    };
    const Point points[] = {{"low (8%)", 0.08, "~19%"},
                            {"high (16%)", 0.16, "~9%"}};

    TablePrinter t("Fig. 9 — Kafka");
    t.header({"Load", "QPS", "util (sim)", "CC0", "CC1",
              "PC1A res. (paper 15-47%)", "Savings", "paper"});
    for (const auto &p : points) {
        const double qps = base_wl.qpsForUtilization(p.util, 10);
        const auto wl = workload::WorkloadConfig::kafka(qps);
        const auto sh =
            bench::runServer(soc::PackagePolicy::Cshallow, wl);
        const auto apc = bench::runServer(soc::PackagePolicy::Cpc1a, wl);
        const double savings =
            1.0 - apc.totalPowerW() / sh.totalPowerW();
        t.row({p.name, TablePrinter::num(qps, 0),
               TablePrinter::percent(sh.utilization),
               TablePrinter::percent(sh.coreResidency[0]),
               TablePrinter::percent(sh.coreResidency[1]),
               TablePrinter::percent(apc.pc1aResidency()),
               TablePrinter::percent(savings), p.paper_savings});
    }
    t.print();

    const auto idle_sh = bench::runIdle(soc::PackagePolicy::Cshallow);
    const auto idle_apc = bench::runIdle(soc::PackagePolicy::Cpc1a);
    std::printf("\nFully idle server reduction: %s (paper: 41%%). "
                "Latency impact (paper): <0.01%% for Kafka/MySQL.\n",
                TablePrinter::percent(1.0 - idle_apc.totalPowerW() /
                                      idle_sh.totalPowerW()).c_str());
    return 0;
}
