/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Each bench binary reproduces one table or figure from the paper and
 * prints the paper-reported value next to the simulator-measured one.
 * Durations are sized for seconds-scale wall-clock runs; set
 * APC_BENCH_DURATION_MS to lengthen/shorten the measurement window.
 */

#ifndef APC_BENCH_BENCH_COMMON_H
#define APC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "analysis/paper_reference.h"
#include "analysis/table_printer.h"
#include "fleet/fleet_sim.h"
#include "obs/fmt.h"
#include "server/server_sim.h"

namespace apc::bench {

/** Measurement window, overridable via APC_BENCH_DURATION_MS. */
inline sim::Tick
benchDuration(sim::Tick fallback = 300 * sim::kMs)
{
    if (const char *env = std::getenv("APC_BENCH_DURATION_MS"))
        if (const auto ms = std::atoll(env); ms > 0)
            return static_cast<sim::Tick>(ms) * sim::kMs;
    return fallback;
}

/** Run one server experiment (optionally with the ondemand DVFS
 *  governor enabled — the paper's Sec. 8 comparison axis). */
inline server::ServerResult
runServer(soc::PackagePolicy policy, const workload::WorkloadConfig &wl,
          sim::Tick duration = 0, std::uint64_t seed = 42,
          bool dvfs = false)
{
    server::ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = wl;
    cfg.duration = duration > 0 ? duration : benchDuration();
    cfg.seed = seed;
    cfg.dvfs.enabled = dvfs;
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

/** Idle-system measurement under a policy (0 QPS, housekeeping only). */
inline server::ServerResult
runIdle(soc::PackagePolicy policy, sim::Tick duration = 100 * sim::kMs)
{
    return runServer(policy, workload::WorkloadConfig::memcachedEtc(0),
                     duration);
}

/**
 * The latency column block every bench used to assemble by hand:
 * "avg | [p95] | p99" for one server result.
 */
inline std::vector<std::string>
latencyCols(const server::ServerResult &r, int prec = 1,
            bool with_p95 = true)
{
    using analysis::TablePrinter;
    std::vector<std::string> cols{TablePrinter::num(r.avgLatencyUs,
                                                    prec)};
    if (with_p95)
        cols.push_back(TablePrinter::num(r.p95LatencyUs, prec));
    cols.push_back(TablePrinter::num(r.p99LatencyUs, prec));
    return cols;
}

/** Append a column block to a row under construction. */
inline void
appendCols(std::vector<std::string> &row, std::vector<std::string> cols)
{
    for (auto &c : cols)
        row.push_back(std::move(c));
}

/** Header labels matching fleetCols(). */
inline std::vector<std::string>
fleetColHeaders()
{
    return {"Fleet W", "J/req", "p99 (us)", "SLO ok", "PC1A res",
            "QPS"};
}

/** The fleet benches' shared metric block. */
inline std::vector<std::string>
fleetCols(const fleet::FleetReport &r)
{
    using analysis::TablePrinter;
    return {TablePrinter::watts(r.totalPowerW()),
            TablePrinter::num(r.joulesPerRequest, 4),
            TablePrinter::num(r.p99LatencyUs, 0),
            r.p99LatencyUs <= r.sloUs ? "yes" : "NO",
            TablePrinter::percent(r.pc1aResidency()),
            TablePrinter::num(r.achievedQps, 0)};
}

/** Schema revision stamped into every BENCH_*.json summary. Bump when
 *  a field is added/renamed so trajectory tooling can gate on it.
 *  v3: health block (alerts_fired/worst_burn/time_in_violation_us/
 *  audit_violations) on capped sweep points + the breaker scenario.
 *  v4: BENCH_churn.json — fault-injection scenario grid with
 *  availability, crash-loss/failover/timeout counters and the
 *  layout-determinism verdict. */
inline constexpr int kBenchJsonSchemaVersion = 4;

/**
 * Turn on tail-latency attribution for a bench fleet run. Attribution
 * implies tracing, which is zero-footprint (the report stays
 * byte-identical), but bench windows are seconds-scale, so give the
 * rings enough headroom that the fleet spine does not wrap and drop
 * the oldest request chains. Memory is committed only as records are
 * written.
 */
inline void
enableAttribution(fleet::FleetConfig &fc,
                  std::size_t ring_capacity = std::size_t{1} << 22)
{
    fc.attribution.enabled = true;
    fc.trace.ringCapacity = ring_capacity;
}

/**
 * Tail blame block for the bench tables: mean above-p99 microseconds
 * charged to two segments of interest, plus the segment dominating
 * tail critical paths overall.
 */
inline std::vector<std::string>
blameCols(const fleet::FleetReport &r, obs::Segment a, obs::Segment b)
{
    using analysis::TablePrinter;
    return {TablePrinter::num(r.attribution.tailMeanUs(a), 1),
            TablePrinter::num(r.attribution.tailMeanUs(b), 1),
            obs::segmentName(r.attribution.tailDominant())};
}

/** CSV fields matching blameCsvCols(). */
inline std::string
blameCsvHeader(obs::Segment a, obs::Segment b)
{
    return std::string("tail_") + obs::segmentName(a) + "_us,tail_" +
        obs::segmentName(b) + "_us,tail_dominant";
}

/** Round-trip-exact CSV row fragment for the blame columns. */
inline std::string
blameCsvCols(const fleet::FleetReport &r, obs::Segment a,
             obs::Segment b)
{
    return std::string(obs::fmtDouble(r.attribution.tailMeanUs(a))
                           .c_str()) +
        "," + obs::fmtDouble(r.attribution.tailMeanUs(b)).c_str() +
        "," + obs::segmentName(r.attribution.tailDominant());
}

/**
 * Turn on fleet health monitoring (obs/health.h) for a bench run: SLO
 * burn-rate alerting plus the epoch-boundary invariant auditor. Same
 * zero-footprint contract as attribution — the headline report bytes
 * do not change — so benches surface alert/audit columns for free.
 */
inline void
enableHealth(fleet::FleetConfig &fc)
{
    fc.health.enabled = true;
}

/** Header labels matching healthCols(). */
inline std::vector<std::string>
healthColHeaders()
{
    return {"alerts", "burn", "viol ms", "audit"};
}

/** Health block for the bench tables: burn-rate alerts fired, worst
 *  sustained burn, sim-time spent in violation, audit violations. */
inline std::vector<std::string>
healthCols(const fleet::FleetReport &r)
{
    using analysis::TablePrinter;
    return {TablePrinter::num(
                static_cast<double>(r.health.alertsFired), 0),
            TablePrinter::num(r.health.worstBurn, 1),
            TablePrinter::num(r.health.timeInViolationUs() / 1000.0, 1),
            TablePrinter::num(
                static_cast<double>(r.health.auditViolations), 0)};
}

/** CSV fields matching healthCsvCols(). */
inline std::string
healthCsvHeader()
{
    return "alerts_fired,worst_burn,time_in_violation_us,"
           "audit_violations";
}

/** Round-trip-exact CSV row fragment for the health columns. */
inline std::string
healthCsvCols(const fleet::FleetReport &r)
{
    return std::to_string(r.health.alertsFired) + "," +
        obs::fmtDouble(r.health.worstBurn).c_str() + "," +
        obs::fmtFixed(r.health.timeInViolationUs(), 3).c_str() + "," +
        std::to_string(r.health.auditViolations);
}

/**
 * Fleet sweep-point setup shared by the fleet benches: N C_PC1A
 * servers under MMPP arrivals sized to the given aggregate load.
 */
inline fleet::FleetConfig
fleetLoadConfig(std::size_t num_servers, fleet::DispatchKind kind,
                double util, workload::WorkloadConfig wl)
{
    fleet::FleetConfig fc;
    fc.numServers = num_servers;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = std::move(wl);
    fc.dispatch = kind;
    fc.traffic.arrivalKind = workload::ArrivalKind::Mmpp;
    fc.traffic.burstiness = fc.workload.burstiness;
    fc.traffic.burstMean = fc.workload.burstMean;
    const int fleet_cores = static_cast<int>(num_servers) *
        soc::SkxConfig::forPolicy(fc.policy).numCores;
    fc.traffic.qps = fc.workload.qpsForUtilization(util, fleet_cores);
    fc.sloUs = 10000.0;
    fc.duration = benchDuration(300 * sim::kMs);
    return fc;
}

/**
 * CSV sink named by APC_BENCH_CSV (null when unset): benches append
 * sweep rows there so plots don't scrape stdout. Close with closeCsv()
 * so a full disk surfaces as a failure, not a truncated file.
 */
inline std::FILE *
csvSink()
{
    const char *path = std::getenv("APC_BENCH_CSV");
    return path && *path ? std::fopen(path, "w") : nullptr;
}

/** Flush-and-close a CSV sink, propagating buffered-write failures.
 *  Null is fine (no sink). @return false on IO failure. */
inline bool
closeCsv(std::FILE *csv)
{
    if (!csv)
        return true;
    bool ok = std::fflush(csv) == 0 && !std::ferror(csv);
    if (std::fclose(csv) != 0)
        ok = false;
    if (!ok)
        std::fprintf(stderr, "error: CSV sink write failed\n");
    return ok;
}

/** Banner helper. */
inline void
banner(const char *what)
{
    std::printf("\n############################################"
                "####################\n"
                "# AgilePkgC reproduction — %s\n"
                "############################################"
                "####################\n",
                what);
}

} // namespace apc::bench

#endif // APC_BENCH_BENCH_COMMON_H
