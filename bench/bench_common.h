/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Each bench binary reproduces one table or figure from the paper and
 * prints the paper-reported value next to the simulator-measured one.
 * Durations are sized for seconds-scale wall-clock runs; set
 * APC_BENCH_DURATION_MS to lengthen/shorten the measurement window.
 */

#ifndef APC_BENCH_BENCH_COMMON_H
#define APC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/paper_reference.h"
#include "analysis/table_printer.h"
#include "server/server_sim.h"

namespace apc::bench {

/** Measurement window, overridable via APC_BENCH_DURATION_MS. */
inline sim::Tick
benchDuration(sim::Tick fallback = 300 * sim::kMs)
{
    if (const char *env = std::getenv("APC_BENCH_DURATION_MS"))
        if (const auto ms = std::atoll(env); ms > 0)
            return static_cast<sim::Tick>(ms) * sim::kMs;
    return fallback;
}

/** Run one server experiment. */
inline server::ServerResult
runServer(soc::PackagePolicy policy, const workload::WorkloadConfig &wl,
          sim::Tick duration = 0, std::uint64_t seed = 42)
{
    server::ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = wl;
    cfg.duration = duration > 0 ? duration : benchDuration();
    cfg.seed = seed;
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

/** Idle-system measurement under a policy (0 QPS, housekeeping only). */
inline server::ServerResult
runIdle(soc::PackagePolicy policy, sim::Tick duration = 100 * sim::kMs)
{
    return runServer(policy, workload::WorkloadConfig::memcachedEtc(0),
                     duration);
}

/** Banner helper. */
inline void
banner(const char *what)
{
    std::printf("\n############################################"
                "####################\n"
                "# AgilePkgC reproduction — %s\n"
                "############################################"
                "####################\n",
                what);
}

} // namespace apc::bench

#endif // APC_BENCH_BENCH_COMMON_H
