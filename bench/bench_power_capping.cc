/**
 * @file
 * Power capping under rack oversubscription: DVFS vs idle injection.
 *
 * The production scenario the paper's energy-proportionality argument
 * ultimately serves: a rack provisioned for less than the sum of its
 * servers' peaks (the oversubscription ratio), every server enforcing
 * its allocated RAPL limit. The sweep crosses oversubscription ratio
 * with the capping actuator and reports, per point, whether the budget
 * held (violation rate), what it cost in tail latency versus the
 * uncapped fleet, and joules/request.
 *
 * Headline: with an agile package C-state, *forced idle injection* is
 * the better capping actuator at low utilization — the package sleeps
 * through the gates at nanosecond entry/exit cost, so the budget holds
 * with a markedly smaller p99 penalty than a DVFS clamp, which must
 * slow every request to shave watts that mostly aren't in the cores.
 *
 * APC_BENCH_DURATION_MS scales the per-point window; APC_BENCH_CSV
 * writes the sweep as CSV; APC_BENCH_JSON (default
 * "BENCH_powercap.json") names the machine-readable summary used as a
 * perf-trajectory baseline.
 */

#include "bench_common.h"

using namespace apc;

namespace {

struct Point
{
    double load = 0.0;
    double oversub = 0.0;
    cap::CapActuator actuator = cap::CapActuator::DvfsOnly;
    fleet::FleetReport rep;
    double p99UncappedUs = 0.0;

    bool
    metBudget() const
    {
        return rep.capViolationRate() < 0.01 &&
            rep.pkgPowerW <= rep.rackBudgetW * 1.05;
    }
};

fleet::FleetConfig
capConfig(double load, double oversub, cap::CapActuator act,
          bool capped)
{
    auto fc = bench::fleetLoadConfig(
        4, fleet::DispatchKind::LeastOutstanding, load,
        workload::WorkloadConfig::memcachedEtc(0));
    // Poisson arrivals: capping convergence, not burst response, is
    // what this sweep isolates.
    fc.workload.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.sloUs = 2000.0;
    fc.warmup = 40 * sim::kMs;
    fc.budget.enabled = capped;
    fc.budget.oversubscription = oversub;
    fc.cap.actuator = act;
    if (capped) {
        // Attribution answers the actuator question causally: is the
        // added tail an idle-injection gate stall or a DVFS slowdown?
        bench::enableAttribution(fc);
        // Health turns the same run into an SRE view: did the capping
        // transient burn enough SLO budget to page anyone?
        bench::enableHealth(fc);
        fc.health.slo.latencyThresholdUs = fc.sloUs;
    }
    return fc;
}

/** The breaker-trip scenario: a mid-window emergency derate sized to
 *  the bench duration, with a short violation grace so the burn-rate
 *  monitor sees the trip through its windows. */
fleet::FleetConfig
breakerConfig(double load, sim::Tick duration)
{
    auto fc = capConfig(load, 1.0, cap::CapActuator::IdleInject, true);
    fc.budget.breaker.enabled = true;
    fc.budget.breaker.at = fc.warmup + duration * 2 / 5;
    fc.budget.breaker.duration = duration * 3 / 10;
    fc.budget.breaker.factor = 0.35;
    fc.cap.settleTime = 2 * sim::kMs;
    return fc;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          const Point *idle15, const Point *dvfs15, double slo_us,
          const fleet::FleetConfig &trip_cfg,
          const fleet::FleetReport &trip)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"power_capping\",\n");
    std::fprintf(f, "  \"schema_version\": %d,\n",
                 bench::kBenchJsonSchemaVersion);
    std::fprintf(f, "  \"duration_ms\": %lld,\n",
                 static_cast<long long>(
                     bench::benchDuration(300 * sim::kMs) / sim::kMs));
    std::fprintf(f, "  \"servers\": 4,\n  \"slo_us\": %.1f,\n", slo_us);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"load\": %.2f, \"oversub\": %.2f, "
            "\"actuator\": \"%s\", \"rack_budget_w\": %.2f, "
            "\"pkg_w\": %.2f, \"j_per_req\": %.6f, "
            "\"p99_us\": %.1f, \"p99_uncapped_us\": %.1f, "
            "\"violation_rate\": %.4f, \"throttle_residency\": %.4f, "
            "\"perf_loss\": %.4f, \"budget_util\": %.4f, "
            "\"tail_stall_gate_us\": %s, \"tail_stall_dvfs_us\": %s, "
            "\"tail_dominant\": \"%s\", "
            "\"alerts_fired\": %llu, \"worst_burn\": %s, "
            "\"time_in_violation_us\": %s, \"audit_violations\": %llu, "
            "\"met_budget\": %s, \"met_slo\": %s}%s\n",
            p.load, p.oversub, cap::capActuatorName(p.actuator),
            p.rep.rackBudgetW, p.rep.pkgPowerW, p.rep.joulesPerRequest,
            p.rep.p99LatencyUs, p.p99UncappedUs,
            p.rep.capViolationRate(), p.rep.capThrottleResidency,
            p.rep.capPerfLoss, p.rep.budgetUtilization,
            obs::fmtDouble(p.rep.attribution.tailMeanUs(
                               obs::Segment::StallGate))
                .c_str(),
            obs::fmtDouble(p.rep.attribution.tailMeanUs(
                               obs::Segment::StallDvfs))
                .c_str(),
            obs::segmentName(p.rep.attribution.tailDominant()),
            static_cast<unsigned long long>(p.rep.health.alertsFired),
            obs::fmtDouble(p.rep.health.worstBurn).c_str(),
            obs::fmtFixed(p.rep.health.timeInViolationUs(), 3).c_str(),
            static_cast<unsigned long long>(
                p.rep.health.auditViolations),
            p.metBudget() ? "true" : "false",
            p.rep.p99LatencyUs <= slo_us ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"breaker\": {\"load\": %.2f, \"factor\": %.2f, "
        "\"at_ms\": %lld, \"duration_ms\": %lld, "
        "\"alerts_fired\": %llu, \"alerts_resolved\": %llu, "
        "\"worst_burn\": %s, \"worst_burn_sli\": \"%s\", "
        "\"time_in_violation_us\": %s, \"audit_violations\": %llu},\n",
        0.30, trip_cfg.budget.breaker.factor,
        static_cast<long long>(trip_cfg.budget.breaker.at / sim::kMs),
        static_cast<long long>(
            trip_cfg.budget.breaker.duration / sim::kMs),
        static_cast<unsigned long long>(trip.health.alertsFired),
        static_cast<unsigned long long>(trip.health.alertsResolved),
        obs::fmtDouble(trip.health.worstBurn).c_str(),
        obs::sliName(trip.health.worstBurnSli),
        obs::fmtFixed(trip.health.timeInViolationUs(), 3).c_str(),
        static_cast<unsigned long long>(trip.health.auditViolations));
    if (idle15 && dvfs15) {
        std::fprintf(
            f,
            "  \"headline\": {\"load\": %.2f, \"oversub\": %.2f, "
            "\"idle_p99_penalty_us\": %.1f, "
            "\"dvfs_p99_penalty_us\": %.1f, "
            "\"idle_violation_rate\": %.4f, "
            "\"dvfs_violation_rate\": %.4f, "
            "\"idle_met_budget\": %s, \"dvfs_met_budget\": %s}\n",
            idle15->load, idle15->oversub,
            idle15->rep.p99LatencyUs - idle15->p99UncappedUs,
            dvfs15->rep.p99LatencyUs - dvfs15->p99UncappedUs,
            idle15->rep.capViolationRate(),
            dvfs15->rep.capViolationRate(),
            idle15->metBudget() ? "true" : "false",
            dvfs15->metBudget() ? "true" : "false");
    } else {
        std::fprintf(f, "  \"headline\": null\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nWrote %s\n", path);
}

} // namespace

int
main()
{
    bench::banner("Power capping under rack oversubscription");
    using analysis::TablePrinter;

    const double loads[] = {0.15, 0.30};
    const double oversubs[] = {1.25, 1.5, 2.0};
    const cap::CapActuator actuators[] = {cap::CapActuator::DvfsOnly,
                                          cap::CapActuator::IdleInject,
                                          cap::CapActuator::Hybrid};
    const double slo_us = 2000.0;

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv, "load,oversub,actuator,%s,%s,%s\n",
                     fleet::FleetReport::csvHeader().c_str(),
                     bench::blameCsvHeader(obs::Segment::StallGate,
                                           obs::Segment::StallDvfs)
                         .c_str(),
                     bench::healthCsvHeader().c_str());

    TablePrinter t("4-server rack, Memcached-ETC, C_PC1A servers, "
                   "closed-loop capping to the allocated budget");
    std::vector<std::string> hdr{
        "Load", "Oversub", "Actuator", "Budget W", "Fleet W",
        "viol%", "throttle", "p99 (us)", "+p99 vs free",
        "J/req", "held", "t.gate us", "t.dvfs us", "tail blame"};
    bench::appendCols(hdr, bench::healthColHeaders());
    t.header(std::move(hdr));

    std::vector<Point> points;
    const Point *idleHead = nullptr, *dvfsHead = nullptr;
    for (const double load : loads) {
        // Uncapped reference for the latency penalty column.
        const auto free_ = fleet::FleetSim(
            capConfig(load, 1.0, cap::CapActuator::Hybrid, false))
                               .run();
        for (const double ov : oversubs)
            for (const cap::CapActuator act : actuators) {
                Point p;
                p.load = load;
                p.oversub = ov;
                p.actuator = act;
                p.rep =
                    fleet::FleetSim(capConfig(load, ov, act, true))
                        .run();
                p.p99UncappedUs = free_.p99LatencyUs;
                points.push_back(p);
                if (csv)
                    std::fprintf(csv, "%.2f,%.2f,%s,%s,%s,%s\n", load,
                                 ov, cap::capActuatorName(act),
                                 p.rep.csvRow().c_str(),
                                 bench::blameCsvCols(
                                     p.rep, obs::Segment::StallGate,
                                     obs::Segment::StallDvfs)
                                     .c_str(),
                                 bench::healthCsvCols(p.rep).c_str());
                std::vector<std::string> row{
                    TablePrinter::percent(load, 0),
                    TablePrinter::num(ov, 2) + "x",
                    cap::capActuatorName(act),
                    TablePrinter::num(p.rep.rackBudgetW, 1),
                    TablePrinter::num(p.rep.pkgPowerW, 1),
                    TablePrinter::percent(p.rep.capViolationRate()),
                    TablePrinter::percent(p.rep.capThrottleResidency),
                    TablePrinter::num(p.rep.p99LatencyUs, 0),
                    TablePrinter::num(p.rep.p99LatencyUs -
                                          p.p99UncappedUs,
                                      0),
                    TablePrinter::num(p.rep.joulesPerRequest, 4),
                    p.metBudget() ? "yes" : "NO"};
                bench::appendCols(
                    row, bench::blameCols(p.rep,
                                          obs::Segment::StallGate,
                                          obs::Segment::StallDvfs));
                bench::appendCols(row, bench::healthCols(p.rep));
                t.row(std::move(row));
            }
    }
    t.print();
    const bool csv_ok = bench::closeCsv(csv);

    // Headline comparison: 1.5x oversubscription at the higher of the
    // two low-load points.
    for (const Point &p : points) {
        if (p.load == loads[1] && p.oversub == 1.5) {
            if (p.actuator == cap::CapActuator::IdleInject)
                idleHead = &p;
            if (p.actuator == cap::CapActuator::DvfsOnly)
                dvfsHead = &p;
        }
    }
    if (idleHead && dvfsHead) {
        std::printf(
            "\nAt %.0f%% load under a 1.5x-oversubscribed rack budget:\n"
            "  idle-injection: %s the budget (viol %.1f%%), "
            "p99 penalty %+.0f us\n"
            "  DVFS-only:      %s the budget (viol %.1f%%), "
            "p99 penalty %+.0f us\n",
            loads[1] * 100,
            idleHead->metBudget() ? "holds" : "MISSES",
            idleHead->rep.capViolationRate() * 100,
            idleHead->rep.p99LatencyUs - idleHead->p99UncappedUs,
            dvfsHead->metBudget() ? "holds" : "MISSES",
            dvfsHead->rep.capViolationRate() * 100,
            dvfsHead->rep.p99LatencyUs - dvfsHead->p99UncappedUs);
        std::printf(
            "\nReading: a DVFS clamp must slow every request to shave "
            "watts that, at low utilization, mostly aren't in the "
            "cores; forced idle with an agile package C-state removes "
            "the uncore's share at nanosecond transition cost, so the "
            "budget holds with the smaller tail penalty — capping is "
            "another place where PC1A makes race-to-halt the right "
            "strategy.\n");
    }

    // Breaker-trip scenario: a mid-window emergency derate to 35% of
    // the rack budget — what does the SLO burn-rate monitor see while
    // the allocator sheds more than half the fleet's power?
    const fleet::FleetConfig trip_cfg =
        breakerConfig(0.30, bench::benchDuration(300 * sim::kMs));
    const auto trip = fleet::FleetSim(trip_cfg).run();
    std::printf(
        "\nBreaker trip (load 30%%, derate to %.0f%% for %lld ms): "
        "%llu burn-rate alert(s) fired (worst burn %.1f on the %s "
        "SLI), %.1f ms in violation, %llu audit violation(s)\n",
        trip_cfg.budget.breaker.factor * 100,
        static_cast<long long>(
            trip_cfg.budget.breaker.duration / sim::kMs),
        static_cast<unsigned long long>(trip.health.alertsFired),
        trip.health.worstBurn, obs::sliName(trip.health.worstBurnSli),
        trip.health.timeInViolationUs() / 1000.0,
        static_cast<unsigned long long>(trip.health.auditViolations));

    const char *json_path = std::getenv("APC_BENCH_JSON");
    writeJson(json_path && *json_path ? json_path
                                      : "BENCH_powercap.json",
              points, idleHead, dvfsHead, slo_us, trip_cfg, trip);
    return csv_ok ? 0 : 1;
}
