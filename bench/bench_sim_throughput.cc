/**
 * @file
 * Simulation-core throughput baseline: events/sec through the event
 * queue and end-to-end fleet wall-clock.
 *
 * Seeds the perf trajectory for the hot path every package-C-state
 * transition rides on. Three queue workloads model the short-horizon
 * timer mix a fleet sweep generates (hysteresis re-arms, rx-usecs
 * coalescing, cap sampling), each measured against an embedded copy of
 * the pre-overhaul queue (`std::function` + `shared_ptr` per event,
 * lazy tombstones) so the speedup is tracked release over release, plus
 * one end-to-end fleet run.
 *
 * Output: human-readable table on stdout and a machine-readable summary
 * at APC_BENCH_JSON (default "BENCH_simcore.json") — consumed by CI to
 * catch events/sec regressions.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "analysis/table_printer.h"
#include "bench_common.h"
#include "fleet/fleet_sim.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace apc {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * The pre-overhaul event queue, kept verbatim as the benchmark
 * baseline: one std::function plus one shared_ptr control block per
 * event, cancelled entries reaped only when they surface at the top of
 * the heap.
 */
class LegacyEventQueue
{
  public:
    struct State
    {
        bool cancelled = false;
        bool fired = false;
    };
    using Handle = std::shared_ptr<State>;

    sim::Tick now() const { return now_; }

    Handle
    scheduleAt(sim::Tick when, std::function<void()> fn)
    {
        auto state = std::make_shared<State>();
        heap_.push(Entry{when, nextSeq_++, std::move(fn), state});
        return state;
    }

    Handle
    scheduleAfter(sim::Tick delay, std::function<void()> fn)
    {
        return scheduleAt(now_ + delay, std::move(fn));
    }

    bool
    step()
    {
        while (!heap_.empty() && heap_.top().state->cancelled)
            heap_.pop();
        if (heap_.empty())
            return false;
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.state->fired = true;
        ++executed_;
        e.fn();
        return true;
    }

    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        sim::Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<State> state;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    sim::Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Workload 1 — timer churn: a fleet-scale population of
 * self-rescheduling timers with staggered microsecond horizons (the
 * hysteresis / cap-sampling / coalescing scale), the steady-state shape
 * of a multi-server sweep. Pure schedule+fire throughput. The callback
 * captures 24 bytes — representative of the simulator's component
 * callbacks (`this` plus a couple of scalars), and past
 * `std::function`'s 16-byte small-object buffer.
 */
template <typename Queue>
struct ChurnLane
{
    Queue *q;
    std::uint64_t *remaining;
    int lane;

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        q->scheduleAfter(500 * sim::kNs + lane * 37 * sim::kNs,
                         ChurnLane{q, remaining, lane});
    }
};

template <typename Queue>
std::uint64_t
runTimerChurn(Queue &q, std::uint64_t events)
{
    constexpr int kTimers = 1024;
    std::uint64_t remaining = events;
    for (int i = 0; i < kTimers; ++i)
        ChurnLane<Queue>{&q, &remaining, i}();
    while (q.step()) {
    }
    return q.executedEvents();
}

/**
 * Workload 2 — cancel/reschedule: every "request" re-arms a hysteresis
 * timer that is almost always cancelled before it fires (the rx-usecs /
 * per-request idle-timer pattern that used to leave one tombstone per
 * request in the heap).
 */
template <typename Queue, typename Handle>
struct CancelChurnState
{
    Queue *q;
    Handle timer{};
    std::uint64_t remaining;
    std::uint64_t ops = 0;
};

template <typename Queue, typename Handle>
struct CancelChurnRequest
{
    CancelChurnState<Queue, Handle> *s;

    void
    operator()() const
    {
        if (s->remaining == 0)
            return;
        --s->remaining;
        ++s->ops;
        if constexpr (std::is_same_v<Handle, sim::EventHandle>) {
            s->timer.cancel();
        } else {
            if (s->timer)
                s->timer->cancelled = true;
        }
        s->timer = s->q->scheduleAfter(50 * sim::kUs, [] {});
        s->q->scheduleAfter(300 * sim::kNs, CancelChurnRequest{s});
    }
};

template <typename Queue, typename Handle>
std::uint64_t
runCancelChurn(Queue &q, std::uint64_t requests)
{
    CancelChurnState<Queue, Handle> s{&q, {}, requests};
    CancelChurnRequest<Queue, Handle>{&s}();
    while (q.step()) {
    }
    return s.ops + q.executedEvents();
}

/**
 * Workload 3 — mixed horizons: short wheel-range timers interleaved
 * with far-future (heap-range) events, exercising the wheel/heap
 * boundary both ways.
 */
template <typename Queue>
struct MixedLane
{
    Queue *q;
    std::uint64_t *remaining;
    int lane;

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        const sim::Tick d = lane % 4 == 0
            ? 5 * sim::kMs + lane * sim::kUs // beyond the wheel horizon
            : 700 * sim::kNs + lane * 31 * sim::kNs;
        q->scheduleAfter(d,
                         MixedLane{q, remaining, (lane + 1) % 16});
    }
};

template <typename Queue>
std::uint64_t
runMixedHorizon(Queue &q, std::uint64_t events)
{
    std::uint64_t remaining = events;
    for (int lane = 0; lane < 16; ++lane)
        MixedLane<Queue>{&q, &remaining, lane}();
    while (q.step()) {
    }
    return q.executedEvents();
}

struct QueuePoint
{
    std::string workload;
    double pooledEps = 0;
    double legacyEps = 0;
    std::uint64_t events = 0;
    double speedup() const { return pooledEps / legacyEps; }
};

template <typename RunPooled, typename RunLegacy>
QueuePoint
measure(const char *name, std::uint64_t events, RunPooled pooled,
        RunLegacy legacy)
{
    QueuePoint p;
    p.workload = name;
    p.events = events;
    // Best-of-3: each rep runs on a fresh queue; taking the max damps
    // noisy-neighbor / frequency-scaling jitter on shared CI runners
    // (the first pooled rep also doubles as warmup).
    for (int rep = 0; rep < 3; ++rep) {
        {
            sim::EventQueue q;
            const auto t0 = Clock::now();
            const std::uint64_t n = pooled(q, events);
            p.pooledEps = std::max(
                p.pooledEps, static_cast<double>(n) / secondsSince(t0));
        }
        {
            LegacyEventQueue q;
            const auto t0 = Clock::now();
            const std::uint64_t n = legacy(q, events);
            p.legacyEps = std::max(
                p.legacyEps, static_cast<double>(n) / secondsSince(t0));
        }
    }
    return p;
}

double
speedupGeomean(const std::vector<QueuePoint> &points)
{
    double logSum = 0;
    for (const QueuePoint &p : points)
        logSum += std::log(p.speedup());
    return std::exp(logSum / static_cast<double>(points.size()));
}

struct FleetPoint
{
    double wallSec = 0;
    double simSec = 0;
    double qps = 0;
    double p99Us = 0;
};

FleetPoint
runFleet()
{
    fleet::FleetConfig fc = bench::fleetLoadConfig(
        8, fleet::DispatchKind::LeastOutstanding, 0.3,
        workload::WorkloadConfig::memcachedEtc(0));
    FleetPoint f;
    f.simSec = sim::toSeconds(fc.duration);
    fleet::FleetSim sim(fc);
    const auto t0 = Clock::now();
    const fleet::FleetReport rep = sim.run();
    f.wallSec = secondsSince(t0);
    f.qps = rep.achievedQps;
    f.p99Us = rep.p99LatencyUs;
    return f;
}

void
writeJson(const char *path, const std::vector<QueuePoint> &points,
          const FleetPoint &fleet, std::uint64_t events)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
    std::fprintf(f, "  \"schema_version\": %d,\n",
                 bench::kBenchJsonSchemaVersion);
    std::fprintf(f, "  \"events_per_workload\": %llu,\n",
                 static_cast<unsigned long long>(events));
    std::fprintf(f, "  \"queue\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const QueuePoint &p = points[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", "
                     "\"events_per_sec\": %.0f, "
                     "\"legacy_events_per_sec\": %.0f, "
                     "\"speedup\": %.2f}%s\n",
                     p.workload.c_str(), p.pooledEps, p.legacyEps,
                     p.speedup(), i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_geomean\": %.2f,\n",
                 speedupGeomean(points));
    std::fprintf(f,
                 "  \"fleet\": {\"servers\": 8, \"wall_sec\": %.3f, "
                 "\"sim_sec\": %.3f, \"sim_per_wall\": %.2f, "
                 "\"qps\": %.0f, \"p99_us\": %.1f}\n",
                 fleet.wallSec, fleet.simSec,
                 fleet.simSec / fleet.wallSec, fleet.qps, fleet.p99Us);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nWrote %s\n", path);
}

} // namespace
} // namespace apc

int
main()
{
    using namespace apc;
    using analysis::TablePrinter;

    bench::banner("simulation-core throughput");

    // Scale event count off the shared duration knob so the CI smoke
    // run (APC_BENCH_DURATION_MS=40) finishes in well under a second.
    const std::uint64_t events = static_cast<std::uint64_t>(
        bench::benchDuration(300 * sim::kMs) / sim::kMs) * 10000;

    std::vector<QueuePoint> points;
    points.push_back(measure(
        "timer_churn", events,
        [](sim::EventQueue &q, std::uint64_t n) {
            return runTimerChurn(q, n);
        },
        [](LegacyEventQueue &q, std::uint64_t n) {
            return runTimerChurn(q, n);
        }));
    points.push_back(measure(
        "cancel_reschedule", events,
        [](sim::EventQueue &q, std::uint64_t n) {
            return runCancelChurn<sim::EventQueue, sim::EventHandle>(q,
                                                                     n);
        },
        [](LegacyEventQueue &q, std::uint64_t n) {
            return runCancelChurn<LegacyEventQueue,
                                  LegacyEventQueue::Handle>(q, n);
        }));
    points.push_back(measure(
        "mixed_horizon", events,
        [](sim::EventQueue &q, std::uint64_t n) {
            return runMixedHorizon(q, n);
        },
        [](LegacyEventQueue &q, std::uint64_t n) {
            return runMixedHorizon(q, n);
        }));

    TablePrinter t("Event-queue throughput, pooled+wheel vs legacy");
    t.header({"Workload", "Pooled Mev/s", "Legacy Mev/s", "Speedup"});
    for (const QueuePoint &p : points)
        t.row({p.workload, TablePrinter::num(p.pooledEps / 1e6, 2),
               TablePrinter::num(p.legacyEps / 1e6, 2),
               TablePrinter::num(p.speedup(), 2)});
    t.print();
    std::printf("(events/sec in millions; legacy = pre-overhaul "
                "std::function/shared_ptr heap queue)\n"
                "Aggregate speedup (geomean): %.2fx\n",
                speedupGeomean(points));

    const FleetPoint fleet = runFleet();
    std::printf("\nEnd-to-end fleet (8 servers, 30%% load): %.3f s "
                "wall for %.3f s simulated (%.1fx real time), "
                "qps %.0f, p99 %.0f us\n",
                fleet.wallSec, fleet.simSec, fleet.simSec / fleet.wallSec,
                fleet.qps, fleet.p99Us);

    const char *json_path = std::getenv("APC_BENCH_JSON");
    writeJson(json_path && *json_path ? json_path
                                      : "BENCH_simcore.json",
              points, fleet, events);
    return 0;
}
