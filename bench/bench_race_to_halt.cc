/**
 * @file
 * Reproduces the **Sec. 8** argument: with a nanosecond-scale package
 * C-state available, simple *race-to-halt* (run at nominal frequency,
 * sleep deeply and quickly) beats ondemand-style DVFS management for
 * latency-critical services.
 *
 * Compares, across the low-load range:
 *   1. Cshallow @ nominal        (the datacenter baseline),
 *   2. Cshallow + ondemand DVFS  (the classic power-management answer),
 *   3. CPC1A @ nominal           (race-to-halt with APC).
 *
 * APC_BENCH_DURATION_MS scales the per-point window; APC_BENCH_CSV
 * writes one record per (qps, config) point.
 */

#include "bench_common.h"

using namespace apc;

namespace {

struct Config
{
    const char *name;
    soc::PackagePolicy policy;
    bool dvfs;
};

} // namespace

int
main()
{
    bench::banner("Sec. 8: race-to-halt (PC1A) vs DVFS management");
    using analysis::TablePrinter;

    const double qps_points[] = {4e3, 25e3, 50e3, 100e3};
    const Config configs[] = {
        {"baseline", soc::PackagePolicy::Cshallow, false},
        {"ondemand", soc::PackagePolicy::Cshallow, true},
        {"apc-rth", soc::PackagePolicy::Cpc1a, false},
    };

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv, "qps,config,pkg_w,dram_w,total_w,"
                          "avg_us,p95_us,p99_us\n");

    TablePrinter t("Power and latency: baseline vs ondemand DVFS vs "
                   "APC race-to-halt");
    t.header({"QPS", "Config", "Total W", "avg (us)", "p95 (us)",
              "p99 (us)"});
    double dvfs_savings = 0, apc_savings = 0;
    double dvfs_tail_cost = 0, apc_tail_cost = 0;
    int n = 0;
    for (const double qps : qps_points) {
        const auto wl = workload::WorkloadConfig::memcachedEtc(qps);
        double base_w = 0, base_p99 = 0;
        for (const Config &c : configs) {
            const auto r = bench::runServer(c.policy, wl, 0, 42, c.dvfs);
            std::vector<std::string> row{
                TablePrinter::num(qps / 1000, 0) + "K", c.name,
                TablePrinter::num(r.totalPowerW())};
            bench::appendCols(row, bench::latencyCols(r));
            t.row(std::move(row));
            if (csv)
                std::fprintf(csv, "%.0f,%s,%.3f,%.3f,%.3f,"
                                  "%.2f,%.2f,%.2f\n",
                             qps, c.name, r.pkgPowerW, r.dramPowerW,
                             r.totalPowerW(), r.avgLatencyUs,
                             r.p95LatencyUs, r.p99LatencyUs);
            if (c.policy == soc::PackagePolicy::Cshallow && !c.dvfs) {
                base_w = r.totalPowerW();
                base_p99 = r.p99LatencyUs;
            } else if (c.dvfs) {
                dvfs_savings += 1.0 - r.totalPowerW() / base_w;
                dvfs_tail_cost += r.p99LatencyUs / base_p99 - 1.0;
            } else {
                apc_savings += 1.0 - r.totalPowerW() / base_w;
                apc_tail_cost += r.p99LatencyUs / base_p99 - 1.0;
                ++n;
            }
        }
    }
    t.print();
    const bool csv_ok = bench::closeCsv(csv);

    std::printf("\nAverages over the sweep: DVFS saves %s with +%s p99; "
                "APC race-to-halt saves %s with %s p99 cost.\n",
                TablePrinter::percent(dvfs_savings / n).c_str(),
                TablePrinter::percent(dvfs_tail_cost / n).c_str(),
                TablePrinter::percent(apc_savings / n).c_str(),
                TablePrinter::percent(apc_tail_cost / n).c_str());
    std::printf("Paper Sec. 8: \"The new PC1A state of APC ... makes a "
                "simple race-to-halt approach more attractive compared "
                "to complex DVFS management techniques.\"\n");
    return csv_ok ? 0 : 1;
}
