/**
 * @file
 * Reproduces the **Sec. 8** argument: with a nanosecond-scale package
 * C-state available, simple *race-to-halt* (run at nominal frequency,
 * sleep deeply and quickly) beats ondemand-style DVFS management for
 * latency-critical services.
 *
 * Compares, across the low-load range:
 *   1. Cshallow @ nominal        (the datacenter baseline),
 *   2. Cshallow + ondemand DVFS  (the classic power-management answer),
 *   3. CPC1A @ nominal           (race-to-halt with APC).
 */

#include "bench_common.h"

using namespace apc;

namespace {

server::ServerResult
runPoint(soc::PackagePolicy policy, double qps, bool dvfs)
{
    server::ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(qps);
    cfg.duration = bench::benchDuration();
    cfg.dvfs.enabled = dvfs;
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

} // namespace

int
main()
{
    bench::banner("Sec. 8: race-to-halt (PC1A) vs DVFS management");
    using analysis::TablePrinter;

    const double qps_points[] = {4e3, 25e3, 50e3, 100e3};

    TablePrinter t("Power (W) and latency (us): baseline vs ondemand "
                   "DVFS vs APC race-to-halt");
    t.header({"QPS", "base W", "DVFS W", "APC W", "base p99",
              "DVFS p99", "APC p99"});
    double dvfs_savings = 0, apc_savings = 0;
    double dvfs_tail_cost = 0;
    int n = 0;
    for (const double qps : qps_points) {
        const auto base =
            runPoint(soc::PackagePolicy::Cshallow, qps, false);
        const auto dvfs =
            runPoint(soc::PackagePolicy::Cshallow, qps, true);
        const auto apc = runPoint(soc::PackagePolicy::Cpc1a, qps, false);
        t.row({TablePrinter::num(qps / 1000, 0) + "K",
               TablePrinter::num(base.totalPowerW()),
               TablePrinter::num(dvfs.totalPowerW()),
               TablePrinter::num(apc.totalPowerW()),
               TablePrinter::num(base.p99LatencyUs, 1),
               TablePrinter::num(dvfs.p99LatencyUs, 1),
               TablePrinter::num(apc.p99LatencyUs, 1)});
        dvfs_savings += 1.0 - dvfs.totalPowerW() / base.totalPowerW();
        apc_savings += 1.0 - apc.totalPowerW() / base.totalPowerW();
        dvfs_tail_cost +=
            dvfs.p99LatencyUs / base.p99LatencyUs - 1.0;
        ++n;
    }
    t.print();

    std::printf("\nAverages over the sweep: DVFS saves %s with +%s p99; "
                "APC race-to-halt saves %s with ~0%% p99 cost.\n",
                TablePrinter::percent(dvfs_savings / n).c_str(),
                TablePrinter::percent(dvfs_tail_cost / n).c_str(),
                TablePrinter::percent(apc_savings / n).c_str());
    std::printf("Paper Sec. 8: \"The new PC1A state of APC ... makes a "
                "simple race-to-halt approach more attractive compared "
                "to complex DVFS management techniques.\"\n");
    return 0;
}
