/**
 * @file
 * Reproduces **Sec. 5.4**: the four power deltas that compose PC1A's
 * power from PC6's —
 *   P_cores_diff ≈ 12.1 W (all-CC1 vs all-CC6),
 *   P_IOs_diff   ≈ 3.5 W (L0s/L0p/CKE-off vs L1/self-refresh),
 *   P_DRAM_diff  ≈ 1.1 W (CKE-off vs self-refresh, DRAM plane),
 *   P_PLLs_diff  ≈ 56 mW (8 ADPLLs on vs off),
 * and the composition P_PC1A = P_PC6 + ΣΔ.
 */

#include "bench_common.h"

#include "soc/soc.h"

using namespace apc;

namespace {

/** Sum of the named loads' current power. */
double
loadPower(soc::Soc &soc, std::initializer_list<const char *> prefixes,
          power::Plane plane)
{
    double w = 0.0;
    for (const auto *l : soc.meter().loads()) {
        if (l->plane() != plane)
            continue;
        for (const char *p : prefixes) {
            if (l->name().rfind(p, 0) == 0) {
                w += l->currentPower();
                break;
            }
        }
    }
    return w;
}

struct Components
{
    double cores, ios, dram, plls, soc_total, dram_total;
};

/** Settle a policy fully idle and decompose the power. */
Components
settle(soc::PackagePolicy policy)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(policy);
    if (policy == soc::PackagePolicy::Cdeep) {
        cfg.ladder.cc1ToCc1e = 10 * sim::kUs;
        cfg.ladder.cc1eToCc6 = 50 * sim::kUs;
    }
    soc::Soc soc(s, cfg, policy);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(5 * sim::kMs);
    Components c;
    c.cores = loadPower(soc, {"core"}, power::Plane::Package);
    c.ios = loadPower(soc, {"pcie", "dmi", "upi", "mc"},
                      power::Plane::Package);
    c.plls = loadPower(soc, {"pll."}, power::Plane::Package);
    c.dram = soc.meter().planePower(power::Plane::Dram);
    c.soc_total = soc.meter().planePower(power::Plane::Package);
    c.dram_total = c.dram;
    return c;
}

} // namespace

int
main()
{
    bench::banner("Sec. 5.4: PC1A power composition");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    const auto pc1a = settle(soc::PackagePolicy::Cpc1a);
    const auto pc6 = settle(soc::PackagePolicy::Cdeep);

    TablePrinter t("Power deltas PC1A - PC6");
    t.header({"Delta", "Paper", "Sim"});
    t.row({"P_cores_diff", "12.1W",
           TablePrinter::watts(pc1a.cores - pc6.cores, 2)});
    t.row({"P_IOs_diff", "3.5W",
           TablePrinter::watts(pc1a.ios - pc6.ios, 2)});
    t.row({"P_DRAM_diff", "1.1W",
           TablePrinter::watts(pc1a.dram - pc6.dram, 2)});
    t.row({"P_PLLs_diff", "0.056W",
           TablePrinter::watts(pc1a.plls - pc6.plls, 3)});
    t.print();

    TablePrinter c("Composition check: P_PC1A = P_PC6 + sum of deltas");
    c.header({"Quantity", "Paper", "Sim"});
    c.row({"P_soc(PC6)", "11.9W", TablePrinter::watts(pc6.soc_total, 2)});
    c.row({"P_soc(PC1A)", "27.5W",
           TablePrinter::watts(pc1a.soc_total, 2)});
    c.row({"P_soc(PC6)+deltas", "27.5W",
           TablePrinter::watts(pc6.soc_total +
                                   (pc1a.cores - pc6.cores) +
                                   (pc1a.ios - pc6.ios) +
                                   (pc1a.plls - pc6.plls),
                               2)});
    c.row({"P_dram(PC6)", "0.51W",
           TablePrinter::watts(pc6.dram_total, 2)});
    c.row({"P_dram(PC1A)", "1.6W",
           TablePrinter::watts(pc1a.dram_total, 2)});
    c.print();
    return 0;
}
