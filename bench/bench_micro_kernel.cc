/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel hot paths:
 * event scheduling/dispatch, signal edges and AND-tree propagation,
 * energy-meter updates, and a full PC1A enter/exit round trip. These
 * bound the simulator's own throughput (events/second of host time).
 */

#include <benchmark/benchmark.h>

#include "power/energy_meter.h"
#include "sim/signal.h"
#include "sim/simulation.h"
#include "soc/soc.h"

using namespace apc;

namespace {

void
BM_EventScheduleDispatch(benchmark::State &state)
{
    sim::Simulation s;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        s.after(1, [&sink] { ++sink; });
        s.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventScheduleDispatch);

void
BM_EventQueueBatch1k(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation s;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i)
            s.after(i, [&sink] { ++sink; });
        s.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueBatch1k);

void
BM_SignalEdgeWithObserver(benchmark::State &state)
{
    sim::Simulation s;
    sim::Signal w(s, "w");
    std::uint64_t sink = 0;
    w.subscribe([&sink](bool) { ++sink; });
    bool v = false;
    for (auto _ : state) {
        v = !v;
        w.write(v);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SignalEdgeWithObserver);

void
BM_AndTree10Inputs(benchmark::State &state)
{
    sim::Simulation s;
    std::vector<std::unique_ptr<sim::Signal>> inputs;
    sim::AndTree tree(s, "t", 2 * sim::kNs);
    for (int i = 0; i < 10; ++i) {
        inputs.push_back(std::make_unique<sim::Signal>(
            s, "i" + std::to_string(i), true));
        tree.addInput(*inputs.back());
    }
    s.runAll();
    for (auto _ : state) {
        inputs[0]->write(false);
        inputs[0]->write(true);
        s.runAll();
    }
}
BENCHMARK(BM_AndTree10Inputs);

void
BM_PowerLoadSetPower(benchmark::State &state)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    power::PowerLoad load(m, "x", power::Plane::Package, 1.0);
    double w = 1.0;
    for (auto _ : state) {
        w = w == 1.0 ? 2.0 : 1.0;
        load.setPower(w);
    }
    benchmark::DoNotOptimize(load.energyJoules());
}
BENCHMARK(BM_PowerLoadSetPower);

void
BM_Pc1aEnterExitRoundTrip(benchmark::State &state)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * sim::kUs);
    for (auto _ : state) {
        // IO wake, drain, re-enter.
        soc.nic().transfer(100 * sim::kNs, nullptr);
        s.runUntil(s.now() + 50 * sim::kUs);
    }
    state.counters["pc1a_entries"] = static_cast<double>(
        soc.apmu()->pc1aEntries());
}
BENCHMARK(BM_Pc1aEnterExitRoundTrip);

void
BM_SocConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation s;
        auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
        soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
        benchmark::DoNotOptimize(soc.numCores());
    }
}
BENCHMARK(BM_SocConstruction);

} // namespace

BENCHMARK_MAIN();
