/**
 * @file
 * Design-space question the paper leaves implicit: should the APMU
 * rate-limit PC1A entries (hysteresis) the way OS idle governors
 * rate-limit deep C-states? We subject the system to a wake-storm
 * (high-frequency UPI pokes, the worst case for transition thrash) and
 * sweep the entry-hysteresis knob.
 *
 * Expected answer — and the reason the paper's APMU has none: with
 * ~160 ns round trips, even hundreds of thousands of transitions per
 * second cost negligible energy, so hysteresis only forfeits residency.
 */

#include "bench_common.h"

#include "soc/soc.h"

using namespace apc;

namespace {

struct StormResult
{
    double pkgPowerW = 0.0;
    std::uint64_t entries = 0;
    double pc1aResidency = 0.0;
};

/** UPI poke storm against an otherwise idle Cpc1a system. */
StormResult
runStorm(sim::Tick hysteresis, sim::Tick poke_period,
         sim::Tick duration)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    cfg.apc.entryHysteresis = hysteresis;
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();

    // Periodic remote snoop traffic on a UPI link.
    std::function<void()> poke = [&] {
        soc.link(4).transfer(100 * sim::kNs, nullptr);
        s.after(poke_period, poke);
    };
    s.after(poke_period, poke);

    s.runUntil(1 * sim::kMs); // settle
    soc.resetStats();
    const auto rapl0 = soc.rapl().readCounter(power::Plane::Package);
    const auto entries0 = soc.apmu()->pc1aEntries();
    s.runUntil(s.now() + duration);
    const auto rapl1 = soc.rapl().readCounter(power::Plane::Package);

    StormResult r;
    r.pkgPowerW = soc.rapl().averagePower(rapl0, rapl1);
    r.entries = soc.apmu()->pc1aEntries() - entries0;
    r.pc1aResidency = soc.pkgResidency().residency(
        static_cast<std::size_t>(soc::PkgState::Pc1a), s.now());
    return r;
}

} // namespace

int
main()
{
    bench::banner("Design question: does PC1A need entry hysteresis?");
    using analysis::TablePrinter;

    const sim::Tick poke = 20 * sim::kUs; // 50K wakes/s storm
    const sim::Tick hys[] = {0, 1 * sim::kUs, 10 * sim::kUs,
                             100 * sim::kUs};
    const sim::Tick duration = bench::benchDuration(50 * sim::kMs);
    const double window_s = sim::toSeconds(duration);

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv, "hysteresis_ns,entries_per_s,"
                          "pc1a_residency,pkg_w\n");

    TablePrinter t("UPI wake storm (50K pokes/s), idle cores, "
                   "hysteresis sweep");
    t.header({"Hysteresis", "PC1A entries/s", "PC1A residency",
              "Package W"});
    for (const sim::Tick h : hys) {
        const auto r = runStorm(h, poke, duration);
        const double rate = static_cast<double>(r.entries) / window_s;
        t.row({sim::formatTime(h), TablePrinter::num(rate, 0),
               TablePrinter::percent(r.pc1aResidency),
               TablePrinter::num(r.pkgPowerW)});
        if (csv)
            std::fprintf(csv, "%.0f,%.1f,%.6f,%.3f\n", sim::toNanos(h),
                         rate, r.pc1aResidency, r.pkgPowerW);
    }
    t.print();
    const bool csv_ok = bench::closeCsv(csv);
    std::printf("\nReading: transitions are so cheap (~160 ns, no PLL "
                "relock, no state loss) that rate-limiting them only "
                "loses residency and therefore power — the paper's "
                "hysteresis-free APMU is the right design.\n");
    return csv_ok ? 0 : 1;
}
