/**
 * @file
 * Reproduces **Fig. 8**: MySQL (sysbench OLTP) at low/mid/high request
 * rates (8% / 16% / 42% processor load): (a) C-state + PC1A residency
 * of Cshallow vs CPC1A, (b) average power reduction (paper: 7–14%,
 * 41% when fully idle).
 */

#include "bench_common.h"

using namespace apc;

int
main()
{
    bench::banner("Fig. 8: MySQL (OLTP) residency & power reduction");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    const auto base_wl = workload::WorkloadConfig::mysqlOltp(0);
    struct Point
    {
        const char *name;
        double util;
        const char *paper_savings;
    };
    const Point points[] = {{"low (8%)", 0.08, "~14%"},
                            {"mid (16%)", 0.16, "~10%"},
                            {"high (42%)", 0.42, "~7%"}};

    TablePrinter t("Fig. 8 — MySQL");
    t.header({"Load", "QPS", "util (sim)", "CC0", "CC1", "all-idle "
              "(paper 20-37%)", "PC1A res.", "Savings", "paper"});
    for (const auto &p : points) {
        const double qps = base_wl.qpsForUtilization(p.util, 10);
        const auto wl = workload::WorkloadConfig::mysqlOltp(qps);
        const auto sh =
            bench::runServer(soc::PackagePolicy::Cshallow, wl);
        const auto apc = bench::runServer(soc::PackagePolicy::Cpc1a, wl);
        const double savings =
            1.0 - apc.totalPowerW() / sh.totalPowerW();
        t.row({p.name, TablePrinter::num(qps, 0),
               TablePrinter::percent(sh.utilization),
               TablePrinter::percent(sh.coreResidency[0]),
               TablePrinter::percent(sh.coreResidency[1]),
               TablePrinter::percent(sh.allIdleFraction),
               TablePrinter::percent(apc.pc1aResidency()),
               TablePrinter::percent(savings), p.paper_savings});
    }
    t.print();

    const auto idle_sh = bench::runIdle(soc::PackagePolicy::Cshallow);
    const auto idle_apc = bench::runIdle(soc::PackagePolicy::Cpc1a);
    std::printf("\nFully idle server reduction: %s (paper: 41%%)\n",
                TablePrinter::percent(1.0 - idle_apc.totalPowerW() /
                                      idle_sh.totalPowerW()).c_str());
    return 0;
}
