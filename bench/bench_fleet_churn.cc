/**
 * @file
 * Fleet churn scenario: availability and tail latency under injected
 * faults — a scripted crash, a graceful drain, an edge-link flap and a
 * core blackout on top of a stochastic crash hazard — with and without
 * the client recovery path (timeout + capped backoff + failover).
 *
 * Three scenarios run on the same seed and traffic:
 *   baseline          no faults, no recovery (the healthy fleet)
 *   faults            churn injected, no recovery: losses are counted
 *   faults+recovery   churn injected, failover masks most of them
 *
 * The recovery scenario re-runs across thread counts and shard
 * layouts; the FleetReport CSV row must match byte-for-byte (fault
 * injection is scheduled by counter-based substreams and applied at
 * the single-threaded route stage, so churn cannot perturb the
 * determinism contract). The health monitor audits conservation —
 * injected = completed + lostToDrop + lostToCrash + inFlight — at
 * every epoch boundary in all scenarios.
 *
 * Output: human-readable table on stdout, per-scenario CSV via
 * APC_BENCH_CSV, and a machine-readable summary at APC_BENCH_JSON
 * (default "BENCH_churn.json") — consumed by CI to validate shape and
 * watch the availability trajectory.
 *
 * Knobs: APC_BENCH_DURATION_MS (measurement window, default 300).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/table_printer.h"
#include "bench_common.h"
#include "fault/fault.h"
#include "fleet/fleet_sim.h"

namespace apc {
namespace {

struct Scenario
{
    std::string name;
    unsigned threads = 1;
    std::size_t shardSize = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t lost = 0;
    std::uint64_t lostToCrash = 0;
    std::uint64_t failovers = 0;
    std::uint64_t timeouts = 0;
    double availability = 1.0;
    double avgUs = 0;
    double p99Us = 0;
    std::uint64_t alertsFired = 0;
    sim::Tick timeInViolation = 0;
    std::uint64_t auditViolations = 0;
    std::string csvRow; ///< determinism cross-check payload
};

fleet::FleetConfig
churnConfig(bool faults, bool recovery, unsigned threads,
            std::size_t shard_size)
{
    fleet::FleetConfig fc;
    fc.numServers = 16;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.20, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 10000.0;
    fc.warmup = 10 * sim::kMs;
    fc.duration = bench::benchDuration(300 * sim::kMs);
    fc.seed = 77;
    fc.fabric.enabled = true;
    fc.nic.enabled = true;
    fc.health.enabled = true;
    fc.threads = threads;
    fc.shardSize = shard_size;
    if (!faults)
        return fc;

    // Scripted churn pinned to fractions of the measurement window so
    // every APC_BENCH_DURATION_MS sees all four fault classes, plus a
    // mild stochastic crash hazard across the fleet.
    const sim::Tick d = fc.duration;
    fc.faults.enabled = true;
    fc.faults.scripted = {
        {fc.warmup + d / 5, d / 8, fault::FaultKind::ServerCrash, 2},
        {fc.warmup + 2 * d / 5, d / 10, fault::FaultKind::ServerDrain,
         5},
        {fc.warmup + 3 * d / 5, d / 16, fault::FaultKind::LinkFlap, 1},
        {fc.warmup + 4 * d / 5, d / 64, fault::FaultKind::LinkFlap,
         fault::kCoreLinkEntity},
    };
    fc.faults.crash.ratePerSec = 2.0;
    fc.faults.crash.mttr = d / 12;
    fc.recovery.enabled = recovery;
    return fc;
}

Scenario
runScenario(const std::string &name, bool faults, bool recovery,
            unsigned threads = 1, std::size_t shard_size = 0)
{
    Scenario s;
    s.name = name;
    s.threads = threads;
    s.shardSize = shard_size;
    fleet::FleetSim fleet(
        churnConfig(faults, recovery, threads, shard_size));
    const fleet::FleetReport rep = fleet.run();
    s.dispatched = rep.dispatched;
    s.completed = rep.completed;
    s.lost = rep.lostRequests;
    s.lostToCrash = rep.lostToCrash;
    s.failovers = rep.failovers;
    s.timeouts = rep.timeouts;
    s.availability = rep.dispatched
        ? static_cast<double>(rep.completed) /
            static_cast<double>(rep.dispatched)
        : 1.0;
    s.avgUs = rep.avgLatencyUs;
    s.p99Us = rep.p99LatencyUs;
    s.alertsFired = rep.health.alertsFired;
    s.timeInViolation = rep.health.timeInViolation;
    s.auditViolations = rep.health.auditViolations;
    s.csvRow = rep.csvRow();
    return s;
}

bool
writeJson(const char *path, const std::vector<Scenario> &rows,
          bool deterministic)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return false;
    }
    bool ok = true;
    const auto put = [f, &ok](const char *fmt, auto... args) {
        if (std::fprintf(f, fmt, args...) < 0)
            ok = false;
    };
    put("{\n  \"bench\": \"fleet_churn\",\n");
    put("  \"schema_version\": %d,\n", bench::kBenchJsonSchemaVersion);
    put("  \"deterministic_across_layouts\": %s,\n",
        deterministic ? "true" : "false");
    put("  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Scenario &s = rows[i];
        put("    {\"name\": \"%s\", \"threads\": %u, "
            "\"shard_size\": %zu, \"dispatched\": %llu, "
            "\"completed\": %llu, \"lost\": %llu, "
            "\"lost_to_crash\": %llu, \"failovers\": %llu, "
            "\"timeouts\": %llu, \"availability\": %.6f, "
            "\"avg_us\": %.1f, \"p99_us\": %.1f, "
            "\"alerts_fired\": %llu, \"time_in_violation_us\": %lld, "
            "\"audit_violations\": %llu}%s\n",
            s.name.c_str(), s.threads, s.shardSize,
            static_cast<unsigned long long>(s.dispatched),
            static_cast<unsigned long long>(s.completed),
            static_cast<unsigned long long>(s.lost),
            static_cast<unsigned long long>(s.lostToCrash),
            static_cast<unsigned long long>(s.failovers),
            static_cast<unsigned long long>(s.timeouts),
            s.availability, s.avgUs, s.p99Us,
            static_cast<unsigned long long>(s.alertsFired),
            static_cast<long long>(s.timeInViolation / sim::kUs),
            static_cast<unsigned long long>(s.auditViolations),
            i + 1 < rows.size() ? "," : "");
    }
    put("  ]\n}\n");
    if (std::fclose(f) != 0 || !ok) {
        std::fprintf(stderr, "error: writing %s failed\n", path);
        return false;
    }
    std::printf("\nWrote %s\n", path);
    return true;
}

} // namespace
} // namespace apc

int
main()
{
    using namespace apc;
    using analysis::TablePrinter;

    bench::banner("fleet churn: faults, failover, availability");

    std::vector<Scenario> rows;
    rows.push_back(runScenario("baseline", false, false));
    rows.push_back(runScenario("faults", true, false));
    rows.push_back(runScenario("faults+recovery", true, true));

    // Determinism: churn + recovery across thread counts and shard
    // layouts must reproduce the 1-thread report byte-for-byte.
    bool deterministic = true;
    const std::string &ref = rows.back().csvRow;
    struct Layout
    {
        unsigned threads;
        std::size_t shardSize;
    };
    for (const Layout &l : std::vector<Layout>{{2, 7}, {8, 64}}) {
        Scenario s = runScenario("faults+recovery", true, true,
                                 l.threads, l.shardSize);
        if (s.csvRow != ref) {
            deterministic = false;
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: threads=%u "
                         "shard_size=%zu churn report differs from "
                         "the 1-thread run\n",
                         l.threads, l.shardSize);
        }
        rows.push_back(std::move(s));
    }

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv,
                     "scenario,threads,shard_size,dispatched,completed,"
                     "lost,lost_to_crash,failovers,timeouts,"
                     "availability,avg_us,p99_us,alerts_fired,"
                     "time_in_violation_us,audit_violations\n");

    bool audits_clean = true;
    TablePrinter t("Churn scenarios (16 servers, fabric + NIC + health)");
    t.header({"Scenario", "Thr", "Avail %", "LostCrash", "Failover",
              "Timeout", "p99 (us)", "Alerts", "Viol (ms)"});
    for (const Scenario &s : rows) {
        audits_clean = audits_clean && s.auditViolations == 0;
        t.row({s.name + (s.threads > 1 ? "@" +
                             std::to_string(s.threads) + "t"
                                       : ""),
               TablePrinter::num(s.threads, 0),
               TablePrinter::num(100.0 * s.availability, 3),
               TablePrinter::num(static_cast<double>(s.lostToCrash), 0),
               TablePrinter::num(static_cast<double>(s.failovers), 0),
               TablePrinter::num(static_cast<double>(s.timeouts), 0),
               TablePrinter::num(s.p99Us, 0),
               TablePrinter::num(static_cast<double>(s.alertsFired), 0),
               TablePrinter::num(
                   sim::toSeconds(s.timeInViolation) * 1e3, 1)});
        if (csv)
            std::fprintf(
                csv,
                "%s,%u,%zu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,%.1f,"
                "%.1f,%llu,%lld,%llu\n",
                s.name.c_str(), s.threads, s.shardSize,
                static_cast<unsigned long long>(s.dispatched),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.lost),
                static_cast<unsigned long long>(s.lostToCrash),
                static_cast<unsigned long long>(s.failovers),
                static_cast<unsigned long long>(s.timeouts),
                s.availability, s.avgUs, s.p99Us,
                static_cast<unsigned long long>(s.alertsFired),
                static_cast<long long>(s.timeInViolation / sim::kUs),
                static_cast<unsigned long long>(s.auditViolations));
    }
    t.print();
    std::printf(
        "(failover turns crash losses into re-dispatches: compare the "
        "faults row's lost_to_crash against faults+recovery's "
        "failovers)\nDeterminism across layouts: %s\n"
        "Conservation audits: %s\n",
        deterministic ? "OK (reports byte-identical)" : "VIOLATED",
        audits_clean ? "clean" : "VIOLATED");
    const bool csv_ok = bench::closeCsv(csv);

    const char *json_path = std::getenv("APC_BENCH_JSON");
    const bool json_ok = writeJson(
        json_path && *json_path ? json_path : "BENCH_churn.json", rows,
        deterministic);
    return (deterministic && audits_clean && csv_ok && json_ok) ? 0 : 1;
}
