/**
 * @file
 * Ablation study of APC's four techniques (DESIGN.md Sec. 5): each
 * variant disables one design choice and reports idle power, PC1A exit
 * latency, and Memcached power/latency at a low-load operating point.
 * This quantifies *why* the paper picked shallow states + live PLLs.
 */

#include "bench_common.h"

using namespace apc;

namespace {

server::ServerResult
runVariant(void (*tweak)(core::ApcConfig &), double qps,
           sim::Tick duration)
{
    server::ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cpc1a;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(qps);
    if (qps == 0)
        cfg.workload.noise.enabled = false;
    cfg.duration = duration;
    auto skx = std::make_unique<soc::SkxConfig>(
        soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a));
    if (tweak)
        tweak(skx->apc);
    cfg.skxOverride = std::move(skx);
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

} // namespace

int
main()
{
    bench::banner("Ablation: APC design choices");
    using analysis::TablePrinter;

    struct Variant
    {
        const char *name;
        void (*tweak)(core::ApcConfig &);
    };
    const Variant variants[] = {
        {"APC (full)", nullptr},
        {"- CLMR (no retention)",
         [](core::ApcConfig &c) { c.useClmr = false; }},
        {"- keep PLLs (off in PC1A)",
         [](core::ApcConfig &c) { c.keepPllsOn = false; }},
        {"- CKE-off (self-refresh)",
         [](core::ApcConfig &c) { c.useCkeOff = false; }},
        {"- L0s (links to L1)",
         [](core::ApcConfig &c) { c.useShallowLinks = false; }},
    };

    const sim::Tick idle_dur = 100 * sim::kMs;
    const sim::Tick load_dur = bench::benchDuration(200 * sim::kMs);

    TablePrinter t("Ablation at idle and at 25K QPS Memcached");
    t.header({"Variant", "Idle W", "exit ns (max)", "25K-QPS W",
              "25K avg lat us", "p99 us"});
    for (const auto &v : variants) {
        const auto idle = runVariant(v.tweak, 0, idle_dur);
        const auto load = runVariant(v.tweak, 25e3, load_dur);
        std::vector<std::string> row{
            v.name, TablePrinter::num(idle.totalPowerW()),
            TablePrinter::num(
                std::max(idle.apmuExitNsMax, load.apmuExitNsMax), 0),
            TablePrinter::num(load.totalPowerW())};
        bench::appendCols(row, bench::latencyCols(load, 1, false));
        t.row(std::move(row));
    }
    t.print();
    std::printf("\nReading: deeper substates (L1/self-refresh/PLLs-off) "
                "buy little extra power at idle but push exit latency "
                "to microseconds, which taxes every request; dropping "
                "CLMR forfeits the single largest saving.\n");
    return 0;
}
