/**
 * @file
 * Fleet energy-proportionality sweep.
 *
 * The paper's package C-state argument is a datacenter one: racks of
 * servers sit at low utilization, so the fleet's energy bill hinges on
 * what an *underloaded* server burns. This harness drives an 8-server
 * fleet across a 5% → 90% aggregate-load sweep under each dispatch
 * policy and prints fleet watts, joules/request, p99 vs the SLO, and
 * deep-idle (PC1A) residency — the energy-proportionality curve. The
 * gap between power-aware packing and round-robin spreading at low
 * load is the fleet-level payoff of an agile package C-state: packing
 * drains servers, and PC1A lets drained servers actually reach deep
 * idle without a tail-latency cliff on the next burst.
 *
 * APC_BENCH_DURATION_MS shortens/lengthens the per-point window;
 * APC_BENCH_CSV=<path> additionally writes the sweep as CSV.
 */

#include "bench_common.h"
#include "fleet/fleet_sim.h"

using namespace apc;

int
main()
{
    bench::banner("Fleet energy proportionality: dispatch-policy sweep");
    using analysis::TablePrinter;

    const fleet::DispatchKind kinds[] = {
        fleet::DispatchKind::RoundRobin,
        fleet::DispatchKind::LeastOutstanding,
        fleet::DispatchKind::PowerAwarePacking,
    };
    const double loads[] = {0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90};

    TablePrinter t("8-server fleet, MySQL-OLTP service, MMPP arrivals, "
                   "C_PC1A servers — fleet watts / J/req / p99 by "
                   "dispatch policy");
    std::vector<std::string> header{"Load", "Policy"};
    bench::appendCols(header, bench::fleetColHeaders());
    bench::appendCols(header, {"t.wake us", "t.queue us",
                               "tail blame"});
    t.header(std::move(header));

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv, "load,policy,%s,%s\n",
                     fleet::FleetReport::csvHeader().c_str(),
                     bench::blameCsvHeader(obs::Segment::Wake,
                                           obs::Segment::Queue)
                         .c_str());

    double rr_w_low = 0, pk_w_low = 0;
    for (const double load : loads) {
        for (const auto kind : kinds) {
            auto fc = bench::fleetLoadConfig(
                8, kind, load, workload::WorkloadConfig::mysqlOltp(0));
            // Does packing's deep idle cost wake latency at the tail,
            // or does spreading's lukewarm fleet queue more? The blame
            // columns answer it per point.
            bench::enableAttribution(fc);
            const auto r = fleet::FleetSim(std::move(fc)).run();
            std::vector<std::string> row{TablePrinter::percent(load, 0),
                                         fleet::dispatchName(kind)};
            bench::appendCols(row, bench::fleetCols(r));
            bench::appendCols(row,
                              bench::blameCols(r, obs::Segment::Wake,
                                               obs::Segment::Queue));
            t.row(std::move(row));
            if (csv)
                std::fprintf(csv, "%.2f,%s,%s,%s\n", load,
                             fleet::dispatchName(kind),
                             r.csvRow().c_str(),
                             bench::blameCsvCols(r, obs::Segment::Wake,
                                                 obs::Segment::Queue)
                                 .c_str());
            if (load == 0.10) {
                if (kind == fleet::DispatchKind::RoundRobin)
                    rr_w_low = r.totalPowerW();
                if (kind == fleet::DispatchKind::PowerAwarePacking)
                    pk_w_low = r.totalPowerW();
            }
        }
    }
    t.print();
    const bool csv_ok = bench::closeCsv(csv);

    if (rr_w_low > 0)
        std::printf("\nPacking vs round-robin at 10%% load: "
                    "%.1f W vs %.1f W (%s fleet power saved)\n",
                    pk_w_low, rr_w_low,
                    TablePrinter::percent(1.0 - pk_w_low / rr_w_low)
                        .c_str());
    std::printf("Spreading keeps every server lukewarm; packing lets "
                "the drained tail of the fleet sit in PC1A.\n");
    return csv_ok ? 0 : 1;
}
