/**
 * @file
 * Fleet energy-proportionality sweep.
 *
 * The paper's package C-state argument is a datacenter one: racks of
 * servers sit at low utilization, so the fleet's energy bill hinges on
 * what an *underloaded* server burns. This harness drives an 8-server
 * fleet across a 5% → 90% aggregate-load sweep under each dispatch
 * policy and prints fleet watts, joules/request, p99 vs the SLO, and
 * deep-idle (PC1A) residency — the energy-proportionality curve. The
 * gap between power-aware packing and round-robin spreading at low
 * load is the fleet-level payoff of an agile package C-state: packing
 * drains servers, and PC1A lets drained servers actually reach deep
 * idle without a tail-latency cliff on the next burst.
 *
 * APC_BENCH_DURATION_MS shortens/lengthens the per-point window.
 */

#include "bench_common.h"
#include "fleet/fleet_sim.h"

using namespace apc;

namespace {

fleet::FleetReport
runFleet(fleet::DispatchKind kind, double util, sim::Tick duration)
{
    fleet::FleetConfig fc;
    fc.numServers = 8;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::mysqlOltp(0);
    fc.dispatch = kind;
    fc.traffic.arrivalKind = workload::ArrivalKind::Mmpp;
    fc.traffic.burstiness = fc.workload.burstiness;
    fc.traffic.burstMean = fc.workload.burstMean;
    const int fleet_cores =
        static_cast<int>(fc.numServers) * 10; // SKX: 10 cores/server
    fc.traffic.qps = fc.workload.qpsForUtilization(util, fleet_cores);
    fc.sloUs = 10000.0;
    fc.duration = bench::benchDuration(300 * sim::kMs);
    if (duration > 0)
        fc.duration = duration;
    return fleet::FleetSim(fc).run();
}

} // namespace

int
main()
{
    bench::banner("Fleet energy proportionality: dispatch-policy sweep");
    using analysis::TablePrinter;

    const fleet::DispatchKind kinds[] = {
        fleet::DispatchKind::RoundRobin,
        fleet::DispatchKind::LeastOutstanding,
        fleet::DispatchKind::PowerAwarePacking,
    };
    const double loads[] = {0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90};

    TablePrinter t("8-server fleet, MySQL-OLTP service, MMPP arrivals, "
                   "C_PC1A servers — fleet watts / J/req / p99 by "
                   "dispatch policy");
    t.header({"Load", "Policy", "Fleet W", "J/req", "p99 (us)",
              "SLO ok", "PC1A res", "QPS"});

    double rr_w_low = 0, pk_w_low = 0;
    for (const double load : loads) {
        for (const auto kind : kinds) {
            const auto r = runFleet(kind, load, 0);
            t.row({TablePrinter::percent(load, 0),
                   fleet::dispatchName(kind),
                   TablePrinter::watts(r.totalPowerW()),
                   TablePrinter::num(r.joulesPerRequest, 4),
                   TablePrinter::num(r.p99LatencyUs, 0),
                   r.p99LatencyUs <= r.sloUs ? "yes" : "NO",
                   TablePrinter::percent(r.pc1aResidency()),
                   TablePrinter::num(r.achievedQps, 0)});
            if (load == 0.10) {
                if (kind == fleet::DispatchKind::RoundRobin)
                    rr_w_low = r.totalPowerW();
                if (kind == fleet::DispatchKind::PowerAwarePacking)
                    pk_w_low = r.totalPowerW();
            }
        }
    }
    t.print();

    if (rr_w_low > 0)
        std::printf("\nPacking vs round-robin at 10%% load: "
                    "%.1f W vs %.1f W (%s fleet power saved)\n",
                    pk_w_low, rr_w_low,
                    TablePrinter::percent(1.0 - pk_w_low / rr_w_low)
                        .c_str());
    std::printf("Spreading keeps every server lukewarm; packing lets "
                "the drained tail of the fleet sit in PC1A.\n");
    return 0;
}
