/**
 * @file
 * Reproduces the **Sec. 2 / Eq. 1** analytical estimates: plugging the
 * measured residencies and power levels into the paper's power model
 * gives ~23% savings at 5% load, ~17% at 10% load, and ~41% for an
 * idle server. Cross-checks Eq. 1 against the directly simulated CPC1A
 * power.
 */

#include "bench_common.h"

#include "analysis/eq1_model.h"

using namespace apc;

int
main()
{
    bench::banner("Sec. 2 / Eq. 1: analytical savings model");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    // Measure the three power levels the model needs.
    const auto idle_sh = bench::runIdle(soc::PackagePolicy::Cshallow);
    const auto idle_apc = bench::runIdle(soc::PackagePolicy::Cpc1a);
    const double p_pc0idle = idle_sh.totalPowerW();
    const double p_pc1a = idle_apc.totalPowerW();

    struct Point
    {
        const char *label;
        double qps;       ///< paper's all-CC1 residency anchor points
        double paper_all_cc1;
        double paper_savings;
    };
    // Paper Sec. 2: all cores simultaneously in CC1 ~57% of the time at
    // 5% load and ~39% at 10% load -> 23% / 17% savings.
    // QPS anchors chosen to hit ~5% / ~10% measured utilization on
    // the Cshallow baseline (see bench_fig6_opportunity).
    const Point points[] = {{"5% load", 12e3, 0.57, ref::kSavingsAt5pct},
                            {"10% load", 35e3, 0.39,
                             ref::kSavingsAt10pct}};

    TablePrinter t("Eq. 1 savings estimates");
    t.header({"Operating point", "R_PC0idle (sim)", "R_PC0idle (paper)",
              "Eq.1 savings (sim resid.)", "Eq.1 (paper resid.)",
              "paper", "direct sim"});
    for (const auto &p : points) {
        const auto wl = workload::WorkloadConfig::memcachedEtc(p.qps);
        const auto sh =
            bench::runServer(soc::PackagePolicy::Cshallow, wl);
        const auto apc = bench::runServer(soc::PackagePolicy::Cpc1a, wl);

        analysis::Eq1Inputs in;
        in.rPc0idle = sh.allIdleFraction;
        in.rPc0 = 1.0 - in.rPc0idle;
        // P_PC0 at this operating point: measured average power during
        // the non-idle fraction.
        in.pPc0 = in.rPc0 > 0
            ? (sh.totalPowerW() - in.rPc0idle * p_pc0idle) / in.rPc0
            : p_pc0idle;
        in.pPc0idle = p_pc0idle;
        in.pPc1a = p_pc1a;

        analysis::Eq1Inputs paper_in = in;
        paper_in.rPc0idle = p.paper_all_cc1;
        paper_in.rPc0 = 1.0 - p.paper_all_cc1;

        const double direct =
            1.0 - apc.totalPowerW() / sh.totalPowerW();
        t.row({p.label, TablePrinter::percent(in.rPc0idle),
               TablePrinter::percent(p.paper_all_cc1),
               TablePrinter::percent(analysis::eq1Savings(in)),
               TablePrinter::percent(analysis::eq1Savings(paper_in)),
               TablePrinter::percent(p.paper_savings),
               TablePrinter::percent(direct)});
    }
    t.print();

    std::printf("\nIdle-server special case: 1 - P_PC1A/P_PC0idle = %s "
                "(paper: ~41%%)\n",
                TablePrinter::percent(
                    analysis::eq1IdleSavings(p_pc0idle, p_pc1a))
                    .c_str());
    return 0;
}
