/**
 * @file
 * Reproduces **Sec. 5.5**: PC1A entry (~18 ns) and exit (≤150 ns)
 * latency, the ≤200 ns worst-case bound, and the >250× speedup over
 * PC6 — by repeatedly driving the real APMU/GPMU flows and reading
 * their latency statistics.
 */

#include "bench_common.h"

#include "soc/soc.h"

using namespace apc;

namespace {

/** Cycle the Cpc1a system through N PC1A enter/exit pairs. */
void
cyclePc1a(int cycles, stats::Summary &entry_ns, stats::Summary &exit_ns,
          bool alternate_wake_sources = true)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    for (int i = 0; i < cycles; ++i) {
        s.runUntil(s.now() + 50 * sim::kUs);
        if (soc.apmu()->state() != core::Apmu::State::Pc1a)
            continue;
        if (alternate_wake_sources && i % 2 == 0) {
            // IO wake: traffic on the NIC (no core involvement).
            soc.nic().transfer(100 * sim::kNs, nullptr);
        } else {
            // Core interrupt wake; the core idles again right after.
            const std::size_t c = static_cast<std::size_t>(i)
                % soc.numCores();
            soc.core(c).requestWake([&soc, &s, c] {
                s.after(2 * sim::kUs,
                        [&soc, c] { soc.core(c).release(); });
            });
        }
    }
    s.runUntil(s.now() + 100 * sim::kUs);
    entry_ns = soc.apmu()->entryLatencyNs();
    exit_ns = soc.apmu()->exitLatencyNs();
}

/** One full PC6 enter/exit pair on the Cdeep system. */
void
cyclePc6(double &entry_us, double &exit_us)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cdeep);
    cfg.ladder.cc1ToCc1e = 10 * sim::kUs;
    cfg.ladder.cc1eToCc6 = 50 * sim::kUs;
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cdeep);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(2 * sim::kMs);
    soc.core(0).requestWake(nullptr);
    s.runUntil(4 * sim::kMs);
    entry_us = soc.gpmu().entryLatencyUs().mean();
    exit_us = soc.gpmu().exitLatencyUs().mean();
}

} // namespace

int
main()
{
    bench::banner("Sec. 5.5: PC1A transition latency");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    stats::Summary entry_ns, exit_ns;
    cyclePc1a(400, entry_ns, exit_ns);

    double pc6_entry_us = 0, pc6_exit_us = 0;
    cyclePc6(pc6_entry_us, pc6_exit_us);

    std::FILE *csv = bench::csvSink();
    if (csv) {
        std::fprintf(csv, "flow,paper_ns,sim_avg_ns,sim_max_ns\n");
        std::fprintf(csv, "pc1a_entry,18,%.2f,%.2f\n", entry_ns.mean(),
                     entry_ns.max());
        std::fprintf(csv, "pc1a_exit,150,%.2f,%.2f\n", exit_ns.mean(),
                     exit_ns.max());
        std::fprintf(csv, "pc1a_round_trip,200,%.2f,%.2f\n",
                     entry_ns.mean() + exit_ns.mean(),
                     entry_ns.max() + exit_ns.max());
        std::fprintf(csv, "pc6_round_trip,50000,%.2f,%.2f\n",
                     (pc6_entry_us + pc6_exit_us) * 1000.0,
                     (pc6_entry_us + pc6_exit_us) * 1000.0);
    }
    const bool csv_ok = bench::closeCsv(csv);

    TablePrinter t("PC1A transition latency (ns) over " +
                   std::to_string(entry_ns.count()) + " entries / " +
                   std::to_string(exit_ns.count()) + " exits");
    t.header({"Flow", "Paper", "Sim avg", "Sim max"});
    t.row({"PC1A entry", "~18", TablePrinter::num(entry_ns.mean(), 1),
           TablePrinter::num(entry_ns.max(), 1)});
    t.row({"PC1A exit", "<=150", TablePrinter::num(exit_ns.mean(), 1),
           TablePrinter::num(exit_ns.max(), 1)});
    t.row({"PC1A entry+exit", "<=200",
           TablePrinter::num(entry_ns.mean() + exit_ns.mean(), 1),
           TablePrinter::num(entry_ns.max() + exit_ns.max(), 1)});
    t.print();

    TablePrinter t2("PC6 vs PC1A");
    t2.header({"Metric", "Paper", "Sim"});
    t2.row({"PC6 entry+exit (us)", ">50",
            TablePrinter::num(pc6_entry_us + pc6_exit_us, 1)});
    const double speedup = (pc6_entry_us + pc6_exit_us) * 1000.0 /
        (entry_ns.max() + exit_ns.max());
    t2.row({"PC1A speedup vs PC6", ">250x",
            TablePrinter::num(speedup, 0) + "x"});
    t2.print();
    return csv_ok ? 0 : 1;
}
