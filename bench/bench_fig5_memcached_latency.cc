/**
 * @file
 * Reproduces **Fig. 5**: Memcached average and tail latency for the
 * Cshallow vs Cdeep configurations across request rates. The shape to
 * match: Cshallow strictly better; Cdeep pays deep-C-state wakes at low
 * load and a queueing spike at high load (>=300K QPS).
 */

#include "bench_common.h"

using namespace apc;

int
main()
{
    bench::banner("Fig. 5: Cshallow vs Cdeep Memcached latency");
    using analysis::TablePrinter;

    const double qps_points[] = {4e3, 10e3, 25e3, 50e3, 100e3,
                                 200e3, 300e3, 400e3, 600e3};

    TablePrinter t("Fig. 5 — end-to-end latency (us); network ~117 us");
    t.header({"QPS", "avg Cshallow", "avg Cdeep", "p95 Cshallow",
              "p95 Cdeep", "p99 Cshallow", "p99 Cdeep"});
    for (const double qps : qps_points) {
        const auto wl = workload::WorkloadConfig::memcachedEtc(qps);
        const auto sh =
            bench::runServer(soc::PackagePolicy::Cshallow, wl);
        const auto dp = bench::runServer(soc::PackagePolicy::Cdeep, wl);
        t.row({TablePrinter::num(qps / 1000, 0) + "K",
               TablePrinter::num(sh.avgLatencyUs, 1),
               TablePrinter::num(dp.avgLatencyUs, 1),
               TablePrinter::num(sh.p95LatencyUs, 1),
               TablePrinter::num(dp.p95LatencyUs, 1),
               TablePrinter::num(sh.p99LatencyUs, 1),
               TablePrinter::num(dp.p99LatencyUs, 1)});
    }
    t.print();
    std::printf("\nExpected shape (paper): Cdeep above Cshallow "
                "everywhere; latency spike for Cdeep at high load from "
                "CC6/PC6 transition queueing.\n");
    return 0;
}
