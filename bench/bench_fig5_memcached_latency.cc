/**
 * @file
 * Reproduces **Fig. 5**: Memcached average and tail latency for the
 * Cshallow vs Cdeep configurations across request rates. The shape to
 * match: Cshallow strictly better; Cdeep pays deep-C-state wakes at low
 * load and a queueing spike at high load (>=300K QPS).
 */

#include "bench_common.h"

using namespace apc;

int
main()
{
    bench::banner("Fig. 5: Cshallow vs Cdeep Memcached latency");
    using analysis::TablePrinter;

    const double qps_points[] = {4e3, 10e3, 25e3, 50e3, 100e3,
                                 200e3, 300e3, 400e3, 600e3};

    TablePrinter t("Fig. 5 — end-to-end latency (us); network ~117 us");
    t.header({"QPS", "Csh avg", "Csh p95", "Csh p99", "Cdp avg",
              "Cdp p95", "Cdp p99"});
    for (const double qps : qps_points) {
        const auto wl = workload::WorkloadConfig::memcachedEtc(qps);
        const auto sh =
            bench::runServer(soc::PackagePolicy::Cshallow, wl);
        const auto dp = bench::runServer(soc::PackagePolicy::Cdeep, wl);
        std::vector<std::string> row{
            TablePrinter::num(qps / 1000, 0) + "K"};
        bench::appendCols(row, bench::latencyCols(sh));
        bench::appendCols(row, bench::latencyCols(dp));
        t.row(std::move(row));
    }
    t.print();
    std::printf("\nExpected shape (paper): Cdeep above Cshallow "
                "everywhere; latency spike for Cdeep at high load from "
                "CC6/PC6 transition queueing.\n");
    return 0;
}
