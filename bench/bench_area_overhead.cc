/**
 * @file
 * Reproduces **Sec. 5.1–5.3**: APC's die-area overhead — the long-
 * distance wires, controller glue logic, FIVR RVID registers and the
 * APMU FSM, totalling <0.75% of the SKX die.
 */

#include "bench_common.h"

#include "analysis/area_model.h"

using namespace apc;

int
main()
{
    bench::banner("Sec. 5: die-area overhead model");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    const analysis::AreaParams pessimistic; // 128-bit interconnect
    analysis::AreaParams wide = pessimistic;
    wide.ioInterconnectBits = 512;

    const auto b128 = analysis::computeAreaOverhead(pessimistic);
    const auto b512 = analysis::computeAreaOverhead(wide);

    TablePrinter t("Area overhead (fraction of SKX die)");
    t.header({"Component", "Paper bound", "Sim (128-bit IC)",
              "Sim (512-bit IC)"});
    t.row({"IOSM wires (5 signals)", "<0.24%",
           TablePrinter::percent(b128.iosmWires, 3),
           TablePrinter::percent(b512.iosmWires, 3)});
    t.row({"IOSM controller logic", "<0.08%",
           TablePrinter::percent(b128.iosmControllerLogic, 3),
           TablePrinter::percent(b512.iosmControllerLogic, 3)});
    t.row({"CLMR wires (3 signals)", "<0.14%",
           TablePrinter::percent(b128.clmrWires, 3),
           TablePrinter::percent(b512.clmrWires, 3)});
    t.row({"CLMR FIVR FCM logic", "<0.005%",
           TablePrinter::percent(b128.clmrFcm, 4),
           TablePrinter::percent(b512.clmrFcm, 4)});
    t.row({"APMU FSM", "<0.1%", TablePrinter::percent(b128.apmuLogic, 3),
           TablePrinter::percent(b512.apmuLogic, 3)});
    t.row({"InCC1 wires (3 signals)", "<0.14%",
           TablePrinter::percent(b128.incc1Wires, 3),
           TablePrinter::percent(b512.incc1Wires, 3)});
    t.row({"TOTAL", "<0.75%", TablePrinter::percent(b128.total(), 3),
           TablePrinter::percent(b512.total(), 3)});
    t.print();
    return 0;
}
