/**
 * @file
 * Reproduces **Table 1**: SoC + DRAM power and transition latency across
 * package states (PC0, PC0idle, PC6, PC1A) for the reference server.
 *
 * PC0 is measured with all cores saturated, PC0idle with all cores in
 * CC1 (Cshallow), PC6 by letting the Cdeep system sink fully, and PC1A
 * by letting the Cpc1a system sink. Latencies come from the respective
 * controllers' flow statistics.
 */

#include "bench_common.h"

using namespace apc;

namespace {

/** Saturating load: every core busy all the time. */
server::ServerResult
runSaturated(soc::PackagePolicy policy)
{
    auto wl = workload::WorkloadConfig::memcachedEtc(1.2e6);
    wl.arrivalKind = workload::ArrivalKind::Poisson;
    return bench::runServer(policy, wl, 50 * sim::kMs);
}

/** Idle run with OS noise off so the system sinks to its floor. */
server::ServerResult
runFloor(soc::PackagePolicy policy)
{
    auto wl = workload::WorkloadConfig::memcachedEtc(0);
    wl.noise.enabled = false;
    return bench::runServer(policy, wl, 100 * sim::kMs);
}

} // namespace

int
main()
{
    bench::banner("Table 1: power across package C-states");
    using analysis::TablePrinter;
    namespace ref = analysis::paper;

    const auto pc0 = runSaturated(soc::PackagePolicy::Cshallow);
    const auto pc0idle = runFloor(soc::PackagePolicy::Cshallow);
    const auto pc6 = runFloor(soc::PackagePolicy::Cdeep);
    const auto pc1a = runFloor(soc::PackagePolicy::Cpc1a);

    TablePrinter t("Table 1 — SoC + DRAM power per package state");
    t.header({"State", "Cores", "Latency (paper)", "SoC W (paper)",
              "SoC W (sim)", "DRAM W (paper)", "DRAM W (sim)",
              "Total W (sim)"});
    t.row({"PC0", ">=1 CC0", "0", "<=85.0",
           TablePrinter::num(pc0.pkgPowerW),
           TablePrinter::num(ref::kPc0DramW),
           TablePrinter::num(pc0.dramPowerW),
           TablePrinter::num(pc0.totalPowerW())});
    t.row({"PC0idle", "10x CC1", "0",
           TablePrinter::num(ref::kPc0idleSocW),
           TablePrinter::num(pc0idle.pkgPowerW),
           TablePrinter::num(ref::kPc0idleDramW),
           TablePrinter::num(pc0idle.dramPowerW),
           TablePrinter::num(pc0idle.totalPowerW())});
    t.row({"PC6", "10x CC6", ">50us",
           TablePrinter::num(ref::kPc6SocW),
           TablePrinter::num(pc6.pkgPowerW),
           TablePrinter::num(ref::kPc6DramW),
           TablePrinter::num(pc6.dramPowerW),
           TablePrinter::num(pc6.totalPowerW())});
    t.row({"PC1A", "10x CC1", "<200ns",
           TablePrinter::num(ref::kPc1aSocW),
           TablePrinter::num(pc1a.pkgPowerW),
           TablePrinter::num(ref::kPc1aDramW),
           TablePrinter::num(pc1a.dramPowerW),
           TablePrinter::num(pc1a.totalPowerW())});
    t.print();

    std::printf("\nPC1A vs PC0idle reduction: %s (paper: ~41%%)\n",
                TablePrinter::percent(
                    1.0 - pc1a.totalPowerW() / pc0idle.totalPowerW())
                    .c_str());
    return 0;
}
