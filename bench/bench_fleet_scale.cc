/**
 * @file
 * Fleet-engine scaling grid: wall-clock, events/sec and parallel
 * efficiency across a servers x threads sweep of the sharded engine.
 *
 * This is the sweep the sharded fleet engine was built for: thousands
 * of mostly-idle servers advanced in lockstep 200 µs epochs at ~10%
 * aggregate utilization (the energy-proportionality operating point).
 * Every cell also re-checks the determinism contract — the FleetReport
 * CSV row must match the single-threaded row for the same server count
 * byte-for-byte, whatever the thread count and shard layout.
 *
 * Output: human-readable table on stdout, per-cell CSV via
 * APC_BENCH_CSV, and a machine-readable summary at APC_BENCH_JSON
 * (default "BENCH_fleetscale.json") — consumed by CI to validate shape
 * and archive the scaling trajectory.
 *
 * Knobs: APC_BENCH_DURATION_MS (measurement window, default 40),
 * APC_BENCH_MAX_SERVERS (largest grid row, default 4096 — CI smoke
 * caps it to keep runtime in seconds).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/table_printer.h"
#include "bench_common.h"
#include "fleet/fleet_sim.h"

namespace apc {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Cell
{
    std::size_t servers = 0;
    unsigned threads = 0;
    std::size_t shardSize = 0;
    std::size_t numShards = 0;
    double wallSec = 0;
    double simSec = 0;
    std::uint64_t events = 0;
    double qps = 0;
    double p99Us = 0;
    // Engine self-profile: wall-clock per pipeline phase and the
    // advance phase's shard imbalance (max/mean shard time).
    double routeSec = 0;
    double advanceSec = 0;
    double mergeSec = 0;
    double imbalance = 1.0;
    std::string csvRow; ///< determinism cross-check payload
    double eventsPerSec() const
    {
        return wallSec > 0 ? static_cast<double>(events) / wallSec : 0;
    }
};

fleet::FleetConfig
scaleConfig(std::size_t servers, unsigned threads)
{
    fleet::FleetConfig fc;
    fc.numServers = servers;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.dispatch = fleet::DispatchKind::LeastOutstanding;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    const int fleet_cores = static_cast<int>(servers) *
        soc::SkxConfig::forPolicy(fc.policy).numCores;
    fc.traffic.qps = fc.workload.qpsForUtilization(0.10, fleet_cores);
    fc.sloUs = 10000.0;
    fc.warmup = 10 * sim::kMs;
    fc.duration = bench::benchDuration(40 * sim::kMs);
    fc.seed = 42;
    fc.threads = threads;
    return fc;
}

Cell
runCell(std::size_t servers, unsigned threads)
{
    Cell c;
    c.servers = servers;
    c.threads = threads;
    fleet::FleetConfig fc = scaleConfig(servers, threads);
    c.simSec = sim::toSeconds(fc.warmup + fc.duration);
    fleet::FleetSim fleet(fc);
    c.shardSize = fleet.shards().shardSize;
    c.numShards = fleet.shards().numShards;
    const auto t0 = Clock::now();
    const fleet::FleetReport rep = fleet.run();
    c.wallSec = secondsSince(t0);
    for (std::size_t i = 0; i < fleet.numServers(); ++i)
        c.events += fleet.server(i).sim().events().executedEvents();
    c.qps = rep.achievedQps;
    c.p99Us = rep.p99LatencyUs;
    using Phase = obs::PhaseProfiler::Phase;
    c.routeSec = fleet.profiler().totalSec(Phase::Route);
    c.advanceSec = fleet.profiler().totalSec(Phase::Advance);
    c.mergeSec = fleet.profiler().totalSec(Phase::Merge);
    c.imbalance = fleet.profiler().shardImbalance();
    c.csvRow = rep.csvRow();
    return c;
}

bool
writeJson(const char *path, const std::vector<Cell> &grid,
          bool deterministic)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return false;
    }
    bool ok = true;
    const auto put = [f, &ok](const char *fmt, auto... args) {
        if (std::fprintf(f, fmt, args...) < 0)
            ok = false;
    };
    put("{\n  \"bench\": \"fleet_scale\",\n");
    put("  \"schema_version\": %d,\n", bench::kBenchJsonSchemaVersion);
    put("  \"engine\": \"sharded\",\n");
    put("  \"deterministic_across_grid\": %s,\n",
        deterministic ? "true" : "false");
    put("  \"grid\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const Cell &c = grid[i];
        // speedup/efficiency vs the 1-thread cell of the same row.
        double base = c.wallSec;
        for (const Cell &d : grid)
            if (d.servers == c.servers && d.threads == 1)
                base = d.wallSec;
        const double speedup = c.wallSec > 0 ? base / c.wallSec : 0;
        put("    {\"servers\": %zu, \"threads\": %u, "
            "\"shard_size\": %zu, \"num_shards\": %zu, "
            "\"wall_sec\": %.3f, \"sim_sec\": %.3f, "
            "\"events\": %llu, \"events_per_sec\": %.0f, "
            "\"qps\": %.0f, \"p99_us\": %.1f, "
            "\"route_sec\": %.3f, \"advance_sec\": %.3f, "
            "\"merge_sec\": %.3f, \"shard_imbalance\": %.2f, "
            "\"speedup_vs_1t\": %.2f, "
            "\"parallel_efficiency\": %.2f}%s\n",
            c.servers, c.threads, c.shardSize, c.numShards, c.wallSec,
            c.simSec, static_cast<unsigned long long>(c.events),
            c.eventsPerSec(), c.qps, c.p99Us, c.routeSec, c.advanceSec,
            c.mergeSec, c.imbalance, speedup,
            speedup / static_cast<double>(c.threads),
            i + 1 < grid.size() ? "," : "");
    }
    put("  ]\n}\n");
    if (std::fclose(f) != 0 || !ok) {
        std::fprintf(stderr, "error: writing %s failed\n", path);
        return false;
    }
    std::printf("\nWrote %s\n", path);
    return true;
}

} // namespace
} // namespace apc

int
main()
{
    using namespace apc;
    using analysis::TablePrinter;

    bench::banner("fleet scaling (sharded engine)");

    std::size_t max_servers = 4096;
    if (const char *env = std::getenv("APC_BENCH_MAX_SERVERS"))
        if (const auto v = std::atoll(env); v > 0)
            max_servers = static_cast<std::size_t>(v);

    std::vector<std::size_t> server_counts;
    for (std::size_t s = 256; s <= max_servers; s *= 4)
        server_counts.push_back(s);
    if (server_counts.empty())
        server_counts.push_back(max_servers);
    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv,
                     "servers,threads,shard_size,num_shards,wall_sec,"
                     "events,events_per_sec,qps,p99_us,route_sec,"
                     "advance_sec,merge_sec,shard_imbalance\n");

    std::vector<Cell> grid;
    bool deterministic = true;
    TablePrinter t("Fleet scaling grid (10% load, 200 µs epochs)");
    t.header({"Servers", "Threads", "Shards", "Wall (s)", "Mev/s",
              "Speedup", "Eff", "Imbal", "p99 (us)"});
    for (std::size_t servers : server_counts) {
        double base = 0;
        std::string ref_row;
        for (unsigned threads : thread_counts) {
            const Cell c = runCell(servers, threads);
            if (threads == 1) {
                base = c.wallSec;
                ref_row = c.csvRow;
            } else if (c.csvRow != ref_row) {
                deterministic = false;
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: servers=%zu "
                             "threads=%u report differs from 1-thread "
                             "run\n",
                             servers, threads);
            }
            const double speedup =
                c.wallSec > 0 && base > 0 ? base / c.wallSec : 0;
            t.row({TablePrinter::num(static_cast<double>(servers), 0),
                   TablePrinter::num(threads, 0),
                   TablePrinter::num(static_cast<double>(c.numShards),
                                     0),
                   TablePrinter::num(c.wallSec, 2),
                   TablePrinter::num(c.eventsPerSec() / 1e6, 2),
                   TablePrinter::num(speedup, 2),
                   TablePrinter::num(
                       speedup / static_cast<double>(threads), 2),
                   TablePrinter::num(c.imbalance, 2),
                   TablePrinter::num(c.p99Us, 0)});
            if (csv)
                std::fprintf(csv,
                             "%zu,%u,%zu,%zu,%.3f,%llu,%.0f,%.0f,%.1f,"
                             "%.3f,%.3f,%.3f,%.2f\n",
                             c.servers, c.threads, c.shardSize,
                             c.numShards, c.wallSec,
                             static_cast<unsigned long long>(c.events),
                             c.eventsPerSec(), c.qps, c.p99Us,
                             c.routeSec, c.advanceSec, c.mergeSec,
                             c.imbalance);
            grid.push_back(c);
        }
    }
    t.print();
    std::printf(
        "(speedup/efficiency vs the 1-thread cell of the same row; on "
        "a single-core host threads cannot pay — the interesting "
        "single-core number is events/sec, which the sharded engine "
        "lifts via O(log n) dispatch, bucketed staging and wheel-jump "
        "advances)\nDeterminism across the grid: %s\n",
        deterministic ? "OK (reports byte-identical)" : "VIOLATED");
    const bool csv_ok = bench::closeCsv(csv);

    const char *json_path = std::getenv("APC_BENCH_JSON");
    const bool json_ok =
        writeJson(json_path && *json_path ? json_path
                                          : "BENCH_fleetscale.json",
                  grid, deterministic);
    return (deterministic && csv_ok && json_ok) ? 0 : 1;
}
