/**
 * @file
 * NIC interrupt-coalescing sweep over the network fabric.
 *
 * The scenario the repo could not express before this subsystem: an
 * 8-server fleet whose requests ride real links into real NICs, where
 * a *coalesced interrupt* — not the injected request — is what exits
 * the package C-state. Sweeping the moderation window (`rx-usecs`) at
 * several aggregate loads exposes the paper's motivating three-way
 * trade-off, all measured in one run per point:
 *
 *  - wider window -> fewer interrupts -> fewer package wakes -> higher
 *    PC1A residency;
 *  - shared wakes + longer quiet periods -> lower joules/request;
 *  - packets wait in the RX ring -> measurably higher p99 latency.
 *
 * APC_BENCH_DURATION_MS scales the per-point window;
 * APC_BENCH_CSV=<path> writes the sweep as CSV for plotting.
 */

#include "bench_common.h"

using namespace apc;

namespace {

fleet::FleetReport
runPoint(double util, sim::Tick rx_usecs)
{
    auto fc = bench::fleetLoadConfig(
        8, fleet::DispatchKind::LeastOutstanding, util,
        workload::WorkloadConfig::memcachedEtc(0));
    fc.sloUs = 2000.0;
    fc.fabric.enabled = true;
    fc.nic.enabled = true;
    fc.nic.rxUsecs = rx_usecs;
    fc.nic.rxFrames = 64; // high threshold: the timer sets the window
    // Attribution splits each request's tail cost into causal segments
    // — the ring-wait vs package-wake trade-off measured directly.
    bench::enableAttribution(fc);
    // Health: wide windows trade tail for residency; the burn-rate
    // columns show when that trade starts costing SLO budget, and the
    // auditor cross-checks link/flight conservation on every point.
    bench::enableHealth(fc);
    fc.health.slo.latencyThresholdUs = fc.sloUs;
    return fleet::FleetSim(fc).run();
}

} // namespace

int
main()
{
    bench::banner("Network fabric: NIC coalescing window sweep");
    using analysis::TablePrinter;

    const double loads[] = {0.10, 0.30};
    const sim::Tick windows_us[] = {0, 10, 25, 50, 100, 250};

    TablePrinter t("8-server fleet over ToR fabric, Memcached-ETC, "
                   "MMPP arrivals, C_PC1A servers — rx-usecs vs "
                   "p99 / PC1A residency / J/req");
    std::vector<std::string> hdr{
        "Load", "rx-usecs", "irq/s/srv", "pkts/irq", "p99 (us)",
        "PC1A res", "Fleet W", "J/req", "lost", "t.ring us",
        "t.wake us", "tail blame"};
    bench::appendCols(hdr, bench::healthColHeaders());
    t.header(std::move(hdr));

    std::FILE *csv = bench::csvSink();
    if (csv)
        std::fprintf(csv, "load,rx_usecs,%s,%s,%s\n",
                     fleet::FleetReport::csvHeader().c_str(),
                     bench::blameCsvHeader(obs::Segment::NicRing,
                                           obs::Segment::Wake)
                         .c_str(),
                     bench::healthCsvHeader().c_str());

    const double window_s =
        sim::toSeconds(bench::benchDuration(300 * sim::kMs));
    std::vector<std::pair<fleet::FleetReport, fleet::FleetReport>>
        endpoints; // (narrowest, widest) window per load
    for (const double load : loads) {
        fleet::FleetReport base, wide;
        for (const sim::Tick w : windows_us) {
            const auto r = runPoint(load, w * sim::kUs);
            if (w == windows_us[0])
                base = r;
            wide = r;
            const double irq_rate = static_cast<double>(r.nicInterrupts)
                / (window_s * static_cast<double>(r.numServers));
            std::vector<std::string> row{
                TablePrinter::percent(load, 0),
                TablePrinter::num(static_cast<double>(w), 0),
                TablePrinter::num(irq_rate, 0),
                TablePrinter::num(r.nicPktsPerIrq.mean(), 2),
                TablePrinter::num(r.p99LatencyUs, 0),
                TablePrinter::percent(r.pc1aResidency()),
                TablePrinter::watts(r.totalPowerW()),
                TablePrinter::num(r.joulesPerRequest, 4),
                TablePrinter::num(static_cast<double>(r.lostRequests),
                                  0)};
            bench::appendCols(row,
                              bench::blameCols(r, obs::Segment::NicRing,
                                               obs::Segment::Wake));
            bench::appendCols(row, bench::healthCols(r));
            t.row(std::move(row));
            if (csv)
                std::fprintf(csv, "%.2f,%lld,%s,%s,%s\n", load,
                             static_cast<long long>(w),
                             r.csvRow().c_str(),
                             bench::blameCsvCols(r,
                                                 obs::Segment::NicRing,
                                                 obs::Segment::Wake)
                                 .c_str(),
                             bench::healthCsvCols(r).c_str());
        }
        endpoints.emplace_back(std::move(base), std::move(wide));
    }
    t.print();
    const bool csv_ok = bench::closeCsv(csv);

    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const auto &[base, wide] = endpoints[i];
        std::printf("\nAt %2.0f%%: rx-usecs %lld -> %lld moves PC1A "
                    "%s -> %s, J/req %.4f -> %.4f, p99 %+0.0f us, "
                    "tail blame %s -> %s",
                    loads[i] * 100,
                    static_cast<long long>(windows_us[0]),
                    static_cast<long long>(
                        windows_us[std::size(windows_us) - 1]),
                    TablePrinter::percent(base.pc1aResidency()).c_str(),
                    TablePrinter::percent(wide.pc1aResidency()).c_str(),
                    base.joulesPerRequest, wide.joulesPerRequest,
                    wide.p99LatencyUs - base.p99LatencyUs,
                    obs::segmentName(base.attribution.tailDominant()),
                    obs::segmentName(wide.attribution.tailDominant()));
    }
    std::printf("\n");

    std::printf("\nReading: the moderation window is the knob that "
                "converts tail-latency headroom into package C-state "
                "residency — the NIC holds packets, the package sleeps "
                "through them, and one DMA burst pays one wake for the "
                "whole batch.\n");
    return csv_ok ? 0 : 1;
}
