/**
 * @file
 * Dual-socket extension study (beyond the paper's single-socket
 * evaluation, using the UPI L0p machinery of Sec. 4.2.1): a second,
 * computationally idle socket serves a fraction of memory accesses
 * (memory-expansion NUMA). Every remote touch punctures the remote
 * package's idle state.
 *
 * Compares, per remote-access fraction: the remote socket's power and
 * PC1A residency, and the request-latency cost — Cshallow (remote
 * socket never sleeps), CPC1A (ns-scale remote wake), Cdeep (remote
 * PC6 thrash: µs-scale remote wakes).
 */

#include "bench_common.h"

using namespace apc;

namespace {

server::ServerResult
runNuma(soc::PackagePolicy policy, double remote_fraction)
{
    server::ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(25e3);
    cfg.duration = bench::benchDuration(200 * sim::kMs);
    cfg.numa.enabled = true;
    cfg.numa.remoteFraction = remote_fraction;
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

} // namespace

int
main()
{
    bench::banner("Extension: dual-socket remote-memory traffic");
    using analysis::TablePrinter;

    const double fractions[] = {0.0, 0.05, 0.2, 0.5};

    TablePrinter t("Remote socket under 25K QPS Memcached on socket 0");
    t.header({"remote frac", "policy", "remote W", "remote PC1A res.",
              "remote wakes/s", "avg lat us", "p99 us"});
    for (const double f : fractions) {
        for (const auto policy :
             {soc::PackagePolicy::Cshallow, soc::PackagePolicy::Cpc1a,
              soc::PackagePolicy::Cdeep}) {
            const auto r = runNuma(policy, f);
            std::vector<std::string> row{
                TablePrinter::percent(f, 0), soc::policyName(policy),
                TablePrinter::num(r.remotePkgPowerW +
                                  r.remoteDramPowerW),
                TablePrinter::percent(r.remotePc1aResidency),
                TablePrinter::num(
                    static_cast<double>(r.remoteWakes) /
                        sim::toSeconds(
                            bench::benchDuration(200 * sim::kMs)),
                    0)};
            bench::appendCols(row,
                              bench::latencyCols(r, 1, false));
            t.row(std::move(row));
        }
    }
    t.print();
    std::printf("\nReading: with APC the remote socket keeps most of "
                "its PC1A residency even at 50%% remote traffic (each "
                "touch costs ~300 ns of wake), while Cdeep pays a "
                "PC6/self-refresh exit per quiet period and Cshallow "
                "never saves anything.\n");
    return 0;
}
