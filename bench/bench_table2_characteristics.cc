/**
 * @file
 * Reproduces **Table 2**: package C-state characteristics — which state
 * each shared resource (L3/CLM, PLLs, PCIe/DMI, UPI, DRAM) reaches in
 * PC0, PC6 and PC1A. Read directly from the simulated hardware after
 * letting each configuration settle.
 */

#include "bench_common.h"

#include "soc/soc.h"

using namespace apc;

namespace {

struct Snapshot
{
    std::string l3;
    std::string plls;
    std::string pcie_dmi;
    std::string upi;
    std::string dram;
};

Snapshot
snapshot(soc::Soc &soc)
{
    Snapshot s;
    const bool running = soc.clm().clockTree().running();
    const double v = soc.clm().voltage();
    s.l3 = running && v >= soc.config().clm.fivr.nominalVolts
        ? "Accessible"
        : (v <= soc.config().clm.fivr.retentionVolts + 1e-9 ? "Retention"
                                                            : "Transition");
    s.plls = soc.plls().allLocked() ? "On" : "Off";
    s.pcie_dmi = io::lstateName(soc.link(0).state());
    s.upi = io::lstateName(soc.link(4).state());
    switch (soc.mc(0).state()) {
      case dram::McState::Active:
        s.dram = "Available";
        break;
      case dram::McState::CkeOff:
        s.dram = "CKE off";
        break;
      case dram::McState::SelfRefresh:
        s.dram = "Self Refresh";
        break;
    }
    return s;
}

Snapshot
settle(soc::PackagePolicy policy, bool idle)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(policy);
    soc::Soc soc(s, cfg, policy);
    if (idle)
        for (std::size_t i = 0; i < soc.numCores(); ++i)
            soc.core(i).release();
    s.runUntil(5 * sim::kMs);
    return snapshot(soc);
}

} // namespace

int
main()
{
    bench::banner("Table 2: package C-state characteristics");
    using analysis::TablePrinter;

    const auto pc0 = settle(soc::PackagePolicy::Cshallow, false);
    const auto pc6 = settle(soc::PackagePolicy::Cdeep, true);
    const auto pc1a = settle(soc::PackagePolicy::Cpc1a, true);

    TablePrinter t("Table 2 — simulated resource states per package "
                   "C-state (paper values in brackets)");
    t.header({"PCx", "Cores in", "L3 Cache", "PLLs", "PCIe/DMI", "UPI",
              "DRAM"});
    t.row({"PC0", ">=1 CC0", pc0.l3 + " [Accessible]", pc0.plls + " [On]",
           pc0.pcie_dmi + " [L0]", pc0.upi + " [L0]",
           pc0.dram + " [Available]"});
    t.row({"PC6", "All CC6", pc6.l3 + " [Retention]", pc6.plls + " [Off]",
           pc6.pcie_dmi + " [L1]", pc6.upi + " [L1]",
           pc6.dram + " [Self Refresh]"});
    t.row({"PC1A", "All CC1", pc1a.l3 + " [Retention]",
           pc1a.plls + " [On]", pc1a.pcie_dmi + " [L0s]",
           pc1a.upi + " [L0p]", pc1a.dram + " [CKE off]"});
    t.print();
    return 0;
}
