#!/usr/bin/env python3
"""Determinism linter for the AgilePkgC fleet engine.

The engine's headline guarantee is that reports are byte-identical
across thread counts and shard layouts. That property dies quietly: an
unordered-container iteration leaking into a report sink, a wall-clock
read in a simulation path, a mutable global accumulating across runs.
This linter statically bans the construct families that historically
break bit-identity, over the translation units listed in
compile_commands.json plus every header under src/.

Rules live in tools/lint_rules.toml. Each rule carries its own path
scope and file allowlist; individual lines are waived with

    // lint:allow(rule-id) reason why this is deterministic

where the reason is mandatory — an allow without a reason is itself a
finding, so the waiver trail stays auditable.

Usage:
    lint_determinism.py                          # lint the tree
    lint_determinism.py --report lint_report.txt # also write a report
    lint_determinism.py --self-test tests/test_lint_corpus
                                                 # prove every rule fires

Exit codes: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - needs python >= 3.11
    sys.stderr.write("lint_determinism: python >= 3.11 required "
                     "(tomllib)\n")
    sys.exit(2)

ALLOW_RE = re.compile(r"lint:allow\(([a-z0-9-]+)\)\s*(.*?)\s*(?:\*/.*)?$")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;]*?>\s*[&*]?\s*(\w+)\s*"
    r"(?:;|=|\{|\)|,|APC_GUARDED_BY)")
UNORDERED_ALIAS_RE = re.compile(
    r"\b(?:using\s+(\w+)\s*=[^;]*\bunordered_(?:multi)?(?:map|set)\b"
    r"|typedef\s+[^;]*\bunordered_(?:multi)?(?:map|set)\b[^;]*?\s(\w+)\s*;)")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+(?:\s*=[^,;]*)?"
                           r"(?:\s*,\s*\w+(?:\s*=[^,;]*)?)*)\s*;")
FLOAT_NAME_RE = re.compile(r"(\w+)(?:\s*=[^,;]*)?")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*(.+)\)")
ACCUM_RE = re.compile(r"\b(\w+)(?:\[[^\]]*\])?(?:\.\w+)?\s*[+\-]\s*=")
LOOP_OPEN_RE = re.compile(r"\b(?:for|while)\s*\(")
MUTABLE_GLOBAL_RE = re.compile(
    r"^\s*(?:inline\s+)?(?:static|thread_local)\s+"
    r"(?!const\b|constexpr\b|inline\s+const)"
    r"[\w:]+(?:\s*<[\w:,\s*&<>]*>)?(?:\s*[*&])?\s+(\w+)\s*(?:=|;|\{)")


def strip_code(text: str) -> list[str]:
    """Return per-line source with comments and literal contents blanked.

    Keeps line structure (so line numbers survive) and keeps quote
    characters (so regexes stay anchored), but erases everything inside
    // and block comments, string literals, and char literals — a banned
    token inside a comment or log string is not a finding.
    """
    out: list[str] = []
    state = "code"  # code | block | str | chr
    for raw in text.splitlines():
        buf: list[str] = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if state == "code":
                if c == "/" and nxt == "/":
                    break  # rest of line is a comment
                if c == "/" and nxt == "*":
                    state = "block"
                    buf.append("  ")
                    i += 2
                    continue
                if c == '"':
                    state = "str"
                    buf.append('"')
                    i += 1
                    continue
                if c == "'":
                    state = "chr"
                    buf.append("'")
                    i += 1
                    continue
                buf.append(c)
                i += 1
            elif state == "block":
                if c == "*" and nxt == "/":
                    state = "code"
                    buf.append("  ")
                    i += 2
                    continue
                buf.append(" ")
                i += 1
            elif state == "str":
                if c == "\\":
                    buf.append("  ")
                    i += 2
                    continue
                if c == '"':
                    state = "code"
                    buf.append('"')
                    i += 1
                    continue
                buf.append(" ")
                i += 1
            else:  # chr
                if c == "\\":
                    buf.append("  ")
                    i += 2
                    continue
                if c == "'":
                    state = "code"
                    buf.append("'")
                    i += 1
                    continue
                buf.append(" ")
                i += 1
        # Unterminated string/char literal at EOL: literals don't span
        # lines in this codebase; recover rather than poison the file.
        if state in ("str", "chr"):
            state = "code"
        out.append("".join(buf))
    return out


class Finding:
    def __init__(self, path: Path, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


class FileScan:
    """Per-file lexed view: raw lines, code lines, allows, loop spans."""

    def __init__(self, path: Path, text: str):
        self.path = path
        self.raw = text.splitlines()
        self.code = strip_code(text)
        # lint:allow markers by the line they waive: a marker waives its
        # own line, or — when it sits in a standalone comment — the
        # first code line after the comment block.
        self.allows: dict[int, tuple[str, str]] = {}
        for idx, line in enumerate(self.raw):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            target = idx
            if re.match(r"^\s*(//|/\*|\*)", line):
                target = idx + 1
                while target < len(self.raw) and \
                        re.match(r"^\s*(//|/\*|\*)", self.raw[target]):
                    target += 1
            self.allows[target] = (m.group(1), m.group(2))
        self.in_loop = self._loop_spans()

    def _loop_spans(self) -> list[bool]:
        """True per line when inside a for/while body.

        Brace-tracked for braced bodies; a brace-less body ends at the
        first ';' outside parentheses (good enough for the one-statement
        bodies this codebase writes).
        """
        flags = [False] * len(self.code)
        depth = 0
        loop_depths: list[int] = []
        pending = 0  # loop headers still awaiting a body
        paren = 0
        for idx, line in enumerate(self.code):
            if loop_depths or pending:
                flags[idx] = True
            i = 0
            while i < len(line):
                m = LOOP_OPEN_RE.match(line, i)
                if m:
                    pending += 1
                    paren += 1
                    flags[idx] = True
                    i = m.end()
                    continue
                c = line[i]
                if c == "(":
                    paren += 1
                elif c == ")":
                    paren = max(0, paren - 1)
                elif c == "{":
                    depth += 1
                    if pending:
                        loop_depths.append(depth)
                        pending -= 1
                elif c == "}":
                    if loop_depths and loop_depths[-1] == depth:
                        loop_depths.pop()
                    depth = max(0, depth - 1)
                elif c == ";" and pending and paren == 0:
                    pending -= 1
                i += 1
        return flags


class Linter:
    def __init__(self, root: Path, config: dict):
        self.root = root
        self.rules: dict[str, dict] = config.get("rules", {})
        self.scans: dict[Path, FileScan] = {}
        self.includes: dict[Path, list[Path]] = {}
        self.findings: list[Finding] = []
        self.bad_allows: list[Finding] = []
        self.used_allows: set[tuple[Path, int]] = set()

    # ---- file loading ----------------------------------------------------

    def load(self, path: Path) -> FileScan | None:
        path = path.resolve()
        if path in self.scans:
            return self.scans[path]
        try:
            text = path.read_text(errors="replace")
        except OSError:
            return None
        scan = FileScan(path, text)
        self.scans[path] = scan
        incs = []
        for line in scan.raw:
            m = INCLUDE_RE.match(line)
            if m:
                cand = self.root / "src" / m.group(1)
                if cand.is_file():
                    incs.append(cand.resolve())
        self.includes[path] = incs
        return scan

    def include_closure(self, path: Path) -> list[Path]:
        seen: set[Path] = set()
        stack = [path.resolve()]
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            if self.load(p) is not None:
                stack.extend(self.includes.get(p, []))
        return sorted(seen)

    # ---- symbol tables ---------------------------------------------------

    def unordered_names(self, path: Path) -> set[str]:
        """Identifiers declared (here or in project includes) as
        unordered containers, including through using/typedef aliases."""
        names: set[str] = set()
        aliases: set[str] = set()
        closure = self.include_closure(path)
        for p in closure:
            scan = self.scans.get(p)
            if not scan:
                continue
            for line in scan.code:
                for m in UNORDERED_ALIAS_RE.finditer(line):
                    aliases.add(m.group(1) or m.group(2))
        for p in closure:
            scan = self.scans.get(p)
            if not scan:
                continue
            for line in scan.code:
                for m in UNORDERED_DECL_RE.finditer(line):
                    names.add(m.group(1))
                for alias in aliases:
                    dm = re.search(
                        rf"\b{re.escape(alias)}\s+(\w+)\s*(?:;|=|\{{)",
                        line)
                    if dm:
                        names.add(dm.group(1))
        return names

    def float_names(self, scan: FileScan) -> set[str]:
        names: set[str] = set()
        for line in scan.code:
            for m in FLOAT_DECL_RE.finditer(line):
                for dm in FLOAT_NAME_RE.finditer(m.group(1)):
                    names.add(dm.group(1))
            for m in re.finditer(r"\bvector\s*<\s*(?:double|float)\s*>"
                                 r"(?:\s*&)?\s+(\w+)", line):
                names.add(m.group(1))
        return names

    # ---- finding emission (allow-aware) ----------------------------------

    def emit(self, scan: FileScan, idx: int, rule: str, msg: str):
        allow = scan.allows.get(idx)
        if allow and allow[0] == rule:
            self.used_allows.add((scan.path, idx))
            if not allow[1]:
                self.bad_allows.append(Finding(
                    scan.path, idx + 1, rule,
                    "lint:allow without a reason — explain why this "
                    "is deterministic"))
            return
        self.findings.append(Finding(scan.path, idx + 1, rule, msg))

    def rule_applies(self, rule: str, path: Path) -> bool:
        cfg = self.rules.get(rule)
        if cfg is None:
            return False
        rel = path.relative_to(self.root).as_posix() \
            if path.is_relative_to(self.root) else path.as_posix()
        paths = cfg.get("paths", [])
        if paths and not any(rel.startswith(p) for p in paths):
            return False
        for allowed in cfg.get("allow_files", []):
            if rel == allowed:
                return False
        return True

    # ---- rules -----------------------------------------------------------

    def check_unordered_iteration(self, scan: FileScan):
        rule = "unordered-iteration"
        names = self.unordered_names(scan.path)
        for idx, line in enumerate(scan.code):
            m = RANGE_FOR_RE.search(line)
            expr = None
            if m:
                expr = m.group(1)
            elif idx + 1 < len(scan.code) and \
                    re.search(r"\bfor\s*\([^;:()]*:\s*$", line):
                expr = scan.code[idx + 1]
            if expr is not None:
                if "unordered_" in expr or any(
                        re.search(rf"\b{re.escape(n)}\s*\)?\s*$",
                                  expr.strip()) for n in names):
                    self.emit(scan, idx, rule,
                              "iteration over an unordered container "
                              "— hash order is not deterministic "
                              "across platforms or runs; sort first "
                              "or use an ordered structure")
                    continue
            for n in names:
                if re.search(rf"\b{re.escape(n)}\s*\.\s*c?begin\s*\(",
                             line):
                    self.emit(scan, idx, rule,
                              f"iterator walk over unordered "
                              f"container '{n}' — hash order leaks "
                              f"into results; sort first")
                    break

    def check_regex_rule(self, scan: FileScan, rule: str,
                         patterns: list[tuple[re.Pattern, str]]):
        for idx, line in enumerate(scan.code):
            for pat, msg in patterns:
                if pat.search(line):
                    self.emit(scan, idx, rule, msg)
                    break

    def check_mutable_global(self, scan: FileScan):
        rule = "mutable-global"
        for idx, line in enumerate(scan.code):
            if "static_assert" in line or "static_cast" in line:
                continue
            m = MUTABLE_GLOBAL_RE.match(line)
            if m:
                self.emit(scan, idx, rule,
                          f"mutable static/thread_local state '"
                          f"{m.group(1)}' — cross-run state breaks "
                          f"replay determinism and cross-thread state "
                          f"breaks layout invariance")
            elif re.match(r"^\s*thread_local\b", line):
                self.emit(scan, idx, rule,
                          "thread_local state — results must not "
                          "depend on which thread ran the work")

    def check_float_accum(self, scan: FileScan):
        rule = "float-accum"
        names = self.float_names(scan)
        for idx, line in enumerate(scan.code):
            if not scan.in_loop[idx]:
                continue
            for m in ACCUM_RE.finditer(line):
                if m.group(1) in names:
                    self.emit(scan, idx, rule,
                              f"floating-point accumulation into "
                              f"'{m.group(1)}' inside a loop — "
                              f"FP addition is not associative, so "
                              f"the shape of the reduction must be "
                              f"layout-invariant; use the "
                              f"stats/reduce.h fixed-shape tree or "
                              f"prove the iteration order fixed")
                    break

    def check_pointer_key_order(self, scan: FileScan):
        rule = "pointer-key-order"
        pats = [
            (re.compile(r"\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<"
                        r"\s*(?:const\s+)?[\w:]+\s*\*"),
             "ordered container keyed by pointer — allocation "
             "addresses vary run to run, so the order is not "
             "reproducible; key by a stable id instead"),
            (re.compile(r"\bstd\s*::\s*less\s*<\s*(?:const\s+)?[\w:]+"
                        r"\s*\*\s*>"),
             "pointer comparison as an ordering — addresses vary run "
             "to run; compare stable ids instead"),
        ]
        for idx, line in enumerate(scan.code):
            if re.search(r"\bunordered_", line):
                continue  # hashing pointers is the other rule's beat
            for pat, msg in pats:
                if pat.search(line):
                    self.emit(scan, idx, rule, msg)
                    break

    WALL_CLOCK_PATTERNS = [
        (re.compile(r"\bchrono\s*::\s*(?:system_clock|steady_clock|"
                    r"high_resolution_clock)\b"),
         "host clock read — simulated time comes from sim::Tick; wall "
         "clocks differ run to run"),
        (re.compile(r"\b(?:time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
         "libc wall/CPU clock read in a simulation path"),
        (re.compile(r"\b(?:gettimeofday|clock_gettime|localtime|"
                    r"strftime|ctime)\s*\("),
         "libc time API in a simulation path"),
    ]

    RNG_PATTERNS = [
        (re.compile(r"\b(?:rand|srand|rand_r)\s*\("),
         "libc RNG — unseeded ambient randomness breaks replay; use "
         "the seeded sim::Rng streams"),
        (re.compile(r"\bstd\s*::\s*random_device\b|\brandom_device\s+"),
         "std::random_device — hardware entropy is unreplayable; "
         "derive streams from the run seed"),
        (re.compile(r"\bdefault_random_engine\b"),
         "default_random_engine — implementation-defined engine "
         "varies across standard libraries; use the explicit seeded "
         "engine in sim/rng.h"),
    ]

    FAULT_RNG_PATTERNS = [
        (re.compile(r"\bsim\s*::\s*Rng\b|\bRng\s+\w+\s*[({]|"
                    r"#\s*include\s*[\"<]sim/rng\.h"),
         "stateful sim::Rng in the fault subsystem — the failure "
         "schedule must be a pure function of (seed, entity, kind, "
         "counter); use the counter-based substream API in "
         "fault/fault.h"),
        (re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
                    r"ranlux\w+|knuth_b)\b"),
         "<random> engine in the fault subsystem — stateful draw "
         "order varies with layout; use counter-based substreams"),
        (re.compile(r"\b(?:uniform_(?:int|real)_distribution|"
                    r"exponential_distribution|normal_distribution|"
                    r"poisson_distribution|bernoulli_distribution)\b"),
         "<random> distribution in the fault subsystem — consumes a "
         "stateful engine; use substreamU01/substreamExp instead"),
    ]

    # ---- driver ----------------------------------------------------------

    def lint_file(self, path: Path):
        scan = self.load(path)
        if scan is None:
            return
        if self.rule_applies("unordered-iteration", path):
            self.check_unordered_iteration(scan)
        if self.rule_applies("wall-clock", path):
            self.check_regex_rule(scan, "wall-clock",
                                  self.WALL_CLOCK_PATTERNS)
        if self.rule_applies("ambient-rng", path):
            self.check_regex_rule(scan, "ambient-rng", self.RNG_PATTERNS)
        if self.rule_applies("mutable-global", path):
            self.check_mutable_global(scan)
        if self.rule_applies("float-accum", path):
            self.check_float_accum(scan)
        if self.rule_applies("pointer-key-order", path):
            self.check_pointer_key_order(scan)
        if self.rule_applies("fault-rng", path):
            self.check_regex_rule(scan, "fault-rng",
                                  self.FAULT_RNG_PATTERNS)

    def check_stale_allows(self):
        """An allow that waives nothing is dead weight — flag it so the
        escape-hatch inventory can only shrink."""
        for path, scan in self.scans.items():
            for idx, (rule, _reason) in scan.allows.items():
                if rule not in self.rules:
                    self.bad_allows.append(Finding(
                        path, idx + 1, rule,
                        f"lint:allow names unknown rule '{rule}'"))
                elif (path, idx) not in self.used_allows and \
                        self.rule_applies(rule, path):
                    self.bad_allows.append(Finding(
                        path, idx + 1, rule,
                        "stale lint:allow — the waived construct is "
                        "gone; remove the marker"))


def collect_files(root: Path, compile_commands: Path | None) -> list[Path]:
    files: set[Path] = set()
    if compile_commands and compile_commands.is_file():
        for entry in json.loads(compile_commands.read_text()):
            f = Path(entry["file"])
            if not f.is_absolute():
                f = Path(entry["directory"]) / f
            f = f.resolve()
            if f.is_file() and root.resolve() in f.parents:
                files.add(f)
    for pattern in ("src/**/*.h", "src/**/*.cc", "bench/**/*.h",
                    "bench/**/*.cc", "examples/**/*.cpp"):
        files.update(p.resolve() for p in root.glob(pattern))
    return sorted(files)


def run_self_test(corpus: Path, config: dict) -> int:
    """Prove each rule fires on its known-bad file and that lint:allow
    suppresses findings (while an unexplained allow is still caught)."""
    failures = []
    rule_ids = list(config.get("rules", {}))
    for rule in rule_ids:
        bad = corpus / f"bad_{rule.replace('-', '_')}.cc"
        if not bad.is_file():
            failures.append(f"missing corpus file for rule: {bad}")
            continue
        linter = Linter(corpus, config)
        # Self-test scope: every rule applies to the corpus root.
        for cfg in linter.rules.values():
            cfg["paths"] = []
            cfg["allow_files"] = []
        linter.lint_file(bad)
        fired = {f.rule for f in linter.findings}
        if rule not in fired:
            failures.append(f"rule '{rule}' did NOT fire on {bad.name} "
                            f"(fired: {sorted(fired) or 'nothing'})")
        else:
            print(f"  ok: {rule} fires on {bad.name}")
    # Allowed file: every violation waived with a reason -> clean.
    allowed = corpus / "allowed_ok.cc"
    if allowed.is_file():
        linter = Linter(corpus, config)
        for cfg in linter.rules.values():
            cfg["paths"] = []
            cfg["allow_files"] = []
        linter.lint_file(allowed)
        linter.check_stale_allows()
        if linter.findings or linter.bad_allows:
            failures.append(
                "allowed_ok.cc should lint clean, got: " + "; ".join(
                    str(f) for f in linter.findings + linter.bad_allows))
        else:
            print("  ok: lint:allow with a reason suppresses findings")
    else:
        failures.append(f"missing corpus file: {allowed}")
    # Unexplained allow: the waiver itself must be flagged.
    unexplained = corpus / "bad_allow_without_reason.cc"
    if unexplained.is_file():
        linter = Linter(corpus, config)
        for cfg in linter.rules.values():
            cfg["paths"] = []
            cfg["allow_files"] = []
        linter.lint_file(unexplained)
        if not linter.bad_allows:
            failures.append("bad_allow_without_reason.cc: reasonless "
                            "lint:allow was not flagged")
        else:
            print("  ok: lint:allow without a reason is itself flagged")
    else:
        failures.append(f"missing corpus file: {unexplained}")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test passed: {len(rule_ids)} rules + allow semantics")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__)
                    .resolve().parent.parent)
    ap.add_argument("--rules", type=Path, default=None,
                    help="rules TOML (default: tools/lint_rules.toml)")
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json to enumerate TUs from")
    ap.add_argument("--report", type=Path, default=None,
                    help="also write findings to this file")
    ap.add_argument("--self-test", type=Path, default=None,
                    metavar="CORPUS_DIR",
                    help="run the known-bad corpus instead of the tree")
    ap.add_argument("files", nargs="*", type=Path,
                    help="lint only these files (default: whole tree)")
    args = ap.parse_args()

    rules_path = args.rules or args.root / "tools" / "lint_rules.toml"
    try:
        config = tomllib.loads(rules_path.read_text())
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"lint_determinism: cannot read rules {rules_path}: {e}",
              file=sys.stderr)
        return 2

    if args.self_test:
        return run_self_test(args.self_test, config)

    cc = args.compile_commands
    if cc is None:
        default_cc = args.root / "build" / "compile_commands.json"
        cc = default_cc if default_cc.is_file() else None

    files = [f.resolve() for f in args.files] if args.files else \
        collect_files(args.root, cc)

    linter = Linter(args.root, config)
    for f in files:
        linter.lint_file(f)
    linter.check_stale_allows()

    all_findings = linter.findings + linter.bad_allows
    all_findings.sort(key=lambda f: (str(f.path), f.line))
    lines = [str(f) for f in all_findings]
    for line in lines:
        print(line)
    if args.report:
        body = "\n".join(lines) + ("\n" if lines else "")
        args.report.write_text(
            body if lines else "determinism lint: clean\n")
    n_allows = len(linter.used_allows)
    if all_findings:
        print(f"\ndeterminism lint: {len(all_findings)} finding(s) "
              f"across {len(files)} files ({n_allows} allow(s) in "
              f"effect)", file=sys.stderr)
        return 1
    print(f"determinism lint: clean ({len(files)} files, "
          f"{n_allows} explained allow(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
