#include "fault/fault.h"

#include <cassert>
#include <cmath>

namespace apc::fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::ServerCrash:
        return "crash";
    case FaultKind::ServerDrain:
        return "drain";
    case FaultKind::LinkFlap:
        return "link_flap";
    case FaultKind::NicFreeze:
        return "nic_freeze";
    case FaultKind::kCount:
        break;
    }
    return "?";
}

// SplitMix64 finalizer over a keyed accumulator. The three keys are
// spread with odd constants so adjacent (entity, kind, counter) tuples
// land in unrelated regions of the state space.
std::uint64_t
substream(std::uint64_t seed, std::uint64_t entity, std::uint64_t kind,
          std::uint64_t counter)
{
    std::uint64_t z = seed;
    z += (entity + 1) * 0x9E3779B97F4A7C15ULL;
    z += (kind + 1) * 0xC2B2AE3D27D4EB4FULL;
    z += (counter + 1) * 0x165667B19E3779F9ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

double
substreamU01(std::uint64_t seed, std::uint64_t entity,
             std::uint64_t kind, std::uint64_t counter)
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(
               substream(seed, entity, kind, counter) >> 11) *
        0x1.0p-53;
}

sim::Tick
substreamExp(std::uint64_t seed, std::uint64_t entity,
             std::uint64_t kind, std::uint64_t counter,
             double mean_ticks)
{
    const double u = substreamU01(seed, entity, kind, counter);
    const double gap = -mean_ticks * std::log1p(-u);
    const auto t = static_cast<sim::Tick>(gap);
    return t < 1 ? 1 : t;
}

FaultPlan::FaultPlan(FaultPlanConfig cfg, std::uint64_t seed,
                     std::uint32_t num_servers)
    : cfg_(std::move(cfg)), seed_(seed), numServers_(num_servers)
{
    std::sort(cfg_.scripted.begin(), cfg_.scripted.end(), faultBefore);
    cursors_.resize(static_cast<std::size_t>(FaultKind::kCount));
    for (std::size_t k = 0; k < cursors_.size(); ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (hazard(kind).ratePerSec <= 0.0 || numServers_ == 0)
            continue;
        auto &col = cursors_[k];
        col.resize(numServers_);
        for (std::uint32_t e = 0; e < numServers_; ++e)
            advanceCursor(kind, e, col[e]); // prime: first event time
    }
}

const HazardConfig &
FaultPlan::hazard(FaultKind k) const
{
    switch (k) {
    case FaultKind::ServerDrain:
        return cfg_.drain;
    case FaultKind::LinkFlap:
        return cfg_.flap;
    case FaultKind::NicFreeze:
        return cfg_.freeze;
    case FaultKind::ServerCrash:
    case FaultKind::kCount:
        break;
    }
    return cfg_.crash;
}

void
FaultPlan::advanceCursor(FaultKind k, std::uint32_t entity, Cursor &c)
{
    const HazardConfig &hz = hazard(k);
    const double mean_gap =
        static_cast<double>(sim::kSec) / hz.ratePerSec;
    const sim::Tick gap =
        substreamExp(seed_, entity, static_cast<std::uint64_t>(k),
                     c.counter, mean_gap);
    ++c.counter;
    // Renewal: the next failure can only begin after the previous
    // outage window has fully closed.
    c.next += (c.counter > 1 ? hz.mttr : 0) + gap;
}

void
FaultPlan::epoch(sim::Tick from, sim::Tick to,
                 std::vector<FaultEvent> &out)
{
    out.clear();
    if (!cfg_.enabled || to <= from)
        return;
    while (scriptedPos_ < cfg_.scripted.size() &&
           cfg_.scripted[scriptedPos_].at < to) {
        if (cfg_.scripted[scriptedPos_].at >= from)
            out.push_back(cfg_.scripted[scriptedPos_]);
        ++scriptedPos_;
    }
    for (std::size_t k = 0; k < cursors_.size(); ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const HazardConfig &hz = hazard(kind);
        for (std::uint32_t e = 0;
             e < static_cast<std::uint32_t>(cursors_[k].size()); ++e) {
            Cursor &c = cursors_[k][e];
            while (c.next < to) {
                if (c.next >= from)
                    out.push_back({c.next, hz.mttr, kind, e});
                advanceCursor(kind, e, c);
            }
        }
    }
    std::sort(out.begin(), out.end(), faultBefore);
}

sim::Tick
backoffDelay(const RecoveryConfig &cfg, std::uint64_t seed,
             std::uint64_t id, int attempt)
{
    double delay = static_cast<double>(cfg.backoffBase);
    for (int i = 0; i < attempt; ++i) {
        delay *= cfg.backoffFactor;
        if (delay >= static_cast<double>(cfg.backoffCap))
            break;
    }
    if (delay > static_cast<double>(cfg.backoffCap))
        delay = static_cast<double>(cfg.backoffCap);
    // Jitter stream: a dedicated kind id far outside FaultKind so the
    // recovery draws can never collide with the plan's hazard draws.
    constexpr std::uint64_t kJitterKind = 0x4A49545445ULL; // "JITTE"
    const double u = substreamU01(seed, id, kJitterKind,
                                  static_cast<std::uint64_t>(attempt));
    const double jitter = cfg.jitterFrac * (2.0 * u - 1.0);
    const auto t = static_cast<sim::Tick>(delay * (1.0 + jitter));
    return t < 1 ? 1 : t;
}

} // namespace apc::fault
