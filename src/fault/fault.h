/**
 * @file
 * Deterministic fault injection for the fleet engine.
 *
 * A `FaultPlan` owns the full failure schedule of a run: scripted
 * events the scenario author pins to exact instants, plus stochastic
 * events drawn from per-(entity, kind) hazard processes. All
 * randomness is *counter-based*: every draw is a pure hash of
 * `(seed, entity, kind, counter)`, so the schedule is a function of
 * the configuration alone — byte-identical across thread counts,
 * shard layouts, and epoch boundaries. No stateful RNG exists in this
 * subsystem (the `fault-rng` determinism-lint rule enforces that
 * statically).
 *
 * Faults are *applied* by the fleet's single-threaded route stage, so
 * the sharded spine's determinism contract is untouched: the parallel
 * advance phase only ever sees lifecycle state that was mutated
 * between epochs, in plan order.
 *
 * The same counter-based substream also feeds the client recovery
 * path: retry backoff jitter is drawn from the *request's* substream
 * (keyed by request id and attempt), so failover timing does not
 * depend on the order timeouts are discovered in.
 */

#ifndef APC_FAULT_FAULT_H
#define APC_FAULT_FAULT_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace apc::fault {

/** Failure modes the plan can schedule. */
enum class FaultKind : std::uint8_t
{
    ServerCrash, ///< destroy in-flight work, go Down, restart after mttr
    ServerDrain, ///< stop admission, let work finish, restart after mttr
    LinkFlap,    ///< edge links of the entity forced 100% loss
    NicFreeze,   ///< NIC interrupt moderation frozen (ring fills, drops)
    kCount
};

const char *faultKindName(FaultKind k);

/** LinkFlap entity addressing the core (ToR uplink) pair: a blackout
 *  that severs every server instead of one edge. */
inline constexpr std::uint32_t kCoreLinkEntity = 0xFFFFFFFFu;

/** One fault instance: what, whom, when, and for how long. */
struct FaultEvent
{
    sim::Tick at = 0;       ///< injection instant
    sim::Tick duration = 0; ///< outage window (Down time / flap length)
    FaultKind kind = FaultKind::ServerCrash;
    std::uint32_t entity = 0; ///< server index (or kCoreLinkEntity)
};

/** Plan order: (at, entity, kind) — total and layout-invariant. */
inline bool
faultBefore(const FaultEvent &a, const FaultEvent &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.entity != b.entity)
        return a.entity < b.entity;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

// ---------------------------------------------------------------------------
// Counter-based substreams
//
// SplitMix64 finalizer over a keyed accumulator. Stateless: the n-th
// draw of a stream needs no history, so any consumer can evaluate any
// draw at any time on any thread and get the same bits.

/** Raw 64-bit draw of stream (seed, entity, kind) at @p counter. */
std::uint64_t substream(std::uint64_t seed, std::uint64_t entity,
                        std::uint64_t kind, std::uint64_t counter);

/** Uniform double in [0, 1) from the substream. */
double substreamU01(std::uint64_t seed, std::uint64_t entity,
                    std::uint64_t kind, std::uint64_t counter);

/** Exponential gap with the given mean (ticks), never < 1 tick. */
sim::Tick substreamExp(std::uint64_t seed, std::uint64_t entity,
                       std::uint64_t kind, std::uint64_t counter,
                       double mean_ticks);

/** Hazard process for one fault kind over a population of entities. */
struct HazardConfig
{
    /** Mean events per entity per simulated second (0 = off). */
    double ratePerSec = 0.0;
    /** Outage window per event (fixed, so MTTR sweeps are exact). */
    sim::Tick mttr = 20 * sim::kMs;
};

/** Full failure schedule of a run. */
struct FaultPlanConfig
{
    bool enabled = false;

    /** Author-pinned events (any order; the plan sorts them). */
    std::vector<FaultEvent> scripted;

    /** Stochastic hazards, one renewal process per (entity, kind). */
    HazardConfig crash;  ///< per server
    HazardConfig drain;  ///< per server
    HazardConfig flap;   ///< per server edge-link pair
    HazardConfig freeze; ///< per server NIC

    /** Restarting → Up delay after an outage window ends: kernel boot
     *  and cache warm-up the restarted server pays before admitting. */
    sim::Tick restartCost = 2 * sim::kMs;
};

/**
 * Materializes the fault schedule epoch by epoch. Stochastic streams
 * are renewal processes: event n+1 fires `mttr + Exp(1/rate)` after
 * event n, so an entity is never scheduled to fail while its previous
 * outage window is still open. Cursors only memoize how far each
 * stream has been enumerated — the draws themselves are stateless.
 */
class FaultPlan
{
  public:
    FaultPlan(FaultPlanConfig cfg, std::uint64_t seed,
              std::uint32_t num_servers);

    /** All fault events with `at` in [from, to), in faultBefore order,
     *  appended into @p out (cleared first). */
    void epoch(sim::Tick from, sim::Tick to,
               std::vector<FaultEvent> &out);

    const FaultPlanConfig &config() const { return cfg_; }

  private:
    struct Cursor
    {
        sim::Tick next = 0;
        std::uint64_t counter = 0;
    };

    const HazardConfig &hazard(FaultKind k) const;
    void advanceCursor(FaultKind k, std::uint32_t entity, Cursor &c);

    FaultPlanConfig cfg_;
    std::uint64_t seed_;
    std::uint32_t numServers_;
    /** [kind][entity], flattened; empty when the kind's rate is 0. */
    std::vector<std::vector<Cursor>> cursors_;
    std::size_t scriptedPos_ = 0;
};

// ---------------------------------------------------------------------------
// Client recovery (graceful degradation) policy

/** Per-request timeout + capped exponential backoff + failover. */
struct RecoveryConfig
{
    bool enabled = false;

    /** Client gives up waiting on a replica after this long. */
    sim::Tick requestTimeout = 5 * sim::kMs;

    /** Re-dispatch delay after attempt k (0-based failure count):
     *  min(backoffBase * backoffFactor^k, backoffCap), +/- jitter. */
    sim::Tick backoffBase = 200 * sim::kUs;
    double backoffFactor = 2.0;
    sim::Tick backoffCap = 2 * sim::kMs;

    /** Symmetric jitter as a fraction of the delay, drawn from the
     *  request's own counter substream. */
    double jitterFrac = 0.25;

    /** Total dispatch attempts per replica (1 = no failover). */
    int maxAttempts = 3;
};

/**
 * Deterministic backoff delay before re-dispatching request @p id
 * after its @p attempt-th failure (0-based). Jitter comes from the
 * request's substream, so the value is independent of the order the
 * merge stage discovers timeouts in.
 */
sim::Tick backoffDelay(const RecoveryConfig &cfg, std::uint64_t seed,
                       std::uint64_t id, int attempt);

} // namespace apc::fault

#endif // APC_FAULT_FAULT_H
