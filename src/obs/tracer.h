/**
 * @file
 * Span tracing: binary ring-buffer trace writers with interned string
 * ids, merged deterministically and exported as Chrome/Perfetto
 * `trace_event` JSON.
 *
 * Design constraints, in priority order:
 *
 *  1. **Zero behavioral footprint.** Recording only ever writes into a
 *     preallocated POD ring — no RNG draws, no event scheduling, no
 *     signal edges — so a traced run's FleetReport is byte-identical to
 *     the untraced run.
 *  2. **No per-event heap allocation.** A `TraceRecord` is a 48-byte
 *     POD; the ring grows amortized up to its capacity and then wraps
 *     (drop-oldest, counted). Names are 4-byte ids: the common
 *     vocabulary is a static enum (`Name`), dynamic strings intern once
 *     at setup time.
 *  3. **Single-writer buffers.** Each fleet entity (the fleet spine,
 *     every server) records into its own `TraceWriter`; during a
 *     parallel advance phase a server's writer is touched only by the
 *     worker advancing that server's shard. Merging happens after the
 *     run, single-threaded, in `(ts, writer, seq)` order — a total
 *     order independent of thread count and shard layout, so the merged
 *     trace itself is deterministic (see `Tracer::digest`).
 *
 * Export opens in any `chrome://tracing` / https://ui.perfetto.dev
 * viewer: one process per entity, one thread per `Track`, request
 * lifecycles as complete spans, package power states as state spans,
 * cap/budget actuations as counter tracks.
 */

#ifndef APC_OBS_TRACER_H
#define APC_OBS_TRACER_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/interner.h"
#include "sim/annotations.h"
#include "sim/time.h"

namespace apc::obs {

class PhaseProfiler;

/** Perfetto "thread" each record lands on within its entity. */
enum class Track : std::uint8_t
{
    Requests = 0, ///< request lifecycle spans
    Power,        ///< package power-state spans
    Cap,          ///< power-cap limit/actuation counters
    Nic,          ///< NIC interrupts and ring drops
    Budget,       ///< rack budget-allocator decisions
    Engine,       ///< wall-clock pipeline-phase spans (profiler)
    Segments,     ///< latency-attribution segment spans
    Health,       ///< SLO burn-rate alerts and invariant-audit events
};

inline constexpr std::size_t kNumTracks = 8;

/** Display name for a track. */
const char *trackName(Track t);

/**
 * Static trace vocabulary: the hot paths record these without touching
 * the interner. Dynamic names (see Tracer::intern) get ids at or above
 * kStaticNames.
 */
enum class Name : std::uint32_t
{
    // Request lifecycle.
    Request = 0, ///< fleet-level span: client arrival -> delivery
    Wait,        ///< server span: arrival -> service start
    Serve,       ///< server span: service start -> response queued
    Lost,        ///< instant: request dropped beyond retry
    // Package power states (order matches soc::PkgState).
    PkgPc0,
    PkgPc0idle,
    PkgAcc1,
    PkgPc1a,
    PkgPc2,
    PkgPc6,
    // NIC.
    NicIrq,  ///< instant: moderated interrupt fired (value = batch)
    NicDrop, ///< instant: RX ring tail drop
    // Power capping.
    CapLimitW, ///< counter: enforced package power limit
    CapPowerW, ///< counter: controller's sliding-window power
    CapClamp,  ///< counter: P-state clamp index (-1 = unclamped)
    CapDuty,   ///< counter: forced-idle injection duty
    // Rack budget allocation.
    RackBudgetW,     ///< counter: rack budget in force
    RackDemandW,     ///< counter: summed server demand
    RackAllocW,      ///< counter: summed granted limits
    BudgetEmergency, ///< instant: floors emergency-scaled
    // Engine pipeline phases (wall clock; emitted via PhaseProfiler).
    Route,
    Advance,
    Merge,
    Collect,
    // Latency-attribution segments (order matches obs::Segment in
    // attribution.h; emitted only when attribution is enabled). Spans
    // on the fleet writer carry the server in `value`; spans on a
    // server writer imply that server.
    SegXmitReq,   ///< client -> server fabric transit (minus RTO)
    SegRto,       ///< RTO retransmit penalty (fabric + NIC-drop resend)
    SegNicRing,   ///< RX-ring descriptor wait until the moderated IRQ
    SegIrqHold,   ///< IRQ -> DMA completion (coalescing hold)
    SegWake,      ///< DMA done -> fabric open (package C-state exit)
    SegQueue,     ///< dispatch-queue wait (gate overlap excluded)
    SegStallGate, ///< idle-injection gate overlap of the queue wait
    SegServe,     ///< service time at the governor's frequency
    SegStallDvfs, ///< extra service time from the cap's P-state clamp
    SegXmitResp,  ///< response TX + server -> client transit (minus RTO)
    SegTimeoutWait, ///< dispatch -> timeout on an attempt the client
                    ///< abandoned (fleet writer; value = final server)
    SegFailover,    ///< backoff gap between a failed attempt and its
                    ///< re-dispatch (fleet writer; value = new server)
    // Rack budget allocation (traced by cap/budget.cc).
    RackUnmetW, ///< counter: demand the waterfill left unsatisfied
    // Fleet health (obs/health.h): SLO burn-rate alert lifecycles as
    // spans (fired -> resolved, id = window-pair index, value = worst
    // burn while active), per-SLI burn-rate counters, and invariant
    // audit violations as instants (value = AuditCheck index).
    AlertLatency,
    AlertAvailability,
    AlertPower,
    BurnLatency,
    BurnAvailability,
    BurnPower,
    AuditViolation,
    // Fault injection (src/fault): lifecycle events on the Health
    // track. Instants mark the fault instant (id = server; core-link
    // flaps use id = fault::kCoreLinkEntity); spans cover the whole
    // unavailability window including the restart cold start.
    SrvCrash,   ///< instant: server crashed, in-flight work destroyed
    SrvDrain,   ///< instant: server stopped admitting (graceful drain)
    SrvRestart, ///< instant: server back in the pick set
    SrvDown,    ///< span: out of the pick set (crash/drain -> ready)
    LinkFlap,   ///< span: forced 100% loss window on a fabric link
    NicFreeze,  ///< span: RX interrupt-moderation unit wedged

    kCount
};

/** First id available to dynamically interned names. */
inline constexpr StrId kStaticNames = static_cast<StrId>(Name::kCount);

/** Display string for a static name. */
const char *nameString(Name n);

/** Static name for package state index @p s (soc::PkgState order). */
inline Name
pkgStateTraceName(std::size_t s)
{
    return static_cast<Name>(static_cast<std::uint32_t>(Name::PkgPc0) +
                             static_cast<std::uint32_t>(s));
}

/** Record kind; maps onto Perfetto phases 'X' / 'i' / 'C'. */
enum class TraceKind : std::uint8_t
{
    Span = 0, ///< complete span [ts, ts+dur)
    Instant,  ///< point event
    Counter,  ///< time-series sample of `value`
};

/** One POD trace record — the only thing hot paths write. */
struct TraceRecord
{
    sim::Tick ts = 0;     ///< simulated start time
    sim::Tick dur = 0;    ///< span length (Span only)
    std::uint64_t id = 0; ///< correlation id (request id, kind id)
    double value = 0.0;   ///< counter value / instant payload
    StrId name = 0;
    std::uint32_t seq = 0; ///< per-writer recording order
    std::uint8_t kind = 0; ///< TraceKind
    std::uint8_t track = 0;
    std::uint16_t pad = 0;
};

static_assert(sizeof(TraceRecord) <= 48, "trace record stays compact");

/**
 * Single-writer bounded ring of trace records. The vector grows
 * amortized up to the capacity, then wraps over the oldest records
 * (SoCWatch-style: a bounded trace keeps the most recent window).
 *
 * Ring ownership is a capability (`ring_`): during a parallel advance
 * phase exactly one worker — the one advancing the writer's entity —
 * may record, and the deterministic merge reads only after the workers
 * quiesced. The guards below are no-ops at runtime; they make every
 * ring access inside this class visible to clang's thread-safety
 * analysis, while the cross-thread single-writer discipline itself is
 * checked dynamically by the TSan CI job.
 */
class TraceWriter
{
  public:
    TraceWriter(std::uint32_t entity, std::size_t capacity)
        : entity_(entity), cap_(capacity ? capacity : 1)
    {
    }

    /** Lowest-level append; the span/instant/counter helpers wrap it. */
    void
    record(TraceKind k, Track tr, sim::Tick ts, sim::Tick dur, StrId name,
           std::uint64_t id, double value)
    {
        sim::RoleGuard own(ring_);
        TraceRecord r;
        r.ts = ts;
        r.dur = dur;
        r.id = id;
        r.value = value;
        r.name = name;
        r.seq = seq_++;
        r.kind = static_cast<std::uint8_t>(k);
        r.track = static_cast<std::uint8_t>(tr);
        if (buf_.size() < cap_) {
            buf_.push_back(r);
        } else {
            buf_[head_] = r;
            if (++head_ == cap_)
                head_ = 0;
            wrapped_ = true;
        }
    }

    void
    span(sim::Tick ts, sim::Tick dur, Name n, Track tr,
         std::uint64_t id = 0, double value = 0.0)
    {
        record(TraceKind::Span, tr, ts, dur, static_cast<StrId>(n), id,
               value);
    }

    void
    instant(sim::Tick ts, Name n, Track tr, std::uint64_t id = 0,
            double value = 0.0)
    {
        record(TraceKind::Instant, tr, ts, 0, static_cast<StrId>(n), id,
               value);
    }

    void
    counter(sim::Tick ts, Name n, Track tr, double value)
    {
        record(TraceKind::Counter, tr, ts, 0, static_cast<StrId>(n), 0,
               value);
    }

    std::uint32_t entity() const { return entity_; }

    /** Records ever appended (including since-overwritten ones). */
    std::uint64_t
    recorded() const
    {
        sim::SharedRoleGuard own(ring_);
        return seq_;
    }

    /** Records lost to ring wrap-around. */
    std::uint64_t
    dropped() const
    {
        sim::SharedRoleGuard own(ring_);
        return seq_ - buf_.size();
    }

    /** Live records. */
    std::size_t
    size() const
    {
        sim::SharedRoleGuard own(ring_);
        return buf_.size();
    }

    /** Discard all records and counters; capacity and entity — and any
     *  name ids already interned by the owning Tracer — are unchanged,
     *  so a writer can be reused across phases without re-interning. */
    void
    reset()
    {
        sim::RoleGuard own(ring_);
        buf_.clear();
        head_ = 0;
        wrapped_ = false;
        seq_ = 0;
    }

    /** Visit live records oldest-first (recording order). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        sim::SharedRoleGuard own(ring_);
        if (!wrapped_) {
            for (const TraceRecord &r : buf_)
                fn(r);
            return;
        }
        for (std::size_t i = head_; i < buf_.size(); ++i)
            fn(buf_[i]);
        for (std::size_t i = 0; i < head_; ++i)
            fn(buf_[i]);
    }

  private:
    /** Single-writer ring capability (see class comment). */
    mutable sim::Role ring_;
    std::vector<TraceRecord> buf_ APC_GUARDED_BY(ring_);
    std::uint32_t entity_;
    std::size_t cap_;
    std::size_t head_ APC_GUARDED_BY(ring_) = 0;
    bool wrapped_ APC_GUARDED_BY(ring_) = false;
    std::uint32_t seq_ APC_GUARDED_BY(ring_) = 0;
};

/**
 * One Perfetto flow arrow: client arrival -> server serve -> client
 * delivery. POD; built post-run (e.g. by the attribution layer) and
 * rendered by Tracer::writePerfettoJson as 's'/'t'/'f' steps sharing
 * the flow id.
 */
struct FlowEvent
{
    std::uint64_t id = 0;  ///< flow correlation id (request id)
    std::uint32_t pid = 0; ///< entity the step lands on
    sim::Tick ts = 0;
    std::uint8_t track = 0;
    std::uint8_t phase = 0; ///< 0 = start 's', 1 = step 't', 2 = end 'f'
};

/** Tracer setup. */
struct TraceConfig
{
    bool enabled = false;
    /** Per-writer ring capacity in records (48 B each). Memory is only
     *  committed as records are written; full rings wrap. */
    std::size_t ringCapacity = 1u << 16;
};

/**
 * The fleet-wide tracer: one writer per entity plus the shared name
 * table, merge, and Perfetto export.
 */
class Tracer
{
  public:
    /** @param num_writers writer 0 is conventionally the fleet spine;
     *  1..N the servers. */
    Tracer(TraceConfig cfg, std::size_t num_writers);

    TraceWriter *writer(std::size_t i) { return writers_[i].get(); }
    const TraceWriter *writer(std::size_t i) const
    {
        return writers_[i].get();
    }
    std::size_t numWriters() const { return writers_.size(); }

    /** Intern a dynamic name (setup-time only; not thread-safe). */
    StrId
    intern(std::string_view s)
    {
        return kStaticNames + interner_.intern(s);
    }

    /** Resolve any name id (static enum or dynamic). */
    const char *nameOf(StrId id) const;

    /** Display label for a writer's entity in the export ("fleet",
     *  "server 3", ...). Defaults to "writer N". */
    void setEntityLabel(std::size_t writer, std::string label);

    std::uint64_t totalRecorded() const;
    std::uint64_t totalDropped() const;

    /** One merged record with its originating writer index. */
    struct MergedRecord
    {
        const TraceRecord *rec;
        std::uint32_t writer;
    };

    /** All live records in `(ts, writer, seq)` order — the canonical
     *  deterministic merge the export and digest use. */
    std::vector<MergedRecord> merged() const;

    /**
     * FNV-1a digest over the merged semantic payload (timestamps,
     * names, ids, values — never wall-clock). Equal digests across
     * thread counts are the tracing determinism contract.
     */
    std::uint64_t digest() const;

    /**
     * Export as Chrome/Perfetto trace_event JSON. @p engine, when
     * given, appends the profiler's wall-clock pipeline-phase spans as
     * an extra "engine" process; @p flows, when given, renders each
     * FlowEvent as an 's'/'t'/'f' flow step so the viewer draws
     * client -> server -> client arrows. @return false on any IO
     * failure.
     */
    bool
    writePerfettoJson(std::FILE *out,
                      const PhaseProfiler *engine = nullptr,
                      const std::vector<FlowEvent> *flows = nullptr) const;
    bool
    writePerfettoJson(const std::string &path,
                      const PhaseProfiler *engine = nullptr,
                      const std::vector<FlowEvent> *flows = nullptr) const;

    const TraceConfig &config() const { return cfg_; }

  private:
    TraceConfig cfg_;
    StringInterner interner_;
    std::vector<std::unique_ptr<TraceWriter>> writers_;
    std::vector<std::string> labels_;
};

} // namespace apc::obs

#endif // APC_OBS_TRACER_H
