/**
 * @file
 * Fleet health monitoring: the live-observability facade combining the
 * SLO burn-rate monitor (obs/slo.h) and the epoch-boundary invariant
 * auditor (obs/audit.h), plus the report/exports the fleet surfaces.
 *
 * The fleet engine owns a HealthMonitor when `FleetConfig::health` is
 * enabled, feeds it from the single-threaded sections of the epoch
 * pipeline (flight completion during the merge, epoch boundaries), and
 * folds the resulting HealthReport into FleetReport. The report lives
 * *outside* FleetReport::csvRow() — the byte-identity reference — and
 * the monitor only reads simulation state, so the zero-footprint
 * contract holds: headline reports are byte-identical with health on
 * or off, at any thread count and shard layout, and the alert log is
 * itself invariant across thread counts.
 *
 * The alert log exports as CSV or `schema_version`ed JSON (the shape
 * CI validates). `APC_AUDIT_FAILFAST=1` in the environment forces the
 * auditor on in failFast mode for every fleet run — the
 * audit-as-sanitizer mode CI runs the whole test suite under.
 */

#ifndef APC_OBS_HEALTH_H
#define APC_OBS_HEALTH_H

#include <cstdio>
#include <string>

#include "obs/audit.h"
#include "obs/slo.h"

namespace apc::obs {

/** Alert-log JSON schema revision (writeAlertsJson). */
inline constexpr int kHealthSchemaVersion = 1;

/** Fleet health monitoring setup. */
struct HealthConfig
{
    bool enabled = false;
    SloConfig slo;
    AuditConfig audit;
};

/** Health summary folded into FleetReport (outside csvRow()). */
struct HealthReport
{
    bool enabled = false;

    // SLO burn-rate alerting.
    std::uint64_t alertsFired = 0;
    std::uint64_t alertsResolved = 0;
    double worstBurn = 0.0;
    Sli worstBurnSli = Sli::Latency;
    sim::Tick timeInViolation = 0;
    double worstWindowP99Us = 0.0;
    std::uint64_t latencySamplesDropped = 0;
    std::vector<AlertEvent> alerts;
    SloConfig slo;

    // Invariant auditing.
    std::uint64_t audits = 0;
    std::uint64_t auditChecks = 0;
    std::uint64_t auditViolations = 0;
    std::array<std::uint64_t, kNumAuditChecks> auditByCheck{};
    std::vector<AuditViolation> auditLog;

    double timeInViolationUs() const
    {
        return sim::toMicros(timeInViolation);
    }

    /** Alert log as CSV
     *  (`t_us,sli,policy,severity,kind,burn_long,burn_short,
     *  window_p99_us`). @return false on IO failure. */
    bool writeAlertsCsv(std::FILE *out) const;
    bool writeAlertsCsv(const std::string &path) const;

    /** Alert log + counters as schema_versioned JSON. @return false on
     *  IO failure. */
    bool writeAlertsJson(std::FILE *out) const;
    bool writeAlertsJson(const std::string &path) const;
};

/**
 * The health monitor the fleet engine drives. All entry points are
 * called from single-threaded engine sections only.
 */
class HealthMonitor
{
  public:
    /** @param default_latency_slo_us fleet `sloUs` (latency SLI
     *  threshold default); @param severity policies come from @p cfg. */
    HealthMonitor(const HealthConfig &cfg, double default_latency_slo_us)
        : cfg_(cfg), slo_(cfg.slo, default_latency_slo_us),
          auditor_(cfg.audit)
    {
    }

    /** Mirror alerts/burns/violations onto @p w's Health track. */
    void
    setTrace(TraceWriter *w)
    {
        slo_.setTrace(w);
        auditor_.setTrace(w);
    }

    SloMonitor &slo() { return slo_; }
    Auditor &auditor() { return auditor_; }
    bool auditEnabled() const { return cfg_.audit.enabled; }

    /** Assemble the post-run summary. */
    HealthReport report() const;

  private:
    HealthConfig cfg_;
    SloMonitor slo_;
    Auditor auditor_;
};

} // namespace apc::obs

#endif // APC_OBS_HEALTH_H
