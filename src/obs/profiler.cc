#include "obs/profiler.h"

namespace apc::obs {

const char *
PhaseProfiler::phaseName(Phase p)
{
    constexpr const char *names[kNumPhases] = {"route", "advance",
                                               "merge", "collect"};
    return names[static_cast<std::size_t>(p)];
}

void
PhaseProfiler::beginRun(std::size_t num_shards)
{
    anchor_ = Clock::now();
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        totalSec_[i] = 0.0;
        count_[i] = 0;
    }
    {
        sim::RoleGuard own(shardTable_);
        shardSec_.assign(num_shards, 0.0);
    }
    spans_.clear();
    droppedSpans_ = 0;
}

double
PhaseProfiler::shardImbalance() const
{
    sim::SharedRoleGuard own(shardTable_);
    double max = 0.0, sum = 0.0;
    for (double s : shardSec_) {
        sum += s;
        if (s > max)
            max = s;
    }
    if (shardSec_.empty() || sum <= 0.0)
        return 1.0;
    const double mean = sum / static_cast<double>(shardSec_.size());
    return max / mean;
}

void
PhaseProfiler::addSpan(Phase p, Clock::time_point t0, Clock::time_point t1)
{
    const std::size_t idx = static_cast<std::size_t>(p);
    totalSec_[idx] += std::chrono::duration<double>(t1 - t0).count();
    ++count_[idx];
    if (spans_.size() >= kMaxSpans) {
        ++droppedSpans_;
        return;
    }
    spans_.push_back(
        {std::chrono::duration<double, std::micro>(t0 - anchor_).count(),
         std::chrono::duration<double, std::micro>(t1 - t0).count(), p});
}

} // namespace apc::obs
