/**
 * @file
 * Engine self-profiling: wall-clock timers around the fleet engine's
 * route/advance/merge/collect pipeline phases and per-shard advance
 * times.
 *
 * This is the only telemetry component that reads the host clock; its
 * measurements therefore differ run to run and MUST never feed
 * simulation results — they surface where the wall-clock goes (the
 * Amdahl residue of the serial spine, advance-phase imbalance across
 * shards) in bench output and as an optional "engine" process in the
 * Perfetto export. Phase totals always accumulate; per-epoch spans are
 * kept up to a fixed cap so long sweeps stay bounded.
 *
 * Thread-safety: begin/end scopes run on the driving thread;
 * `addShardTime` may be called from parallel workers, but each shard
 * index has exactly one writer per phase, so the per-shard accumulation
 * is race-free by the same single-writer argument the staging slots
 * use.
 */

#ifndef APC_OBS_PROFILER_H
#define APC_OBS_PROFILER_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/annotations.h"

namespace apc::obs {

/** Wall-clock profiler for the fleet epoch pipeline. */
class PhaseProfiler
{
  public:
    enum class Phase : std::uint8_t
    {
        Route = 0, ///< traffic generation + dispatch + fabric transit
        Advance,   ///< parallel per-shard server advance
        Merge,     ///< k-way merged completion/drop drain
        Collect,   ///< end-of-run per-server collection
    };
    static constexpr std::size_t kNumPhases = 4;

    static const char *phaseName(Phase p);

    using Clock = std::chrono::steady_clock;

    /** RAII phase timer; no-op when the profiler is disabled. */
    class Scope
    {
      public:
        Scope(PhaseProfiler &p, Phase ph) : prof_(p), phase_(ph)
        {
            if (prof_.enabled_)
                t0_ = Clock::now();
        }
        ~Scope()
        {
            if (prof_.enabled_)
                prof_.addSpan(phase_, t0_, Clock::now());
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseProfiler &prof_;
        Phase phase_;
        Clock::time_point t0_;
    };

    /** Enable/disable all measurement (disabled scopes cost a branch). */
    void enable(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Anchor the span timeline and size the per-shard table. Clears
     *  any previous measurements. */
    void beginRun(std::size_t num_shards);

    Scope scope(Phase p) { return Scope(*this, p); }

    /** Accumulate one shard's advance time (worker-side). The claim is
     *  element-granular: each shard index has exactly one writer per
     *  phase (the worker advancing that shard), mirroring ShardSlot. */
    void
    addShardTime(std::size_t shard, double sec)
    {
        sim::RoleGuard own(shardTable_);
        shardSec_[shard] += sec;
    }

    /** Accumulated wall-clock seconds in @p p. */
    double totalSec(Phase p) const
    {
        return totalSec_[static_cast<std::size_t>(p)];
    }

    /** Completed scopes of @p p. */
    std::uint64_t count(Phase p) const
    {
        return count_[static_cast<std::size_t>(p)];
    }

    const std::vector<double> &
    shardTimesSec() const
    {
        sim::SharedRoleGuard own(shardTable_);
        return shardSec_;
    }

    /**
     * Advance-phase imbalance: max over shards of accumulated advance
     * time divided by the mean. 1.0 = perfectly balanced (or no data);
     * large values mean one shard serializes the parallel phase.
     */
    double shardImbalance() const;

    /** One recorded pipeline-phase interval (wall-clock µs from the
     *  beginRun anchor). */
    struct EngineSpan
    {
        double startUs;
        double durUs;
        Phase phase;
    };

    const std::vector<EngineSpan> &spans() const { return spans_; }
    std::uint64_t droppedSpans() const { return droppedSpans_; }

  private:
    /** Per-run span cap: phases * epochs beyond this only accumulate
     *  into the totals. */
    static constexpr std::size_t kMaxSpans = 1u << 15;

    void addSpan(Phase p, Clock::time_point t0, Clock::time_point t1);

    bool enabled_ = true;
    Clock::time_point anchor_{};
    double totalSec_[kNumPhases] = {};
    std::uint64_t count_[kNumPhases] = {};
    /** Element-granular single-writer capability for shardSec_ (one
     *  worker per shard index during an advance phase; spine-only
     *  reads between phases). Checked dynamically by the TSan job. */
    mutable sim::Role shardTable_;
    std::vector<double> shardSec_ APC_GUARDED_BY(shardTable_);
    std::vector<EngineSpan> spans_;
    std::uint64_t droppedSpans_ = 0;
};

} // namespace apc::obs

#endif // APC_OBS_PROFILER_H
