#include "obs/audit.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace apc::obs {

namespace {

/** Absolute slack for floating-point watt/joule comparisons: the
 *  identities are computed the same way the simulator computes them,
 *  so only accumulation-order noise needs absorbing. */
constexpr double kEpsW = 1e-6;
constexpr double kEpsJ = 1e-9;

std::string
fmtDetail(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

const char *
auditCheckName(AuditCheck c)
{
    constexpr const char *names[kNumAuditChecks] = {
        "fleet_flights", "fleet_requests",   "server_counters",
        "link_conservation", "energy", "budget"};
    return names[static_cast<std::size_t>(c)];
}

void
Auditor::flag(const AuditSnapshot &snap, AuditCheck check, int entity,
              std::string detail)
{
    ++violationCount_;
    ++byCheck_[static_cast<std::size_t>(check)];
    if (trace_)
        trace_->instant(snap.now, Name::AuditViolation, Track::Health,
                        static_cast<std::uint64_t>(
                            entity < 0 ? 0 : entity),
                        static_cast<double>(
                            static_cast<std::size_t>(check)));
    // Retention (and stderr noise) is capped; the counters never are.
    if (log_.size() < kMaxKept) {
        std::fprintf(stderr, "audit: t=%lld us %s violation (entity "
                             "%d): %s\n",
                     static_cast<long long>(snap.now / sim::kUs),
                     auditCheckName(check), entity, detail.c_str());
        log_.push_back({snap.now, check, entity, std::move(detail)});
    }
    if (cfg_.failFast)
        dumpAndAbort(snap);
}

void
Auditor::dumpAndAbort(const AuditSnapshot &snap)
{
    std::fprintf(stderr,
                 "audit: failFast diagnostic dump @ t=%lld us\n"
                 "  flights: created=%llu finished=%llu inflight=%llu\n"
                 "  requests: dispatched=%llu completed=%llu lost=%llu "
                 "lost_to_crash=%llu measured_inflight=%llu\n"
                 "  servers=%zu links=%zu energy_planes=%zu\n"
                 "  budget: enabled=%d floor=%.3f deadband=%.3f "
                 "new_epochs=%zu last_budget=%.3f\n",
                 static_cast<long long>(snap.now / sim::kUs),
                 static_cast<unsigned long long>(snap.flightsCreated),
                 static_cast<unsigned long long>(snap.flightsFinished),
                 static_cast<unsigned long long>(snap.flightsInFlight),
                 static_cast<unsigned long long>(snap.dispatched),
                 static_cast<unsigned long long>(snap.completed),
                 static_cast<unsigned long long>(snap.lost),
                 static_cast<unsigned long long>(snap.lostToCrash),
                 static_cast<unsigned long long>(snap.measuredInFlight),
                 snap.servers.size(), snap.links.size(),
                 snap.energy.size(), snap.budgetEnabled ? 1 : 0,
                 snap.floorW, snap.deadbandW, snap.newEpochs.size(),
                 snap.lastBudgetW);
    for (const AuditViolation &v : log_)
        std::fprintf(stderr, "  violation: t=%lld us %s entity=%d %s\n",
                     static_cast<long long>(v.at / sim::kUs),
                     auditCheckName(v.check), v.entity,
                     v.detail.c_str());
    std::fflush(stderr);
    std::abort();
}

void
Auditor::audit(const AuditSnapshot &snap)
{
    ++audits_;
    lastAuditAt_ = snap.now;

    // (1) Flight conservation: every flight ever created is either
    // finished or still in the flight map — exactly.
    ++checks_;
    if (snap.flightsCreated !=
        snap.flightsFinished + snap.flightsInFlight)
        flag(snap, AuditCheck::FleetFlights, -1,
             fmtDetail("created %llu != finished %llu + inflight %llu",
                       static_cast<unsigned long long>(
                           snap.flightsCreated),
                       static_cast<unsigned long long>(
                           snap.flightsFinished),
                       static_cast<unsigned long long>(
                           snap.flightsInFlight)));
    if (snap.flightsFinished < prevFinished_)
        flag(snap, AuditCheck::FleetFlights, -1,
             fmtDetail("finished count went backwards: %llu -> %llu",
                       static_cast<unsigned long long>(prevFinished_),
                       static_cast<unsigned long long>(
                           snap.flightsFinished)));
    prevFinished_ = snap.flightsFinished;

    // (2) Measurement-window request conservation: injected =
    // completed + lost-to-drop + lost-to-crash + in flight. A crash
    // destroys work loudly — destroyed requests land in lostToCrash,
    // never in an accounting hole.
    ++checks_;
    if (snap.dispatched != snap.completed + snap.lost +
            snap.lostToCrash + snap.measuredInFlight)
        flag(snap, AuditCheck::FleetRequests, -1,
             fmtDetail(
                 "dispatched %llu != completed %llu + lost %llu + "
                 "crash %llu + inflight %llu",
                 static_cast<unsigned long long>(snap.dispatched),
                 static_cast<unsigned long long>(snap.completed),
                 static_cast<unsigned long long>(snap.lost),
                 static_cast<unsigned long long>(snap.lostToCrash),
                 static_cast<unsigned long long>(snap.measuredInFlight)));

    // (3) Per-server counters: completed + aborted never exceeds
    // accepted (outstanding work is non-negative), and all only grow.
    const bool first = prevServers_.size() != snap.servers.size();
    for (std::size_t i = 0; i < snap.servers.size(); ++i) {
        ++checks_;
        const AuditServerCounters &sc = snap.servers[i];
        if (sc.completed + sc.aborted > sc.accepted)
            flag(snap, AuditCheck::ServerCounters, static_cast<int>(i),
                 fmtDetail("completed %llu + aborted %llu > accepted "
                           "%llu",
                           static_cast<unsigned long long>(sc.completed),
                           static_cast<unsigned long long>(sc.aborted),
                           static_cast<unsigned long long>(sc.accepted)));
        if (!first) {
            const AuditServerCounters &pv = prevServers_[i];
            if (sc.accepted < pv.accepted ||
                sc.completed < pv.completed || sc.aborted < pv.aborted)
                flag(snap, AuditCheck::ServerCounters,
                     static_cast<int>(i),
                     fmtDetail("counters went backwards: accepted "
                               "%llu -> %llu, completed %llu -> %llu, "
                               "aborted %llu -> %llu",
                               static_cast<unsigned long long>(
                                   pv.accepted),
                               static_cast<unsigned long long>(
                                   sc.accepted),
                               static_cast<unsigned long long>(
                                   pv.completed),
                               static_cast<unsigned long long>(
                                   sc.completed),
                               static_cast<unsigned long long>(
                                   pv.aborted),
                               static_cast<unsigned long long>(
                                   sc.aborted)));
        }
    }
    prevServers_ = snap.servers;

    // (4) Per-link packet conservation, exact in integers.
    for (std::size_t i = 0; i < snap.links.size(); ++i) {
        ++checks_;
        const AuditLinkCounters &lc = snap.links[i];
        if (lc.offered != lc.delivered + lc.dropped)
            flag(snap, AuditCheck::LinkConservation,
                 static_cast<int>(i),
                 fmtDetail("offered %llu != delivered %llu + dropped "
                           "%llu",
                           static_cast<unsigned long long>(lc.offered),
                           static_cast<unsigned long long>(lc.delivered),
                           static_cast<unsigned long long>(lc.dropped)));
    }

    // (5) Energy accounting: the quantized RAPL counter must bracket
    // the integrated energy within one energy unit, the plane total
    // must equal the sum over its registered loads, and energy is
    // monotone.
    const bool efirst = prevEnergyJ_.size() != snap.energy.size();
    if (efirst)
        prevEnergyJ_.assign(snap.energy.size(), 0.0);
    for (std::size_t i = 0; i < snap.energy.size(); ++i) {
        ++checks_;
        const AuditEnergy &e = snap.energy[i];
        const double counted =
            static_cast<double>(e.counter) * e.unitJ;
        if (e.unitJ > 0.0 &&
            (counted > e.energyJ + kEpsJ ||
             e.energyJ >= counted + e.unitJ + kEpsJ))
            flag(snap, AuditCheck::Energy, e.server,
                 fmtDetail("plane %d counter %llu x %.9f J does not "
                           "bracket energy %.9f J",
                           e.plane,
                           static_cast<unsigned long long>(e.counter),
                           e.unitJ, e.energyJ));
        if (std::abs(e.energyJ - e.loadSumJ) >
            kEpsJ + 1e-12 * std::abs(e.energyJ))
            flag(snap, AuditCheck::Energy, e.server,
                 fmtDetail("plane %d energy %.9f J != load sum %.9f J",
                           e.plane, e.energyJ, e.loadSumJ));
        if (e.energyJ + kEpsJ < prevEnergyJ_[i])
            flag(snap, AuditCheck::Energy, e.server,
                 fmtDetail("plane %d energy went backwards: %.9f -> "
                           "%.9f J",
                           e.plane, prevEnergyJ_[i], e.energyJ));
        prevEnergyJ_[i] = e.energyJ;
    }

    // (6) Rack budget conservation.
    if (snap.budgetEnabled) {
        const double n = static_cast<double>(snap.numServers);
        for (const AuditBudgetEpoch &ep : snap.newEpochs) {
            ++checks_;
            if (ep.allocatedW > ep.budgetW + kEpsW)
                flag(snap, AuditCheck::Budget, -1,
                     fmtDetail("epoch @%lld us granted %.3f W over "
                               "budget %.3f W",
                               static_cast<long long>(ep.at / sim::kUs),
                               ep.allocatedW, ep.budgetW));
            // Outside emergencies every *participating* server is
            // guaranteed its floor, so the grant total can't dip
            // below active * floor. Epochs recorded before liveness
            // tracking (active == 0) cover the whole fleet.
            const std::size_t live =
                ep.active ? ep.active : snap.numServers;
            if (!ep.emergency && ep.allocatedW + kEpsW <
                    static_cast<double>(live) * snap.floorW)
                flag(snap, AuditCheck::Budget, -1,
                     fmtDetail("non-emergency epoch @%lld us granted "
                               "%.3f W < %zu x floor %.3f W",
                               static_cast<long long>(ep.at / sim::kUs),
                               ep.allocatedW, live, snap.floorW));
        }
        // Enforced limits: each within the deadband of some grant that
        // summed to <= the last rack budget, so the fleet-wide enforced
        // total is bounded by lastBudgetW + n * deadband; floors hold
        // per server as long as no emergency ever scaled them down.
        if (!snap.serverLimitW.empty() && snap.lastBudgetW > 0.0) {
            ++checks_;
            double sum = 0.0;
            for (double w : snap.serverLimitW)
                // lint:allow(float-accum) fixed server-index vector
                // order; snapshot taken on the quiescent spine
                sum += w;
            if (sum > snap.lastBudgetW + n * snap.deadbandW + kEpsW)
                flag(snap, AuditCheck::Budget, -1,
                     fmtDetail("enforced limits sum %.3f W > budget "
                               "%.3f W + deadband slack %.3f W",
                               sum, snap.lastBudgetW,
                               n * snap.deadbandW));
            if (!snap.anyEmergencyEver)
                for (std::size_t i = 0; i < snap.serverLimitW.size();
                     ++i) {
                    // A dead server is deliberately granted zero; its
                    // limit owes nothing to the floor.
                    if (i < snap.serverActive.size() &&
                        !snap.serverActive[i])
                        continue;
                    if (snap.serverLimitW[i] +
                            snap.deadbandW + kEpsW <
                        snap.floorW)
                        flag(snap, AuditCheck::Budget,
                             static_cast<int>(i),
                             fmtDetail("enforced limit %.3f W below "
                                       "floor %.3f W (deadband %.3f W)",
                                       snap.serverLimitW[i], snap.floorW,
                                       snap.deadbandW));
                }
        }
    }
}

} // namespace apc::obs
