/**
 * @file
 * Time-series metrics: periodic sampling of fleet/server gauges into
 * fixed-interval series.
 *
 * The sampler is driven from the lockstep epoch loop: after an epoch
 * completes (a quiescent, single-threaded instant), the fleet asks
 * `due(now)` and, if a sample interval has elapsed, calls
 * `beginSample(now)` followed by `set()` for every gauge it can read.
 * Series a sample never set stay NaN for that row — exported as empty
 * CSV cells / JSON nulls — so sparse gauges (e.g. rack budget) coexist
 * with dense ones.
 *
 * Sampling reads state but never mutates it (no events scheduled, no
 * RNG), so enabling metrics cannot perturb simulation results. All
 * sampled values derive from simulated state, making the series
 * deterministic across thread counts.
 */

#ifndef APC_OBS_METRICS_H
#define APC_OBS_METRICS_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace apc::obs {

/** Metrics sampling setup. */
struct MetricsConfig
{
    bool enabled = false;
    /** Sampling interval in simulated time. */
    sim::Tick interval = 1 * sim::kMs;
    /** Record per-server gauges (power, outstanding, cap limit) in
     *  addition to the fleet/rack aggregates. */
    bool perServer = true;
};

/** Index of a registered series. */
using SeriesId = std::uint32_t;

/** Fixed-interval, multi-series sample store with CSV/JSON export. */
class MetricsSampler
{
  public:
    explicit MetricsSampler(MetricsConfig cfg) : cfg_(cfg)
    {
        // A non-positive interval would re-sample every epoch forever
        // (due() is `now >= next_`); the fleet rejects it at setup, and
        // the sampler itself clamps defensively for standalone users.
        if (cfg_.interval <= 0)
            cfg_.interval = 1;
    }

    /** Register a series (setup-time). @p entity tags per-server series
     *  with the server index; -1 marks a fleet-level series. */
    SeriesId
    addSeries(std::string name, int entity = -1)
    {
        sim::RoleGuard own(sampleRole_);
        names_.push_back(std::move(name));
        entities_.push_back(entity);
        values_.emplace_back();
        return static_cast<SeriesId>(names_.size() - 1);
    }

    /** True when the next sample instant has been reached. */
    bool
    due(sim::Tick now) const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return now >= next_;
    }

    /** Open a sample row at @p now: every series gets a NaN slot that
     *  set() overwrites. Advances the next-due time. */
    void beginSample(sim::Tick now);

    /** Assign @p v to series @p id in the current (last begun) row.
     *  A set() before any beginSample() has no row to land in and is
     *  dropped (it would otherwise write through an empty vector). */
    void
    set(SeriesId id, double v)
    {
        sim::RoleGuard own(sampleRole_);
        if (!values_[id].empty())
            values_[id].back() = v;
    }

    std::size_t
    numSeries() const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return names_.size();
    }
    std::size_t
    numSamples() const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return times_.size();
    }
    const std::string &
    seriesName(SeriesId id) const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return names_[id];
    }
    int
    seriesEntity(SeriesId id) const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return entities_[id];
    }
    const std::vector<sim::Tick> &
    times() const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return times_;
    }
    const std::vector<double> &
    series(SeriesId id) const
    {
        sim::SharedRoleGuard own(sampleRole_);
        return values_[id];
    }

    const MetricsConfig &config() const { return cfg_; }

    /**
     * Long-format CSV: `t_us,series,entity,value` — one row per set
     * value (NaN slots are skipped; entity is empty for fleet series).
     * @return false on any IO failure.
     */
    bool writeCsv(std::FILE *out) const;
    bool writeCsv(const std::string &path) const;

    /** JSON object: `{"interval_us":..., "times_us":[...],
     *  "series":[{"name","entity","values":[...]}]}` with nulls for
     *  unset slots. @return false on any IO failure. */
    bool writeJson(std::FILE *out) const;
    bool writeJson(const std::string &path) const;

  private:
    /**
     * Sampling-state capability: the sampler is driven from the
     * quiescent epoch boundary on the single-threaded spine (one
     * writer), with post-run readers. Guards are runtime no-ops; the
     * discipline is checked by the TSan CI job.
     */
    mutable sim::Role sampleRole_;
    MetricsConfig cfg_;
    sim::Tick next_ APC_GUARDED_BY(sampleRole_) = 0;
    std::vector<sim::Tick> times_ APC_GUARDED_BY(sampleRole_);
    std::vector<std::string> names_ APC_GUARDED_BY(sampleRole_);
    std::vector<int> entities_ APC_GUARDED_BY(sampleRole_);
    std::vector<std::vector<double>> values_ APC_GUARDED_BY(sampleRole_);
};

} // namespace apc::obs

#endif // APC_OBS_METRICS_H
