#include "obs/critpath.h"

#include <algorithm>
#include <numeric>

#include "obs/fmt.h"
#include "stats/rank.h"

namespace apc::obs {

Segment
BlameBand::dominant() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < kNumSegments; ++i)
        if (segMeanUs[i] > segMeanUs[best])
            best = i;
    return static_cast<Segment>(best);
}

const char *
LatencyAttribution::bandLabel(std::size_t band)
{
    static_assert(kNumBands == stats::kNumPercentileBands,
                  "blame bands mirror the shared percentile bands");
    return stats::percentileBandLabel(band);
}

LatencyAttribution
LatencyAttribution::build(const AttributionResult &res,
                          std::size_t sample_limit)
{
    LatencyAttribution out;
    out.enabled = true;
    out.requests = res.requests.size();
    out.lostExcluded = res.lostExcluded;
    out.incomplete = res.incomplete;
    out.violations = res.violations;
    out.ringDropped = res.ringDropped;

    const std::size_t n = res.requests.size();
    if (n == 0)
        return out;

    // Rank requests by end-to-end latency (ties broken by the already
    // deterministic arrival order) and cut the bands at exact ranks:
    // ceil(n*p) requests lie at or below the p-quantile.
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&res](std::uint32_t a, std::uint32_t b) {
                         return res.requests[a].e2e < res.requests[b].e2e;
                     });
    const auto edges = stats::percentileBandEdges(n);

    for (std::size_t b = 0; b < kNumBands; ++b) {
        BlameBand &band = out.bands[b];
        for (std::size_t r = edges[b]; r < edges[b + 1]; ++r) {
            const RequestPath &rp = res.requests[order[r]];
            const ReplicaPath &cp = rp.criticalPath();
            ++band.count;
            band.e2eMeanUs += sim::toMicros(rp.e2e);
            for (std::size_t s = 0; s < kNumSegments; ++s)
                band.segMeanUs[s] += sim::toMicros(cp.seg[s]);
        }
        if (band.count > 0) {
            const double inv = 1.0 / static_cast<double>(band.count);
            band.e2eMeanUs *= inv;
            for (double &v : band.segMeanUs)
                v *= inv;
        }
    }

    for (const RequestPath &rp : res.requests) {
        const ReplicaPath &cp = rp.criticalPath();
        if (rp.replicas.size() > 1)
            ++out.fanoutRequests;
        ++out.criticalBySegment[static_cast<std::size_t>(cp.dominant())];
    }

    const std::size_t keep = std::min(sample_limit, n);
    out.samples.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
        const RequestPath &rp = res.requests[i];
        const ReplicaPath &cp = rp.criticalPath();
        RequestSample s;
        s.id = rp.id;
        s.srv = cp.srv;
        s.replicas = static_cast<std::uint32_t>(rp.replicas.size());
        s.e2eTicks = rp.e2e;
        for (std::size_t k = 0; k < kNumSegments; ++k)
            s.segTicks[k] = cp.seg[k];
        out.samples.push_back(s);
    }
    return out;
}

double
LatencyAttribution::tailMeanUs(Segment s) const
{
    // The two bands above p99 (p99-p999 and >p999), count-weighted.
    const std::size_t si = static_cast<std::size_t>(s);
    std::uint64_t count = 0;
    double acc = 0.0;
    for (std::size_t b = 3; b < kNumBands; ++b) {
        // lint:allow(float-accum) fixed band-index order over a
        // fixed-shape table; identical on every layout
        acc += bands[b].segMeanUs[si] *
            static_cast<double>(bands[b].count);
        count += bands[b].count;
    }
    return count ? acc / static_cast<double>(count) : 0.0;
}

Segment
LatencyAttribution::tailDominant() const
{
    std::size_t best = 0;
    double best_us = tailMeanUs(static_cast<Segment>(0));
    for (std::size_t i = 1; i < kNumSegments; ++i) {
        const double us = tailMeanUs(static_cast<Segment>(i));
        if (us > best_us) {
            best_us = us;
            best = i;
        }
    }
    return static_cast<Segment>(best);
}

bool
LatencyAttribution::writeCsv(std::FILE *out) const
{
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };
    put("band,count,e2e_mean_us");
    for (std::size_t s = 0; s < kNumSegments; ++s)
        put(",%s_us", segmentName(static_cast<Segment>(s)));
    put(",dominant\n");
    for (std::size_t b = 0; b < kNumBands; ++b) {
        const BlameBand &band = bands[b];
        put("%s,%llu,%s", bandLabel(b),
            static_cast<unsigned long long>(band.count),
            fmtDouble(band.e2eMeanUs).c_str());
        for (std::size_t s = 0; s < kNumSegments; ++s)
            put(",%s", fmtDouble(band.segMeanUs[s]).c_str());
        put(",%s\n", segmentName(band.dominant()));
    }
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
LatencyAttribution::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeCsv(f);
    return std::fclose(f) == 0 && ok;
}

bool
LatencyAttribution::writeJson(std::FILE *out) const
{
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };
    put("{\n  \"schema_version\": %d,\n", kBlameSchemaVersion);
    put("  \"requests\": %llu,\n",
        static_cast<unsigned long long>(requests));
    put("  \"fanout_requests\": %llu,\n",
        static_cast<unsigned long long>(fanoutRequests));
    put("  \"lost_excluded\": %llu,\n",
        static_cast<unsigned long long>(lostExcluded));
    put("  \"incomplete\": %llu,\n",
        static_cast<unsigned long long>(incomplete));
    put("  \"violations\": %llu,\n",
        static_cast<unsigned long long>(violations));
    put("  \"trace_drops\": %llu,\n",
        static_cast<unsigned long long>(ringDropped));
    put("  \"segments\": [");
    for (std::size_t s = 0; s < kNumSegments; ++s)
        put("%s\"%s\"", s ? ", " : "", segmentName(static_cast<Segment>(s)));
    put("],\n  \"bands\": [\n");
    for (std::size_t b = 0; b < kNumBands; ++b) {
        const BlameBand &band = bands[b];
        put("    {\"band\": \"%s\", \"count\": %llu, "
            "\"e2e_mean_us\": %s, \"dominant\": \"%s\", \"blame_us\": {",
            bandLabel(b), static_cast<unsigned long long>(band.count),
            fmtDouble(band.e2eMeanUs).c_str(),
            segmentName(band.dominant()));
        for (std::size_t s = 0; s < kNumSegments; ++s)
            put("%s\"%s\": %s", s ? ", " : "",
                segmentName(static_cast<Segment>(s)),
                fmtDouble(band.segMeanUs[s]).c_str());
        put("}}%s\n", b + 1 < kNumBands ? "," : "");
    }
    put("  ],\n  \"critical_segment_counts\": {");
    for (std::size_t s = 0; s < kNumSegments; ++s)
        put("%s\"%s\": %llu", s ? ", " : "",
            segmentName(static_cast<Segment>(s)),
            static_cast<unsigned long long>(criticalBySegment[s]));
    put("},\n  \"samples\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const RequestSample &s = samples[i];
        put("    {\"id\": %llu, \"srv\": %u, \"replicas\": %u, "
            "\"e2e_ticks\": %lld, \"seg_ticks\": {",
            static_cast<unsigned long long>(s.id), s.srv, s.replicas,
            static_cast<long long>(s.e2eTicks));
        for (std::size_t k = 0; k < kNumSegments; ++k)
            put("%s\"%s\": %lld", k ? ", " : "",
                segmentName(static_cast<Segment>(k)),
                static_cast<long long>(s.segTicks[k]));
        put("}}%s\n", i + 1 < samples.size() ? "," : "");
    }
    put("  ]\n}\n");
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
LatencyAttribution::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeJson(f);
    return std::fclose(f) == 0 && ok;
}

} // namespace apc::obs
