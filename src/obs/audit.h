/**
 * @file
 * Invariant auditor: continuous conservation checking driven from the
 * fleet's quiescent epoch boundaries (ns-3 FlowMonitor idiom — an
 * attachable observer that audits flow conservation online without
 * perturbing the simulation).
 *
 * The fleet engine snapshots its accounting state between epochs —
 * every server quiescent, the merge applied, no events in motion — and
 * the auditor checks the identities that must hold at such an instant:
 *
 *  - **request conservation**: flights created = flights finished +
 *    flights in flight, and (measurement window) dispatched =
 *    completed + lost-to-drop + lost-to-crash + measured-in-flight —
 *    a crash may destroy work but never silently vanish it;
 *  - **per-server counters**: completed + aborted <= accepted, all
 *    monotonically non-decreasing across audits;
 *  - **fabric link conservation**: offered = delivered + dropped,
 *    exactly, on every link;
 *  - **energy accounting**: each plane's quantized RAPL counter
 *    brackets the integrated energy within one energy unit, plane
 *    energy equals the sum over its registered loads, and energy never
 *    decreases;
 *  - **rack budget conservation**: every allocation epoch granted at
 *    most the rack budget, non-emergency epochs respected the
 *    per-server floors, and the enforced limits stay within the
 *    deadband of the last grant.
 *
 * Violations are counted per check, recorded as instants on the Health
 * trace track, and — in `failFast` mode — abort the process with a
 * diagnostic dump (the audit-as-sanitizer mode CI runs the test suite
 * under). The auditor only reads the snapshot it is handed: auditing a
 * run cannot change its results.
 */

#ifndef APC_OBS_AUDIT_H
#define APC_OBS_AUDIT_H

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/tracer.h"
#include "sim/time.h"

namespace apc::obs {

/** Invariant families the auditor checks. */
enum class AuditCheck : std::uint8_t
{
    FleetFlights = 0, ///< created = finished + in flight
    FleetRequests,    ///< dispatched = completed + lost + crash + in flight
    ServerCounters,   ///< completed + aborted <= accepted, all monotone
    LinkConservation, ///< offered = delivered + dropped per link
    Energy,           ///< RAPL counter brackets energy; monotone
    Budget,           ///< allocations <= budget; floors respected
};

inline constexpr std::size_t kNumAuditChecks = 6;

/** Display name for a check family. */
const char *auditCheckName(AuditCheck c);

/** Auditor setup. */
struct AuditConfig
{
    /** Run the auditor (when the owning HealthConfig is enabled). */
    bool enabled = true;
    /** Abort with a diagnostic dump on the first violation. */
    bool failFast = false;
    /** Audit cadence in sim-time; 0 audits every fleet epoch. */
    sim::Tick interval = 0;
};

/** Per-server counters at the snapshot instant. */
struct AuditServerCounters
{
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t aborted = 0; ///< destroyed by crash / refused admission
};

/** Per-link counters (offered = delivered + dropped must hold). */
struct AuditLinkCounters
{
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
};

/** One RAPL plane's energy accounting at the snapshot instant. */
struct AuditEnergy
{
    int server = 0;
    int plane = 0;          ///< power::Plane index
    double energyJ = 0.0;   ///< unquantized integrated energy
    double loadSumJ = 0.0;  ///< sum over the plane's registered loads
    std::uint64_t counter = 0; ///< quantized RAPL counter
    double unitJ = 0.0;        ///< energy-status unit
};

/** One budget-allocation epoch record (new since the last audit). */
struct AuditBudgetEpoch
{
    sim::Tick at = 0;
    double budgetW = 0.0;
    double allocatedW = 0.0;
    bool emergency = false;
    /** Servers participating in the epoch's waterfill; 0 (legacy
     *  snapshot builders) means "all of them". */
    std::size_t active = 0;
};

/**
 * Everything the auditor looks at, gathered by the fleet engine at a
 * quiescent epoch boundary. POD-ish by design: tests corrupt fields
 * directly to prove the auditor can fail.
 */
struct AuditSnapshot
{
    sim::Tick now = 0;

    // Fleet request accounting.
    std::uint64_t flightsCreated = 0;
    std::uint64_t flightsFinished = 0;
    std::uint64_t flightsInFlight = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t lost = 0;
    std::uint64_t lostToCrash = 0; ///< destroyed by injected faults
    std::uint64_t measuredInFlight = 0;

    std::vector<AuditServerCounters> servers;
    std::vector<AuditLinkCounters> links;
    std::vector<AuditEnergy> energy;

    // Rack budget state (empty/false when budgeting is off).
    bool budgetEnabled = false;
    double floorW = 0.0;
    double deadbandW = 0.0;
    std::size_t numServers = 0;
    bool anyEmergencyEver = false;
    std::vector<AuditBudgetEpoch> newEpochs;
    /** Last logged grant's rack budget (bounds the enforced limits). */
    double lastBudgetW = 0.0;
    std::vector<double> serverLimitW;
    /** Per-server liveness at the snapshot (empty = everyone Up); a
     *  dead server's enforced limit is exempt from the floor check. */
    std::vector<std::uint8_t> serverActive;
};

/** One recorded violation. */
struct AuditViolation
{
    sim::Tick at = 0;
    AuditCheck check = AuditCheck::FleetFlights;
    int entity = -1; ///< server/link index when applicable
    std::string detail;
};

/** The epoch-boundary invariant checker. */
class Auditor
{
  public:
    explicit Auditor(AuditConfig cfg) : cfg_(cfg) {}

    /** Record violation instants on @p w's Health track (null off). */
    void setTrace(TraceWriter *w) { trace_ = w; }

    /** True when the audit cadence has elapsed since the last audit. */
    bool due(sim::Tick now) const
    {
        return cfg_.interval <= 0 || now >= lastAuditAt_ + cfg_.interval;
    }

    /** Run every check against @p snap. In failFast mode a violation
     *  aborts after dumping the snapshot; otherwise violations are
     *  counted and (bounded) retained. */
    void audit(const AuditSnapshot &snap);

    std::uint64_t audits() const { return audits_; }
    std::uint64_t checksRun() const { return checks_; }
    std::uint64_t violationCount() const { return violationCount_; }
    std::uint64_t violations(AuditCheck c) const
    {
        return byCheck_[static_cast<std::size_t>(c)];
    }
    const std::array<std::uint64_t, kNumAuditChecks> &byCheck() const
    {
        return byCheck_;
    }
    /** Retained violation details (capped at kMaxKept). */
    const std::vector<AuditViolation> &log() const { return log_; }

    const AuditConfig &config() const { return cfg_; }

    /** Retention cap for violation details (counts are never capped). */
    static constexpr std::size_t kMaxKept = 64;

  private:
    void flag(const AuditSnapshot &snap, AuditCheck check, int entity,
              std::string detail);
    void dumpAndAbort(const AuditSnapshot &snap);

    AuditConfig cfg_;
    TraceWriter *trace_ = nullptr;
    sim::Tick lastAuditAt_ = std::numeric_limits<sim::Tick>::min() / 2;

    std::uint64_t audits_ = 0;
    std::uint64_t checks_ = 0;
    std::uint64_t violationCount_ = 0;
    std::array<std::uint64_t, kNumAuditChecks> byCheck_{};
    std::vector<AuditViolation> log_;

    // Monotonicity baselines from the previous audit.
    std::vector<AuditServerCounters> prevServers_;
    std::vector<double> prevEnergyJ_;
    std::uint64_t prevFinished_ = 0;
};

} // namespace apc::obs

#endif // APC_OBS_AUDIT_H
