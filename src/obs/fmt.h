/**
 * @file
 * Locale-independent numeric formatting for telemetry sinks.
 *
 * `fprintf("%g")` obeys the process locale (a German runner prints
 * `120,5` and corrupts every CSV/JSON export) and truncates doubles to
 * six significant digits, so digests over re-parsed files drift.
 * These helpers wrap `std::to_chars`, which is locale-independent by
 * specification and — in the shortest form — round-trip exact: the
 * printed string parses back to the identical double.
 */

#ifndef APC_OBS_FMT_H
#define APC_OBS_FMT_H

#include <charconv>
#include <cstring>

namespace apc::obs {

/** Stack buffer holding one formatted number (NUL-terminated). */
struct NumBuf
{
    char s[40];
    const char *c_str() const { return s; }
};

/** Shortest round-trip-exact decimal form of @p v ("120.5", "3",
 *  "0.30000000000000004"). Non-finite values print as "nan"/"inf"
 *  (callers emitting JSON must special-case them first). */
inline NumBuf
fmtDouble(double v)
{
    NumBuf b;
    const auto r = std::to_chars(b.s, b.s + sizeof(b.s) - 1, v);
    *r.ptr = '\0';
    return b;
}

/** Fixed-point form with @p precision fractional digits ("10.0000").
 *  Same digits "%.Nf" produces in the C locale, on every locale. */
inline NumBuf
fmtFixed(double v, int precision)
{
    NumBuf b;
    const auto r = std::to_chars(b.s, b.s + sizeof(b.s) - 1, v,
                                 std::chars_format::fixed, precision);
    *r.ptr = '\0';
    return b;
}

} // namespace apc::obs

#endif // APC_OBS_FMT_H
