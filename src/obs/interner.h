/**
 * @file
 * Deterministic string interning for the telemetry subsystem.
 *
 * Trace records and analysis events store 4-byte `StrId`s instead of
 * `std::string`s; the interner maps each distinct string to the id of
 * its first registration, so ids depend only on registration order —
 * never on addresses or hashing — and a trace recorded twice interns
 * identically. Interning is a *setup-time* operation (subscription,
 * tracer construction): the hot recording path only copies ids.
 */

#ifndef APC_OBS_INTERNER_H
#define APC_OBS_INTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/annotations.h"

namespace apc::obs {

/** Interned string id (index into the interner's table). */
using StrId = std::uint32_t;

/** "No string" sentinel (lookup misses, unset fields). */
inline constexpr StrId kNoStr = UINT32_MAX;

/** Registration-ordered string table. Not thread-safe: intern only
 *  from single-threaded setup/teardown code. That ownership is modeled
 *  as a capability (`table_`) guarding the id map and string vector —
 *  a no-op at runtime that keeps every table access visible to clang's
 *  thread-safety analysis (the setup-time-only discipline itself is
 *  checked by the TSan CI job). */
class StringInterner
{
  public:
    /** Unbounded table. */
    StringInterner() = default;

    /** Bounded table: at most @p max_strings distinct strings; further
     *  first-sight interns are rejected with kNoStr (and counted). */
    explicit StringInterner(std::size_t max_strings) : cap_(max_strings)
    {
    }

    /** Id for @p s, registering it on first sight. Returns kNoStr when
     *  a bounded table is full (re-interning an existing string always
     *  succeeds — the table never forgets what it holds). */
    StrId
    intern(std::string_view s)
    {
        sim::RoleGuard own(table_);
        const auto it = ids_.find(std::string(s));
        if (it != ids_.end())
            return it->second;
        if (strings_.size() >= cap_) {
            ++rejected_;
            return kNoStr;
        }
        const auto id = static_cast<StrId>(strings_.size());
        strings_.emplace_back(s);
        ids_.emplace(strings_.back(), id);
        return id;
    }

    /** Id for @p s if already interned, else kNoStr. */
    StrId
    find(std::string_view s) const
    {
        sim::SharedRoleGuard own(table_);
        const auto it = ids_.find(std::string(s));
        return it == ids_.end() ? kNoStr : it->second;
    }

    /** The string behind @p id (must be a valid id). */
    const std::string &
    str(StrId id) const
    {
        sim::SharedRoleGuard own(table_);
        return strings_[id];
    }

    std::size_t
    size() const
    {
        sim::SharedRoleGuard own(table_);
        return strings_.size();
    }

    /** Capacity of a bounded table (SIZE_MAX = unbounded). */
    std::size_t capacity() const { return cap_; }

    /** First-sight interns rejected because the table was full. */
    std::uint64_t
    rejected() const
    {
        sim::SharedRoleGuard own(table_);
        return rejected_;
    }

  private:
    /** Setup-time single-threaded ownership capability. */
    mutable sim::Role table_;
    std::unordered_map<std::string, StrId> ids_ APC_GUARDED_BY(table_);
    std::vector<std::string> strings_ APC_GUARDED_BY(table_);
    std::size_t cap_ = SIZE_MAX;
    std::uint64_t rejected_ APC_GUARDED_BY(table_) = 0;
};

} // namespace apc::obs

#endif // APC_OBS_INTERNER_H
