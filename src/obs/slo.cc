#include "obs/slo.h"

#include <algorithm>

#include "stats/rank.h"

namespace apc::obs {

const char *
sliName(Sli s)
{
    constexpr const char *names[kNumSlis] = {"latency", "availability",
                                             "power"};
    return names[static_cast<std::size_t>(s)];
}

namespace {

Name
alertTraceName(std::size_t sli)
{
    return static_cast<Name>(
        static_cast<std::uint32_t>(Name::AlertLatency) + sli);
}

Name
burnTraceName(std::size_t sli)
{
    return static_cast<Name>(
        static_cast<std::uint32_t>(Name::BurnLatency) + sli);
}

} // namespace

SloMonitor::SloMonitor(SloConfig cfg, double default_latency_slo_us)
    : cfg_(cfg)
{
    if (cfg_.latencyThresholdUs <= 0.0)
        cfg_.latencyThresholdUs = default_latency_slo_us;
    policies_[0] = cfg_.fast;
    policies_[1] = cfg_.slow;
    for (BurnPolicy &p : policies_) {
        // A window shorter than one epoch would evaluate over zero
        // sealed buckets; clamp to something evaluable.
        p.longWindow = std::max<sim::Tick>(p.longWindow, 1);
        p.shortWindow =
            std::min(std::max<sim::Tick>(p.shortWindow, 1), p.longWindow);
    }
}

void
SloMonitor::recordLatency(double us)
{
    const std::size_t lat = static_cast<std::size_t>(Sli::Latency);
    const std::size_t avail = static_cast<std::size_t>(Sli::Availability);
    if (us <= cfg_.latencyThresholdUs)
        ++cur_.good[lat];
    else
        ++cur_.bad[lat];
    ++cur_.good[avail];
    if (cur_.latency.size() < cfg_.maxSamplesPerEpoch)
        cur_.latency.push_back(us);
    else
        ++latDropped_;
}

void
SloMonitor::recordLost()
{
    ++cur_.bad[static_cast<std::size_t>(Sli::Availability)];
}

void
SloMonitor::setCapCounters(std::uint64_t samples,
                           std::uint64_t violations)
{
    capSamplesNow_ = samples;
    capViolationsNow_ = violations;
}

double
SloMonitor::errorBudget(std::size_t sli) const
{
    double objective = 0.0;
    switch (static_cast<Sli>(sli)) {
    case Sli::Latency:
        objective = cfg_.latencyObjective;
        break;
    case Sli::Availability:
        objective = cfg_.availabilityObjective;
        break;
    case Sli::Power:
        objective = cfg_.powerObjective;
        break;
    }
    return std::max(1.0 - objective, 1e-12);
}

double
SloMonitor::burnRate(std::size_t sli, sim::Tick t1,
                     sim::Tick window) const
{
    const sim::Tick from = t1 - window;
    std::uint64_t good = 0, bad = 0;
    // Newest buckets sit at the back; stop at the first bucket fully
    // outside the window. A bucket belongs to every window its end
    // falls in (windows are tens of epochs, so the partial-overlap
    // error of the oldest bucket is one epoch's worth at most).
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->t1 <= from)
            break;
        good += it->good[sli];
        bad += it->bad[sli];
    }
    const std::uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    const double bad_frac =
        static_cast<double>(bad) / static_cast<double>(total);
    return bad_frac / errorBudget(sli);
}

double
SloMonitor::windowGoodFraction(Sli sli, sim::Tick window) const
{
    if (window_.empty())
        return 1.0; // nothing sealed yet: vacuously healthy
    const std::size_t s = static_cast<std::size_t>(sli);
    const sim::Tick t1 = window_.back().t1;
    const sim::Tick from = t1 - window;
    std::uint64_t good = 0, bad = 0;
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->t1 <= from)
            break;
        good += it->good[s];
        bad += it->bad[s];
    }
    const std::uint64_t total = good + bad;
    if (total == 0)
        return 1.0; // zero traffic in the window: 100% available
    return static_cast<double>(good) / static_cast<double>(total);
}

double
SloMonitor::windowP99(sim::Tick t1)
{
    const sim::Tick from = t1 - policies_[0].longWindow;
    p99Scratch_.clear();
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->t1 <= from)
            break;
        p99Scratch_.insert(p99Scratch_.end(), it->latency.begin(),
                           it->latency.end());
    }
    if (p99Scratch_.empty())
        return 0.0;
    std::sort(p99Scratch_.begin(), p99Scratch_.end());
    return stats::quantileSorted(p99Scratch_, 99, 100);
}

void
SloMonitor::onEpoch(sim::Tick t0, sim::Tick t1)
{
    // Power SLI: the epoch's settled-sample delta across the fleet.
    const std::size_t pw = static_cast<std::size_t>(Sli::Power);
    const std::uint64_t ds = capSamplesNow_ - capSamplesPrev_;
    const std::uint64_t dv = capViolationsNow_ - capViolationsPrev_;
    capSamplesPrev_ = capSamplesNow_;
    capViolationsPrev_ = capViolationsNow_;
    cur_.good[pw] += ds - dv;
    cur_.bad[pw] += dv;

    cur_.t0 = t0;
    cur_.t1 = t1;
    window_.push_back(std::move(cur_));
    cur_ = Bucket{};

    // Evict buckets no window can see anymore.
    const sim::Tick horizon =
        t1 - std::max(policies_[0].longWindow, policies_[1].longWindow);
    while (!window_.empty() && window_.front().t1 <= horizon)
        window_.pop_front();

    const double p99 = windowP99(t1);
    worstP99Us_ = std::max(worstP99Us_, p99);

    for (std::size_t s = 0; s < kNumSlis; ++s) {
        for (std::size_t p = 0; p < kNumBurnPolicies; ++p) {
            const BurnPolicy &pol = policies_[p];
            const double burn_long = burnRate(s, t1, pol.longWindow);
            const double burn_short = burnRate(s, t1, pol.shortWindow);
            const double sustained = std::min(burn_long, burn_short);
            if (sustained > worstBurn_) {
                worstBurn_ = sustained;
                worstSli_ = static_cast<Sli>(s);
            }
            AlertState &st = states_[s][p];
            if (st.active)
                st.worstWhileActive =
                    std::max(st.worstWhileActive, sustained);
            const bool over = burn_long >= pol.threshold &&
                burn_short >= pol.threshold;
            if (over == st.active)
                continue;
            AlertEvent ev;
            ev.at = t1;
            ev.sli = static_cast<Sli>(s);
            ev.policy = static_cast<std::uint8_t>(p);
            ev.fire = over;
            ev.burnLong = burn_long;
            ev.burnShort = burn_short;
            ev.windowP99Us = p99;
            alerts_.push_back(ev);
            if (over) {
                ++fired_;
                st.active = true;
                st.firedAt = t1;
                st.worstWhileActive = sustained;
            } else {
                ++resolved_;
                st.active = false;
                if (trace_)
                    trace_->span(st.firedAt, t1 - st.firedAt,
                                 alertTraceName(s), Track::Health, p,
                                 st.worstWhileActive);
            }
        }
        if (trace_)
            trace_->counter(t1, burnTraceName(s), Track::Health,
                            burnRate(s, t1, policies_[0].longWindow));
    }
    if (anyActive())
        inViolation_ += t1 - t0;
}

bool
SloMonitor::anyActive() const
{
    for (const auto &per_sli : states_)
        for (const AlertState &st : per_sli)
            if (st.active)
                return true;
    return false;
}

void
SloMonitor::finish(sim::Tick end)
{
    for (std::size_t s = 0; s < kNumSlis; ++s) {
        for (std::size_t p = 0; p < kNumBurnPolicies; ++p) {
            AlertState &st = states_[s][p];
            if (!st.active)
                continue;
            AlertEvent ev;
            ev.at = end;
            ev.sli = static_cast<Sli>(s);
            ev.policy = static_cast<std::uint8_t>(p);
            ev.fire = false;
            ev.burnLong = ev.burnShort = st.worstWhileActive;
            alerts_.push_back(ev);
            ++resolved_;
            st.active = false;
            if (trace_ && end > st.firedAt)
                trace_->span(st.firedAt, end - st.firedAt,
                             alertTraceName(s), Track::Health, p,
                             st.worstWhileActive);
        }
    }
}

} // namespace apc::obs
