#include "obs/health.h"

#include "obs/fmt.h"

namespace apc::obs {

HealthReport
HealthMonitor::report() const
{
    HealthReport r;
    r.enabled = true;
    r.alertsFired = slo_.alertsFired();
    r.alertsResolved = slo_.alertsResolved();
    r.worstBurn = slo_.worstBurn();
    r.worstBurnSli = slo_.worstBurnSli();
    r.timeInViolation = slo_.timeInViolation();
    r.worstWindowP99Us = slo_.worstWindowP99Us();
    r.latencySamplesDropped = slo_.latencySamplesDropped();
    r.alerts = slo_.alerts();
    r.slo = slo_.config();
    if (cfg_.audit.enabled) {
        r.audits = auditor_.audits();
        r.auditChecks = auditor_.checksRun();
        r.auditViolations = auditor_.violationCount();
        r.auditByCheck = auditor_.byCheck();
        r.auditLog = auditor_.log();
    }
    return r;
}

namespace {

const char *
policyName(std::uint8_t p)
{
    return p == 0 ? "fast" : "slow";
}

const char *
policySeverity(const SloConfig &cfg, std::uint8_t p)
{
    return p == 0 ? cfg.fast.severity : cfg.slow.severity;
}

} // namespace

bool
HealthReport::writeAlertsCsv(std::FILE *out) const
{
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };
    put("t_us,sli,policy,severity,kind,burn_long,burn_short,"
        "window_p99_us\n");
    for (const AlertEvent &ev : alerts)
        put("%s,%s,%s,%s,%s,%s,%s,%s\n",
            fmtFixed(sim::toMicros(ev.at), 3).c_str(), sliName(ev.sli),
            policyName(ev.policy), policySeverity(slo, ev.policy),
            ev.fire ? "fire" : "resolve",
            fmtDouble(ev.burnLong).c_str(),
            fmtDouble(ev.burnShort).c_str(),
            fmtDouble(ev.windowP99Us).c_str());
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
HealthReport::writeAlertsCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeAlertsCsv(f);
    return std::fclose(f) == 0 && ok;
}

bool
HealthReport::writeAlertsJson(std::FILE *out) const
{
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };
    put("{\n  \"schema_version\": %d,\n", kHealthSchemaVersion);
    put("  \"slo\": {\"latency_threshold_us\": %s, "
        "\"latency_objective\": %s, \"availability_objective\": %s, "
        "\"power_objective\": %s},\n",
        fmtDouble(slo.latencyThresholdUs).c_str(),
        fmtDouble(slo.latencyObjective).c_str(),
        fmtDouble(slo.availabilityObjective).c_str(),
        fmtDouble(slo.powerObjective).c_str());
    put("  \"policies\": [\n");
    const BurnPolicy pols[kNumBurnPolicies] = {slo.fast, slo.slow};
    for (std::size_t p = 0; p < kNumBurnPolicies; ++p)
        put("    {\"name\": \"%s\", \"severity\": \"%s\", "
            "\"long_us\": %s, \"short_us\": %s, \"threshold\": %s}%s\n",
            policyName(static_cast<std::uint8_t>(p)), pols[p].severity,
            fmtFixed(sim::toMicros(pols[p].longWindow), 3).c_str(),
            fmtFixed(sim::toMicros(pols[p].shortWindow), 3).c_str(),
            fmtDouble(pols[p].threshold).c_str(),
            p + 1 < kNumBurnPolicies ? "," : "");
    put("  ],\n");
    put("  \"alerts_fired\": %llu,\n  \"alerts_resolved\": %llu,\n",
        static_cast<unsigned long long>(alertsFired),
        static_cast<unsigned long long>(alertsResolved));
    put("  \"worst_burn\": %s,\n  \"worst_burn_sli\": \"%s\",\n",
        fmtDouble(worstBurn).c_str(), sliName(worstBurnSli));
    put("  \"time_in_violation_us\": %s,\n",
        fmtFixed(timeInViolationUs(), 3).c_str());
    put("  \"worst_window_p99_us\": %s,\n",
        fmtDouble(worstWindowP99Us).c_str());
    put("  \"latency_samples_dropped\": %llu,\n",
        static_cast<unsigned long long>(latencySamplesDropped));
    put("  \"audit\": {\"audits\": %llu, \"checks\": %llu, "
        "\"violations\": %llu, \"by_check\": {",
        static_cast<unsigned long long>(audits),
        static_cast<unsigned long long>(auditChecks),
        static_cast<unsigned long long>(auditViolations));
    for (std::size_t c = 0; c < kNumAuditChecks; ++c)
        put("%s\"%s\": %llu", c ? ", " : "",
            auditCheckName(static_cast<AuditCheck>(c)),
            static_cast<unsigned long long>(auditByCheck[c]));
    put("}},\n  \"alerts\": [\n");
    for (std::size_t i = 0; i < alerts.size(); ++i) {
        const AlertEvent &ev = alerts[i];
        put("    {\"t_us\": %s, \"sli\": \"%s\", \"policy\": \"%s\", "
            "\"severity\": \"%s\", \"kind\": \"%s\", \"burn_long\": %s, "
            "\"burn_short\": %s, \"window_p99_us\": %s}%s\n",
            fmtFixed(sim::toMicros(ev.at), 3).c_str(), sliName(ev.sli),
            policyName(ev.policy), policySeverity(slo, ev.policy),
            ev.fire ? "fire" : "resolve",
            fmtDouble(ev.burnLong).c_str(),
            fmtDouble(ev.burnShort).c_str(),
            fmtDouble(ev.windowP99Us).c_str(),
            i + 1 < alerts.size() ? "," : "");
    }
    put("  ]\n}\n");
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
HealthReport::writeAlertsJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeAlertsJson(f);
    return std::fclose(f) == 0 && ok;
}

} // namespace apc::obs
