/**
 * @file
 * Online SLO monitoring: rolling sim-time windows over the fleet's
 * service-level indicators with Google-SRE-style multi-window
 * burn-rate alerting.
 *
 * Three SLIs are tracked:
 *
 *  - **latency**: a completed request is good when its end-to-end
 *    latency is at or below the threshold (defaults to the fleet SLO);
 *  - **availability**: a request is good when it was answered at all
 *    (not dropped beyond retry);
 *  - **power**: a settled power-cap control sample is good when the
 *    server was not violating its enforced limit.
 *
 * Each SLI has an objective (target good fraction); the *burn rate* of
 * a window is its bad fraction divided by the error budget
 * (1 - objective) — burn 1.0 spends the budget exactly at the allowed
 * pace, burn 14.4 exhausts a 30-day budget in ~2 days. An alert fires
 * when **both** a long and a short window exceed the policy threshold
 * (the long window gives confidence, the short window makes the alert
 * reset quickly once the problem stops), and resolves when both fall
 * back below it. Two policies run per SLI: a fast-burn pair (page) and
 * a slow-burn pair (ticket), window lengths scaled to sim-time.
 *
 * The monitor is fed exclusively from single-threaded sections of the
 * fleet engine (flight completion in the merge phase, epoch
 * boundaries), only ever reads simulation state, and allocates from
 * bounded buffers — the zero-footprint observability contract: reports
 * are byte-identical with monitoring on or off, at any thread count,
 * and the alert log itself is deterministic.
 */

#ifndef APC_OBS_SLO_H
#define APC_OBS_SLO_H

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/tracer.h"
#include "sim/time.h"

namespace apc::obs {

/** Service-level indicators under watch. */
enum class Sli : std::uint8_t
{
    Latency = 0,  ///< completed requests within the latency threshold
    Availability, ///< requests answered (not lost)
    Power,        ///< cap control samples not in violation
};

inline constexpr std::size_t kNumSlis = 3;

/** Display name for an SLI ("latency", "availability", "power"). */
const char *sliName(Sli s);

/**
 * One multi-window burn-rate policy: alert when both windows burn at
 * or above the threshold.
 */
struct BurnPolicy
{
    sim::Tick longWindow = 0;
    sim::Tick shortWindow = 0;
    double threshold = 1.0;
    const char *severity = "page";
};

/** Policies per SLI (fast-burn + slow-burn). */
inline constexpr std::size_t kNumBurnPolicies = 2;

/** SLO monitor setup. */
struct SloConfig
{
    /** Latency SLI good/bad threshold in µs; 0 inherits the fleet's
     *  `sloUs`. */
    double latencyThresholdUs = 0.0;

    /** Target good fractions. The error budget is 1 - objective. */
    double latencyObjective = 0.999;
    double availabilityObjective = 0.9999;
    double powerObjective = 0.99;

    /**
     * Window pairs, scaled to sim-time from the canonical SRE
     * 1h/5m @ 14.4 and 6h/30m @ 6 pairs (1 h of wall time ~ 12 ms of
     * a compressed diurnal day here).
     */
    BurnPolicy fast{12 * sim::kMs, 1 * sim::kMs, 14.4, "page"};
    BurnPolicy slow{72 * sim::kMs, 6 * sim::kMs, 6.0, "ticket"};

    /** Per-epoch cap on retained latency samples (rolling-percentile
     *  context); excess samples still count good/bad but drop out of
     *  the percentile buffer (counted). */
    std::size_t maxSamplesPerEpoch = 4096;
};

/** One alert lifecycle edge in the log. */
struct AlertEvent
{
    sim::Tick at = 0;
    Sli sli = Sli::Latency;
    std::uint8_t policy = 0; ///< 0 = fast-burn pair, 1 = slow-burn
    bool fire = false;       ///< true = fired, false = resolved
    double burnLong = 0.0;
    double burnShort = 0.0;
    /** Rolling exact-rank p99 latency over the fast long window at the
     *  event instant (context for the on-call). */
    double windowP99Us = 0.0;
};

/**
 * The rolling-window burn-rate evaluator. Records land in the current
 * epoch bucket; `onEpoch` seals the bucket, evicts buckets past the
 * longest window, and evaluates every (SLI, policy) alert state.
 */
class SloMonitor
{
  public:
    SloMonitor(SloConfig cfg, double default_latency_slo_us);

    /** Mirror alert lifecycles and burn counters onto @p w's Health
     *  track (null disables). */
    void setTrace(TraceWriter *w) { trace_ = w; }

    /** A request completed end-to-end in @p us. */
    void recordLatency(double us);

    /** A request was dropped beyond retry. */
    void recordLost();

    /** Latch the fleet's cumulative cap-control counters; the epoch
     *  delta feeds the power SLI. */
    void setCapCounters(std::uint64_t samples, std::uint64_t violations);

    /** Seal the bucket covering [t0, t1), roll windows, evaluate. */
    void onEpoch(sim::Tick t0, sim::Tick t1);

    /** Close still-active alerts at the end of the run (span emission
     *  and resolve accounting; logged as resolves at @p end). */
    void finish(sim::Tick end);

    /**
     * Good fraction of @p sli over the trailing @p window ending at the
     * last sealed epoch. An empty window — an idle fleet that saw no
     * traffic — is a *healthy* 1.0, never NaN and never alert fuel:
     * zero requests means zero requests failed.
     */
    double windowGoodFraction(Sli sli, sim::Tick window) const;

    std::uint64_t alertsFired() const { return fired_; }
    std::uint64_t alertsResolved() const { return resolved_; }
    /** Any (SLI, policy) alert currently active. */
    bool anyActive() const;
    /** Worst sustained burn seen: max over evaluations of
     *  min(burnLong, burnShort) — the alert-relevant rate. */
    double worstBurn() const { return worstBurn_; }
    Sli worstBurnSli() const { return worstSli_; }
    /** Sim-time during which at least one alert was active. */
    sim::Tick timeInViolation() const { return inViolation_; }
    /** Highest rolling window p99 observed at an epoch boundary. */
    double worstWindowP99Us() const { return worstP99Us_; }
    std::uint64_t latencySamplesDropped() const { return latDropped_; }
    const std::vector<AlertEvent> &alerts() const { return alerts_; }
    const SloConfig &config() const { return cfg_; }

  private:
    struct Bucket
    {
        sim::Tick t0 = 0, t1 = 0;
        std::uint64_t good[kNumSlis] = {};
        std::uint64_t bad[kNumSlis] = {};
        std::vector<double> latency; ///< bounded percentile context
    };

    struct AlertState
    {
        bool active = false;
        sim::Tick firedAt = 0;
        double worstWhileActive = 0.0;
    };

    /** Burn rate of @p sli over the window (@p t1 - @p window, @p t1]:
     *  bad fraction over the bucketed window divided by the SLI's
     *  error budget (0 when the window holds no events). */
    double burnRate(std::size_t sli, sim::Tick t1,
                    sim::Tick window) const;
    double errorBudget(std::size_t sli) const;
    double windowP99(sim::Tick t1);

    SloConfig cfg_;
    BurnPolicy policies_[kNumBurnPolicies];
    TraceWriter *trace_ = nullptr;

    Bucket cur_;
    std::deque<Bucket> window_;
    std::uint64_t capSamplesPrev_ = 0, capViolationsPrev_ = 0;
    std::uint64_t capSamplesNow_ = 0, capViolationsNow_ = 0;

    AlertState states_[kNumSlis][kNumBurnPolicies];
    std::vector<AlertEvent> alerts_;
    std::uint64_t fired_ = 0, resolved_ = 0;
    double worstBurn_ = 0.0;
    Sli worstSli_ = Sli::Latency;
    sim::Tick inViolation_ = 0;
    double worstP99Us_ = 0.0;
    std::uint64_t latDropped_ = 0;
    std::vector<double> p99Scratch_;
};

} // namespace apc::obs

#endif // APC_OBS_SLO_H
