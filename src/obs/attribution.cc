#include "obs/attribution.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace apc::obs {

const char *
segmentName(Segment s)
{
    constexpr const char *names[kNumSegments] = {
        "xmit_req",   "rto",      "nic_ring",     "irq_hold",
        "wake",       "queue",    "stall_gate",   "serve",
        "stall_dvfs", "xmit_resp", "timeout_wait", "failover"};
    return names[static_cast<std::size_t>(s)];
}

Segment
ReplicaPath::dominant() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < kNumSegments; ++i)
        if (seg[i] > seg[best])
            best = i;
    return static_cast<Segment>(best);
}

AttributionResult
buildAttribution(const Tracer &tracer)
{
    AttributionResult res;
    res.ringDropped = tracer.totalDropped();

    struct Pending
    {
        sim::Tick arrival = 0;
        sim::Tick e2e = 0;
        bool finished = false; ///< saw the end-to-end Request span
        std::vector<ReplicaPath> replicas;
    };
    std::unordered_map<std::uint64_t, Pending> byId;
    std::unordered_set<std::uint64_t> lost;
    std::uint64_t segmentSpans = 0;

    for (const Tracer::MergedRecord &m : tracer.merged()) {
        const TraceRecord &r = *m.rec;
        const auto kind = static_cast<TraceKind>(r.kind);
        const auto name = static_cast<Name>(r.name);
        if (kind == TraceKind::Span && name == Name::Request &&
            m.writer == 0) {
            Pending &p = byId[r.id];
            p.arrival = r.ts;
            p.e2e = r.dur;
            p.finished = true;
            continue;
        }
        if (kind == TraceKind::Instant && name == Name::Lost &&
            m.writer == 0) {
            lost.insert(r.id);
            continue;
        }
        if (kind != TraceKind::Span)
            continue;
        const Segment seg = segmentFromTraceName(name);
        if (seg == Segment::kCount)
            continue;
        ++segmentSpans;
        // Fleet-spine spans name the server in `value`; a server
        // writer's spans imply that server (writer i = server i-1).
        const auto srv = m.writer == 0
            ? static_cast<std::uint32_t>(r.value)
            : m.writer - 1;
        auto &replicas = byId[r.id].replicas;
        auto it = std::find_if(
            replicas.begin(), replicas.end(),
            [srv](const ReplicaPath &rp) { return rp.srv == srv; });
        if (it == replicas.end()) {
            replicas.push_back({});
            it = replicas.end() - 1;
            it->srv = srv;
        }
        it->seg[static_cast<std::size_t>(seg)] += r.dur;
    }

    // No segment instrumentation ran (plain tracing): nothing to
    // attribute, and nothing to flag.
    if (segmentSpans == 0)
        return res;

    res.requests.reserve(byId.size());
    // lint:allow(unordered-iteration) collection pass only; the result
    // vector is sorted by stable request id below before any sink
    for (auto &[id, p] : byId) {
        if (lost.count(id)) {
            ++res.lostExcluded;
            continue;
        }
        if (!p.finished)
            continue; // still in flight at trace end
        RequestPath rp;
        rp.id = id;
        rp.arrival = p.arrival;
        rp.e2e = p.e2e;
        rp.replicas = std::move(p.replicas);
        // The critical replica is the one whose chain sums exactly to
        // the client-observed latency (leftmost on ties). Under
        // failover a stale attempt can keep accumulating spans after
        // the winning response resolved the request — its chain may
        // exceed e2e — so "slowest" is only the fallback when no
        // replica matches exactly.
        sim::Tick worst = -1;
        bool exact = false;
        for (std::size_t i = 0; i < rp.replicas.size(); ++i) {
            const sim::Tick t = rp.replicas[i].total();
            if (!exact && t == rp.e2e) {
                exact = true;
                rp.critical = i;
            } else if (!exact && t > worst) {
                rp.critical = i;
            }
            worst = std::max(worst, t);
        }
        rp.additive = exact;
        if (rp.additive) {
            res.requests.push_back(std::move(rp));
        } else if (res.ringDropped > 0) {
            ++res.incomplete; // spans lost to ring wrap; chain flagged
        } else {
            ++res.violations;
            assert(!"attribution additivity violated with no ring drops");
        }
    }

    // Deterministic report order regardless of hash-map iteration.
    std::sort(res.requests.begin(), res.requests.end(),
              [](const RequestPath &a, const RequestPath &b) {
                  return a.arrival != b.arrival ? a.arrival < b.arrival
                                                : a.id < b.id;
              });
    return res;
}

std::vector<FlowEvent>
buildFlows(const AttributionResult &res, std::size_t limit)
{
    std::vector<FlowEvent> flows;
    const std::size_t n = std::min(limit, res.requests.size());
    flows.reserve(3 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const RequestPath &rp = res.requests[i];
        const ReplicaPath &cp = rp.criticalPath();
        const sim::Tick serve_start = rp.arrival + rp.e2e -
            cp.seg[static_cast<std::size_t>(Segment::Serve)] -
            cp.seg[static_cast<std::size_t>(Segment::StallDvfs)] -
            cp.seg[static_cast<std::size_t>(Segment::XmitResp)];
        flows.push_back({rp.id, 0, rp.arrival,
                         static_cast<std::uint8_t>(Track::Requests), 0});
        flows.push_back({rp.id, cp.srv + 1, serve_start,
                         static_cast<std::uint8_t>(Track::Segments), 1});
        flows.push_back({rp.id, 0, rp.arrival + rp.e2e,
                         static_cast<std::uint8_t>(Track::Requests), 2});
    }
    return flows;
}

} // namespace apc::obs
