/**
 * @file
 * Per-request tail-latency attribution over the trace layer.
 *
 * The simulator's instrumentation (fleet spine, servers, NICs) emits
 * one segment span per latency-relevant boundary a request crosses:
 * fabric transit, RTO retransmit waits, NIC RX-ring residency, the
 * coalescing/IRQ DMA hold, the package C-state exit, dispatch-queue
 * wait, cap-induced stalls (idle-injection gate overlap and DVFS-clamp
 * dilation), service, and response transit. This module reassembles
 * those spans — post-run, from `Tracer::merged()` — into one causal
 * chain per (request, server) replica with the invariant that the
 * chain's segments **sum exactly** (integer ticks) to the replica's
 * client-observed latency; for fanout requests the slowest replica's
 * chain sums to the request's end-to-end latency.
 *
 * Writer convention (FleetSim's layout): writer 0 is the fleet spine —
 * its segment spans carry the target server in `value` — and writer
 * i >= 1 is server i-1. The invariant is checked per request; a
 * mismatch with zero ring drops is a bug (asserted in debug builds),
 * a mismatch with drops is the expected flag for an incomplete chain.
 */

#ifndef APC_OBS_ATTRIBUTION_H
#define APC_OBS_ATTRIBUTION_H

#include <cstdint>
#include <vector>

#include "obs/tracer.h"
#include "sim/time.h"

namespace apc::obs {

/** Latency segment taxonomy (order matches Name::SegXmitReq..). */
enum class Segment : std::uint8_t
{
    XmitReq = 0, ///< client -> server fabric transit (minus RTO)
    Rto,         ///< retransmit penalty (fabric RTO + NIC-drop resend)
    NicRing,     ///< RX-ring descriptor wait until the moderated IRQ
    IrqHold,     ///< IRQ -> DMA completion (coalescing hold)
    Wake,        ///< DMA done -> fabric open (package C-state exit)
    Queue,       ///< dispatch-queue wait (gate overlap excluded)
    StallGate,   ///< idle-injection gate overlap of the queue wait
    Serve,       ///< service time at the governor's frequency
    StallDvfs,   ///< extra service time from the cap's P-state clamp
    XmitResp,    ///< response TX + server -> client transit (minus RTO)
    TimeoutWait, ///< dispatch -> request timeout on abandoned attempts
    Failover,    ///< backoff gap before the failover re-dispatch
    kCount
};

inline constexpr std::size_t kNumSegments =
    static_cast<std::size_t>(Segment::kCount);

/** Short machine name ("xmit_req", "stall_gate", ...). */
const char *segmentName(Segment s);

/** The trace-vocabulary name a segment's spans are recorded under. */
inline Name
segmentTraceName(Segment s)
{
    return static_cast<Name>(static_cast<std::uint32_t>(Name::SegXmitReq) +
                             static_cast<std::uint32_t>(s));
}

/** Inverse of segmentTraceName; kCount when @p n is not a segment. */
inline Segment
segmentFromTraceName(Name n)
{
    const auto i = static_cast<std::uint32_t>(n) -
        static_cast<std::uint32_t>(Name::SegXmitReq);
    return i < kNumSegments ? static_cast<Segment>(i) : Segment::kCount;
}

/** Attribution setup (FleetConfig::attribution). */
struct AttributionConfig
{
    /** Master switch: enables segment instrumentation and the post-run
     *  blame report. Implies tracing (FleetSim forces trace.enabled). */
    bool enabled = false;
    /** Per-request samples carried into the exported report (exact
     *  integer ticks; CI validates additivity on them). */
    std::size_t sampleLimit = 256;
    /** Perfetto flow arrows emitted into writeTrace() exports. */
    std::size_t flowLimit = 256;
};

/** One replica's reassembled causal chain. */
struct ReplicaPath
{
    std::uint32_t srv = 0;
    sim::Tick seg[kNumSegments] = {};

    sim::Tick
    total() const
    {
        sim::Tick t = 0;
        for (std::size_t i = 0; i < kNumSegments; ++i)
            t += seg[i];
        return t;
    }

    /** The segment holding the largest share of this chain. */
    Segment dominant() const;
};

/** One attributed request (sorted by arrival for determinism). */
struct RequestPath
{
    std::uint64_t id = 0;
    sim::Tick arrival = 0;
    sim::Tick e2e = 0; ///< measured client-observed latency (ticks)
    std::vector<ReplicaPath> replicas;
    std::size_t critical = 0; ///< index of the critical replica
    bool additive = false;    ///< critical chain sums exactly to e2e

    const ReplicaPath &criticalPath() const { return replicas[critical]; }
};

/** The reassembled attribution for one run. */
struct AttributionResult
{
    /** Complete, additive requests, sorted by (arrival, id). */
    std::vector<RequestPath> requests;
    /** Requests excluded because a replica was dropped beyond retry
     *  (they never answered the client; no end-to-end latency). */
    std::uint64_t lostExcluded = 0;
    /** Requests flagged because their chains mismatched while trace
     *  rings had dropped records (spans lost to wrap). */
    std::uint64_t incomplete = 0;
    /** Chain mismatches with zero ring drops: additivity-invariant
     *  violations. Always 0 in a correct build (debug-asserted). */
    std::uint64_t violations = 0;
    /** Trace records lost to ring wrap across all writers. */
    std::uint64_t ringDropped = 0;
};

/**
 * Reassemble per-request causal chains from @p tracer's merged record
 * stream (FleetSim writer convention; see file header). Requests with
 * no end-to-end `Request` span (still in flight at trace end) are
 * ignored. In debug builds, asserts that no chain mismatches its
 * measured latency unless ring drops explain the gap.
 */
AttributionResult buildAttribution(const Tracer &tracer);

/**
 * Perfetto flow arrows for the first @p limit attributed requests:
 * start at the client arrival (fleet, requests track), step at the
 * critical replica's serve start (server, segments track), finish at
 * the client delivery (fleet, requests track).
 */
std::vector<FlowEvent> buildFlows(const AttributionResult &res,
                                  std::size_t limit);

} // namespace apc::obs

#endif // APC_OBS_ATTRIBUTION_H
