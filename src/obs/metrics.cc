#include "obs/metrics.h"

#include <cmath>
#include <limits>

#include "obs/fmt.h"

namespace apc::obs {

void
MetricsSampler::beginSample(sim::Tick now)
{
    sim::RoleGuard own(sampleRole_);
    times_.push_back(now);
    for (auto &v : values_)
        v.push_back(std::numeric_limits<double>::quiet_NaN());
    next_ = now + cfg_.interval;
}

bool
MetricsSampler::writeCsv(std::FILE *out) const
{
    sim::SharedRoleGuard own(sampleRole_);
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };
    put("t_us,series,entity,value\n");
    for (std::size_t s = 0; s < times_.size(); ++s) {
        for (std::size_t i = 0; i < names_.size(); ++i) {
            const double v = values_[i][s];
            if (std::isnan(v))
                continue;
            put("%s,%s,", fmtFixed(sim::toMicros(times_[s]), 3).c_str(),
                names_[i].c_str());
            if (entities_[i] >= 0)
                put("%d", entities_[i]);
            put(",%s\n", fmtDouble(v).c_str());
        }
    }
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
MetricsSampler::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeCsv(f);
    return std::fclose(f) == 0 && ok;
}

bool
MetricsSampler::writeJson(std::FILE *out) const
{
    sim::SharedRoleGuard own(sampleRole_);
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };
    put("{\n  \"interval_us\": %s,\n  \"times_us\": [",
        fmtFixed(sim::toMicros(cfg_.interval), 3).c_str());
    for (std::size_t s = 0; s < times_.size(); ++s)
        put("%s%s", s ? ", " : "",
            fmtFixed(sim::toMicros(times_[s]), 3).c_str());
    put("],\n  \"series\": [\n");
    for (std::size_t i = 0; i < names_.size(); ++i) {
        put("    {\"name\": \"%s\", \"entity\": %d, \"values\": [",
            names_[i].c_str(), entities_[i]);
        for (std::size_t s = 0; s < values_[i].size(); ++s) {
            const double v = values_[i][s];
            if (std::isnan(v))
                put("%snull", s ? ", " : "");
            else
                put("%s%s", s ? ", " : "", fmtDouble(v).c_str());
        }
        put("]}%s\n", i + 1 < names_.size() ? "," : "");
    }
    put("  ]\n}\n");
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
MetricsSampler::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeJson(f);
    return std::fclose(f) == 0 && ok;
}

} // namespace apc::obs
