#include "obs/tracer.h"

#include <algorithm>
#include <cstring>

#include "obs/fmt.h"
#include "obs/profiler.h"

namespace apc::obs {

const char *
trackName(Track t)
{
    constexpr const char *names[kNumTracks] = {
        "requests", "power",  "cap",      "nic",
        "budget",   "engine", "segments", "health"};
    return names[static_cast<std::size_t>(t)];
}

const char *
nameString(Name n)
{
    constexpr const char *names[static_cast<std::size_t>(Name::kCount)] = {
        "request",       "wait",          "serve",
        "lost",          "PC0",           "PC0idle",
        "ACC1",          "PC1A",          "PC2",
        "PC6",           "nic_irq",       "nic_drop",
        "cap_limit_w",   "cap_power_w",   "cap_clamp",
        "cap_duty",      "rack_budget_w", "rack_demand_w",
        "rack_alloc_w",  "budget_emergency",
        "route",         "advance",       "merge",
        "collect",       "seg_xmit_req",  "seg_rto",
        "seg_nic_ring",  "seg_irq_hold",  "seg_wake",
        "seg_queue",     "seg_stall_gate", "seg_serve",
        "seg_stall_dvfs", "seg_xmit_resp", "seg_timeout_wait",
        "seg_failover",  "rack_unmet_w",
        "alert_latency", "alert_availability", "alert_power",
        "burn_latency",  "burn_availability",  "burn_power",
        "audit_violation",
        "srv_crash",     "srv_drain",     "srv_restart",
        "srv_down",      "link_flap",     "nic_freeze",
    };
    return names[static_cast<std::size_t>(n)];
}

Tracer::Tracer(TraceConfig cfg, std::size_t num_writers) : cfg_(cfg)
{
    writers_.reserve(num_writers);
    labels_.reserve(num_writers);
    for (std::size_t i = 0; i < num_writers; ++i) {
        writers_.push_back(std::make_unique<TraceWriter>(
            static_cast<std::uint32_t>(i), cfg_.ringCapacity));
        labels_.push_back("writer " + std::to_string(i));
    }
}

const char *
Tracer::nameOf(StrId id) const
{
    if (id < kStaticNames)
        return nameString(static_cast<Name>(id));
    return interner_.str(id - kStaticNames).c_str();
}

void
Tracer::setEntityLabel(std::size_t writer, std::string label)
{
    labels_[writer] = std::move(label);
}

std::uint64_t
Tracer::totalRecorded() const
{
    std::uint64_t n = 0;
    for (const auto &w : writers_)
        n += w->recorded();
    return n;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t n = 0;
    for (const auto &w : writers_)
        n += w->dropped();
    return n;
}

std::vector<Tracer::MergedRecord>
Tracer::merged() const
{
    std::vector<MergedRecord> out;
    out.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(totalRecorded(), SIZE_MAX)));
    for (std::size_t wi = 0; wi < writers_.size(); ++wi)
        writers_[wi]->forEach([&out, wi](const TraceRecord &r) {
            out.push_back({&r, static_cast<std::uint32_t>(wi)});
        });
    // (ts, writer, seq): a total order — seq is unique per writer — so
    // the merged stream is identical for any thread count/shard layout
    // that produced the same per-writer streams.
    std::sort(out.begin(), out.end(),
              [](const MergedRecord &a, const MergedRecord &b) {
                  if (a.rec->ts != b.rec->ts)
                      return a.rec->ts < b.rec->ts;
                  if (a.writer != b.writer)
                      return a.writer < b.writer;
                  return a.rec->seq < b.rec->seq;
              });
    return out;
}

std::uint64_t
Tracer::digest() const
{
    std::uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ULL;
        }
    };
    for (const MergedRecord &m : merged()) {
        const TraceRecord &r = *m.rec;
        std::uint64_t vbits;
        static_assert(sizeof(vbits) == sizeof(r.value));
        std::memcpy(&vbits, &r.value, sizeof(vbits));
        mix(static_cast<std::uint64_t>(r.ts));
        mix(static_cast<std::uint64_t>(r.dur));
        mix(r.id);
        mix(vbits);
        mix(r.name);
        mix(m.writer);
        mix((static_cast<std::uint64_t>(r.kind) << 8) | r.track);
    }
    return h;
}

namespace {

/** Escape a label for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out.push_back(c);
    }
    return out;
}

} // namespace

bool
Tracer::writePerfettoJson(std::FILE *out, const PhaseProfiler *engine,
                          const std::vector<FlowEvent> *flows) const
{
    bool ok = true;
    const auto put = [out, &ok](const char *fmt, auto... args) {
        if (std::fprintf(out, fmt, args...) < 0)
            ok = false;
    };

    put("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    bool first = true;
    const auto sep = [&first, &put] {
        if (!first)
            put(",\n");
        first = false;
    };

    // Process/thread naming metadata: one "process" per entity, one
    // "thread" per track.
    for (std::size_t wi = 0; wi < writers_.size(); ++wi) {
        if (writers_[wi]->size() == 0)
            continue;
        sep();
        put("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
            "\"args\":{\"name\":\"%s\"}}",
            writers_[wi]->entity(), jsonEscape(labels_[wi]).c_str());
        bool used[kNumTracks] = {};
        writers_[wi]->forEach(
            [&used](const TraceRecord &r) { used[r.track] = true; });
        for (std::size_t t = 0; t < kNumTracks; ++t) {
            if (!used[t])
                continue;
            sep();
            put("{\"ph\":\"M\",\"pid\":%u,\"tid\":%zu,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                writers_[wi]->entity(), t,
                trackName(static_cast<Track>(t)));
        }
    }

    for (const MergedRecord &m : merged()) {
        const TraceRecord &r = *m.rec;
        const std::uint32_t pid = writers_[m.writer]->entity();
        const NumBuf ts = fmtFixed(sim::toMicros(r.ts), 4);
        sep();
        switch (static_cast<TraceKind>(r.kind)) {
        case TraceKind::Span:
            put("{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
                "\"dur\":%s,\"name\":\"%s\",\"args\":{\"id\":%llu}}",
                pid, r.track, ts.c_str(),
                fmtFixed(sim::toMicros(r.dur), 4).c_str(),
                nameOf(r.name), static_cast<unsigned long long>(r.id));
            break;
        case TraceKind::Instant:
            put("{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,\"tid\":%u,"
                "\"ts\":%s,\"name\":\"%s\",\"args\":{\"id\":%llu,"
                "\"value\":%s}}",
                pid, r.track, ts.c_str(), nameOf(r.name),
                static_cast<unsigned long long>(r.id),
                fmtDouble(r.value).c_str());
            break;
        case TraceKind::Counter:
            put("{\"ph\":\"C\",\"pid\":%u,\"tid\":%u,\"ts\":%s,"
                "\"name\":\"%s\",\"args\":{\"value\":%s}}",
                pid, r.track, ts.c_str(), nameOf(r.name),
                fmtDouble(r.value).c_str());
            break;
        }
    }

    // Flow arrows (attribution): 's'/'t'/'f' steps keyed by request id.
    // The viewer draws an arrow client arrival -> serving server ->
    // client delivery for every sampled request.
    if (flows) {
        constexpr const char *ph[3] = {"s", "t", "f"};
        for (const FlowEvent &fe : *flows) {
            if (fe.phase > 2)
                continue;
            sep();
            put("{\"ph\":\"%s\",%s\"cat\":\"request\","
                "\"name\":\"req_flow\",\"id\":%llu,\"pid\":%u,"
                "\"tid\":%u,\"ts\":%s}",
                ph[fe.phase], fe.phase == 2 ? "\"bp\":\"e\"," : "",
                static_cast<unsigned long long>(fe.id), fe.pid, fe.track,
                fmtFixed(sim::toMicros(fe.ts), 4).c_str());
        }
    }

    // Wall-clock pipeline-phase spans as a separate "engine" process
    // (different clock domain; deliberately outside digest()).
    if (engine && !engine->spans().empty()) {
        const auto pid = static_cast<std::uint32_t>(writers_.size());
        sep();
        put("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
            "\"args\":{\"name\":\"engine (wall clock)\"}}",
            pid);
        sep();
        put("{\"ph\":\"M\",\"pid\":%u,\"tid\":%d,"
            "\"name\":\"thread_name\",\"args\":{\"name\":\"pipeline\"}}",
            pid, static_cast<int>(Track::Engine));
        for (const PhaseProfiler::EngineSpan &s : engine->spans()) {
            sep();
            put("{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"ts\":%s,"
                "\"dur\":%s,\"name\":\"%s\",\"args\":{}}",
                pid, static_cast<int>(Track::Engine),
                fmtFixed(s.startUs, 3).c_str(),
                fmtFixed(s.durUs, 3).c_str(),
                PhaseProfiler::phaseName(s.phase));
        }
    }

    put("\n]}\n");
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
Tracer::writePerfettoJson(const std::string &path,
                          const PhaseProfiler *engine,
                          const std::vector<FlowEvent> *flows) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writePerfettoJson(f, engine, flows);
    return std::fclose(f) == 0 && ok;
}

} // namespace apc::obs
