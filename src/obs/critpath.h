/**
 * @file
 * Critical-path extraction and the per-segment blame report.
 *
 * Consumes an `AttributionResult` (obs/attribution.h) and answers the
 * paper-grade question "where does the tail live": requests are binned
 * into end-to-end percentile bands (<=p50, p50-p95, p95-p99, p99-p999,
 * >p999) by exact rank, and each band reports the mean microseconds
 * every segment of the *critical* replica chain contributed — so the
 * per-band segment means still sum to the band's mean end-to-end
 * latency (additivity survives aggregation). For fanout requests the
 * critical path is the slowest leg; the report also counts which
 * segment dominated it.
 *
 * Exported as CSV (band table) and JSON (band table + exact-tick
 * per-request samples, which CI re-checks for additivity).
 */

#ifndef APC_OBS_CRITPATH_H
#define APC_OBS_CRITPATH_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/attribution.h"

namespace apc::obs {

/** Schema version stamped into the blame-report JSON. */
inline constexpr int kBlameSchemaVersion = 1;

/** One percentile band's aggregated blame. */
struct BlameBand
{
    std::uint64_t count = 0;
    double e2eMeanUs = 0.0;
    /** Mean contribution of each segment (critical chain), µs; sums to
     *  e2eMeanUs. */
    double segMeanUs[kNumSegments] = {};

    /** The segment with the largest mean share in this band. */
    Segment dominant() const;
};

/** One exact-tick per-request sample (critical chain). */
struct RequestSample
{
    std::uint64_t id = 0;
    std::uint32_t srv = 0; ///< server serving the critical replica
    std::uint32_t replicas = 0;
    sim::Tick e2eTicks = 0;
    sim::Tick segTicks[kNumSegments] = {};
};

/**
 * The blame report: `FleetReport::attribution`. Plain aggregation of
 * an AttributionResult; deterministic given the same trace.
 */
struct LatencyAttribution
{
    /** <=p50, p50-p95, p95-p99, p99-p999, >p999 — by exact rank. */
    static constexpr std::size_t kNumBands = 5;

    bool enabled = false;
    std::uint64_t requests = 0;       ///< attributed (complete) requests
    std::uint64_t fanoutRequests = 0; ///< of those, fanout (>1 replica)
    std::uint64_t lostExcluded = 0;
    std::uint64_t incomplete = 0;
    std::uint64_t violations = 0;
    std::uint64_t ringDropped = 0;

    BlameBand bands[kNumBands];

    /** Requests whose critical chain was dominated by each segment. */
    std::uint64_t criticalBySegment[kNumSegments] = {};

    /** First N attributed requests in arrival order, exact ticks. */
    std::vector<RequestSample> samples;

    /** Band label ("p50", "p95", "p99", "p999", "p100"). */
    static const char *bandLabel(std::size_t band);

    /** Aggregate @p res into a report, keeping @p sample_limit exact
     *  per-request samples. */
    static LatencyAttribution build(const AttributionResult &res,
                                    std::size_t sample_limit);

    /** Count-weighted mean µs of @p s across the above-p99 bands. */
    double tailMeanUs(Segment s) const;

    /** The segment carrying the largest above-p99 mean share. */
    Segment tailDominant() const;

    /** Band table as CSV. @return false on IO failure. */
    bool writeCsv(std::FILE *out) const;
    bool writeCsv(const std::string &path) const;

    /** Full report (bands + samples) as JSON. @return false on IO
     *  failure. */
    bool writeJson(std::FILE *out) const;
    bool writeJson(const std::string &path) const;
};

} // namespace apc::obs

#endif // APC_OBS_CRITPATH_H
