/**
 * @file
 * Barrier-style thread pool for the fleet epoch loop.
 *
 * The fleet advances N independent per-server event queues in lockstep
 * epochs; within one epoch the servers share no state, so each can run
 * on its own worker. The pool keeps its workers alive across epochs
 * (thousands of epochs per run — spawning threads each time would
 * dominate) and exposes one operation: `parallelFor(n, fn)`, which runs
 * fn(0..n-1) across the workers and returns when all indices finished.
 *
 * Dispatch is chunked, not per-index: [0, n) is cut into a fixed set of
 * contiguous ranges (a few per participant) and whole ranges are
 * claimed with one atomic each. Claiming a range instead of an index
 * keeps the per-epoch synchronization cost independent of the server
 * count — at 10k servers the old per-index fetch_add was 10k atomics
 * per epoch — while still letting a fast thread absorb a straggler's
 * unclaimed ranges. The callable is passed by type-erased reference
 * (no per-call std::function allocation), and batches with a single
 * range run inline on the caller without waking any worker.
 *
 * With `threads == 1` the pool runs everything inline on the caller —
 * the mode unit tests use, and the sensible default on small hosts.
 */

#ifndef APC_FLEET_THREAD_POOL_H
#define APC_FLEET_THREAD_POOL_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/annotations.h"

namespace apc::fleet {

/** Persistent fork-join worker pool. */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 1 means inline execution. */
    explicit ThreadPool(unsigned threads)
    {
        if (threads <= 1)
            return;
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        if (workers_.empty())
            return;
        {
            sim::MutexLock lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(i) for i in [0, n); blocks until every index completed.
     * fn for different indices may run concurrently — indices must not
     * share mutable state. The caller thread works too. The callable is
     * borrowed by reference for the duration of the call (no copy, no
     * allocation).
     */
    template <typename F>
    void
    parallelFor(std::size_t n, F &&fn)
    {
        auto range = [&fn](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                fn(i);
        };
        runRanges(n, RangeFnRef(range));
    }

    /**
     * Range flavor: fn(begin, end) once per claimed contiguous chunk.
     * Useful when per-chunk setup (scratch buffers, locality) matters.
     */
    template <typename F>
    void
    parallelForRanges(std::size_t n, F &&fn)
    {
        runRanges(n, RangeFnRef(fn));
    }

    /** Worker count (0 = inline mode). */
    std::size_t size() const { return workers_.size(); }

  private:
    /** Non-owning type-erased `void(begin, end)` callable reference.
     *  Safe here because runRanges() never outlives its caller. */
    class RangeFnRef
    {
      public:
        template <typename F,
                  typename = std::enable_if_t<
                      !std::is_same_v<std::decay_t<F>, RangeFnRef>>>
        explicit RangeFnRef(F &fn)
            : ctx_(&fn), call_([](void *ctx, std::size_t b, std::size_t e) {
                  (*static_cast<F *>(ctx))(b, e);
              })
        {
        }

        void
        operator()(std::size_t b, std::size_t e) const
        {
            call_(ctx_, b, e);
        }

      private:
        void *ctx_;
        void (*call_)(void *, std::size_t, std::size_t);
    };

    struct Batch
    {
        const RangeFnRef *fn = nullptr;
        std::size_t total = 0;     ///< index count
        std::size_t numChunks = 0; ///< fixed contiguous ranges over total
        std::atomic<std::size_t> nextChunk{0};
        std::atomic<std::size_t> remaining{0}; ///< unfinished chunks
    };

    void
    runRanges(std::size_t n, const RangeFnRef &fn)
    {
        if (n == 0)
            return;
        // Tiny batches skip the rendezvous entirely: waking the pool
        // for one range costs more than the range.
        if (workers_.empty() || n <= 1) {
            fn(0, n);
            return;
        }
        // A few chunks per participant: static boundaries (chunk c is
        // always [c*n/k, (c+1)*n/k)), dynamic claiming for balance.
        const std::size_t parties = workers_.size() + 1;
        const std::size_t chunks = std::min(n, parties * 4);
        // Batch state lives in a shared_ptr: a straggling worker that
        // re-checks for work after the batch finished only touches its
        // own (still-alive) batch, never the next one's counters or a
        // dangling fn.
        auto batch = std::make_shared<Batch>();
        batch->fn = &fn;
        batch->total = n;
        batch->numChunks = chunks;
        batch->remaining.store(chunks, std::memory_order_relaxed);
        {
            sim::MutexLock lk(m_);
            current_ = batch;
            ++generation_;
        }
        cv_.notify_all();
        runBatch(*batch);
        sim::MutexLock lk(m_);
        while (batch->remaining.load(std::memory_order_acquire) != 0)
            doneCv_.wait(lk);
    }

    /** Claim whole chunks until the batch is exhausted. */
    void
    runBatch(Batch &b)
    {
        for (;;) {
            const std::size_t c =
                b.nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= b.numChunks)
                break;
            const std::size_t begin = c * b.total / b.numChunks;
            const std::size_t end = (c + 1) * b.total / b.numChunks;
            if (begin < end)
                (*b.fn)(begin, end);
            if (b.remaining.fetch_sub(1, std::memory_order_acq_rel)
                    == 1) {
                sim::MutexLock lk(m_);
                doneCv_.notify_all();
            }
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                // Open-coded wait loop (not the predicate overload) so
                // the thread-safety analysis sees every guarded read
                // happen while m_ is visibly held.
                sim::MutexLock lk(m_);
                while (!stop_ && generation_ == seen)
                    cv_.wait(lk);
                if (stop_)
                    return;
                seen = generation_;
                batch = current_;
            }
            if (batch)
                runBatch(*batch);
        }
    }

    std::vector<std::thread> workers_;
    sim::Mutex m_;
    sim::CondVar cv_;
    sim::CondVar doneCv_;
    /** Latest published batch; workers snapshot it under m_. */
    std::shared_ptr<Batch> current_ APC_GUARDED_BY(m_);
    /** Bumped per publish; wakes workers whose `seen` lags. */
    std::uint64_t generation_ APC_GUARDED_BY(m_) = 0;
    bool stop_ APC_GUARDED_BY(m_) = false;
};

} // namespace apc::fleet

#endif // APC_FLEET_THREAD_POOL_H
