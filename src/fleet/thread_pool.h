/**
 * @file
 * Barrier-style thread pool for the fleet epoch loop.
 *
 * The fleet advances N independent per-server event queues in lockstep
 * epochs; within one epoch the servers share no state, so each can run
 * on its own worker. The pool keeps its workers alive across epochs
 * (thousands of epochs per run — spawning threads each time would
 * dominate) and exposes one operation: `parallelFor(n, fn)`, which runs
 * fn(0..n-1) across the workers and returns when all indices finished.
 *
 * With `threads == 1` the pool runs everything inline on the caller —
 * the mode unit tests use, and the sensible default on small hosts.
 */

#ifndef APC_FLEET_THREAD_POOL_H
#define APC_FLEET_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apc::fleet {

/** Persistent fork-join worker pool. */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 1 means inline execution. */
    explicit ThreadPool(unsigned threads)
    {
        if (threads <= 1)
            return;
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        if (workers_.empty())
            return;
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(i) for i in [0, n); blocks until every index completed.
     * fn for different indices may run concurrently — indices must not
     * share mutable state. The caller thread works too.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;
        if (workers_.empty()) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        // Batch state lives in a shared_ptr: a straggling worker that
        // re-checks for work after the batch finished only touches its
        // own (still-alive) batch, never the next one's counters or a
        // dangling fn.
        auto batch = std::make_shared<Batch>();
        batch->fn = &fn;
        batch->total = n;
        batch->remaining.store(n, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(m_);
            current_ = batch;
            ++generation_;
        }
        cv_.notify_all();
        runBatch(*batch);
        std::unique_lock<std::mutex> lk(m_);
        doneCv_.wait(lk, [&] {
            return batch->remaining.load(std::memory_order_acquire) == 0;
        });
    }

    /** Worker count (0 = inline mode). */
    std::size_t size() const { return workers_.size(); }

  private:
    struct Batch
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t total = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> remaining{0};
    };

    /** Steal indices until the batch is exhausted. */
    void
    runBatch(Batch &b)
    {
        for (;;) {
            const std::size_t i =
                b.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= b.total)
                break;
            (*b.fn)(i);
            if (b.remaining.fetch_sub(1, std::memory_order_acq_rel)
                    == 1) {
                std::lock_guard<std::mutex> lk(m_);
                doneCv_.notify_all();
            }
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_.wait(lk, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                batch = current_;
            }
            if (batch)
                runBatch(*batch);
        }
    }

    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::shared_ptr<Batch> current_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace apc::fleet

#endif // APC_FLEET_THREAD_POOL_H
