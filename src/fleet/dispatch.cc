#include "fleet/dispatch.h"

#include <algorithm>

namespace apc::fleet {

// ----------------------------------------------------------------- MinIndex

void
MinIndex::assign(const std::vector<std::uint32_t> &values)
{
    n_ = values.size();
    base_ = 1;
    while (base_ < n_)
        base_ <<= 1;
    t_.assign(2 * base_, kInf); // padding leaves stay at infinity
    std::copy(values.begin(), values.end(), t_.begin() + base_);
    for (std::size_t i = base_; i-- > 1;)
        t_[i] = std::min(t_[2 * i], t_[2 * i + 1]);
}

void
MinIndex::set(std::size_t i, std::uint32_t v)
{
    i += base_;
    t_[i] = v;
    for (i >>= 1; i >= 1; i >>= 1) {
        const std::uint32_t m = std::min(t_[2 * i], t_[2 * i + 1]);
        if (t_[i] == m)
            break;
        t_[i] = m;
    }
}

std::size_t
MinIndex::argmin() const
{
    if (n_ == 0)
        return npos;
    std::size_t node = 1;
    // <= prefers the left child on ties: lowest index wins, exactly
    // like a left-to-right scan.
    while (node < base_)
        node = t_[2 * node] <= t_[2 * node + 1] ? 2 * node
                                                : 2 * node + 1;
    return node - base_;
}

std::size_t
MinIndex::firstUnder(std::uint32_t bound) const
{
    if (n_ == 0 || t_[1] >= bound)
        return npos;
    std::size_t node = 1;
    while (node < base_)
        node = t_[2 * node] < bound ? 2 * node : 2 * node + 1;
    return node - base_;
}

// --------------------------------------------------------------- policies

std::size_t
RoundRobinDispatcher::pick()
{
    for (std::size_t tries = 0; tries < n_; ++tries) {
        const std::size_t i = next_;
        next_ = (next_ + 1) % n_;
        if (i < removed_.size() && removed_[i])
            continue;
        if (std::find(excluded_.begin(), excluded_.end(), i)
                == excluded_.end())
            return i;
    }
    return kNone; // everything excluded or removed
}

std::unique_ptr<Dispatcher>
makeDispatcher(DispatchKind kind, std::size_t num_servers,
               std::uint32_t pack_budget)
{
    switch (kind) {
      case DispatchKind::RoundRobin:
        return std::make_unique<RoundRobinDispatcher>(num_servers);
      case DispatchKind::LeastOutstanding:
        return std::make_unique<LeastOutstandingDispatcher>(num_servers);
      case DispatchKind::PowerAwarePacking:
        return std::make_unique<PackingDispatcher>(num_servers,
                                                   pack_budget);
    }
    return std::make_unique<RoundRobinDispatcher>(num_servers);
}

} // namespace apc::fleet
