#include "fleet/dispatch.h"

namespace apc::fleet {
namespace {

bool
isBanned(const std::vector<bool> &banned, std::size_t i)
{
    return !banned.empty() && banned[i];
}

/** Lowest-index server with the smallest outstanding count. */
std::size_t
shortestQueue(const std::vector<std::uint32_t> &outstanding,
              const std::vector<bool> &banned)
{
    std::size_t best = 0;
    std::uint32_t best_q = UINT32_MAX;
    bool found = false;
    for (std::size_t i = 0; i < outstanding.size(); ++i) {
        if (isBanned(banned, i))
            continue;
        if (!found || outstanding[i] < best_q) {
            best = i;
            best_q = outstanding[i];
            found = true;
        }
    }
    return found ? best : 0;
}

} // namespace

std::size_t
RoundRobinDispatcher::pick(const std::vector<std::uint32_t> &outstanding,
                           const std::vector<bool> &banned)
{
    const std::size_t n = outstanding.size();
    for (std::size_t tries = 0; tries < n; ++tries) {
        const std::size_t i = next_;
        next_ = (next_ + 1) % n;
        if (!isBanned(banned, i))
            return i;
    }
    return 0; // everything banned; caller guarantees this can't matter
}

std::size_t
LeastOutstandingDispatcher::pick(
    const std::vector<std::uint32_t> &outstanding,
    const std::vector<bool> &banned)
{
    return shortestQueue(outstanding, banned);
}

std::size_t
PackingDispatcher::pick(const std::vector<std::uint32_t> &outstanding,
                        const std::vector<bool> &banned)
{
    for (std::size_t i = 0; i < outstanding.size(); ++i)
        if (!isBanned(banned, i) && outstanding[i] < budget_)
            return i;
    return shortestQueue(outstanding, banned);
}

std::unique_ptr<Dispatcher>
makeDispatcher(DispatchKind kind, std::size_t /*num_servers*/,
               std::uint32_t pack_budget)
{
    switch (kind) {
      case DispatchKind::RoundRobin:
        return std::make_unique<RoundRobinDispatcher>();
      case DispatchKind::LeastOutstanding:
        return std::make_unique<LeastOutstandingDispatcher>();
      case DispatchKind::PowerAwarePacking:
        return std::make_unique<PackingDispatcher>(pack_budget);
    }
    return std::make_unique<RoundRobinDispatcher>();
}

} // namespace apc::fleet
