/**
 * @file
 * Cluster load-balancing (dispatch) policies.
 *
 * The dispatcher sees the load balancer's view of the fleet: per-server
 * outstanding request counts, refreshed at epoch boundaries
 * (`refresh`) plus the dispatches it made itself since (`onDispatch`)
 * — a realistic, slightly stale view of the backends.
 *
 * Policies are stateful and indexed: the queue-depth policies keep the
 * view in a `MinIndex` (a flat segment tree), so choosing a server is
 * O(log n) instead of the O(n) scan the first fleet engine used — at
 * 10k servers that scan, once per routed replica, was a third of a
 * sweep's wall-clock. Tie-breaking is leftmost, matching the old
 * linear scans bit-for-bit, so dispatch decisions (and therefore every
 * downstream report) are unchanged.
 *
 * Three policies span the energy/latency trade-off the paper's
 * datacenter argument turns on:
 *
 * - **RoundRobin** — classic spreading; every server stays lukewarm, so
 *   none reaches deep package idle (the energy-proportionality worst
 *   case for legacy C-states).
 * - **LeastOutstanding** — join-the-shortest-queue on the stale view;
 *   best tail latency, still spreads load.
 * - **PowerAwarePacking** — fills servers in a fixed order up to a
 *   per-server outstanding budget, so the tail of the fleet drains
 *   completely and can sit in PC6/PC1A; spills to the least-loaded
 *   server when every packed server is at budget.
 *
 * Fanout replicas must land on distinct servers: the fleet `exclude`s
 * each chosen server for the remainder of the request and
 * `clearExclusions` afterwards. Excluded servers are masked inside the
 * index (count parked at infinity), so picks stay O(log n) — the old
 * engine refilled an O(n) banned vector per fanout request.
 */

#ifndef APC_FLEET_DISPATCH_H
#define APC_FLEET_DISPATCH_H

#include <cstdint>
#include <memory>
#include <vector>

namespace apc::fleet {

/** Dispatch policy selector. */
enum class DispatchKind
{
    RoundRobin,
    LeastOutstanding,
    PowerAwarePacking,
};

/** Display name. */
constexpr const char *
dispatchName(DispatchKind k)
{
    switch (k) {
      case DispatchKind::RoundRobin:
        return "round-robin";
      case DispatchKind::LeastOutstanding:
        return "least-outstanding";
      case DispatchKind::PowerAwarePacking:
        return "power-aware-packing";
    }
    return "?";
}

/**
 * Min-indexed view over per-server outstanding counts: a flat segment
 * tree answering leftmost-argmin and leftmost-below-bound queries in
 * O(log n), with O(log n) point updates. Ties resolve to the lowest
 * index, exactly like a left-to-right linear scan.
 */
class MinIndex
{
  public:
    static constexpr std::uint32_t kInf = UINT32_MAX;
    static constexpr std::size_t npos = SIZE_MAX;

    /** Rebuild from @p values (O(n)). */
    void assign(const std::vector<std::uint32_t> &values);

    std::size_t size() const { return n_; }

    std::uint32_t get(std::size_t i) const { return t_[base_ + i]; }

    /** Set leaf @p i to @p v and repair the path to the root. */
    void set(std::size_t i, std::uint32_t v);

    void add(std::size_t i, std::uint32_t d) { set(i, get(i) + d); }

    /** Lowest index holding the minimum value; npos when empty. */
    std::size_t argmin() const;

    /** Lowest index with value < @p bound; npos when none. */
    std::size_t firstUnder(std::uint32_t bound) const;

  private:
    std::size_t n_ = 0;
    std::size_t base_ = 0; ///< first leaf slot; t_[base_+i] = leaf i
    std::vector<std::uint32_t> t_;
};

/**
 * One dispatch decision maker. Implementations must be deterministic:
 * the same call sequence yields the same servers (fleet reproducibility
 * depends on it).
 *
 * Call protocol per epoch: one `refresh` with the epoch-boundary
 * outstanding counts, then per replica `pick` + `onDispatch(picked)`;
 * fanout requests additionally `exclude(picked)` after each replica
 * and `clearExclusions` once the request is fully routed.
 */
class Dispatcher
{
  public:
    /** pick() result when no server is currently pickable. */
    static constexpr std::size_t kNone = SIZE_MAX;

    virtual ~Dispatcher() = default;

    /** Load the epoch-boundary backend view. */
    virtual void refresh(const std::vector<std::uint32_t> &outstanding)
        = 0;

    /**
     * Choose a server for the next request (or fanout replica). Never
     * returns an excluded or removed server; returns kNone when every
     * server is excluded or removed.
     * @return server index in [0, fleet size), or kNone
     */
    virtual std::size_t pick() = 0;

    /** Account one dispatch to @p srv in the in-epoch view. */
    virtual void onDispatch(std::size_t srv) = 0;

    /** Hide @p srv from subsequent picks (replica already there). */
    virtual void exclude(std::size_t srv) = 0;

    /** Drop all exclusions (start of the next request). */
    virtual void clearExclusions() = 0;

    /**
     * Take @p srv out of the pick set entirely (server Down or
     * Draining). Unlike exclude, a removal survives refresh() and
     * clearExclusions() — only reinsert() undoes it. O(log n) for the
     * indexed policies.
     */
    virtual void remove(std::size_t srv) = 0;

    /** Return @p srv to the pick set with @p outstanding live work. */
    virtual void reinsert(std::size_t srv, std::uint32_t outstanding)
        = 0;

    /** Servers currently removed from the pick set. */
    virtual std::size_t removedCount() const = 0;
};

/** Build the policy object for @p kind over @p num_servers servers. */
std::unique_ptr<Dispatcher> makeDispatcher(DispatchKind kind,
                                           std::size_t num_servers,
                                           std::uint32_t pack_budget);

/** Cycles through servers irrespective of load. */
class RoundRobinDispatcher : public Dispatcher
{
  public:
    explicit RoundRobinDispatcher(std::size_t num_servers)
        : n_(num_servers)
    {
    }

    void
    refresh(const std::vector<std::uint32_t> &outstanding) override
    {
        n_ = outstanding.size();
        removed_.resize(n_, 0);
    }

    std::size_t pick() override;
    void onDispatch(std::size_t) override {}
    void exclude(std::size_t srv) override { excluded_.push_back(srv); }
    void clearExclusions() override { excluded_.clear(); }

    void
    remove(std::size_t srv) override
    {
        removed_.resize(std::max(n_, srv + 1), 0);
        if (!removed_[srv]) {
            removed_[srv] = 1;
            ++removedCount_;
        }
    }

    void
    reinsert(std::size_t srv, std::uint32_t) override
    {
        removed_.resize(std::max(n_, srv + 1), 0);
        if (removed_[srv]) {
            removed_[srv] = 0;
            --removedCount_;
        }
    }

    std::size_t removedCount() const override { return removedCount_; }

  private:
    std::size_t n_;
    std::size_t next_ = 0;
    std::vector<std::size_t> excluded_; ///< small: one per replica
    std::vector<std::uint8_t> removed_;
    std::size_t removedCount_ = 0;
};

/** Shared machinery for the MinIndex-backed queue-depth policies. */
class IndexedDispatcher : public Dispatcher
{
  public:
    void
    refresh(const std::vector<std::uint32_t> &outstanding) override
    {
        idx_.assign(outstanding);
        // Removals survive the epoch-boundary view reload: a Down
        // server's (possibly non-zero, still-draining) outstanding
        // count must not bring it back into the pick set.
        removed_.resize(outstanding.size(), 0);
        for (std::size_t i = 0; i < removed_.size(); ++i)
            if (removed_[i])
                idx_.set(i, MinIndex::kInf);
    }

    void
    onDispatch(std::size_t srv) override
    {
        // An excluded server's live count is parked in saved_.
        for (auto &[s, v] : saved_)
            if (s == srv) {
                ++v;
                return;
            }
        idx_.add(srv, 1);
    }

    void
    exclude(std::size_t srv) override
    {
        saved_.emplace_back(srv, idx_.get(srv));
        idx_.set(srv, MinIndex::kInf);
    }

    void
    clearExclusions() override
    {
        for (const auto &[s, v] : saved_)
            if (s >= removed_.size() || !removed_[s])
                idx_.set(s, v);
        saved_.clear();
    }

    void
    remove(std::size_t srv) override
    {
        removed_.resize(std::max(removed_.size(), srv + 1), 0);
        if (removed_[srv])
            return;
        removed_[srv] = 1;
        ++removedCount_;
        // If the server is also transiently excluded, its live count
        // sits in saved_; clearExclusions() skips removed servers, so
        // parking the leaf at infinity here is final either way.
        idx_.set(srv, MinIndex::kInf);
    }

    void
    reinsert(std::size_t srv, std::uint32_t outstanding) override
    {
        removed_.resize(std::max(removed_.size(), srv + 1), 0);
        if (!removed_[srv])
            return;
        removed_[srv] = 0;
        --removedCount_;
        idx_.set(srv, outstanding);
    }

    std::size_t removedCount() const override { return removedCount_; }

  protected:
    /** Leftmost least-loaded server; kNone when everything is masked
     *  (all excluded and/or removed). */
    std::size_t
    shortestQueue() const
    {
        const std::size_t i = idx_.argmin();
        return i != MinIndex::npos && idx_.get(i) != MinIndex::kInf
            ? i
            : kNone;
    }

    MinIndex idx_;
    std::vector<std::pair<std::size_t, std::uint32_t>> saved_;
    std::vector<std::uint8_t> removed_;
    std::size_t removedCount_ = 0;
};

/** Join-the-shortest-queue on the (stale) outstanding counts. */
class LeastOutstandingDispatcher : public IndexedDispatcher
{
  public:
    explicit LeastOutstandingDispatcher(std::size_t num_servers)
    {
        refresh(std::vector<std::uint32_t>(num_servers, 0));
    }

    std::size_t pick() override { return shortestQueue(); }
};

/**
 * Consolidates load: first server (by fixed index order) whose
 * outstanding count is under the per-server budget wins; when all are
 * at budget, falls back to join-the-shortest-queue so overload degrades
 * into spreading instead of unbounded queueing.
 */
class PackingDispatcher : public IndexedDispatcher
{
  public:
    PackingDispatcher(std::size_t num_servers, std::uint32_t budget)
        : budget_(budget)
    {
        refresh(std::vector<std::uint32_t>(num_servers, 0));
    }

    std::size_t
    pick() override
    {
        const std::size_t i = idx_.firstUnder(budget_);
        return i != MinIndex::npos ? i : shortestQueue();
    }

  private:
    std::uint32_t budget_;
};

} // namespace apc::fleet

#endif // APC_FLEET_DISPATCH_H
