/**
 * @file
 * Cluster load-balancing (dispatch) policies.
 *
 * The dispatcher sees the load balancer's view of the fleet: per-server
 * outstanding request counts, refreshed at epoch boundaries plus the
 * dispatches it made itself since (a realistic, slightly stale view).
 *
 * Three policies span the energy/latency trade-off the paper's
 * datacenter argument turns on:
 *
 * - **RoundRobin** — classic spreading; every server stays lukewarm, so
 *   none reaches deep package idle (the energy-proportionality worst
 *   case for legacy C-states).
 * - **LeastOutstanding** — join-the-shortest-queue on the stale view;
 *   best tail latency, still spreads load.
 * - **PowerAwarePacking** — fills servers in a fixed order up to a
 *   per-server outstanding budget, so the tail of the fleet drains
 *   completely and can sit in PC6/PC1A; spills to the least-loaded
 *   server when every packed server is at budget.
 */

#ifndef APC_FLEET_DISPATCH_H
#define APC_FLEET_DISPATCH_H

#include <cstdint>
#include <memory>
#include <vector>

namespace apc::fleet {

/** Dispatch policy selector. */
enum class DispatchKind
{
    RoundRobin,
    LeastOutstanding,
    PowerAwarePacking,
};

/** Display name. */
constexpr const char *
dispatchName(DispatchKind k)
{
    switch (k) {
      case DispatchKind::RoundRobin:
        return "round-robin";
      case DispatchKind::LeastOutstanding:
        return "least-outstanding";
      case DispatchKind::PowerAwarePacking:
        return "power-aware-packing";
    }
    return "?";
}

/**
 * One dispatch decision maker. Implementations must be deterministic:
 * the same sequence of pick() calls with the same views yields the same
 * servers (fleet reproducibility depends on it).
 */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    /**
     * Choose a server for the next request (or fanout replica).
     *
     * @param outstanding per-server in-flight counts (LB view)
     * @param banned      servers to avoid (already holding a replica of
     *                    this request); empty means none. Policies must
     *                    not return a banned index unless every server
     *                    is banned.
     * @return server index in [0, outstanding.size())
     */
    virtual std::size_t pick(const std::vector<std::uint32_t> &outstanding,
                             const std::vector<bool> &banned) = 0;
};

/** Build the policy object for @p kind over @p num_servers servers. */
std::unique_ptr<Dispatcher> makeDispatcher(DispatchKind kind,
                                           std::size_t num_servers,
                                           std::uint32_t pack_budget);

/** Cycles through servers irrespective of load. */
class RoundRobinDispatcher : public Dispatcher
{
  public:
    std::size_t pick(const std::vector<std::uint32_t> &outstanding,
                     const std::vector<bool> &banned) override;

  private:
    std::size_t next_ = 0;
};

/** Join-the-shortest-queue on the (stale) outstanding counts. */
class LeastOutstandingDispatcher : public Dispatcher
{
  public:
    std::size_t pick(const std::vector<std::uint32_t> &outstanding,
                     const std::vector<bool> &banned) override;
};

/**
 * Consolidates load: first server (by fixed index order) whose
 * outstanding count is under the per-server budget wins; when all are
 * at budget, falls back to join-the-shortest-queue so overload degrades
 * into spreading instead of unbounded queueing.
 */
class PackingDispatcher : public Dispatcher
{
  public:
    explicit PackingDispatcher(std::uint32_t budget) : budget_(budget) {}

    std::size_t pick(const std::vector<std::uint32_t> &outstanding,
                     const std::vector<bool> &banned) override;

  private:
    std::uint32_t budget_;
};

} // namespace apc::fleet

#endif // APC_FLEET_DISPATCH_H
