#include "fleet/traffic.h"

#include <algorithm>

namespace apc::fleet {

double
DiurnalProfile::multiplierAt(sim::Tick t) const
{
    if (points.empty())
        return 1.0;
    if (period > 0)
        t %= period;
    if (t <= points.front().at)
        return points.front().multiplier;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (t <= points[i].at) {
            const auto &a = points[i - 1];
            const auto &b = points[i];
            const double f = static_cast<double>(t - a.at) /
                static_cast<double>(b.at - a.at);
            return a.multiplier + f * (b.multiplier - a.multiplier);
        }
    }
    // Past the last point: wrap towards the first point (periodic) or
    // hold the last value.
    if (period > 0 && points.size() >= 2) {
        const auto &a = points.back();
        const DiurnalProfile::Point b{period, points.front().multiplier};
        if (period > a.at) {
            const double f = static_cast<double>(t - a.at) /
                static_cast<double>(period - a.at);
            return a.multiplier + f * (b.multiplier - a.multiplier);
        }
    }
    return points.back().multiplier;
}

DiurnalProfile
DiurnalProfile::dayNight(sim::Tick period, double trough, double peak)
{
    DiurnalProfile p;
    p.period = period;
    p.points = {{0, trough},
                {period / 2, peak},
                {period - 1, trough}};
    return p;
}

TrafficSource::TrafficSource(TrafficConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed)
{
    workload::WorkloadConfig w;
    w.arrivalKind = cfg_.arrivalKind;
    w.qps = cfg_.qps;
    w.burstiness = cfg_.burstiness;
    w.burstMean = cfg_.burstMean;
    base_ = w.makeArrivals();
}

sim::Tick
TrafficSource::meanServiceTicks() const
{
    if (!cfg_.serviceCdf.valid())
        return 0;
    return static_cast<sim::Tick>(cfg_.serviceCdf.mean() * cfg_.cdfUnit);
}

sim::Tick
TrafficSource::nextArrivalAfter(sim::Tick t)
{
    if (cfg_.qps <= 0)
        return sim::kTickNever;
    // Diurnal modulation by local gap stretching: a gap drawn from the
    // base (mean-rate) process is divided by the multiplier in effect
    // at its start. Exact for piecewise-constant profiles, and a close
    // approximation for slowly varying ones (profile scale >> gaps).
    const double m = std::max(1e-6, cfg_.diurnal.multiplierAt(t));
    const auto gap = static_cast<sim::Tick>(
        static_cast<double>(base_->nextGap(rng_)) / m);
    return t + std::max<sim::Tick>(gap, 1);
}

std::vector<TrafficEvent>
TrafficSource::epoch(sim::Tick from, sim::Tick to)
{
    std::vector<TrafficEvent> out;
    epoch(from, to, out);
    return out;
}

void
TrafficSource::epoch(sim::Tick from, sim::Tick to,
                     std::vector<TrafficEvent> &out)
{
    out.clear();
    if (next_ < 0)
        next_ = nextArrivalAfter(from);
    while (next_ < to) {
        if (next_ >= from) {
            TrafficEvent ev;
            ev.at = next_;
            // Clamp to 1 tick: a legitimate near-zero CDF draw must
            // not collide with inject()'s "<=0 = sample locally".
            ev.service = cfg_.serviceCdf.valid()
                ? std::max<sim::Tick>(
                      1, static_cast<sim::Tick>(
                             cfg_.serviceCdf.sample(rng_) * cfg_.cdfUnit))
                : 0;
            ev.fanout = (cfg_.fanout.degree > 1 &&
                         rng_.bernoulli(cfg_.fanout.probability))
                ? cfg_.fanout.degree
                : 1;
            out.push_back(ev);
        }
        next_ = nextArrivalAfter(next_);
    }
}

} // namespace apc::fleet
