/**
 * @file
 * Cluster-level traffic generation.
 *
 * Open-loop arrivals in the TrafficGenerator style: a Poisson (or MMPP)
 * core process whose instantaneous rate is modulated by a diurnal
 * profile, per-request service demand drawn from a CDF table (or the
 * server workload's parametric distribution), and optional fanout
 * requests that replicate to k servers and complete at the slowest
 * replica — the incast pattern that amplifies tail latency.
 */

#ifndef APC_FLEET_TRAFFIC_H
#define APC_FLEET_TRAFFIC_H

#include <memory>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/cdf_table.h"
#include "workload/workload.h"

namespace apc::fleet {

/**
 * Piecewise-linear request-rate multiplier over time (diurnal load
 * trace). An empty profile is flat 1.0. With a period, the profile
 * wraps (simulated days); otherwise it clamps at the last point.
 */
struct DiurnalProfile
{
    struct Point
    {
        sim::Tick at;      ///< profile-local time
        double multiplier; ///< relative to the configured mean qps
    };

    std::vector<Point> points;
    sim::Tick period = 0; ///< 0 = no wrap

    /** Rate multiplier at absolute time @p t (>= 0, interpolated). */
    double multiplierAt(sim::Tick t) const;

    /** Trough→peak→trough day curve with @p period per cycle. */
    static DiurnalProfile dayNight(sim::Tick period, double trough,
                                   double peak);
};

/** Fanout (replicated, incast-style) request shape. */
struct FanoutConfig
{
    /** Fraction of requests that fan out. */
    double probability = 0.0;
    /** Replicas per fanned-out request (>= 2 to mean anything). */
    int degree = 1;
};

/** Cluster traffic description. */
struct TrafficConfig
{
    workload::ArrivalKind arrivalKind = workload::ArrivalKind::Poisson;
    /** Aggregate mean request rate across the fleet. */
    double qps = 100000.0;
    double burstiness = 3.0;              ///< MMPP only
    sim::Tick burstMean = 200 * sim::kUs; ///< MMPP only

    /**
     * Service-demand CDF table (TrafficGenerator idiom). Invalid/empty
     * table: each server samples its own workload service distribution
     * instead. Table values are in @p cdfUnit ticks each.
     */
    workload::CdfTable serviceCdf;
    double cdfUnit = static_cast<double>(sim::kUs);

    FanoutConfig fanout;
    DiurnalProfile diurnal;
};

/** One generated arrival. */
struct TrafficEvent
{
    sim::Tick at;      ///< absolute arrival time
    sim::Tick service; ///< service demand; <=0 = server samples its own
    int fanout;        ///< 1 = plain request, k>1 = k replicas
};

/**
 * Pull-based generator: hands the fleet loop all arrivals in an epoch.
 * Owns its RNG stream so fleet-level traffic is reproducible regardless
 * of per-server event interleaving.
 */
class TrafficSource
{
  public:
    TrafficSource(TrafficConfig cfg, std::uint64_t seed);

    /**
     * All arrivals with time in [from, to), in order. The diurnal
     * multiplier stretches/compresses the base process's gaps around
     * each arrival instant.
     */
    std::vector<TrafficEvent> epoch(sim::Tick from, sim::Tick to);

    /**
     * Same, appended into @p out (cleared first). The fleet loop calls
     * this thousands of times per run with a reused scratch vector, so
     * the per-epoch allocation of the return-by-value flavor matters.
     */
    void epoch(sim::Tick from, sim::Tick to,
               std::vector<TrafficEvent> &out);

    /** Mean service demand in ticks (CDF table or 0 if server-sampled). */
    sim::Tick meanServiceTicks() const;

    const TrafficConfig &config() const { return cfg_; }

  private:
    sim::Tick nextArrivalAfter(sim::Tick t);

    TrafficConfig cfg_;
    sim::Rng rng_;
    std::unique_ptr<workload::ArrivalProcess> base_;
    sim::Tick next_ = -1; ///< next pending arrival (-1 = not generated)
};

} // namespace apc::fleet

#endif // APC_FLEET_TRAFFIC_H
