/**
 * @file
 * Server sharding for the fleet execution engine.
 *
 * A shard is a fixed contiguous range of server indices that one worker
 * owns for the duration of a parallel phase: it schedules the shard's
 * staged injections, advances the shard's servers, and stages their
 * completions/drops into the shard's slot. Because a slot has exactly
 * one writer per phase and slots are cache-line aligned, the staging
 * path is free of both data races and false sharing.
 *
 * Determinism contract: nothing observable may depend on the shard
 * size. Routing happens single-threaded before the parallel phase (so
 * per-server injection order is the routing order regardless of
 * layout), and the drain merges shard outputs back into one stream
 * ordered by (time, server, id) — the same total order a global sort
 * over per-server buffers produced. Reports are therefore bit-identical
 * across any thread count and any shard size.
 */

#ifndef APC_FLEET_SHARD_H
#define APC_FLEET_SHARD_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace apc::fleet {

/** Contiguous partition of [0, numServers) into equal-width shards. */
struct ShardLayout
{
    std::size_t numServers = 0;
    std::size_t shardSize = 1;
    std::size_t numShards = 0;

    /**
     * Build a layout. @p shard_size 0 picks one automatically: about
     * four shards per worker (so a straggling worker's unclaimed shards
     * can be absorbed by others), capped at 64 servers per shard (so a
     * slot's working set stays cache-resident).
     */
    static ShardLayout
    make(std::size_t servers, std::size_t shard_size, unsigned threads)
    {
        ShardLayout l;
        l.numServers = servers;
        if (shard_size == 0) {
            const std::size_t workers = std::max(1u, threads);
            shard_size = (servers + 4 * workers - 1) / (4 * workers);
            shard_size = std::clamp<std::size_t>(shard_size, 1, 64);
        }
        l.shardSize = std::max<std::size_t>(1, shard_size);
        l.numShards = servers ? (servers + l.shardSize - 1) / l.shardSize
                              : 0;
        return l;
    }

    std::size_t begin(std::size_t shard) const
    {
        return shard * shardSize;
    }

    std::size_t
    end(std::size_t shard) const
    {
        return std::min(numServers, (shard + 1) * shardSize);
    }

    std::size_t shardOf(std::size_t srv) const { return srv / shardSize; }
};

/** One staged server-side outcome (completion or RX drop). */
struct StagedEvent
{
    sim::Tick at;      ///< server-clock time of the outcome
    std::uint32_t srv; ///< producing server index
    std::uint64_t id;  ///< fleet request id
};

/** Merge order: time, then server, then id — matches the global sort
 *  the pre-shard engine applied to its per-server buffers. */
inline bool
stagedBefore(const StagedEvent &a, const StagedEvent &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.srv != b.srv)
        return a.srv < b.srv;
    return a.id < b.id;
}

/** One routed replica waiting to be scheduled into its server. */
struct PendingInject
{
    sim::Tick deliverAt; ///< arrival instant at the server
    sim::Tick service;   ///< dispatcher-chosen demand (<=0 = sample)
    std::uint32_t srv;
    std::uint64_t id;
};

/**
 * Per-shard staging state. `injects` is filled by the single-threaded
 * router and consumed by the shard's worker; `completions`/`drops`/
 * `aborts` are appended by the shard's servers during an advance (via
 * their completion/drop/abort hooks) and drained by the single-threaded
 * merge.
 * Cache-line aligned so adjacent shards' slots never share a line
 * (the old per-server vector-of-vectors put buffers mutated by
 * different workers on the same line).
 *
 * The "one writer per phase" rule is modeled as a capability: the
 * staging vectors are APC_GUARDED_BY(writer), so every access site —
 * router, shard worker, server hooks, merge drain — must state its
 * claim with a sim::RoleGuard (a no-op at runtime). Code that touches
 * a slot without claiming the writer role fails the clang
 * -Wthread-safety build; that the claims never overlap across threads
 * is verified by the TSan CI job.
 */
struct alignas(64) ShardSlot
{
    /** Phase-scoped single-writer capability for the staging vectors. */
    sim::Role writer;
    std::vector<PendingInject> injects APC_GUARDED_BY(writer);
    std::vector<StagedEvent> completions APC_GUARDED_BY(writer);
    std::vector<StagedEvent> drops APC_GUARDED_BY(writer);
    /** Requests destroyed by a crash or refused by a non-Up server. */
    std::vector<StagedEvent> aborts APC_GUARDED_BY(writer);
};

} // namespace apc::fleet

#endif // APC_FLEET_SHARD_H
