#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apc::fleet {

namespace {

/** SplitMix64 step: decorrelates per-server RNG streams. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

FleetSim::FleetSim(FleetConfig cfg)
    : cfg_(std::move(cfg)),
      pool_(std::min<unsigned>(cfg_.threads,
                               static_cast<unsigned>(cfg_.numServers)))
{
    assert(cfg_.numServers > 0);
    servers_.reserve(cfg_.numServers);
    completions_.resize(cfg_.numServers);
    for (std::size_t i = 0; i < cfg_.numServers; ++i) {
        server::ServerConfig sc;
        sc.policy = cfg_.policy;
        sc.workload = cfg_.workload;
        sc.networkLatency = cfg_.networkLatency;
        sc.seed = mixSeed(cfg_.seed, i);
        sc.externalArrivals = true;
        servers_.push_back(
            std::make_unique<server::ServerSim>(std::move(sc)));
        auto &buf = completions_[i];
        servers_[i]->onCompletion(
            [&buf](std::uint64_t id, sim::Tick done) {
                buf.emplace_back(id, done);
            });
    }
    traffic_ = std::make_unique<TrafficSource>(
        cfg_.traffic, mixSeed(cfg_.seed, 0xF1EE7));

    std::uint32_t budget = cfg_.packBudget;
    if (budget == 0) {
        // Pack to ~70% of the cores: keeps queueing (and therefore the
        // p99) bounded while still emptying the rest of the fleet.
        const auto cores = servers_[0]->soc().numCores();
        budget = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::floor(0.7 * static_cast<double>(cores))));
    }
    dispatcher_ = makeDispatcher(cfg_.dispatch, cfg_.numServers, budget);
    lbView_.assign(cfg_.numServers, 0);
    banned_.assign(cfg_.numServers, false);
}

FleetSim::~FleetSim() = default;

void
FleetSim::routeReplica(const TrafficEvent &ev, std::size_t srv,
                       std::uint64_t id)
{
    ++lbView_[srv];
    ++replicasDispatched_;
    server::ServerSim *s = servers_[srv].get();
    const sim::Tick service = ev.service;
    s->sim().at(ev.at, [s, id, service] { s->inject(id, service); });
}

void
FleetSim::dispatchEpoch(sim::Tick from, sim::Tick to)
{
    // Fresh backend view at the epoch boundary; in-epoch dispatches are
    // layered on top as they happen.
    for (std::size_t i = 0; i < servers_.size(); ++i)
        lbView_[i] = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(servers_[i]->outstanding(),
                                    UINT32_MAX));

    for (const TrafficEvent &ev : traffic_->epoch(from, to)) {
        const std::uint64_t id = nextId_++;
        Flight fl;
        fl.arrival = ev.at;
        fl.remaining = ev.fanout;
        fl.lastDone = 0;
        fl.measured = measuring_ && ev.at >= measureStart_;
        if (fl.measured)
            ++dispatched_;
        if (ev.fanout <= 1) {
            routeReplica(ev, dispatcher_->pick(lbView_, noBan_), id);
        } else {
            // Fanout replicas land on distinct servers (capped at the
            // fleet size): the slowest replica gates completion.
            std::fill(banned_.begin(), banned_.end(), false);
            const int replicas = std::min<int>(
                ev.fanout, static_cast<int>(servers_.size()));
            fl.remaining = replicas;
            for (int k = 0; k < replicas; ++k) {
                const std::size_t srv = dispatcher_->pick(lbView_,
                                                          banned_);
                banned_[srv] = true;
                routeReplica(ev, srv, id);
            }
        }
        inFlight_.emplace(id, fl);
    }
}

void
FleetSim::advanceServers(sim::Tick to)
{
    pool_.parallelFor(servers_.size(), [this, to](std::size_t i) {
        servers_[i]->advanceTo(to);
    });
}

void
FleetSim::drainCompletions()
{
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        for (const auto &[id, done] : completions_[i]) {
            const auto it = inFlight_.find(id);
            assert(it != inFlight_.end());
            Flight &fl = it->second;
            fl.lastDone = std::max(fl.lastDone, done);
            if (--fl.remaining > 0)
                continue;
            // End-to-end: slowest replica + constant network RTT.
            const double us = sim::toMicros(fl.lastDone - fl.arrival +
                                            cfg_.networkLatency);
            if (fl.measured) {
                ++completed_;
                latencyUs_.record(us);
                latencyHistUs_.record(us);
                if (us > cfg_.sloUs)
                    ++sloViolations_;
            }
            inFlight_.erase(it);
        }
        completions_[i].clear();
    }
}

FleetReport
FleetSim::run()
{
    for (auto &s : servers_)
        s->start();

    const sim::Tick measure_at = cfg_.warmup;
    const sim::Tick end = cfg_.warmup + cfg_.duration;
    sim::Tick t = 0;
    while (t < end) {
        if (!measuring_ && t >= measure_at) {
            for (auto &s : servers_)
                s->beginMeasurement();
            measuring_ = true;
            measureStart_ = t;
        }
        // Epoch boundaries align with the start of measurement so RAPL
        // windows begin at a quiescent, single-threaded instant.
        const sim::Tick limit = measuring_ ? end : measure_at;
        const sim::Tick t1 = std::min(t + cfg_.epoch, limit);
        dispatchEpoch(t, t1);
        advanceServers(t1);
        drainCompletions();
        t = t1;
    }

    // Freeze per-server metrics at the end of the measurement window so
    // every server's power average covers exactly [warmup, end].
    perServerResults_.clear();
    for (auto &s : servers_)
        perServerResults_.push_back(s->collect());

    // Drain: no new arrivals; let in-flight work finish.
    const sim::Tick deadline = end + cfg_.drainLimit;
    while (!inFlight_.empty() && t < deadline) {
        const sim::Tick t1 = std::min(t + cfg_.epoch, deadline);
        advanceServers(t1);
        drainCompletions();
        t = t1;
    }

    return aggregate();
}

FleetReport
FleetSim::aggregate()
{
    FleetReport rep;
    rep.numServers = servers_.size();
    rep.dispatched = dispatched_;
    rep.completed = completed_;
    rep.inFlightAtEnd = inFlight_.size();
    rep.replicasDispatched = replicasDispatched_;
    for (const auto &s : servers_) {
        rep.serversAccepted += s->accepted();
        rep.serversCompleted += s->completed();
        rep.serversOutstanding += s->outstanding();
    }

    const double window_s = sim::toSeconds(cfg_.duration);
    rep.achievedQps = window_s > 0
        ? static_cast<double>(completed_) / window_s : 0.0;

    rep.perServer = perServerResults_;
    const double n = static_cast<double>(servers_.size());
    for (const auto &r : perServerResults_) {
        rep.pkgPowerW += r.pkgPowerW;
        rep.dramPowerW += r.dramPowerW;
        rep.avgUtilization += r.utilization / n;
        for (std::size_t s = 0; s < soc::kNumPkgStates; ++s)
            rep.pkgResidency[s] += r.pkgResidency[s] / n;
        rep.replicaLatencyUs.merge(r.latencyHistUs);
        rep.replicaLatencySummary.merge(r.latencySummary);
        rep.idlePeriodsUs.merge(r.idlePeriodsUs);
    }
    rep.joulesPerRequest = completed_ > 0
        ? rep.totalPowerW() * window_s / static_cast<double>(completed_)
        : 0.0;

    rep.avgLatencyUs = latencyUs_.mean();
    rep.maxLatencyUs = latencyUs_.max();
    rep.p50LatencyUs = latencyHistUs_.p50();
    rep.p95LatencyUs = latencyHistUs_.p95();
    rep.p99LatencyUs = latencyHistUs_.p99();
    rep.p999LatencyUs = latencyHistUs_.quantile(0.999);
    rep.latencyUs = latencyHistUs_;

    rep.sloUs = cfg_.sloUs;
    rep.sloViolations = sloViolations_;
    rep.sloViolationFraction = completed_ > 0
        ? static_cast<double>(sloViolations_) /
            static_cast<double>(completed_)
        : 0.0;
    return rep;
}

} // namespace apc::fleet
