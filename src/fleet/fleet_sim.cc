#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "stats/reduce.h"

namespace apc::fleet {

namespace {

/** SplitMix64 step: decorrelates per-server RNG streams. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** Leaf width of the report's histogram reduction. A constant (never
 *  the thread or shard count) so the reduction shape — and with it
 *  every merged statistic — is identical for any parallelism. */
constexpr std::size_t kReduceLeaf = 64;

} // namespace

std::string
FleetReport::csvHeader()
{
    return "num_servers,dispatched,completed,lost,retransmits,"
           "achieved_qps,pkg_w,dram_w,nic_w,fabric_w,total_w,"
           "j_per_req,avg_us,p50_us,p95_us,p99_us,p999_us,max_us,"
           "slo_us,slo_violation_frac,utilization,pc1a_residency,"
           "nic_irqs,nic_rx_drops,pkts_per_irq_avg,"
           "rack_budget_w,budget_util,cap_violation_rate,"
           "cap_throttle_res,cap_perf_loss,emergency_epochs,"
           "lost_crash,failovers";
}

std::string
FleetReport::csvRow() const
{
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%zu,%llu,%llu,%llu,%llu,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,"
        "%.6f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.1f,%.6f,%.4f,%.4f,"
        "%llu,%llu,%.2f,%.2f,%.4f,%.6f,%.4f,%.4f,%llu,%llu,%llu",
        numServers, static_cast<unsigned long long>(dispatched),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(lostRequests),
        static_cast<unsigned long long>(netRetransmits), achievedQps,
        pkgPowerW, dramPowerW, nicPowerW, fabricPowerW, totalPowerW(),
        joulesPerRequest, avgLatencyUs, p50LatencyUs, p95LatencyUs,
        p99LatencyUs, p999LatencyUs, maxLatencyUs, sloUs,
        sloViolationFraction, avgUtilization, pc1aResidency(),
        static_cast<unsigned long long>(nicInterrupts),
        static_cast<unsigned long long>(nicRxDrops),
        nicPktsPerIrq.mean(), rackBudgetW, budgetUtilization,
        capViolationRate(), capThrottleResidency, capPerfLoss,
        static_cast<unsigned long long>(emergencyEpochs),
        static_cast<unsigned long long>(lostToCrash),
        static_cast<unsigned long long>(failovers));
    return buf;
}

void
FleetReport::writeCsv(std::FILE *out, bool with_header) const
{
    if (with_header)
        std::fprintf(out, "%s\n", csvHeader().c_str());
    std::fprintf(out, "%s\n", csvRow().c_str());
}

FleetSim::FleetSim(FleetConfig cfg)
    : cfg_(std::move(cfg)),
      layout_(ShardLayout::make(
          cfg_.numServers, cfg_.shardSize,
          std::min<unsigned>(cfg_.threads,
                             static_cast<unsigned>(cfg_.numServers)))),
      pool_(std::min<unsigned>(cfg_.threads,
                               static_cast<unsigned>(cfg_.numServers)))
{
    assert(cfg_.numServers > 0);
    // Attribution rides on the trace layer: the segment spans land in
    // the same per-entity rings, so enabling it forces tracing on.
    attr_ = cfg_.attribution.enabled;
    if (attr_)
        cfg_.trace.enabled = true;
    servers_.reserve(cfg_.numServers);
    // Slots are sized once and never reallocated: the server hooks
    // installed below keep raw pointers into this vector.
    slots_ = std::vector<ShardSlot>(layout_.numShards);
    for (std::size_t i = 0; i < cfg_.numServers; ++i) {
        server::ServerConfig sc;
        sc.policy = cfg_.policy;
        sc.workload = cfg_.workload;
        sc.networkLatency =
            cfg_.fabric.enabled ? 0 : cfg_.networkLatency;
        sc.seed = mixSeed(cfg_.seed, i);
        sc.externalArrivals = true;
        sc.nic = cfg_.nic;
        sc.cap = cfg_.cap;
        if (cfg_.budget.enabled)
            sc.cap.enabled = true; // the allocator needs enforcement
        servers_.push_back(
            std::make_unique<server::ServerSim>(std::move(sc)));
        ShardSlot *slot = &slots_[layout_.shardOf(i)];
        const auto srv = static_cast<std::uint32_t>(i);
        // The hooks fire inside advanceTo(), i.e. on the worker that
        // owns this slot for the phase — claim the writer role.
        servers_[i]->onCompletion(
            [slot, srv](std::uint64_t id, sim::Tick done) {
                sim::RoleGuard own(slot->writer);
                slot->completions.push_back({done, srv, id});
            });
        if (cfg_.nic.enabled)
            servers_[i]->onRxDrop(
                [slot, srv](std::uint64_t id, sim::Tick at) {
                    sim::RoleGuard own(slot->writer);
                    slot->drops.push_back({at, srv, id});
                });
        if (cfg_.faults.enabled)
            servers_[i]->onAbort(
                [slot, srv](std::uint64_t id, sim::Tick at) {
                    sim::RoleGuard own(slot->writer);
                    slot->aborts.push_back({at, srv, id});
                });
    }
    if (cfg_.faults.enabled)
        faultPlan_ = std::make_unique<fault::FaultPlan>(
            cfg_.faults, cfg_.seed, cfg_.numServers);
    // Tracing attaches before the allocator's initial allocation so
    // the first setPowerLimit lands in the trace too.
    if (cfg_.trace.enabled) {
        tracer_ =
            std::make_unique<obs::Tracer>(cfg_.trace, cfg_.numServers + 1);
        fleetTrace_ = tracer_->writer(0);
        tracer_->setEntityLabel(0, "fleet");
        for (std::size_t i = 0; i < servers_.size(); ++i) {
            tracer_->setEntityLabel(i + 1,
                                    "server " + std::to_string(i));
            servers_[i]->enableTracing(tracer_->writer(i + 1), attr_);
        }
    }
    if (cfg_.metrics.enabled && cfg_.metrics.interval <= 0) {
        // due() is `now >= next_`: a non-positive interval would sample
        // every epoch forever. Reject at setup rather than silently
        // flooding the series store.
        std::fprintf(stderr, "fleet: metrics.interval must be positive; "
                             "disabling metrics sampling\n");
        cfg_.metrics.enabled = false;
    }
    if (cfg_.metrics.enabled) {
        metrics_ = std::make_unique<obs::MetricsSampler>(cfg_.metrics);
        series_.fleetPowerW = metrics_->addSeries("fleet.pkg_power_w");
        series_.outstanding = metrics_->addSeries("fleet.outstanding");
        series_.dispatched = metrics_->addSeries("fleet.dispatched");
        series_.completed = metrics_->addSeries("fleet.completed");
        series_.retransmits = metrics_->addSeries("fleet.retransmits");
        series_.lost = metrics_->addSeries("fleet.lost");
        if (cfg_.fabric.enabled) {
            series_.fabricEnqueued =
                metrics_->addSeries("fabric.enqueued");
            series_.fabricDelivered =
                metrics_->addSeries("fabric.delivered");
            series_.fabricDropped =
                metrics_->addSeries("fabric.dropped");
        }
        if (cfg_.budget.enabled)
            series_.rackBudgetW = metrics_->addSeries("rack.budget_w");
        if (cfg_.metrics.perServer) {
            const bool capped = cfg_.cap.enabled || cfg_.budget.enabled;
            for (std::size_t i = 0; i < servers_.size(); ++i) {
                const int e = static_cast<int>(i);
                series_.srvPowerW.push_back(
                    metrics_->addSeries("server.power_w", e));
                series_.srvOutstanding.push_back(
                    metrics_->addSeries("server.outstanding", e));
                if (capped)
                    series_.srvCapLimitW.push_back(
                        metrics_->addSeries("server.cap_limit_w", e));
            }
        }
    }
    // Audit-as-sanitizer: the environment can force the invariant
    // auditor on (failFast) for every fleet run — CI runs the whole
    // test suite this way. Health only reads simulation state, so
    // forcing it on cannot change any result.
    if (const char *env = std::getenv("APC_AUDIT_FAILFAST");
        env && *env && *env != '0') {
        cfg_.health.enabled = true;
        cfg_.health.audit.enabled = true;
        cfg_.health.audit.failFast = true;
    }
    if (cfg_.health.enabled) {
        health_ =
            std::make_unique<obs::HealthMonitor>(cfg_.health, cfg_.sloUs);
        if (fleetTrace_)
            health_->setTrace(fleetTrace_);
    }
    traffic_ = std::make_unique<TrafficSource>(
        cfg_.traffic, mixSeed(cfg_.seed, 0xF1EE7));
    if (cfg_.fabric.enabled)
        fabric_ = std::make_unique<net::Fabric>(cfg_.fabric,
                                                cfg_.numServers);
    if (cfg_.budget.enabled) {
        allocator_ = std::make_unique<cap::BudgetAllocator>(
            cfg_.budget, cfg_.numServers);
        allocator_->setTrace(fleetTrace_);
        // Initial allocation with zero demand: floors plus an even
        // (weighted) split of the surplus.
        const auto initial = allocator_->allocate(
            0, std::vector<double>(cfg_.numServers, 0.0));
        for (std::size_t i = 0; i < servers_.size(); ++i)
            servers_[i]->setPowerLimit(initial[i]);
        nextAllocAt_ = cfg_.budgetEpoch;
    }

    std::uint32_t budget = cfg_.packBudget;
    if (budget == 0) {
        // Pack to ~70% of the cores: keeps queueing (and therefore the
        // p99) bounded while still emptying the rest of the fleet.
        const auto cores = servers_[0]->soc().numCores();
        budget = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::floor(0.7 * static_cast<double>(cores))));
    }
    dispatcher_ = makeDispatcher(cfg_.dispatch, cfg_.numServers, budget);
    lbView_.assign(cfg_.numServers, 0);
    inFlight_.reserve(1024);
}

FleetSim::~FleetSim() = default;

bool
FleetSim::transit(sim::Tick at, std::size_t srv, sim::Tick &deliver,
                  sim::Tick &rto_wait)
{
    deliver = at;
    rto_wait = 0;
    if (fabric_) {
        const auto tr = fabric_->toServer(at, srv);
        netRetransmits_ += static_cast<std::uint64_t>(tr.retransmits);
        if (tr.lost)
            return false;
        deliver = tr.deliverAt;
        // The fabric accumulates the exact (exponentially backed-off)
        // RTO share of the transit; the remainder is wire time.
        rto_wait = tr.rtoWait;
    }
    return true;
}

void
FleetSim::traceSendSegments(sim::Tick at, sim::Tick deliver,
                            sim::Tick rto_wait, std::size_t srv,
                            std::uint64_t id, bool response)
{
    if (!attr_)
        return;
    const auto sv = static_cast<double>(srv);
    if (rto_wait > 0)
        fleetTrace_->span(at, rto_wait, obs::Name::SegRto,
                          obs::Track::Segments, id, sv);
    const sim::Tick wire = deliver - at - rto_wait;
    if (wire > 0)
        fleetTrace_->span(at + rto_wait, wire,
                          response ? obs::Name::SegXmitResp
                                   : obs::Name::SegXmitReq,
                          obs::Track::Segments, id, sv);
}

void
FleetSim::scheduleInject(std::size_t srv, sim::Tick deliver,
                         std::uint64_t id, sim::Tick service)
{
    server::ServerSim *s = servers_[srv].get();
    s->sim().at(deliver, [s, id, service] { s->inject(id, service); });
}

bool
FleetSim::routeReplica(sim::Tick at, sim::Tick service, std::size_t srv,
                       std::uint64_t id)
{
    ++replicasDispatched_;
    sim::Tick deliver, rto_wait;
    if (!transit(at, srv, deliver, rto_wait))
        return false;
    if (attr_) {
        if (fabric_) {
            traceSendSegments(at, deliver, rto_wait, srv, id, false);
        } else if (cfg_.networkLatency > 1) {
            // Teleport mode: the constant RTT stands in for both
            // transits. Split it so request + response halves sum to
            // exactly networkLatency (integer additivity).
            fleetTrace_->span(at, cfg_.networkLatency / 2,
                              obs::Name::SegXmitReq,
                              obs::Track::Segments, id,
                              static_cast<double>(srv));
        }
    }
    {
        // Route stage runs single-threaded before the parallel phase.
        ShardSlot &slot = slots_[layout_.shardOf(srv)];
        sim::RoleGuard own(slot.writer);
        slot.injects.push_back(
            {deliver, service, static_cast<std::uint32_t>(srv), id});
    }
    return true;
}

void
FleetSim::allocateBudgets(sim::Tick now)
{
    // Demand = each server's sliding-window draw, read single-threaded
    // at the epoch boundary (every server is quiescent at `now`).
    std::vector<double> demand(servers_.size(), 0.0);
    for (std::size_t i = 0; i < servers_.size(); ++i)
        demand[i] = servers_[i]->capPowerW();
    const auto alloc = allocator_->allocate(now, demand);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        const double cur = servers_[i]->powerLimitW();
        // Deadband damps allocation chatter so the per-server
        // controllers can settle; real cuts (breaker trips, big demand
        // shifts) exceed it by construction.
        if (std::abs(alloc[i] - cur) > cfg_.budgetDeadbandW)
            servers_[i]->setPowerLimit(alloc[i]);
    }
}

void
FleetSim::applyFaults(sim::Tick from, sim::Tick to)
{
    if (!faultPlan_)
        return;
    // Recovered servers rejoin the pick set at the first route stage
    // after their restart completed (the lifecycle flipped Up inside
    // the server's own advance). Entries are appended in plan order,
    // so the reinsertion order is layout-invariant.
    if (!pendingUp_.empty()) {
        std::size_t kept = 0;
        for (const auto &pu : pendingUp_) {
            if (pu.first > from) {
                pendingUp_[kept++] = pu;
                continue;
            }
            const std::uint32_t srv = pu.second;
            // A newer fault may have taken the server down again
            // before this reinsertion came due; its own pending entry
            // revives it later.
            if (servers_[srv]->lifecycle() != server::Lifecycle::Up)
                continue;
            dispatcher_->reinsert(
                srv, static_cast<std::uint32_t>(std::min<std::uint64_t>(
                         servers_[srv]->outstanding(), UINT32_MAX)));
            if (allocator_)
                allocator_->setActive(srv, true);
        }
        pendingUp_.resize(kept);
    }
    faultPlan_->epoch(from, to, faultScratch_);
    for (const fault::FaultEvent &ev : faultScratch_) {
        switch (ev.kind) {
        case fault::FaultKind::ServerCrash:
        case fault::FaultKind::ServerDrain: {
            const bool crash = ev.kind == fault::FaultKind::ServerCrash;
            const std::uint32_t srv = ev.entity;
            server::ServerSim &s = *servers_[srv];
            const sim::Tick up_at = ev.at + ev.duration;
            const sim::Tick ready_at = up_at + cfg_.faults.restartCost;
            if (crash)
                s.scheduleCrash(ev.at);
            else
                s.scheduleDrain(ev.at);
            s.scheduleRestart(up_at, ready_at);
            // Removal takes effect for the whole epoch's dispatches:
            // faults apply before routing, at epoch granularity.
            dispatcher_->remove(srv);
            if (allocator_)
                allocator_->setActive(srv, false);
            pendingUp_.push_back({ready_at, srv});
            if (fleetTrace_) {
                fleetTrace_->instant(ev.at,
                                     crash ? obs::Name::SrvCrash
                                           : obs::Name::SrvDrain,
                                     obs::Track::Health, srv);
                fleetTrace_->span(ev.at, ready_at - ev.at,
                                  obs::Name::SrvDown, obs::Track::Health,
                                  srv);
                fleetTrace_->instant(ready_at, obs::Name::SrvRestart,
                                     obs::Track::Health, srv);
            }
            break;
        }
        case fault::FaultKind::LinkFlap:
            if (fabric_) {
                if (ev.entity == fault::kCoreLinkEntity)
                    fabric_->flapCore(ev.at, ev.at + ev.duration);
                else
                    fabric_->flapServer(ev.entity, ev.at,
                                        ev.at + ev.duration);
            }
            if (fleetTrace_)
                fleetTrace_->span(ev.at, ev.duration,
                                  obs::Name::LinkFlap,
                                  obs::Track::Health, ev.entity);
            break;
        case fault::FaultKind::NicFreeze:
            servers_[ev.entity]->freezeNic(ev.at, ev.at + ev.duration);
            if (fleetTrace_)
                fleetTrace_->span(ev.at, ev.duration,
                                  obs::Name::NicFreeze,
                                  obs::Track::Health, ev.entity);
            break;
        case fault::FaultKind::kCount:
            break;
        }
    }
}

void
FleetSim::dispatchEpoch(sim::Tick from, sim::Tick to)
{
    applyFaults(from, to);
    // Fresh backend view at the epoch boundary; in-epoch dispatches are
    // layered on top (onDispatch) as they happen.
    for (std::size_t i = 0; i < servers_.size(); ++i)
        lbView_[i] = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(servers_[i]->outstanding(),
                                    UINT32_MAX));
    dispatcher_->refresh(lbView_);

    traffic_->epoch(from, to, trafficScratch_);
    for (const TrafficEvent &ev : trafficScratch_) {
        const std::uint64_t id = nextId_++;
        Flight fl;
        fl.arrival = ev.at;
        fl.service = ev.service;
        fl.remaining = 0;
        fl.lost = 0;
        fl.lastDone = 0;
        fl.measured = measuring_ && ev.at >= measureStart_;
        fl.fanout = ev.fanout > 1;
        if (fl.measured)
            ++dispatched_;
        const auto it = inFlight_.emplace(id, std::move(fl)).first;
        Flight &f = it->second;
        if (!f.fanout) {
            const std::size_t srv = dispatcher_->pick();
            if (srv == Dispatcher::kNone) {
                // Every server is out of the pick set (mass outage):
                // fail the zeroth attempt — recovery backs off and
                // retries, otherwise the request is lost to the fault.
                // failAttempt may erase the flight; don't touch `it`.
                failAttempt(it, ev.at);
                continue;
            }
            dispatcher_->onDispatch(srv);
            f.attempts = 1;
            f.curSrv = static_cast<std::uint32_t>(srv);
            f.attemptAt = ev.at;
            if (routeReplica(ev.at, ev.service, srv, id)) {
                ++f.remaining;
                armTimeout(it, ev.at);
            } else if (cfg_.recovery.enabled) {
                failAttempt(it, ev.at);
            } else {
                ++f.lost;
                finishFlight(it); // the only replica died in transit
            }
            continue;
        }
        {
            // Fanout replicas land on distinct servers (capped at the
            // fleet size): the slowest replica gates completion, and
            // all shards must answer — a destroyed replica is a lost
            // request, not a failover (the shard's data is gone).
            const int replicas = std::min<int>(
                ev.fanout, static_cast<int>(servers_.size()));
            for (int k = 0; k < replicas; ++k) {
                const std::size_t srv = dispatcher_->pick();
                if (srv == Dispatcher::kNone) {
                    ++f.lost;
                    f.crashLoss = true;
                    continue;
                }
                dispatcher_->onDispatch(srv);
                dispatcher_->exclude(srv);
                if (routeReplica(ev.at, ev.service, srv, id))
                    ++f.remaining;
                else
                    ++f.lost;
            }
            dispatcher_->clearExclusions();
        }
        if (f.remaining == 0)
            finishFlight(it); // nothing routed (fabric loss / outage)
    }
}

void
FleetSim::advanceShards(sim::Tick to)
{
    const auto sc = profiler_.scope(obs::PhaseProfiler::Phase::Advance);
    const bool prof = profiler_.enabled();
    pool_.parallelForRanges(
        layout_.numShards,
        [this, to, prof](std::size_t b, std::size_t e) {
            for (std::size_t sh = b; sh < e; ++sh) {
                // Per-shard wall-clock feeds the imbalance metric; one
                // writer per shard index, so no synchronization.
                const auto t0 = prof
                    ? obs::PhaseProfiler::Clock::now()
                    : obs::PhaseProfiler::Clock::time_point{};
                ShardSlot &slot = slots_[sh];
                // This worker owns the shard for the whole phase.
                sim::RoleGuard own(slot.writer);
                // Scheduling the staged injections here — instead of
                // at route time — pulls each server's event queue into
                // cache exactly once per epoch, right before this same
                // worker advances it.
                for (const PendingInject &pi : slot.injects)
                    scheduleInject(pi.srv, pi.deliverAt, pi.id,
                                   pi.service);
                slot.injects.clear();
                const std::size_t end = layout_.end(sh);
                for (std::size_t i = layout_.begin(sh); i < end; ++i)
                    servers_[i]->advanceTo(to);
                // Pre-sort the shard's outputs so the single-threaded
                // merge only pays O(m log shards), not a global sort.
                std::sort(slot.completions.begin(),
                          slot.completions.end(), stagedBefore);
                std::sort(slot.drops.begin(), slot.drops.end(),
                          stagedBefore);
                std::sort(slot.aborts.begin(), slot.aborts.end(),
                          stagedBefore);
                if (prof)
                    profiler_.addShardTime(
                        sh,
                        std::chrono::duration<double>(
                            obs::PhaseProfiler::Clock::now() - t0)
                            .count());
            }
        });
}

template <typename Apply>
void
FleetSim::mergeStaged(std::vector<StagedEvent> ShardSlot::*stream,
                      Apply &&apply)
{
    // K-way merge of the sorted shard streams into one time-ordered
    // stream: the shared fabric response links (and the flight map)
    // see events in a total order independent of the shard layout —
    // the same (time, server, id) order the pre-shard engine got from
    // globally sorting per-server buffers. The cursor heap is member
    // scratch: a quiet drain (e.g. drops with NIC off, every epoch)
    // costs no allocation at all.
    const auto later = [](const MergeCursor &a, const MergeCursor &b) {
        return stagedBefore((*b.first)[b.second], (*a.first)[a.second]);
    };

    std::vector<MergeCursor> &heap = mergeScratch_;
    heap.clear();
    for (ShardSlot &slot : slots_) {
        // Single-threaded merge: the workers have quiesced, so the
        // drain claims each slot's writer role in turn.
        sim::RoleGuard own(slot.writer);
        if (!(slot.*stream).empty())
            heap.push_back({&(slot.*stream), 0});
    }
    if (heap.empty())
        return;

    if (heap.size() == 1) {
        for (const StagedEvent &ev : *heap[0].first)
            apply(ev);
        heap[0].first->clear();
        return;
    }

    std::make_heap(heap.begin(), heap.end(), later);
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), later);
        MergeCursor &c = heap.back();
        apply((*c.first)[c.second]);
        if (++c.second < c.first->size())
            std::push_heap(heap.begin(), heap.end(), later);
        else {
            c.first->clear();
            heap.pop_back();
        }
    }
}

void
FleetSim::resolveFlight(FlightMap::iterator it, sim::Tick done,
                        bool lost)
{
    Flight &fl = it->second;
    assert(!fl.resolved);
    fl.resolved = true;
    if (fleetTrace_) {
        // Client-observed request lifecycle (warmup included): span to
        // the winning response, or a loss marker.
        if (lost)
            fleetTrace_->instant(fl.arrival, obs::Name::Lost,
                                 obs::Track::Requests, it->first);
        else
            fleetTrace_->span(fl.arrival,
                              done - fl.arrival +
                                  (fabric_ ? 0 : cfg_.networkLatency),
                              obs::Name::Request, obs::Track::Requests,
                              it->first);
    }
    if (fl.measured) {
        if (lost) {
            // A request that never answers the client counts lost and
            // against the SLO; fault-caused losses (crash aborts,
            // refusals, outage dispatch failures, failover exhaustion)
            // are split out so a crash can't hide in drop accounting.
            if (fl.crashLoss)
                ++lostToCrash_;
            else
                ++lostRequests_;
            ++sloViolations_;
            if (health_)
                health_->slo().recordLost();
        } else {
            // End-to-end: winning response at the client. Without a
            // fabric the constant network RTT stands in.
            const sim::Tick extra = fabric_ ? 0 : cfg_.networkLatency;
            const double us = sim::toMicros(done - fl.arrival + extra);
            ++completed_;
            latencyUs_.record(us);
            latencyHistUs_.record(us);
            if (us > cfg_.sloUs)
                ++sloViolations_;
            if (health_)
                health_->slo().recordLatency(us);
        }
    }
}

void
FleetSim::maybeEraseFlight(FlightMap::iterator it)
{
    const Flight &fl = it->second;
    // The shell persists until every routed replica delivered or
    // aborted and no retry is scheduled: late responses and crash
    // aborts from superseded attempts must find their flight. (Stale
    // timeout entries look the flight up by id and tolerate absence.)
    if (!fl.resolved || fl.remaining > 0 || fl.retryPending)
        return;
    ++flightsFinished_;
    inFlight_.erase(it);
}

void
FleetSim::finishFlight(FlightMap::iterator it)
{
    Flight &fl = it->second;
    if (!fl.resolved && fl.remaining <= 0 && !fl.retryPending &&
        fl.timeoutsArmed == 0)
        resolveFlight(it, fl.lastDone, fl.lost > 0);
    maybeEraseFlight(it);
}

void
FleetSim::armTimeout(FlightMap::iterator it, sim::Tick at)
{
    Flight &fl = it->second;
    if (!cfg_.recovery.enabled || fl.fanout)
        return;
    timeoutQueue_.push_back(
        {at + cfg_.recovery.requestTimeout, it->first, fl.attempts - 1});
    ++fl.timeoutsArmed;
}

void
FleetSim::failAttempt(FlightMap::iterator it, sim::Tick at)
{
    Flight &fl = it->second;
    if (fl.resolved) {
        maybeEraseFlight(it);
        return;
    }
    if (fl.attempts > 0 &&
        std::find(fl.failedSrv.begin(), fl.failedSrv.end(), fl.curSrv) ==
            fl.failedSrv.end())
        fl.failedSrv.push_back(fl.curSrv);
    const bool rec = cfg_.recovery.enabled && !fl.fanout;
    if (!rec || fl.attempts >= cfg_.recovery.maxAttempts) {
        // Out of attempts (or no recovery): the client gives up now.
        // Anything still physically in flight drains into the shell.
        ++fl.lost;
        fl.crashLoss = true;
        resolveFlight(it, at, true);
        maybeEraseFlight(it);
        return;
    }
    // Record the abandoned window for the blame report; the whole gap
    // history is re-emitted to each failover target at re-dispatch.
    if (attr_ && fl.attempts > 0 && at > fl.attemptAt)
        fl.gaps.push_back({fl.attemptAt, at - fl.attemptAt, false});
    fl.lastFailAt = at;
    fl.retryPending = true;
    retryQueue_.push_back(
        {at + fault::backoffDelay(cfg_.recovery, cfg_.seed, it->first,
                                  std::max(fl.attempts - 1, 0)),
         it->first});
}

void
FleetSim::drainAborts()
{
    mergeStaged(&ShardSlot::aborts, [this](const StagedEvent &ev) {
        const auto it = inFlight_.find(ev.id);
        assert(it != inFlight_.end());
        Flight &fl = it->second;
        --fl.remaining;
        const bool rec = cfg_.recovery.enabled && !fl.fanout;
        if (!rec) {
            // No failover path: a destroyed replica is a lost request
            // (for fanout, that shard's answer is gone for good).
            if (!fl.resolved) {
                ++fl.lost;
                fl.crashLoss = true;
            }
            finishFlight(it);
            return;
        }
        if (!fl.resolved && !fl.retryPending && ev.srv == fl.curSrv) {
            // The current attempt died on the server: fail over now
            // instead of waiting out the timeout.
            failAttempt(it, ev.at);
            return;
        }
        // A superseded attempt's death — the flight already moved on.
        finishFlight(it);
    });
}

void
FleetSim::processRecovery(sim::Tick t1)
{
    if (timeoutQueue_.empty() && retryQueue_.empty())
        return;
    // Fixpoint over this epoch: a fired timeout can schedule a retry
    // due before t1, and a re-dispatched attempt can arm a timeout
    // that also expires before t1. Attempts are capped, so each round
    // strictly consumes attempt budget and the loop terminates.
    bool progress = true;
    std::vector<PendingTimeout> dueT;
    std::vector<std::pair<sim::Tick, std::uint64_t>> dueR;
    while (progress) {
        progress = false;
        dueT.clear();
        std::size_t kept = 0;
        for (const PendingTimeout &pt : timeoutQueue_) {
            if (pt.deadline <= t1)
                dueT.push_back(pt);
            else
                timeoutQueue_[kept++] = pt;
        }
        timeoutQueue_.resize(kept);
        // Canonical firing order regardless of arming order.
        std::sort(dueT.begin(), dueT.end(),
                  [](const PendingTimeout &a, const PendingTimeout &b) {
                      return a.deadline != b.deadline
                          ? a.deadline < b.deadline
                          : (a.id != b.id ? a.id < b.id
                                          : a.attempt < b.attempt);
                  });
        for (const PendingTimeout &pt : dueT) {
            progress = true;
            const auto it = inFlight_.find(pt.id);
            if (it == inFlight_.end())
                continue; // shell already drained
            Flight &fl = it->second;
            --fl.timeoutsArmed;
            if (fl.resolved || fl.retryPending ||
                pt.attempt != fl.attempts - 1) {
                // Stale: the flight resolved or moved to a newer
                // attempt before this deadline came up.
                finishFlight(it);
                continue;
            }
            ++timeoutsFired_;
            failAttempt(it, pt.deadline);
        }
        dueR.clear();
        kept = 0;
        for (const auto &rt : retryQueue_) {
            if (rt.first <= t1)
                dueR.push_back(rt);
            else
                retryQueue_[kept++] = rt;
        }
        retryQueue_.resize(kept);
        std::sort(dueR.begin(), dueR.end());
        for (const auto &rt : dueR) {
            progress = true;
            const auto it = inFlight_.find(rt.second);
            assert(it != inFlight_.end()); // retryPending pins the shell
            Flight &fl = it->second;
            fl.retryPending = false;
            // Re-dispatch at the quiescent epoch edge (the servers
            // already advanced past the nominal due instant).
            const sim::Tick at = std::max(rt.first, t1);
            ++fl.attempts;
            for (const std::uint32_t s : fl.failedSrv)
                dispatcher_->exclude(s);
            const std::size_t srv = dispatcher_->pick();
            dispatcher_->clearExclusions();
            if (srv == Dispatcher::kNone) {
                // No server this request hasn't already failed on.
                failAttempt(it, at);
                continue;
            }
            dispatcher_->onDispatch(srv);
            ++failovers_;
            if (attr_) {
                // Emit the full gap history valued at the new target:
                // its replica chain then sums from the original
                // dispatch, keeping the blame report additive.
                if (at > fl.lastFailAt)
                    fl.gaps.push_back(
                        {fl.lastFailAt, at - fl.lastFailAt, true});
                for (const Flight::Gap &g : fl.gaps)
                    fleetTrace_->span(g.at, g.dur,
                                      g.backoff ? obs::Name::SegFailover
                                                : obs::Name::SegTimeoutWait,
                                      obs::Track::Segments, rt.second,
                                      static_cast<double>(srv));
            }
            fl.curSrv = static_cast<std::uint32_t>(srv);
            fl.attemptAt = at;
            if (routeReplica(at, fl.service, srv, rt.second)) {
                ++fl.remaining;
                armTimeout(it, at);
            } else {
                failAttempt(it, at);
            }
        }
    }
}

void
FleetSim::drainCompletions()
{
    mergeStaged(&ShardSlot::completions, [this](const StagedEvent &ev) {
        const auto it = inFlight_.find(ev.id);
        assert(it != inFlight_.end());
        Flight &fl = it->second;
        // First successful response resolves a recovery-managed flight
        // immediately — even one from a timed-out attempt that beat
        // its own failover (the client takes whichever answer lands
        // first; the accounting happens exactly once).
        const bool single = cfg_.recovery.enabled && !fl.fanout;
        if (fabric_) {
            const auto tr = fabric_->toClient(ev.at, ev.srv);
            netRetransmits_ +=
                static_cast<std::uint64_t>(tr.retransmits);
            if (tr.lost) {
                // Under recovery the armed timeout notices the missing
                // response and drives the failover; without it the
                // request is lost outright.
                if (!single)
                    ++fl.lost;
            } else {
                traceSendSegments(ev.at, tr.deliverAt, tr.rtoWait,
                                  ev.srv, ev.id, true);
                fl.lastDone = std::max(fl.lastDone, tr.deliverAt);
                if (single && !fl.resolved)
                    resolveFlight(it, tr.deliverAt, false);
            }
        } else {
            // The response half of the teleport RTT (see routeReplica).
            const sim::Tick resp =
                cfg_.networkLatency - cfg_.networkLatency / 2;
            if (attr_ && resp > 0)
                fleetTrace_->span(ev.at, resp, obs::Name::SegXmitResp,
                                  obs::Track::Segments, ev.id,
                                  static_cast<double>(ev.srv));
            fl.lastDone = std::max(fl.lastDone, ev.at);
            if (single && !fl.resolved)
                resolveFlight(it, ev.at, false);
        }
        --fl.remaining;
        finishFlight(it);
    });
}

void
FleetSim::drainNicDrops(sim::Tick now_floor)
{
    mergeStaged(&ShardSlot::drops, [this,
                                    now_floor](const StagedEvent &ev) {
        const auto it = inFlight_.find(ev.id);
        assert(it != inFlight_.end());
        Flight &fl = it->second;
        // This replica's attempt count (missing entry = the first send
        // already happened).
        auto entry = std::find_if(
            fl.triesBySrv.begin(), fl.triesBySrv.end(),
            [&ev](const auto &e) { return e.first == ev.srv; });
        if (entry == fl.triesBySrv.end()) {
            fl.triesBySrv.emplace_back(ev.srv, 1);
            entry = fl.triesBySrv.end() - 1;
        }
        if (entry->second >= cfg_.fabric.maxTries) {
            --fl.remaining;
            if (cfg_.recovery.enabled && !fl.fanout && !fl.resolved &&
                !fl.retryPending && ev.srv == fl.curSrv) {
                // The current attempt exhausted its NIC resends: fail
                // over instead of losing the request outright.
                failAttempt(it, ev.at);
                return;
            }
            if (!fl.resolved)
                ++fl.lost;
            finishFlight(it);
            return;
        }
        // Client resend of the tail-dropped replica to the same
        // server after the RTO (floored at the fleet's current epoch
        // edge: the drop was only observed at the drain point). The
        // resend schedules directly — the servers are quiescent
        // between epochs, and its bucket was already consumed.
        ++entry->second;
        ++netRetransmits_;
        const sim::Tick at =
            std::max(ev.at + cfg_.fabric.rto, now_floor);
        // The drop-to-resend gap is pure retransmit penalty in the
        // request's timeline; the fresh transit then adds its own
        // RTO/wire spans.
        if (attr_ && at > ev.at)
            fleetTrace_->span(ev.at, at - ev.at, obs::Name::SegRto,
                              obs::Track::Segments, ev.id,
                              static_cast<double>(ev.srv));
        sim::Tick deliver, rto_wait;
        if (transit(at, ev.srv, deliver, rto_wait)) {
            traceSendSegments(at, deliver, rto_wait, ev.srv, ev.id,
                              false);
            scheduleInject(ev.srv, deliver, ev.id, fl.service);
        } else {
            --fl.remaining;
            if (cfg_.recovery.enabled && !fl.fanout && !fl.resolved &&
                !fl.retryPending && ev.srv == fl.curSrv) {
                failAttempt(it, ev.at);
                return;
            }
            if (!fl.resolved)
                ++fl.lost;
            finishFlight(it);
        }
    });
}

FleetReport
FleetSim::run()
{
    using Phase = obs::PhaseProfiler::Phase;
    profiler_.enable(cfg_.profile);
    profiler_.beginRun(layout_.numShards);

    for (auto &s : servers_)
        s->start();
    if (metrics_) {
        metricsPrev_.resize(servers_.size());
        for (std::size_t i = 0; i < servers_.size(); ++i)
            metricsPrev_[i] = servers_[i]->soc().rapl().readCounter(
                power::Plane::Package);
    }

    const sim::Tick measure_at = cfg_.warmup;
    const sim::Tick end = cfg_.warmup + cfg_.duration;
    sim::Tick t = 0;
    while (t < end) {
        if (!measuring_ && t >= measure_at) {
            for (auto &s : servers_)
                s->beginMeasurement();
            if (fabric_)
                fabric_->beginWindow();
            measuring_ = true;
            measureStart_ = t;
        }
        // Epoch boundaries align with the start of measurement so RAPL
        // windows begin at a quiescent, single-threaded instant.
        const sim::Tick limit = measuring_ ? end : measure_at;
        const sim::Tick t1 = std::min(t + cfg_.epoch, limit);
        {
            const auto sc = profiler_.scope(Phase::Route);
            if (allocator_ && t >= nextAllocAt_) {
                allocateBudgets(t);
                nextAllocAt_ = t + cfg_.budgetEpoch;
            }
            dispatchEpoch(t, t1);
        }
        advanceShards(t1);
        {
            const auto sc = profiler_.scope(Phase::Merge);
            drainCompletions();
            drainNicDrops(t1);
            drainAborts();
            processRecovery(t1);
        }
        if (metrics_ && metrics_->due(t1))
            sampleMetrics(t1);
        if (health_ && measuring_)
            healthEpoch(t, t1);
        t = t1;
    }

    // Freeze per-server metrics at the end of the measurement window so
    // every server's power average covers exactly [warmup, end]; latch
    // fabric power on the same boundary (drain traffic would otherwise
    // smear busy time into a fixed-length window).
    {
        const auto sc = profiler_.scope(Phase::Collect);
        collectServers();
    }
    if (fabric_)
        fabricPowerW_ = fabric_->averagePowerW(cfg_.duration);

    // Drain: no new arrivals; let in-flight work finish.
    const sim::Tick deadline = end + cfg_.drainLimit;
    while (!inFlight_.empty() && t < deadline) {
        const sim::Tick t1 = std::min(t + cfg_.epoch, deadline);
        advanceShards(t1);
        {
            const auto sc = profiler_.scope(Phase::Merge);
            drainCompletions();
            drainNicDrops(t1);
            drainAborts();
            processRecovery(t1);
        }
        if (metrics_ && metrics_->due(t1))
            sampleMetrics(t1);
        if (health_ && measuring_)
            healthEpoch(t, t1);
        t = t1;
    }

    // Close the open package-state spans so the trace's power tracks
    // cover the whole run.
    if (tracer_)
        for (auto &s : servers_)
            s->traceFlush();

    if (health_) {
        // Resolve still-active alerts and audit the final quiescent
        // state (the drain may leave flights in the map; conservation
        // must account for them exactly).
        health_->slo().finish(t);
        if (health_->auditEnabled())
            health_->auditor().audit(buildAuditSnapshot(t));
    }

    return aggregate();
}

void
FleetSim::sampleMetrics(sim::Tick t)
{
    metrics_->beginSample(t);
    double fleet_w = 0.0;
    std::uint64_t outstanding = 0;
    const bool per_server = !series_.srvPowerW.empty();
    const bool capped = !series_.srvCapLimitW.empty();
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        auto &s = *servers_[i];
        const auto cur =
            s.soc().rapl().readCounter(power::Plane::Package);
        const double w =
            s.soc().rapl().averagePower(metricsPrev_[i], cur);
        metricsPrev_[i] = cur;
        // lint:allow(float-accum) fixed server-index order on the
        // single-threaded spine; layout-invariant by construction
        fleet_w += w;
        outstanding += s.outstanding();
        if (per_server) {
            metrics_->set(series_.srvPowerW[i], w);
            metrics_->set(series_.srvOutstanding[i],
                          static_cast<double>(s.outstanding()));
            if (capped)
                metrics_->set(series_.srvCapLimitW[i], s.powerLimitW());
        }
    }
    metrics_->set(series_.fleetPowerW, fleet_w);
    metrics_->set(series_.outstanding,
                  static_cast<double>(outstanding));
    metrics_->set(series_.dispatched,
                  static_cast<double>(dispatched_));
    metrics_->set(series_.completed, static_cast<double>(completed_));
    metrics_->set(series_.retransmits,
                  static_cast<double>(netRetransmits_));
    metrics_->set(series_.lost, static_cast<double>(lostRequests_));
    if (fabric_) {
        const auto fs = fabric_->stats();
        metrics_->set(series_.fabricEnqueued,
                      static_cast<double>(fs.enqueued));
        metrics_->set(series_.fabricDelivered,
                      static_cast<double>(fs.delivered));
        metrics_->set(series_.fabricDropped,
                      static_cast<double>(fs.dropped));
    }
    if (allocator_)
        metrics_->set(series_.rackBudgetW, allocator_->rackBudgetW(t));
}

void
FleetSim::healthEpoch(sim::Tick t0, sim::Tick t1)
{
    obs::SloMonitor &slo = health_->slo();
    if (cfg_.cap.enabled || cfg_.budget.enabled) {
        // Cumulative settled-sample counters; the monitor takes the
        // per-epoch delta for the power SLI.
        std::uint64_t cs = 0, cv = 0;
        for (auto &s : servers_)
            if (cap::PowerCapController *c = s->capController()) {
                cs += c->samples();
                cv += c->violations();
            }
        slo.setCapCounters(cs, cv);
    }
    slo.onEpoch(t0, t1);
    if (health_->auditEnabled() && health_->auditor().due(t1))
        health_->auditor().audit(buildAuditSnapshot(t1));
}

obs::AuditSnapshot
FleetSim::buildAuditSnapshot(sim::Tick now)
{
    obs::AuditSnapshot snap;
    snap.now = now;
    snap.flightsCreated = nextId_;
    snap.flightsFinished = flightsFinished_;
    snap.flightsInFlight = inFlight_.size();
    snap.dispatched = dispatched_;
    snap.completed = completed_;
    snap.lost = lostRequests_;
    snap.lostToCrash = lostToCrash_;
    // lint:allow(unordered-iteration) commutative integer count; the
    // result is independent of visit order
    for (const auto &kv : inFlight_)
        // A resolved shell was already counted (completed or lost);
        // only unresolved flights are conservation's "in flight".
        if (kv.second.measured && !kv.second.resolved)
            ++snap.measuredInFlight;

    snap.servers.reserve(servers_.size());
    for (const auto &s : servers_)
        snap.servers.push_back(
            {s->accepted(), s->completed(), s->aborted()});

    if (fabric_) {
        const auto add = [&snap](const net::DropTailLink &l) {
            snap.links.push_back(
                {l.offered(), l.delivered(), l.dropped()});
        };
        add(fabric_->coreIngress());
        add(fabric_->coreEgress());
        for (std::size_t i = 0; i < servers_.size(); ++i) {
            add(fabric_->downlink(i));
            add(fabric_->uplink(i));
        }
    }

    snap.energy.reserve(servers_.size() * 2);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        auto &soc = servers_[i]->soc();
        const auto &meter = soc.meter();
        for (const power::Plane pl :
             {power::Plane::Package, power::Plane::Dram}) {
            obs::AuditEnergy e;
            e.server = static_cast<int>(i);
            e.plane = static_cast<int>(pl);
            e.energyJ = meter.planeEnergy(pl);
            double sum = 0.0;
            for (const power::PowerLoad *ld : meter.loads())
                if (ld->plane() == pl)
                    // lint:allow(float-accum) loads() is the fixed
                    // registration-order vector; spine-only reader
                    sum += ld->energyJoules();
            e.loadSumJ = sum;
            e.counter = soc.rapl().readCounter(pl).counter;
            e.unitJ = soc.rapl().energyUnit();
            snap.energy.push_back(e);
        }
    }

    if (allocator_) {
        snap.budgetEnabled = true;
        snap.floorW = cfg_.budget.minServerW;
        snap.deadbandW = cfg_.budgetDeadbandW;
        snap.numServers = servers_.size();
        snap.anyEmergencyEver = allocator_->emergencyEpochs() > 0;
        const auto &log = allocator_->log();
        for (std::size_t i = auditLogPos_; i < log.size(); ++i)
            snap.newEpochs.push_back({log[i].at, log[i].budgetW,
                                      log[i].allocatedW,
                                      log[i].emergency, log[i].active});
        auditLogPos_ = log.size();
        if (!log.empty())
            snap.lastBudgetW = log.back().budgetW;
        snap.serverLimitW.reserve(servers_.size());
        for (const auto &s : servers_)
            snap.serverLimitW.push_back(s->powerLimitW());
        if (faultPlan_) {
            snap.serverActive.reserve(servers_.size());
            for (const auto &s : servers_)
                snap.serverActive.push_back(
                    s->lifecycle() == server::Lifecycle::Up ? 1 : 0);
        }
    }
    return snap;
}

bool
FleetSim::writeTrace(const std::string &path) const
{
    if (!tracer_)
        return false;
    if (const std::uint64_t drops = tracer_->totalDropped())
        std::fprintf(stderr,
                     "fleet: warning: trace rings wrapped, %llu oldest "
                     "records dropped; export is incomplete (raise "
                     "TraceConfig::ringCapacity)\n",
                     static_cast<unsigned long long>(drops));
    const obs::PhaseProfiler *prof = cfg_.profile ? &profiler_ : nullptr;
    if (attr_) {
        // Flow arrows (client -> critical server -> client) ride along
        // when attribution ran; built post-run from the same rings.
        const obs::AttributionResult res = obs::buildAttribution(*tracer_);
        const std::vector<obs::FlowEvent> flows =
            obs::buildFlows(res, cfg_.attribution.flowLimit);
        return tracer_->writePerfettoJson(path, prof, &flows);
    }
    return tracer_->writePerfettoJson(path, prof);
}

bool
FleetSim::writeMetricsCsv(const std::string &path) const
{
    return metrics_ && metrics_->writeCsv(path);
}

bool
FleetSim::writeAlertsCsv(const std::string &path) const
{
    return health_ && health_->report().writeAlertsCsv(path);
}

bool
FleetSim::writeAlertsJson(const std::string &path) const
{
    return health_ && health_->report().writeAlertsJson(path);
}

void
FleetSim::collectServers()
{
    // collect() only touches its own server's state, so shards can
    // gather in parallel — at 10k servers the sequential gather
    // (histogram copies, residency walks) serialized the end of every
    // sweep.
    perServerResults_.resize(servers_.size());
    pool_.parallelForRanges(
        layout_.numShards, [this](std::size_t b, std::size_t e) {
            const std::size_t end = layout_.end(e - 1);
            for (std::size_t i = layout_.begin(b); i < end; ++i)
                perServerResults_[i] = servers_[i]->collect();
        });
}

FleetReport
FleetSim::aggregate()
{
    FleetReport rep;
    rep.numServers = servers_.size();
    rep.dispatched = dispatched_;
    rep.completed = completed_;
    rep.inFlightAtEnd = inFlight_.size();
    rep.replicasDispatched = replicasDispatched_;
    for (const auto &s : servers_) {
        rep.serversAccepted += s->accepted();
        rep.serversCompleted += s->completed();
        rep.serversOutstanding += s->outstanding();
    }

    const double window_s = sim::toSeconds(cfg_.duration);
    rep.achievedQps = window_s > 0
        ? static_cast<double>(completed_) / window_s : 0.0;

    rep.perServer = perServerResults_;
    const double n = static_cast<double>(servers_.size());
    rep.capEnabled = cfg_.cap.enabled || cfg_.budget.enabled;
    // Scalar folds stay sequential and in server order: they are O(1)
    // per server, and keeping the old summation order keeps every
    // floating-point total bit-identical to the unsharded engine.
    for (const auto &r : perServerResults_) {
        rep.pkgPowerW += r.pkgPowerW;
        rep.dramPowerW += r.dramPowerW;
        rep.nicPowerW += r.nicPowerW;
        rep.capSamples += r.capSamples;
        rep.capViolations += r.capViolations;
        rep.capThrottleResidency += r.capThrottleResidency / n;
        rep.capPerfLoss += r.capPerfLossFraction() / n;
        rep.avgUtilization += r.utilization / n;
        for (std::size_t s = 0; s < soc::kNumPkgStates; ++s)
            rep.pkgResidency[s] += r.pkgResidency[s] / n;
        rep.replicaLatencySummary.merge(r.latencySummary);
        rep.nicInterrupts += r.nicInterrupts;
        rep.nicRxDrops += r.nicRxDrops;
        rep.nicPktsPerIrq.merge(r.nicPktsPerIrq);
        rep.nicWakeUs.merge(r.nicWakeUs);
    }
    // The O(servers x buckets) histogram merges run as a fixed-shape
    // parallel tree reduction: leaves of kReduceLeaf servers (a
    // constant, so the shape — and the merged result — is independent
    // of thread and shard count), folded in leaf order.
    struct HistAcc
    {
        stats::Histogram replica{0.1, 1e7, 64};
        stats::Histogram idle{0.01, 1e7, 32};
    };
    HistAcc acc = stats::reduceFixed(
        perServerResults_.size(), kReduceLeaf, HistAcc{},
        [this](HistAcc &a, std::size_t i) {
            a.replica.merge(perServerResults_[i].latencyHistUs);
            a.idle.merge(perServerResults_[i].idlePeriodsUs);
        },
        [](HistAcc &a, const HistAcc &b) {
            a.replica.merge(b.replica);
            a.idle.merge(b.idle);
        },
        [this](std::size_t m, auto &&fn) { pool_.parallelFor(m, fn); });
    rep.replicaLatencyUs = std::move(acc.replica);
    rep.idlePeriodsUs = std::move(acc.idle);

    if (fabric_) {
        rep.fabricStats = fabric_->stats();
        rep.fabricPowerW = fabricPowerW_;
    }
    if (allocator_) {
        rep.rackBudgetW = allocator_->nominalRackBudgetW();
        rep.oversubscription = cfg_.budget.oversubscription;
        rep.budgetUtilization =
            allocator_->budgetUtilization(measureStart_);
        rep.emergencyEpochs = allocator_->emergencyEpochs();
        rep.budgetLog = allocator_->log();
    }
    rep.joulesPerRequest = completed_ > 0
        ? rep.totalPowerW() * window_s / static_cast<double>(completed_)
        : 0.0;

    rep.avgLatencyUs = latencyUs_.mean();
    rep.maxLatencyUs = latencyUs_.max();
    rep.p50LatencyUs = latencyHistUs_.p50();
    rep.p95LatencyUs = latencyHistUs_.p95();
    rep.p99LatencyUs = latencyHistUs_.p99();
    rep.p999LatencyUs = latencyHistUs_.quantile(0.999);
    rep.latencyUs = latencyHistUs_;

    rep.sloUs = cfg_.sloUs;
    rep.sloViolations = sloViolations_;
    rep.lostRequests = lostRequests_;
    rep.lostToCrash = lostToCrash_;
    rep.failovers = failovers_;
    rep.timeouts = timeoutsFired_;
    rep.netRetransmits = netRetransmits_;
    const std::uint64_t answered =
        completed_ + lostRequests_ + lostToCrash_;
    rep.sloViolationFraction = answered > 0
        ? static_cast<double>(sloViolations_) /
            static_cast<double>(answered)
        : 0.0;

    if (tracer_) {
        rep.traceRecords = tracer_->totalRecorded();
        rep.traceDrops = tracer_->totalDropped();
    }
    if (attr_)
        rep.attribution = obs::LatencyAttribution::build(
            obs::buildAttribution(*tracer_), cfg_.attribution.sampleLimit);
    if (health_)
        rep.health = health_->report();
    return rep;
}

} // namespace apc::fleet
