#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <tuple>

namespace apc::fleet {

namespace {

/** SplitMix64 step: decorrelates per-server RNG streams. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

std::string
FleetReport::csvHeader()
{
    return "num_servers,dispatched,completed,lost,retransmits,"
           "achieved_qps,pkg_w,dram_w,nic_w,fabric_w,total_w,"
           "j_per_req,avg_us,p50_us,p95_us,p99_us,p999_us,max_us,"
           "slo_us,slo_violation_frac,utilization,pc1a_residency,"
           "nic_irqs,nic_rx_drops,pkts_per_irq_avg,"
           "rack_budget_w,budget_util,cap_violation_rate,"
           "cap_throttle_res,cap_perf_loss,emergency_epochs";
}

std::string
FleetReport::csvRow() const
{
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%zu,%llu,%llu,%llu,%llu,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,"
        "%.6f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.1f,%.6f,%.4f,%.4f,"
        "%llu,%llu,%.2f,%.2f,%.4f,%.6f,%.4f,%.4f,%llu",
        numServers, static_cast<unsigned long long>(dispatched),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(lostRequests),
        static_cast<unsigned long long>(netRetransmits), achievedQps,
        pkgPowerW, dramPowerW, nicPowerW, fabricPowerW, totalPowerW(),
        joulesPerRequest, avgLatencyUs, p50LatencyUs, p95LatencyUs,
        p99LatencyUs, p999LatencyUs, maxLatencyUs, sloUs,
        sloViolationFraction, avgUtilization, pc1aResidency(),
        static_cast<unsigned long long>(nicInterrupts),
        static_cast<unsigned long long>(nicRxDrops),
        nicPktsPerIrq.mean(), rackBudgetW, budgetUtilization,
        capViolationRate(), capThrottleResidency, capPerfLoss,
        static_cast<unsigned long long>(emergencyEpochs));
    return buf;
}

void
FleetReport::writeCsv(std::FILE *out, bool with_header) const
{
    if (with_header)
        std::fprintf(out, "%s\n", csvHeader().c_str());
    std::fprintf(out, "%s\n", csvRow().c_str());
}

FleetSim::FleetSim(FleetConfig cfg)
    : cfg_(std::move(cfg)),
      pool_(std::min<unsigned>(cfg_.threads,
                               static_cast<unsigned>(cfg_.numServers)))
{
    assert(cfg_.numServers > 0);
    servers_.reserve(cfg_.numServers);
    completions_.resize(cfg_.numServers);
    drops_.resize(cfg_.numServers);
    for (std::size_t i = 0; i < cfg_.numServers; ++i) {
        server::ServerConfig sc;
        sc.policy = cfg_.policy;
        sc.workload = cfg_.workload;
        sc.networkLatency =
            cfg_.fabric.enabled ? 0 : cfg_.networkLatency;
        sc.seed = mixSeed(cfg_.seed, i);
        sc.externalArrivals = true;
        sc.nic = cfg_.nic;
        sc.cap = cfg_.cap;
        if (cfg_.budget.enabled)
            sc.cap.enabled = true; // the allocator needs enforcement
        servers_.push_back(
            std::make_unique<server::ServerSim>(std::move(sc)));
        auto &buf = completions_[i];
        servers_[i]->onCompletion(
            [&buf](std::uint64_t id, sim::Tick done) {
                buf.emplace_back(id, done);
            });
        if (cfg_.nic.enabled) {
            auto &dbuf = drops_[i];
            servers_[i]->onRxDrop(
                [&dbuf](std::uint64_t id, sim::Tick at) {
                    dbuf.emplace_back(id, at);
                });
        }
    }
    traffic_ = std::make_unique<TrafficSource>(
        cfg_.traffic, mixSeed(cfg_.seed, 0xF1EE7));
    if (cfg_.fabric.enabled)
        fabric_ = std::make_unique<net::Fabric>(cfg_.fabric,
                                                cfg_.numServers);
    if (cfg_.budget.enabled) {
        allocator_ = std::make_unique<cap::BudgetAllocator>(
            cfg_.budget, cfg_.numServers);
        // Initial allocation with zero demand: floors plus an even
        // (weighted) split of the surplus.
        const auto initial = allocator_->allocate(
            0, std::vector<double>(cfg_.numServers, 0.0));
        for (std::size_t i = 0; i < servers_.size(); ++i)
            servers_[i]->setPowerLimit(initial[i]);
        nextAllocAt_ = cfg_.budgetEpoch;
    }

    std::uint32_t budget = cfg_.packBudget;
    if (budget == 0) {
        // Pack to ~70% of the cores: keeps queueing (and therefore the
        // p99) bounded while still emptying the rest of the fleet.
        const auto cores = servers_[0]->soc().numCores();
        budget = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::floor(0.7 * static_cast<double>(cores))));
    }
    dispatcher_ = makeDispatcher(cfg_.dispatch, cfg_.numServers, budget);
    lbView_.assign(cfg_.numServers, 0);
    banned_.assign(cfg_.numServers, false);
}

FleetSim::~FleetSim() = default;

bool
FleetSim::sendReplica(sim::Tick at, sim::Tick service, std::size_t srv,
                      std::uint64_t id)
{
    server::ServerSim *s = servers_[srv].get();
    sim::Tick deliver = at;
    if (fabric_) {
        const auto tr = fabric_->toServer(at, srv);
        netRetransmits_ += static_cast<std::uint64_t>(tr.retransmits);
        if (tr.lost)
            return false;
        deliver = tr.deliverAt;
    }
    s->sim().at(deliver, [s, id, service] { s->inject(id, service); });
    return true;
}

bool
FleetSim::routeReplica(sim::Tick at, sim::Tick service, std::size_t srv,
                       std::uint64_t id)
{
    ++lbView_[srv];
    ++replicasDispatched_;
    return sendReplica(at, service, srv, id);
}

void
FleetSim::allocateBudgets(sim::Tick now)
{
    // Demand = each server's sliding-window draw, read single-threaded
    // at the epoch boundary (every server is quiescent at `now`).
    std::vector<double> demand(servers_.size(), 0.0);
    for (std::size_t i = 0; i < servers_.size(); ++i)
        demand[i] = servers_[i]->capPowerW();
    const auto alloc = allocator_->allocate(now, demand);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        const double cur = servers_[i]->powerLimitW();
        // Deadband damps allocation chatter so the per-server
        // controllers can settle; real cuts (breaker trips, big demand
        // shifts) exceed it by construction.
        if (std::abs(alloc[i] - cur) > cfg_.budgetDeadbandW)
            servers_[i]->setPowerLimit(alloc[i]);
    }
}

void
FleetSim::dispatchEpoch(sim::Tick from, sim::Tick to)
{
    // Fresh backend view at the epoch boundary; in-epoch dispatches are
    // layered on top as they happen.
    for (std::size_t i = 0; i < servers_.size(); ++i)
        lbView_[i] = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(servers_[i]->outstanding(),
                                    UINT32_MAX));

    for (const TrafficEvent &ev : traffic_->epoch(from, to)) {
        const std::uint64_t id = nextId_++;
        Flight fl;
        fl.arrival = ev.at;
        fl.service = ev.service;
        fl.remaining = 0;
        fl.lost = 0;
        fl.lastDone = 0;
        fl.measured = measuring_ && ev.at >= measureStart_;
        if (fl.measured)
            ++dispatched_;
        if (ev.fanout <= 1) {
            const std::size_t srv = dispatcher_->pick(lbView_, noBan_);
            if (routeReplica(ev.at, ev.service, srv, id))
                ++fl.remaining;
            else
                ++fl.lost;
        } else {
            // Fanout replicas land on distinct servers (capped at the
            // fleet size): the slowest replica gates completion.
            std::fill(banned_.begin(), banned_.end(), false);
            const int replicas = std::min<int>(
                ev.fanout, static_cast<int>(servers_.size()));
            for (int k = 0; k < replicas; ++k) {
                const std::size_t srv = dispatcher_->pick(lbView_,
                                                          banned_);
                banned_[srv] = true;
                if (routeReplica(ev.at, ev.service, srv, id))
                    ++fl.remaining;
                else
                    ++fl.lost;
            }
        }
        const auto it = inFlight_.emplace(id, fl).first;
        if (fl.remaining == 0)
            finishFlight(it); // every replica was lost in the fabric
    }
}

void
FleetSim::advanceServers(sim::Tick to)
{
    pool_.parallelFor(servers_.size(), [this, to](std::size_t i) {
        servers_[i]->advanceTo(to);
    });
}

void
FleetSim::finishFlight(FlightMap::iterator it)
{
    const Flight &fl = it->second;
    if (fl.measured) {
        if (fl.lost > 0) {
            // A request with any replica dropped beyond retry never
            // answers the client: count it lost and against the SLO.
            ++lostRequests_;
            ++sloViolations_;
        } else {
            // End-to-end: slowest replica's response at the client.
            // Without a fabric the constant network RTT stands in.
            const sim::Tick extra = fabric_ ? 0 : cfg_.networkLatency;
            const double us =
                sim::toMicros(fl.lastDone - fl.arrival + extra);
            ++completed_;
            latencyUs_.record(us);
            latencyHistUs_.record(us);
            if (us > cfg_.sloUs)
                ++sloViolations_;
        }
    }
    inFlight_.erase(it);
}

void
FleetSim::drainCompletions()
{
    // Merge per-server buffers into one time-ordered stream so the
    // shared response links see offers in a deterministic, sensible
    // order regardless of which thread advanced which server.
    std::vector<std::tuple<sim::Tick, std::size_t, std::uint64_t>> resp;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        for (const auto &[id, done] : completions_[i])
            resp.emplace_back(done, i, id);
        completions_[i].clear();
    }
    std::sort(resp.begin(), resp.end());

    for (const auto &[done, srv, id] : resp) {
        const auto it = inFlight_.find(id);
        assert(it != inFlight_.end());
        Flight &fl = it->second;
        if (fabric_) {
            const auto tr = fabric_->toClient(done, srv);
            netRetransmits_ +=
                static_cast<std::uint64_t>(tr.retransmits);
            if (tr.lost)
                ++fl.lost;
            else
                fl.lastDone = std::max(fl.lastDone, tr.deliverAt);
        } else {
            fl.lastDone = std::max(fl.lastDone, done);
        }
        if (--fl.remaining == 0)
            finishFlight(it);
    }
}

void
FleetSim::drainNicDrops(sim::Tick now_floor)
{
    std::vector<std::tuple<sim::Tick, std::size_t, std::uint64_t>> drops;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        for (const auto &[id, at] : drops_[i])
            drops.emplace_back(at, i, id);
        drops_[i].clear();
    }
    if (drops.empty())
        return;
    std::sort(drops.begin(), drops.end());

    for (const auto &[when, srv, id] : drops) {
        const auto it = inFlight_.find(id);
        assert(it != inFlight_.end());
        Flight &fl = it->second;
        // This replica's attempt count (missing entry = the first send
        // already happened).
        const auto srv_key = static_cast<std::uint32_t>(srv);
        auto entry = std::find_if(
            fl.triesBySrv.begin(), fl.triesBySrv.end(),
            [srv_key](const auto &e) { return e.first == srv_key; });
        if (entry == fl.triesBySrv.end()) {
            fl.triesBySrv.emplace_back(srv_key, 1);
            entry = fl.triesBySrv.end() - 1;
        }
        if (entry->second >= cfg_.fabric.maxTries) {
            ++fl.lost;
            if (--fl.remaining == 0)
                finishFlight(it);
            continue;
        }
        // Client resend of the tail-dropped replica to the same
        // server after the RTO (floored at the fleet's current epoch
        // edge: the drop was only observed at the drain point).
        ++entry->second;
        ++netRetransmits_;
        const sim::Tick at =
            std::max(when + cfg_.fabric.rto, now_floor);
        if (!sendReplica(at, fl.service, srv, id)) {
            ++fl.lost;
            if (--fl.remaining == 0)
                finishFlight(it);
        }
    }
}

FleetReport
FleetSim::run()
{
    for (auto &s : servers_)
        s->start();

    const sim::Tick measure_at = cfg_.warmup;
    const sim::Tick end = cfg_.warmup + cfg_.duration;
    sim::Tick t = 0;
    while (t < end) {
        if (!measuring_ && t >= measure_at) {
            for (auto &s : servers_)
                s->beginMeasurement();
            if (fabric_)
                fabric_->beginWindow();
            measuring_ = true;
            measureStart_ = t;
        }
        if (allocator_ && t >= nextAllocAt_) {
            allocateBudgets(t);
            nextAllocAt_ = t + cfg_.budgetEpoch;
        }
        // Epoch boundaries align with the start of measurement so RAPL
        // windows begin at a quiescent, single-threaded instant.
        const sim::Tick limit = measuring_ ? end : measure_at;
        const sim::Tick t1 = std::min(t + cfg_.epoch, limit);
        dispatchEpoch(t, t1);
        advanceServers(t1);
        drainCompletions();
        drainNicDrops(t1);
        t = t1;
    }

    // Freeze per-server metrics at the end of the measurement window so
    // every server's power average covers exactly [warmup, end]; latch
    // fabric power on the same boundary (drain traffic would otherwise
    // smear busy time into a fixed-length window).
    perServerResults_.clear();
    for (auto &s : servers_)
        perServerResults_.push_back(s->collect());
    if (fabric_)
        fabricPowerW_ = fabric_->averagePowerW(cfg_.duration);

    // Drain: no new arrivals; let in-flight work finish.
    const sim::Tick deadline = end + cfg_.drainLimit;
    while (!inFlight_.empty() && t < deadline) {
        const sim::Tick t1 = std::min(t + cfg_.epoch, deadline);
        advanceServers(t1);
        drainCompletions();
        drainNicDrops(t1);
        t = t1;
    }

    return aggregate();
}

FleetReport
FleetSim::aggregate()
{
    FleetReport rep;
    rep.numServers = servers_.size();
    rep.dispatched = dispatched_;
    rep.completed = completed_;
    rep.inFlightAtEnd = inFlight_.size();
    rep.replicasDispatched = replicasDispatched_;
    for (const auto &s : servers_) {
        rep.serversAccepted += s->accepted();
        rep.serversCompleted += s->completed();
        rep.serversOutstanding += s->outstanding();
    }

    const double window_s = sim::toSeconds(cfg_.duration);
    rep.achievedQps = window_s > 0
        ? static_cast<double>(completed_) / window_s : 0.0;

    rep.perServer = perServerResults_;
    const double n = static_cast<double>(servers_.size());
    rep.capEnabled = cfg_.cap.enabled || cfg_.budget.enabled;
    for (const auto &r : perServerResults_) {
        rep.pkgPowerW += r.pkgPowerW;
        rep.dramPowerW += r.dramPowerW;
        rep.nicPowerW += r.nicPowerW;
        rep.capSamples += r.capSamples;
        rep.capViolations += r.capViolations;
        rep.capThrottleResidency += r.capThrottleResidency / n;
        rep.capPerfLoss += r.capPerfLossFraction() / n;
        rep.avgUtilization += r.utilization / n;
        for (std::size_t s = 0; s < soc::kNumPkgStates; ++s)
            rep.pkgResidency[s] += r.pkgResidency[s] / n;
        rep.replicaLatencyUs.merge(r.latencyHistUs);
        rep.replicaLatencySummary.merge(r.latencySummary);
        rep.idlePeriodsUs.merge(r.idlePeriodsUs);
        rep.nicInterrupts += r.nicInterrupts;
        rep.nicRxDrops += r.nicRxDrops;
        rep.nicPktsPerIrq.merge(r.nicPktsPerIrq);
        rep.nicWakeUs.merge(r.nicWakeUs);
    }
    if (fabric_) {
        rep.fabricStats = fabric_->stats();
        rep.fabricPowerW = fabricPowerW_;
    }
    if (allocator_) {
        rep.rackBudgetW = allocator_->nominalRackBudgetW();
        rep.oversubscription = cfg_.budget.oversubscription;
        rep.budgetUtilization =
            allocator_->budgetUtilization(measureStart_);
        rep.emergencyEpochs = allocator_->emergencyEpochs();
        rep.budgetLog = allocator_->log();
    }
    rep.joulesPerRequest = completed_ > 0
        ? rep.totalPowerW() * window_s / static_cast<double>(completed_)
        : 0.0;

    rep.avgLatencyUs = latencyUs_.mean();
    rep.maxLatencyUs = latencyUs_.max();
    rep.p50LatencyUs = latencyHistUs_.p50();
    rep.p95LatencyUs = latencyHistUs_.p95();
    rep.p99LatencyUs = latencyHistUs_.p99();
    rep.p999LatencyUs = latencyHistUs_.quantile(0.999);
    rep.latencyUs = latencyHistUs_;

    rep.sloUs = cfg_.sloUs;
    rep.sloViolations = sloViolations_;
    rep.lostRequests = lostRequests_;
    rep.netRetransmits = netRetransmits_;
    const std::uint64_t answered = completed_ + lostRequests_;
    rep.sloViolationFraction = answered > 0
        ? static_cast<double>(sloViolations_) /
            static_cast<double>(answered)
        : 0.0;
    return rep;
}

} // namespace apc::fleet
