/**
 * @file
 * Multi-server fleet simulation, sharded execution engine.
 *
 * Instantiates N independent ServerSim instances (each with its own
 * event queue and RNG stream) behind a configurable load balancer and
 * drives them with cluster-level traffic in lockstep epochs. The fleet
 * is partitioned into contiguous **shards** of servers; each epoch runs
 * as a pipeline:
 *
 *   1. *Route* (single-threaded): generate the epoch's arrivals
 *      (TrafficSource), pick a server per replica (O(log n) indexed
 *      dispatch), run fabric transit, and bucket the resulting
 *      injections into per-shard staging slots.
 *   2. *Advance* (parallel, one worker per shard): schedule the shard's
 *      staged injections into its servers' event queues, advance the
 *      shard's servers to the epoch end, and stage their completions
 *      and NIC drops — sorted — into the shard's slot. Slots are
 *      cache-line aligned and single-writer, so workers never contend.
 *   3. *Merge* (single-threaded): k-way-merge the sorted shard outputs
 *      into one (time, server, id)-ordered stream and apply it —
 *      response fabric transit, flight completion, client resends of
 *      NIC drops.
 *
 * Because routing and merging are single-threaded and the merge order
 * is a total order independent of the partitioning, reports are
 * **bit-identical across any thread count and any shard size** — the
 * invariant every determinism test enforces. The dispatcher sees
 * outstanding counts refreshed at epoch boundaries plus its own
 * in-epoch dispatches — the slightly stale view a real load balancer
 * has of its backends.
 */

#ifndef APC_FLEET_FLEET_SIM_H
#define APC_FLEET_FLEET_SIM_H

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cap/budget.h"
#include "fault/fault.h"
#include "fleet/dispatch.h"
#include "fleet/shard.h"
#include "fleet/thread_pool.h"
#include "fleet/traffic.h"
#include "net/fabric.h"
#include "obs/critpath.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "server/server_sim.h"

namespace apc::fleet {

/** Fleet-wide run setup. */
struct FleetConfig
{
    /** Server count. */
    std::size_t numServers = 8;

    /**
     * Per-server template: policy, workload (service distribution and
     * wake costs; its qps is ignored — traffic is fleet-driven), NUMA,
     * DVFS. Each server gets a distinct RNG stream derived from seed.
     */
    soc::PackagePolicy policy = soc::PackagePolicy::Cpc1a;
    workload::WorkloadConfig workload =
        workload::WorkloadConfig::memcachedEtc(0);
    sim::Tick networkLatency = 117 * sim::kUs;

    TrafficConfig traffic;
    DispatchKind dispatch = DispatchKind::LeastOutstanding;

    /**
     * Network fabric between the client side and the servers. When
     * enabled, dispatches, fanout replicas and responses ride lossy
     * finite-buffer links instead of teleporting, per-server
     * networkLatency is zeroed (the fabric carries the real delay),
     * and end-to-end latency is measured at client response delivery.
     */
    net::FabricConfig fabric;

    /** Per-server NIC model (normally enabled together with fabric). */
    net::NicConfig nic;
    /**
     * Packing policy's per-server outstanding budget; 0 derives it from
     * the server's core count (~70% target utilization).
     */
    std::uint32_t packBudget = 0;

    /** Latency SLO for violation accounting. */
    double sloUs = 1000.0;

    /**
     * Per-server power-capping template (cap.limitW is the standalone
     * per-server limit; under budget allocation the allocator
     * retargets it every budget epoch).
     */
    cap::CapConfig cap;

    /**
     * Fleet-level budget allocation (rack -> server) with
     * oversubscription and breaker-trip emergencies. Enabling it
     * forces per-server capping on.
     */
    cap::BudgetConfig budget;

    /** Allocation cadence (coarser than the fleet epoch so per-server
     *  control loops can settle between retargets). */
    sim::Tick budgetEpoch = 10 * sim::kMs;

    /** Ignore allocation deltas smaller than this (keeps limits stable
     *  under demand noise so violation accounting can settle). */
    double budgetDeadbandW = 1.0;

    sim::Tick warmup = 20 * sim::kMs;
    sim::Tick duration = 300 * sim::kMs;
    /** Dispatch/advance quantum (load-balancer view staleness). */
    sim::Tick epoch = 200 * sim::kUs;
    /** Extra time allowed after @p duration to drain in-flight work. */
    sim::Tick drainLimit = 2 * sim::kSec;

    std::uint64_t seed = 42;
    /** Worker threads for the per-epoch parallel phase; <=1 = inline. */
    unsigned threads = 1;

    /**
     * Span tracing (obs/tracer.h): request lifecycles, package
     * power-state spans, cap/budget actuations, NIC events, exported
     * as Perfetto JSON via writeTrace(). Pure observation: reports are
     * byte-identical with tracing on or off, at any thread count.
     */
    obs::TraceConfig trace;

    /** Time-series metrics sampled at epoch boundaries
     *  (obs/metrics.h); exported via writeMetricsCsv(). */
    obs::MetricsConfig metrics;

    /**
     * Per-request latency attribution (obs/attribution.h): segment
     * instrumentation on every layer a request crosses plus the
     * post-run blame report (FleetReport::attribution). Implies
     * tracing. Pure observation, same contract as `trace`: reports
     * are byte-identical with attribution on or off.
     */
    obs::AttributionConfig attribution;

    /**
     * Online fleet health (obs/health.h): SLO burn-rate alerting over
     * rolling sim-time windows plus the epoch-boundary invariant
     * auditor. Same zero-footprint contract as `trace`/`metrics`:
     * the monitor only reads simulation state from single-threaded
     * engine sections, so reports are byte-identical with health on
     * or off and the alert log is invariant across thread counts.
     * `APC_AUDIT_FAILFAST=1` in the environment forces the auditor on
     * in failFast mode (audit-as-sanitizer).
     */
    obs::HealthConfig health;

    /**
     * Deterministic fault injection (fault/fault.h): scripted and
     * stochastic server crashes, drain/restart cycles, link flaps and
     * NIC ring freezes, materialized per epoch from counter-based RNG
     * substreams and applied at the single-threaded route stage — the
     * same fault schedule at any thread count or shard layout. A
     * disabled plan has zero footprint: reports are byte-identical
     * with the subsystem compiled in and off.
     */
    fault::FaultPlanConfig faults;

    /**
     * Client-side graceful degradation (fault/fault.h): per-request
     * timeouts, capped exponential backoff with deterministic
     * per-request jitter, and failover re-dispatch to a server that
     * has not failed this request yet. Applies to single-replica
     * requests; fanout requests keep all-shards-must-answer semantics
     * (a crashed replica is a lost request).
     */
    fault::RecoveryConfig recovery;

    /** Wall-clock profiling of the route/advance/merge pipeline
     *  (obs/profiler.h); negligible cost, on by default. */
    bool profile = true;

    /**
     * Servers per shard; 0 picks one automatically from the thread
     * count (see ShardLayout::make). Results never depend on it — it
     * only tunes the parallelism grain.
     */
    std::size_t shardSize = 0;
};

/** Aggregated fleet metrics. */
struct FleetReport
{
    std::size_t numServers = 0;

    // Request accounting (fleet level: a fanout request counts once).
    std::uint64_t dispatched = 0; ///< requests routed (measurement window)
    std::uint64_t completed = 0;  ///< requests finished (all replicas)
    std::uint64_t inFlightAtEnd = 0;

    // Replica accounting (matches per-server accepted/completed sums).
    std::uint64_t replicasDispatched = 0; ///< whole run, incl. warmup
    std::uint64_t serversAccepted = 0;
    std::uint64_t serversCompleted = 0;
    std::uint64_t serversOutstanding = 0;

    double achievedQps = 0.0;

    // Fleet power over the measurement window.
    double pkgPowerW = 0.0;
    double dramPowerW = 0.0;
    /** NIC devices + fabric links (zero unless net modeling is on). */
    double nicPowerW = 0.0;
    double fabricPowerW = 0.0;
    double netPowerW() const { return nicPowerW + fabricPowerW; }
    double totalPowerW() const
    {
        return pkgPowerW + dramPowerW + netPowerW();
    }
    double joulesPerRequest = 0.0;

    // Fleet end-to-end latency (fanout = slowest replica), µs.
    double avgLatencyUs = 0.0;
    double p50LatencyUs = 0.0;
    double p95LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    double maxLatencyUs = 0.0;

    // SLO accounting.
    double sloUs = 0.0;
    std::uint64_t sloViolations = 0;
    double sloViolationFraction = 0.0;

    // Network accounting (fabric/NIC enabled runs only).
    /** Measured requests that never completed (drops beyond retry). */
    std::uint64_t lostRequests = 0;
    /** Measured requests destroyed by injected faults — crashed or
     *  refused replicas, mass-outage dispatch failures, and requests
     *  the client abandoned after exhausting failover attempts. Never
     *  silently vanished: the auditor's conservation law counts them. */
    std::uint64_t lostToCrash = 0;
    /** Successful failover re-dispatches (recovery enabled). */
    std::uint64_t failovers = 0;
    /** Per-attempt client timeouts that fired (recovery enabled). */
    std::uint64_t timeouts = 0;
    /** Client resends: fabric retransmits + NIC ring-drop resends. */
    std::uint64_t netRetransmits = 0;
    std::uint64_t nicInterrupts = 0;
    std::uint64_t nicRxDrops = 0;
    /** Pooled per-interrupt batch size across all NICs. */
    stats::Summary nicPktsPerIrq;
    /** Pooled NIC-wake -> fabric-ready latency (µs). */
    stats::Summary nicWakeUs;
    /** Per-link counter sums (conservation: enqueued = delivered +
     *  dropped, exactly). */
    net::FabricStats fabricStats;

    // Power capping / budget accounting (zero unless capping ran).
    bool capEnabled = false;
    /** Rack budget before breaker derating (budget allocation only). */
    double rackBudgetW = 0.0;
    double oversubscription = 0.0;
    /** Mean fleet demand / rack budget over measured epochs. */
    double budgetUtilization = 0.0;
    /** Summed settled control samples and violations across servers. */
    std::uint64_t capSamples = 0;
    std::uint64_t capViolations = 0;
    double
    capViolationRate() const
    {
        return capSamples
            ? static_cast<double>(capViolations) /
                static_cast<double>(capSamples)
            : 0.0;
    }
    /** Fleet-average idle-injection gate residency. */
    double capThrottleResidency = 0.0;
    /** Fleet-average compute capacity removed by the actuators. */
    double capPerfLoss = 0.0;
    /** Allocation epochs where floors had to be emergency-scaled. */
    std::uint64_t emergencyEpochs = 0;
    /** Per-epoch budget/demand/allocation timeline (budget runs). */
    std::vector<cap::BudgetAllocator::EpochRecord> budgetLog;

    // Fleet-average core utilization and package residency.
    double avgUtilization = 0.0;
    std::array<double, soc::kNumPkgStates> pkgResidency{};

    /** Pooled end-to-end latency distribution (µs). */
    stats::Histogram latencyUs{0.1, 1e7, 64};

    /**
     * Replica-level latency pooled across servers (each server's own
     * view, merged): differs from `latencyUs` in that a fanout request
     * contributes one sample per replica here but a single
     * slowest-replica sample there.
     */
    stats::Histogram replicaLatencyUs{0.1, 1e7, 64};
    stats::Summary replicaLatencySummary;

    /** Fleet-wide idle-period length distribution (µs), merged. */
    stats::Histogram idlePeriodsUs{0.01, 1e7, 32};

    /** Per-server breakdown (index = server id). */
    std::vector<server::ServerResult> perServer;

    // Trace-ring health (zero unless tracing ran). Drops > 0 mean the
    // export — and any attribution built on it — is missing the oldest
    // records; raise TraceConfig::ringCapacity.
    std::uint64_t traceRecords = 0;
    std::uint64_t traceDrops = 0;

    /** Tail-latency blame report (enabled flag false unless
     *  cfg.attribution.enabled). Deliberately not part of csvRow():
     *  the headline row is the byte-identity reference for the
     *  zero-footprint contract. */
    obs::LatencyAttribution attribution;

    /** Fleet health summary: burn-rate alerts fired/resolved,
     *  sim-time-in-violation, worst burn, audit counters and the alert
     *  log (enabled flag false unless cfg.health.enabled). Outside
     *  csvRow() for the same reason as `attribution`. */
    obs::HealthReport health;

    double
    pc1aResidency() const
    {
        return pkgResidency[static_cast<std::size_t>(soc::PkgState::Pc1a)];
    }

    /** Column names matching csvRow(), comma-separated. */
    static std::string csvHeader();

    /** One comma-separated record of the report's headline metrics. */
    std::string csvRow() const;

    /** Write csvHeader (optionally) + csvRow to @p out. */
    void writeCsv(std::FILE *out, bool with_header = true) const;
};

/** The cluster simulator. */
class FleetSim
{
  public:
    explicit FleetSim(FleetConfig cfg);
    ~FleetSim();

    /** Run warmup + measurement + drain; aggregate the fleet report. */
    FleetReport run();

    std::size_t numServers() const { return servers_.size(); }
    server::ServerSim &server(std::size_t i) { return *servers_[i]; }

    /** The shard partitioning in effect (auto or configured). */
    const ShardLayout &shards() const { return layout_; }

    /** The span tracer; null unless cfg.trace.enabled. */
    obs::Tracer *tracer() { return tracer_.get(); }
    const obs::Tracer *tracer() const { return tracer_.get(); }

    /** The metrics sampler; null unless cfg.metrics.enabled (or its
     *  interval was rejected at setup). */
    obs::MetricsSampler *metrics() { return metrics_.get(); }
    const obs::MetricsSampler *metrics() const { return metrics_.get(); }

    /** The health monitor; null unless cfg.health.enabled (or forced
     *  via APC_AUDIT_FAILFAST). */
    obs::HealthMonitor *health() { return health_.get(); }
    const obs::HealthMonitor *health() const { return health_.get(); }

    /** Engine wall-clock profile of the last run(). */
    const obs::PhaseProfiler &profiler() const { return profiler_; }

    /** Export the merged trace as Perfetto JSON (includes the engine's
     *  wall-clock phase spans when cfg.profile). @return false when
     *  tracing is off or on IO failure. */
    bool writeTrace(const std::string &path) const;

    /** Export the sampled metrics series. @return false when metrics
     *  are off or on IO failure. */
    bool writeMetricsCsv(const std::string &path) const;

    /** Export the health alert log. @return false when health is off
     *  or on IO failure. */
    bool writeAlertsCsv(const std::string &path) const;
    bool writeAlertsJson(const std::string &path) const;

  private:
    struct Flight
    {
        sim::Tick arrival;
        sim::Tick service;  ///< dispatcher-chosen demand (resends)
        int remaining;      ///< replicas still running
        int lost;           ///< replicas dropped beyond retry
        sim::Tick lastDone; ///< slowest replica completion so far
        bool measured;      ///< arrived inside the measurement window
        /**
         * Client outcome (success or loss) already recorded. The shell
         * stays in the map until every routed replica has drained —
         * late responses and crash aborts from superseded attempts
         * land here instead of in an accounting hole.
         */
        bool resolved = false;
        /** A fault caused the loss: crash/refusal abort, mass-outage
         *  dispatch failure, or failover-attempt exhaustion. Splits
         *  lostToCrash from lostRequests at resolution. */
        bool crashLoss = false;
        bool fanout = false; ///< multi-replica (no failover path)
        /** Dispatch attempts consumed (recovery bookkeeping). */
        int attempts = 0;
        /** A failover re-dispatch is scheduled but not yet routed. */
        bool retryPending = false;
        /** Armed, not-yet-fired entries in the timeout queue. */
        int timeoutsArmed = 0;
        std::uint32_t curSrv = 0; ///< latest single-replica target
        sim::Tick attemptAt = 0;  ///< latest dispatch instant
        sim::Tick lastFailAt = 0; ///< latest attempt-failure instant
        /**
         * Per-replica send attempts, keyed by server (fanout replicas
         * land on distinct servers; resends target the same one).
         * Absent entry = one attempt so far.
         */
        std::vector<std::pair<std::uint32_t, int>> triesBySrv;
        /** Servers whose attempt failed; failover never reuses one. */
        std::vector<std::uint32_t> failedSrv;
        /** Timeout/backoff windows accumulated across attempts; the
         *  whole history is re-emitted to each failover target so the
         *  final server's chain sums from the original dispatch. */
        struct Gap
        {
            sim::Tick at = 0;
            sim::Tick dur = 0;
            bool backoff = false; ///< failover gap vs. timeout wait
        };
        std::vector<Gap> gaps; ///< attribution runs only
    };

    using FlightMap = std::unordered_map<std::uint64_t, Flight>;

    /** Rack->server budget reallocation at a budget-epoch boundary. */
    void allocateBudgets(sim::Tick now);
    /** Phase 1: route the epoch's arrivals into per-shard buckets. */
    void dispatchEpoch(sim::Tick from, sim::Tick to);
    /** @return false if the replica was lost in the fabric. */
    bool routeReplica(sim::Tick at, sim::Tick service, std::size_t srv,
                      std::uint64_t id);
    /** Fabric transit for one replica send; shared by first sends and
     *  NIC-drop resends. @return false if lost, else sets @p deliver
     *  and the RTO share of the transit (@p rto_wait). */
    bool transit(sim::Tick at, std::size_t srv, sim::Tick &deliver,
                 sim::Tick &rto_wait);
    /** Attribution spans for one fabric transit: the RTO wait and the
     *  wire time, on the fleet writer (server in `value`). */
    void traceSendSegments(sim::Tick at, sim::Tick deliver,
                           sim::Tick rto_wait, std::size_t srv,
                           std::uint64_t id, bool response);
    /** Schedule one injection directly into @p srv's event queue. */
    void scheduleInject(std::size_t srv, sim::Tick deliver,
                        std::uint64_t id, sim::Tick service);
    /** Phase 2: per shard (parallel) — schedule staged injections,
     *  advance the shard's servers to @p to, sort staged outputs. */
    void advanceShards(sim::Tick to);
    /** Phase 3 merges: apply one staged stream across all shards in
     *  (time, server, id) order; consumed streams are cleared. */
    template <typename Apply>
    void mergeStaged(std::vector<StagedEvent> ShardSlot::*stream,
                     Apply &&apply);
    void drainCompletions();
    /** Client-side retransmission of NIC ring drops. */
    void drainNicDrops(sim::Tick now_floor);
    /** Merge-phase crash/refusal abort stream: replicas destroyed by
     *  a server crash or refused by a non-Up server. */
    void drainAborts();
    /** Fire due per-attempt timeouts and execute due failover
     *  re-dispatches, in deterministic (time, id) order, floored at
     *  the quiescent epoch edge @p t1. */
    void processRecovery(sim::Tick t1);
    /** Route-stage fault application for the epoch [from, to):
     *  materialize the plan's events, flip server lifecycles, mask the
     *  dispatcher, retarget the budget allocator, and reinsert
     *  recovered servers whose restart completed. */
    void applyFaults(sim::Tick from, sim::Tick to);
    /** Arm the per-attempt client timeout for a just-routed attempt
     *  (recovery-enabled single-replica flights only). */
    void armTimeout(FlightMap::iterator it, sim::Tick at);
    /** One dispatch attempt failed at @p at: give the request up
     *  (crash-class loss) or schedule the backoff retry. */
    void failAttempt(FlightMap::iterator it, sim::Tick at);
    /** One-time client outcome accounting + request trace record. */
    void resolveFlight(FlightMap::iterator it, sim::Tick done,
                       bool lost);
    /** Resolve when nothing can still make progress, then erase the
     *  shell once every routed replica has drained. */
    void finishFlight(FlightMap::iterator it);
    /** Erase the shell once resolved and fully drained. */
    void maybeEraseFlight(FlightMap::iterator it);
    /** Parallel per-shard ServerSim::collect into perServerResults_. */
    void collectServers();
    FleetReport aggregate();
    /** Record one metrics row at epoch boundary @p t (single-threaded,
     *  servers quiescent). */
    void sampleMetrics(sim::Tick t);
    /** Feed the health monitor at the quiescent boundary closing the
     *  epoch [t0, t1): SLO window roll + due invariant audits. */
    void healthEpoch(sim::Tick t0, sim::Tick t1);
    /** Gather the auditor's view of the fleet at quiescent @p now. */
    obs::AuditSnapshot buildAuditSnapshot(sim::Tick now);

    FleetConfig cfg_;
    ShardLayout layout_;
    std::vector<std::unique_ptr<server::ServerSim>> servers_;
    std::unique_ptr<TrafficSource> traffic_;
    std::unique_ptr<Dispatcher> dispatcher_;
    std::unique_ptr<net::Fabric> fabric_;
    std::unique_ptr<cap::BudgetAllocator> allocator_;
    sim::Tick nextAllocAt_ = 0;
    ThreadPool pool_;

    // --- fault injection + recovery (null/empty when disabled) ---
    std::unique_ptr<fault::FaultPlan> faultPlan_;
    /** Reused event scratch for FaultPlan::epoch. */
    std::vector<fault::FaultEvent> faultScratch_;
    /** Restarted servers awaiting dispatcher reinsertion at the next
     *  route stage: (ready instant, server). */
    std::vector<std::pair<sim::Tick, std::uint32_t>> pendingUp_;
    /** One armed client timeout (single-replica attempts). */
    struct PendingTimeout
    {
        sim::Tick deadline = 0;
        std::uint64_t id = 0;
        int attempt = 0; ///< stale once the flight moved past it
    };
    std::vector<PendingTimeout> timeoutQueue_;
    /** Scheduled failover re-dispatches: (due instant, flight id). */
    std::vector<std::pair<sim::Tick, std::uint64_t>> retryQueue_;
    std::uint64_t lostToCrash_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t timeoutsFired_ = 0;

    /** Epoch-boundary outstanding counts (dispatcher refresh source). */
    std::vector<std::uint32_t> lbView_;

    /** Per-shard staging slots (stable addresses: server hooks point
     *  into them). */
    std::vector<ShardSlot> slots_;

    /** Reused arrival scratch for TrafficSource::epoch. */
    std::vector<TrafficEvent> trafficScratch_;

    /** Reused k-way-merge cursor heap: (stream, position). */
    using MergeCursor = std::pair<std::vector<StagedEvent> *, std::size_t>;
    std::vector<MergeCursor> mergeScratch_;

    /** Per-server results collected at the end of the measurement
     *  window (before the drain tail, so power windows line up). */
    std::vector<server::ServerResult> perServerResults_;

    FlightMap inFlight_;
    std::uint64_t nextId_ = 0;
    /** Flights fully resolved (finishFlight calls); with nextId_ and
     *  inFlight_.size() this is the flight-conservation identity. */
    std::uint64_t flightsFinished_ = 0;

    sim::Tick measureStart_ = 0;
    bool measuring_ = false;
    std::uint64_t dispatched_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t replicasDispatched_ = 0;
    std::uint64_t sloViolations_ = 0;
    std::uint64_t lostRequests_ = 0;
    std::uint64_t netRetransmits_ = 0;
    /** Fabric power latched when the measurement window closes (the
     *  drain tail must not smear the per-window average). */
    double fabricPowerW_ = 0.0;
    stats::Summary latencyUs_;
    stats::Histogram latencyHistUs_{0.1, 1e7, 64};

    // --- telemetry (all pure observers of the simulation) ---
    /** Attribution on: segment spans recorded, blame report built. */
    bool attr_ = false;
    std::unique_ptr<obs::Tracer> tracer_;
    /** Writer 0: fleet-spine events (request spans, budget counters). */
    obs::TraceWriter *fleetTrace_ = nullptr;
    std::unique_ptr<obs::MetricsSampler> metrics_;
    /** SLO burn-rate monitor + invariant auditor (obs/health.h). */
    std::unique_ptr<obs::HealthMonitor> health_;
    /** Budget-allocator log records already audited. */
    std::size_t auditLogPos_ = 0;
    obs::PhaseProfiler profiler_;
    /** Per-server RAPL counters latched at the previous sample. */
    std::vector<power::RaplSample> metricsPrev_;
    /** Registered series ids (valid when metrics_ is set). */
    struct MetricSeries
    {
        obs::SeriesId fleetPowerW = 0, outstanding = 0, dispatched = 0,
                      completed = 0, retransmits = 0, lost = 0;
        obs::SeriesId fabricEnqueued = 0, fabricDelivered = 0,
                      fabricDropped = 0;
        obs::SeriesId rackBudgetW = 0;
        std::vector<obs::SeriesId> srvPowerW, srvOutstanding,
            srvCapLimitW;
    } series_;
};

} // namespace apc::fleet

#endif // APC_FLEET_FLEET_SIM_H
