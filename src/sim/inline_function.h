/**
 * @file
 * Small-buffer type-erased callable for the simulation hot path.
 *
 * `InplaceFunction<R(Args...), Capacity>` is a drop-in replacement for
 * `std::function` on paths where per-call heap allocation matters: the
 * callable is stored inline when it fits in `Capacity` bytes (the common
 * case for event callbacks — a `this` pointer plus a few captured
 * scalars) and falls back to a single heap allocation otherwise. Unlike
 * `std::function`, there is no RTTI and no `target()`.
 *
 * Copy semantics match `std::function`: the stored callable must be
 * copy-constructible (every lambda capturing copyable state qualifies).
 * Invoking an empty function asserts in debug builds; in release
 * builds it is a no-op for void-returning signatures and undefined for
 * value-returning ones.
 */

#ifndef APC_SIM_INLINE_FUNCTION_H
#define APC_SIM_INLINE_FUNCTION_H

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace apc::sim {

template <typename Signature, std::size_t Capacity = 64>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity>
{
  public:
    InplaceFunction() = default;
    InplaceFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InplaceFunction(F &&f)
    {
        construct(std::forward<F>(f));
    }

    /** Assign a fresh callable in place (no temporary + relocation). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InplaceFunction &
    operator=(F &&f)
    {
        reset();
        construct(std::forward<F>(f));
        return *this;
    }

    InplaceFunction(const InplaceFunction &other)
    {
        if (other.ops_) {
            other.ops_->copyTo(other.buf_, buf_);
            ops_ = other.ops_;
        }
    }

    InplaceFunction(InplaceFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InplaceFunction &
    operator=(const InplaceFunction &other)
    {
        if (this != &other) {
            reset();
            if (other.ops_) {
                other.ops_->copyTo(other.buf_, buf_);
                ops_ = other.ops_;
            }
        }
        return *this;
    }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    ~InplaceFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args) const
    {
        assert(ops_ && "invoking an empty InplaceFunction");
        if constexpr (std::is_void_v<R>) {
            if (!ops_)
                return;
        }
        return ops_->invoke(const_cast<unsigned char *>(buf_),
                            std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        void (*copyTo)(const void *src, void *dst);
        /** Move the callable from src to dst and destroy src. */
        void (*relocateTo)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
        /** Relocation is a plain byte copy (trivially-copyable inline
         *  callables, and the heap case where only a pointer moves). */
        bool trivialRelocate;
        /** Destruction is a no-op (no indirect call needed). */
        bool trivialDestroy;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
    }

    void
    reset()
    {
        if (ops_) {
            if (!ops_->trivialDestroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                void *(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    void
    moveFrom(InplaceFunction &other) noexcept
    {
        if (other.ops_) {
            // The hot path: event records and observer slots relocate
            // constantly; trivially-relocatable callables move as one
            // fixed-size copy instead of an indirect call.
            if (other.ops_->trivialRelocate)
                std::memcpy(buf_, other.buf_, Capacity);
            else
                other.ops_->relocateTo(other.buf_, buf_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    template <typename Fn>
    static inline const Ops inlineOps = {
        /* invoke */
        [](void *p, Args... args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(p)))(
                std::forward<Args>(args)...);
        },
        /* copyTo */
        [](const void *src, void *dst) {
            ::new (dst) Fn(*std::launder(
                reinterpret_cast<const Fn *>(src)));
        },
        /* relocateTo */
        [](void *src, void *dst) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        /* destroy */
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
        /* trivialRelocate */ std::is_trivially_copyable_v<Fn>,
        /* trivialDestroy */ std::is_trivially_destructible_v<Fn>,
    };

    template <typename Fn>
    static inline const Ops heapOps = {
        /* invoke */
        [](void *p, Args... args) -> R {
            return (*static_cast<Fn *>(
                *std::launder(reinterpret_cast<void **>(p))))(
                std::forward<Args>(args)...);
        },
        /* copyTo */
        [](const void *src, void *dst) {
            const Fn *f = static_cast<const Fn *>(
                *std::launder(reinterpret_cast<void *const *>(src)));
            ::new (dst) void *(new Fn(*f));
        },
        /* relocateTo */
        [](void *src, void *dst) noexcept {
            ::new (dst)
                void *(*std::launder(reinterpret_cast<void **>(src)));
        },
        /* destroy */
        [](void *p) noexcept {
            delete static_cast<Fn *>(
                *std::launder(reinterpret_cast<void **>(p)));
        },
        /* trivialRelocate */ true, // ownership moves with the pointer
        /* trivialDestroy */ false,
    };

    static_assert(Capacity >= sizeof(void *),
                  "capacity must at least hold the heap-fallback pointer");

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

} // namespace apc::sim

#endif // APC_SIM_INLINE_FUNCTION_H
