#include "sim/signal.h"

#include <algorithm>

namespace apc::sim {

void
Signal::write(bool v)
{
    // Any direct write supersedes in-flight delayed writes.
    ++writeGen_;
    if (v == value_)
        return;
    value_ = v;
    if (v)
        ++rising_;
    else
        ++falling_;
    // Copy the subscriber list so observers may subscribe/unsubscribe
    // (but not destroy the signal) from inside callbacks.
    auto subs = subs_;
    for (auto &s : subs)
        s.fn(v);
}

void
Signal::writeAfter(Tick delay, bool v)
{
    if (delay <= 0) {
        write(v);
        return;
    }
    const std::uint64_t gen = ++writeGen_;
    sim_.after(delay, [this, gen, v] {
        // Only apply if no newer write superseded this one.
        if (writeGen_ != gen)
            return;
        // Apply without bumping the generation again.
        if (v == value_)
            return;
        value_ = v;
        if (v)
            ++rising_;
        else
            ++falling_;
        auto subs = subs_;
        for (auto &s : subs)
            s.fn(v);
    });
}

std::uint64_t
Signal::subscribe(SignalObserver fn)
{
    const std::uint64_t id = nextSub_++;
    subs_.push_back(Sub{id, std::move(fn)});
    return id;
}

void
Signal::unsubscribe(std::uint64_t id)
{
    subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                               [id](const Sub &s) { return s.id == id; }),
                subs_.end());
}

AndTree::AndTree(Simulation &sim, const std::string &name, Tick prop_delay)
    : sim_(sim), propDelay_(prop_delay), out_(sim, name, false)
{}

void
AndTree::addInput(Signal &in)
{
    inputs_.push_back(&in);
    in.subscribe([this](bool) { onInputEdge(); });
    // Reflect the (possibly already-true) combinational value.
    onInputEdge();
}

bool
AndTree::combinational() const
{
    if (inputs_.empty())
        return false;
    return std::all_of(inputs_.begin(), inputs_.end(),
                       [](const Signal *s) { return s->read(); });
}

void
AndTree::onInputEdge()
{
    out_.writeAfter(propDelay_, combinational());
}

} // namespace apc::sim
