#include "sim/signal.h"

#include <algorithm>

namespace apc::sim {

void
Signal::applyEdge(bool v)
{
    if (v == value_)
        return;
    value_ = v;
    if (v)
        ++rising_;
    else
        ++falling_;
    // Dispatch in place over a snapshot of the current length — no
    // per-edge copy of the observer list. subs_ must not reallocate
    // while a callable stored inline in it is executing, so both list
    // mutations are deferred mid-dispatch: observers subscribed during
    // dispatch are parked in pendingAdds_ (they miss every edge
    // delivered before the outermost dispatch unwinds), and observers
    // unsubscribed during dispatch are tombstoned (id 0) and skipped,
    // so a self-unsubscribing callback is never destroyed mid-call.
    const std::size_t n = subs_.size();
    ++dispatchDepth_;
    for (std::size_t i = 0; i < n; ++i) {
        if (subs_[i].id != 0)
            subs_[i].fn(v);
    }
    if (--dispatchDepth_ == 0) {
        if (pendingRemoval_) {
            subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                                       [](const Sub &s) { return s.id == 0; }),
                        subs_.end());
            pendingRemoval_ = false;
        }
        if (!pendingAdds_.empty()) {
            subs_.insert(subs_.end(),
                         std::make_move_iterator(pendingAdds_.begin()),
                         std::make_move_iterator(pendingAdds_.end()));
            pendingAdds_.clear();
        }
    }
}

void
Signal::write(bool v)
{
    // Any direct write supersedes in-flight delayed writes.
    ++writeGen_;
    applyEdge(v);
}

void
Signal::writeAfter(Tick delay, bool v)
{
    if (delay <= 0) {
        write(v);
        return;
    }
    const std::uint64_t gen = ++writeGen_;
    sim_.after(delay, [this, gen, v] {
        // Only apply if no newer write superseded this one.
        if (writeGen_ == gen)
            applyEdge(v);
    });
}

std::uint64_t
Signal::subscribe(SignalObserver fn)
{
    const std::uint64_t id = nextSub_++;
    // A push_back during dispatch could reallocate subs_ out from under
    // the inline callable currently executing; park the new observer
    // until the outermost dispatch unwinds.
    auto &dst = dispatchDepth_ > 0 ? pendingAdds_ : subs_;
    dst.push_back(Sub{id, std::move(fn)});
    return id;
}

void
Signal::unsubscribe(std::uint64_t id)
{
    if (id == 0)
        return;
    auto it = std::find_if(subs_.begin(), subs_.end(),
                           [id](const Sub &s) { return s.id == id; });
    if (it == subs_.end()) {
        // Not yet merged: subscribed and unsubscribed within the same
        // dispatch. pendingAdds_ is never iterated mid-dispatch, so a
        // direct erase is safe.
        auto pit = std::find_if(pendingAdds_.begin(), pendingAdds_.end(),
                                [id](const Sub &s) { return s.id == id; });
        if (pit != pendingAdds_.end())
            pendingAdds_.erase(pit);
        return;
    }
    if (dispatchDepth_ > 0) {
        it->id = 0;
        pendingRemoval_ = true;
    } else {
        subs_.erase(it);
    }
}

AndTree::AndTree(Simulation &sim, const std::string &name, Tick prop_delay)
    : sim_(sim), propDelay_(prop_delay), out_(sim, name, false)
{}

void
AndTree::addInput(Signal &in)
{
    inputs_.push_back(&in);
    in.subscribe([this](bool) { onInputEdge(); });
    // Reflect the (possibly already-true) combinational value.
    onInputEdge();
}

bool
AndTree::combinational() const
{
    if (inputs_.empty())
        return false;
    return std::all_of(inputs_.begin(), inputs_.end(),
                       [](const Signal *s) { return s->read(); });
}

void
AndTree::onInputEdge()
{
    out_.writeAfter(propDelay_, combinational());
}

} // namespace apc::sim
