#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

#ifndef NDEBUG
#include <atomic>
#include <unordered_map>

#include "sim/annotations.h"
#endif

namespace apc::sim {

#ifndef NDEBUG
namespace {

// The registry maps each live queue to its epoch — a process-unique id
// — so a probe cannot pass falsely when a new queue is allocated at a
// destroyed queue's address. The shared mutex keeps the hot probe
// (every debug cancel()/pending(), from every fleet worker thread) on
// the read path; the write path runs only at queue construction and
// destruction. The map never escapes this struct, so the GUARDED_BY
// annotation covers every access statically.
struct LiveQueueRegistry
{
    SharedMutex m;
    std::unordered_map<const EventQueue *, std::uint64_t> map
        APC_GUARDED_BY(m);
};

// Function-local static dodges static-init-order issues.
LiveQueueRegistry &
registry()
{
    // lint:allow(mutable-global) debug-build handle-validation
    // registry; consulted only to detect stale handles, never feeds
    // simulation results
    static LiveQueueRegistry r;
    return r;
}

std::uint64_t
nextQueueEpoch()
{
    // lint:allow(mutable-global) mints process-unique queue epochs for
    // the debug registry above; the values never reach reports
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

} // namespace

bool
detail::queueAlive(const EventQueue *q, std::uint64_t epoch)
{
    LiveQueueRegistry &r = registry();
    SharedMutexSharedLock lock(r.m);
    auto it = r.map.find(q);
    return it != r.map.end() && it->second == epoch;
}

EventQueue::EventQueue() : epoch_(nextQueueEpoch())
{
    LiveQueueRegistry &r = registry();
    SharedMutexExclusiveLock lock(r.m);
    r.map.emplace(this, epoch_);
}

EventQueue::~EventQueue()
{
    LiveQueueRegistry &r = registry();
    SharedMutexExclusiveLock lock(r.m);
    r.map.erase(this);
}
#else
// Keep the symbols defined even in release builds so TUs compiled with
// assertions enabled can link against a release library (the probe then
// never reports a false positive — it just stops catching misuse).
bool
detail::queueAlive(const EventQueue *, std::uint64_t)
{
    return true;
}

EventQueue::EventQueue() = default;
EventQueue::~EventQueue() = default;
#endif

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != kNoSlot) {
        const std::uint32_t slot = freeHead_;
        freeHead_ = records_[slot].nextFree;
        return slot;
    }
    records_.emplace_back();
    return static_cast<std::uint32_t>(records_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = records_[slot];
    rec.fn = nullptr;
    ++rec.gen; // invalidates outstanding handles
    rec.scheduled = false;
    rec.cancelled = false;
    rec.nextFree = freeHead_;
    freeHead_ = slot;
}

std::uint32_t
EventQueue::prepareSchedule(Tick when)
{
    assert(when >= now_ && "event scheduled in the past");
    if (when < now_)
        when = now_;

    const std::uint32_t slot = allocSlot();
    Record &rec = records_[slot];
    rec.seq = nextSeq_++;
    rec.scheduled = true;
    ++live_;

    // An idle wheel may lag far behind after a quiet stretch; resync the
    // window to now so short-horizon timers keep hitting buckets.
    if (wheelCount_ == 0 && runPos_ >= run_.size()) {
        const Tick aligned = now_ & ~(kBucketTicks - 1);
        if (aligned > wheelNext_)
            wheelNext_ = aligned;
    }

    const Ref ref{when, rec.seq, slot};
    if (when >= wheelNext_ && when - wheelNext_ < kWheelSpan) {
        const std::size_t b = bucketIndex(when);
        buckets_[b].push_back(ref);
        occupied_[b >> 6] |= std::uint64_t(1) << (b & 63);
        ++wheelCount_;
        ++wheelScheduled_;
    } else {
        heap_.push_back(ref);
        std::push_heap(heap_.begin(), heap_.end(), RefLater{});
        ++heapScheduled_;
    }
    return slot;
}

void
EventQueue::cancelEvent(std::uint32_t slot, std::uint32_t gen)
{
    if (slot >= records_.size())
        return;
    Record &rec = records_[slot];
    if (rec.gen != gen || !rec.scheduled || rec.cancelled)
        return;
    rec.cancelled = true;
    rec.fn = nullptr; // release captured state immediately
    --live_;
    ++dead_;
    maybeCompact();
}

void
EventQueue::loadNextBucket()
{
    run_.clear();
    runPos_ = 0;
    std::size_t b = bucketIndex(wheelNext_);
    if (buckets_[b].empty()) {
        // Skip the empty stretch in one hop. Only called with
        // wheelCount_ > 0, so an occupied bucket exists; it may still
        // land on a stale-set empty bucket (compaction), in which case
        // the caller's loop just hops again.
        occupied_[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
        const std::size_t d = nextOccupiedDistance(b);
        wheelNext_ += static_cast<Tick>(d) * kBucketTicks;
        b = (b + d) & (kNumBuckets - 1);
    }
    std::vector<Ref> &bucket = buckets_[b];
    occupied_[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
    if (!bucket.empty()) {
        run_.swap(bucket);
        wheelCount_ -= run_.size();
        if (run_.size() > 1)
            std::sort(run_.begin(), run_.end(),
                      [](const Ref &x, const Ref &y) {
                          if (x.when != y.when)
                              return x.when < y.when;
                          return x.seq < y.seq;
                      });
    }
    wheelNext_ += kBucketTicks;
}

std::size_t
EventQueue::nextOccupiedDistance(std::size_t from) const
{
    constexpr std::size_t kWords = kNumBuckets / 64;
    std::size_t word = from >> 6;
    const std::size_t bit = from & 63;
    // Bits strictly after `from` in its word, then whole words,
    // circularly (the wrap revisit of the first word is harmless: any
    // bit found maps to a correct circular distance).
    std::uint64_t w = bit == 63
        ? 0
        : occupied_[word] & (~std::uint64_t(0) << (bit + 1));
    for (std::size_t step = 0; step <= kWords; ++step) {
        if (w != 0) {
            const std::size_t idx = (word << 6) |
                static_cast<std::size_t>(__builtin_ctzll(w));
            return (idx + kNumBuckets - from) & (kNumBuckets - 1);
        }
        word = (word + 1) & (kWords - 1);
        w = occupied_[word];
    }
    return 1; // clean bitmap: fall back to the single-bucket step
}

/**
 * Establish the pop invariant: the run cursor and heap top are live, and
 * every wheel bucket that could hold an entry preceding the heap top has
 * been loaded. @return true if any event is pending.
 */
bool
EventQueue::prepareNext()
{
    for (;;) {
        if (dead_ > 0) {
            while (runPos_ < run_.size() && refDead(run_[runPos_])) {
                --dead_;
                freeSlot(run_[runPos_].slot);
                ++runPos_;
            }
            while (!heap_.empty() && refDead(heap_.front())) {
                --dead_;
                freeSlot(heap_.front().slot);
                std::pop_heap(heap_.begin(), heap_.end(), RefLater{});
                heap_.pop_back();
            }
        }
        if (runPos_ < run_.size())
            return true;
        if (wheelCount_ == 0)
            return !heap_.empty();
        if (!heap_.empty() && heap_.front().when < wheelNext_)
            return true; // heap top precedes all unloaded wheel content
        loadNextBucket();
    }
}

bool
EventQueue::takeNext(Ref &out)
{
    if (!prepareNext())
        return false;
    const bool haveRun = runPos_ < run_.size();
    bool fromRun = haveRun;
    if (haveRun && !heap_.empty()) {
        const Ref &r = run_[runPos_];
        const Ref &h = heap_.front();
        fromRun = r.when != h.when ? r.when < h.when : r.seq < h.seq;
    }
    if (fromRun) {
        out = run_[runPos_++];
    } else {
        out = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), RefLater{});
        heap_.pop_back();
    }
    return true;
}

bool
EventQueue::peekWhen(Tick &when)
{
    if (!prepareNext())
        return false;
    const bool haveRun = runPos_ < run_.size();
    if (haveRun && !heap_.empty())
        when = std::min(run_[runPos_].when, heap_.front().when);
    else
        when = haveRun ? run_[runPos_].when : heap_.front().when;
    return true;
}

bool
EventQueue::step()
{
    Ref ref;
    if (!takeNext(ref))
        return false;
    assert(ref.when >= now_);
    now_ = ref.when;
    Record &rec = records_[ref.slot];
    EventFn fn = std::move(rec.fn);
    // Free the slot before invoking: the callback may schedule (growing
    // the pool and invalidating `rec`) or cancel its own stale handle.
    freeSlot(ref.slot);
    --live_;
    ++executed_;
    fn();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    Tick when;
    while (peekWhen(when) && when <= until) {
        step();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

void
EventQueue::maybeCompact()
{
    if (dead_ >= 64 && dead_ > live_)
        compact();
}

/** Reap every tombstone from the heap, wheel buckets, and run tail. */
void
EventQueue::compact()
{
    auto reap = [this](std::vector<Ref> &v, std::size_t from = 0) {
        auto out = v.begin() + static_cast<std::ptrdiff_t>(from);
        for (auto it = out; it != v.end(); ++it) {
            if (refDead(*it)) {
                freeSlot(it->slot);
            } else {
                *out++ = *it;
            }
        }
        v.erase(out, v.end());
    };

    const std::size_t heapBefore = heap_.size();
    reap(heap_);
    if (heap_.size() != heapBefore)
        std::make_heap(heap_.begin(), heap_.end(), RefLater{});

    // Every bucket entry, live or dead, is counted in wheelCount_, so
    // an empty wheel skips the 2048-bucket sweep entirely.
    if (wheelCount_ > 0) {
        for (std::vector<Ref> &bucket : buckets_) {
            if (!bucket.empty()) {
                const std::size_t before = bucket.size();
                reap(bucket);
                wheelCount_ -= before - bucket.size();
            }
        }
    }

    // The run prefix [0, runPos_) is already consumed; reap the tail in
    // place (it stays sorted — reaping preserves relative order).
    reap(run_, runPos_);

    dead_ = 0;
    ++compactions_;
}

} // namespace apc::sim
