#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace apc::sim {

EventHandle
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    assert(when >= now_ && "event scheduled in the past");
    if (when < now_)
        when = now_;
    auto state = std::make_shared<EventHandle::State>();
    heap_.push(Entry{when, nextSeq_++, std::move(fn), state});
    ++live_;
    return EventHandle(std::move(state));
}

bool
EventQueue::skipDead()
{
    while (!heap_.empty() && heap_.top().state->cancelled) {
        heap_.pop();
        --live_;
    }
    return !heap_.empty();
}

bool
EventQueue::step()
{
    if (!skipDead())
        return false;
    // priority_queue::top() is const; the entry must be moved out, so pop
    // into a local copy. Entries are small (a function object).
    Entry e = heap_.top();
    heap_.pop();
    assert(e.when >= now_);
    now_ = e.when;
    e.state->fired = true;
    --live_;
    ++executed_;
    e.fn();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (skipDead() && heap_.top().when <= until) {
        step();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

} // namespace apc::sim
