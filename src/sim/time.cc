#include "sim/time.h"

#include <cstdio>

namespace apc::sim {

std::string
formatTime(Tick t)
{
    char buf[64];
    const char *sign = t < 0 ? "-" : "";
    Tick a = t < 0 ? -t : t;
    if (a >= kSec) {
        std::snprintf(buf, sizeof(buf), "%s%.6gs", sign, toSeconds(a));
    } else if (a >= kMs) {
        std::snprintf(buf, sizeof(buf), "%s%.6gms",
                      sign, static_cast<double>(a) / kMs);
    } else if (a >= kUs) {
        std::snprintf(buf, sizeof(buf), "%s%.6gus", sign, toMicros(a));
    } else if (a >= kNs) {
        std::snprintf(buf, sizeof(buf), "%s%.6gns", sign, toNanos(a));
    } else {
        std::snprintf(buf, sizeof(buf), "%s%lldps",
                      sign, static_cast<long long>(a));
    }
    return buf;
}

} // namespace apc::sim
