/**
 * @file
 * Simulated time base for the AgilePkgC simulator.
 *
 * All simulated time is kept in integer picoseconds (`Tick`). Picosecond
 * resolution comfortably represents both the 2 ns APMU clock period and
 * multi-second workload runs within an int64 (about 106 days of simulated
 * time).
 */

#ifndef APC_SIM_TIME_H
#define APC_SIM_TIME_H

#include <cmath>
#include <cstdint>
#include <string>

namespace apc::sim {

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** One picosecond. */
inline constexpr Tick kPs = 1;
/** One nanosecond in ticks. */
inline constexpr Tick kNs = 1000 * kPs;
/** One microsecond in ticks. */
inline constexpr Tick kUs = 1000 * kNs;
/** One millisecond in ticks. */
inline constexpr Tick kMs = 1000 * kUs;
/** One second in ticks. */
inline constexpr Tick kSec = 1000 * kMs;

/** A tick value used to mean "never" / "not scheduled". */
inline constexpr Tick kTickNever = INT64_MAX;

/**
 * Convert a floating point count of seconds to ticks (rounds to
 * nearest, halves away from zero). `std::llround` handles negative
 * deltas correctly; the previous `+ 0.5`-then-truncate rounded them
 * toward zero (e.g. -0.4 ps became +0).
 */
inline Tick
fromSeconds(double s)
{
    return std::llround(s * static_cast<double>(kSec));
}

/** Convert a floating point count of microseconds to ticks. */
inline Tick
fromMicros(double us)
{
    return std::llround(us * static_cast<double>(kUs));
}

/** Convert a floating point count of nanoseconds to ticks. */
inline Tick
fromNanos(double ns)
{
    return std::llround(ns * static_cast<double>(kNs));
}

/** Convert ticks to floating point seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert ticks to floating point microseconds. */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kUs);
}

/** Convert ticks to floating point nanoseconds. */
constexpr double
toNanos(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNs);
}

/**
 * Period of a clock of the given frequency in Hz, rounded to the nearest
 * tick. E.g. clockPeriod(500e6) == 2 * kNs for the 500 MHz APMU clock.
 */
inline Tick
clockPeriod(double hz)
{
    return std::llround(static_cast<double>(kSec) / hz);
}

/**
 * Round @p t up to the next multiple of @p period. Used by cycle-quantized
 * FSMs: an event observed between clock edges takes effect on the next edge.
 */
constexpr Tick
ceilToPeriod(Tick t, Tick period)
{
    return ((t + period - 1) / period) * period;
}

/** Human-readable rendering of a tick count, e.g. "150ns" or "2.5us". */
std::string formatTime(Tick t);

} // namespace apc::sim

#endif // APC_SIM_TIME_H
