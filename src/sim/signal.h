/**
 * @file
 * Boolean wire/signal model for the APC control fabric.
 *
 * The paper's architecture (Fig. 3) adds a handful of long-distance control
 * and status wires between the APMU and the rest of the SoC: `InCC1`,
 * `InL0s`, `AllowL0s`, `Allow_CKE_OFF`, `Ret`, `PwrOk`, `ClkGate`,
 * `InPC1A`, `WakeUp`. `Signal` models one such wire: a boolean level with
 * edge-notification to subscribers, with optional scheduled (delayed)
 * writes for modeling wire/aggregation propagation delay.
 *
 * `AndTree` models the AND-gate aggregation networks used for `InCC1` and
 * `InL0s` (Sec. 5.1/5.3): N input signals combined into one output signal
 * with a configurable propagation delay.
 */

#ifndef APC_SIM_SIGNAL_H
#define APC_SIM_SIGNAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_function.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace apc::sim {

/**
 * Edge callback: invoked with the new level after a change. Stored
 * inline (no heap allocation) when the captures fit in 32 bytes — every
 * observer in the control fabric is a `this` pointer plus a scalar or
 * two.
 */
using SignalObserver = InplaceFunction<void(bool), 32>;

/** A named boolean wire with edge notification. */
class Signal
{
  public:
    Signal(Simulation &sim, std::string name, bool initial = false)
        : sim_(sim), name_(std::move(name)), value_(initial)
    {}

    Signal(const Signal &) = delete;
    Signal &operator=(const Signal &) = delete;

    /** Current level. */
    bool read() const { return value_; }

    /** Wire name (for logs and debugging). */
    const std::string &name() const { return name_; }

    /**
     * Drive the wire immediately. Observers run synchronously, in
     * subscription order, only on an actual edge.
     */
    void write(bool v);

    /**
     * Drive the wire after @p delay ticks. A subsequent write (immediate
     * or scheduled) supersedes any in-flight scheduled write: last write
     * wins, mirroring a driver that re-drives the wire.
     */
    void writeAfter(Tick delay, bool v);

    /** Convenience: write(true) / write(false). */
    void set() { write(true); }
    void clear() { write(false); }

    /**
     * Subscribe to edges. @return a subscription id for unsubscribe().
     * Observers must not destroy the signal from inside the callback.
     * Safe to call from inside an observer callback: because the
     * observer list must not reallocate while one of its inline
     * callables is executing, a mid-dispatch subscription is parked and
     * merged only after the outermost dispatch unwinds — the new
     * observer sees no edge dispatched before then (including nested
     * edges raised by other observers of the one being dispatched).
     */
    std::uint64_t subscribe(SignalObserver fn);

    /**
     * Remove a subscription. Safe against already-removed ids, and safe
     * to call from inside an observer callback (including
     * self-unsubscription): the entry stops receiving edges immediately
     * but is physically erased only after the dispatch unwinds.
     *
     * "Immediately" includes the edge currently being dispatched: an
     * observer unsubscribed by a peer observer that runs earlier in the
     * same dispatch does NOT receive the in-flight edge. (The pre-pool
     * copy-based dispatch still delivered that edge; no in-tree
     * component unsubscribes a peer mid-dispatch — pll_farm's
     * self-unsubscribe is unaffected either way.)
     */
    void unsubscribe(std::uint64_t id);

    /** Number of rising edges seen so far (for stats/tests). */
    std::uint64_t risingEdges() const { return rising_; }
    /** Number of falling edges seen so far. */
    std::uint64_t fallingEdges() const { return falling_; }

  private:
    struct Sub
    {
        std::uint64_t id; ///< 0 marks an entry unsubscribed mid-dispatch
        SignalObserver fn;
    };

    /** Apply an edge (no generation bump) and notify observers. */
    void applyEdge(bool v);

    Simulation &sim_;
    std::string name_;
    bool value_;
    std::uint64_t nextSub_ = 1;
    std::uint64_t writeGen_ = 0;
    std::uint64_t rising_ = 0;
    std::uint64_t falling_ = 0;
    std::vector<Sub> subs_;
    /** Observers subscribed mid-dispatch, merged when dispatch unwinds. */
    std::vector<Sub> pendingAdds_;
    int dispatchDepth_ = 0;
    bool pendingRemoval_ = false;
};

/**
 * AND-aggregation of input signals into an output signal, with a
 * propagation delay. The output level is recomputed on every input edge;
 * output updates are scheduled after the delay, last-change-wins.
 */
class AndTree
{
  public:
    /**
     * @param sim        owning simulation
     * @param name       name for the output wire
     * @param prop_delay gate + routing propagation delay
     */
    AndTree(Simulation &sim, const std::string &name, Tick prop_delay);

    /** Attach an input. All inputs must be attached before use. */
    void addInput(Signal &in);

    /** The aggregated output wire. */
    Signal &output() { return out_; }
    const Signal &output() const { return out_; }

    /** Combinational value of the AND over inputs right now (pre-delay). */
    bool combinational() const;

  private:
    void onInputEdge();

    Simulation &sim_;
    Tick propDelay_;
    Signal out_;
    std::vector<Signal *> inputs_;
};

} // namespace apc::sim

#endif // APC_SIM_SIGNAL_H
