/**
 * @file
 * Clang Thread Safety Analysis shim for the determinism & concurrency
 * contract.
 *
 * The engine's headline guarantee — reports byte-identical across
 * thread counts and shard layouts — rests on a small set of ownership
 * disciplines: mutex-guarded pool state, single-writer shard slots and
 * trace rings, setup-time-only intern tables. This header makes those
 * disciplines *types* the compiler checks:
 *
 *  - `APC_GUARDED_BY` / `APC_REQUIRES` / `APC_ACQUIRE` / `APC_RELEASE`
 *    map onto clang's capability attributes and vanish on other
 *    compilers (gcc builds are unaffected; the clang CI job builds with
 *    `-Wthread-safety -Werror`).
 *
 *  - `apc::sim::Mutex` / `SharedMutex` + their scoped lock types wrap
 *    the std primitives with annotations, because libstdc++'s
 *    `std::mutex` is invisible to the analysis. Same codegen, checked
 *    capabilities.
 *
 *  - `apc::sim::Role` is a zero-size, zero-cost capability for
 *    ownership that is *not* a lock: "the one worker advancing this
 *    shard", "the single thread recording into this trace ring",
 *    "setup-time single-threaded code". Acquiring a Role compiles to
 *    nothing; its value is that fields marked `APC_GUARDED_BY(role)`
 *    cannot be touched by code that never states (and therefore never
 *    documents) its claim to the role. The cross-thread truth of those
 *    claims is enforced dynamically by the ThreadSanitizer CI job —
 *    static structure here, dynamic discipline there.
 *
 * Annotation guide for new shared state: give the owning class a
 * `Mutex` (real exclusion) or `Role` (phase/single-writer ownership),
 * mark the shared fields `APC_GUARDED_BY`, and either take a scoped
 * guard in each member function or propagate `APC_REQUIRES` to the
 * caller — prefer the latter whenever call sites are few, it pushes
 * the proof obligation to where the threading decision is made.
 */

#ifndef APC_SIM_ANNOTATIONS_H
#define APC_SIM_ANNOTATIONS_H

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#define APC_TSA(x) __attribute__((x))
#else
#define APC_TSA(x) // no-op: gcc/msvc ignore thread-safety attributes
#endif

#define APC_CAPABILITY(x) APC_TSA(capability(x))
#define APC_SCOPED_CAPABILITY APC_TSA(scoped_lockable)
#define APC_GUARDED_BY(x) APC_TSA(guarded_by(x))
#define APC_PT_GUARDED_BY(x) APC_TSA(pt_guarded_by(x))
#define APC_REQUIRES(...) APC_TSA(requires_capability(__VA_ARGS__))
#define APC_REQUIRES_SHARED(...) \
    APC_TSA(requires_shared_capability(__VA_ARGS__))
#define APC_ACQUIRE(...) APC_TSA(acquire_capability(__VA_ARGS__))
#define APC_ACQUIRE_SHARED(...) \
    APC_TSA(acquire_shared_capability(__VA_ARGS__))
#define APC_RELEASE(...) APC_TSA(release_capability(__VA_ARGS__))
#define APC_RELEASE_SHARED(...) \
    APC_TSA(release_shared_capability(__VA_ARGS__))
#define APC_EXCLUDES(...) APC_TSA(locks_excluded(__VA_ARGS__))
#define APC_RETURN_CAPABILITY(x) APC_TSA(lock_returned(x))
#define APC_NO_THREAD_SAFETY_ANALYSIS APC_TSA(no_thread_safety_analysis)

namespace apc::sim {

/** Annotated std::mutex. Lock with MutexLock; CondVar can wait on it. */
class APC_CAPABILITY("mutex") Mutex
{
  public:
    void lock() APC_ACQUIRE() { m_.lock(); }
    void unlock() APC_RELEASE() { m_.unlock(); }

  private:
    friend class MutexLock;
    std::mutex m_;
};

/** Scoped exclusive lock over Mutex (std::unique_lock underneath, so a
 *  CondVar wait can atomically release/reacquire it). */
class APC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) APC_ACQUIRE(m) : lk_(m.m_) {}
    ~MutexLock() APC_RELEASE() = default;
    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable bound to the annotated Mutex. Waits are expressed
 * as explicit `while (!cond) cv.wait(lk);` loops rather than the
 * predicate overload: the analysis cannot see capabilities inside a
 * predicate lambda, while an open-coded loop keeps every guarded read
 * in a scope that visibly holds the lock.
 */
class CondVar
{
  public:
    void wait(MutexLock &lk) { cv_.wait(lk.lk_); }
    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/** Annotated std::shared_mutex (reader/writer). */
class APC_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    void lock() APC_ACQUIRE() { m_.lock(); }
    void unlock() APC_RELEASE() { m_.unlock(); }
    void lock_shared() APC_ACQUIRE_SHARED() { m_.lock_shared(); }
    void unlock_shared() APC_RELEASE_SHARED() { m_.unlock_shared(); }

  private:
    std::shared_mutex m_;
};

/** Scoped exclusive lock over SharedMutex. */
class APC_SCOPED_CAPABILITY SharedMutexExclusiveLock
{
  public:
    explicit SharedMutexExclusiveLock(SharedMutex &m) APC_ACQUIRE(m)
        : m_(m)
    {
        m_.lock();
    }
    ~SharedMutexExclusiveLock() APC_RELEASE() { m_.unlock(); }
    SharedMutexExclusiveLock(const SharedMutexExclusiveLock &) = delete;
    SharedMutexExclusiveLock &
    operator=(const SharedMutexExclusiveLock &) = delete;

  private:
    SharedMutex &m_;
};

/** Scoped shared (reader) lock over SharedMutex. */
class APC_SCOPED_CAPABILITY SharedMutexSharedLock
{
  public:
    explicit SharedMutexSharedLock(SharedMutex &m) APC_ACQUIRE_SHARED(m)
        : m_(m)
    {
        m_.lock_shared();
    }
    ~SharedMutexSharedLock() APC_RELEASE_SHARED() { m_.unlock_shared(); }
    SharedMutexSharedLock(const SharedMutexSharedLock &) = delete;
    SharedMutexSharedLock &
    operator=(const SharedMutexSharedLock &) = delete;

  private:
    SharedMutex &m_;
};

/**
 * Zero-cost capability for non-lock ownership: single-writer rings,
 * one-worker-per-shard slots, setup-time-only tables. acquire/release
 * compile to nothing; the point is that `APC_GUARDED_BY(role)` fields
 * are only reachable from code that states its claim. The claim's
 * cross-thread truth is the TSan job's problem, not the type system's.
 */
class APC_CAPABILITY("role") Role
{
  public:
    void acquire() APC_ACQUIRE() {}
    void release() APC_RELEASE() {}
    void acquire_shared() APC_ACQUIRE_SHARED() {}
    void release_shared() APC_RELEASE_SHARED() {}
};

/** Scoped exclusive claim of a Role (writer side). */
class APC_SCOPED_CAPABILITY RoleGuard
{
  public:
    explicit RoleGuard(Role &r) APC_ACQUIRE(r) : r_(r) { r_.acquire(); }
    ~RoleGuard() APC_RELEASE() { r_.release(); }
    RoleGuard(const RoleGuard &) = delete;
    RoleGuard &operator=(const RoleGuard &) = delete;

  private:
    Role &r_;
};

/** Scoped shared claim of a Role (read-only side: merge, export). */
class APC_SCOPED_CAPABILITY SharedRoleGuard
{
  public:
    explicit SharedRoleGuard(const Role &r) APC_ACQUIRE_SHARED(r)
        : r_(const_cast<Role &>(r))
    {
        r_.acquire_shared();
    }
    ~SharedRoleGuard() APC_RELEASE_SHARED() { r_.release_shared(); }
    SharedRoleGuard(const SharedRoleGuard &) = delete;
    SharedRoleGuard &operator=(const SharedRoleGuard &) = delete;

  private:
    Role &r_;
};

} // namespace apc::sim

#endif // APC_SIM_ANNOTATIONS_H
