#include "sim/rng.h"

#include <cmath>

namespace apc::sim {

double
Rng::boundedPareto(double alpha, double lo, double hi)
{
    // Inverse-CDF sampling of the bounded Pareto distribution.
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(x, -1.0 / alpha);
}

} // namespace apc::sim
