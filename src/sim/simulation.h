/**
 * @file
 * Simulation facade: event queue + RNG + termination control.
 *
 * Every model component takes a `Simulation &` at construction and uses it
 * for scheduling, time queries and randomness. Simulations are
 * deterministic given the seed.
 */

#ifndef APC_SIM_SIMULATION_H
#define APC_SIM_SIMULATION_H

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace apc::obs {
class TraceWriter;
}

namespace apc::sim {

/** Top-level simulation context. */
class Simulation
{
  public:
    /** @param seed RNG seed; the default gives reproducible runs. */
    explicit Simulation(std::uint64_t seed = 42) : rng_(seed) {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** Schedule @p fn at absolute tick @p when. */
    template <typename F>
    EventHandle
    at(Tick when, F &&fn)
    {
        return events_.scheduleAt(when, std::forward<F>(fn));
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    EventHandle
    after(Tick delay, F &&fn)
    {
        return events_.scheduleAfter(delay, std::forward<F>(fn));
    }

    /** Run until @p until (inclusive); see EventQueue::runUntil. */
    std::uint64_t runUntil(Tick until) { return events_.runUntil(until); }

    /** Drain all pending events. */
    std::uint64_t runAll() { return events_.runAll(); }

    /** Execute at most one event. */
    bool step() { return events_.step(); }

    /** The underlying event queue. */
    EventQueue &events() { return events_; }

    /** Simulation-wide random number generator. */
    Rng &rng() { return rng_; }

    /**
     * Trace sink for components living inside this simulation (NIC,
     * memory controllers, ...). Null when tracing is off; recording
     * through it never perturbs simulation behavior (obs/tracer.h).
     */
    obs::TraceWriter *trace() const { return trace_; }
    void setTrace(obs::TraceWriter *w) { trace_ = w; }

    /** Per-request segment instrumentation (latency attribution): off
     *  by default so plain traces stay lean. Like the trace sink it is
     *  pure observation — recording never perturbs behavior. */
    bool traceSegments() const { return traceSegments_; }
    void setTraceSegments(bool on) { traceSegments_ = on; }

  private:
    EventQueue events_;
    Rng rng_;
    obs::TraceWriter *trace_ = nullptr;
    bool traceSegments_ = false;
};

} // namespace apc::sim

#endif // APC_SIM_SIMULATION_H
