/**
 * @file
 * Deterministic random number generation for workload models.
 *
 * Wraps a 64-bit Mersenne Twister with the distributions the workload
 * generators need. Keeping one generator per Simulation makes runs
 * reproducible from the seed alone.
 */

#ifndef APC_SIM_RNG_H
#define APC_SIM_RNG_H

#include <cmath>
#include <cstdint>
#include <random>

namespace apc::sim {

/** Simulation random source with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : gen_(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(gen_);
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
    }

    /** Exponential with the given mean (not rate). */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(gen_);
    }

    /**
     * Log-normal parameterized by the mean and sigma of the *resulting*
     * distribution's logarithm scale: lognormal(m, s) has median exp(m).
     */
    double
    lognormal(double log_mean, double log_sigma)
    {
        return std::lognormal_distribution<double>(log_mean,
                                                   log_sigma)(gen_);
    }

    /**
     * Log-normal chosen to have arithmetic mean @p mean with shape
     * @p log_sigma. Convenient for "mean service time = X" workloads.
     */
    double
    lognormalWithMean(double mean, double log_sigma)
    {
        const double mu = std::log(mean) - 0.5 * log_sigma * log_sigma;
        return lognormal(mu, log_sigma);
    }

    /** Bernoulli with probability @p p of true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Normal distribution. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(gen_);
    }

    /** Bounded Pareto (heavy tail) with shape @p alpha on [lo, hi]. */
    double boundedPareto(double alpha, double lo, double hi);

    /** Access the raw engine (for std distributions not wrapped here). */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace apc::sim

#endif // APC_SIM_RNG_H
