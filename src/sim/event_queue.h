/**
 * @file
 * Discrete-event queue for the AgilePkgC simulator.
 *
 * Events are (time, sequence, callback) triples; the monotonically
 * increasing sequence number makes same-tick ordering deterministic
 * (FIFO among events scheduled for the same tick). The firing order is
 * the total order by (when, seq) regardless of which internal container
 * an event lands in, so results are bit-identical to a plain binary
 * heap.
 *
 * The implementation is built for the fleet-sweep hot path (millions of
 * short-horizon timers per run):
 *
 *  - **Slab-pooled event records.** Callbacks live in a pooled
 *    `EventRecord` with an inline small-buffer callable
 *    (`InplaceFunction`), so scheduling performs no `std::function` or
 *    `shared_ptr` heap allocation. Slots are recycled through a free
 *    list; `EventHandle`s carry a generation counter and go stale (not
 *    dangling) when their slot is reused.
 *
 *  - **Near-future timer wheel.** Events within ~2 ms of the wheel
 *    window land in one of 2048 ~1 µs buckets and bypass the binary
 *    heap entirely; a bucket is sorted once when the queue advances
 *    into it. Far-future events (and events landing in an
 *    already-consumed bucket) fall back to the heap. This absorbs the
 *    common short timers — C-state hysteresis, rx-usecs coalescing,
 *    RTO, cap sampling — at O(1) push instead of O(log n) heap churn.
 *
 *  - **Tombstone reaping.** `EventHandle::cancel()` is O(1) (flag +
 *    immediate callback destruction); dead entries are dropped lazily
 *    at the consumption point and compacted eagerly once they
 *    outnumber live events, so cancel/reschedule-heavy workloads no
 *    longer grow the queue without bound.
 */

#ifndef APC_SIM_EVENT_QUEUE_H
#define APC_SIM_EVENT_QUEUE_H

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"

namespace apc::sim {

/**
 * Callback type executed when an event fires. Inline capacity of 64
 * bytes covers a `this` pointer plus several captured scalars — the
 * entire simulator schedules without a callback heap allocation.
 */
using EventFn = InplaceFunction<void(), 64>;

class EventQueue;

namespace detail {
/**
 * Debug-build liveness probe: true while @p q is a constructed, not yet
 * destroyed EventQueue whose debugEpoch() equals @p epoch. Backed by a
 * registry of live queues (so it never dereferences @p q) and used to
 * assert that a handle is not operated on after its queue's
 * destruction. Matching on the per-queue epoch — a process-unique id
 * minted at construction — keeps the probe reliable even when a new
 * queue is allocated at the destroyed queue's address (common in fleet
 * sweeps that recycle same-sized per-server Simulations). Always true
 * in NDEBUG builds.
 */
bool queueAlive(const EventQueue *q, std::uint64_t epoch);
} // namespace detail

/**
 * Cancellable reference to a scheduled event.
 *
 * Default-constructed handles are inert. Handles are cheap to copy
 * (four words, no ownership); all copies refer to the same underlying
 * event. A handle whose event has fired — or whose pooled slot has been
 * recycled for a newer event — compares the stored generation against
 * the slot's and degrades to a no-op, so stale handles can never cancel
 * somebody else's event.
 *
 * Handles reference their EventQueue without owning it (unlike the
 * previous shared_ptr-based design): cancel()/pending() must not be
 * called after the queue is destroyed. In practice every handle lives
 * in a component owned alongside the queue's Simulation, so normal
 * teardown is safe. Debug builds assert on such use-after-destruction
 * via a live-queue registry (see detail::queueAlive) instead of
 * dereferencing freed memory; release builds do not pay for the check.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. Safe to call repeatedly. */
    inline void cancel();

    /** @return true if this handle refers to a not-yet-fired event. */
    inline bool pending() const;

    /** @return true if this handle refers to any event at all. */
    bool valid() const { return queue_ != nullptr; }

  private:
    friend class EventQueue;

    EventHandle(EventQueue *queue, std::uint64_t queue_epoch,
                std::uint32_t slot, std::uint32_t gen)
        : queue_(queue), queueEpoch_(queue_epoch), slot_(slot), gen_(gen)
    {}

    EventQueue *queue_ = nullptr;
    /** The queue's debugEpoch(), for the use-after-destroy assert. */
    std::uint64_t queueEpoch_ = 0;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * The central event queue. Owns simulated time: time only advances when
 * events are popped.
 */
class EventQueue
{
  public:
    /** Wheel bucket width: 2^20 ps ≈ 1.05 µs. */
    static constexpr int kBucketShift = 20;
    static constexpr Tick kBucketTicks = Tick(1) << kBucketShift;
    /** Bucket count (power of two for mask indexing). */
    static constexpr std::size_t kNumBuckets = 2048;
    /** Wheel horizon: events beyond it go to the heap (~2.1 ms). */
    static constexpr Tick kWheelSpan =
        kBucketTicks * static_cast<Tick>(kNumBuckets);

    EventQueue();  // registers in the debug live-queue registry
    ~EventQueue(); // unregisters
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when. The callable is
     * constructed directly into the pooled event record — no temporary
     * `EventFn`, no relocation, no heap allocation when it fits inline.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug and
     *      asserts in debug builds (clamped to now() otherwise).
     */
    template <typename F>
    EventHandle
    scheduleAt(Tick when, F &&fn)
    {
        const std::uint32_t slot = prepareSchedule(when);
        Record &rec = records_[slot];
        rec.fn = std::forward<F>(fn);
        return EventHandle(this, epoch_, slot, rec.gen);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&fn)
    {
        return scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Run events until the queue is empty or simulated time would exceed
     * @p until. Events scheduled exactly at @p until do run. Afterwards,
     * now() == max(now, until) if the limit was reached.
     *
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue drains completely. @return events executed. */
    std::uint64_t runAll();

    /**
     * Execute at most one pending event.
     * @return true if an event was executed.
     */
    bool step();

    /** Number of live (scheduled, not cancelled) events. */
    std::size_t pendingEvents() const { return live_; }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Entries physically present in the internal containers, including
     * cancelled-but-unreaped tombstones. Compaction keeps this within a
     * small factor of pendingEvents(); exposed for regression tests.
     */
    std::size_t internalEntries() const { return live_ + dead_; }

    /** Cancelled entries awaiting reaping. */
    std::size_t deadEntries() const { return dead_; }

    /** Allocated record-pool slots (high-water mark of internalEntries). */
    std::size_t poolCapacity() const { return records_.size(); }

    /** Eager tombstone compaction passes run so far. */
    std::uint64_t compactions() const { return compactions_; }

    /**
     * Process-unique id minted at construction (0 in NDEBUG builds);
     * pairs with detail::queueAlive() for use-after-destroy detection.
     */
    std::uint64_t debugEpoch() const { return epoch_; }

    /** Events that entered through the timer wheel / the binary heap. */
    std::uint64_t wheelScheduled() const { return wheelScheduled_; }
    std::uint64_t heapScheduled() const { return heapScheduled_; }

  private:
    friend class EventHandle;

    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    /** Pooled event record; the callable lives inline here. */
    struct Record
    {
        EventFn fn;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = kNoSlot;
        bool scheduled = false;
        bool cancelled = false;
    };

    /** Lightweight entry stored in the wheel buckets and the heap. */
    struct Ref
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Heap comparator: min-heap by (when, seq). */
    struct RefLater
    {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static std::size_t
    bucketIndex(Tick when)
    {
        return static_cast<std::size_t>(when >> kBucketShift) &
            (kNumBuckets - 1);
    }

    bool refDead(const Ref &r) const { return records_[r.slot].cancelled; }

    /**
     * Allocate a record, assign its sequence number, and place the
     * (when, seq, slot) ref in the wheel or heap. The caller fills in
     * the callable. @return the record slot.
     */
    std::uint32_t prepareSchedule(Tick when);

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);
    void loadNextBucket();
    /** Circular bucket distance from @p from to the next bucket whose
     *  occupancy bit is set (1 when the bitmap is clean). */
    std::size_t nextOccupiedDistance(std::size_t from) const;
    bool prepareNext();
    bool takeNext(Ref &out);
    bool peekWhen(Tick &when);
    void maybeCompact();
    void compact();

    // EventHandle backends.
    void cancelEvent(std::uint32_t slot, std::uint32_t gen);
    bool
    eventPending(std::uint32_t slot, std::uint32_t gen) const
    {
        return slot < records_.size() && records_[slot].gen == gen &&
            records_[slot].scheduled && !records_[slot].cancelled;
    }

    /** See debugEpoch(). Assigned in the constructor, debug builds only. */
    std::uint64_t epoch_ = 0;

    std::vector<Record> records_;
    std::uint32_t freeHead_ = kNoSlot;

    /** Far-future / already-consumed-bucket events, min-heap by (when, seq). */
    std::vector<Ref> heap_;

    /** Near-future wheel. Buckets hold unsorted refs until consumed. */
    std::array<std::vector<Ref>, kNumBuckets> buckets_;
    /**
     * Bucket-occupancy bitmap (bit = bucket may be non-empty). Lets a
     * sparse advance jump straight to the next occupied bucket instead
     * of stepping empty ones — a fleet of mostly-idle servers advanced
     * in ~200 µs epochs otherwise walks ~200 empty buckets per server
     * per epoch. Bits can be stale-set (bucket emptied by compaction);
     * they are cleared when visited. A clear bit is always truthful.
     */
    std::array<std::uint64_t, kNumBuckets / 64> occupied_{};
    std::size_t wheelCount_ = 0;
    /** Start tick of the first not-yet-consumed bucket (bucket-aligned). */
    Tick wheelNext_ = 0;

    /** The bucket being drained: sorted by (when, seq), consumed in order. */
    std::vector<Ref> run_;
    std::size_t runPos_ = 0;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
    std::size_t dead_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t wheelScheduled_ = 0;
    std::uint64_t heapScheduled_ = 0;
};

inline void
EventHandle::cancel()
{
    if (!queue_)
        return;
    assert(detail::queueAlive(queue_, queueEpoch_) &&
           "EventHandle::cancel() after its EventQueue was destroyed");
    queue_->cancelEvent(slot_, gen_);
}

inline bool
EventHandle::pending() const
{
    if (!queue_)
        return false;
    assert(detail::queueAlive(queue_, queueEpoch_) &&
           "EventHandle::pending() after its EventQueue was destroyed");
    return queue_->eventPending(slot_, gen_);
}

} // namespace apc::sim

#endif // APC_SIM_EVENT_QUEUE_H
