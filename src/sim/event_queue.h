/**
 * @file
 * Discrete-event queue for the AgilePkgC simulator.
 *
 * Events are (time, sequence, callback) triples kept in a binary min-heap.
 * The monotonically increasing sequence number makes same-tick ordering
 * deterministic (FIFO among events scheduled for the same tick).
 *
 * Scheduled events can be cancelled via the EventHandle returned at
 * scheduling time; cancellation is O(1) (a tombstone flag) and the dead
 * entry is dropped lazily when popped.
 */

#ifndef APC_SIM_EVENT_QUEUE_H
#define APC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace apc::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Cancellable reference to a scheduled event.
 *
 * Default-constructed handles are inert. Handles are cheap to copy; all
 * copies refer to the same underlying event.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. Safe to call repeatedly. */
    void
    cancel()
    {
        if (state_)
            state_->cancelled = true;
    }

    /** @return true if this handle refers to a not-yet-fired event. */
    bool
    pending() const
    {
        return state_ && !state_->cancelled && !state_->fired;
    }

    /** @return true if this handle refers to any event at all. */
    bool valid() const { return state_ != nullptr; }

  private:
    friend class EventQueue;

    struct State
    {
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<State> state_;
};

/**
 * The central event queue. Owns simulated time: time only advances when
 * events are popped.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug and
     *      asserts in debug builds (clamped to now() otherwise).
     */
    EventHandle scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle
    scheduleAfter(Tick delay, EventFn fn)
    {
        return scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Run events until the queue is empty or simulated time would exceed
     * @p until. Events scheduled exactly at @p until do run. Afterwards,
     * now() == max(now, until) if the limit was reached.
     *
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue drains completely. @return events executed. */
    std::uint64_t runAll();

    /**
     * Execute at most one pending event.
     * @return true if an event was executed.
     */
    bool step();

    /**
     * Number of events still pending. Cancelled events are only removed
     * lazily, so this is an upper bound until the queue is next polled.
     */
    std::size_t pendingEvents() const { return live_; }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop dead entries; @return true if a live entry is on top. */
    bool skipDead();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
};

} // namespace apc::sim

#endif // APC_SIM_EVENT_QUEUE_H
