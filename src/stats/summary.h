/**
 * @file
 * Small running-summary accumulators (mean / min / max / variance).
 */

#ifndef APC_STATS_SUMMARY_H
#define APC_STATS_SUMMARY_H

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace apc::stats {

/** Welford running summary over doubles. */
class Summary
{
  public:
    /** Record one sample. */
    void
    record(double v)
    {
        ++n_;
        if (n_ == 1) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        const double d = v - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (v - mean_);
        sum_ += v;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population variance; 0 with fewer than 2 samples. */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /**
     * Fold another summary into this one (Chan et al. parallel
     * combination), as if every sample of @p other had been recorded
     * here. Exact for count/sum/min/max/mean; variance combines the M2
     * moments, so pooled variance matches the single-stream result.
     */
    void
    merge(const Summary &other)
    {
        if (other.n_ == 0)
            return;
        if (n_ == 0) {
            *this = other;
            return;
        }
        const double d = other.mean_ - mean_;
        const auto na = static_cast<double>(n_);
        const auto nb = static_cast<double>(other.n_);
        const double nt = na + nb;
        mean_ += d * nb / nt;
        m2_ += other.m2_ + d * d * na * nb / nt;
        n_ += other.n_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    /** Reset to empty. */
    void
    clear()
    {
        n_ = 0;
        mean_ = m2_ = sum_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace apc::stats

#endif // APC_STATS_SUMMARY_H
