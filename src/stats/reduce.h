/**
 * @file
 * Fixed-shape parallel reduction for mergeable statistics.
 *
 * Folding 10k per-server histograms into a fleet report is an
 * O(servers x buckets) merge chain; done sequentially it serializes the
 * end of every sweep. `reduceFixed` splits the items into leaves of a
 * fixed width, accumulates each leaf independently (parallelizable),
 * then folds the leaf accumulators left-to-right.
 *
 * The reduction SHAPE depends only on (n, leaf_width) — never on the
 * worker count — so results that are sensitive to merge order
 * (floating-point sums inside accumulators) are still bit-identical
 * across any thread or shard count. Within a leaf, items are
 * accumulated in ascending index order, exactly like the sequential
 * fold the callers replaced.
 */

#ifndef APC_STATS_REDUCE_H
#define APC_STATS_REDUCE_H

#include <cstddef>
#include <utility>
#include <vector>

namespace apc::stats {

/**
 * Reduce items [0, n) into one accumulator.
 *
 * @param n          item count
 * @param leaf_width items per leaf; must not depend on thread count if
 *                   bit-reproducibility across thread counts is wanted
 * @param init       prototype accumulator (carries e.g. histogram
 *                   binning); every leaf starts from a copy of it
 * @param accum      accum(acc, i): fold item i into a leaf accumulator
 * @param merge      merge(acc, other): fold one accumulator into another
 * @param pfor       pfor(count, fn): run fn(0..count-1), possibly in
 *                   parallel (e.g. ThreadPool::parallelFor); leaves are
 *                   independent
 */
template <typename Acc, typename AccumFn, typename MergeFn,
          typename ParallelFor>
Acc
reduceFixed(std::size_t n, std::size_t leaf_width, const Acc &init,
            AccumFn accum, MergeFn merge, ParallelFor &&pfor)
{
    Acc out = init;
    if (n == 0)
        return out;
    if (leaf_width == 0)
        leaf_width = 1;
    const std::size_t leaves = (n + leaf_width - 1) / leaf_width;
    if (leaves <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            accum(out, i);
        return out;
    }
    std::vector<Acc> part(leaves, init);
    pfor(leaves, [&](std::size_t l) {
        const std::size_t b = l * leaf_width;
        const std::size_t e = b + leaf_width < n ? b + leaf_width : n;
        for (std::size_t i = b; i < e; ++i)
            accum(part[l], i);
    });
    // Left-to-right fold in fixed leaf order: deterministic, and cheap
    // relative to the leaf stage (leaves/leaf_width of the work).
    for (Acc &p : part)
        merge(out, p);
    return out;
}

} // namespace apc::stats

#endif // APC_STATS_REDUCE_H
