#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace apc::stats {

Histogram::Histogram(double min_value, double max_value, int bins_per_decade)
    : minValue_(min_value), maxValue_(max_value),
      logMin_(std::log10(min_value)),
      binsPerDecade_(static_cast<double>(bins_per_decade))
{
    assert(min_value > 0 && max_value > min_value && bins_per_decade > 0);
    const double decades = std::log10(max_value) - logMin_;
    // +2 edge bins for underflow and overflow.
    bins_.assign(static_cast<std::size_t>(
                     std::ceil(decades * binsPerDecade_)) + 2, 0);
}

std::size_t
Histogram::indexOf(double v) const
{
    if (!(v >= minValue_))
        return 0; // underflow (also catches NaN and non-positive)
    if (v >= maxValue_)
        return bins_.size() - 1; // overflow
    const double pos = (std::log10(v) - logMin_) * binsPerDecade_;
    auto idx = static_cast<std::size_t>(pos) + 1;
    return std::min(idx, bins_.size() - 2);
}

void
Histogram::record(double v, std::uint64_t weight)
{
    if (weight == 0)
        return;
    if (!std::isfinite(v)) {
        // Every ordered comparison on NaN is false, so it would land in
        // the underflow bin; NaN and ±inf alike would poison
        // sum/mean/min/max forever. Reject both.
        nanCount_ += weight;
        return;
    }
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    bins_[indexOf(v)] += weight;
    count_ += weight;
    sum_ += v * static_cast<double>(weight);
}

double
Histogram::binLowerEdge(std::size_t i) const
{
    if (i == 0)
        return 0.0;
    return std::pow(10.0,
                    logMin_ + static_cast<double>(i - 1) / binsPerDecade_);
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    const double target = q * static_cast<double>(count_);
    double cum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double c = static_cast<double>(bins_[i]);
        if (cum + c >= target && c > 0) {
            const double frac = (target - cum) / c;
            const double lo = i == 0 ? 0.0 : binLowerEdge(i);
            const double hi = i + 1 >= bins_.size()
                ? max_ : binLowerEdge(i + 1);
            double v = lo + frac * (hi - lo);
            return std::clamp(v, min_, max_);
        }
        // lint:allow(float-accum) fixed bin-index order; the bin
        // contents are integer counts merged deterministically
        cum += c;
    }
    return max_;
}

double
Histogram::fractionBetween(double lo, double hi) const
{
    if (count_ == 0 || hi <= lo)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (!bins_[i])
            continue;
        const double bl = i == 0 ? 0.0 : binLowerEdge(i);
        const double bh = i + 1 >= bins_.size()
            ? maxValue_ * 10 : binLowerEdge(i + 1);
        if (bh <= lo || bl >= hi)
            continue;
        const double overlap_lo = std::max(bl, lo);
        const double overlap_hi = std::min(bh, hi);
        const double w = bh > bl ? (overlap_hi - overlap_lo) / (bh - bl)
                                 : 1.0;
        // lint:allow(float-accum) fixed bin-index order over merged
        // integer counts; layout-invariant
        acc += w * static_cast<double>(bins_[i]);
    }
    return acc / static_cast<double>(count_);
}

bool
Histogram::merge(const Histogram &other)
{
    if (!sameBinning(other))
        return false;
    nanCount_ += other.nanCount_;
    if (other.count_ == 0)
        return true;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
}

std::string
Histogram::toCsv() const
{
    std::string out = "bin_lower,bin_upper,count\n";
    char line[96];
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (!bins_[i])
            continue;
        const double lo = binLowerEdge(i);
        const double hi =
            i + 1 < bins_.size() ? binLowerEdge(i + 1) : max_;
        std::snprintf(line, sizeof(line), "%.6g,%.6g,%llu\n", lo, hi,
                      static_cast<unsigned long long>(bins_[i]));
        out += line;
    }
    if (nanCount_) {
        std::snprintf(line, sizeof(line), "nan,nan,%llu\n",
                      static_cast<unsigned long long>(nanCount_));
        out += line;
    }
    return out;
}

void
Histogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = 0;
    nanCount_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
}

} // namespace apc::stats
