/**
 * @file
 * Log-binned histogram for latency and idle-period distributions.
 *
 * Values are binned on a logarithmic grid (configurable bins per decade)
 * between a minimum and maximum trackable value; under/overflows are
 * counted in edge bins. Quantiles are answered by walking the bins and
 * interpolating within the matched bin, giving a relative error bounded by
 * the bin width (~3% at 32 bins/decade) — plenty for reproducing the
 * paper's distribution plots (Fig. 6c) and tail latencies (Fig. 5).
 */

#ifndef APC_STATS_HISTOGRAM_H
#define APC_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace apc::stats {

/** Log-binned histogram over positive doubles. */
class Histogram
{
  public:
    /**
     * @param min_value      lower edge of the tracked range (>0)
     * @param max_value      upper edge of the tracked range
     * @param bins_per_decade resolution of the log grid
     */
    explicit Histogram(double min_value = 1.0, double max_value = 1e12,
                       int bins_per_decade = 32);

    /**
     * Record one sample. Non-positive samples count into the underflow;
     * non-finite samples (NaN, ±inf — either would poison
     * sum/mean/min/max) are rejected (tracked in nanCount(), excluded
     * from count/sum/quantiles).
     */
    void record(double v) { record(v, 1); }

    /** Record a sample with an integer weight. */
    void record(double v, std::uint64_t weight);

    /** Number of recorded samples (including weights; excludes NaN/inf). */
    std::uint64_t count() const { return count_; }

    /** Rejected non-finite samples, NaN or ±inf (weighted). */
    std::uint64_t nanCount() const { return nanCount_; }

    /** Sum of recorded samples (weighted). */
    double sum() const { return sum_; }

    /** Arithmetic mean; 0 if empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Smallest and largest recorded sample (exact, not binned). */
    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /**
     * Approximate quantile (q in [0,1]). Interpolates within the matched
     * bin; q=0 returns minSample(), q=1 returns maxSample(). 0 if empty.
     */
    double quantile(double q) const;

    /** Shorthand quantiles. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /**
     * Fraction of samples with value in [lo, hi). Bin-resolution
     * approximate (partial bins are pro-rated linearly in log space).
     */
    double fractionBetween(double lo, double hi) const;

    /**
     * Fold another histogram into this one without losing percentile
     * fidelity: both must use identical binning (min/max/bins-per-decade),
     * so merged quantiles equal the quantiles of the pooled samples up to
     * the usual bin resolution. @return false (no-op) on binning mismatch.
     */
    bool merge(const Histogram &other);

    /** @return true if @p other uses the same binning grid. */
    bool
    sameBinning(const Histogram &other) const
    {
        return minValue_ == other.minValue_ &&
            maxValue_ == other.maxValue_ &&
            binsPerDecade_ == other.binsPerDecade_;
    }

    /** Reset to empty, keeping the binning. */
    void clear();

    /**
     * CSV rendering for plotting: a `bin_lower,bin_upper,count` header
     * plus one row per non-empty bin (underflow has lower edge 0; the
     * overflow bin's upper edge is the largest recorded sample). If any
     * NaN samples were rejected, a final `nan,nan,<count>` row reports
     * them. An empty histogram renders as just the header.
     */
    std::string toCsv() const;

    /** Bin count (for iteration/plotting). */
    std::size_t numBins() const { return bins_.size(); }
    /** Count in bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return bins_[i]; }
    /** Lower edge of bin @p i. */
    double binLowerEdge(std::size_t i) const;

  private:
    std::size_t indexOf(double v) const;

    double minValue_;
    double maxValue_;
    double logMin_;
    double binsPerDecade_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t nanCount_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace apc::stats

#endif // APC_STATS_HISTOGRAM_H
