/**
 * @file
 * Exact-rank percentile machinery shared by the blame report
 * (obs/critpath.cc) and the SLO windows (obs/slo.cc).
 *
 * Everything here works on *ranks*, not interpolated quantiles: the
 * p-quantile of n samples is the smallest element with ceil(n*p)
 * samples at or below it. Exact ranks keep the percentile cut
 * deterministic (no floating-point quantile interpolation), so two
 * runs that produced the same sample multiset always report the same
 * percentile values and band memberships.
 */

#ifndef APC_STATS_RANK_H
#define APC_STATS_RANK_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace apc::stats {

/**
 * Number of samples at or below the p = num/den quantile in a ranked
 * population of @p n: ceil(n * num / den), computed in integers.
 */
constexpr std::size_t
exactRankCount(std::size_t n, std::uint64_t num, std::uint64_t den)
{
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(n) * num + den - 1) / den);
}

/**
 * The report percentile bands: each ranked sample falls into exactly
 * one of <=p50, p50-p95, p95-p99, p99-p999, >p999.
 */
inline constexpr std::size_t kNumPercentileBands = 5;

/** Display label for band @p b ("p50" .. "p100"). */
constexpr const char *
percentileBandLabel(std::size_t b)
{
    constexpr const char *labels[kNumPercentileBands] = {
        "p50", "p95", "p99", "p999", "p100"};
    return labels[b];
}

/**
 * Exact-rank band edges over @p n ranked samples: band b spans ranks
 * [edges[b], edges[b+1]). Edges are cumulative counts, so the bands
 * partition 0..n exactly.
 */
constexpr std::array<std::size_t, kNumPercentileBands + 1>
percentileBandEdges(std::size_t n)
{
    return {0,
            exactRankCount(n, 1, 2),
            exactRankCount(n, 19, 20),
            exactRankCount(n, 99, 100),
            exactRankCount(n, 999, 1000),
            n};
}

/**
 * Exact-rank p = num/den quantile of an ascending-sorted sequence:
 * the smallest element such that ceil(n * p) elements are <= it.
 * The p0 edge case returns the minimum; empty input returns T{}.
 */
template <typename T>
T
quantileSorted(const std::vector<T> &sorted, std::uint64_t num,
               std::uint64_t den)
{
    if (sorted.empty())
        return T{};
    std::size_t k = exactRankCount(sorted.size(), num, den);
    if (k == 0)
        k = 1;
    return sorted[k - 1];
}

} // namespace apc::stats

#endif // APC_STATS_RANK_H
