/**
 * @file
 * Time-in-state accounting, the simulator's equivalent of the hardware
 * C-state residency reporting counters the paper reads (Sec. 6).
 *
 * `ResidencyCounter<E>` tracks how long an entity spends in each value of
 * an enum-like state space, plus transition counts — exactly what the
 * paper's residency plots (Fig. 6a, 8a, 9a) and Eq. 1 need.
 */

#ifndef APC_STATS_RESIDENCY_H
#define APC_STATS_RESIDENCY_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace apc::stats {

/**
 * Residency counter over a small enum state space.
 *
 * @tparam N number of states; states are indexed by size_t casts of the
 *           enum values, which must be dense in [0, N).
 */
template <std::size_t N>
class ResidencyCounter
{
  public:
    /** @param start time at which tracking begins, in state @p initial. */
    explicit ResidencyCounter(std::size_t initial = 0,
                              sim::Tick start = 0)
        : state_(initial), since_(start), begin_(start)
    {
        time_.fill(0);
        transitions_.fill(0);
    }

    /** Record a state change at time @p now. No-op if unchanged. */
    void
    transitionTo(std::size_t next, sim::Tick now)
    {
        if (next == state_)
            return;
        time_[state_] += now - since_;
        since_ = now;
        state_ = next;
        ++transitions_[next];
    }

    /** Current state index. */
    std::size_t state() const { return state_; }

    /** Total time accumulated in @p s, up to @p now. */
    sim::Tick
    timeIn(std::size_t s, sim::Tick now) const
    {
        sim::Tick t = time_[s];
        if (s == state_)
            t += now - since_;
        return t;
    }

    /** Fraction of elapsed time spent in @p s, in [0,1]. */
    double
    residency(std::size_t s, sim::Tick now) const
    {
        const sim::Tick total = now - begin_;
        if (total <= 0)
            return 0.0;
        return static_cast<double>(timeIn(s, now))
            / static_cast<double>(total);
    }

    /** Number of entries into state @p s. */
    std::uint64_t enterCount(std::size_t s) const { return transitions_[s]; }

    /** Time tracking started. */
    sim::Tick begin() const { return begin_; }

    /** Reset all counters, staying in the current state. */
    void
    reset(sim::Tick now)
    {
        time_.fill(0);
        transitions_.fill(0);
        since_ = now;
        begin_ = now;
    }

  private:
    std::array<sim::Tick, N> time_;
    std::array<std::uint64_t, N> transitions_;
    std::size_t state_;
    sim::Tick since_;
    sim::Tick begin_;
};

} // namespace apc::stats

#endif // APC_STATS_RESIDENCY_H
