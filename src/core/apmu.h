/**
 * @file
 * Agile Power Management Unit (APMU) — the paper's core contribution
 * (Sec. 4.1, Fig. 4).
 *
 * The APMU is a hardware FSM (500 MHz) placed in the north-cap next to
 * the firmware GPMU. It watches two aggregated status wires — `InCC1`
 * (all cores in CC1, AND-tree over the per-core PMA outputs) and `InL0s`
 * (all high-speed IOs resident in their shallow states) — and drives the
 * PC1A entry/exit flow:
 *
 *   PC0 --all cores CC1--> ACC1: assert AllowL0s
 *   ACC1 --&InL0s--> entry: (i) ClkGate CLM, then Ret to the CLM FIVRs
 *                            (non-blocking voltage ramp);
 *                           (ii) assert Allow_CKE_OFF  ==> PC1A (InPC1A)
 *   PC1A --wake (InL0s drop / InCC1 drop / GPMU WakeUp)-->
 *         exit: (i) unset Ret, wait PwrOk, clock-ungate;
 *               (ii) unset Allow_CKE_OFF  ==> ACC1
 *   ACC1 --core interrupt--> PC0: deassert AllowL0s
 *
 * All system PLLs stay locked throughout (unless the keep-PLLs-on
 * ablation is disabled), which is what keeps the exit latency at
 * nanosecond scale. Entry is ~18 ns of blocking work; exit is bounded by
 * the FIVR retention->nominal ramp (≤150 ns); worst-case entry+exit is
 * below the paper's conservative 200 ns bound.
 */

#ifndef APC_CORE_APMU_H
#define APC_CORE_APMU_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/apc_config.h"
#include "cpu/core.h"
#include "dram/memory_controller.h"
#include "io/io_link.h"
#include "sim/signal.h"
#include "sim/simulation.h"
#include "stats/summary.h"
#include "uncore/clm.h"
#include "uncore/pll_farm.h"

namespace apc::core {

/** The hardware PC1A controller. */
class Apmu
{
  public:
    /** FSM state (Fig. 4; Entering/Exiting are the flow transients). */
    enum class State : std::size_t
    {
        Pc0 = 0,
        Acc1 = 1,
        Entering = 2,
        Pc1a = 3,
        Exiting = 4,
    };
    static constexpr std::size_t kNumStates = 5;

    /** What ended the last PC1A residency. */
    enum class WakeReason
    {
        None,
        IoTraffic,     ///< a link dropped out of L0s/L0p
        CoreInterrupt, ///< a core left CC1
        GpmuEvent,     ///< explicit GPMU WakeUp (timer, thermal)
    };

    /**
     * Build and wire the APMU.
     *
     * @param gpmu_wake optional GPMU WakeUp wire to subscribe to
     */
    Apmu(sim::Simulation &sim, const ApcConfig &cfg,
         std::vector<cpu::Core *> cores, std::vector<io::IoLink *> links,
         std::vector<dram::MemoryController *> mcs, uncore::Clm *clm,
         uncore::PllFarm *plls, sim::Signal *gpmu_wake = nullptr);

    State state() const { return state_; }

    /** `InPC1A` status wire to the GPMU. */
    sim::Signal &inPc1a() { return inPc1a_; }

    /** Aggregated all-cores-in-CC1 wire (post AND-tree). */
    sim::Signal &allCoresCc1() { return allCc1_->output(); }

    /** Aggregated all-IOs-shallow wire (post AND-tree). */
    sim::Signal &allIosL0s() { return allL0s_->output(); }

    /** Register a state-change observer (Soc residency tracking). */
    void
    onStateChange(std::function<void(State)> fn)
    {
        observers_.push_back(std::move(fn));
    }

    /** Completed PC1A residencies. */
    std::uint64_t pc1aEntries() const { return pc1aEntries_; }

    /** Reason for the most recent wake. */
    WakeReason lastWakeReason() const { return lastWake_; }

    /** Entry-flow latency (ACC1-with-IOs-idle -> PC1A), nanoseconds. */
    const stats::Summary &entryLatencyNs() const { return entryLatencyNs_; }

    /** Exit-flow latency (wake -> fabric restored / ACC1), nanoseconds. */
    const stats::Summary &exitLatencyNs() const { return exitLatencyNs_; }

    const ApcConfig &config() const { return cfg_; }

  private:
    void setState(State s);
    void onAllCc1Edge(bool level);
    void onAllL0sEdge(bool level);
    /** PC0 -> ACC1: allow shallow IO states. */
    void toAcc1();
    /** ACC1 -> PC0 on a core interrupt: disallow shallow IO states. */
    void toPc0();
    /** Entry gate: run beginEntry() now or after the hysteresis. */
    void maybeBeginEntry();
    /** ACC1 + &InL0s: run the two-branch entry flow. */
    void beginEntry();
    void finishEntry();
    /** A wake event: start or queue the exit flow. */
    void wake(WakeReason reason);
    void startExit();
    void finishExit();
    /** Post-exit: settle into ACC1 or PC0 and re-evaluate conditions. */
    void evaluate();

    sim::Simulation &sim_;
    ApcConfig cfg_;
    std::vector<cpu::Core *> cores_;
    std::vector<io::IoLink *> links_;
    std::vector<dram::MemoryController *> mcs_;
    uncore::Clm *clm_;
    uncore::PllFarm *plls_;
    State state_ = State::Pc0;
    sim::Signal inPc1a_;
    std::unique_ptr<sim::AndTree> allCc1_;
    std::unique_ptr<sim::AndTree> allL0s_;
    std::uint64_t flowGen_ = 0; ///< invalidates stale flow events
    bool wakePending_ = false;
    WakeReason lastWake_ = WakeReason::None;
    int exitJoinsPending_ = 0;
    sim::Tick entryStart_ = 0;
    sim::Tick exitStart_ = 0;
    /** Far in the past: the first entry is never rate-limited. */
    sim::Tick lastExit_ = -(sim::kTickNever / 2);
    sim::EventHandle hysteresisEvent_;
    std::uint64_t pc1aEntries_ = 0;
    stats::Summary entryLatencyNs_;
    stats::Summary exitLatencyNs_;
    std::vector<std::function<void(State)>> observers_;
};

} // namespace apc::core

#endif // APC_CORE_APMU_H
