/**
 * @file
 * AgilePkgC configuration, including the ablation switches for the four
 * key techniques the paper builds PC1A from (Sec. 4):
 *
 *  1. hardware APMU FSM (this module),
 *  2. IOSM — shallow IO states (L0s/L0p) + DRAM CKE-off,
 *  3. CLMR — CLM clock gating + FIVR retention voltage,
 *  4. keeping all PLLs locked.
 *
 * Disabling a switch substitutes the legacy (deep/off) behaviour for
 * that technique so `bench_ablation` can quantify each design choice.
 */

#ifndef APC_CORE_APC_CONFIG_H
#define APC_CORE_APC_CONFIG_H

#include "sim/time.h"

namespace apc::core {

/** APC / APMU configuration. */
struct ApcConfig
{
    bool enabled = true;

    /** APMU FSM clock (paper Sec. 5.5: 500 MHz). */
    double clockHz = 500e6;

    /** Long-distance signal / AND-tree propagation delay. */
    sim::Tick signalProp = 2 * sim::kNs;

    // --- Ablation switches (all true = the paper's APC) ---

    /** CLMR: gate CLM clocks and drop the rails to retention. */
    bool useClmr = true;

    /** IOSM link half: allow PCIe/DMI/UPI into L0s/L0p. When false the
     *  links are sent to L1 instead (legacy behaviour, µs-scale exit). */
    bool useShallowLinks = true;

    /** IOSM DRAM half: CKE-off power-down. When false DRAM goes to
     *  self-refresh instead (legacy behaviour, µs-scale exit). */
    bool useCkeOff = true;

    /** Keep the 8 non-core PLLs locked in PC1A. When false they are
     *  powered off and exit pays the relock latency. */
    bool keepPllsOn = true;

    /**
     * Minimum time after a PC1A exit before re-entry is attempted.
     * The paper's APMU has no such rate limiting (0); the knob exists
     * to test whether one is needed — `bench_hysteresis` shows it is
     * not, because transitions cost only ~160 ns.
     */
    sim::Tick entryHysteresis = 0;

    /** One APMU clock period in ticks. */
    sim::Tick
    cycle() const
    {
        return sim::clockPeriod(clockHz);
    }
};

} // namespace apc::core

#endif // APC_CORE_APC_CONFIG_H
