#include "core/apmu.h"

#include <algorithm>
#include <cassert>

namespace apc::core {

Apmu::Apmu(sim::Simulation &sim, const ApcConfig &cfg,
           std::vector<cpu::Core *> cores, std::vector<io::IoLink *> links,
           std::vector<dram::MemoryController *> mcs, uncore::Clm *clm,
           uncore::PllFarm *plls, sim::Signal *gpmu_wake)
    : sim_(sim), cfg_(cfg), cores_(std::move(cores)),
      links_(std::move(links)), mcs_(std::move(mcs)), clm_(clm),
      plls_(plls), inPc1a_(sim, "apmu.InPC1A", false)
{
    // InCC1 of neighbouring cores is combined with AND gates and routed
    // to the APMU (paper Sec. 5.3); likewise InL0s (Sec. 5.1).
    allCc1_ = std::make_unique<sim::AndTree>(sim, "apmu.AllInCC1",
                                             cfg_.signalProp);
    for (auto *c : cores_)
        allCc1_->addInput(c->inCc1());
    allCc1_->output().subscribe([this](bool v) { onAllCc1Edge(v); });

    allL0s_ = std::make_unique<sim::AndTree>(sim, "apmu.AllInL0s",
                                             cfg_.signalProp);
    for (auto *l : links_)
        allL0s_->addInput(l->inL0s());
    allL0s_->output().subscribe([this](bool v) { onAllL0sEdge(v); });

    if (gpmu_wake) {
        gpmu_wake->subscribe([this](bool v) {
            if (v)
                wake(WakeReason::GpmuEvent);
        });
    }
}

void
Apmu::setState(State s)
{
    if (s == state_)
        return;
    state_ = s;
    for (auto &fn : observers_)
        fn(s);
}

void
Apmu::onAllCc1Edge(bool level)
{
    if (level) {
        if (state_ == State::Pc0)
            toAcc1();
        return;
    }
    switch (state_) {
      case State::Acc1:
        toPc0();
        break;
      case State::Entering:
      case State::Pc1a:
        wake(WakeReason::CoreInterrupt);
        break;
      default:
        break;
    }
}

void
Apmu::onAllL0sEdge(bool level)
{
    if (level) {
        if (state_ == State::Acc1)
            maybeBeginEntry();
        return;
    }
    if (state_ == State::Entering || state_ == State::Pc1a)
        wake(WakeReason::IoTraffic);
}

void
Apmu::toAcc1()
{
    assert(state_ == State::Pc0);
    setState(State::Acc1);
    const auto gen = ++flowGen_;
    // One FSM cycle to drive the AllowL0s wires.
    sim_.after(cfg_.cycle(), [this, gen] {
        if (flowGen_ != gen || state_ != State::Acc1)
            return;
        if (cfg_.useShallowLinks) {
            for (auto *l : links_)
                l->allowL0s().write(true);
        } else {
            // Ablation: legacy deep link state instead of L0s/L0p. The
            // links raise InL0s on reaching L1, unblocking the flow.
            for (auto *l : links_)
                l->enterL1(nullptr);
        }
        // The links may already all be idle-resident (e.g. after an
        // IO-only wake); re-check once the wires settle.
        if (allL0s_->output().read())
            maybeBeginEntry();
    });
}

void
Apmu::toPc0()
{
    assert(state_ == State::Acc1);
    setState(State::Pc0);
    ++flowGen_;
    // Bring the IO links back to full L0 (paper: AllowL0s is unset when
    // the flow reaches PC0 on a core interrupt).
    if (cfg_.useShallowLinks) {
        for (auto *l : links_)
            l->allowL0s().write(false);
    } else {
        for (auto *l : links_) {
            if (l->state() == io::LState::L1)
                l->exitL1(nullptr);
        }
    }
}

void
Apmu::maybeBeginEntry()
{
    if (state_ != State::Acc1)
        return;
    const sim::Tick since_exit = sim_.now() - lastExit_;
    if (since_exit < cfg_.entryHysteresis) {
        hysteresisEvent_.cancel();
        hysteresisEvent_ =
            sim_.after(cfg_.entryHysteresis - since_exit, [this] {
                if (state_ == State::Acc1 && allCc1_->output().read() &&
                    allL0s_->output().read()) {
                    beginEntry();
                }
            });
        return;
    }
    beginEntry();
}

void
Apmu::beginEntry()
{
    assert(state_ == State::Acc1);
    setState(State::Entering);
    entryStart_ = sim_.now();
    wakePending_ = false;
    const auto gen = ++flowGen_;
    const sim::Tick cyc = cfg_.cycle();

    // Both branches launch one FSM cycle after &InL0s is observed.
    sim_.after(cyc, [this, gen, cyc] {
        if (flowGen_ != gen)
            return;
        sim::Tick blocking = 0;

        // Branch (i) — CLMR: clock-gate the CLM, then start the
        // (non-blocking) voltage ramp to retention.
        if (cfg_.useClmr && clm_) {
            clm_->gateClocks();
            const sim::Tick gate = clm_->config().clockTree.gateLatency;
            sim_.after(gate, [this, gen] {
                if (flowGen_ != gen)
                    return;
                clm_->setRetention(true);
            });
            blocking = std::max(blocking, gate);
        }

        // Branch (ii) — IOSM: allow the MCs into CKE-off (entry itself
        // is non-blocking; the MCs drop as soon as they are idle).
        if (cfg_.useCkeOff) {
            for (auto *m : mcs_)
                m->allowCkeOff().write(true);
            blocking = std::max(blocking, cyc);
        } else {
            // Ablation: legacy self-refresh instead of CKE-off.
            for (auto *m : mcs_)
                m->enterSelfRefresh(nullptr);
            blocking = std::max(blocking, cyc);
        }

        // Ablation: power the PLLs off as PC6 would.
        if (!cfg_.keepPllsOn && plls_)
            plls_->powerOffAll();

        // One more cycle to latch InPC1A after the blocking work.
        sim_.after(blocking + cyc, [this, gen] {
            if (flowGen_ != gen)
                return;
            finishEntry();
        });
    });
}

void
Apmu::finishEntry()
{
    assert(state_ == State::Entering);
    entryLatencyNs_.record(sim::toNanos(sim_.now() - entryStart_));
    setState(State::Pc1a);
    inPc1a_.write(true);
    ++pc1aEntries_;
    if (wakePending_)
        startExit();
}

void
Apmu::wake(WakeReason reason)
{
    lastWake_ = reason;
    switch (state_) {
      case State::Entering:
        // Entry completes within a few cycles; the turnaround happens in
        // finishEntry(). (The FIVR ramp reverses preemptively from
        // whatever voltage it reached.)
        wakePending_ = true;
        return;
      case State::Pc1a:
        startExit();
        return;
      default:
        return; // Exiting: already on the way out; Pc0/Acc1: no-op
    }
}

void
Apmu::startExit()
{
    assert(state_ == State::Pc1a);
    setState(State::Exiting);
    exitStart_ = sim_.now();
    wakePending_ = false;
    inPc1a_.write(false);
    const auto gen = ++flowGen_;
    const sim::Tick cyc = cfg_.cycle();

    exitJoinsPending_ = 2;
    auto branch_done = [this, gen] {
        if (flowGen_ != gen)
            return;
        if (--exitJoinsPending_ == 0)
            finishExit();
    };

    // Branch (i) — CLMR: unset Ret, wait PwrOk, clock-ungate. With the
    // keep-PLLs-on ablation disabled the relock must also complete
    // before the clocks can be distributed again.
    sim_.after(cyc, [this, gen, branch_done] {
        if (flowGen_ != gen)
            return;
        if (!(cfg_.useClmr && clm_)) {
            branch_done();
            return;
        }
        clm_->setRetention(false);
        auto ungate = [this, gen, branch_done] {
            if (flowGen_ != gen)
                return;
            clm_->ungateClocks();
            sim_.after(clm_->config().clockTree.gateLatency, branch_done);
        };
        auto after_pwrok = [this, gen, ungate] {
            if (flowGen_ != gen)
                return;
            if (!cfg_.keepPllsOn && plls_)
                plls_->powerOnAll(ungate);
            else
                ungate();
        };
        const sim::Tick settle = clm_->settleTimeRemaining();
        if (settle == 0)
            after_pwrok();
        else
            sim_.after(settle, after_pwrok);
    });

    // Branch (ii) — IOSM: unset Allow_CKE_OFF; the MCs exit CKE-off
    // within ~24 ns (or self-refresh within µs for the ablation).
    sim_.after(cyc, [this, gen, branch_done] {
        if (flowGen_ != gen)
            return;
        if (cfg_.useCkeOff) {
            sim::Tick worst = 0;
            for (auto *m : mcs_) {
                m->allowCkeOff().write(false);
                worst = std::max(worst, m->config().ckeOffExit);
            }
            sim_.after(worst, branch_done);
        } else {
            auto pending = std::make_shared<int>(
                static_cast<int>(mcs_.size()));
            if (*pending == 0) {
                branch_done();
                return;
            }
            for (auto *m : mcs_) {
                auto cb = [pending, branch_done] {
                    if (--*pending == 0)
                        branch_done();
                };
                if (m->state() == dram::McState::SelfRefresh)
                    m->exitSelfRefresh(cb);
                else
                    cb();
            }
        }
    });
}

void
Apmu::finishExit()
{
    assert(state_ == State::Exiting);
    exitLatencyNs_.record(sim::toNanos(sim_.now() - exitStart_));
    lastExit_ = sim_.now();
    setState(State::Acc1);
    evaluate();
}

void
Apmu::evaluate()
{
    if (state_ != State::Acc1)
        return;
    if (!allCc1_->output().read()) {
        // The wake was (or became) a core interrupt: back to PC0.
        toPc0();
        return;
    }
    // IO-only or spurious wake: stay in ACC1; if the links are already
    // all shallow-resident again, re-enter PC1A (subject to the
    // hysteresis gate, which defaults to none).
    if (allL0s_->output().read())
        maybeBeginEntry();
}

} // namespace apc::core
