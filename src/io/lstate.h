/**
 * @file
 * IO link power states (paper Sec. 3.1).
 *
 * High-speed IO links (PCIe, DMI, UPI) support L-states: L0 active, L0s
 * standby (lanes asleep, PLL on, <64 ns exit), L0p (half-width, ~10 ns
 * exit; UPI's shallow state), and L1 (link off, PLL off, µs-scale
 * retrain). Datacenter tuning guides disable everything below L0; APC
 * re-enables the shallow states only while all cores are idle.
 */

#ifndef APC_IO_LSTATE_H
#define APC_IO_LSTATE_H

#include <cstddef>

namespace apc::io {

/** Link power states, shallow to deep. */
enum class LState : std::size_t
{
    L0 = 0,  ///< active: full bandwidth, minimum latency
    L0s = 1, ///< standby: lanes asleep, clocks on
    L0p = 2, ///< partial width (UPI); faster exit than L0s
    L1 = 3,  ///< link off; retrain + PLL relock to resume
};

inline constexpr std::size_t kNumLStates = 4;

/** Display name. */
constexpr const char *
lstateName(LState s)
{
    switch (s) {
      case LState::L0:
        return "L0";
      case LState::L0s:
        return "L0s";
      case LState::L0p:
        return "L0p";
      case LState::L1:
        return "L1";
    }
    return "?";
}

} // namespace apc::io

#endif // APC_IO_LSTATE_H
