/**
 * @file
 * High-speed IO link model (PCIe / DMI / UPI) with an LTSSM-style state
 * machine and the two wires IOSM adds (paper Sec. 4.2.1, 5.1):
 *
 * - `AllowL0s` (input): while high, the link may autonomously enter its
 *   shallow state once idle for the entry window (¼ of the exit latency,
 *   the `L0S_ENTRY_LAT=1` encoding).
 * - `InL0s` (output): high while the link is resident in its shallow (or
 *   deeper) state; dropped the moment a wake begins, so the APMU can run
 *   the package exit concurrently with the link's own exit.
 *
 * Traffic is modeled as transfers: a transfer wakes the link if needed,
 * holds it busy for the transfer time, and completion is reported via
 * callback. The GPMU additionally forces links into L1 for PC6.
 */

#ifndef APC_IO_IO_LINK_H
#define APC_IO_IO_LINK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/lstate.h"
#include "power/energy_meter.h"
#include "sim/signal.h"
#include "sim/simulation.h"
#include "stats/residency.h"

namespace apc::io {

/** Per-link configuration. */
struct IoLinkConfig
{
    std::string name = "link";
    /** Shallow standby state this link supports (L0s, or L0p for UPI). */
    LState shallowState = LState::L0s;
    sim::Tick shallowExitLatency = 64 * sim::kNs;
    /** Idle time before autonomous shallow entry; 0 = ¼ of exit. */
    sim::Tick shallowEntryWindow = 0;
    sim::Tick l1ExitLatency = 6 * sim::kUs; ///< retrain + PLL
    sim::Tick l1EntryLatency = 2 * sim::kUs;
    double powerL0 = 1.5;
    double powerShallow = 0.75;
    double powerL1 = 0.18;

    /** Presets calibrated per DESIGN.md Sec. 3. */
    static IoLinkConfig pcie(int index);
    static IoLinkConfig dmi();
    static IoLinkConfig upi(int index);

    sim::Tick
    entryWindow() const
    {
        return shallowEntryWindow > 0 ? shallowEntryWindow
                                      : shallowExitLatency / 4;
    }
};

/** One high-speed IO link + controller. */
class IoLink
{
  public:
    IoLink(sim::Simulation &sim, power::EnergyMeter &meter,
           const IoLinkConfig &cfg);

    /**
     * Transfer @p payload_time worth of traffic across the link. Wakes
     * the link as needed (shallow exit or L1 retrain), then holds it
     * busy; @p done fires when the payload has crossed.
     */
    void transfer(sim::Tick payload_time, std::function<void()> done);

    /** Manually mark the link busy/idle (for agents with open DMA). */
    void beginTransaction();
    void endTransaction();

    /** Force the link into L1 (GPMU PC6 entry); @p done on completion. */
    void enterL1(std::function<void()> done);

    /** Bring the link out of L1 (PC6 exit); @p done when L0. */
    void exitL1(std::function<void()> done);

    LState state() const { return state_; }
    bool busy() const { return transactions_ > 0; }

    /** IOSM input: gate on autonomous shallow entry. */
    sim::Signal &allowL0s() { return allowL0s_; }

    /** IOSM output: resident in shallow state (or deeper). */
    sim::Signal &inL0s() { return inL0s_; }

    /** Residency counters indexed by LState. */
    const stats::ResidencyCounter<kNumLStates> &residency() const
    {
        return residency_;
    }

    /** Reset residency statistics (start of a measurement window). */
    void
    resetResidency(sim::Tick now)
    {
        residency_.reset(now);
    }

    /** Completed shallow-state wakeups. */
    std::uint64_t shallowWakes() const { return shallowWakes_; }

    /** Transfers started over this link (DMA bursts, payloads). */
    std::uint64_t transfers() const { return transfers_; }

    const IoLinkConfig &config() const { return cfg_; }
    const std::string &name() const { return cfg_.name; }

  private:
    /** (Re)arm or cancel the idle timer for shallow entry. */
    void updateIdleTimer();
    void enterShallow();
    /** Begin waking from the shallow state; @p then runs at L0. */
    void beginShallowExit();
    void setState(LState s);

    sim::Simulation &sim_;
    IoLinkConfig cfg_;
    LState state_ = LState::L0;
    int transactions_ = 0;
    bool exiting_ = false; ///< wake in flight
    bool enteringL1_ = false;
    sim::Signal allowL0s_;
    sim::Signal inL0s_;
    power::PowerLoad load_;
    stats::ResidencyCounter<kNumLStates> residency_;
    sim::EventHandle idleTimer_;
    sim::EventHandle wakeEvent_;
    sim::EventHandle entryEvent_;
    std::vector<std::function<void()>> wakeWaiters_;
    std::uint64_t shallowWakes_ = 0;
    std::uint64_t transfers_ = 0;
};

} // namespace apc::io

#endif // APC_IO_IO_LINK_H
