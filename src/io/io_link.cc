#include "io/io_link.h"

#include <cassert>
#include <utility>

namespace apc::io {

IoLinkConfig
IoLinkConfig::pcie(int index)
{
    IoLinkConfig c;
    c.name = "pcie" + std::to_string(index);
    c.shallowState = LState::L0s;
    c.shallowExitLatency = 64 * sim::kNs;
    c.powerL0 = 1.50;
    c.powerShallow = 0.750;
    c.powerL1 = 0.180;
    return c;
}

IoLinkConfig
IoLinkConfig::dmi()
{
    IoLinkConfig c;
    c.name = "dmi";
    c.shallowState = LState::L0s;
    c.shallowExitLatency = 64 * sim::kNs;
    c.powerL0 = 1.00;
    c.powerShallow = 0.500;
    c.powerL1 = 0.120;
    return c;
}

IoLinkConfig
IoLinkConfig::upi(int index)
{
    IoLinkConfig c;
    c.name = "upi" + std::to_string(index);
    // UPI supports L0p rather than L0s (paper footnote 3): ~10 ns exit,
    // shallower savings (half the lanes stay awake).
    c.shallowState = LState::L0p;
    c.shallowExitLatency = 10 * sim::kNs;
    c.powerL0 = 1.00;
    c.powerShallow = 0.750;
    c.powerL1 = 0.120;
    return c;
}

IoLink::IoLink(sim::Simulation &sim, power::EnergyMeter &meter,
               const IoLinkConfig &cfg)
    : sim_(sim), cfg_(cfg),
      allowL0s_(sim, cfg.name + ".AllowL0s", false),
      inL0s_(sim, cfg.name + ".InL0s", false),
      load_(meter, cfg.name, power::Plane::Package, cfg.powerL0),
      residency_(static_cast<std::size_t>(LState::L0), sim.now())
{
    allowL0s_.subscribe([this](bool allowed) {
        if (allowed) {
            updateIdleTimer();
        } else {
            idleTimer_.cancel();
            // Return to the active state when standby is disallowed.
            if (state_ == cfg_.shallowState && !exiting_)
                beginShallowExit();
        }
    });
}

void
IoLink::setState(LState s)
{
    state_ = s;
    residency_.transitionTo(static_cast<std::size_t>(s), sim_.now());
    switch (s) {
      case LState::L0:
        load_.setPower(cfg_.powerL0);
        break;
      case LState::L0s:
      case LState::L0p:
        load_.setPower(cfg_.powerShallow);
        break;
      case LState::L1:
        load_.setPower(cfg_.powerL1);
        break;
    }
}

void
IoLink::updateIdleTimer()
{
    idleTimer_.cancel();
    if (state_ != LState::L0 || transactions_ > 0 || exiting_ ||
        enteringL1_ || !allowL0s_.read()) {
        return;
    }
    idleTimer_ = sim_.after(cfg_.entryWindow(), [this] { enterShallow(); });
}

void
IoLink::enterShallow()
{
    assert(state_ == LState::L0 && transactions_ == 0);
    setState(cfg_.shallowState);
    inL0s_.write(true);
}

void
IoLink::beginShallowExit()
{
    assert(state_ == cfg_.shallowState && !exiting_);
    exiting_ = true;
    // The wake event is visible to the APMU immediately (paper: the link
    // unsets InL0s as soon as the L0s exit starts).
    inL0s_.write(false);
    // Wake burns active-level power while lanes retrain.
    load_.setPower(cfg_.powerL0);
    wakeEvent_ = sim_.after(cfg_.shallowExitLatency, [this] {
        exiting_ = false;
        ++shallowWakes_;
        setState(LState::L0);
        auto waiters = std::move(wakeWaiters_);
        wakeWaiters_.clear();
        for (auto &w : waiters)
            if (w)
                w();
        updateIdleTimer();
    });
}

void
IoLink::transfer(sim::Tick payload_time, std::function<void()> done)
{
    ++transactions_;
    ++transfers_;
    idleTimer_.cancel();

    auto start_payload = [this, payload_time, done = std::move(done)] {
        sim_.after(payload_time, [this, done = std::move(done)] {
            --transactions_;
            assert(transactions_ >= 0);
            if (done)
                done();
            updateIdleTimer();
        });
    };

    switch (state_) {
      case LState::L0:
        if (exiting_) {
            // A wake is already in flight; queue behind it. (Unreachable
            // in practice: exiting_ implies a non-L0 state.)
            wakeWaiters_.push_back(std::move(start_payload));
        } else {
            start_payload();
        }
        break;
      case LState::L0s:
      case LState::L0p:
        wakeWaiters_.push_back(std::move(start_payload));
        if (!exiting_)
            beginShallowExit();
        break;
      case LState::L1:
        wakeWaiters_.push_back(std::move(start_payload));
        if (!exiting_) {
            exiting_ = true;
            inL0s_.write(false);
            load_.setPower(cfg_.powerL0);
            wakeEvent_ = sim_.after(cfg_.l1ExitLatency, [this] {
                exiting_ = false;
                setState(LState::L0);
                auto waiters = std::move(wakeWaiters_);
                wakeWaiters_.clear();
                for (auto &w : waiters)
                    if (w)
                        w();
                updateIdleTimer();
            });
        }
        break;
    }
}

void
IoLink::beginTransaction()
{
    ++transactions_;
    idleTimer_.cancel();
}

void
IoLink::endTransaction()
{
    --transactions_;
    assert(transactions_ >= 0);
    updateIdleTimer();
}

void
IoLink::enterL1(std::function<void()> done)
{
    assert(!exiting_ && transactions_ == 0 &&
           "enterL1 requires a quiesced link");
    if (state_ == LState::L1) {
        if (done)
            done();
        return;
    }
    enteringL1_ = true;
    idleTimer_.cancel();
    entryEvent_ = sim_.after(cfg_.l1EntryLatency,
                             [this, done = std::move(done)] {
        enteringL1_ = false;
        setState(LState::L1);
        // InL0s means "L0s or deeper" (paper Sec. 4.2.1): L1 qualifies.
        inL0s_.write(true);
        if (done)
            done();
    });
}

void
IoLink::exitL1(std::function<void()> done)
{
    // Traffic may have beaten the GPMU to the wake: queue behind an
    // exit already in flight, abort a not-yet-completed entry (the
    // link never left L0), and treat an awake link as a no-op.
    if (exiting_) {
        wakeWaiters_.push_back(std::move(done));
        return;
    }
    if (enteringL1_) {
        entryEvent_.cancel();
        enteringL1_ = false;
        if (done)
            done();
        updateIdleTimer();
        return;
    }
    if (state_ != LState::L1) {
        if (done)
            done();
        return;
    }
    wakeWaiters_.push_back(std::move(done));
    exiting_ = true;
    inL0s_.write(false);
    load_.setPower(cfg_.powerL0);
    wakeEvent_ = sim_.after(cfg_.l1ExitLatency, [this] {
        exiting_ = false;
        setState(LState::L0);
        auto waiters = std::move(wakeWaiters_);
        wakeWaiters_.clear();
        for (auto &w : waiters)
            if (w)
                w();
        updateIdleTimer();
    });
}

} // namespace apc::io
