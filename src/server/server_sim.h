/**
 * @file
 * End-to-end server simulation (paper Sec. 6 methodology).
 *
 * Drives a workload against the composed SoC: requests arrive over the
 * NIC link, wait for the fabric (CLM + memory controllers) to be open,
 * are RSS-hashed to a core, wake that core if needed, execute, and
 * respond over the NIC. End-to-end latency adds the constant ~117 µs
 * network round trip the paper reports.
 *
 * This is where APC's transition costs become visible in request latency
 * and where the package residency opportunity (Fig. 6) comes from.
 */

#ifndef APC_SERVER_SERVER_SIM_H
#define APC_SERVER_SERVER_SIM_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cap/power_cap.h"
#include "sim/inline_function.h"
#include "cpu/pstate.h"
#include "net/nic.h"
#include "obs/tracer.h"
#include "power/rapl.h"
#include "soc/soc.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "workload/workload.h"

namespace apc::server {

/**
 * Server lifecycle under fault injection. Healthy servers are `Up`;
 * the fault plan moves them `Up -> Down -> Restarting -> Up` (crash)
 * or `Up -> Draining -> Restarting -> Up` (graceful drain+restart).
 * Only an `Up` server admits new requests; a crash destroys every
 * in-flight request (reported through the abort hook — work is never
 * silently vanished), while a drain lets outstanding work complete and
 * the package descend through its PC states as the queues empty.
 */
enum class Lifecycle : std::uint8_t
{
    Up = 0,
    Draining,
    Down,
    Restarting,
};

/** Display name for a lifecycle state. */
const char *lifecycleName(Lifecycle s);

/**
 * Dual-socket (NUMA) extension: a second, otherwise-idle socket serves
 * a fraction of memory accesses over UPI (memory-expansion / far-NUMA
 * usage). Remote traffic punctures the remote socket's package idle
 * state; APC's IO-wake path bounds that cost at nanoseconds where the
 * legacy PC6 would pay tens of microseconds per touch.
 */
struct NumaConfig
{
    bool enabled = false;
    /** Fraction of requests touching remote memory. */
    double remoteFraction = 0.2;
    /** One-way UPI hop latency. */
    sim::Tick upiHop = 140 * sim::kNs;
    /** Remote memory-controller occupancy per touched request. */
    sim::Tick remoteHold = 1 * sim::kUs;
};

/** One simulated run's setup. */
struct ServerConfig
{
    soc::PackagePolicy policy = soc::PackagePolicy::Cshallow;
    workload::WorkloadConfig workload =
        workload::WorkloadConfig::memcachedEtc(10000);
    sim::Tick networkLatency = 117 * sim::kUs; ///< paper Sec. 7.3
    sim::Tick warmup = 20 * sim::kMs;
    sim::Tick duration = 1 * sim::kSec;
    std::uint64_t seed = 42;
    /** Ondemand-style DVFS (paper Sec. 8 comparison); off by default,
     *  matching the paper's pinned-frequency configurations. */
    cpu::DvfsConfig dvfs{};
    sim::Tick dvfsInterval = 10 * sim::kMs;
    /** Dual-socket remote-memory extension. */
    NumaConfig numa{};
    /** When set, overrides the policy-derived SoC config (ablations). */
    std::unique_ptr<soc::SkxConfig> skxOverride;
    /**
     * External-dispatch mode: the internal arrival process is not
     * scheduled; requests enter only via ServerSim::inject() (a fleet
     * load balancer drives the server). workload.qps is then only used
     * for wake/coalesce parameters, not arrivals.
     */
    bool externalArrivals = false;

    /**
     * NIC device model. When enabled, arrivals (internal or injected)
     * land in the NIC RX ring and wait for a moderated interrupt whose
     * DMA wakes the PCIe link — and through it the package — instead
     * of touching the wake path per request. Responses leave via NIC
     * TX. The rx-usecs/rx-frames coalescing parameters then supersede
     * the workload's gap-based coalesceWindow heuristic.
     */
    net::NicConfig nic{};

    /**
     * Closed-loop power capping (RAPL limit enforcement). When enabled
     * the server samples its package RAPL counters on the configured
     * cadence and throttles itself — P-state clamp, forced-idle
     * injection, or both — to hold cap.limitW. The limit can be
     * retargeted at runtime via setPowerLimit() (fleet budget
     * allocation, breaker trips).
     */
    cap::CapConfig cap{};
};

/** Aggregated metrics from one run. */
struct ServerResult
{
    std::uint64_t requests = 0;
    double achievedQps = 0.0;

    // Power (RAPL-style averages over the measurement window).
    double pkgPowerW = 0.0;
    double dramPowerW = 0.0;
    double totalPowerW() const { return pkgPowerW + dramPowerW; }

    // End-to-end latency, microseconds.
    double avgLatencyUs = 0.0;
    double p50LatencyUs = 0.0;
    double p95LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double maxLatencyUs = 0.0;

    // Package-state residency fractions.
    std::array<double, soc::kNumPkgStates> pkgResidency{};

    // Core C-state residency averaged over cores.
    std::array<double, cpu::kNumCStates> coreResidency{};

    /** Average CC0 fraction — the "processor utilization" the paper
     *  quotes. */
    double utilization = 0.0;

    /** Fraction of time all cores idle simultaneously. */
    double allIdleFraction = 0.0;

    /** Ditto as SoCWatch would see it (≥10 µs periods only): the
     *  paper's "PC1A opportunity" metric (Fig. 6b). */
    double socWatchIdleFraction = 0.0;

    /** Fraction of fully-idle periods with length in [lo, hi) µs. */
    double idlePeriodFraction(double lo_us, double hi_us) const;

    // APC statistics (zero unless the Cpc1a policy ran).
    std::uint64_t pc1aEntries = 0;
    double apmuEntryNsAvg = 0.0;
    double apmuEntryNsMax = 0.0;
    double apmuExitNsAvg = 0.0;
    double apmuExitNsMax = 0.0;

    // Remote socket (only meaningful with NumaConfig::enabled).
    double remotePkgPowerW = 0.0;
    double remoteDramPowerW = 0.0;
    double remotePc1aResidency = 0.0;
    std::uint64_t remoteWakes = 0;

    // Legacy PC6 statistics (Cdeep).
    std::uint64_t pc6Entries = 0;
    double pc6EntryUsAvg = 0.0;
    double pc6ExitUsAvg = 0.0;

    // NIC statistics (zero unless cfg.nic.enabled).
    std::uint64_t nicInterrupts = 0;
    std::uint64_t nicRxPackets = 0;
    std::uint64_t nicRxDrops = 0;
    std::uint64_t nicTxPackets = 0;
    /** NIC device power/energy (Network plane, outside RAPL). */
    double nicPowerW = 0.0;
    double nicEnergyJ = 0.0;
    /** Batch size per interrupt (mergeable across servers). */
    stats::Summary nicPktsPerIrq;
    /** Descriptor wait in the RX ring, µs. */
    stats::Summary nicRingWaitUs;
    /** NIC interrupt -> fabric-ready (package exit included), µs. */
    stats::Summary nicWakeUs;

    // Power capping (zero unless cfg.cap.enabled).
    /** Limit in force when the window closed (0 = uncapped). */
    double capLimitW = 0.0;
    /** Controller's sliding-window package power at collection. */
    double capWindowPowerW = 0.0;
    /** Settled control samples / ones exceeding limit*(1+tol). */
    std::uint64_t capSamples = 0;
    std::uint64_t capViolations = 0;
    /** Mean control authority u over settled samples. */
    double capLevelAvg = 0.0;
    /** Fraction of the window spent admission-gated (idle injection). */
    double capThrottleResidency = 0.0;
    /** Time-weighted compute capacity removed by the P-state clamp:
     *  mean of (1 - f_clamp / f_nominal) over the window. */
    double capDvfsCapacityLoss = 0.0;

    /** Aggregate capping performance loss: fraction of the window's
     *  nominal compute capacity the actuators removed. */
    double
    capPerfLossFraction() const
    {
        const double loss = capThrottleResidency +
            (1.0 - capThrottleResidency) * capDvfsCapacityLoss;
        return loss < 1.0 ? loss : 1.0;
    }

    /** Copy of the idle-period length distribution (µs). */
    stats::Histogram idlePeriodsUs{0.01, 1e7, 32};

    /** Full end-to-end latency distribution and running summary (µs) —
     *  mergeable across servers for fleet-level aggregation. */
    stats::Histogram latencyHistUs{0.1, 1e7, 64};
    stats::Summary latencySummary;

    double pc1aResidency() const
    {
        return pkgResidency[static_cast<std::size_t>(soc::PkgState::Pc1a)];
    }
};

/** The server-under-test simulator. */
class ServerSim
{
  public:
    /** Sentinel request id for internally generated arrivals. */
    static constexpr std::uint64_t kNoRequestId = UINT64_MAX;

    /**
     * Called when an injected request completes, with the request id
     * passed to inject() and the completion time on this server's
     * clock. Runs inside this server's event loop: when a fleet
     * advances servers on worker threads, the hook must only touch
     * state owned by this server (e.g. its shard's staging slot).
     * Inline small-buffer callable: the hook fires once per completed
     * request across the whole fleet, so it must not cost a heap
     * allocation to install or an std::function dispatch to call.
     */
    using CompletionFn =
        sim::InplaceFunction<void(std::uint64_t id, sim::Tick done), 32>;

    /**
     * Called when the NIC RX ring tail-drops an injected request (NIC
     * mode only); same threading rules as CompletionFn. The fleet uses
     * it to drive client retransmission.
     */
    using RxDropFn =
        sim::InplaceFunction<void(std::uint64_t id, sim::Tick at), 32>;

    /**
     * Called when a fault destroys an injected request: a crash tears
     * down everything in flight, and a non-Up server refuses admission
     * on arrival. Same threading rules as CompletionFn — the fleet uses
     * it to count the loss and fail the request over.
     */
    using AbortFn =
        sim::InplaceFunction<void(std::uint64_t id, sim::Tick at), 32>;

    explicit ServerSim(ServerConfig cfg);
    ~ServerSim();

    /** Run warmup + measurement; collect metrics. */
    ServerResult run();

    // --- phased API (external drivers: fleet load balancers, REPLs) ---

    /**
     * Release cores and schedule background activity (and, unless
     * cfg.externalArrivals, the internal arrival process). Call once
     * before advanceTo()/inject().
     */
    void start();

    /**
     * Start the measurement window at the current simulated time:
     * resets residency stats and latches RAPL counters. run() calls
     * this after cfg.warmup.
     */
    void beginMeasurement();

    /** Advance this server's event loop to absolute time @p t. */
    void advanceTo(sim::Tick t) { sim_.runUntil(t); }

    /** Gather metrics for [beginMeasurement(), now]. */
    ServerResult collect();

    /**
     * Hand the server one request at the current simulated time (the
     * caller schedules the arrival instant). @p service <= 0 samples
     * the workload's service distribution; a positive value is the
     * dispatcher-determined service demand in ticks. The completion
     * hook (if set) fires with @p id when the request finishes.
     */
    void inject(std::uint64_t id, sim::Tick service);

    /** Set the completion hook for injected requests. */
    void onCompletion(CompletionFn fn) { completionFn_ = std::move(fn); }

    /** Set the RX-ring drop hook for injected requests (NIC mode). */
    void onRxDrop(RxDropFn fn) { rxDropFn_ = std::move(fn); }

    /** Set the fault-abort hook for injected requests. */
    void onAbort(AbortFn fn) { abortFn_ = std::move(fn); }

    // --- fault injection (scheduled from the fleet's route stage) ---

    /** Current lifecycle state. */
    Lifecycle lifecycle() const { return state_; }

    /**
     * Schedule a crash at absolute time @p at: the server goes Down,
     * every in-flight request — RX ring, core queues, on-core work,
     * responses in TX — is destroyed and reported through the abort
     * hook, and admission is refused until a restart completes. The
     * event runs inside this server's own event loop, so mid-epoch
     * fault instants are honored exactly under parallel advance.
     */
    void scheduleCrash(sim::Tick at);

    /**
     * Schedule a graceful drain at @p at: admission stops (arrivals are
     * refused through the abort hook, so the fleet fails them over) but
     * outstanding work runs to completion and the package descends
     * through its PC states as the queues empty.
     */
    void scheduleDrain(sim::Tick at);

    /**
     * Schedule the restart that follows a crash or drain: at @p at the
     * server enters Restarting (still refusing admission) and at
     * @p ready_at it is Up again. The cold package pays its full wake
     * costs on the first post-restart request.
     */
    void scheduleRestart(sim::Tick at, sim::Tick ready_at);

    /** Freeze the NIC moderation unit in [from, to) (NIC mode only):
     *  no interrupts fire, the RX ring fills and tail-drops. */
    void freezeNic(sim::Tick from, sim::Tick to);

    /** Accepted requests destroyed by crashes (never completed). */
    std::uint64_t aborted() const { return aborted_; }

    /** The NIC device; null unless cfg.nic.enabled. */
    net::Nic *nicDevice() { return nic_.get(); }

    /**
     * Retarget the power cap at the current simulated time (no-op
     * without cfg.cap.enabled). Safe to call from a fleet between
     * epochs: the feed-forward actuation applies immediately in this
     * server's event context.
     */
    void setPowerLimit(double watts);

    /** Limit currently enforced; 0 when uncapped or capping is off. */
    double powerLimitW() const;

    /** Controller's sliding-window package power (the fleet budget
     *  allocator's demand signal); 0 without capping. */
    double capPowerW() const;

    /** The cap controller; null unless cfg.cap.enabled. */
    cap::PowerCapController *capController() { return cap_.get(); }

    /**
     * Route this server's telemetry into @p w (call before start()).
     * Installs the writer as the simulation-wide trace sink (NIC
     * events), subscribes package-state tracking, and turns on the
     * request/cap instrumentation. With @p segments, additionally
     * emits the per-request latency-attribution segment spans (wake,
     * queue, gate/DVFS stalls, serve, TX; see obs/attribution.h).
     * Tracing only appends POD records — it never schedules events or
     * draws randomness, so a traced run's results are identical to an
     * untraced one.
     */
    void enableTracing(obs::TraceWriter *w, bool segments = false);

    /** Close the open package-state span (end of run). */
    void traceFlush();

    /** Requests handed to the server (injected or internal arrivals). */
    std::uint64_t accepted() const { return accepted_; }

    /** Requests fully served (response sent). */
    std::uint64_t completed() const { return completed_; }

    /** Accepted but not yet completed or destroyed (the LB's
     *  queue-depth signal; drops to zero at a crash). */
    std::uint64_t
    outstanding() const
    {
        return accepted_ - completed_ - aborted_;
    }

    /** The SoC under test (valid after construction). */
    soc::Soc &soc() { return *soc_; }

    /** The remote socket; null unless NUMA is enabled. */
    soc::Soc *remoteSoc() { return remoteSoc_.get(); }

    sim::Simulation &sim() { return sim_; }

    const ServerConfig &config() const { return cfg_; }

  private:
    struct Request
    {
        sim::Tick arrival;
        sim::Tick service;
        bool coalesced; ///< arrived within the NIC coalesce window
        std::uint64_t id = kNoRequestId; ///< set for injected requests
        // Attribution boundaries (set at admission; only read when
        // segment tracing is on).
        sim::Tick admitAt = 0;  ///< fabric open; enters the core queue
        sim::Tick gateBase = 0; ///< gate-closed integral at admission
        /** Server incarnation the request was admitted under; a crash
         *  bumps the incarnation, turning every continuation still in
         *  flight into a ghost that must not complete. */
        std::uint32_t inc = 0;
    };

    struct CoreCtx
    {
        std::deque<Request> queue;
        bool processing = false;
        // DVFS bookkeeping:
        std::size_t pstate = 0;      ///< index into the P-state table
        double slowdown = 1.0;       ///< service-time dilation
        sim::Tick lastCc0Time = 0;   ///< CC0 residency at last sample
    };

    void scheduleNextArrival();
    void onArrival();
    void admit(Request r);
    /** Crash teardown at the current simulated time (see scheduleCrash). */
    void crashNow();
    /** Fire the completion hook for @p id unless a crash destroyed it
     *  while the response was still inside the server. */
    void completeInjected(std::uint64_t id);
    /** NIC interrupt batch: shared wake, then per-packet admission. */
    void deliverNicBatch(std::vector<net::Nic::RxPacket> batch,
                         sim::Tick irq_at);
    void assign(const Request &r);
    void pump(std::size_t idx);
    void serveFront(std::size_t idx, bool was_active);
    /** TX-completion softirq on a core other than @p origin. */
    void scheduleSoftirq(std::size_t origin);
    /** Short kernel-context work (softirq, timer tick) on core @p idx. */
    void runKernelTask(std::size_t idx, sim::Tick work);
    void scheduleTimerTick();
    /** Issue a remote memory access chain; @p done when it completes. */
    void remoteAccess(std::function<void()> done);
    /** Periodic ondemand governor evaluation (when DVFS is enabled). */
    void scheduleDvfsSample();
    void recordLatency(sim::Tick end_to_end);
    // --- power capping ---
    /** Periodic RAPL sampling feeding the cap controller. */
    void scheduleCapSample();
    /** Periodic idle-injection cycle (gate for duty * period). */
    void scheduleCapInject();
    /** Push the controller's actuation into clamp/gate state. */
    void applyCapActuation(const cap::CapActuation &act);
    /** Apply min(governor P-state, cap clamp) to core @p idx. */
    void applyCorePower(std::size_t idx);
    /** Restart admission on every core after the gate opens. */
    void pumpAll();
    /** Emit the span of the package state just left (on change). */
    void tracePkgState();
    /** Monotone closed-gate time integral G(@p t) (attribution). */
    sim::Tick
    gateClosedTotalAt(sim::Tick t) const
    {
        return gatedTotal_ + (capGated_ ? t - gateTotalStart_ : 0);
    }

    ServerConfig cfg_;
    sim::Simulation sim_;
    std::unique_ptr<soc::Soc> soc_;
    std::unique_ptr<soc::Soc> remoteSoc_;
    std::unique_ptr<net::Nic> nic_;
    std::unique_ptr<workload::ArrivalProcess> arrivals_;
    std::unique_ptr<workload::ServiceDist> service_;
    std::vector<CoreCtx> ctx_;
    sim::Tick measureStart_ = 0;
    sim::Tick measureBegan_ = 0; ///< actual beginMeasurement() time
    /** Far in the past so the first arrival never coalesces. */
    sim::Tick lastArrival_ = -(sim::kTickNever / 2);
    std::uint64_t requests_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t completed_ = 0;
    CompletionFn completionFn_;
    RxDropFn rxDropFn_;
    // Fault-injection state. All of it is inert (zero-footprint) until
    // a fault is actually scheduled: state_ stays Up, inc_ stays 0, and
    // crashAt_'s sentinel predates every enqueue.
    Lifecycle state_ = Lifecycle::Up;
    std::uint32_t inc_ = 0;     ///< bumped by every crash
    sim::Tick crashAt_ = -1;    ///< last crash instant (-1 = never)
    std::uint64_t aborted_ = 0; ///< accepted requests destroyed
    /** Injected ids currently alive inside the server (ring, queue,
     *  core, TX) — the set a crash must report as destroyed. */
    std::vector<std::uint64_t> liveIds_;
    AbortFn abortFn_;
    stats::Summary nicWakeUs_;
    double nicEnergy0_ = 0.0; ///< Network-plane energy at measurement start
    // RAPL counters latched at beginMeasurement().
    power::RaplSample pkg0_, dram0_, rpkg0_, rdram0_;
    stats::Summary latencyUs_;
    stats::Histogram latencyHistUs_{0.1, 1e7, 64};
    cpu::PStateTable pstates_ = cpu::PStateTable::skxDefaults();
    // Power capping state.
    std::unique_ptr<cap::PowerCapController> cap_;
    power::RaplSample capPrev_;      ///< last cap-loop RAPL sample
    std::size_t capClamp_ = SIZE_MAX; ///< max P-state index allowed
    double capDuty_ = 0.0;           ///< idle-injection duty in force
    bool capGated_ = false;          ///< admission gate closed
    sim::Tick gateStart_ = 0;
    sim::Tick gatedTime_ = 0;        ///< closed-gate time this window
    /** Monotone closed-gate time integral G(t) since start — never
     *  reset by beginMeasurement(), so the attribution layer can take
     *  exact differences G(t1) - G(t0) across any window. */
    sim::Tick gatedTotal_ = 0;
    sim::Tick gateTotalStart_ = 0; ///< open-interval base for G(t)
    double clampLossRate_ = 0.0;     ///< 1 - f_clamp/f_nom while clamped
    double clampLossIntegral_ = 0.0; ///< ticks * loss rate accumulator
    sim::Tick clampLossSince_ = 0;
    // Telemetry (null/idle unless enableTracing() was called).
    obs::TraceWriter *trace_ = nullptr;
    bool traceSeg_ = false; ///< emit attribution segment spans
    std::size_t tracePkg_ = 0;      ///< pkg state the open span is in
    sim::Tick tracePkgSince_ = 0;   ///< open pkg-state span start
};

} // namespace apc::server

#endif // APC_SERVER_SERVER_SIM_H
