/**
 * @file
 * End-to-end server simulation (paper Sec. 6 methodology).
 *
 * Drives a workload against the composed SoC: requests arrive over the
 * NIC link, wait for the fabric (CLM + memory controllers) to be open,
 * are RSS-hashed to a core, wake that core if needed, execute, and
 * respond over the NIC. End-to-end latency adds the constant ~117 µs
 * network round trip the paper reports.
 *
 * This is where APC's transition costs become visible in request latency
 * and where the package residency opportunity (Fig. 6) comes from.
 */

#ifndef APC_SERVER_SERVER_SIM_H
#define APC_SERVER_SERVER_SIM_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cpu/pstate.h"
#include "soc/soc.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "workload/workload.h"

namespace apc::server {

/**
 * Dual-socket (NUMA) extension: a second, otherwise-idle socket serves
 * a fraction of memory accesses over UPI (memory-expansion / far-NUMA
 * usage). Remote traffic punctures the remote socket's package idle
 * state; APC's IO-wake path bounds that cost at nanoseconds where the
 * legacy PC6 would pay tens of microseconds per touch.
 */
struct NumaConfig
{
    bool enabled = false;
    /** Fraction of requests touching remote memory. */
    double remoteFraction = 0.2;
    /** One-way UPI hop latency. */
    sim::Tick upiHop = 140 * sim::kNs;
    /** Remote memory-controller occupancy per touched request. */
    sim::Tick remoteHold = 1 * sim::kUs;
};

/** One simulated run's setup. */
struct ServerConfig
{
    soc::PackagePolicy policy = soc::PackagePolicy::Cshallow;
    workload::WorkloadConfig workload =
        workload::WorkloadConfig::memcachedEtc(10000);
    sim::Tick networkLatency = 117 * sim::kUs; ///< paper Sec. 7.3
    sim::Tick warmup = 20 * sim::kMs;
    sim::Tick duration = 1 * sim::kSec;
    std::uint64_t seed = 42;
    /** Ondemand-style DVFS (paper Sec. 8 comparison); off by default,
     *  matching the paper's pinned-frequency configurations. */
    cpu::DvfsConfig dvfs{};
    sim::Tick dvfsInterval = 10 * sim::kMs;
    /** Dual-socket remote-memory extension. */
    NumaConfig numa{};
    /** When set, overrides the policy-derived SoC config (ablations). */
    std::unique_ptr<soc::SkxConfig> skxOverride;
};

/** Aggregated metrics from one run. */
struct ServerResult
{
    std::uint64_t requests = 0;
    double achievedQps = 0.0;

    // Power (RAPL-style averages over the measurement window).
    double pkgPowerW = 0.0;
    double dramPowerW = 0.0;
    double totalPowerW() const { return pkgPowerW + dramPowerW; }

    // End-to-end latency, microseconds.
    double avgLatencyUs = 0.0;
    double p50LatencyUs = 0.0;
    double p95LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double maxLatencyUs = 0.0;

    // Package-state residency fractions.
    std::array<double, soc::kNumPkgStates> pkgResidency{};

    // Core C-state residency averaged over cores.
    std::array<double, cpu::kNumCStates> coreResidency{};

    /** Average CC0 fraction — the "processor utilization" the paper
     *  quotes. */
    double utilization = 0.0;

    /** Fraction of time all cores idle simultaneously. */
    double allIdleFraction = 0.0;

    /** Ditto as SoCWatch would see it (≥10 µs periods only): the
     *  paper's "PC1A opportunity" metric (Fig. 6b). */
    double socWatchIdleFraction = 0.0;

    /** Fraction of fully-idle periods with length in [lo, hi) µs. */
    double idlePeriodFraction(double lo_us, double hi_us) const;

    // APC statistics (zero unless the Cpc1a policy ran).
    std::uint64_t pc1aEntries = 0;
    double apmuEntryNsAvg = 0.0;
    double apmuEntryNsMax = 0.0;
    double apmuExitNsAvg = 0.0;
    double apmuExitNsMax = 0.0;

    // Remote socket (only meaningful with NumaConfig::enabled).
    double remotePkgPowerW = 0.0;
    double remoteDramPowerW = 0.0;
    double remotePc1aResidency = 0.0;
    std::uint64_t remoteWakes = 0;

    // Legacy PC6 statistics (Cdeep).
    std::uint64_t pc6Entries = 0;
    double pc6EntryUsAvg = 0.0;
    double pc6ExitUsAvg = 0.0;

    /** Copy of the idle-period length distribution (µs). */
    stats::Histogram idlePeriodsUs{0.01, 1e7, 32};

    double pc1aResidency() const
    {
        return pkgResidency[static_cast<std::size_t>(soc::PkgState::Pc1a)];
    }
};

/** The server-under-test simulator. */
class ServerSim
{
  public:
    explicit ServerSim(ServerConfig cfg);
    ~ServerSim();

    /** Run warmup + measurement; collect metrics. */
    ServerResult run();

    /** The SoC under test (valid after construction). */
    soc::Soc &soc() { return *soc_; }

    /** The remote socket; null unless NUMA is enabled. */
    soc::Soc *remoteSoc() { return remoteSoc_.get(); }

    sim::Simulation &sim() { return sim_; }

  private:
    struct Request
    {
        sim::Tick arrival;
        sim::Tick service;
        bool coalesced; ///< arrived within the NIC coalesce window
    };

    struct CoreCtx
    {
        std::deque<Request> queue;
        bool processing = false;
        // DVFS bookkeeping:
        std::size_t pstate = 0;      ///< index into the P-state table
        double slowdown = 1.0;       ///< service-time dilation
        sim::Tick lastCc0Time = 0;   ///< CC0 residency at last sample
    };

    void scheduleNextArrival();
    void onArrival();
    void assign(const Request &r);
    void pump(std::size_t idx);
    void serveFront(std::size_t idx, bool was_active);
    /** TX-completion softirq on a core other than @p origin. */
    void scheduleSoftirq(std::size_t origin);
    /** Short kernel-context work (softirq, timer tick) on core @p idx. */
    void runKernelTask(std::size_t idx, sim::Tick work);
    void scheduleTimerTick();
    /** Issue a remote memory access chain; @p done when it completes. */
    void remoteAccess(std::function<void()> done);
    /** Periodic ondemand governor evaluation (when DVFS is enabled). */
    void scheduleDvfsSample();
    void recordLatency(sim::Tick end_to_end);

    ServerConfig cfg_;
    sim::Simulation sim_;
    std::unique_ptr<soc::Soc> soc_;
    std::unique_ptr<soc::Soc> remoteSoc_;
    std::unique_ptr<workload::ArrivalProcess> arrivals_;
    std::unique_ptr<workload::ServiceDist> service_;
    std::vector<CoreCtx> ctx_;
    sim::Tick measureStart_ = 0;
    /** Far in the past so the first arrival never coalesces. */
    sim::Tick lastArrival_ = -(sim::kTickNever / 2);
    std::uint64_t requests_ = 0;
    stats::Summary latencyUs_;
    stats::Histogram latencyHistUs_{0.1, 1e7, 64};
    cpu::PStateTable pstates_ = cpu::PStateTable::skxDefaults();
};

} // namespace apc::server

#endif // APC_SERVER_SERVER_SIM_H
