#include "server/server_sim.h"

#include <algorithm>
#include <cassert>

namespace apc::server {

const char *
lifecycleName(Lifecycle s)
{
    switch (s) {
      case Lifecycle::Up:
        return "up";
      case Lifecycle::Draining:
        return "draining";
      case Lifecycle::Down:
        return "down";
      case Lifecycle::Restarting:
        return "restarting";
    }
    return "?";
}

double
ServerResult::idlePeriodFraction(double lo_us, double hi_us) const
{
    return idlePeriodsUs.fractionBetween(lo_us, hi_us);
}

ServerSim::ServerSim(ServerConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed)
{
    const soc::SkxConfig skx = cfg_.skxOverride
        ? *cfg_.skxOverride
        : soc::SkxConfig::forPolicy(cfg_.policy);
    soc_ = std::make_unique<soc::Soc>(sim_, skx, cfg_.policy);
    if (cfg_.numa.enabled)
        remoteSoc_ = std::make_unique<soc::Soc>(sim_, skx, cfg_.policy);
    arrivals_ = cfg_.workload.makeArrivals();
    service_ = cfg_.workload.makeService();
    ctx_.resize(soc_->numCores());
    if (cfg_.cap.enabled)
        cap_ = std::make_unique<cap::PowerCapController>(
            cfg_.cap, pstates_.size(), pstates_.nominalIndex());
    if (cfg_.nic.enabled) {
        nic_ = std::make_unique<net::Nic>(sim_, soc_->meter(),
                                          soc_->nic(), cfg_.nic);
        nic_->onDeliver(
            [this](std::vector<net::Nic::RxPacket> batch,
                   sim::Tick irq_at) {
                deliverNicBatch(std::move(batch), irq_at);
            });
        nic_->onRxDrop([this](std::uint64_t id, sim::Tick at) {
            if (id != kNoRequestId && rxDropFn_)
                rxDropFn_(id, at);
        });
    }
}

ServerSim::~ServerSim() = default;

void
ServerSim::recordLatency(sim::Tick end_to_end)
{
    if (sim_.now() < measureStart_)
        return;
    ++requests_;
    const double us = sim::toMicros(end_to_end);
    latencyUs_.record(us);
    latencyHistUs_.record(us);
}

void
ServerSim::scheduleNextArrival()
{
    if (cfg_.externalArrivals || cfg_.workload.qps <= 0)
        return;
    sim_.after(arrivals_->nextGap(sim_.rng()), [this] { onArrival(); });
}

void
ServerSim::onArrival()
{
    scheduleNextArrival();
    if (state_ != Lifecycle::Up)
        return; // internal arrivals to a refusing server just vanish
    const sim::Tick svc = service_->sample(sim_.rng());
    if (nic_)
        nic_->rxEnqueue(kNoRequestId, svc);
    else
        admit({sim_.now(), svc, false, kNoRequestId});
}

void
ServerSim::inject(std::uint64_t id, sim::Tick service)
{
    if (state_ != Lifecycle::Up) {
        // Admission refused: a Draining/Down/Restarting server
        // destroys the request on arrival — the abort hook tells the
        // owner so it can count the loss and fail the request over.
        if (id != kNoRequestId && abortFn_)
            abortFn_(id, sim_.now());
        return;
    }
    if (id != kNoRequestId)
        liveIds_.push_back(id);
    const sim::Tick svc =
        service > 0 ? service : service_->sample(sim_.rng());
    if (nic_)
        nic_->rxEnqueue(id, svc);
    else
        admit({sim_.now(), svc, false, id});
}

void
ServerSim::completeInjected(std::uint64_t id)
{
    const auto it = std::find(liveIds_.begin(), liveIds_.end(), id);
    if (it == liveIds_.end())
        return; // destroyed by a crash while the response was in flight
    liveIds_.erase(it);
    if (completionFn_)
        completionFn_(id, sim_.now());
}

void
ServerSim::scheduleCrash(sim::Tick at)
{
    sim_.at(at, [this] { crashNow(); });
}

void
ServerSim::scheduleDrain(sim::Tick at)
{
    sim_.at(at, [this] {
        if (state_ == Lifecycle::Up)
            state_ = Lifecycle::Draining;
    });
}

void
ServerSim::scheduleRestart(sim::Tick at, sim::Tick ready_at)
{
    sim_.at(at, [this, ready_at] {
        state_ = Lifecycle::Restarting;
        sim_.at(ready_at, [this] { state_ = Lifecycle::Up; });
    });
}

void
ServerSim::freezeNic(sim::Tick from, sim::Tick to)
{
    if (!nic_)
        return;
    sim_.at(from, [this, to] { nic_->freeze(to); });
}

void
ServerSim::crashNow()
{
    state_ = Lifecycle::Down;
    ++inc_;
    crashAt_ = sim_.now();
    // Tear down the RX ring; its ids are already in liveIds_, so the
    // sweep below reports them (internal arrivals carry no id).
    if (nic_)
        nic_->crashAbort();
    // Queued work dies where it waits. On-core and in-TX work is
    // ghosted by the incarnation bump: its continuations still run the
    // physical machinery (MC release, core release) but never complete.
    for (auto &c : ctx_)
        c.queue.clear();
    // Every accepted-but-unfinished request dies with the crash — the
    // LB's queue-depth signal drops to zero.
    aborted_ += outstanding();
    // Report the destroyed ids in id order: the fleet's merge re-sorts
    // anyway, but a deterministic emission order keeps any direct
    // consumer reproducible too.
    std::sort(liveIds_.begin(), liveIds_.end());
    if (abortFn_)
        for (const std::uint64_t id : liveIds_)
            abortFn_(id, sim_.now());
    liveIds_.clear();
}

void
ServerSim::deliverNicBatch(std::vector<net::Nic::RxPacket> batch,
                           sim::Tick irq_at)
{
    // The DMA burst already woke the PCIe link; once the fabric (CLM +
    // memory controllers) reopens, the whole batch is admitted behind
    // the one shared package exit — which is exactly the wake-sharing
    // the moderation window buys.
    // `now` here is the DMA completion — the attribution boundary
    // between the IRQ hold and the package wake the fabric wait below
    // represents.
    const sim::Tick dma_done = sim_.now();
    const std::uint32_t inc = inc_;
    soc_->whenFabricReady([this, batch = std::move(batch), irq_at,
                           dma_done, inc] {
        if (inc != inc_)
            return; // the crash already reported every id this carries
        if (sim_.now() >= measureStart_)
            nicWakeUs_.record(sim::toMicros(sim_.now() - irq_at));
        const sim::Tick adm = sim_.now();
        const sim::Tick gate_base = gateClosedTotalAt(adm);
        bool first = true;
        for (const net::Nic::RxPacket &p : batch) {
            // A batch whose DMA was in flight when the server crashed
            // arrives as a ghost: everything enqueued at or before the
            // crash instant was aborted with the ring.
            if (p.enqueuedAt <= crashAt_)
                continue;
            ++accepted_;
            if (traceSeg_ && p.id != kNoRequestId && adm > dma_done)
                // Every coalesced request pays the one shared package
                // exit in its own timeline — that sharing is exactly
                // what the moderation window buys.
                trace_->span(dma_done, adm - dma_done, obs::Name::SegWake,
                             obs::Track::Segments, p.id);
            // Latency counts from RX-ring arrival: the coalescing wait
            // is part of the request's end-to-end cost. Followers of
            // the batch share the leader's wake.
            assign({p.enqueuedAt, p.service, !first, p.id, adm,
                    gate_base, inc_});
            first = false;
        }
    });
}

void
ServerSim::admit(Request r)
{
    ++accepted_;
    r.inc = inc_;
    r.coalesced = sim_.now() - lastArrival_ <= cfg_.workload.coalesceWindow;
    lastArrival_ = sim_.now();
    // RX over the NIC link (wakes it from L0s/L1 as needed), then wait
    // for the path to memory before the request can be dispatched.
    soc_->nic().transfer(cfg_.workload.nicTransfer, [this, r] {
        soc_->whenFabricReady([this, r]() mutable {
            if (r.inc != inc_)
                return; // crashed while waking; already reported
            const sim::Tick adm = sim_.now();
            if (traceSeg_ && r.id != kNoRequestId && adm > r.arrival)
                // No NIC model: the whole link transfer + fabric wait
                // is the wake segment.
                trace_->span(r.arrival, adm - r.arrival,
                             obs::Name::SegWake, obs::Track::Segments,
                             r.id);
            r.admitAt = adm;
            r.gateBase = gateClosedTotalAt(adm);
            assign(r);
        });
    });
}

void
ServerSim::assign(const Request &r)
{
    // RSS-style hashing: connections spread ~uniformly across cores.
    const auto idx = static_cast<std::size_t>(sim_.rng().uniformInt(
        0, static_cast<std::int64_t>(soc_->numCores()) - 1));
    ctx_[idx].queue.push_back(r);
    pump(idx);
}

void
ServerSim::pump(std::size_t idx)
{
    auto &ctx = ctx_[idx];
    // A closed injection gate holds queued work back so the cores
    // drain and the package can drop into PC1A; pumpAll() restarts
    // admission when the gate opens.
    if (ctx.processing || ctx.queue.empty() || capGated_)
        return;
    ctx.processing = true;
    const bool was_active = soc_->core(idx).isActive();
    soc_->core(idx).requestWake([this, idx, was_active] {
        serveFront(idx, was_active);
    });
}

void
ServerSim::serveFront(std::size_t idx, bool was_active)
{
    auto &ctx = ctx_[idx];
    assert(ctx.processing);
    if (ctx.queue.empty()) {
        // A crash emptied the queue while this core's wake was in
        // flight; the work it was woken for no longer exists.
        ctx.processing = false;
        soc_->core(idx).release();
        return;
    }
    const Request r = ctx.queue.front();
    ctx.queue.pop_front();

    const sim::Tick t0 = sim_.now();
    if (trace_)
        trace_->span(r.arrival, t0 - r.arrival, obs::Name::Wait,
                     obs::Track::Requests,
                     r.id == kNoRequestId ? 0 : r.id);
    const bool seg = traceSeg_ && r.id != kNoRequestId;
    if (seg) {
        // Split the admission -> serve-start wait into pure queueing
        // and idle-injection gate overlap via the monotone gate
        // integral: G(t0) - G(admit) is exactly the closed-gate time
        // inside the wait, whatever the interleaving.
        const sim::Tick gated = gateClosedTotalAt(t0) - r.gateBase;
        const sim::Tick queued = t0 - r.admitAt - gated;
        if (queued > 0)
            trace_->span(r.admitAt, queued, obs::Name::SegQueue,
                         obs::Track::Segments, r.id);
        if (gated > 0)
            trace_->span(r.admitAt + queued, gated,
                         obs::Name::SegStallGate, obs::Track::Segments,
                         r.id);
    }

    const sim::Tick base = r.service
        + (was_active ? 0
                      : (r.coalesced ? cfg_.workload.wakeOverheadCoalesced
                                     : cfg_.workload.wakeOverhead));
    // CPU-bound work dilates when DVFS has lowered the frequency.
    sim::Tick work = static_cast<sim::Tick>(static_cast<double>(base)
                                            * ctx.slowdown);
    // Cap-induced DVFS stall: the dilation beyond what the governor
    // alone would have chosen (the clamp only ever slows further).
    sim::Tick dvfs_stall = 0;
    if (seg) {
        const sim::Tick gov = static_cast<sim::Tick>(
            static_cast<double>(base) * pstates_.slowdown(ctx.pstate));
        if (work > gov)
            dvfs_stall = work - gov;
    }
    auto &mc = soc_->mc(idx % soc_->numMcs());
    mc.beginAccess();

    // The request completes when the local work has run *and* any
    // remote memory access has returned over UPI.
    auto pending = std::make_shared<int>(1);
    auto finish = [this, idx, r, t0, &mc, pending, seg, dvfs_stall] {
        if (--*pending > 0)
            return;
        mc.endAccess();
        if (r.inc != inc_) {
            // The crash destroyed this request on-core: its abort was
            // already reported, so only the physical bookkeeping runs.
            auto &c = ctx_[idx];
            c.processing = false;
            if (!c.queue.empty() && !capGated_)
                pump(idx);
            else
                soc_->core(idx).release();
            return;
        }
        ++completed_;
        recordLatency(sim_.now() - r.arrival + cfg_.networkLatency);
        if (trace_)
            trace_->span(t0, sim_.now() - t0, obs::Name::Serve,
                         obs::Track::Requests,
                         r.id == kNoRequestId ? 0 : r.id);
        if (seg) {
            const sim::Tick serve = sim_.now() - t0 - dvfs_stall;
            if (serve > 0)
                trace_->span(t0, serve, obs::Name::SegServe,
                             obs::Track::Segments, r.id);
            if (dvfs_stall > 0)
                trace_->span(t0 + serve, dvfs_stall,
                             obs::Name::SegStallDvfs,
                             obs::Track::Segments, r.id);
        }
        if (nic_) {
            // Response TX through the NIC: the request completes (and
            // the fleet's response enters the fabric) when the packet
            // has left the device, not when the core finished.
            const std::uint64_t rid = r.id;
            const std::uint32_t rinc = r.inc;
            const sim::Tick serve_end = sim_.now();
            nic_->txSend([this, rid, rinc, serve_end] {
                if (rid == kNoRequestId)
                    return;
                if (rinc != inc_)
                    return; // crashed while the response was in TX
                if (traceSeg_ && sim_.now() > serve_end)
                    trace_->span(serve_end, sim_.now() - serve_end,
                                 obs::Name::SegXmitResp,
                                 obs::Track::Segments, rid);
                completeInjected(rid);
            });
        } else {
            if (r.id != kNoRequestId)
                completeInjected(r.id);
            // Response TX (fire-and-forget; keeps the NIC link busy).
            soc_->nic().transfer(cfg_.workload.nicTransfer, nullptr);
        }
        // TX-completion softirq: IRQ affinity spreads the network
        // stack's completion work onto another core.
        scheduleSoftirq(idx);
        auto &c = ctx_[idx];
        c.processing = false;
        if (!c.queue.empty() && !capGated_)
            pump(idx);
        else
            soc_->core(idx).release();
    };
    if (cfg_.numa.enabled &&
        sim_.rng().bernoulli(cfg_.numa.remoteFraction)) {
        ++*pending;
        remoteAccess(finish);
    }
    sim_.after(work, finish);
}

void
ServerSim::remoteAccess(std::function<void()> done)
{
    // Local UPI lanes stay busy for the round trip; the remote socket's
    // UPI link wake doubles as its package wake (APMU IO-wake path).
    auto &local_upi = soc_->link(4);
    local_upi.beginTransaction();
    auto &remote_upi = remoteSoc_->link(4);
    remote_upi.transfer(cfg_.numa.upiHop, [this, &local_upi,
                                           done = std::move(done)] {
        remoteSoc_->whenFabricReady([this, &local_upi,
                                     done = std::move(done)] {
            const auto mc_idx = static_cast<std::size_t>(
                sim_.rng().uniformInt(0, 1));
            remoteSoc_->mc(mc_idx).access(
                cfg_.numa.remoteHold,
                [this, &local_upi, done = std::move(done)] {
                    // Response hop back over UPI.
                    sim_.after(cfg_.numa.upiHop,
                               [&local_upi, done = std::move(done)] {
                        local_upi.endTransaction();
                        if (done)
                            done();
                    });
                });
        });
    });
}

void
ServerSim::scheduleSoftirq(std::size_t origin)
{
    const sim::Tick work = cfg_.workload.softirqWork;
    if (work <= 0 || soc_->numCores() < 2)
        return;
    // Pick a core other than the application thread's.
    auto idx = static_cast<std::size_t>(sim_.rng().uniformInt(
        0, static_cast<std::int64_t>(soc_->numCores()) - 2));
    if (idx >= origin)
        ++idx;
    runKernelTask(idx, work);
}

void
ServerSim::runKernelTask(std::size_t idx, sim::Tick work)
{
    auto &ctx = ctx_[idx];
    if (ctx.processing)
        return; // absorbed into ongoing work on that core
    if (capGated_)
        return; // forced idle outranks housekeeping (play_idle)
    ctx.processing = true;
    soc_->core(idx).requestWake([this, idx, work] {
        sim_.after(work, [this, idx] {
            auto &c = ctx_[idx];
            c.processing = false;
            if (!c.queue.empty() && !capGated_)
                pump(idx);
            else
                soc_->core(idx).release();
        });
    });
}

void
ServerSim::scheduleTimerTick()
{
    const auto &noise = cfg_.workload.noise;
    if (!noise.enabled)
        return;
    sim_.after(noise.tickPeriod, [this] {
        scheduleTimerTick();
        runKernelTask(0, cfg_.workload.noise.tickWork);
    });
}

void
ServerSim::scheduleDvfsSample()
{
    if (!cfg_.dvfs.enabled)
        return;
    sim_.after(cfg_.dvfsInterval, [this] {
        scheduleDvfsSample();
        const sim::Tick now = sim_.now();
        for (std::size_t i = 0; i < soc_->numCores(); ++i) {
            auto &ctx = ctx_[i];
            auto &core = soc_->core(i);
            const sim::Tick cc0 = core.residency().timeIn(
                static_cast<std::size_t>(cpu::CState::CC0), now);
            const double util =
                static_cast<double>(cc0 - ctx.lastCc0Time) /
                static_cast<double>(cfg_.dvfsInterval);
            ctx.lastCc0Time = cc0;
            ctx.pstate = cpu::dvfsNextPState(pstates_, cfg_.dvfs,
                                             ctx.pstate, util);
            applyCorePower(i);
        }
    });
}

void
ServerSim::applyCorePower(std::size_t idx)
{
    auto &ctx = ctx_[idx];
    auto &core = soc_->core(idx);
    // The cap clamp caps the governor's choice, never raises it.
    const std::size_t eff = std::min(ctx.pstate, capClamp_);
    ctx.slowdown = pstates_.slowdown(eff);
    core.setActivePower(pstates_.activePowerWatts(
        core.config().cstates[0].powerWatts, eff));
}

void
ServerSim::applyCapActuation(const cap::CapActuation &act)
{
    if (trace_ && act.idleDuty != capDuty_)
        trace_->counter(sim_.now(), obs::Name::CapDuty, obs::Track::Cap,
                        act.idleDuty);
    capDuty_ = act.idleDuty;
    if (act.pstateClamp == capClamp_)
        return;
    if (trace_)
        trace_->counter(sim_.now(), obs::Name::CapClamp, obs::Track::Cap,
                        act.pstateClamp >= pstates_.size()
                            ? -1.0
                            : static_cast<double>(act.pstateClamp));
    const sim::Tick now = sim_.now();
    clampLossIntegral_ +=
        static_cast<double>(now - clampLossSince_) * clampLossRate_;
    clampLossSince_ = now;
    capClamp_ = act.pstateClamp;
    const std::size_t eff = std::min(capClamp_, pstates_.nominalIndex());
    clampLossRate_ =
        1.0 - pstates_.point(eff).freqGhz / pstates_.nominal().freqGhz;
    for (std::size_t i = 0; i < soc_->numCores(); ++i)
        applyCorePower(i);
}

void
ServerSim::scheduleCapSample()
{
    sim_.after(cfg_.cap.sampleInterval, [this] {
        scheduleCapSample();
        const auto s = soc_->rapl().readCounter(power::Plane::Package);
        const double w = soc_->rapl().averagePower(capPrev_, s);
        capPrev_ = s;
        if (trace_)
            trace_->counter(sim_.now(), obs::Name::CapPowerW,
                            obs::Track::Cap, w);
        applyCapActuation(cap_->onSample(sim_.now(), w));
    });
}

void
ServerSim::scheduleCapInject()
{
    sim_.after(cfg_.cap.injectPeriod, [this] {
        scheduleCapInject();
        if (capDuty_ <= 0 || capGated_)
            return;
        capGated_ = true;
        gateStart_ = sim_.now();
        gateTotalStart_ = sim_.now();
        const auto gate = std::min(
            cfg_.cap.injectPeriod,
            std::max<sim::Tick>(
                1, static_cast<sim::Tick>(
                       capDuty_ *
                       static_cast<double>(cfg_.cap.injectPeriod))));
        sim_.after(gate, [this] {
            capGated_ = false;
            gatedTime_ += sim_.now() - gateStart_;
            gatedTotal_ += sim_.now() - gateTotalStart_;
            pumpAll();
        });
    });
}

void
ServerSim::pumpAll()
{
    for (std::size_t i = 0; i < soc_->numCores(); ++i)
        pump(i);
}

void
ServerSim::setPowerLimit(double watts)
{
    if (!cap_)
        return;
    if (trace_)
        trace_->counter(sim_.now(), obs::Name::CapLimitW,
                        obs::Track::Cap, watts);
    cap_->setLimit(watts, sim_.now());
    applyCapActuation(cap_->actuation());
}

double
ServerSim::powerLimitW() const
{
    return cap_ ? cap_->limitW() : 0.0;
}

double
ServerSim::capPowerW() const
{
    return cap_ ? cap_->windowPowerW() : 0.0;
}

void
ServerSim::enableTracing(obs::TraceWriter *w, bool segments)
{
    trace_ = w;
    traceSeg_ = segments && w != nullptr;
    // Components inside this simulation (the NIC) find the sink here.
    sim_.setTrace(w);
    sim_.setTraceSegments(traceSeg_);
    // Package power-state spans: piggyback on the same triggers Soc
    // uses to recompute pkgState(). Signal subscription appends, so
    // the SoC's own observers are unaffected.
    tracePkg_ = static_cast<std::size_t>(soc_->pkgState());
    tracePkgSince_ = sim_.now();
    soc_->allIdle().subscribe([this](bool) { tracePkgState(); });
    soc_->gpmu().onStateChange(
        [this](uncore::Gpmu::State) { tracePkgState(); });
    if (auto *apmu = soc_->apmu())
        apmu->onStateChange(
            [this](core::Apmu::State) { tracePkgState(); });
}

void
ServerSim::tracePkgState()
{
    const auto s = static_cast<std::size_t>(soc_->pkgState());
    if (s == tracePkg_)
        return;
    const sim::Tick now = sim_.now();
    if (now > tracePkgSince_)
        trace_->span(tracePkgSince_, now - tracePkgSince_,
                     obs::pkgStateTraceName(tracePkg_),
                     obs::Track::Power);
    tracePkg_ = s;
    tracePkgSince_ = now;
}

void
ServerSim::traceFlush()
{
    if (!trace_)
        return;
    const sim::Tick now = sim_.now();
    if (now > tracePkgSince_)
        trace_->span(tracePkgSince_, now - tracePkgSince_,
                     obs::pkgStateTraceName(tracePkg_),
                     obs::Track::Power);
    tracePkgSince_ = now;
}

void
ServerSim::start()
{
    // All cores start idle; the workload wakes them. The remote socket
    // (if any) has no runnable work at all.
    for (std::size_t i = 0; i < soc_->numCores(); ++i)
        soc_->core(i).release();
    if (remoteSoc_)
        for (std::size_t i = 0; i < remoteSoc_->numCores(); ++i)
            remoteSoc_->core(i).release();

    // DVFS (when enabled) starts from the nominal point.
    for (auto &ctx : ctx_)
        ctx.pstate = pstates_.nominalIndex();

    scheduleNextArrival();
    scheduleTimerTick();
    scheduleDvfsSample();
    if (cap_) {
        capPrev_ = soc_->rapl().readCounter(power::Plane::Package);
        clampLossSince_ = sim_.now();
        scheduleCapSample();
        if (cfg_.cap.actuator != cap::CapActuator::DvfsOnly)
            scheduleCapInject();
    }
}

void
ServerSim::beginMeasurement()
{
    measureStart_ = measureBegan_ = sim_.now();
    // Drop anything recorded during warmup (external drivers inject
    // before this point; run() pre-gates via measureStart_, so this is
    // a no-op there).
    requests_ = 0;
    latencyUs_.clear();
    latencyHistUs_.clear();
    soc_->resetStats();
    if (nic_) {
        nic_->resetStats();
        nicWakeUs_.clear();
        nicEnergy0_ = soc_->meter().planeEnergy(power::Plane::Network);
    }
    if (cap_) {
        cap_->resetStats();
        gatedTime_ = 0;
        if (capGated_)
            gateStart_ = sim_.now();
        clampLossIntegral_ = 0.0;
        clampLossSince_ = sim_.now();
    }
    pkg0_ = soc_->rapl().readCounter(power::Plane::Package);
    dram0_ = soc_->rapl().readCounter(power::Plane::Dram);
    if (remoteSoc_) {
        remoteSoc_->resetStats();
        rpkg0_ = remoteSoc_->rapl().readCounter(power::Plane::Package);
        rdram0_ = remoteSoc_->rapl().readCounter(power::Plane::Dram);
    }
}

ServerResult
ServerSim::run()
{
    start();

    measureStart_ = sim_.now() + cfg_.warmup;
    sim_.at(measureStart_, [this] { beginMeasurement(); });

    const sim::Tick end = measureStart_ + cfg_.duration;
    sim_.runUntil(end);
    return collect();
}

ServerResult
ServerSim::collect()
{
    const auto pkg1 = soc_->rapl().readCounter(power::Plane::Package);
    const auto dram1 = soc_->rapl().readCounter(power::Plane::Dram);
    const double window_s = sim::toSeconds(sim_.now() - measureBegan_);

    ServerResult res;
    res.requests = requests_;
    res.achievedQps = window_s > 0
        ? static_cast<double>(requests_) / window_s : 0.0;
    res.pkgPowerW = soc_->rapl().averagePower(pkg0_, pkg1);
    res.dramPowerW = soc_->rapl().averagePower(dram0_, dram1);
    res.avgLatencyUs = latencyUs_.mean();
    res.p50LatencyUs = latencyHistUs_.p50();
    res.p95LatencyUs = latencyHistUs_.p95();
    res.p99LatencyUs = latencyHistUs_.p99();
    res.maxLatencyUs = latencyUs_.max();

    const sim::Tick now = sim_.now();
    for (std::size_t s = 0; s < soc::kNumPkgStates; ++s)
        res.pkgResidency[s] = soc_->pkgResidency().residency(s, now);
    for (std::size_t s = 0; s < cpu::kNumCStates; ++s) {
        double acc = 0.0;
        for (std::size_t i = 0; i < soc_->numCores(); ++i)
            acc += soc_->core(i).residency().residency(s, now);
        res.coreResidency[s] = acc / static_cast<double>(soc_->numCores());
    }
    res.utilization =
        res.coreResidency[static_cast<std::size_t>(cpu::CState::CC0)];
    const double window = window_s > 0 ? window_s : 1.0;
    res.allIdleFraction =
        sim::toSeconds(soc_->fullIdleTime()) / window;
    res.socWatchIdleFraction =
        sim::toSeconds(soc_->socWatchIdleTime()) / window;
    res.idlePeriodsUs = soc_->idlePeriodsUs();
    res.latencyHistUs = latencyHistUs_;
    res.latencySummary = latencyUs_;

    if (auto *apmu = soc_->apmu()) {
        res.pc1aEntries = apmu->pc1aEntries();
        res.apmuEntryNsAvg = apmu->entryLatencyNs().mean();
        res.apmuEntryNsMax = apmu->entryLatencyNs().max();
        res.apmuExitNsAvg = apmu->exitLatencyNs().mean();
        res.apmuExitNsMax = apmu->exitLatencyNs().max();
    }
    if (remoteSoc_) {
        const auto rpkg1 =
            remoteSoc_->rapl().readCounter(power::Plane::Package);
        const auto rdram1 =
            remoteSoc_->rapl().readCounter(power::Plane::Dram);
        res.remotePkgPowerW =
            remoteSoc_->rapl().averagePower(rpkg0_, rpkg1);
        res.remoteDramPowerW =
            remoteSoc_->rapl().averagePower(rdram0_, rdram1);
        res.remotePc1aResidency = remoteSoc_->pkgResidency().residency(
            static_cast<std::size_t>(soc::PkgState::Pc1a), now);
        res.remoteWakes = remoteSoc_->link(4).shallowWakes();
    }
    if (cap_) {
        res.capLimitW = cap_->limitW();
        res.capWindowPowerW = cap_->windowPowerW();
        res.capSamples = cap_->samples();
        res.capViolations = cap_->violations();
        res.capLevelAvg = cap_->levelSummary().mean();
        const sim::Tick gated =
            gatedTime_ + (capGated_ ? now - gateStart_ : 0);
        const double window_ticks =
            static_cast<double>(now - measureBegan_);
        if (window_ticks > 0) {
            res.capThrottleResidency =
                static_cast<double>(gated) / window_ticks;
            res.capDvfsCapacityLoss =
                (clampLossIntegral_ +
                 static_cast<double>(now - clampLossSince_) *
                     clampLossRate_) /
                window_ticks;
        }
    }
    res.pc6Entries = soc_->gpmu().pc6Entries();
    res.pc6EntryUsAvg = soc_->gpmu().entryLatencyUs().mean();
    res.pc6ExitUsAvg = soc_->gpmu().exitLatencyUs().mean();
    if (nic_) {
        const auto &ns = nic_->stats();
        res.nicInterrupts = ns.interrupts;
        res.nicRxPackets = ns.rxPackets;
        res.nicRxDrops = ns.rxDropped;
        res.nicTxPackets = ns.txPackets;
        res.nicPktsPerIrq = ns.pktsPerIrq;
        res.nicRingWaitUs = ns.ringWaitUs;
        res.nicWakeUs = nicWakeUs_;
        res.nicEnergyJ =
            soc_->meter().planeEnergy(power::Plane::Network) -
            nicEnergy0_;
        res.nicPowerW = window_s > 0 ? res.nicEnergyJ / window_s : 0.0;
    }
    return res;
}

} // namespace apc::server
