/**
 * @file
 * Power/energy accounting.
 *
 * Each model component owns one or more `PowerLoad`s registered with the
 * simulation's `EnergyMeter`. A load's power is piecewise linear in time:
 * components either set a constant power level or start a linear ramp
 * (used for FIVR voltage transitions, whose leakage power ramps with the
 * voltage). Energy is integrated analytically — exactly for constant and
 * linear segments — so metering adds no events to the simulation.
 */

#ifndef APC_POWER_ENERGY_METER_H
#define APC_POWER_ENERGY_METER_H

#include <string>
#include <vector>

#include "power/plane.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace apc::power {

class EnergyMeter;

/**
 * One attributable power consumer.
 *
 * Loads register with the meter at construction and deregister at
 * destruction; a load must not outlive its meter.
 */
class PowerLoad
{
  public:
    /**
     * @param meter meter to register with
     * @param name  component name for breakdown reports
     * @param plane RAPL plane this load belongs to
     * @param watts initial power draw
     */
    PowerLoad(EnergyMeter &meter, std::string name, Plane plane,
              double watts = 0.0);
    ~PowerLoad();

    PowerLoad(const PowerLoad &) = delete;
    PowerLoad &operator=(const PowerLoad &) = delete;

    /** Set a constant power level starting now. */
    void setPower(double watts);

    /**
     * Start a linear power ramp from the current level to @p end_watts
     * over @p duration. After the ramp completes the level stays at
     * @p end_watts. A later setPower/setRamp supersedes the ramp from the
     * current (mid-ramp) level.
     */
    void setRamp(double end_watts, sim::Tick duration);

    /** Instantaneous power at the current simulated time. */
    double currentPower() const;

    /** Energy consumed by this load so far, in joules. */
    double energyJoules() const;

    const std::string &name() const { return name_; }
    Plane plane() const { return plane_; }

  private:
    friend class EnergyMeter;

    /** Integrate the active segment through @p t (absolute). */
    double segmentEnergy(sim::Tick t) const;
    /** Power at absolute time @p t within the active segment. */
    double powerAt(sim::Tick t) const;
    /** Close the active segment at now and open a new one. */
    void closeSegment();

    EnergyMeter &meter_;
    std::string name_;
    Plane plane_;
    double accumulatedJ_ = 0.0;
    // Active segment: from segStart_ power goes linearly from p0_ to p1_
    // at segEnd_, then stays at p1_. Constant power is p0_ == p1_.
    sim::Tick segStart_ = 0;
    sim::Tick segEnd_ = 0;
    double p0_ = 0.0;
    double p1_ = 0.0;
};

/** Registry and aggregator over all power loads. */
class EnergyMeter
{
  public:
    explicit EnergyMeter(sim::Simulation &sim) : sim_(sim) {}

    EnergyMeter(const EnergyMeter &) = delete;
    EnergyMeter &operator=(const EnergyMeter &) = delete;

    /** Instantaneous total power on @p plane, watts. */
    double planePower(Plane plane) const;

    /** Total energy consumed on @p plane so far, joules. */
    double planeEnergy(Plane plane) const;

    /** Instantaneous power across all planes. */
    double totalPower() const;

    /** Total energy across all planes. */
    double totalEnergy() const;

    /** All registered loads (for breakdown reports). */
    const std::vector<PowerLoad *> &loads() const { return loads_; }

    /** Owning simulation (time source). */
    sim::Simulation &sim() { return sim_; }
    const sim::Simulation &sim() const { return sim_; }

  private:
    friend class PowerLoad;

    sim::Simulation &sim_;
    std::vector<PowerLoad *> loads_;
};

} // namespace apc::power

#endif // APC_POWER_ENERGY_METER_H
