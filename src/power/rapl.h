/**
 * @file
 * RAPL-like energy counter facade (paper Sec. 5.4 / Sec. 6).
 *
 * The paper derives every power number from Intel's RAPL interface:
 * RAPL.Package and RAPL.DRAM energy counters sampled over an interval.
 * `Rapl` reproduces that workflow against the simulator's EnergyMeter,
 * including the MSR-style energy-unit quantization (2^-14 J ≈ 61 µJ on
 * SKX, 15.3 µJ on some parts; configurable).
 */

#ifndef APC_POWER_RAPL_H
#define APC_POWER_RAPL_H

#include <cstdint>

#include "power/energy_meter.h"
#include "power/plane.h"

namespace apc::power {

/** Snapshot of one plane's energy counter. */
struct RaplSample
{
    sim::Tick when = 0;
    std::uint64_t counter = 0; ///< in energy units
};

/** RAPL-style access to the energy meter. */
class Rapl
{
  public:
    /**
     * @param meter the energy meter to read
     * @param energy_unit_joules quantum of the energy counters
     *        (default: 2^-14 J, the SKX ENERGY_STATUS unit)
     */
    explicit Rapl(const EnergyMeter &meter,
                  double energy_unit_joules = 1.0 / 16384.0)
        : meter_(meter), unitJ_(energy_unit_joules)
    {}

    /** Read a plane's energy counter (quantized, monotonic). */
    RaplSample readCounter(Plane plane) const;

    /**
     * Average power between two samples of the same plane, watts.
     * @return 0 if no time elapsed.
     */
    double averagePower(const RaplSample &before,
                        const RaplSample &after) const;

    /** Unquantized plane energy in joules (for tests). */
    double
    energyJoules(Plane plane) const
    {
        return meter_.planeEnergy(plane);
    }

    /** Energy counter unit in joules. */
    double energyUnit() const { return unitJ_; }

  private:
    const EnergyMeter &meter_;
    double unitJ_;
};

} // namespace apc::power

#endif // APC_POWER_RAPL_H
