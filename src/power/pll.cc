#include "power/pll.h"

namespace apc::power {

Pll::Pll(sim::Simulation &sim, EnergyMeter &meter, std::string name,
         const PllConfig &cfg, Plane plane)
    : sim_(sim), cfg_(cfg), name_(std::move(name)),
      locked_(sim, name_ + ".locked", true),
      load_(meter, name_, plane, cfg.powerWatts)
{}

void
Pll::powerOn()
{
    if (state_ != State::Off)
        return;
    state_ = State::Locking;
    load_.setPower(cfg_.powerWatts);
    lockEvent_ = sim_.after(cfg_.relockLatency, [this] {
        state_ = State::Locked;
        locked_.write(true);
    });
}

void
Pll::powerOff()
{
    if (state_ == State::Off)
        return;
    lockEvent_.cancel();
    state_ = State::Off;
    load_.setPower(0.0);
    locked_.write(false);
}

} // namespace apc::power
