/**
 * @file
 * Fully integrated voltage regulator (FIVR) model.
 *
 * Models the per-domain FIVRs of the Skylake server PDN (paper Sec. 3 and
 * Sec. 4.3): a voltage source that slews linearly between levels at a
 * configurable rate (≥2 mV/ns per the paper), supports a pre-programmed
 * retention voltage (the new RVID register added by CLMR, Sec. 5.2), and
 * implements *preemptive voltage commands* — a new target issued mid-ramp
 * reverses the ramp from the current (partial) voltage, which is what
 * bounds PC1A's exit latency when a wakeup interrupts entry (Sec. 5.5).
 *
 * The regulator raises its `PwrOk` output whenever the output voltage has
 * reached the commanded target (paper Fig. 4, step 4→5).
 */

#ifndef APC_POWER_FIVR_H
#define APC_POWER_FIVR_H

#include <string>

#include "sim/signal.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace apc::power {

/** FIVR configuration. */
struct FivrConfig
{
    double nominalVolts = 0.8;   ///< operational voltage (Vccclm nominal)
    double retentionVolts = 0.5; ///< pre-programmed RVID retention level
    double slewVoltsPerSec = 2.0e6; ///< 2 mV/ns expressed in V/s
};

/** One voltage regulator with slewed transitions and PwrOk. */
class Fivr
{
  public:
    Fivr(sim::Simulation &sim, std::string name, const FivrConfig &cfg);

    /**
     * Command a new target voltage. Preemptive: if a ramp is in flight
     * the new ramp starts from the present output voltage. PwrOk drops
     * immediately if the target differs from the present voltage and
     * rises when the output settles at the target.
     */
    void setTarget(double volts);

    /** Command the pre-programmed retention voltage (Ret asserted). */
    void toRetention() { setTarget(cfg_.retentionVolts); }

    /** Command the nominal operational voltage (Ret deasserted). */
    void toNominal() { setTarget(cfg_.nominalVolts); }

    /** Output voltage at the current simulated time. */
    double voltage() const;

    /** Commanded target voltage. */
    double target() const { return target_; }

    /** True while a ramp is in flight. */
    bool ramping() const;

    /** Time remaining until the present ramp settles (0 if settled). */
    sim::Tick settleTimeRemaining() const;

    /** PwrOk status wire: high when output == target. */
    sim::Signal &pwrOk() { return pwrOk_; }
    const sim::Signal &pwrOk() const { return pwrOk_; }

    const FivrConfig &config() const { return cfg_; }
    const std::string &name() const { return name_; }

  private:
    /** Voltage at absolute time @p t given the active ramp. */
    double voltageAt(sim::Tick t) const;

    sim::Simulation &sim_;
    std::string name_;
    FivrConfig cfg_;
    // Active ramp: from (rampStart_, v0_) to (rampEnd_, target_),
    // linear in between; settled when now >= rampEnd_.
    sim::Tick rampStart_ = 0;
    sim::Tick rampEnd_ = 0;
    double v0_;
    double target_;
    sim::Signal pwrOk_;
    sim::EventHandle settleEvent_;
};

} // namespace apc::power

#endif // APC_POWER_FIVR_H
