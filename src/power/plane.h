/**
 * @file
 * RAPL-style power planes.
 *
 * The paper measures two planes via Intel RAPL (Sec. 5.4): `Package` (the
 * processor SoC) and `Dram` (the DRAM devices). Every power load in the
 * simulator is attributed to one of these planes.
 */

#ifndef APC_POWER_PLANE_H
#define APC_POWER_PLANE_H

#include <cstddef>

namespace apc::power {

/** Power measurement plane, mirroring RAPL domains. */
enum class Plane : std::size_t
{
    Package = 0, ///< RAPL.Package: cores + uncore + IOs + PHYs
    Dram = 1,    ///< RAPL.DRAM: DRAM devices
    /**
     * Devices outside the RAPL domains: the NIC and other PCIe
     * adapters. RAPL never sees this plane (the paper measures only
     * Package and DRAM); the fleet report folds it in separately.
     */
    Network = 2,
};

inline constexpr std::size_t kNumPlanes = 3;

/** Short display name for a plane. */
constexpr const char *
planeName(Plane p)
{
    constexpr const char *names[] = {"Package", "DRAM", "Network"};
    return names[static_cast<std::size_t>(p)];
}

} // namespace apc::power

#endif // APC_POWER_PLANE_H
