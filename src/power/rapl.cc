#include "power/rapl.h"

namespace apc::power {

RaplSample
Rapl::readCounter(Plane plane) const
{
    RaplSample s;
    s.when = meter_.sim().now();
    s.counter = static_cast<std::uint64_t>(
        meter_.planeEnergy(plane) / unitJ_);
    return s;
}

double
Rapl::averagePower(const RaplSample &before, const RaplSample &after) const
{
    const sim::Tick dt = after.when - before.when;
    if (dt <= 0)
        return 0.0;
    const double joules =
        static_cast<double>(after.counter - before.counter) * unitJ_;
    return joules / sim::toSeconds(dt);
}

} // namespace apc::power
