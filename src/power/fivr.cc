#include "power/fivr.h"

#include <cassert>
#include <cmath>

namespace apc::power {

Fivr::Fivr(sim::Simulation &sim, std::string name, const FivrConfig &cfg)
    : sim_(sim), name_(std::move(name)), cfg_(cfg),
      v0_(cfg.nominalVolts), target_(cfg.nominalVolts),
      pwrOk_(sim, name_ + ".PwrOk", true)
{
    rampStart_ = rampEnd_ = sim_.now();
}

double
Fivr::voltageAt(sim::Tick t) const
{
    if (t >= rampEnd_ || rampEnd_ == rampStart_)
        return target_;
    const double frac = static_cast<double>(t - rampStart_)
        / static_cast<double>(rampEnd_ - rampStart_);
    return v0_ + (target_ - v0_) * frac;
}

double
Fivr::voltage() const
{
    return voltageAt(sim_.now());
}

bool
Fivr::ramping() const
{
    return sim_.now() < rampEnd_;
}

sim::Tick
Fivr::settleTimeRemaining() const
{
    const sim::Tick now = sim_.now();
    return now < rampEnd_ ? rampEnd_ - now : 0;
}

void
Fivr::setTarget(double volts)
{
    const sim::Tick now = sim_.now();
    const double v_now = voltageAt(now);
    if (volts == target_ && !ramping())
        return; // already settled at the requested level

    settleEvent_.cancel();
    v0_ = v_now;
    target_ = volts;
    rampStart_ = now;
    const double dv = std::abs(target_ - v0_);
    const sim::Tick ramp =
        sim::fromSeconds(dv / cfg_.slewVoltsPerSec);
    rampEnd_ = now + ramp;
    if (ramp == 0) {
        pwrOk_.write(true);
        return;
    }
    pwrOk_.write(false);
    settleEvent_ = sim_.at(rampEnd_, [this] { pwrOk_.write(true); });
}

} // namespace apc::power
