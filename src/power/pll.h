/**
 * @file
 * All-digital PLL (ADPLL) model.
 *
 * APC's fourth technique (paper Sec. 4) is to keep all system PLLs locked
 * during PC1A so exit skips the relock latency (a few microseconds),
 * paying only ~7 mW per ADPLL (Sec. 5.4). The legacy PC6 flow powers PLLs
 * off. This model covers both behaviours plus the relock transition for
 * the baseline and for the keep-PLLs-on ablation.
 */

#ifndef APC_POWER_PLL_H
#define APC_POWER_PLL_H

#include <string>

#include "power/energy_meter.h"
#include "sim/signal.h"
#include "sim/simulation.h"

namespace apc::power {

/** PLL configuration. */
struct PllConfig
{
    double powerWatts = 0.007;          ///< locked/locking draw (7 mW ADPLL)
    sim::Tick relockLatency = 5 * sim::kUs; ///< off -> locked latency
};

/** One PLL: Off, Locking or Locked. */
class Pll
{
  public:
    enum class State { Off, Locking, Locked };

    Pll(sim::Simulation &sim, EnergyMeter &meter, std::string name,
        const PllConfig &cfg, Plane plane = Plane::Package);

    /**
     * Power the PLL on. If off, starts the relock; `locked` rises after
     * the relock latency. No-op if already locking or locked.
     */
    void powerOn();

    /** Power the PLL off immediately; `locked` drops. */
    void powerOff();

    State state() const { return state_; }

    /** Status wire: high when the PLL output clock is usable. */
    sim::Signal &locked() { return locked_; }
    const sim::Signal &locked() const { return locked_; }

    const std::string &name() const { return name_; }

    /** Present draw (config power when locking/locked, 0 when off). */
    double currentPowerWatts() const { return load_.currentPower(); }

    const PllConfig &config() const { return cfg_; }

  private:
    sim::Simulation &sim_;
    PllConfig cfg_;
    std::string name_;
    State state_ = State::Locked;
    sim::Signal locked_;
    PowerLoad load_;
    sim::EventHandle lockEvent_;
};

} // namespace apc::power

#endif // APC_POWER_PLL_H
