/**
 * @file
 * Clock distribution network gating model.
 *
 * CLMR (paper Sec. 4.3) gates the CLM clock tree via the new `ClkGate`
 * signal while leaving the CLM PLL locked; gating/ungating an optimized
 * clock distribution takes 1–2 cycles (Sec. 5.5). The tree's state feeds
 * the owning domain's dynamic power.
 */

#ifndef APC_POWER_CLOCK_TREE_H
#define APC_POWER_CLOCK_TREE_H

#include <string>

#include "sim/signal.h"
#include "sim/simulation.h"

namespace apc::power {

/** Clock tree configuration. */
struct ClockTreeConfig
{
    sim::Tick gateLatency = 4 * sim::kNs; ///< 2 cycles @ 500 MHz
};

/** A gateable clock distribution tree. */
class ClockTree
{
  public:
    ClockTree(sim::Simulation &sim, std::string name,
              const ClockTreeConfig &cfg);

    /** Request gating; `running` drops after the gate latency. */
    void gate();

    /** Request ungating; `running` rises after the gate latency. */
    void ungate();

    /** True when clocks are being distributed (pre-latency request state
     *  is reflected only after the latency elapses). */
    bool running() const { return running_.read(); }

    /** Status wire: high while the tree distributes clocks. */
    sim::Signal &runningSignal() { return running_; }

  private:
    sim::Simulation &sim_;
    ClockTreeConfig cfg_;
    sim::Signal running_;
};

} // namespace apc::power

#endif // APC_POWER_CLOCK_TREE_H
