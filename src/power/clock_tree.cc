#include "power/clock_tree.h"

namespace apc::power {

ClockTree::ClockTree(sim::Simulation &sim, std::string name,
                     const ClockTreeConfig &cfg)
    : sim_(sim), cfg_(cfg), running_(sim, name + ".running", true)
{}

void
ClockTree::gate()
{
    running_.writeAfter(cfg_.gateLatency, false);
}

void
ClockTree::ungate()
{
    running_.writeAfter(cfg_.gateLatency, true);
}

} // namespace apc::power
