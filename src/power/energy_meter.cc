#include "power/energy_meter.h"

#include <algorithm>
#include <cassert>

namespace apc::power {

PowerLoad::PowerLoad(EnergyMeter &meter, std::string name, Plane plane,
                     double watts)
    : meter_(meter), name_(std::move(name)), plane_(plane)
{
    segStart_ = segEnd_ = meter_.sim().now();
    p0_ = p1_ = watts;
    meter_.loads_.push_back(this);
}

PowerLoad::~PowerLoad()
{
    auto &v = meter_.loads_;
    v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

double
PowerLoad::powerAt(sim::Tick t) const
{
    assert(t >= segStart_);
    if (t >= segEnd_ || segEnd_ == segStart_)
        return p1_;
    const double frac = static_cast<double>(t - segStart_)
        / static_cast<double>(segEnd_ - segStart_);
    return p0_ + (p1_ - p0_) * frac;
}

double
PowerLoad::segmentEnergy(sim::Tick t) const
{
    if (t <= segStart_)
        return 0.0;
    double joules = 0.0;
    // Linear part: trapezoid between segStart_ and min(t, segEnd_).
    const sim::Tick ramp_end = std::min(t, segEnd_);
    if (ramp_end > segStart_) {
        const double avg = 0.5 * (p0_ + powerAt(ramp_end));
        joules += avg * sim::toSeconds(ramp_end - segStart_);
    }
    // Constant tail after the ramp.
    if (t > segEnd_)
        joules += p1_ * sim::toSeconds(t - segEnd_);
    return joules;
}

void
PowerLoad::closeSegment()
{
    const sim::Tick now = meter_.sim().now();
    accumulatedJ_ += segmentEnergy(now);
    p0_ = powerAt(now);
    segStart_ = segEnd_ = now;
    p1_ = p0_;
}

void
PowerLoad::setPower(double watts)
{
    closeSegment();
    p0_ = p1_ = watts;
}

void
PowerLoad::setRamp(double end_watts, sim::Tick duration)
{
    assert(duration >= 0);
    closeSegment();
    if (duration <= 0) {
        p0_ = p1_ = end_watts;
        return;
    }
    p1_ = end_watts;
    segEnd_ = segStart_ + duration;
}

double
PowerLoad::currentPower() const
{
    return powerAt(meter_.sim().now());
}

double
PowerLoad::energyJoules() const
{
    return accumulatedJ_ + segmentEnergy(meter_.sim().now());
}

double
EnergyMeter::planePower(Plane plane) const
{
    double w = 0.0;
    for (const auto *l : loads_)
        if (l->plane() == plane)
            w += l->currentPower();
    return w;
}

double
EnergyMeter::planeEnergy(Plane plane) const
{
    double j = 0.0;
    for (const auto *l : loads_)
        if (l->plane() == plane)
            j += l->energyJoules();
    return j;
}

double
EnergyMeter::totalPower() const
{
    double w = 0.0;
    for (const auto *l : loads_)
        w += l->currentPower();
    return w;
}

double
EnergyMeter::totalEnergy() const
{
    double j = 0.0;
    for (const auto *l : loads_)
        j += l->energyJoules();
    return j;
}

} // namespace apc::power
