#include "soc/soc.h"

#include <cassert>

namespace apc::soc {

std::unique_ptr<cpu::IdleGovernor>
makeGovernor(const SkxConfig &cfg)
{
    if (cfg.governor == GovernorKind::Menu)
        return std::make_unique<cpu::MenuGovernor>(cfg.menu);
    return std::make_unique<cpu::LadderGovernor>(cfg.ladder);
}

Soc::Soc(sim::Simulation &sim, const SkxConfig &cfg, PackagePolicy policy)
    : sim_(sim), cfg_(cfg), policy_(policy), meter_(sim), rapl_(meter_),
      pkgResidency_(static_cast<std::size_t>(PkgState::Pc0), sim.now())
{
    for (int i = 0; i < cfg_.numCores; ++i)
        cores_.push_back(std::make_unique<cpu::Core>(
            sim, meter_, i, cfg_.core, makeGovernor(cfg_)));

    for (const auto &lc : cfg_.links)
        links_.push_back(std::make_unique<io::IoLink>(sim, meter_, lc));

    for (int i = 0; i < cfg_.numMemCtrls; ++i) {
        auto mc_cfg = cfg_.mc;
        mc_cfg.name = "mc" + std::to_string(i);
        mcs_.push_back(std::make_unique<dram::MemoryController>(
            sim, meter_, mc_cfg));
    }

    clm_ = std::make_unique<uncore::Clm>(sim, meter_, cfg_.clm);
    plls_ = std::make_unique<uncore::PllFarm>(sim, meter_, cfg_.pll);
    miscLoad_ = std::make_unique<power::PowerLoad>(
        meter_, "northcap.misc", power::Plane::Package,
        cfg_.northCapMiscWatts);

    auto raw = [](auto &v) {
        std::vector<typename std::remove_reference_t<
            decltype(v)>::value_type::element_type *> out;
        for (auto &p : v)
            out.push_back(p.get());
        return out;
    };

    gpmu_ = std::make_unique<uncore::Gpmu>(sim, cfg_.gpmu, raw(cores_),
                                           raw(links_), raw(mcs_),
                                           clm_.get(), plls_.get());
    gpmu_->onStateChange([this](uncore::Gpmu::State) {
        recomputePkgState();
        drainFabricWaiters();
    });

    if (policy_ == PackagePolicy::Cpc1a && cfg_.apc.enabled) {
        apmu_ = std::make_unique<core::Apmu>(
            sim, cfg_.apc, raw(cores_), raw(links_), raw(mcs_),
            clm_.get(), plls_.get(), &gpmu_->wakeUp());
        apmu_->onStateChange([this](core::Apmu::State) {
            recomputePkgState();
            drainFabricWaiters();
        });
    }

    // Fully-idle interval tracking (all cores in CC1 or deeper).
    allIdle_ = std::make_unique<sim::AndTree>(sim, "soc.AllIdle", 0);
    for (auto &c : cores_)
        allIdle_->addInput(c->inCc1());
    allIdle_->output().subscribe([this](bool idle) {
        if (idle) {
            idleStart_ = sim_.now();
        } else {
            const sim::Tick d = sim_.now() - idleStart_;
            idlePeriodsUs_.record(sim::toMicros(d));
            fullIdleTime_ += d;
            if (d >= kSocWatchFloor)
                socWatchIdleTime_ += d;
        }
        recomputePkgState();
    });

    // Fabric availability edges.
    clm_->available().subscribe([this](bool) { drainFabricWaiters(); });
    for (auto &m : mcs_)
        m->active().subscribe([this](bool) { drainFabricWaiters(); });
}

sim::Tick
Soc::fullIdleTime() const
{
    sim::Tick t = fullIdleTime_;
    if (allIdle_->output().read())
        t += sim_.now() - idleStart_;
    return t;
}

sim::Tick
Soc::socWatchIdleTime() const
{
    sim::Tick t = socWatchIdleTime_;
    if (allIdle_->output().read()) {
        const sim::Tick open = sim_.now() - idleStart_;
        if (open >= kSocWatchFloor)
            t += open;
    }
    return t;
}

bool
Soc::fabricReady() const
{
    if (!clm_->available().read())
        return false;
    for (const auto &m : mcs_)
        if (!m->active().read())
            return false;
    return true;
}

void
Soc::whenFabricReady(std::function<void()> fn)
{
    if (fabricReady()) {
        fn();
        return;
    }
    fabricWaiters_.push_back(std::move(fn));
}

void
Soc::drainFabricWaiters()
{
    if (fabricWaiters_.empty() || !fabricReady())
        return;
    auto waiters = std::move(fabricWaiters_);
    fabricWaiters_.clear();
    for (auto &w : waiters)
        w();
}

void
Soc::recomputePkgState()
{
    PkgState next = PkgState::Pc0;
    if (apmu_) {
        switch (apmu_->state()) {
          case core::Apmu::State::Pc1a:
            next = PkgState::Pc1a;
            break;
          case core::Apmu::State::Acc1:
          case core::Apmu::State::Entering:
          case core::Apmu::State::Exiting:
            next = PkgState::Acc1;
            break;
          case core::Apmu::State::Pc0:
            next = allIdle_->output().read() ? PkgState::Pc0idle
                                             : PkgState::Pc0;
            break;
        }
    } else if (gpmu_->state() != uncore::Gpmu::State::Pc0) {
        next = gpmu_->state() == uncore::Gpmu::State::Pc6 ? PkgState::Pc6
                                                          : PkgState::Pc2;
    } else {
        next = allIdle_->output().read() ? PkgState::Pc0idle
                                         : PkgState::Pc0;
    }
    if (next != pkg_) {
        pkg_ = next;
        pkgResidency_.transitionTo(static_cast<std::size_t>(next),
                                   sim_.now());
    }
}

void
Soc::resetStats()
{
    const sim::Tick now = sim_.now();
    pkgResidency_.reset(now);
    idlePeriodsUs_.clear();
    fullIdleTime_ = 0;
    socWatchIdleTime_ = 0;
    if (allIdle_->output().read())
        idleStart_ = now;
    for (auto &c : cores_)
        c->resetResidency(now);
    for (auto &l : links_)
        l->resetResidency(now);
    for (auto &m : mcs_)
        m->resetResidency(now);
}

} // namespace apc::soc
