#include "soc/skx_config.h"

namespace apc::soc {

SkxConfig
SkxConfig::forPolicy(PackagePolicy policy)
{
    SkxConfig c;
    switch (policy) {
      case PackagePolicy::Cshallow:
        // Vendor-recommended latency tuning: CC1 only, no package
        // C-states, no link power management, no DRAM power-down.
        c.cstateMask = cpu::CStateMask::shallowOnly();
        c.gpmu.pc6Enabled = false;
        c.apc.enabled = false;
        break;
      case PackagePolicy::Cdeep:
        // Everything on (powertop --auto-tune): CC6 reachable, PC6
        // reachable once all cores are in CC6.
        c.cstateMask = cpu::CStateMask::allEnabled();
        c.gpmu.pc6Enabled = true;
        c.apc.enabled = false;
        break;
      case PackagePolicy::Cpc1a:
        // The paper's proposal: the Cshallow baseline plus APC.
        c.cstateMask = cpu::CStateMask::shallowOnly();
        c.gpmu.pc6Enabled = false;
        c.apc.enabled = true;
        break;
    }
    c.ladder.mask = c.cstateMask;
    c.menu.mask = c.cstateMask;
    for (std::size_t i = 0; i < cpu::kNumCStates; ++i)
        c.menu.params[i] = c.core.cstates[i];
    return c;
}

} // namespace apc::soc
