/**
 * @file
 * The composed server SoC: cores, CLM, IO links, memory controllers,
 * PLL farm, GPMU and (under the Cpc1a policy) the APMU, plus package-
 * level residency accounting and the fabric-ready wake path.
 *
 * The "fabric" is the path from an IO link to memory: CLM clocks running
 * at nominal voltage and the memory controllers active. Requests can
 * only be dispatched to cores once the fabric is open — this is what
 * serializes the package exit latency into the request path and lets the
 * simulator measure PC1A's (and PC6's) true latency cost.
 */

#ifndef APC_SOC_SOC_H
#define APC_SOC_SOC_H

#include <functional>
#include <memory>
#include <vector>

#include "core/apmu.h"
#include "cpu/core.h"
#include "dram/memory_controller.h"
#include "io/io_link.h"
#include "power/energy_meter.h"
#include "power/rapl.h"
#include "soc/skx_config.h"
#include "stats/histogram.h"
#include "stats/residency.h"
#include "uncore/clm.h"
#include "uncore/gpmu.h"
#include "uncore/pll_farm.h"

namespace apc::soc {

/** Package-level state for residency reporting. */
enum class PkgState : std::size_t
{
    Pc0 = 0,     ///< at least one core active
    Pc0idle = 1, ///< all cores idle, no package state entered
    Acc1 = 2,    ///< APC transient (AllowL0s asserted)
    Pc1a = 3,    ///< the paper's new package C-state
    Pc2 = 4,     ///< legacy transient
    Pc6 = 5,     ///< legacy deep package C-state
};

inline constexpr std::size_t kNumPkgStates = 6;

/** Display name. */
constexpr const char *
pkgStateName(PkgState s)
{
    constexpr const char *names[] = {"PC0", "PC0idle", "ACC1",
                                     "PC1A", "PC2", "PC6"};
    return names[static_cast<std::size_t>(s)];
}

/** The composed system-on-chip. */
class Soc
{
  public:
    Soc(sim::Simulation &sim, const SkxConfig &cfg, PackagePolicy policy);

    // --- component access ---
    cpu::Core &core(std::size_t i) { return *cores_[i]; }
    std::size_t numCores() const { return cores_.size(); }
    io::IoLink &link(std::size_t i) { return *links_[i]; }
    std::size_t numLinks() const { return links_.size(); }
    /** The link carrying client traffic (PCIe0 / the NIC). */
    io::IoLink &nic() { return *links_[0]; }
    dram::MemoryController &mc(std::size_t i) { return *mcs_[i]; }
    std::size_t numMcs() const { return mcs_.size(); }
    uncore::Clm &clm() { return *clm_; }
    uncore::PllFarm &plls() { return *plls_; }
    uncore::Gpmu &gpmu() { return *gpmu_; }
    /** Null unless the Cpc1a policy is active. */
    core::Apmu *apmu() { return apmu_.get(); }
    power::EnergyMeter &meter() { return meter_; }
    power::Rapl &rapl() { return rapl_; }
    sim::Simulation &sim() { return sim_; }
    PackagePolicy policy() const { return policy_; }
    const SkxConfig &config() const { return cfg_; }

    // --- fabric wake path ---
    /** True when the path from IO to memory is open. */
    bool fabricReady() const;

    /** Run @p fn as soon as the fabric is (or becomes) open. */
    void whenFabricReady(std::function<void()> fn);

    // --- package accounting ---
    /** Current package-level state. */
    PkgState pkgState() const { return pkg_; }

    /** Package residency counters. */
    const stats::ResidencyCounter<kNumPkgStates> &pkgResidency() const
    {
        return pkgResidency_;
    }

    /** All-cores-idle (CC1 or deeper) aggregated wire. */
    sim::Signal &allIdle() { return allIdle_->output(); }

    /** Distribution of fully-idle period lengths, microseconds. */
    const stats::Histogram &idlePeriodsUs() const { return idlePeriodsUs_; }

    /** Total fully-idle time, including the currently open interval. */
    sim::Tick fullIdleTime() const;

    /**
     * Fully-idle time as SoCWatch would report it: periods shorter than
     * the 10 µs sampling floor are dropped (paper Sec. 6). Includes the
     * currently open interval when it already exceeds the floor.
     */
    sim::Tick socWatchIdleTime() const;

    /** SoCWatch sampling floor. */
    static constexpr sim::Tick kSocWatchFloor = 10 * sim::kUs;

    /** Reset all residency/idle statistics (start of measurement). */
    void resetStats();

  private:
    void recomputePkgState();
    void drainFabricWaiters();

    sim::Simulation &sim_;
    SkxConfig cfg_;
    PackagePolicy policy_;
    power::EnergyMeter meter_;
    power::Rapl rapl_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<io::IoLink>> links_;
    std::vector<std::unique_ptr<dram::MemoryController>> mcs_;
    std::unique_ptr<uncore::Clm> clm_;
    std::unique_ptr<uncore::PllFarm> plls_;
    std::unique_ptr<uncore::Gpmu> gpmu_;
    std::unique_ptr<core::Apmu> apmu_;
    std::unique_ptr<power::PowerLoad> miscLoad_;
    std::unique_ptr<sim::AndTree> allIdle_;
    PkgState pkg_ = PkgState::Pc0;
    stats::ResidencyCounter<kNumPkgStates> pkgResidency_;
    stats::Histogram idlePeriodsUs_{0.01, 1e7, 32};
    sim::Tick idleStart_ = 0;
    sim::Tick fullIdleTime_ = 0;
    sim::Tick socWatchIdleTime_ = 0;
    std::vector<std::function<void()>> fabricWaiters_;
};

/** Build a governor instance per the configuration. */
std::unique_ptr<cpu::IdleGovernor> makeGovernor(const SkxConfig &cfg);

} // namespace apc::soc

#endif // APC_SOC_SOC_H
