/**
 * @file
 * Full-system configuration for the reference server: an Intel Xeon
 * Silver 4114 (Skylake-SP) — 10 cores, 2 memory controllers, 3 PCIe +
 * 1 DMI + 2 UPI links, mesh uncore — as used in the paper's evaluation
 * (Sec. 6). Power/latency calibration is derived in DESIGN.md Sec. 3
 * from the paper's Table 1 and Sec. 5.4/5.5 measurements.
 */

#ifndef APC_SOC_SKX_CONFIG_H
#define APC_SOC_SKX_CONFIG_H

#include <vector>

#include "core/apc_config.h"
#include "cpu/core.h"
#include "cpu/governor.h"
#include "dram/memory_controller.h"
#include "io/io_link.h"
#include "power/pll.h"
#include "uncore/clm.h"
#include "uncore/gpmu.h"

namespace apc::soc {

/** The three system configurations evaluated in the paper (Sec. 6). */
enum class PackagePolicy
{
    Cshallow, ///< CC1 only, no package states (datacenter baseline)
    Cdeep,    ///< all C-states + PC6 enabled (powertop auto-tune)
    Cpc1a,    ///< Cshallow + AgilePkgC (PC1A reachable)
};

/** Display name. */
constexpr const char *
policyName(PackagePolicy p)
{
    switch (p) {
      case PackagePolicy::Cshallow:
        return "Cshallow";
      case PackagePolicy::Cdeep:
        return "Cdeep";
      case PackagePolicy::Cpc1a:
        return "C_PC1A";
    }
    return "?";
}

/** Idle governor flavour. */
enum class GovernorKind { Ladder, Menu };

/** Whole-SoC configuration. */
struct SkxConfig
{
    int numCores = 10;
    int numMemCtrls = 2;

    cpu::CoreConfig core = cpu::CoreConfig::skxDefaults();
    cpu::CStateMask cstateMask = cpu::CStateMask::shallowOnly();
    GovernorKind governor = GovernorKind::Ladder;
    cpu::LadderGovernor::Config ladder{};
    cpu::MenuGovernor::Config menu{};

    uncore::ClmConfig clm{};
    power::PllConfig pll{};
    uncore::GpmuConfig gpmu{};
    core::ApcConfig apc{};
    dram::MemoryControllerConfig mc{};

    /** Links: 3×PCIe, 1×DMI, 2×UPI (Xeon Silver 4114). */
    std::vector<io::IoLinkConfig> links = {
        io::IoLinkConfig::pcie(0), io::IoLinkConfig::pcie(1),
        io::IoLinkConfig::pcie(2), io::IoLinkConfig::dmi(),
        io::IoLinkConfig::upi(0), io::IoLinkConfig::upi(1),
    };

    /** Always-on north-cap logic: GPMU, fuses, clock generation, ... */
    double northCapMiscWatts = 2.0;

    /**
     * Build the configuration for one of the paper's three system
     * setups; only the policy-dependent knobs differ.
     */
    static SkxConfig forPolicy(PackagePolicy policy);
};

} // namespace apc::soc

#endif // APC_SOC_SKX_CONFIG_H
