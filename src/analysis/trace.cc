#include "analysis/trace.h"

namespace apc::analysis {

// Storage mapping: one obs::TraceRecord per event, with the interned
// kind id in `rec.id` and the detail id in `rec.name`. Events are
// recorded in subscription-callback order, which forEach preserves.

TraceRecorder::TraceRecorder(soc::Soc &soc, bool trace_cores,
                             std::size_t capacity)
    : soc_(soc), ring_(0, capacity)
{
    kindPkg_ = interner_.intern("pkg");
    kindWire_ = interner_.intern("wire");
    kindCore_ = interner_.intern("core");
    for (std::size_t s = 0; s < soc::kNumPkgStates; ++s)
        pkgNames_[s] = interner_.intern(
            soc::pkgStateName(static_cast<soc::PkgState>(s)));

    // Package-level state: recompute on the same triggers Soc uses.
    soc_.allIdle().subscribe([this](bool) { recordPkg(); });
    soc_.gpmu().onStateChange(
        [this](uncore::Gpmu::State) { recordPkg(); });
    if (auto *apmu = soc_.apmu()) {
        apmu->onStateChange([this](core::Apmu::State) { recordPkg(); });
        const auto cc1 = wirePair("InCC1");
        apmu->allCoresCc1().subscribe(
            [this, cc1](bool v) { record(kindWire_, cc1[v]); });
        const auto l0s = wirePair("InL0s");
        apmu->allIosL0s().subscribe(
            [this, l0s](bool v) { record(kindWire_, l0s[v]); });
        const auto pc1a = wirePair("InPC1A");
        apmu->inPc1a().subscribe(
            [this, pc1a](bool v) { record(kindWire_, pc1a[v]); });
    }
    const auto pwrok = wirePair("PwrOk");
    soc_.clm().pwrOk().subscribe(
        [this, pwrok](bool v) { record(kindWire_, pwrok[v]); });
    for (std::size_t i = 0; i < soc_.numMcs(); ++i) {
        const auto cke =
            wirePair("mc" + std::to_string(i) + ".Allow_CKE_OFF");
        soc_.mc(i).allowCkeOff().subscribe(
            [this, cke](bool v) { record(kindWire_, cke[v]); });
    }
    if (trace_cores) {
        for (std::size_t i = 0; i < soc_.numCores(); ++i) {
            const auto cc1 =
                wirePair("core" + std::to_string(i) + ".InCC1");
            soc_.core(i).inCc1().subscribe(
                [this, cc1](bool v) { record(kindCore_, cc1[v]); });
        }
    }
}

std::array<obs::StrId, 2>
TraceRecorder::wirePair(const std::string &base)
{
    return {interner_.intern(base + "=0"), interner_.intern(base + "=1")};
}

void
TraceRecorder::record(obs::StrId kind, obs::StrId detail)
{
    ring_.record(obs::TraceKind::Instant, obs::Track::Power,
                 soc_.sim().now(), 0, detail, kind, 0.0);
}

void
TraceRecorder::recordPkg()
{
    record(kindPkg_,
           pkgNames_[static_cast<std::size_t>(soc_.pkgState())]);
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    ring_.forEach([&out](const obs::TraceRecord &r) {
        out.push_back(TraceEvent{r.ts, static_cast<obs::StrId>(r.id),
                                 r.name});
    });
    return out;
}

std::size_t
TraceRecorder::countKind(const std::string &kind) const
{
    const obs::StrId k = interner_.find(kind);
    if (k == obs::kNoStr)
        return 0;
    std::size_t n = 0;
    ring_.forEach([&n, k](const obs::TraceRecord &r) {
        if (r.id == k)
            ++n;
    });
    return n;
}

std::size_t
TraceRecorder::count(const std::string &kind,
                     const std::string &detail) const
{
    const obs::StrId k = interner_.find(kind);
    const obs::StrId d = interner_.find(detail);
    if (k == obs::kNoStr || d == obs::kNoStr)
        return 0;
    std::size_t n = 0;
    ring_.forEach([&n, k, d](const obs::TraceRecord &r) {
        if (r.id == k && r.name == d)
            ++n;
    });
    return n;
}

bool
TraceRecorder::writeCsv(std::FILE *out) const
{
    bool ok = std::fprintf(out, "time_us,kind,detail\n") >= 0;
    ring_.forEach([this, out, &ok](const obs::TraceRecord &r) {
        if (std::fprintf(out, "%.4f,%s,%s\n", sim::toMicros(r.ts),
                         interner_.str(static_cast<obs::StrId>(r.id))
                             .c_str(),
                         interner_.str(r.name).c_str()) < 0)
            ok = false;
    });
    if (std::fflush(out) != 0)
        ok = false;
    return ok && !std::ferror(out);
}

bool
TraceRecorder::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = writeCsv(f);
    return std::fclose(f) == 0 && ok;
}

} // namespace apc::analysis
