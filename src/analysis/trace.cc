#include "analysis/trace.h"

namespace apc::analysis {

TraceRecorder::TraceRecorder(soc::Soc &soc, bool trace_cores) : soc_(soc)
{
    // Package-level state: recompute on the same triggers Soc uses.
    soc_.allIdle().subscribe([this](bool) {
        record("pkg", soc::pkgStateName(soc_.pkgState()));
    });
    soc_.gpmu().onStateChange([this](uncore::Gpmu::State) {
        record("pkg", soc::pkgStateName(soc_.pkgState()));
    });
    if (auto *apmu = soc_.apmu()) {
        apmu->onStateChange([this](core::Apmu::State) {
            record("pkg", soc::pkgStateName(soc_.pkgState()));
        });
        apmu->allCoresCc1().subscribe([this](bool v) {
            record("wire", std::string("InCC1=") + (v ? "1" : "0"));
        });
        apmu->allIosL0s().subscribe([this](bool v) {
            record("wire", std::string("InL0s=") + (v ? "1" : "0"));
        });
        apmu->inPc1a().subscribe([this](bool v) {
            record("wire", std::string("InPC1A=") + (v ? "1" : "0"));
        });
    }
    soc_.clm().pwrOk().subscribe([this](bool v) {
        record("wire", std::string("PwrOk=") + (v ? "1" : "0"));
    });
    for (std::size_t i = 0; i < soc_.numMcs(); ++i) {
        soc_.mc(i).allowCkeOff().subscribe([this, i](bool v) {
            record("wire", "mc" + std::to_string(i) +
                               ".Allow_CKE_OFF=" + (v ? "1" : "0"));
        });
    }
    if (trace_cores) {
        for (std::size_t i = 0; i < soc_.numCores(); ++i) {
            soc_.core(i).inCc1().subscribe([this, i](bool v) {
                record("core", "core" + std::to_string(i) + ".InCC1=" +
                                   (v ? "1" : "0"));
            });
        }
    }
}

void
TraceRecorder::record(const char *kind, std::string detail)
{
    events_.push_back(
        TraceEvent{soc_.sim().now(), kind, std::move(detail)});
}

std::size_t
TraceRecorder::countKind(const std::string &kind) const
{
    std::size_t n = 0;
    for (const auto &e : events_)
        if (e.kind == kind)
            ++n;
    return n;
}

std::size_t
TraceRecorder::count(const std::string &kind,
                     const std::string &detail) const
{
    std::size_t n = 0;
    for (const auto &e : events_)
        if (e.kind == kind && e.detail == detail)
            ++n;
    return n;
}

void
TraceRecorder::writeCsv(std::FILE *out) const
{
    std::fprintf(out, "time_us,kind,detail\n");
    for (const auto &e : events_)
        std::fprintf(out, "%.4f,%s,%s\n", sim::toMicros(e.when),
                     e.kind.c_str(), e.detail.c_str());
}

bool
TraceRecorder::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    writeCsv(f);
    std::fclose(f);
    return true;
}

} // namespace apc::analysis
