/**
 * @file
 * The paper's reported numbers, collected in one place so every bench
 * can print "paper vs measured" side by side (DESIGN.md Sec. 4). These
 * are *reference targets*, not calibration inputs — the calibration
 * constants live in the component configs and are derived in DESIGN.md.
 */

#ifndef APC_ANALYSIS_PAPER_REFERENCE_H
#define APC_ANALYSIS_PAPER_REFERENCE_H

namespace apc::analysis::paper {

// Table 1: SoC + DRAM power per package state (watts).
inline constexpr double kPc0SocW = 85.0;       // upper bound, full load
inline constexpr double kPc0DramW = 7.0;
inline constexpr double kPc0idleSocW = 44.0;
inline constexpr double kPc0idleDramW = 5.5;
inline constexpr double kPc6SocW = 12.0;       // 11.9 measured, Sec. 5.4
inline constexpr double kPc6DramW = 0.5;       // 0.51 measured
inline constexpr double kPc1aSocW = 27.5;
inline constexpr double kPc1aDramW = 1.6;

// Sec. 5.4 power deltas (watts).
inline constexpr double kPcoresDiffW = 12.1;
inline constexpr double kPiosDiffW = 3.5;
inline constexpr double kPdramDiffW = 1.1;
inline constexpr double kPpllsDiffW = 0.056;

// Sec. 5.5 transition latencies (nanoseconds).
inline constexpr double kPc1aEntryNs = 18.0;
inline constexpr double kPc1aExitNs = 150.0;
inline constexpr double kPc1aTotalNs = 200.0; // conservative bound
inline constexpr double kPc6TotalUs = 50.0;   // ">50us"
inline constexpr double kSpeedupVsPc6 = 250.0;

// Sec. 2 Eq. 1 estimates.
inline constexpr double kSavingsAt5pct = 0.23;
inline constexpr double kSavingsAt10pct = 0.17;
inline constexpr double kIdleSavings = 0.41;
inline constexpr double kAllCc1At5pct = 0.57;
inline constexpr double kAllCc1At10pct = 0.39;

// Sec. 5.1–5.3 area overheads (fractions of the SKX die).
inline constexpr double kAreaIosmWires = 0.0024;
inline constexpr double kAreaIosmLogic = 0.0008;
inline constexpr double kAreaClmrWires = 0.0014;
inline constexpr double kAreaApmu = 0.001;
inline constexpr double kAreaIncc1Wires = 0.0014;
inline constexpr double kAreaTotal = 0.0075;

// Fig. 6 (Memcached opportunity).
inline constexpr double kPc1aResidencyAt4k = 0.77;
inline constexpr double kPc1aResidencyAt50k = 0.20;
inline constexpr double kPc1aResidencyFloorAt100k = 0.12;
inline constexpr double kIdlePeriods20to200usLowLoad = 0.60;

// Fig. 7 (Memcached power/latency).
inline constexpr double kPowerSavingsAt4k = 0.37;
inline constexpr double kPowerSavingsAt50k = 0.14;
inline constexpr double kMaxAvgLatencyImpact = 0.001; // <0.1%
inline constexpr double kNetworkLatencyUs = 117.0;

// Fig. 8 (MySQL) and Fig. 9 (Kafka).
inline constexpr double kMysqlIdleResidencyLo = 0.20;
inline constexpr double kMysqlIdleResidencyHi = 0.37;
inline constexpr double kMysqlSavingsLo = 0.07;
inline constexpr double kMysqlSavingsHi = 0.14;
inline constexpr double kKafkaResidencyLo = 0.15;
inline constexpr double kKafkaResidencyHi = 0.47;
inline constexpr double kKafkaSavingsLo = 0.09;
inline constexpr double kKafkaSavingsHi = 0.19;

// Memcached evaluation: energy savings up to 41%, 25% average (Sec. 1).
inline constexpr double kMemcachedMaxEnergySavings = 0.41;
inline constexpr double kMemcachedAvgEnergySavings = 0.25;

} // namespace apc::analysis::paper

#endif // APC_ANALYSIS_PAPER_REFERENCE_H
