#include "analysis/area_model.h"

namespace apc::analysis {

AreaBreakdown
computeAreaOverhead(const AreaParams &p)
{
    AreaBreakdown b;
    // One long-distance wire costs 1/width of the IO interconnect's die
    // share (the interconnect is width data bits plus control, so this
    // is pessimistic — paper Sec. 5.1).
    const double per_wire =
        p.ioInterconnectDieFrac / static_cast<double>(p.ioInterconnectBits);
    b.iosmWires = per_wire * p.iosmLongSignals;
    b.clmrWires = per_wire * p.clmrLongSignals;
    b.incc1Wires = per_wire * p.incc1LongSignals;
    // Control/status knobs already exist in the IO/memory controllers;
    // the glue is <0.5% of the controllers' area (Sec. 5.1).
    b.iosmControllerLogic = p.ioControllersDieFrac * p.controllerLogicFrac;
    // RVID register + VID mux in each CLM FIVR's FCM (Sec. 5.2).
    b.clmrFcm = p.numClmFivrs * p.fcmLogicFrac * p.fivrOfCoreFrac *
        p.coreOfDieFrac / 2.0; // FCM is a fraction of one FIVR, die-wide
    // APMU FSM: up to 5% of the GPMU, which is <2% of the die (Sec. 5.3).
    b.apmuLogic = p.gpmuDieFrac * p.apmuOfGpmuFrac;
    return b;
}

} // namespace apc::analysis
