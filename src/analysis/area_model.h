/**
 * @file
 * Analytical die-area overhead model (paper Sec. 5.1–5.3).
 *
 * APC adds long-distance wires (routed through the IO interconnect),
 * small per-controller logic, the RVID register + mux in each CLM FIVR
 * control module, and the APMU FSM next to the GPMU. The paper bounds
 * the total at <0.75% of the SKX die; this model reproduces every term.
 */

#ifndef APC_ANALYSIS_AREA_MODEL_H
#define APC_ANALYSIS_AREA_MODEL_H

namespace apc::analysis {

/** Die/floorplan parameters (paper Sec. 5 defaults). */
struct AreaParams
{
    /** IO interconnect data width in bits (128 pessimistic .. 512). */
    int ioInterconnectBits = 128;
    /** IO interconnect share of the SKX die. */
    double ioInterconnectDieFrac = 0.06;
    /** IO controllers' share of the SKX die. */
    double ioControllersDieFrac = 0.15;
    /** Added logic per IO/memory controller, as fraction of the
     *  controllers' area. */
    double controllerLogicFrac = 0.005;
    /** GPMU share of the die and APMU size relative to the GPMU. */
    double gpmuDieFrac = 0.02;
    double apmuOfGpmuFrac = 0.05;
    /** FIVR FCM terms: RVID register + mux relative to the FCM, FIVR
     *  share of a core, core share of the die. */
    double fcmLogicFrac = 0.005;
    double fivrOfCoreFrac = 0.10;
    double coreOfDieFrac = 0.10;

    // Signal counts (Fig. 3).
    int iosmLongSignals = 5;  ///< AllowL0s, InL0s aggregates, Allow_CKE_OFF
    int clmrLongSignals = 3;  ///< Ret, PwrOk, ClkGate
    int incc1LongSignals = 3; ///< aggregated InCC1 routing
    int numClmFivrs = 2;
};

/** Per-component area overhead, as fractions of the SKX die. */
struct AreaBreakdown
{
    double iosmWires = 0.0;
    double iosmControllerLogic = 0.0;
    double clmrWires = 0.0;
    double clmrFcm = 0.0;
    double apmuLogic = 0.0;
    double incc1Wires = 0.0;

    double
    total() const
    {
        return iosmWires + iosmControllerLogic + clmrWires + clmrFcm +
            apmuLogic + incc1Wires;
    }
};

/** Evaluate the model. */
AreaBreakdown computeAreaOverhead(const AreaParams &p);

} // namespace apc::analysis

#endif // APC_ANALYSIS_AREA_MODEL_H
