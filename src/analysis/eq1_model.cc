#include "analysis/eq1_model.h"

namespace apc::analysis {

double
eq1BaselinePower(const Eq1Inputs &in)
{
    return in.rPc0 * in.pPc0 + in.rPc0idle * in.pPc0idle;
}

double
eq1Savings(const Eq1Inputs &in)
{
    const double base = eq1BaselinePower(in);
    if (base <= 0.0)
        return 0.0;
    // R_PC1A = R_PC0idle (the PC1A system converts every fully-idle
    // interval into PC1A residency).
    return in.rPc0idle * (in.pPc0idle - in.pPc1a) / base;
}

double
eq1PowerWithPc1a(const Eq1Inputs &in)
{
    return eq1BaselinePower(in) * (1.0 - eq1Savings(in));
}

double
eq1IdleSavings(double p_pc0idle, double p_pc1a)
{
    if (p_pc0idle <= 0.0)
        return 0.0;
    return 1.0 - p_pc1a / p_pc0idle;
}

} // namespace apc::analysis
