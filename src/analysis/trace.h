/**
 * @file
 * SoCWatch-style event tracing.
 *
 * The paper's methodology (Sec. 6) builds on SoCWatch traces of C-state
 * transition events. `TraceRecorder` reproduces that workflow against
 * the simulator: it subscribes to a Soc's package-state changes and the
 * APC control wires, buffers timestamped events, and renders them as
 * CSV for offline analysis (or assertions in tests).
 */

#ifndef APC_ANALYSIS_TRACE_H
#define APC_ANALYSIS_TRACE_H

#include <cstdio>
#include <string>
#include <vector>

#include "soc/soc.h"

namespace apc::analysis {

/** One recorded event. */
struct TraceEvent
{
    sim::Tick when = 0;
    std::string kind;   ///< "pkg", "wire", "core", ...
    std::string detail; ///< e.g. "PC1A", "InL0s=1"
};

/** Records state/wire transitions from a Soc. */
class TraceRecorder
{
  public:
    /**
     * Attach to @p soc. Subscribes to the package-state machinery that
     * exists under the SoC's policy (APMU wires only when present).
     *
     * @param trace_cores also record per-core InCC1 edges (verbose)
     */
    explicit TraceRecorder(soc::Soc &soc, bool trace_cores = false);

    /** Recorded events in order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Number of events with the given kind. */
    std::size_t countKind(const std::string &kind) const;

    /** Number of events matching kind and detail exactly. */
    std::size_t count(const std::string &kind,
                      const std::string &detail) const;

    /** Render as CSV ("time_us,kind,detail"). */
    void writeCsv(std::FILE *out) const;

    /** Render to a file; @return false on IO failure. */
    bool writeCsv(const std::string &path) const;

    /** Drop all recorded events. */
    void clear() { events_.clear(); }

  private:
    void record(const char *kind, std::string detail);

    soc::Soc &soc_;
    std::vector<TraceEvent> events_;
};

} // namespace apc::analysis

#endif // APC_ANALYSIS_TRACE_H
