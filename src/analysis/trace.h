/**
 * @file
 * SoCWatch-style event tracing.
 *
 * The paper's methodology (Sec. 6) builds on SoCWatch traces of C-state
 * transition events. `TraceRecorder` reproduces that workflow against
 * the simulator: it subscribes to a Soc's package-state changes and the
 * APC control wires, buffers timestamped events, and renders them as
 * CSV for offline analysis (or assertions in tests).
 *
 * Storage is the telemetry subsystem's interned-id ring buffer
 * (obs/tracer.h): every kind/detail string is interned once at
 * subscription time, and each recorded event is one 48-byte POD write —
 * no per-event heap allocation, bounded memory (drop-oldest past the
 * capacity, counted in droppedEvents()).
 */

#ifndef APC_ANALYSIS_TRACE_H
#define APC_ANALYSIS_TRACE_H

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/interner.h"
#include "obs/tracer.h"
#include "soc/soc.h"

namespace apc::analysis {

/** One recorded event (materialized view; storage is POD records). */
struct TraceEvent
{
    sim::Tick when = 0;
    obs::StrId kind = obs::kNoStr;   ///< "pkg", "wire", "core", ...
    obs::StrId detail = obs::kNoStr; ///< e.g. "PC1A", "InL0s=1"
};

/** Records state/wire transitions from a Soc. */
class TraceRecorder
{
  public:
    /**
     * Attach to @p soc. Subscribes to the package-state machinery that
     * exists under the SoC's policy (APMU wires only when present).
     *
     * @param trace_cores also record per-core InCC1 edges (verbose)
     * @param capacity ring capacity in events; the oldest events are
     *   overwritten (and counted) once it fills
     */
    explicit TraceRecorder(soc::Soc &soc, bool trace_cores = false,
                           std::size_t capacity = 1u << 20);

    /** Recorded events oldest-first (materialized from the ring). */
    std::vector<TraceEvent> events() const;

    /** Events currently held. */
    std::size_t size() const { return ring_.size(); }

    /** Events lost to ring wrap-around. */
    std::uint64_t droppedEvents() const { return ring_.dropped(); }

    /** The string behind a TraceEvent::kind / ::detail id. */
    const std::string &str(obs::StrId id) const
    {
        return interner_.str(id);
    }

    /** Number of events with the given kind. */
    std::size_t countKind(const std::string &kind) const;

    /** Number of events matching kind and detail exactly. */
    std::size_t count(const std::string &kind,
                      const std::string &detail) const;

    /** Render as CSV ("time_us,kind,detail").
     *  @return false on IO failure. */
    bool writeCsv(std::FILE *out) const;

    /** Render to a file; @return false on IO failure. */
    bool writeCsv(const std::string &path) const;

  private:
    /** Intern both edge variants of a wire label up front so the
     *  signal callbacks only copy ids. */
    std::array<obs::StrId, 2> wirePair(const std::string &base);

    void record(obs::StrId kind, obs::StrId detail);
    void recordPkg();

    soc::Soc &soc_;
    obs::StringInterner interner_;
    obs::TraceWriter ring_;
    obs::StrId kindPkg_, kindWire_, kindCore_;
    /** Package-state names, pre-interned in soc::PkgState order. */
    std::array<obs::StrId, soc::kNumPkgStates> pkgNames_{};
};

} // namespace apc::analysis

#endif // APC_ANALYSIS_TRACE_H
