/**
 * @file
 * Plain-text table formatting for the benchmark harnesses, which print
 * each reproduced paper table/figure as aligned rows of
 * "paper-reported vs simulator-measured" values.
 */

#ifndef APC_ANALYSIS_TABLE_PRINTER_H
#define APC_ANALYSIS_TABLE_PRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace apc::analysis {

/** Column-aligned text table. */
class TablePrinter
{
  public:
    /** @param title caption printed above the table */
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void
    header(std::vector<std::string> cols)
    {
        header_ = std::move(cols);
    }

    /** Append a data row (column count should match the header). */
    void
    row(std::vector<std::string> cols)
    {
        rows_.push_back(std::move(cols));
    }

    /** Render to @p out (stdout by default). */
    void print(std::FILE *out = stdout) const;

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string percent(double frac, int precision = 1);
    static std::string watts(double w, int precision = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace apc::analysis

#endif // APC_ANALYSIS_TABLE_PRINTER_H
