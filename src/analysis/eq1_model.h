/**
 * @file
 * The paper's analytical power model (Sec. 2, Eq. 1).
 *
 *   P_baseline = R_PC0 * P_PC0 + R_PC0idle * P_PC0idle
 *   %P_savings = R_PC1A * (P_PC0idle - P_PC1A) / P_baseline
 *
 * assuming the system spends the baseline's fully-idle time (R_PC0idle)
 * in PC1A instead (R_PC1A = R_PC0idle). The simulator both evaluates
 * this model (with measured residencies) and runs the real APC flow so
 * the two estimates can be cross-checked.
 */

#ifndef APC_ANALYSIS_EQ1_MODEL_H
#define APC_ANALYSIS_EQ1_MODEL_H

namespace apc::analysis {

/** Inputs to Eq. 1. */
struct Eq1Inputs
{
    double rPc0 = 0.0;      ///< residency with >=1 core active
    double rPc0idle = 0.0;  ///< residency with all cores idle (CC1)
    double pPc0 = 0.0;      ///< SoC+DRAM power in PC0, watts
    double pPc0idle = 0.0;  ///< SoC+DRAM power in PC0idle, watts
    double pPc1a = 0.0;     ///< SoC+DRAM power in PC1A, watts
};

/** Baseline average power per Eq. 1, watts. */
double eq1BaselinePower(const Eq1Inputs &in);

/** Fractional savings per Eq. 1, in [0,1]. */
double eq1Savings(const Eq1Inputs &in);

/** Average power with PC1A enabled, watts. */
double eq1PowerWithPc1a(const Eq1Inputs &in);

/**
 * The idle-server special case (R_PC0 = 0, R_PC0idle = 1):
 * savings = 1 - P_PC1A / P_PC0idle.
 */
double eq1IdleSavings(double p_pc0idle, double p_pc1a);

} // namespace apc::analysis

#endif // APC_ANALYSIS_EQ1_MODEL_H
