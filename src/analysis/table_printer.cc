#include "analysis/table_printer.h"

#include <algorithm>

namespace apc::analysis {

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::percent(double frac, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, frac * 100.0);
    return buf;
}

std::string
TablePrinter::watts(double w, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fW", precision, w);
    return buf;
}

void
TablePrinter::print(std::FILE *out) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cols) {
        if (widths.size() < cols.size())
            widths.resize(cols.size(), 0);
        for (std::size_t i = 0; i < cols.size(); ++i)
            widths[i] = std::max(widths[i], cols[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;

    std::fprintf(out, "\n== %s ==\n", title_.c_str());
    auto emit = [&](const std::vector<std::string> &cols) {
        for (std::size_t i = 0; i < cols.size(); ++i)
            std::fprintf(out, "%-*s", static_cast<int>(widths[i] + 2),
                         cols[i].c_str());
        std::fprintf(out, "\n");
    };
    if (!header_.empty()) {
        emit(header_);
        std::fprintf(out, "%s\n",
                     std::string(std::max<std::size_t>(total, 4), '-')
                         .c_str());
    }
    for (const auto &r : rows_)
        emit(r);
}

} // namespace apc::analysis
