/**
 * @file
 * Memory controller + DRAM device power model (paper Sec. 3.1, 4.2.2).
 *
 * Two DRAM power-saving mechanisms matter to APC:
 *
 * - **CKE-off power-down**: per-rank clock-enable gating with ns-scale
 *   transitions (entry ~10 ns, exit ~24 ns) and ≥50% power reduction.
 *   APC adds the `Allow_CKE_OFF` input: while high, the controller drops
 *   into CKE-off as soon as all outstanding transactions complete.
 * - **Self-refresh**: the DRAM refreshes itself and most of the SoC-DRAM
 *   interface powers down. Deepest savings, but µs-scale exit; legacy
 *   package C-states (PC6) use it, PC1A deliberately does not.
 *
 * Each MemoryController owns one PowerLoad on the Package plane (the
 * controller + DDR PHY) and one on the DRAM plane (the devices).
 */

#ifndef APC_DRAM_MEMORY_CONTROLLER_H
#define APC_DRAM_MEMORY_CONTROLLER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "power/energy_meter.h"
#include "sim/signal.h"
#include "sim/simulation.h"
#include "stats/residency.h"

namespace apc::dram {

/** Controller/DRAM power mode. */
enum class McState : std::size_t
{
    Active = 0,      ///< CKE on; DRAM ready
    CkeOff = 1,      ///< clock-enable dropped; ns-scale wake
    SelfRefresh = 2, ///< DRAM self-refreshing; µs-scale wake
};

inline constexpr std::size_t kNumMcStates = 3;

/** Display name. */
constexpr const char *
mcStateName(McState s)
{
    switch (s) {
      case McState::Active:
        return "Active";
      case McState::CkeOff:
        return "CKE-off";
      case McState::SelfRefresh:
        return "SelfRefresh";
    }
    return "?";
}

/** Per-controller configuration (calibration in DESIGN.md Sec. 3). */
struct MemoryControllerConfig
{
    std::string name = "mc";
    sim::Tick ckeOffEntry = 10 * sim::kNs;
    sim::Tick ckeOffExit = 24 * sim::kNs;
    sim::Tick selfRefreshEntry = 1 * sim::kUs;
    sim::Tick selfRefreshExit = 10 * sim::kUs;
    /** Controller + DDR PHY power (Package plane). */
    double mcActiveWatts = 1.25;
    double mcCkeOffWatts = 0.375;
    double mcSelfRefreshWatts = 0.30;
    /** DRAM device power (DRAM plane), per controller. */
    double dramIdleWatts = 2.75;    ///< CKE on, no traffic
    double dramBusyExtraWatts = 0.75; ///< added while transactions run
    double dramCkeOffWatts = 0.80;
    double dramSelfRefreshWatts = 0.255;
};

/** One of the SoC's memory controllers. */
class MemoryController
{
  public:
    MemoryController(sim::Simulation &sim, power::EnergyMeter &meter,
                     const MemoryControllerConfig &cfg);

    /**
     * Issue a memory access. Wakes the DRAM as needed; @p on_ready fires
     * when the controller can serve (the caller then brackets the actual
     * use with begin/endAccess or relies on the implicit transaction this
     * call holds until @p hold_time elapses).
     */
    void access(sim::Tick hold_time, std::function<void()> on_ready);

    /** Manually bracket a period of memory traffic. */
    void beginAccess();
    void endAccess();

    /** APC input: while high, idle controller drops CKE. */
    sim::Signal &allowCkeOff() { return allowCkeOff_; }

    /** Status wire: high while the controller can serve immediately. */
    sim::Signal &active() { return active_; }

    /** GPMU (PC6) flow: put DRAM into self-refresh. */
    void enterSelfRefresh(std::function<void()> done);

    /** GPMU (PC6) flow: leave self-refresh. */
    void exitSelfRefresh(std::function<void()> done);

    McState state() const { return state_; }
    bool busy() const { return transactions_ > 0; }

    /** Residency counters indexed by McState. */
    const stats::ResidencyCounter<kNumMcStates> &residency() const
    {
        return residency_;
    }

    /** Reset residency statistics (start of a measurement window). */
    void
    resetResidency(sim::Tick now)
    {
        residency_.reset(now);
    }

    /** Completed CKE-off wakeups. */
    std::uint64_t ckeWakes() const { return ckeWakes_; }

    const MemoryControllerConfig &config() const { return cfg_; }

  private:
    void setState(McState s);
    void updatePower();
    /** Enter CKE-off if allowed and idle. */
    void maybePowerDown();
    /** Begin waking to Active; waiters drain at completion. */
    void beginWake();

    sim::Simulation &sim_;
    MemoryControllerConfig cfg_;
    McState state_ = McState::Active;
    int transactions_ = 0;
    bool transitioning_ = false;
    sim::Signal allowCkeOff_;
    sim::Signal active_;
    power::PowerLoad mcLoad_;
    power::PowerLoad dramLoad_;
    stats::ResidencyCounter<kNumMcStates> residency_;
    sim::EventHandle downEvent_;       ///< pending CKE-off entry
    sim::EventHandle transitionEvent_; ///< wake / self-refresh entry
    std::vector<std::function<void()>> waiters_;
    std::uint64_t ckeWakes_ = 0;
};

} // namespace apc::dram

#endif // APC_DRAM_MEMORY_CONTROLLER_H
