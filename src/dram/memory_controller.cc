#include "dram/memory_controller.h"

#include <cassert>
#include <utility>

namespace apc::dram {

MemoryController::MemoryController(sim::Simulation &sim,
                                   power::EnergyMeter &meter,
                                   const MemoryControllerConfig &cfg)
    : sim_(sim), cfg_(cfg),
      allowCkeOff_(sim, cfg.name + ".Allow_CKE_OFF", false),
      active_(sim, cfg.name + ".active", true),
      mcLoad_(meter, cfg.name, power::Plane::Package, cfg.mcActiveWatts),
      dramLoad_(meter, cfg.name + ".dram", power::Plane::Dram,
                cfg.dramIdleWatts),
      residency_(static_cast<std::size_t>(McState::Active), sim.now())
{
    allowCkeOff_.subscribe([this](bool allowed) {
        if (allowed) {
            maybePowerDown();
        } else {
            downEvent_.cancel();
            if (state_ == McState::CkeOff && !transitioning_)
                beginWake();
        }
    });
}

void
MemoryController::setState(McState s)
{
    state_ = s;
    residency_.transitionTo(static_cast<std::size_t>(s), sim_.now());
    updatePower();
    active_.write(s == McState::Active && !transitioning_);
}

void
MemoryController::updatePower()
{
    switch (state_) {
      case McState::Active:
        mcLoad_.setPower(cfg_.mcActiveWatts);
        dramLoad_.setPower(cfg_.dramIdleWatts +
                           (transactions_ > 0 ? cfg_.dramBusyExtraWatts
                                              : 0.0));
        break;
      case McState::CkeOff:
        mcLoad_.setPower(cfg_.mcCkeOffWatts);
        dramLoad_.setPower(cfg_.dramCkeOffWatts);
        break;
      case McState::SelfRefresh:
        mcLoad_.setPower(cfg_.mcSelfRefreshWatts);
        dramLoad_.setPower(cfg_.dramSelfRefreshWatts);
        break;
    }
}

void
MemoryController::maybePowerDown()
{
    if (state_ != McState::Active || transitioning_ || transactions_ > 0 ||
        !allowCkeOff_.read()) {
        return;
    }
    downEvent_.cancel();
    // "The memory controller enters CKE off mode as soon as it completes
    // all outstanding memory transactions" — entry takes ~10 ns.
    downEvent_ = sim_.after(cfg_.ckeOffEntry, [this] {
        if (transactions_ > 0 || !allowCkeOff_.read())
            return;
        setState(McState::CkeOff);
    });
}

void
MemoryController::beginWake()
{
    assert(!transitioning_ && state_ != McState::Active);
    transitioning_ = true;
    active_.write(false);
    const sim::Tick exit_lat = state_ == McState::CkeOff
        ? cfg_.ckeOffExit : cfg_.selfRefreshExit;
    // Wake burns active-level power (DLL / interface re-enable).
    mcLoad_.setPower(cfg_.mcActiveWatts);
    transitionEvent_ = sim_.after(exit_lat, [this] {
        transitioning_ = false;
        if (state_ == McState::CkeOff)
            ++ckeWakes_;
        setState(McState::Active);
        auto waiters = std::move(waiters_);
        waiters_.clear();
        for (auto &w : waiters)
            if (w)
                w();
        // If the wake was spurious (e.g. Allow_CKE_OFF still set and no
        // traffic arrived), drop straight back down.
        maybePowerDown();
    });
}

void
MemoryController::access(sim::Tick hold_time, std::function<void()> on_ready)
{
    ++transactions_;
    downEvent_.cancel();

    auto serve = [this, hold_time, on_ready = std::move(on_ready)] {
        updatePower();
        if (on_ready)
            on_ready();
        sim_.after(hold_time, [this] {
            --transactions_;
            assert(transactions_ >= 0);
            updatePower();
            maybePowerDown();
        });
    };

    if (state_ == McState::Active && !transitioning_) {
        serve();
        return;
    }
    waiters_.push_back(std::move(serve));
    if (!transitioning_)
        beginWake();
}

void
MemoryController::beginAccess()
{
    ++transactions_;
    downEvent_.cancel();
    if (state_ == McState::Active && !transitioning_)
        updatePower();
    else if (!transitioning_)
        beginWake();
}

void
MemoryController::endAccess()
{
    --transactions_;
    assert(transactions_ >= 0);
    if (state_ == McState::Active)
        updatePower();
    maybePowerDown();
}

void
MemoryController::enterSelfRefresh(std::function<void()> done)
{
    assert(transactions_ == 0 && !transitioning_ &&
           "self-refresh entry requires a quiesced controller");
    if (state_ == McState::SelfRefresh) {
        if (done)
            done();
        return;
    }
    downEvent_.cancel();
    transitioning_ = true;
    active_.write(false);
    transitionEvent_ = sim_.after(cfg_.selfRefreshEntry,
                               [this, done = std::move(done)] {
        transitioning_ = false;
        setState(McState::SelfRefresh);
        if (done)
            done();
    });
}

void
MemoryController::exitSelfRefresh(std::function<void()> done)
{
    assert(state_ == McState::SelfRefresh);
    waiters_.push_back(std::move(done));
    if (!transitioning_)
        beginWake();
}

} // namespace apc::dram
