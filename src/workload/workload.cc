#include "workload/workload.h"

namespace apc::workload {

std::unique_ptr<ArrivalProcess>
WorkloadConfig::makeArrivals() const
{
    switch (arrivalKind) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(qps);
      case ArrivalKind::Deterministic:
        return std::make_unique<DeterministicArrivals>(
            sim::fromSeconds(1.0 / qps));
      case ArrivalKind::Mmpp:
        return std::make_unique<MmppArrivals>(qps, burstiness, burstMean);
    }
    return std::make_unique<PoissonArrivals>(qps);
}

std::unique_ptr<ServiceDist>
WorkloadConfig::makeService() const
{
    switch (serviceKind) {
      case ServiceKind::Fixed:
        return std::make_unique<FixedService>(serviceMean);
      case ServiceKind::Exponential:
        return std::make_unique<ExponentialService>(serviceMean);
      case ServiceKind::Lognormal:
        return std::make_unique<LognormalService>(serviceMean,
                                                  serviceSigma);
      case ServiceKind::Bimodal:
        return std::make_unique<BimodalService>(serviceMean, serviceRare,
                                                serviceRareProb);
    }
    return std::make_unique<FixedService>(serviceMean);
}

sim::Tick
WorkloadConfig::meanServiceTicks() const
{
    return makeService()->mean();
}

WorkloadConfig
WorkloadConfig::memcachedEtc(double qps)
{
    WorkloadConfig w;
    w.name = "memcached-etc";
    // Mutilate's load generator is open-loop with exponential
    // inter-arrivals, but TCP batching across the 4 client machines
    // adds a mild ON/OFF macro-modulation on top of the Poisson core.
    w.arrivalKind = ArrivalKind::Mmpp;
    w.qps = qps;
    w.burstiness = 1.25;
    w.burstMean = 400 * sim::kUs;
    // ETC: dominated by small GETs with a slow tail of multigets/SETs.
    w.serviceKind = ServiceKind::Bimodal;
    w.serviceMean = 10 * sim::kUs;
    w.serviceRare = 60 * sim::kUs;
    w.serviceRareProb = 0.03;
    // Sparse arrivals pay the full interrupt path + idle-governor +
    // cold-µarch wake cost; arrivals that coalesce into one NAPI poll
    // share it. This is what makes per-request CPU cost shrink with
    // load on real servers (util 2-3% at 4K QPS -> ~20% at 100K QPS).
    w.wakeOverhead = 45 * sim::kUs;
    w.wakeOverheadCoalesced = 5 * sim::kUs;
    w.coalesceWindow = 50 * sim::kUs;
    return w;
}

WorkloadConfig
WorkloadConfig::mysqlOltp(double qps)
{
    WorkloadConfig w;
    w.name = "mysql-oltp";
    // OLTP transactions cluster (multi-statement sessions, commit
    // groups) — moderate ON/OFF modulation keeps some all-idle time
    // even at the paper's 42% load point.
    w.arrivalKind = ArrivalKind::Mmpp;
    w.qps = qps;
    w.burstiness = 1.6;
    w.burstMean = 10 * sim::kMs;
    w.serviceKind = ServiceKind::Lognormal;
    w.serviceMean = 1 * sim::kMs;
    w.serviceSigma = 0.6;
    w.wakeOverhead = 30 * sim::kUs;
    w.wakeOverheadCoalesced = 10 * sim::kUs;
    w.coalesceWindow = 100 * sim::kUs;
    return w;
}

WorkloadConfig
WorkloadConfig::kafka(double qps)
{
    WorkloadConfig w;
    w.name = "kafka";
    // Consumer/producer perf clients poll continuously, spreading event
    // handling almost uniformly across time; only a mild batching
    // modulation remains.
    w.arrivalKind = ArrivalKind::Mmpp;
    w.qps = qps;
    w.burstiness = 1.2;
    w.burstMean = 500 * sim::kUs;
    w.serviceKind = ServiceKind::Lognormal;
    w.serviceMean = 100 * sim::kUs;
    w.serviceSigma = 0.5;
    w.wakeOverhead = 25 * sim::kUs;
    w.wakeOverheadCoalesced = 5 * sim::kUs;
    w.coalesceWindow = 100 * sim::kUs;
    return w;
}

double
WorkloadConfig::qpsForUtilization(double util, int num_cores) const
{
    // util ≈ qps * (service + wake cost) / cores. At the moderate loads
    // the paper evaluates, arrivals are sparse enough that most pay a
    // wake, but bursty workloads amortize some of it; split the
    // difference between the full and coalesced overhead.
    const double per_req = sim::toSeconds(
        meanServiceTicks() + (wakeOverhead + wakeOverheadCoalesced) / 2);
    return util * static_cast<double>(num_cores) / per_req;
}

} // namespace apc::workload
