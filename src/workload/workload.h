/**
 * @file
 * Workload presets reconstructing the paper's three services (Sec. 6):
 *
 * - **Memcached** driven by Mutilate replaying the Facebook ETC trace:
 *   µs-scale bimodal-ish service times, bursty arrivals, 4K–600K QPS.
 * - **MySQL** driven by sysbench OLTP: ms-scale transactions; the paper
 *   evaluates 8/16/42% processor load points.
 * - **Kafka** consumer/producer perf: ~100 µs event handling; 8/16% load.
 *
 * Each request additionally pays a wake overhead when it lands on a core
 * that was idle (interrupt path, cold µarch state, event-loop wakeup) —
 * the reason per-request CPU cost shrinks at high load in real servers.
 *
 * `OsNoise` models the residual housekeeping timer tick of a NOHZ-idle
 * kernel, which bounds idle-period length on an otherwise idle system.
 */

#ifndef APC_WORKLOAD_WORKLOAD_H
#define APC_WORKLOAD_WORKLOAD_H

#include <memory>
#include <string>

#include "workload/arrival.h"
#include "workload/service.h"

namespace apc::workload {

/** Arrival process shapes. */
enum class ArrivalKind { Poisson, Mmpp, Deterministic };

/** Service distribution shapes. */
enum class ServiceKind { Fixed, Exponential, Lognormal, Bimodal };

/** OS background activity (NOHZ-idle residual housekeeping tick). */
struct OsNoise
{
    bool enabled = true;
    /** Residual housekeeping tick on core 0. NOHZ-idle kernels stop the
     *  periodic tick on idle cores; what remains fires rarely. */
    sim::Tick tickPeriod = 100 * sim::kMs;
    sim::Tick tickWork = 2 * sim::kUs; ///< CPU time per tick
};

/** Complete workload description. */
struct WorkloadConfig
{
    std::string name = "workload";

    ArrivalKind arrivalKind = ArrivalKind::Mmpp;
    double qps = 10000.0;
    double burstiness = 3.0;            ///< MMPP ON-rate multiplier
    sim::Tick burstMean = 200 * sim::kUs; ///< MMPP mean ON duration

    ServiceKind serviceKind = ServiceKind::Lognormal;
    sim::Tick serviceMean = 12 * sim::kUs;
    double serviceSigma = 0.5;
    sim::Tick serviceRare = 0;   ///< Bimodal slow mode
    double serviceRareProb = 0.0;

    /**
     * Extra CPU time when the serving core was woken for the request
     * and the arrival did not coalesce with a recent one: the full
     * interrupt path, idle-governor exit and cold-µarch refill.
     */
    sim::Tick wakeOverhead = 25 * sim::kUs;

    /**
     * Reduced overhead when the arrival lands within coalesceWindow of
     * the previous one (NAPI/interrupt coalescing shares the wake).
     */
    sim::Tick wakeOverheadCoalesced = 5 * sim::kUs;

    /** Arrival gap below which wake costs coalesce. */
    sim::Tick coalesceWindow = 50 * sim::kUs;

    /** NIC link occupancy per request (RX and TX each). */
    sim::Tick nicTransfer = 200 * sim::kNs;

    /**
     * Network-stack completion work (TX softirq / interrupt handling)
     * that lands on a *different* core than the application thread —
     * IRQ affinity spreads it across the machine, fragmenting
     * simultaneous idleness at load (visible in Fig. 6b).
     */
    sim::Tick softirqWork = 3 * sim::kUs;

    OsNoise noise{};

    /** Build the arrival process. */
    std::unique_ptr<ArrivalProcess> makeArrivals() const;

    /** Build the service distribution. */
    std::unique_ptr<ServiceDist> makeService() const;

    /** Mean per-request CPU time ignoring wake overheads. */
    sim::Tick meanServiceTicks() const;

    // --- presets (paper Sec. 6) ---

    /** Memcached / Mutilate ETC at the given request rate. */
    static WorkloadConfig memcachedEtc(double qps);

    /** MySQL / sysbench OLTP at the given request rate. */
    static WorkloadConfig mysqlOltp(double qps);

    /** Kafka consumer/producer perf at the given request rate. */
    static WorkloadConfig kafka(double qps);

    /**
     * Request rate that produces roughly the given processor
     * utilization for this workload on @p num_cores cores (used to hit
     * the paper's 8%/16%/42% MySQL and 8%/16% Kafka load points).
     */
    double qpsForUtilization(double util, int num_cores) const;
};

} // namespace apc::workload

#endif // APC_WORKLOAD_WORKLOAD_H
