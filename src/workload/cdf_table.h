/**
 * @file
 * CDF-table distributions (TrafficGenerator idiom).
 *
 * Datacenter traffic studies publish request-size / service-demand
 * distributions as empirical CDF tables: one `<value> <cdf>` pair per
 * line, values ascending, cdf non-decreasing up to 1 (or 100 — percent
 * tables are auto-normalized). `CdfTable` loads such a file and samples
 * it by inverse transform with linear interpolation between the table
 * points, matching HKUST-SING/TrafficGenerator's `gen_random_cdf`. The
 * table's analytic mean is exposed so load targets ("run the cluster at
 * 30% utilization") can be converted to request rates without sampling.
 */

#ifndef APC_WORKLOAD_CDF_TABLE_H
#define APC_WORKLOAD_CDF_TABLE_H

#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/service.h"

namespace apc::workload {

/** Empirical distribution defined by a piecewise-linear CDF. */
class CdfTable
{
  public:
    /** One CDF point: P(X <= value) = cdf. */
    struct Point
    {
        double value;
        double cdf;
    };

    CdfTable() = default;

    /**
     * Build from points. Values must be non-negative and ascending, cdf
     * non-decreasing with the last entry > 0; a final cdf of 100 (or any
     * value > 1) switches percent interpretation and normalizes by it.
     * Invalid input yields an empty table (check valid()).
     */
    explicit CdfTable(std::vector<Point> points);

    /**
     * Load from a text file: `<value> <cdf>` per line, '#' comments and
     * blank lines ignored. Returns an empty table on IO/parse failure.
     */
    static CdfTable fromFile(const std::string &path);

    /** Parse from an in-memory string (same format as fromFile). */
    static CdfTable fromString(const std::string &text);

    bool valid() const { return !points_.empty(); }
    std::size_t size() const { return points_.size(); }
    const std::vector<Point> &points() const { return points_; }

    /**
     * Sample by inverse transform: draw u ~ U[0,1) and interpolate
     * linearly between the bracketing table points. Mass below the first
     * point's cdf interpolates from (0, 0), TrafficGenerator-style.
     * @return 0 on an empty table.
     */
    double sample(sim::Rng &rng) const;

    /** Analytic mean of the piecewise-linear distribution. */
    double mean() const { return mean_; }

    /** Largest table value (the distribution's upper bound). */
    double maxValue() const;

  private:
    void finalize();

    std::vector<Point> points_; ///< normalized: cdf in [0,1], last == 1
    double mean_ = 0.0;
};

/**
 * Service-time distribution backed by a CDF table. Table values are
 * unit-less (bytes, KB, µs — whatever the trace recorded); @p unit
 * converts one table unit into simulator ticks, e.g. `sim::kUs` for a
 * table in microseconds or a per-KB service cost for a size table.
 */
class CdfService : public ServiceDist
{
  public:
    CdfService(CdfTable table, double unit_ticks)
        : table_(std::move(table)), unit_(unit_ticks)
    {}

    sim::Tick
    sample(sim::Rng &rng) override
    {
        return static_cast<sim::Tick>(table_.sample(rng) * unit_);
    }

    sim::Tick
    mean() const override
    {
        return static_cast<sim::Tick>(table_.mean() * unit_);
    }

    const CdfTable &table() const { return table_; }

  private:
    CdfTable table_;
    double unit_;
};

} // namespace apc::workload

#endif // APC_WORKLOAD_CDF_TABLE_H
