#include "workload/trace_arrivals.h"

#include <cstdio>

namespace apc::workload {

TraceArrivals::TraceArrivals(std::vector<sim::Tick> arrivals, bool loop)
    : arrivals_(std::move(arrivals)), loop_(loop)
{}

sim::Tick
TraceArrivals::nextGap(sim::Rng &)
{
    if (arrivals_.empty())
        return sim::kTickNever;
    if (pos_ >= arrivals_.size()) {
        if (!loop_)
            return sim::kTickNever;
        pos_ = 0;
        lastAbs_ = 0;
        // Fall through: replay from the start of the period.
    }
    const sim::Tick abs = arrivals_[pos_++];
    const sim::Tick gap = abs - lastAbs_;
    lastAbs_ = abs;
    return gap > 0 ? gap : 0;
}

double
TraceArrivals::ratePerSec() const
{
    if (arrivals_.empty() || arrivals_.back() <= 0)
        return 0.0;
    return static_cast<double>(arrivals_.size()) /
        sim::toSeconds(arrivals_.back());
}

TraceArrivals
TraceArrivals::fromFile(const std::string &path, bool loop)
{
    std::vector<sim::Tick> out;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return TraceArrivals({}, loop);
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#' || line[0] == '\n')
            continue;
        double seconds = 0.0;
        if (std::sscanf(line, "%lf", &seconds) == 1)
            out.push_back(sim::fromSeconds(seconds));
    }
    std::fclose(f);
    return TraceArrivals(std::move(out), loop);
}

bool
TraceArrivals::toFile(const std::string &path,
                      const std::vector<sim::Tick> &arrivals)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "# arrival timestamps, seconds, one per line\n");
    for (const sim::Tick t : arrivals)
        std::fprintf(f, "%.9f\n", sim::toSeconds(t));
    std::fclose(f);
    return true;
}

std::vector<sim::Tick>
TraceArrivals::synthesize(ArrivalProcess &source, sim::Rng &rng,
                          sim::Tick duration)
{
    std::vector<sim::Tick> out;
    sim::Tick t = 0;
    for (;;) {
        t += source.nextGap(rng);
        if (t > duration)
            break;
        out.push_back(t);
    }
    return out;
}

} // namespace apc::workload
