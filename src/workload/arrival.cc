#include "workload/arrival.h"

#include <cassert>

namespace apc::workload {

MmppArrivals::MmppArrivals(double qps, double burstiness, sim::Tick on_mean)
    : qps_(qps), burstiness_(burstiness), onMean_(on_mean)
{
    assert(burstiness >= 1.0);
    // ON fraction f = 1/burstiness keeps the long-run rate at qps while
    // the ON-phase instantaneous rate is burstiness * qps.
    const double f = 1.0 / burstiness_;
    offMean_ = f >= 1.0 ? 0
        : static_cast<sim::Tick>(static_cast<double>(onMean_)
                                 * (1.0 - f) / f);
}

sim::Tick
MmppArrivals::nextGap(sim::Rng &rng)
{
    if (burstiness_ <= 1.0 || offMean_ == 0)
        return sim::fromSeconds(rng.exponential(1.0 / qps_));

    const double on_rate = qps_ * burstiness_;
    sim::Tick gap = 0;
    // Walk phases until an arrival lands inside an ON phase.
    for (;;) {
        if (phaseLeft_ <= 0) {
            phaseLeft_ = sim::fromSeconds(rng.exponential(
                sim::toSeconds(on_ ? onMean_ : offMean_)));
        }
        if (!on_) {
            gap += phaseLeft_;
            phaseLeft_ = 0;
            on_ = true;
            continue;
        }
        const sim::Tick draw =
            sim::fromSeconds(rng.exponential(1.0 / on_rate));
        if (draw <= phaseLeft_) {
            phaseLeft_ -= draw;
            return gap + draw;
        }
        gap += phaseLeft_;
        phaseLeft_ = 0;
        on_ = false;
    }
}

} // namespace apc::workload
