/**
 * @file
 * Request arrival processes.
 *
 * The paper's load generators (Mutilate replaying Facebook ETC, sysbench
 * OLTP, Kafka perf clients) produce bursty, unpredictable arrivals — the
 * defining property that makes deep C-states dangerous (Sec. 1). We model
 * arrivals as either a Poisson process or a two-phase Markov-modulated
 * Poisson process (ON/OFF bursts), which reproduces the busy/idle pattern
 * of datacenter traffic.
 */

#ifndef APC_WORKLOAD_ARRIVAL_H
#define APC_WORKLOAD_ARRIVAL_H

#include <memory>

#include "sim/rng.h"
#include "sim/time.h"

namespace apc::workload {

/** Generator of inter-arrival gaps. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Time from now until the next request arrives. */
    virtual sim::Tick nextGap(sim::Rng &rng) = 0;

    /** Mean request rate in queries/second. */
    virtual double ratePerSec() const = 0;
};

/** Memoryless arrivals at a fixed mean rate. */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(double qps) : qps_(qps) {}

    sim::Tick
    nextGap(sim::Rng &rng) override
    {
        return sim::fromSeconds(rng.exponential(1.0 / qps_));
    }

    double ratePerSec() const override { return qps_; }

  private:
    double qps_;
};

/** Fixed-interval arrivals (for deterministic tests). */
class DeterministicArrivals : public ArrivalProcess
{
  public:
    explicit DeterministicArrivals(sim::Tick gap) : gap_(gap) {}

    sim::Tick nextGap(sim::Rng &) override { return gap_; }

    double
    ratePerSec() const override
    {
        return 1.0 / sim::toSeconds(gap_);
    }

  private:
    sim::Tick gap_;
};

/**
 * ON/OFF Markov-modulated Poisson arrivals.
 *
 * The process alternates between an ON phase (Poisson at
 * `burstiness * qps` so the long-run average stays `qps`) and a silent
 * OFF phase. Phase durations are exponential; the ON fraction is
 * 1/burstiness.
 */
class MmppArrivals : public ArrivalProcess
{
  public:
    /**
     * @param qps        long-run average rate
     * @param burstiness ON-phase rate multiplier (>1); 1 = Poisson
     * @param on_mean    mean ON-phase duration
     */
    MmppArrivals(double qps, double burstiness, sim::Tick on_mean);

    sim::Tick nextGap(sim::Rng &rng) override;

    double ratePerSec() const override { return qps_; }

  private:
    double qps_;
    double burstiness_;
    sim::Tick onMean_;
    sim::Tick offMean_;
    bool on_ = true;
    sim::Tick phaseLeft_ = 0;
};

} // namespace apc::workload

#endif // APC_WORKLOAD_ARRIVAL_H
