/**
 * @file
 * Trace-replayed arrivals.
 *
 * The paper drives its server with recorded client traffic (Mutilate
 * replaying the Facebook ETC trace). The original traces are not
 * public, so `TraceArrivals` supports the same workflow on
 * reconstructed traces: a list of absolute arrival timestamps, loadable
 * from a simple one-timestamp-per-line text file (seconds), replayed
 * exactly and optionally looped. `synthesize()` produces such a trace
 * from any ArrivalProcess so experiments can be re-run bit-identically
 * across machines and bindings.
 */

#ifndef APC_WORKLOAD_TRACE_ARRIVALS_H
#define APC_WORKLOAD_TRACE_ARRIVALS_H

#include <string>
#include <vector>

#include "workload/arrival.h"

namespace apc::workload {

/** Replays a fixed arrival-timestamp trace. */
class TraceArrivals : public ArrivalProcess
{
  public:
    /**
     * @param arrivals absolute arrival times, sorted ascending
     * @param loop     wrap around at the end (period = last timestamp)
     */
    explicit TraceArrivals(std::vector<sim::Tick> arrivals,
                           bool loop = true);

    sim::Tick nextGap(sim::Rng &rng) override;
    double ratePerSec() const override;

    std::size_t size() const { return arrivals_.size(); }
    bool exhausted() const { return !loop_ && pos_ >= arrivals_.size(); }

    /**
     * Load a trace from a text file: one arrival timestamp per line, in
     * seconds; '#' lines are comments. Returns an empty trace on IO
     * failure (check size()).
     */
    static TraceArrivals fromFile(const std::string &path,
                                  bool loop = true);

    /** Write a trace in the same format. @return false on IO failure. */
    static bool toFile(const std::string &path,
                       const std::vector<sim::Tick> &arrivals);

    /**
     * Synthesize a trace by sampling @p source for @p duration. The
     * result replays identically regardless of later RNG use.
     */
    static std::vector<sim::Tick> synthesize(ArrivalProcess &source,
                                             sim::Rng &rng,
                                             sim::Tick duration);

  private:
    std::vector<sim::Tick> arrivals_;
    bool loop_;
    std::size_t pos_ = 0;
    sim::Tick lastAbs_ = 0;
};

} // namespace apc::workload

#endif // APC_WORKLOAD_TRACE_ARRIVALS_H
