#include "workload/cdf_table.h"

#include <fstream>
#include <sstream>

namespace apc::workload {

CdfTable::CdfTable(std::vector<Point> points) : points_(std::move(points))
{
    finalize();
}

void
CdfTable::finalize()
{
    if (points_.empty())
        return;
    // Validate monotonicity before normalizing.
    double last_v = -1.0, last_c = 0.0;
    for (const Point &p : points_) {
        if (p.value < last_v || p.cdf < last_c || p.value < 0) {
            points_.clear();
            return;
        }
        last_v = p.value;
        last_c = p.cdf;
    }
    const double top = points_.back().cdf;
    if (top <= 0) {
        points_.clear();
        return;
    }
    // Percent tables (0..100) and unnormalized tables both divide out
    // the final cdf so the table always ends at exactly 1.
    if (top != 1.0)
        for (Point &p : points_)
            p.cdf /= top;

    // Analytic mean of the piecewise-linear CDF: each segment carries
    // probability (c_i - c_{i-1}) uniformly over [v_{i-1}, v_i]; the
    // leading segment interpolates from (0, 0) as sample() does.
    double mean = points_.front().cdf *
        (0.0 + points_.front().value) / 2.0;
    for (std::size_t i = 1; i < points_.size(); ++i)
        mean += (points_[i].cdf - points_[i - 1].cdf) *
            (points_[i].value + points_[i - 1].value) / 2.0;
    mean_ = mean;
}

CdfTable
CdfTable::fromString(const std::string &text)
{
    std::istringstream in(text);
    std::vector<Point> pts;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        double v, c;
        if (ls >> v >> c)
            pts.push_back({v, c});
    }
    return CdfTable(std::move(pts));
}

CdfTable
CdfTable::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return CdfTable();
    std::stringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

double
CdfTable::sample(sim::Rng &rng) const
{
    if (points_.empty())
        return 0.0;
    const double u = rng.uniform();
    double lo_v = 0.0, lo_c = 0.0;
    for (const Point &p : points_) {
        if (u <= p.cdf) {
            if (p.cdf <= lo_c) // vertical step (point mass)
                return p.value;
            const double t = (u - lo_c) / (p.cdf - lo_c);
            return lo_v + t * (p.value - lo_v);
        }
        lo_v = p.value;
        lo_c = p.cdf;
    }
    return points_.back().value;
}

double
CdfTable::maxValue() const
{
    return points_.empty() ? 0.0 : points_.back().value;
}

} // namespace apc::workload
