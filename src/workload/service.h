/**
 * @file
 * Per-request service time distributions.
 */

#ifndef APC_WORKLOAD_SERVICE_H
#define APC_WORKLOAD_SERVICE_H

#include "sim/rng.h"
#include "sim/time.h"

namespace apc::workload {

/** Generator of request service times. */
class ServiceDist
{
  public:
    virtual ~ServiceDist() = default;

    /** Sample one service duration. */
    virtual sim::Tick sample(sim::Rng &rng) = 0;

    /** Mean service duration. */
    virtual sim::Tick mean() const = 0;
};

/** Constant service time. */
class FixedService : public ServiceDist
{
  public:
    explicit FixedService(sim::Tick t) : t_(t) {}
    sim::Tick sample(sim::Rng &) override { return t_; }
    sim::Tick mean() const override { return t_; }

  private:
    sim::Tick t_;
};

/** Exponential service times. */
class ExponentialService : public ServiceDist
{
  public:
    explicit ExponentialService(sim::Tick mean) : mean_(mean) {}

    sim::Tick
    sample(sim::Rng &rng) override
    {
        return sim::fromSeconds(rng.exponential(sim::toSeconds(mean_)));
    }

    sim::Tick mean() const override { return mean_; }

  private:
    sim::Tick mean_;
};

/**
 * Log-normal service times (the common fit for key-value and RPC
 * service-time distributions): arithmetic mean @p mean, shape sigma.
 */
class LognormalService : public ServiceDist
{
  public:
    LognormalService(sim::Tick mean, double sigma)
        : mean_(mean), sigma_(sigma)
    {}

    sim::Tick
    sample(sim::Rng &rng) override
    {
        return sim::fromSeconds(
            rng.lognormalWithMean(sim::toSeconds(mean_), sigma_));
    }

    sim::Tick mean() const override { return mean_; }

  private:
    sim::Tick mean_;
    double sigma_;
};

/**
 * Bimodal mix (e.g. ETC: mostly small GETs plus occasional large
 * multi-gets / SETs).
 */
class BimodalService : public ServiceDist
{
  public:
    /**
     * @param common      the frequent mode
     * @param rare        the slow mode
     * @param rare_prob   probability of drawing the slow mode
     */
    BimodalService(sim::Tick common, sim::Tick rare, double rare_prob)
        : common_(common), rare_(rare), rareProb_(rare_prob)
    {}

    sim::Tick
    sample(sim::Rng &rng) override
    {
        const sim::Tick m = rng.bernoulli(rareProb_) ? rare_ : common_;
        // Jitter each mode log-normally (sigma 0.35).
        return sim::fromSeconds(
            rng.lognormalWithMean(sim::toSeconds(m), 0.35));
    }

    sim::Tick
    mean() const override
    {
        return static_cast<sim::Tick>(
            (1.0 - rareProb_) * static_cast<double>(common_)
            + rareProb_ * static_cast<double>(rare_));
    }

  private:
    sim::Tick common_;
    sim::Tick rare_;
    double rareProb_;
};

} // namespace apc::workload

#endif // APC_WORKLOAD_SERVICE_H
