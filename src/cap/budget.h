/**
 * @file
 * Fleet-level power budget allocation under oversubscription.
 *
 * A rack is provisioned for less power than the sum of its servers'
 * nameplate draw (the oversubscription ratio); the allocator's job is
 * to slice the rack budget into per-server RAPL limits every fleet
 * epoch so the breaker never sees the aggregate exceed its rating.
 * Allocation is demand-driven and priority-weighted: every server is
 * guaranteed a floor, recent draw plus a little headroom states its
 * demand, and leftover watts are redistributed by weight so busy
 * (or high-SLO) servers can burst while drained ones shrink toward
 * their floor. A simulated breaker trip slashes the rack budget for a
 * while; the emergency path scales even the floors so the fleet sheds
 * power within one epoch.
 *
 * The allocator is pure arithmetic over the demand vector — no clocks,
 * no RNG — so fleet runs stay bit-identical across thread counts.
 */

#ifndef APC_CAP_BUDGET_H
#define APC_CAP_BUDGET_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace apc::obs {
class TraceWriter;
}

namespace apc::cap {

/** Simulated breaker trip: the rack budget is cut for a window. */
struct BreakerTrip
{
    bool enabled = false;
    sim::Tick at = 0;       ///< trip instant
    sim::Tick duration = 0; ///< how long the derated budget holds
    double factor = 0.5;    ///< budget multiplier while tripped
};

/** Fleet budget configuration. */
struct BudgetConfig
{
    bool enabled = false;

    /** Per-server worst-case (nameplate) package draw, watts. The
     *  simulated Xeon Silver 4114 peaks at ~61 W package power. */
    double serverNameplateW = 62.0;

    /** Rack budget = numServers * nameplateW / oversubscription. */
    double oversubscription = 1.0;

    /** Guaranteed per-server floor (scaled down only on emergency).
     *  The C_PC1A configuration idles at ~27.5 W package power, so
     *  floors below ~28 W are physically unreachable even at full
     *  idle-injection duty. */
    double minServerW = 30.0;

    /** Slack granted above a server's recent draw before the rest of
     *  its share is redistributed to others. */
    double headroomW = 2.0;

    /**
     * Priority/SLO weights, one per server; empty = all equal. Higher
     * weight wins proportionally more of the redistributed headroom.
     */
    std::vector<double> weights;

    BreakerTrip breaker;
};

/** Rack -> server budget allocator. */
class BudgetAllocator
{
  public:
    /** One epoch's allocation decision (for timelines and reports). */
    struct EpochRecord
    {
        sim::Tick at = 0;
        double budgetW = 0.0;    ///< rack budget in force
        double demandW = 0.0;    ///< sum of reported demands
        double allocatedW = 0.0; ///< sum of granted limits
        double unmetW = 0.0;     ///< wanted-but-ungranted watts
        bool emergency = false;  ///< floors had to be scaled
        std::size_t active = 0;  ///< servers participating this epoch
    };

    BudgetAllocator(BudgetConfig cfg, std::size_t num_servers);

    /** Rack budget before any breaker derating. */
    double nominalRackBudgetW() const { return nominalBudgetW_; }

    /** Rack budget in force at @p now (breaker trip applied). */
    double rackBudgetW(sim::Tick now) const;

    /** True while the breaker-trip derating window covers @p now. */
    bool breakerActive(sim::Tick now) const;

    /**
     * Slice the rack budget into per-server limits given each server's
     * recent average draw. Pure function of (now, demand); appends one
     * EpochRecord to the log.
     */
    std::vector<double> allocate(sim::Tick now,
                                 const std::vector<double> &demand_w);

    /**
     * Mark a server dead (crashed/drained) or alive again. An inactive
     * server is dropped from the waterfill entirely — no floor, no
     * demand, no weight, a zero limit — so its guaranteed watts are
     * redistributed to the survivors at the next allocate() call, i.e.
     * within one budget epoch of the fault.
     */
    void setActive(std::size_t i, bool active);

    /** Servers currently participating in allocation. */
    std::size_t activeServers() const;

    const std::vector<EpochRecord> &
    log() const
    {
        sim::SharedRoleGuard own(epochLog_);
        return log_;
    }

    std::uint64_t
    epochs() const
    {
        sim::SharedRoleGuard own(epochLog_);
        return log_.size();
    }

    /** Epochs where even the floors exceeded the rack budget. */
    std::uint64_t
    emergencyEpochs() const
    {
        sim::SharedRoleGuard own(epochLog_);
        return emergencyEpochs_;
    }

    /**
     * Mean demand/budget ratio over logged epochs at or after @p from:
     * how much of the provisioned rack power the fleet actually wanted.
     */
    double budgetUtilization(sim::Tick from = 0) const;

    const BudgetConfig &config() const { return cfg_; }

    /** Mirror each epoch's decision into @p w (Budget track counters;
     *  null disables). */
    void setTrace(obs::TraceWriter *w) { trace_ = w; }

  private:
    double weight(std::size_t i) const;

    BudgetConfig cfg_;
    std::size_t n_;
    double nominalBudgetW_;
    /** Per-server liveness mask (1 = participates in allocation). */
    std::vector<std::uint8_t> active_;
    /**
     * Epoch-log ownership capability: allocate() runs on the
     * single-threaded fleet spine between parallel phases, so the log
     * has one writer and post-run readers. Guards are runtime no-ops;
     * the discipline is checked by the TSan CI job.
     */
    mutable sim::Role epochLog_;
    std::vector<EpochRecord> log_ APC_GUARDED_BY(epochLog_);
    std::uint64_t emergencyEpochs_ APC_GUARDED_BY(epochLog_) = 0;
    obs::TraceWriter *trace_ = nullptr;
};

} // namespace apc::cap

#endif // APC_CAP_BUDGET_H
