#include "cap/power_cap.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apc::cap {

PowerCapController::PowerCapController(const CapConfig &cfg,
                                       std::size_t num_pstates,
                                       std::size_t nominal_pstate)
    : cfg_(cfg), numPStates_(num_pstates), nominal_(nominal_pstate),
      limitW_(cfg.limitW),
      window_(static_cast<std::size_t>(std::max(1, cfg.windowSamples)),
              0.0)
{
    assert(nominal_pstate < num_pstates);
    actuation_ = actuate(0.0);
}

double
PowerCapController::windowPowerW() const
{
    if (windowFill_ == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < windowFill_; ++i)
        acc += window_[i];
    return acc / static_cast<double>(windowFill_);
}

void
PowerCapController::setLimit(double watts, sim::Tick now)
{
    if (watts == limitW_)
        return;
    const double avg = windowPowerW();
    const bool tightened = limitW_ <= 0 || watts < limitW_;
    limitW_ = watts;
    // Loosening never needs re-settling (compliance only got easier);
    // without this, a budget allocator retargeting limits every epoch
    // would keep the violation accounting in its grace period forever.
    if (tightened)
        settleUntil_ = now + cfg_.settleTime;
    if (limitW_ <= 0) {
        integral_ = 0.0;
        lastU_ = 0.0;
        actuation_ = actuate(0.0);
        return;
    }
    // Feed-forward on an emergency cut: seed the integral with the
    // authority a proportional-only controller would need, so the next
    // injection period already sheds most of the excess. The integral
    // term then trims the residual error.
    if (avg > limitW_ && avg > 0) {
        const double jump = (avg - limitW_) / avg * 1.5;
        integral_ = std::clamp(std::max(integral_, jump), 0.0, 1.0);
        lastU_ = integral_;
        actuation_ = actuate(lastU_);
    }
}

CapActuation
PowerCapController::actuate(double u) const
{
    CapActuation act;
    if (u <= 0 || limitW_ <= 0)
        return act;
    const auto clamp_for = [this](double share) {
        // share in [0,1] interpolates the ceiling from the nominal
        // point down to the slowest entry of the table.
        const double idx = static_cast<double>(nominal_) * (1.0 - share);
        return static_cast<std::size_t>(std::lround(idx));
    };
    switch (cfg_.actuator) {
      case CapActuator::DvfsOnly:
        act.pstateClamp = clamp_for(u);
        break;
      case CapActuator::IdleInject:
        act.idleDuty = u * cfg_.maxIdleDuty;
        break;
      case CapActuator::Hybrid: {
        const double s = std::clamp(cfg_.hybridDvfsShare, 0.01, 0.99);
        if (u <= s) {
            act.pstateClamp = clamp_for(u / s);
        } else {
            act.pstateClamp = 0;
            act.idleDuty = (u - s) / (1.0 - s) * cfg_.maxIdleDuty;
        }
        break;
      }
    }
    return act;
}

CapActuation
PowerCapController::onSample(sim::Tick now, double interval_w)
{
    window_[windowNext_] = interval_w;
    windowNext_ = (windowNext_ + 1) % window_.size();
    windowFill_ = std::min(windowFill_ + 1, window_.size());

    if (limitW_ <= 0) {
        lastU_ = 0.0;
        actuation_ = actuate(0.0);
        return actuation_;
    }

    const double avg = windowPowerW();
    const double err = (avg - limitW_) / limitW_;
    integral_ = std::clamp(integral_ + cfg_.ki * err, 0.0, 1.0);
    lastU_ = std::clamp(integral_ + cfg_.kp * err, 0.0, 1.0);
    actuation_ = actuate(lastU_);

    if (settled(now)) {
        ++samples_;
        levelSum_.record(lastU_);
        if (avg > limitW_ * (1.0 + cfg_.violationTolerance))
            ++violations_;
    }
    return actuation_;
}

void
PowerCapController::resetStats()
{
    samples_ = 0;
    violations_ = 0;
    levelSum_.clear();
}

} // namespace apc::cap
