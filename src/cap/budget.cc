#include "cap/budget.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/tracer.h"

namespace apc::cap {

BudgetAllocator::BudgetAllocator(BudgetConfig cfg, std::size_t num_servers)
    : cfg_(std::move(cfg)), n_(num_servers), active_(num_servers, 1)
{
    assert(n_ > 0);
    assert(cfg_.oversubscription >= 1.0);
    assert(cfg_.weights.empty() || cfg_.weights.size() == n_);
    nominalBudgetW_ = static_cast<double>(n_) * cfg_.serverNameplateW /
        cfg_.oversubscription;
}

bool
BudgetAllocator::breakerActive(sim::Tick now) const
{
    return cfg_.breaker.enabled && now >= cfg_.breaker.at &&
        now < cfg_.breaker.at + cfg_.breaker.duration;
}

double
BudgetAllocator::rackBudgetW(sim::Tick now) const
{
    return breakerActive(now) ? nominalBudgetW_ * cfg_.breaker.factor
                              : nominalBudgetW_;
}

double
BudgetAllocator::weight(std::size_t i) const
{
    return cfg_.weights.empty() ? 1.0 : std::max(cfg_.weights[i], 0.0);
}

void
BudgetAllocator::setActive(std::size_t i, bool active)
{
    assert(i < n_);
    active_[i] = active ? 1 : 0;
}

std::size_t
BudgetAllocator::activeServers() const
{
    return static_cast<std::size_t>(
        std::count(active_.begin(), active_.end(), 1));
}

std::vector<double>
BudgetAllocator::allocate(sim::Tick now,
                          const std::vector<double> &demand_w)
{
    assert(demand_w.size() == n_);
    // Claim the epoch-log capability for the whole allocation: the
    // fleet spine calls allocate() single-threaded between phases.
    sim::RoleGuard own(epochLog_);
    const double budget = rackBudgetW(now);

    EpochRecord rec;
    rec.at = now;
    rec.budgetW = budget;
    rec.demandW = std::accumulate(demand_w.begin(), demand_w.end(), 0.0);

    std::vector<double> alloc(n_, 0.0);
    // What each server wants this epoch: its recent draw plus headroom,
    // floored and nameplate-capped. Shared by the waterfill and by the
    // unmet-demand accounting below. A dead server wants nothing — its
    // floor is redistributed to the survivors this very epoch.
    const std::size_t live = activeServers();
    rec.active = live;
    std::vector<double> want(n_);
    for (std::size_t i = 0; i < n_; ++i)
        want[i] = active_[i]
            ? std::clamp(demand_w[i] + cfg_.headroomW,
                         cfg_.minServerW, cfg_.serverNameplateW)
            : 0.0;
    const double floor_sum = static_cast<double>(live) * cfg_.minServerW;
    if (floor_sum >= budget) {
        // Emergency: even the guaranteed floors overshoot the rack
        // budget (breaker trip). Scale floors proportionally so the
        // aggregate lands exactly on the derated budget.
        const double scale = floor_sum > 0 ? budget / floor_sum : 0.0;
        for (std::size_t i = 0; i < n_; ++i)
            alloc[i] = active_[i] ? cfg_.minServerW * scale : 0.0;
        rec.emergency = true;
        ++emergencyEpochs_;
    } else {
        // Demand-driven waterfill above the floors: spare watts flow by
        // priority weight to the still-hungry, and any final surplus is
        // spread by weight as burst headroom.
        for (std::size_t i = 0; i < n_; ++i)
            alloc[i] = active_[i] ? cfg_.minServerW : 0.0;
        double remaining = budget - floor_sum;
        for (std::size_t round = 0; round < n_ && remaining > 1e-9;
             ++round) {
            double hungry_weight = 0.0;
            for (std::size_t i = 0; i < n_; ++i)
                if (active_[i] && alloc[i] < want[i])
                    hungry_weight += weight(i);
            if (hungry_weight <= 0)
                break;
            double granted = 0.0;
            for (std::size_t i = 0; i < n_; ++i) {
                if (!active_[i] || alloc[i] >= want[i])
                    continue;
                const double share =
                    remaining * weight(i) / hungry_weight;
                const double take = std::min(share, want[i] - alloc[i]);
                alloc[i] += take;
                granted += take;
            }
            remaining -= granted;
            if (granted <= 1e-12)
                break;
        }
        if (remaining > 1e-9) {
            // Everyone satisfied: hand the surplus out by weight as
            // burst headroom, capped at nameplate.
            double cap_weight = 0.0;
            for (std::size_t i = 0; i < n_; ++i)
                if (active_[i] && alloc[i] < cfg_.serverNameplateW)
                    cap_weight += weight(i);
            if (cap_weight > 0)
                for (std::size_t i = 0; i < n_; ++i) {
                    if (!active_[i])
                        continue;
                    const double room =
                        cfg_.serverNameplateW - alloc[i];
                    alloc[i] += std::min(
                        room, remaining * weight(i) / cap_weight);
                }
        }
    }

    rec.allocatedW =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    // Demand the allocation left on the table: the watts servers asked
    // for (floored, nameplate-capped) but were not granted. Nonzero
    // whenever the waterfill ran dry or the floors were emergency-
    // scaled — the rack-level "how throttled are we" signal.
    double unmet = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        unmet += std::max(0.0, want[i] - alloc[i]);
    rec.unmetW = unmet;
    if (trace_) {
        trace_->counter(now, obs::Name::RackBudgetW, obs::Track::Budget,
                        rec.budgetW);
        trace_->counter(now, obs::Name::RackDemandW, obs::Track::Budget,
                        rec.demandW);
        trace_->counter(now, obs::Name::RackAllocW, obs::Track::Budget,
                        rec.allocatedW);
        trace_->counter(now, obs::Name::RackUnmetW, obs::Track::Budget,
                        rec.unmetW);
        if (rec.emergency)
            trace_->instant(now, obs::Name::BudgetEmergency,
                            obs::Track::Budget);
    }
    log_.push_back(rec);
    return alloc;
}

double
BudgetAllocator::budgetUtilization(sim::Tick from) const
{
    sim::SharedRoleGuard own(epochLog_);
    double acc = 0.0;
    std::uint64_t n = 0;
    for (const EpochRecord &r : log_) {
        if (r.at < from || r.budgetW <= 0)
            continue;
        acc += r.demandW / r.budgetW;
        ++n;
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

} // namespace apc::cap
