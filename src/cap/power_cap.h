/**
 * @file
 * Closed-loop per-server power capping (RAPL-style limit enforcement).
 *
 * The paper's energy-proportionality argument matters most in
 * oversubscribed datacenters, where every server must be able to
 * *enforce* a watts limit, not just meter one. `PowerCapController`
 * reproduces the firmware loop behind RAPL power limits: it consumes
 * sliding-window package-power samples (the server reads its `Rapl`
 * counters every sample interval) and runs an integral-dominant
 * (PID-lite) controller whose output is an abstract throttle authority
 * u in [0,1], mapped onto two very different actuators:
 *
 *  - a **P-state clamp** (DVFS): cap the maximum core frequency,
 *    shrinking CC0 power at the cost of dilating every request; and
 *  - **idle injection**: periodically gate request admission so all
 *    cores drain and the package drops into PC1A/PC6 for a duty-cycled
 *    slice of each injection period — with APC this is a *fast* and
 *    low-latency-cost actuator because the package state it forces is
 *    nanoseconds away, which is exactly the paper's Sec. 8 argument
 *    turned into a capping policy.
 *
 * The hybrid policy uses DVFS for small authority and layers idle
 * injection on top once the frequency floor is reached — the
 * conventional production arrangement (RAPL first, then forced idle).
 */

#ifndef APC_CAP_POWER_CAP_H
#define APC_CAP_POWER_CAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "stats/summary.h"

namespace apc::cap {

/** Which throttle mechanism the controller drives. */
enum class CapActuator
{
    DvfsOnly,   ///< P-state clamp only
    IdleInject, ///< forced-idle duty cycling only
    Hybrid,     ///< DVFS first, idle injection past the frequency floor
};

/** Display name. */
constexpr const char *
capActuatorName(CapActuator a)
{
    switch (a) {
      case CapActuator::DvfsOnly:
        return "dvfs";
      case CapActuator::IdleInject:
        return "idle-inject";
      case CapActuator::Hybrid:
        return "hybrid";
    }
    return "?";
}

/** Per-server capping configuration. */
struct CapConfig
{
    bool enabled = false;

    /** Package power limit in watts; <=0 means uncapped (monitor only). */
    double limitW = 0.0;

    CapActuator actuator = CapActuator::Hybrid;

    /** RAPL sampling cadence of the control loop. */
    sim::Tick sampleInterval = 500 * sim::kUs;

    /** Sliding window width, in samples, for the averaged power (the
     *  default spans several injection periods so duty cycling doesn't
     *  alias into the control signal). */
    int windowSamples = 8;

    /** Integral and proportional gains on the normalized error
     *  (window - limit) / limit. Integral-dominant: steady state must
     *  sit on the limit, transients need not be aggressive. */
    double ki = 0.25;
    double kp = 0.40;

    /** Idle-injection cycle length; the gate closes for duty*period of
     *  every period. APC makes fine-grained cycling nearly free (PC1A
     *  is nanoseconds away), and short gates bound the queueing delay
     *  any one request can absorb — the reason idle injection beats a
     *  DVFS clamp on p99 at equal compliance. */
    sim::Tick injectPeriod = 200 * sim::kUs;

    /** Ceiling on the injected duty (always leave admission slots). */
    double maxIdleDuty = 0.85;

    /** Authority share handled by the P-state clamp under Hybrid;
     *  beyond it the clamp is at the floor and idle injection ramps. */
    double hybridDvfsShare = 0.4;

    /** Window average above limit*(1+tolerance) counts a violation. */
    double violationTolerance = 0.05;

    /** Grace period after a limit change before violations count. */
    sim::Tick settleTime = 20 * sim::kMs;
};

/** Actuator commands derived from the control authority. */
struct CapActuation
{
    /** Highest permitted P-state index (table is slowest-first); the
     *  effective operating point is min(governor choice, clamp). */
    std::size_t pstateClamp = SIZE_MAX;

    /** Fraction of each injection period spent admission-gated. */
    double idleDuty = 0.0;
};

/**
 * The closed-loop limit enforcer for one server.
 *
 * The owner (ServerSim) samples its RAPL counters on the configured
 * cadence, feeds each interval's average power to onSample(), and
 * applies the returned actuation. All state lives here so the fleet's
 * BudgetAllocator can retarget the limit between epochs and tests can
 * interrogate convergence.
 */
class PowerCapController
{
  public:
    /**
     * @param cfg      control-loop configuration
     * @param num_pstates size of the P-state table driven by the clamp
     * @param nominal_pstate index the clamp relaxes to at zero authority
     */
    PowerCapController(const CapConfig &cfg, std::size_t num_pstates,
                       std::size_t nominal_pstate);

    /**
     * Retarget the power limit (fleet budget allocation, operator
     * action). Lowering the limit below the current draw engages a
     * feed-forward jump so emergency cuts (breaker trips) shed power
     * within the next injection period instead of waiting for the
     * integral term to wind up.
     */
    void setLimit(double watts, sim::Tick now);

    double limitW() const { return limitW_; }

    /**
     * Feed one interval-average power sample; returns the actuation to
     * apply until the next sample. @p interval_w is the RAPL average
     * over the elapsed sample interval.
     */
    CapActuation onSample(sim::Tick now, double interval_w);

    /** Latest actuation (what onSample last returned). */
    const CapActuation &actuation() const { return actuation_; }

    /** Sliding-window average power (0 until the first sample). */
    double windowPowerW() const;

    /** Control authority u in [0,1] (0 = unthrottled). */
    double level() const { return lastU_; }

    /** True once the post-limit-change grace period has elapsed. */
    bool settled(sim::Tick now) const { return now >= settleUntil_; }

    // --- accounting (measurement-window scoped via resetStats) ---

    /** Samples taken after settling. */
    std::uint64_t samples() const { return samples_; }

    /** Settled samples whose window average exceeded the tolerance. */
    std::uint64_t violations() const { return violations_; }

    /** Distribution of the control authority over settled samples. */
    const stats::Summary &levelSummary() const { return levelSum_; }

    /** Reset violation/sample accounting (start of measurement). */
    void resetStats();

  private:
    /** Map authority u onto the configured actuator(s). */
    CapActuation actuate(double u) const;

    CapConfig cfg_;
    std::size_t numPStates_;
    std::size_t nominal_;
    double limitW_;
    double integral_ = 0.0; ///< accumulated authority, clamped [0,1]
    double lastU_ = 0.0;
    CapActuation actuation_;
    std::vector<double> window_; ///< ring buffer of interval powers
    std::size_t windowNext_ = 0;
    std::size_t windowFill_ = 0;
    sim::Tick settleUntil_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t violations_ = 0;
    stats::Summary levelSum_;
};

} // namespace apc::cap

#endif // APC_CAP_POWER_CAP_H
