/**
 * @file
 * CPU core C-state model.
 *
 * A core is either Active (CC0, executing), Entering an idle state,
 * resident Idle in CC1/CC1E/CC6, or Exiting back to CC0. The per-core
 * power management agent (PMA, paper Sec. 5.3) exposes the `InCC1` status
 * wire that APC aggregates into the APMU's all-cores-idle input: it is
 * high while the core is resident in CC1 or deeper and drops the moment a
 * wakeup begins, letting the rest of the system exit concurrently with
 * the core's own (much longer) exit.
 */

#ifndef APC_CPU_CORE_H
#define APC_CPU_CORE_H

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cstate.h"
#include "cpu/governor.h"
#include "power/energy_meter.h"
#include "sim/signal.h"
#include "sim/simulation.h"
#include "stats/residency.h"

namespace apc::cpu {

/** Core configuration: per-C-state latency/power table. */
struct CoreConfig
{
    std::array<CStateParams, kNumCStates> cstates{};

    /**
     * Xeon Silver 4114 calibration (DESIGN.md Sec. 3): CC0 5.30 W,
     * CC1 1.21 W / 2 µs exit, CC1E 0.80 W / 10 µs, CC6 0.01 W / 133 µs.
     * Entry latencies are 1/4 of exit (mwait entry is quick); target
     * residencies follow the intel_idle SKX table.
     */
    static CoreConfig skxDefaults();
};

/** One CPU core. */
class Core
{
  public:
    /** Externally visible execution phase. */
    enum class Phase { Active, Entering, Idle, Exiting };

    /**
     * @param sim      simulation context
     * @param meter    energy meter for the package plane
     * @param id       core number (names wires and loads)
     * @param cfg      latency/power table
     * @param governor idle-state selection policy (owned)
     */
    Core(sim::Simulation &sim, power::EnergyMeter &meter, int id,
         const CoreConfig &cfg, std::unique_ptr<IdleGovernor> governor);

    /**
     * The core finished its work and goes idle: the governor picks an
     * idle state, entry begins immediately.
     * @pre phase() == Phase::Active
     */
    void release();

    /**
     * Request a wake to CC0 (interrupt). @p on_active runs once the core
     * is executing again. If already Active, runs synchronously. Multiple
     * concurrent requests coalesce into one wake.
     */
    void requestWake(std::function<void()> on_active);

    Phase phase() const { return phase_; }
    bool isActive() const { return phase_ == Phase::Active; }

    /** Resident C-state; CC0 unless Phase::Idle. */
    CState cstate() const { return phase_ == Phase::Idle ? state_ : CState::CC0; }

    /** The idle state being entered / resided in / exited. */
    CState idleTarget() const { return state_; }

    /** PMA `InCC1` output: resident in CC1 or deeper, no wake pending. */
    sim::Signal &inCc1() { return inCc1_; }

    /** PMA `InCC6` output: resident in CC6 (GPMU PC6 trigger). */
    sim::Signal &inCc6() { return inCc6_; }

    /** Residency counters indexed by CState. */
    const stats::ResidencyCounter<kNumCStates> &residency() const
    {
        return residency_;
    }

    /**
     * Override the CC0 (active) power level, e.g. from a DVFS governor
     * changing the core's P-state. Takes effect immediately when the
     * core is executing, otherwise at the next wake.
     */
    void setActivePower(double watts);

    /** Present CC0 power level. */
    double activePower() const { return activePowerWatts_; }

    /** Reset residency statistics (start of a measurement window). */
    void
    resetResidency(sim::Tick now)
    {
        residency_.reset(now);
    }

    /** Number of completed wakeups (exit transitions). */
    std::uint64_t wakeups() const { return wakeups_; }

    int id() const { return id_; }
    const CoreConfig &config() const { return cfg_; }
    IdleGovernor &governor() { return *governor_; }

  private:
    const CStateParams &
    params(CState s) const
    {
        return cfg_.cstates[static_cast<std::size_t>(s)];
    }

    /** Begin entering @p s (from release or promotion). */
    void beginEntry(CState s);
    /** Entry latency elapsed: now resident. */
    void finishEntry();
    /** Schedule the governor's promotion to a deeper state, if any. */
    void armPromotion();
    /** Begin the exit transition toward CC0. */
    void beginExit();
    /** Exit latency elapsed: Active, drain wake callbacks. */
    void finishExit();

    sim::Simulation &sim_;
    CoreConfig cfg_;
    int id_;
    std::unique_ptr<IdleGovernor> governor_;
    Phase phase_ = Phase::Active;
    CState state_ = CState::CC0; ///< idle target / resident state
    sim::Signal inCc1_;
    sim::Signal inCc6_;
    power::PowerLoad load_;
    stats::ResidencyCounter<kNumCStates> residency_;
    sim::EventHandle transitionEvent_;
    sim::EventHandle promotionEvent_;
    std::vector<std::function<void()>> wakeCallbacks_;
    bool wakePending_ = false;
    sim::Tick idleStart_ = 0;
    std::uint64_t wakeups_ = 0;
    double activePowerWatts_;
};

} // namespace apc::cpu

#endif // APC_CPU_CORE_H
