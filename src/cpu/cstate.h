/**
 * @file
 * Core C-state definitions (paper Sec. 3.1).
 *
 * Skylake server cores expose CC0 (active), CC1, CC1E and CC6. Higher
 * numbers are deeper: lower power, higher transition latency. Datacenter
 * operators disable CC1E/CC6 (the paper's Cshallow baseline); the Cdeep
 * configuration enables everything.
 */

#ifndef APC_CPU_CSTATE_H
#define APC_CPU_CSTATE_H

#include <array>
#include <cstddef>

#include "sim/time.h"

namespace apc::cpu {

/** Core C-states, deepest last. */
enum class CState : std::size_t
{
    CC0 = 0, ///< active, executing
    CC1 = 1, ///< shallow halt: clock-gated core, ns–µs exit
    CC1E = 2, ///< CC1 + lowest P-state
    CC6 = 3, ///< deep: core power-gated, state saved; ~133 µs transition
};

inline constexpr std::size_t kNumCStates = 4;

/** Display name. */
constexpr const char *
cstateName(CState s)
{
    switch (s) {
      case CState::CC0:
        return "CC0";
      case CState::CC1:
        return "CC1";
      case CState::CC1E:
        return "CC1E";
      case CState::CC6:
        return "CC6";
    }
    return "?";
}

/** Per-C-state parameters. */
struct CStateParams
{
    sim::Tick entryLatency = 0; ///< time to reach the state from CC0
    sim::Tick exitLatency = 0;  ///< time to return to CC0
    /** Governor hint: minimum idle length for the state to pay off. */
    sim::Tick targetResidency = 0;
    double powerWatts = 0.0;    ///< draw while resident
};

/** Set of enabled idle states (CC0 is always implicitly enabled). */
struct CStateMask
{
    std::array<bool, kNumCStates> enabled{true, true, false, false};

    bool
    isEnabled(CState s) const
    {
        return enabled[static_cast<std::size_t>(s)];
    }

    /** Deepest enabled idle state (at least CC1). */
    CState
    deepest() const
    {
        CState d = CState::CC1;
        for (std::size_t i = kNumCStates; i-- > 1;) {
            if (enabled[i]) {
                d = static_cast<CState>(i);
                break;
            }
        }
        return d;
    }

    /** Cshallow: only CC1 (vendor guidance for latency-critical). */
    static CStateMask
    shallowOnly()
    {
        return CStateMask{{true, true, false, false}};
    }

    /** Cdeep: all idle states enabled. */
    static CStateMask
    allEnabled()
    {
        return CStateMask{{true, true, true, true}};
    }
};

} // namespace apc::cpu

#endif // APC_CPU_CSTATE_H
