#include "cpu/governor.h"

namespace apc::cpu {

sim::Tick
LadderGovernor::promoteAfter(CState current, CState &next_out)
{
    switch (current) {
      case CState::CC1:
        if (cfg_.mask.isEnabled(CState::CC1E)) {
            next_out = CState::CC1E;
            return cfg_.cc1ToCc1e;
        }
        if (cfg_.mask.isEnabled(CState::CC6)) {
            next_out = CState::CC6;
            return cfg_.cc1ToCc1e + cfg_.cc1eToCc6;
        }
        return sim::kTickNever;
      case CState::CC1E:
        if (cfg_.mask.isEnabled(CState::CC6)) {
            next_out = CState::CC6;
            return cfg_.cc1eToCc6;
        }
        return sim::kTickNever;
      default:
        return sim::kTickNever;
    }
}

CState
MenuGovernor::initialState()
{
    CState best = CState::CC1;
    for (std::size_t i = 1; i < kNumCStates; ++i) {
        const auto s = static_cast<CState>(i);
        if (!cfg_.mask.isEnabled(s))
            continue;
        if (cfg_.params[i].targetResidency <= predicted_)
            best = s;
    }
    return best;
}

void
MenuGovernor::recordIdle(sim::Tick duration)
{
    const double a = cfg_.ewmaAlpha;
    predicted_ = static_cast<sim::Tick>(
        a * static_cast<double>(duration)
        + (1.0 - a) * static_cast<double>(predicted_));
}

} // namespace apc::cpu
