/**
 * @file
 * P-state (DVFS) model.
 *
 * The paper's configurations pin the frequency (performance/powersave
 * governor, P-states disabled) precisely because fine-grained DVFS
 * management is the *competing* approach to APC (Sec. 8: Rubik, Swan,
 * NMAP). To reproduce that comparison we model the Xeon Silver 4114's
 * frequency/voltage operating points and an ondemand-style governor;
 * `bench_race_to_halt` then pits DVFS against race-to-halt + PC1A.
 *
 * Core active power scales as P ∝ V²·f relative to the nominal point;
 * CPU-bound service time scales as f_nominal / f.
 */

#ifndef APC_CPU_PSTATE_H
#define APC_CPU_PSTATE_H

#include <cstddef>
#include <vector>

namespace apc::cpu {

/** One frequency/voltage operating point. */
struct PState
{
    double freqGhz = 2.2;
    double volts = 0.8;
};

/** Ordered table of operating points (slowest first). */
class PStateTable
{
  public:
    explicit PStateTable(std::vector<PState> points,
                         std::size_t nominal_index)
        : points_(std::move(points)), nominal_(nominal_index)
    {}

    /**
     * Xeon Silver 4114: 0.8 GHz min, 2.2 GHz nominal, 3.0 GHz turbo
     * (paper Sec. 6), with interpolated voltage points.
     */
    static PStateTable skxDefaults();

    std::size_t size() const { return points_.size(); }
    const PState &point(std::size_t i) const { return points_[i]; }
    std::size_t nominalIndex() const { return nominal_; }
    const PState &nominal() const { return points_[nominal_]; }

    /**
     * Active power at point @p i given the nominal-point active power:
     * P = P_nom * (V/V_nom)^2 * (f/f_nom).
     */
    double activePowerWatts(double nominal_watts, std::size_t i) const;

    /** Service-time dilation at point @p i: f_nom / f. */
    double
    slowdown(std::size_t i) const
    {
        return nominal().freqGhz / points_[i].freqGhz;
    }

    /** Smallest point whose frequency is >= @p ghz (clamps to max). */
    std::size_t indexForFrequency(double ghz) const;

  private:
    std::vector<PState> points_;
    std::size_t nominal_;
};

/**
 * Ondemand-style DVFS policy: every sampling interval, pick per core
 * the lowest frequency that keeps its utilization below the target.
 */
struct DvfsConfig
{
    bool enabled = false;
    /** Sampling interval (ondemand's default order of magnitude). */
    double targetUtil = 0.80;
    /** Utilization above which the governor jumps straight to max. */
    double burstUtil = 0.95;
};

/** Governor decision: next frequency for a core given its utilization. */
std::size_t dvfsNextPState(const PStateTable &table, const DvfsConfig &cfg,
                           std::size_t current, double util);

} // namespace apc::cpu

#endif // APC_CPU_PSTATE_H
