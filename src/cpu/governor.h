/**
 * @file
 * OS idle governors.
 *
 * When a core goes idle the OS picks a C-state. We model two policies:
 *
 * - `LadderGovernor`: enter the shallowest enabled state and *promote* to
 *   deeper states as the idle period stretches (Linux "ladder"; also a
 *   good match for the powertop auto-tuned Cdeep setup in the paper).
 * - `MenuGovernor`: predict the upcoming idle length from recent history
 *   (EWMA) and directly pick the deepest enabled state whose target
 *   residency fits the prediction (Linux "menu").
 *
 * In the Cshallow baseline only CC1 is enabled, so both degenerate to
 * "always CC1", matching datacenter practice.
 */

#ifndef APC_CPU_GOVERNOR_H
#define APC_CPU_GOVERNOR_H

#include <array>
#include <memory>

#include "cpu/cstate.h"
#include "sim/time.h"

namespace apc::cpu {

/** Idle-state selection policy for one core. */
class IdleGovernor
{
  public:
    virtual ~IdleGovernor() = default;

    /** State to enter when the core first goes idle. */
    virtual CState initialState() = 0;

    /**
     * Residency in @p current after which the core should be promoted to
     * @p next_out (deeper). Returns kTickNever when no promotion applies.
     */
    virtual sim::Tick promoteAfter(CState current, CState &next_out) = 0;

    /** Feedback: the idle period just ended after @p duration. */
    virtual void recordIdle(sim::Tick duration) = 0;
};

/** Ladder policy: shallow first, promote on residency thresholds. */
class LadderGovernor : public IdleGovernor
{
  public:
    struct Config
    {
        CStateMask mask = CStateMask::shallowOnly();
        /** Residency in CC1 before promoting to CC1E. */
        sim::Tick cc1ToCc1e = 20 * sim::kUs;
        /** Residency in CC1E before promoting to CC6. */
        sim::Tick cc1eToCc6 = 200 * sim::kUs;
    };

    explicit LadderGovernor(const Config &cfg) : cfg_(cfg) {}

    CState initialState() override { return CState::CC1; }
    sim::Tick promoteAfter(CState current, CState &next_out) override;
    void recordIdle(sim::Tick) override {}

  private:
    Config cfg_;
};

/** Menu policy: EWMA idle prediction, direct selection. */
class MenuGovernor : public IdleGovernor
{
  public:
    struct Config
    {
        CStateMask mask = CStateMask::shallowOnly();
        std::array<CStateParams, kNumCStates> params{};
        double ewmaAlpha = 0.25; ///< weight of the newest observation
        sim::Tick initialPrediction = 100 * sim::kUs;
    };

    explicit MenuGovernor(const Config &cfg)
        : cfg_(cfg), predicted_(cfg.initialPrediction)
    {}

    CState initialState() override;
    sim::Tick
    promoteAfter(CState, CState &) override
    {
        return sim::kTickNever;
    }
    void recordIdle(sim::Tick duration) override;

    /** Current idle-length prediction (for tests). */
    sim::Tick predictedIdle() const { return predicted_; }

  private:
    Config cfg_;
    sim::Tick predicted_;
};

} // namespace apc::cpu

#endif // APC_CPU_GOVERNOR_H
