#include "cpu/pstate.h"

#include <algorithm>

namespace apc::cpu {

PStateTable
PStateTable::skxDefaults()
{
    // Min 0.8 GHz, nominal 2.2 GHz, Turbo Boost 3.0 GHz (paper Sec. 6);
    // voltages interpolated across the Skylake-SP VF curve.
    return PStateTable({{0.8, 0.70},
                        {1.2, 0.72},
                        {1.6, 0.75},
                        {2.0, 0.78},
                        {2.2, 0.80},
                        {3.0, 0.92}},
                       4);
}

double
PStateTable::activePowerWatts(double nominal_watts, std::size_t i) const
{
    const auto &p = points_[i];
    const auto &n = nominal();
    const double v = p.volts / n.volts;
    const double f = p.freqGhz / n.freqGhz;
    return nominal_watts * v * v * f;
}

std::size_t
PStateTable::indexForFrequency(double ghz) const
{
    for (std::size_t i = 0; i < points_.size(); ++i)
        if (points_[i].freqGhz >= ghz)
            return i;
    return points_.size() - 1;
}

std::size_t
dvfsNextPState(const PStateTable &table, const DvfsConfig &cfg,
               std::size_t current, double util)
{
    if (util >= cfg.burstUtil)
        return table.size() - 1; // race to max on saturation
    // Frequency needed to bring utilization to the target.
    const double cur_ghz = table.point(current).freqGhz;
    const double needed = cur_ghz * util / cfg.targetUtil;
    return table.indexForFrequency(needed);
}

} // namespace apc::cpu
