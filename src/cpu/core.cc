#include "cpu/core.h"

#include <cassert>
#include <utility>

namespace apc::cpu {

CoreConfig
CoreConfig::skxDefaults()
{
    CoreConfig c;
    auto set = [&](CState s, sim::Tick exit, sim::Tick target, double w) {
        auto &p = c.cstates[static_cast<std::size_t>(s)];
        p.exitLatency = exit;
        p.entryLatency = exit / 4;
        p.targetResidency = target;
        p.powerWatts = w;
    };
    set(CState::CC0, 0, 0, 5.30);
    set(CState::CC1, 2 * sim::kUs, 2 * sim::kUs, 1.21);
    set(CState::CC1E, 10 * sim::kUs, 20 * sim::kUs, 0.80);
    set(CState::CC6, 133 * sim::kUs, 600 * sim::kUs, 0.01);
    return c;
}

Core::Core(sim::Simulation &sim, power::EnergyMeter &meter, int id,
           const CoreConfig &cfg, std::unique_ptr<IdleGovernor> governor)
    : sim_(sim), cfg_(cfg), id_(id), governor_(std::move(governor)),
      inCc1_(sim, "core" + std::to_string(id) + ".InCC1", false),
      inCc6_(sim, "core" + std::to_string(id) + ".InCC6", false),
      load_(meter, "core" + std::to_string(id), power::Plane::Package,
            cfg.cstates[0].powerWatts),
      residency_(static_cast<std::size_t>(CState::CC0), sim.now()),
      activePowerWatts_(cfg.cstates[0].powerWatts)
{
    assert(governor_ && "core requires an idle governor");
}

void
Core::setActivePower(double watts)
{
    activePowerWatts_ = watts;
    if (phase_ == Phase::Active || phase_ == Phase::Exiting)
        load_.setPower(watts);
}

void
Core::release()
{
    assert(phase_ == Phase::Active && "release() outside Active");
    idleStart_ = sim_.now();
    beginEntry(governor_->initialState());
}

void
Core::beginEntry(CState s)
{
    assert(s != CState::CC0);
    phase_ = Phase::Entering;
    state_ = s;
    // During the entry transition the core still burns close to its
    // previous level; model it as the pre-entry power (CC0 on first
    // entry, the shallower state's power on a promotion).
    const sim::Tick lat = params(s).entryLatency;
    transitionEvent_ = sim_.after(lat, [this] { finishEntry(); });
}

void
Core::finishEntry()
{
    phase_ = Phase::Idle;
    residency_.transitionTo(static_cast<std::size_t>(state_), sim_.now());
    load_.setPower(params(state_).powerWatts);
    if (state_ >= CState::CC1)
        inCc1_.write(true);
    if (state_ == CState::CC6)
        inCc6_.write(true);
    if (wakePending_) {
        // An interrupt arrived while the entry was in flight; turn
        // around immediately.
        beginExit();
        return;
    }
    armPromotion();
}

void
Core::armPromotion()
{
    CState next;
    const sim::Tick after = governor_->promoteAfter(state_, next);
    if (after == sim::kTickNever)
        return;
    promotionEvent_ = sim_.after(after, [this, next] {
        // Promote: leave the shallow state for a deeper one. Residency
        // counting of the transition stays with the shallow state via
        // Entering (counted as CC0 only for the brief entry window).
        residency_.transitionTo(static_cast<std::size_t>(CState::CC0),
                                sim_.now());
        beginEntry(next);
    });
}

void
Core::requestWake(std::function<void()> on_active)
{
    switch (phase_) {
      case Phase::Active:
        if (on_active)
            on_active();
        return;
      case Phase::Exiting:
        if (on_active)
            wakeCallbacks_.push_back(std::move(on_active));
        return;
      case Phase::Entering:
        if (on_active)
            wakeCallbacks_.push_back(std::move(on_active));
        wakePending_ = true;
        // The PMA reports the wake immediately so package-level exit can
        // start concurrently with the core's own transition.
        inCc1_.write(false);
        inCc6_.write(false);
        return;
      case Phase::Idle:
        if (on_active)
            wakeCallbacks_.push_back(std::move(on_active));
        wakePending_ = true;
        beginExit();
        return;
    }
}

void
Core::beginExit()
{
    assert(phase_ == Phase::Idle);
    phase_ = Phase::Exiting;
    promotionEvent_.cancel();
    inCc1_.write(false);
    inCc6_.write(false);
    residency_.transitionTo(static_cast<std::size_t>(CState::CC0),
                            sim_.now());
    // Wake transitions burn roughly active power (state restore etc.).
    load_.setPower(activePowerWatts_);
    transitionEvent_ = sim_.after(params(state_).exitLatency,
                                  [this] { finishExit(); });
}

void
Core::finishExit()
{
    phase_ = Phase::Active;
    state_ = CState::CC0;
    wakePending_ = false;
    ++wakeups_;
    governor_->recordIdle(sim_.now() - idleStart_);
    auto cbs = std::move(wakeCallbacks_);
    wakeCallbacks_.clear();
    for (auto &cb : cbs)
        cb();
}

} // namespace apc::cpu
