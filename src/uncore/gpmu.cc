#include "uncore/gpmu.h"

#include <cassert>

namespace apc::uncore {

Gpmu::Gpmu(sim::Simulation &sim, const GpmuConfig &cfg,
           std::vector<cpu::Core *> cores, std::vector<io::IoLink *> links,
           std::vector<dram::MemoryController *> mcs, Clm *clm,
           PllFarm *plls)
    : sim_(sim), cfg_(cfg), cores_(std::move(cores)),
      links_(std::move(links)), mcs_(std::move(mcs)), clm_(clm),
      plls_(plls), wakeUp_(sim, "gpmu.WakeUp", false)
{
    if (!cfg_.pc6Enabled)
        return;
    allCc6_ = std::make_unique<sim::AndTree>(sim, "gpmu.AllCC6",
                                             2 * sim::kNs);
    for (auto *c : cores_)
        allCc6_->addInput(c->inCc6());
    allCc6_->output().subscribe([this](bool v) { onAllCc6(v); });
    // Traffic hitting a sleeping link (its L1 exit starts, dropping
    // InL0s) is a wake event for the package.
    for (auto *l : links_) {
        l->inL0s().subscribe([this](bool v) {
            if (!v &&
                (state_ == State::Pc6 || state_ == State::EnteringPc6)) {
                triggerWake();
            }
        });
    }
}

void
Gpmu::setState(State s)
{
    if (s == state_)
        return;
    state_ = s;
    for (auto &fn : observers_)
        fn(s);
}

void
Gpmu::onAllCc6(bool level)
{
    if (!level) {
        demotionEvent_.cancel();
        // A core waking is a wake event for any in-flight or resident
        // deep package state.
        if (state_ == State::EnteringPc6 || state_ == State::Pc6)
            triggerWake();
        return;
    }
    if (state_ != State::Pc0)
        return;
    demotionEvent_ = sim_.after(cfg_.demotionDelay, [this] {
        if (allCc6_->output().read() && state_ == State::Pc0)
            startEntry();
    });
}

void
Gpmu::triggerWake()
{
    switch (state_) {
      case State::Pc0:
        return; // nothing to wake from
      case State::EnteringPc6:
        wakePending_ = true; // entry steps check at boundaries
        return;
      case State::Pc6:
        startExit();
        return;
      case State::ExitingPc6:
        return; // already on the way out
    }
}

template <typename Range, typename Op>
void
Gpmu::forAll(Range &range, Op op, std::function<void()> done)
{
    auto pending = std::make_shared<int>(static_cast<int>(range.size()));
    auto cb = std::make_shared<std::function<void()>>(std::move(done));
    if (*pending == 0) {
        (*cb)();
        return;
    }
    for (auto *item : range) {
        op(item, [pending, cb] {
            if (--*pending == 0)
                (*cb)();
        });
    }
}

void
Gpmu::startEntry()
{
    assert(state_ == State::Pc0);
    flowStart_ = sim_.now();
    wakePending_ = false;
    doneIoL1_ = doneDramSr_ = doneClkPll_ = doneVRet_ = false;
    setState(State::EnteringPc6); // the transient PC2 window
    const auto gen = ++flowGen_;
    sim_.after(cfg_.ioL1Msg, [this, gen] {
        if (flowGen_ != gen)
            return;
        entryIoL1();
    });
}

void
Gpmu::entryIoL1()
{
    if (wakePending_) {
        startExit();
        return;
    }
    const auto gen = flowGen_;
    forAll(links_,
           [](io::IoLink *l, std::function<void()> done) {
               l->enterL1(std::move(done));
           },
           [this, gen] {
               if (flowGen_ != gen)
                   return;
               doneIoL1_ = true;
               sim_.after(cfg_.dramSrMsg, [this, gen] {
                   if (flowGen_ != gen)
                       return;
                   entryDramSr();
               });
           });
}

void
Gpmu::entryDramSr()
{
    if (wakePending_) {
        startExit();
        return;
    }
    const auto gen = flowGen_;
    forAll(mcs_,
           [](dram::MemoryController *m, std::function<void()> done) {
               m->enterSelfRefresh(std::move(done));
           },
           [this, gen] {
               if (flowGen_ != gen)
                   return;
               doneDramSr_ = true;
               sim_.after(cfg_.clkPllMsg, [this, gen] {
                   if (flowGen_ != gen)
                       return;
                   entryClkPll();
               });
           });
}

void
Gpmu::entryClkPll()
{
    if (wakePending_) {
        startExit();
        return;
    }
    if (clm_)
        clm_->gateClocks();
    if (plls_)
        plls_->powerOffAll();
    doneClkPll_ = true;
    const auto gen = flowGen_;
    sim_.after(cfg_.vRetMsg, [this, gen] {
        if (flowGen_ != gen)
            return;
        entryVRet();
    });
}

void
Gpmu::entryVRet()
{
    if (wakePending_) {
        startExit();
        return;
    }
    if (clm_)
        clm_->setRetention(true);
    doneVRet_ = true;
    finishEntry();
}

void
Gpmu::finishEntry()
{
    setState(State::Pc6);
    ++pc6Entries_;
    entryLatencyUs_.record(sim::toMicros(sim_.now() - flowStart_));
    if (wakePending_)
        startExit();
}

void
Gpmu::startExit()
{
    assert(state_ == State::EnteringPc6 || state_ == State::Pc6);
    ++flowGen_; // invalidate any in-flight entry steps
    wakePending_ = false;
    flowStart_ = sim_.now();
    setState(State::ExitingPc6);
    exitVNom();
}

void
Gpmu::exitVNom()
{
    const auto gen = flowGen_;
    if (!doneVRet_ || !clm_) {
        exitPllUngate();
        return;
    }
    sim_.after(cfg_.vNomMsg, [this, gen] {
        if (flowGen_ != gen)
            return;
        clm_->setRetention(false);
        // Wait for the rails to settle (PwrOk) before touching clocks.
        const sim::Tick settle = clm_->settleTimeRemaining();
        sim_.after(settle, [this, gen] {
            if (flowGen_ != gen)
                return;
            doneVRet_ = false;
            exitPllUngate();
        });
    });
}

void
Gpmu::exitPllUngate()
{
    const auto gen = flowGen_;
    if (!doneClkPll_) {
        exitDramSr();
        return;
    }
    auto ungate = [this, gen] {
        if (flowGen_ != gen)
            return;
        sim_.after(cfg_.ungateMsg, [this, gen] {
            if (flowGen_ != gen)
                return;
            if (clm_)
                clm_->ungateClocks();
            doneClkPll_ = false;
            exitDramSr();
        });
    };
    if (plls_)
        plls_->powerOnAll(std::move(ungate));
    else
        ungate();
}

void
Gpmu::exitDramSr()
{
    const auto gen = flowGen_;
    if (!doneDramSr_) {
        exitIoL1();
        return;
    }
    sim_.after(cfg_.dramExitMsg, [this, gen] {
        if (flowGen_ != gen)
            return;
        forAll(mcs_,
               [](dram::MemoryController *m, std::function<void()> done) {
                   m->exitSelfRefresh(std::move(done));
               },
               [this, gen] {
                   if (flowGen_ != gen)
                       return;
                   doneDramSr_ = false;
                   exitIoL1();
               });
    });
}

void
Gpmu::exitIoL1()
{
    const auto gen = flowGen_;
    if (!doneIoL1_) {
        finishExit();
        return;
    }
    sim_.after(cfg_.ioExitMsg, [this, gen] {
        if (flowGen_ != gen)
            return;
        forAll(links_,
               [](io::IoLink *l, std::function<void()> done) {
                   l->exitL1(std::move(done));
               },
               [this, gen] {
                   if (flowGen_ != gen)
                       return;
                   doneIoL1_ = false;
                   finishExit();
               });
    });
}

void
Gpmu::finishExit()
{
    exitLatencyUs_.record(sim::toMicros(sim_.now() - flowStart_));
    setState(State::Pc0);
    // Pulse the wake wire for the APMU / residency listeners.
    wakeUp_.write(true);
    wakeUp_.write(false);
    // If the wake was spurious and all cores are still in CC6, the
    // demotion path will re-enter PC6 after the demotion delay.
    if (allCc6_ && allCc6_->output().read())
        onAllCc6(true);
}

} // namespace apc::uncore
