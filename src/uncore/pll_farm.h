/**
 * @file
 * The SoC's non-core PLLs (paper Sec. 5.4).
 *
 * The reference SKX system has ~18 PLLs; the 10 per-core PLLs are
 * accounted inside the core power states, leaving 8 here: one per PCIe
 * controller (×3), DMI, UPI (×2), one for CLM + memory controllers, and
 * one for the GPMU. Legacy PC6 turns them off (and pays the relock
 * latency on exit); APC keeps them locked for ~7 mW each.
 */

#ifndef APC_UNCORE_PLL_FARM_H
#define APC_UNCORE_PLL_FARM_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "power/energy_meter.h"
#include "power/pll.h"
#include "sim/simulation.h"

namespace apc::uncore {

/** Container for the non-core PLLs. */
class PllFarm
{
  public:
    /** Builds the default SKX set (8 PLLs). */
    PllFarm(sim::Simulation &sim, power::EnergyMeter &meter,
            const power::PllConfig &cfg);

    /** Power all PLLs off (legacy PC6 entry). */
    void powerOffAll();

    /**
     * Power all PLLs on; @p done fires when every PLL reports locked
     * (i.e. after the relock latency when they were off).
     */
    void powerOnAll(std::function<void()> done);

    /** True when every PLL is locked. */
    bool allLocked() const;

    std::size_t size() const { return plls_.size(); }
    power::Pll &pll(std::size_t i) { return *plls_[i]; }

    /** Total PLL power right now (for reports). */
    double totalPowerWatts() const;

  private:
    sim::Simulation &sim_;
    std::vector<std::unique_ptr<power::Pll>> plls_;
};

} // namespace apc::uncore

#endif // APC_UNCORE_PLL_FARM_H
