#include "uncore/clm.h"

namespace apc::uncore {

Clm::Clm(sim::Simulation &sim, power::EnergyMeter &meter,
         const ClmConfig &cfg)
    : sim_(sim), cfg_(cfg),
      fivr0_(std::make_unique<power::Fivr>(sim, "clm.fivr0", cfg.fivr)),
      fivr1_(std::make_unique<power::Fivr>(sim, "clm.fivr1", cfg.fivr)),
      clockTree_(sim, "clm.clk", cfg.clockTree),
      pwrOk_(sim, "clm.PwrOk", true),
      available_(sim, "clm.available", true),
      load_(meter, "clm", power::Plane::Package,
            cfg.dynWatts + cfg.leakWattsNominal)
{
    auto on_pwrok = [this](bool) {
        pwrOk_.write(fivr0_->pwrOk().read() && fivr1_->pwrOk().read());
        updateAvailable();
    };
    fivr0_->pwrOk().subscribe(on_pwrok);
    fivr1_->pwrOk().subscribe(on_pwrok);
    clockTree_.runningSignal().subscribe([this](bool) {
        updatePower();
        updateAvailable();
    });
}

void
Clm::updateAvailable()
{
    const bool avail = clockTree_.running() && pwrOk_.read() &&
        fivr0_->target() == cfg_.fivr.nominalVolts;
    available_.write(avail);
}

void
Clm::updatePower()
{
    // Leakage scales (linearly, conservative) with the rail voltage;
    // dynamic power flows only while clocks toggle. During a voltage
    // ramp the load follows the ramp via a linear power segment.
    const double vnom = cfg_.fivr.nominalVolts;
    const double dyn = clockTree_.running() ? cfg_.dynWatts : 0.0;
    const double leak_now =
        cfg_.leakWattsNominal * (fivr0_->voltage() / vnom);
    const double leak_end =
        cfg_.leakWattsNominal * (fivr0_->target() / vnom);
    const sim::Tick settle = fivr0_->settleTimeRemaining();
    if (settle > 0) {
        // Close the current segment at leak_now and ramp to the target.
        load_.setPower(dyn + leak_now);
        load_.setRamp(dyn + leak_end, settle);
    } else {
        load_.setPower(dyn + leak_end);
    }
}

void
Clm::gateClocks()
{
    clockTree_.gate();
}

void
Clm::ungateClocks()
{
    clockTree_.ungate();
}

void
Clm::setRetention(bool ret)
{
    retention_ = ret;
    if (ret) {
        fivr0_->toRetention();
        fivr1_->toRetention();
    } else {
        fivr0_->toNominal();
        fivr1_->toNominal();
    }
    updatePower();
    updateAvailable();
}

} // namespace apc::uncore
