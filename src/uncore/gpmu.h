/**
 * @file
 * Global power management unit (GPMU): the firmware-based package C-state
 * controller of the baseline system (paper Sec. 3.1, Fig. 2).
 *
 * The GPMU implements the legacy PC6 flow: once all cores are in CC6 it
 * moves through the transient PC2 state, places IOs in L1 and DRAM in
 * self-refresh, gates uncore clocks, turns off PLLs, and drops the CLM
 * rails to retention. Every step is a firmware transaction with µs-scale
 * latency, which is why PC6's worst-case entry+exit exceeds 50 µs and why
 * server vendors disable it for latency-critical deployments.
 *
 * Wake events: an explicit triggerWake() (timers, thermal), any IO link
 * starting an L1 exit, or any core dropping out of CC6. The exit flow
 * reverses only the entry steps that actually completed, so aborts
 * mid-entry unwind correctly.
 */

#ifndef APC_UNCORE_GPMU_H
#define APC_UNCORE_GPMU_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.h"
#include "dram/memory_controller.h"
#include "io/io_link.h"
#include "sim/signal.h"
#include "sim/simulation.h"
#include "stats/summary.h"
#include "uncore/clm.h"
#include "uncore/pll_farm.h"

namespace apc::uncore {

/** Firmware step latencies (mailbox transactions, polling, sequencing). */
struct GpmuConfig
{
    bool pc6Enabled = false;
    sim::Tick demotionDelay = 4 * sim::kUs; ///< all-CC6 -> flow start
    // PC6 entry firmware steps (each precedes the hardware action):
    sim::Tick ioL1Msg = 2 * sim::kUs;
    sim::Tick dramSrMsg = 2 * sim::kUs;
    sim::Tick clkPllMsg = 3 * sim::kUs;
    sim::Tick vRetMsg = 12 * sim::kUs;
    // PC6 exit firmware steps:
    sim::Tick vNomMsg = 12 * sim::kUs;
    sim::Tick ungateMsg = 2 * sim::kUs;
    sim::Tick dramExitMsg = 2 * sim::kUs;
    sim::Tick ioExitMsg = 2 * sim::kUs;
};

/** The firmware package C-state controller. */
class Gpmu
{
  public:
    /** Package FSM state as tracked by the GPMU. */
    enum class State : std::size_t
    {
        Pc0 = 0,      ///< active (or package states disabled)
        EnteringPc6 = 1, ///< PC2 and the stepped entry flow
        Pc6 = 2,
        ExitingPc6 = 3,
    };
    static constexpr std::size_t kNumStates = 4;

    Gpmu(sim::Simulation &sim, const GpmuConfig &cfg,
         std::vector<cpu::Core *> cores, std::vector<io::IoLink *> links,
         std::vector<dram::MemoryController *> mcs, Clm *clm,
         PllFarm *plls);

    /** Explicit wake event (timer expiration, thermal, software). */
    void triggerWake();

    State state() const { return state_; }

    /** Output wire to the APMU: explicit GPMU wake events. */
    sim::Signal &wakeUp() { return wakeUp_; }

    /** Register a state-change observer (Soc residency tracking). */
    void
    onStateChange(std::function<void(State)> fn)
    {
        observers_.push_back(std::move(fn));
    }

    std::uint64_t pc6Entries() const { return pc6Entries_; }

    /** Completed-flow latency statistics, microseconds. */
    const stats::Summary &entryLatencyUs() const { return entryLatencyUs_; }
    const stats::Summary &exitLatencyUs() const { return exitLatencyUs_; }

    const GpmuConfig &config() const { return cfg_; }

  private:
    void setState(State s);
    /** All cores reached CC6: start the demotion timer. */
    void onAllCc6(bool level);
    void startEntry();
    /** Entry steps, chained; each checks for an abort at its boundary. */
    void entryIoL1();
    void entryDramSr();
    void entryClkPll();
    void entryVRet();
    void finishEntry();
    /** Begin the exit flow, unwinding completed entry steps. */
    void startExit();
    void exitVNom();
    void exitPllUngate();
    void exitDramSr();
    void exitIoL1();
    void finishExit();
    /** Run all links/MCs through an op, @p done when all complete. */
    template <typename Range, typename Op>
    void forAll(Range &range, Op op, std::function<void()> done);

    sim::Simulation &sim_;
    GpmuConfig cfg_;
    std::vector<cpu::Core *> cores_;
    std::vector<io::IoLink *> links_;
    std::vector<dram::MemoryController *> mcs_;
    Clm *clm_;
    PllFarm *plls_;
    State state_ = State::Pc0;
    sim::Signal wakeUp_;
    std::unique_ptr<sim::AndTree> allCc6_;
    sim::EventHandle demotionEvent_;
    std::uint64_t flowGen_ = 0; ///< invalidates stale flow steps
    bool wakePending_ = false;
    // Which entry steps completed (for unwinding):
    bool doneIoL1_ = false;
    bool doneDramSr_ = false;
    bool doneClkPll_ = false;
    bool doneVRet_ = false;
    sim::Tick flowStart_ = 0;
    std::uint64_t pc6Entries_ = 0;
    stats::Summary entryLatencyUs_;
    stats::Summary exitLatencyUs_;
    std::vector<std::function<void(State)>> observers_;
};

} // namespace apc::uncore

#endif // APC_UNCORE_GPMU_H
