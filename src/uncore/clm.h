/**
 * @file
 * CLM domain model: CHA + LLC + mesh interconnect (paper Sec. 3, 4.3).
 *
 * The CLM is powered by two FIVRs (Vccclm0/Vccclm1) and clocked by one
 * PLL through a gateable clock tree. Its power splits into a dynamic
 * component (only while clocks run) and a leakage component that scales
 * with the rail voltage; CLMR saves power by gating the clock tree and
 * dropping both FIVRs to the pre-programmed retention voltage while
 * keeping the PLL locked.
 *
 * The `available` status wire is high when the fabric can carry traffic:
 * clocks running and voltage settled at nominal. The SoC's path to
 * memory is open only while this is high.
 */

#ifndef APC_UNCORE_CLM_H
#define APC_UNCORE_CLM_H

#include <memory>

#include "power/clock_tree.h"
#include "power/energy_meter.h"
#include "power/fivr.h"
#include "sim/signal.h"
#include "sim/simulation.h"

namespace apc::uncore {

/** CLM configuration (calibration in DESIGN.md Sec. 3). */
struct ClmConfig
{
    double dynWatts = 6.54;         ///< dynamic power, clocks running
    double leakWattsNominal = 13.30; ///< leakage at nominal voltage
    power::FivrConfig fivr;          ///< per-FIVR (both move together)
    power::ClockTreeConfig clockTree;
};

/** The CHA/LLC/mesh voltage-and-clock domain. */
class Clm
{
  public:
    Clm(sim::Simulation &sim, power::EnergyMeter &meter,
        const ClmConfig &cfg);

    /** Gate the CLM clock tree (APMU `ClkGate`, GPMU PC6 flow). */
    void gateClocks();

    /** Ungate the clock tree. */
    void ungateClocks();

    /**
     * Drive the `Ret` wire on both FIVRs: true ramps to retention,
     * false ramps back to nominal (preemptive mid-ramp reversal is
     * handled by the FIVRs).
     */
    void setRetention(bool ret);

    /** Both FIVRs settled at their commanded target. */
    sim::Signal &pwrOk() { return pwrOk_; }

    /** Fabric usable: clocks running, voltage settled at nominal. */
    sim::Signal &available() { return available_; }

    /** Present rail voltage (both FIVRs track each other). */
    double voltage() const { return fivr0_->voltage(); }

    /** Time until the in-flight voltage ramp settles (0 if settled). */
    sim::Tick
    settleTimeRemaining() const
    {
        return fivr0_->settleTimeRemaining();
    }

    power::Fivr &fivr0() { return *fivr0_; }
    power::Fivr &fivr1() { return *fivr1_; }
    power::ClockTree &clockTree() { return clockTree_; }

    /** True when the rails are commanded to retention. */
    bool inRetention() const { return retention_; }

    const ClmConfig &config() const { return cfg_; }

  private:
    /** Recompute the power load (called on clock/voltage edges). */
    void updatePower();
    void updateAvailable();

    sim::Simulation &sim_;
    ClmConfig cfg_;
    std::unique_ptr<power::Fivr> fivr0_;
    std::unique_ptr<power::Fivr> fivr1_;
    power::ClockTree clockTree_;
    sim::Signal pwrOk_;
    sim::Signal available_;
    power::PowerLoad load_;
    bool retention_ = false;
};

} // namespace apc::uncore

#endif // APC_UNCORE_CLM_H
