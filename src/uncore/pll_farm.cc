#include "uncore/pll_farm.h"

#include <algorithm>

namespace apc::uncore {

PllFarm::PllFarm(sim::Simulation &sim, power::EnergyMeter &meter,
                 const power::PllConfig &cfg)
    : sim_(sim)
{
    const char *names[] = {"pll.pcie0", "pll.pcie1", "pll.pcie2",
                           "pll.dmi", "pll.upi0", "pll.upi1",
                           "pll.clm_mc", "pll.gpmu"};
    for (const char *n : names)
        plls_.push_back(
            std::make_unique<power::Pll>(sim, meter, n, cfg));
}

void
PllFarm::powerOffAll()
{
    for (auto &p : plls_)
        p->powerOff();
}

void
PllFarm::powerOnAll(std::function<void()> done)
{
    // All PLLs relock in parallel; completion is bounded by the slowest.
    auto pending = std::make_shared<int>(0);
    auto cb = std::make_shared<std::function<void()>>(std::move(done));
    for (auto &p : plls_) {
        if (p->state() == power::Pll::State::Locked)
            continue;
        ++*pending;
        const auto id = std::make_shared<std::uint64_t>(0);
        power::Pll *pll = p.get();
        *id = pll->locked().subscribe(
            [pending, cb, pll, id](bool locked) {
                if (!locked)
                    return;
                pll->locked().unsubscribe(*id);
                if (--*pending == 0 && *cb)
                    (*cb)();
            });
        pll->powerOn();
    }
    if (*pending == 0 && *cb)
        (*cb)();
}

bool
PllFarm::allLocked() const
{
    return std::all_of(plls_.begin(), plls_.end(), [](const auto &p) {
        return p->state() == power::Pll::State::Locked;
    });
}

double
PllFarm::totalPowerWatts() const
{
    double w = 0.0;
    for (const auto &p : plls_)
        w += p->currentPowerWatts();
    return w;
}

} // namespace apc::uncore
