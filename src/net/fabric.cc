#include "net/fabric.h"

#include <algorithm>
#include <cassert>

namespace apc::net {

DropTailLink::Offer
DropTailLink::offer(sim::Tick now, std::uint32_t bytes)
{
    ++offered_;
    if (flapped(now)) {
        ++dropped_;
        ++flapDropped_;
        return {false, 0};
    }
    const sim::Tick ser = serializationTime(bytes);
    const sim::Tick backlog = busyUntil_ > now ? busyUntil_ - now : 0;
    // Tail drop when the queued serialization backlog already holds a
    // full buffer's worth of packets.
    if (backlog >= static_cast<sim::Tick>(cfg_.queuePackets) * ser) {
        ++dropped_;
        return {false, 0};
    }
    busyUntil_ = std::max(now, busyUntil_) + ser;
    busyTime_ += ser;
    ++delivered_;
    bytes_ += bytes;
    return {true, busyUntil_ + cfg_.propDelay};
}

DropTailLink::Offer
DropTailLink::probe(sim::Tick at, std::uint32_t bytes)
{
    ++offered_;
    if (flapped(at)) {
        ++dropped_;
        ++flapDropped_;
        return {false, 0};
    }
    const sim::Tick ser = serializationTime(bytes);
    const sim::Tick backlog = busyUntil_ > at ? busyUntil_ - at : 0;
    if (backlog >= static_cast<sim::Tick>(cfg_.queuePackets) * ser) {
        ++dropped_;
        return {false, 0};
    }
    ++delivered_;
    bytes_ += bytes;
    return {true, std::max(at, busyUntil_) + ser + cfg_.propDelay};
}

Fabric::Fabric(FabricConfig cfg, std::size_t num_servers)
    : cfg_(std::move(cfg)), coreIn_(cfg_.core), coreOut_(cfg_.core)
{
    assert(num_servers > 0);
    down_.reserve(num_servers);
    up_.reserve(num_servers);
    for (std::size_t i = 0; i < num_servers; ++i) {
        LinkConfig lc = cfg_.edge;
        lc.name = cfg_.edge.name + std::to_string(i);
        down_.emplace_back(lc);
        up_.emplace_back(std::move(lc));
    }
}

Fabric::Transit
Fabric::route(sim::Tick now, DropTailLink &first, DropTailLink &second,
              std::uint32_t bytes)
{
    Transit tr;
    sim::Tick attempt_at = now;
    sim::Tick rto = cfg_.rto;
    for (int attempt = 1;; ++attempt) {
        // Only the first attempt occupies the wire; retransmits run at
        // future RTO-ladder instants and must not drag the shared
        // links' queue horizon forward (see DropTailLink::probe).
        const bool retry = attempt > 1;
        const auto h1 = retry ? first.probe(attempt_at, bytes)
                              : first.offer(attempt_at, bytes);
        if (h1.accepted) {
            const sim::Tick hop = h1.deliverAt + cfg_.switchLatency;
            const auto h2 = retry ? second.probe(hop, bytes)
                                  : second.offer(hop, bytes);
            if (h2.accepted) {
                tr.deliverAt = h2.deliverAt;
                return tr;
            }
        }
        // The final failed attempt is a give-up, not a retransmit:
        // keeping the two disjoint keeps the path-level identity
        // exact (attempts made = 1 + retransmits per transit).
        if (attempt >= cfg_.maxTries) {
            tr.lost = true;
            ++giveUps_;
            return tr;
        }
        ++tr.retransmits;
        ++retransmits_;
        tr.rtoWait += rto;
        attempt_at += rto;
        // Exponential backoff with a cap: persistent congestion (or a
        // flapped link) pushes the source off instead of hammering a
        // fixed cadence.
        rto = std::min(cfg_.rtoMax,
                       static_cast<sim::Tick>(
                           static_cast<double>(rto) * cfg_.rtoBackoff));
    }
}

void
Fabric::flapServer(std::size_t srv, sim::Tick from, sim::Tick to)
{
    assert(srv < down_.size());
    down_[srv].addOutage(from, to);
    up_[srv].addOutage(from, to);
}

void
Fabric::flapCore(sim::Tick from, sim::Tick to)
{
    coreIn_.addOutage(from, to);
    coreOut_.addOutage(from, to);
}

Fabric::Transit
Fabric::toServer(sim::Tick now, std::size_t srv)
{
    assert(srv < down_.size());
    ++requests_;
    return route(now, coreIn_, down_[srv], cfg_.requestBytes);
}

Fabric::Transit
Fabric::toClient(sim::Tick now, std::size_t srv)
{
    assert(srv < up_.size());
    ++responses_;
    return route(now, up_[srv], coreOut_, cfg_.responseBytes);
}

void
Fabric::beginWindow()
{
    coreIn_.beginWindow();
    coreOut_.beginWindow();
    for (auto &l : down_)
        l.beginWindow();
    for (auto &l : up_)
        l.beginWindow();
    requests_ = responses_ = retransmits_ = giveUps_ = 0;
}

FabricStats
Fabric::stats() const
{
    FabricStats s;
    const auto add = [&s](const DropTailLink &l) {
        s.enqueued += l.offered();
        s.delivered += l.delivered();
        s.dropped += l.dropped();
        s.flapDropped += l.flapDropped();
    };
    add(coreIn_);
    add(coreOut_);
    for (const auto &l : down_)
        add(l);
    for (const auto &l : up_)
        add(l);
    s.requests = requests_;
    s.responses = responses_;
    s.retransmits = retransmits_;
    s.giveUps = giveUps_;
    return s;
}

double
Fabric::averagePowerW(sim::Tick window) const
{
    double w = coreIn_.averagePowerW(window) +
        coreOut_.averagePowerW(window);
    for (const auto &l : down_)
        w += l.averagePowerW(window);
    for (const auto &l : up_)
        w += l.averagePowerW(window);
    return w;
}

} // namespace apc::net
