/**
 * @file
 * Inter-server network fabric: point-to-point links and a ToR-style
 * switch with bandwidth, propagation delay, and finite drop-tail
 * buffers (the ns-3 AQM-model idiom, reduced to its analytic core).
 *
 * Topology (one rack): the client/load-balancer side reaches the ToR
 * over a shared core link, and each server hangs off the ToR on its own
 * edge link; every link is full duplex (one `DropTailLink` instance per
 * direction), so requests and responses never contend with each other:
 *
 *     client ==core==> [ToR] --edge--> server i      (requests)
 *     client <==core== [ToR] <--edge-- server i      (responses)
 *
 * Links are analytic FIFO queues rather than event-driven ones: a
 * packet offered at time t behind `backlog` ticks of queued
 * serialization either tail-drops (backlog at capacity) or departs at
 * `max(t, busyUntil) + serialization` and arrives after the propagation
 * delay. This costs no simulator events, which keeps the fleet's
 * lockstep-epoch determinism intact: the fabric is only ever touched
 * from the single-threaded dispatch/drain sections.
 *
 * A drop triggers a bounded source retransmit after an RTO; a packet
 * that exhausts its tries is lost and reported. Per-link counters keep
 * the conservation identity `offered == delivered + dropped` exact.
 */

#ifndef APC_NET_FABRIC_H
#define APC_NET_FABRIC_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace apc::net {

/** One link direction's physical parameters. */
struct LinkConfig
{
    std::string name = "link";
    double gbps = 10.0;
    sim::Tick propDelay = 600 * sim::kNs;
    /** Drop-tail buffer, in packets' worth of serialization backlog. */
    std::size_t queuePackets = 128;
    /** PHY power: baseline, and while serializing. */
    double idleW = 0.5;
    double activeW = 2.0;
};

/** Analytic FIFO drop-tail link (one direction). */
class DropTailLink
{
  public:
    explicit DropTailLink(LinkConfig cfg) : cfg_(std::move(cfg)) {}

    struct Offer
    {
        bool accepted;
        sim::Tick deliverAt; ///< arrival at the far end (accepted only)
    };

    /**
     * Offer a @p bytes packet to the queue at time @p now. Offers need
     * not be globally time-ordered (the fleet processes responses a
     * drain-round at a time); the queue state only moves forward.
     */
    Offer offer(sim::Tick now, std::uint32_t bytes);

    /**
     * Evaluate an offer at @p at without occupying the wire: same
     * acceptance rule and statistics as offer(), but busyUntil_ is
     * read, not written. Retransmit attempts run at *future* instants
     * (the RTO ladder), and letting them drag the queue horizon
     * forward would head-of-line block every packet offered later in
     * call order but earlier in sim time — one flapped edge link must
     * not congest the shared core for the whole fleet. The bandwidth
     * retransmits consume is deliberately left unaccounted (they are
     * a trickle next to first-attempt traffic).
     */
    Offer probe(sim::Tick at, std::uint32_t bytes);

    /**
     * Schedule an availability outage (link flap): every offer with
     * `now` in [from, to) is dropped outright — a forced 100% loss
     * window on top of drop-tail. Windows are part of the fault plan,
     * so they survive beginWindow(). Counted in both dropped() (the
     * conservation identity stays exact) and flapDropped().
     */
    void
    addOutage(sim::Tick from, sim::Tick to)
    {
        if (to > from)
            outages_.emplace_back(from, to);
    }

    /** True when the link is inside a flap window at @p now. */
    bool
    flapped(sim::Tick now) const
    {
        for (const auto &w : outages_)
            if (now >= w.first && now < w.second)
                return true;
        return false;
    }

    /** Drops caused by flap windows (subset of dropped()). */
    std::uint64_t flapDropped() const { return flapDropped_; }

    /** Wire time for @p bytes at the configured rate. */
    sim::Tick
    serializationTime(std::uint32_t bytes) const
    {
        return sim::fromNanos(static_cast<double>(bytes) * 8.0 /
                              cfg_.gbps);
    }

    std::uint64_t offered() const { return offered_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t bytesDelivered() const { return bytes_; }

    /** Time spent serializing since the window began. */
    sim::Tick busyTime() const { return busyTime_; }

    /** Zero counters for a new measurement window. */
    void
    beginWindow()
    {
        offered_ = delivered_ = dropped_ = bytes_ = 0;
        flapDropped_ = 0;
        busyTime_ = 0;
    }

    /** Average power over a window of @p window ticks. */
    double
    averagePowerW(sim::Tick window) const
    {
        if (window <= 0)
            return cfg_.idleW;
        const double busy = static_cast<double>(busyTime_) /
            static_cast<double>(window);
        return cfg_.idleW + (cfg_.activeW - cfg_.idleW) * busy;
    }

    const LinkConfig &config() const { return cfg_; }

  private:
    LinkConfig cfg_;
    sim::Tick busyUntil_ = 0;
    sim::Tick busyTime_ = 0;
    std::uint64_t offered_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t flapDropped_ = 0;
    std::uint64_t bytes_ = 0;
    /** Fault-plan availability schedule, in plan (time) order. */
    std::vector<std::pair<sim::Tick, sim::Tick>> outages_;
};

/** Fabric-wide configuration. */
struct FabricConfig
{
    /** Gate for FleetSim: off = legacy zero-cost direct injection. */
    bool enabled = false;

    /** ToR <-> server template (name is set per instance). */
    LinkConfig edge;

    /** Client <-> ToR aggregate path. Default propagation approximates
     *  the paper's ~117 µs client round trip. */
    LinkConfig core;

    /** ToR forwarding latency per hop. */
    sim::Tick switchLatency = 500 * sim::kNs;

    std::uint32_t requestBytes = 512;
    std::uint32_t responseBytes = 1500;

    /** Initial source retransmit timeout after a drop. */
    sim::Tick rto = 1 * sim::kMs;

    /** Each further retransmit waits `rtoBackoff` times longer than
     *  the previous one, capped at rtoMax — persistent congestion (or
     *  a flapped link) backs the source off instead of hammering a
     *  fixed 1 ms cadence. */
    double rtoBackoff = 2.0;
    sim::Tick rtoMax = 8 * sim::kMs;

    /** Total attempts per packet (1 original + maxTries-1 resends). */
    int maxTries = 4;

    FabricConfig()
    {
        edge.name = "edge";
        edge.gbps = 10.0;
        edge.propDelay = 600 * sim::kNs;
        edge.queuePackets = 128;
        edge.idleW = 0.5;
        edge.activeW = 2.0;
        core.name = "core";
        core.gbps = 40.0;
        core.propDelay = 55 * sim::kUs;
        core.queuePackets = 256;
        core.idleW = 2.0;
        core.activeW = 6.0;
    }
};

/** Aggregated fabric counters (per-link sums + path-level outcomes). */
struct FabricStats
{
    // Per-link-offer sums: enqueued == delivered + dropped, exactly.
    std::uint64_t enqueued = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;

    // Path-level accounting. A transit that exhausts maxTries counts
    // once in `giveUps` and never in `retransmits` — retransmits are
    // extra attempts actually made, give-ups are final surrenders, so
    // `requests + responses == delivered transits + giveUps` stays an
    // exact identity alongside per-link conservation.
    std::uint64_t requests = 0;    ///< client -> server transits asked
    std::uint64_t responses = 0;   ///< server -> client transits asked
    std::uint64_t retransmits = 0; ///< extra attempts after drops
    std::uint64_t giveUps = 0;     ///< transits that exhausted maxTries
    std::uint64_t flapDropped = 0; ///< drops caused by flap windows
};

/** The rack fabric: core links, ToR, per-server edge links. */
class Fabric
{
  public:
    Fabric(FabricConfig cfg, std::size_t num_servers);

    /** Outcome of one end-to-end transit (including retransmits). */
    struct Transit
    {
        sim::Tick deliverAt = 0;
        int retransmits = 0;
        /** Actual cumulative RTO wait across the retransmits — under
         *  exponential backoff this is no longer retransmits * rto,
         *  so the attribution layer must take it from here. */
        sim::Tick rtoWait = 0;
        bool lost = false;
    };

    /** Route a request from the client to server @p srv's NIC. */
    Transit toServer(sim::Tick now, std::size_t srv);

    /** Route a response from server @p srv back to the client. */
    Transit toClient(sim::Tick now, std::size_t srv);

    /** Reset all counters (start of a measurement window). */
    void beginWindow();

    /** Flap server @p srv's edge link pair: 100% loss in [from, to). */
    void flapServer(std::size_t srv, sim::Tick from, sim::Tick to);

    /** Flap the core pair — a rack-wide blackout in [from, to). */
    void flapCore(sim::Tick from, sim::Tick to);

    FabricStats stats() const;

    /** Average fabric power over a window of @p window ticks. */
    double averagePowerW(sim::Tick window) const;

    std::size_t numServers() const { return down_.size(); }
    const DropTailLink &downlink(std::size_t i) const { return down_[i]; }
    const DropTailLink &uplink(std::size_t i) const { return up_[i]; }
    const DropTailLink &coreIngress() const { return coreIn_; }
    const DropTailLink &coreEgress() const { return coreOut_; }

    const FabricConfig &config() const { return cfg_; }

  private:
    /** Two-hop path with bounded source retransmission on drop. */
    Transit route(sim::Tick now, DropTailLink &first,
                  DropTailLink &second, std::uint32_t bytes);

    FabricConfig cfg_;
    DropTailLink coreIn_;  ///< client -> ToR
    DropTailLink coreOut_; ///< ToR -> client
    std::vector<DropTailLink> down_; ///< ToR -> server i
    std::vector<DropTailLink> up_;   ///< server i -> ToR
    std::uint64_t requests_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t giveUps_ = 0;
};

} // namespace apc::net

#endif // APC_NET_FABRIC_H
