/**
 * @file
 * NIC device model: RX/TX descriptor rings, an interrupt-moderation
 * unit, and DMA over the hosting PCIe IoLink.
 *
 * The NIC is the wake source the paper's argument hinges on: a request
 * arriving over the wire does not touch a core directly — it lands in
 * the RX descriptor ring and waits for the moderation unit to raise an
 * interrupt. Moderation mirrors the two `ethtool -C` knobs:
 *
 * - `rx-frames`: raise the interrupt once the ring holds that many
 *   unsignalled descriptors;
 * - `rx-usecs`: or once the oldest unsignalled descriptor has waited
 *   that long (0 = interrupt per packet).
 *
 * When the interrupt fires, the batch is DMA'd over the PCIe link —
 * which is what drops the link out of L0s/L1, deasserts `InL0s`, and
 * makes the APMU run the package C-state exit. The coalescing window
 * therefore trades p99 latency (packets wait in the ring) against
 * package C-state residency and joules/request (fewer wakes, shared
 * wake cost) — the trade-off `bench_net_coalescing` sweeps.
 *
 * A full ring drops the packet (tail drop); the owner may resend via
 * the drop hook. The device draws power on the `Network` plane, outside
 * the RAPL Package/DRAM domains, like a real PCIe adapter.
 */

#ifndef APC_NET_NIC_H
#define APC_NET_NIC_H

#include <cstdint>
#include <functional>
#include <vector>

#include "io/io_link.h"
#include "power/energy_meter.h"
#include "sim/simulation.h"
#include "stats/summary.h"

namespace apc::net {

/** NIC device + interrupt-moderation configuration. */
struct NicConfig
{
    /** Gate for ServerSim: off = legacy direct injection path. */
    bool enabled = false;

    /** RX descriptor-ring capacity; a full ring tail-drops. */
    std::size_t rxRingSize = 256;

    /** Interrupt after this many unsignalled RX descriptors. */
    std::uint32_t rxFrames = 32;

    /** ... or once the oldest descriptor waited this long (0 = every
     *  packet raises its own interrupt immediately). */
    sim::Tick rxUsecs = 20 * sim::kUs;

    /** PCIe link occupancy per DMA'd descriptor (RX and TX). */
    sim::Tick dmaPerPacket = 200 * sim::kNs;

    /** Device power: baseline, and while a DMA burst is in flight. */
    double idleW = 4.5;
    double activeW = 7.0;
};

/** Counters over one measurement window. */
struct NicStats
{
    std::uint64_t interrupts = 0;
    std::uint64_t rxPackets = 0; ///< accepted into the ring
    std::uint64_t rxDropped = 0; ///< ring-full tail drops
    std::uint64_t rxAborted = 0; ///< ring descriptors destroyed by a crash
    std::uint64_t txPackets = 0;

    /** Batch size per interrupt. */
    stats::Summary pktsPerIrq;

    /** Descriptor wait in the ring (enqueue -> interrupt), µs. */
    stats::Summary ringWaitUs;
};

/** One NIC on a PCIe link. */
class Nic
{
  public:
    /** An RX descriptor: the request it carries and when it landed. */
    struct RxPacket
    {
        std::uint64_t id;
        sim::Tick service;
        sim::Tick enqueuedAt;
    };

    /**
     * Batch delivery after the interrupt's DMA completed. @p irq_at is
     * the instant the interrupt was raised (DMA start), so the receiver
     * can account the NIC-wake -> fabric-ready latency.
     */
    using DeliverFn =
        std::function<void(std::vector<RxPacket> batch, sim::Tick irq_at)>;

    /** Ring-full tail drop of the packet carrying @p id. */
    using DropFn = std::function<void(std::uint64_t id, sim::Tick at)>;

    Nic(sim::Simulation &sim, power::EnergyMeter &meter, io::IoLink &link,
        const NicConfig &cfg);

    void onDeliver(DeliverFn fn) { deliverFn_ = std::move(fn); }
    void onRxDrop(DropFn fn) { dropFn_ = std::move(fn); }

    /**
     * A packet arrives from the wire into the RX ring. May raise the
     * interrupt immediately (frame threshold / zero window) or arm the
     * moderation timer.
     */
    void rxEnqueue(std::uint64_t id, sim::Tick service);

    /** DMA one response to the wire; @p done when it has left the NIC. */
    void txSend(std::function<void()> done);

    /** Unsignalled RX descriptors currently waiting. */
    std::size_t ringOccupancy() const { return ring_.size(); }

    /**
     * Freeze the moderation unit until @p until: no interrupts fire, so
     * the ring fills and eventually tail-drops — the observable symptom
     * of a wedged IRQ path. Packets keep landing in the ring; at the
     * window end the backlog flushes through one interrupt. Extending
     * an active freeze is allowed (windows merge).
     */
    void freeze(sim::Tick until);

    /** True while the moderation unit is frozen. */
    bool frozen() const { return sim_.now() < frozenUntil_; }

    /**
     * Server crash: destroy every unsignalled RX descriptor and cancel
     * the moderation timer. @return the request ids the ring carried
     * (the caller reports them lost — a crash never silently vanishes
     * work). A DMA batch already in flight is not recalled; the owner
     * discards it on delivery by its pre-crash enqueue time.
     */
    std::vector<std::uint64_t> crashAbort();

    const NicStats &stats() const { return stats_; }

    /** Zero the counters (start of a measurement window). */
    void resetStats() { stats_ = NicStats{}; }

    /** Device energy so far (Network plane), joules. */
    double energyJoules() const { return load_.energyJoules(); }

    const NicConfig &config() const { return cfg_; }

  private:
    void fireInterrupt();
    void dmaBegin();
    void dmaEnd();

    sim::Simulation &sim_;
    NicConfig cfg_;
    io::IoLink &link_;
    power::PowerLoad load_;
    std::vector<RxPacket> ring_;
    sim::EventHandle timer_;
    sim::Tick frozenUntil_ = 0;
    int dmaInFlight_ = 0;
    NicStats stats_;
    DeliverFn deliverFn_;
    DropFn dropFn_;
};

} // namespace apc::net

#endif // APC_NET_NIC_H
