#include "net/nic.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/tracer.h"

namespace apc::net {

Nic::Nic(sim::Simulation &sim, power::EnergyMeter &meter,
         io::IoLink &link, const NicConfig &cfg)
    : sim_(sim), cfg_(cfg), link_(link),
      load_(meter, "nic-dev", power::Plane::Network, cfg.idleW)
{
    assert(cfg_.rxRingSize > 0 && cfg_.rxFrames > 0);
    ring_.reserve(cfg_.rxRingSize);
}

void
Nic::dmaBegin()
{
    if (dmaInFlight_++ == 0)
        load_.setPower(cfg_.activeW);
}

void
Nic::dmaEnd()
{
    assert(dmaInFlight_ > 0);
    if (--dmaInFlight_ == 0)
        load_.setPower(cfg_.idleW);
}

void
Nic::rxEnqueue(std::uint64_t id, sim::Tick service)
{
    if (ring_.size() >= cfg_.rxRingSize) {
        ++stats_.rxDropped;
        if (auto *tw = sim_.trace())
            tw->instant(sim_.now(), obs::Name::NicDrop, obs::Track::Nic,
                        id);
        if (dropFn_)
            dropFn_(id, sim_.now());
        return;
    }
    ring_.push_back({id, service, sim_.now()});
    ++stats_.rxPackets;
    if (frozen())
        return; // moderation wedged: descriptors pile up in the ring
    if (ring_.size() >= cfg_.rxFrames || cfg_.rxUsecs <= 0) {
        timer_.cancel();
        fireInterrupt();
    } else if (ring_.size() == 1) {
        // Timer runs from the oldest unsignalled descriptor.
        timer_ = sim_.after(cfg_.rxUsecs, [this] { fireInterrupt(); });
    }
}

void
Nic::freeze(sim::Tick until)
{
    if (until <= sim_.now())
        return;
    if (until <= frozenUntil_)
        return; // already frozen past that point
    frozenUntil_ = until;
    timer_.cancel();
    // Thaw events from earlier (shorter) windows fire while frozen()
    // is still true and fall through; only the final one flushes.
    sim_.at(frozenUntil_, [this] {
        if (frozen())
            return; // the window was extended; a later thaw is due
        // Flush the backlog the freeze accumulated in one interrupt;
        // an empty ring just resumes normal moderation.
        if (!ring_.empty())
            fireInterrupt();
    });
}

std::vector<std::uint64_t>
Nic::crashAbort()
{
    timer_.cancel();
    std::vector<std::uint64_t> ids;
    ids.reserve(ring_.size());
    for (const RxPacket &p : ring_)
        ids.push_back(p.id);
    stats_.rxAborted += ring_.size();
    ring_.clear();
    return ids;
}

void
Nic::fireInterrupt()
{
    if (ring_.empty())
        return;
    std::vector<RxPacket> batch = std::move(ring_);
    ring_.clear();
    ring_.reserve(cfg_.rxRingSize);

    const sim::Tick irq_at = sim_.now();
    ++stats_.interrupts;
    if (auto *tw = sim_.trace())
        tw->instant(irq_at, obs::Name::NicIrq, obs::Track::Nic, 0,
                    static_cast<double>(batch.size()));
    stats_.pktsPerIrq.record(static_cast<double>(batch.size()));
    for (const RxPacket &p : batch)
        stats_.ringWaitUs.record(sim::toMicros(irq_at - p.enqueuedAt));

    // The DMA burst is what wakes the PCIe link (L0s/L1 exit) and, via
    // the dropped InL0s wire, the package — a coalesced interrupt, not
    // the request itself, exits the C-state.
    dmaBegin();
    const sim::Tick dma =
        static_cast<sim::Tick>(batch.size()) * cfg_.dmaPerPacket;
    link_.transfer(dma, [this, irq_at, batch = std::move(batch)]() mutable {
        dmaEnd();
        // Attribution boundaries, known only now that the DMA burst is
        // done: each injected packet waited in the RX ring from its
        // enqueue to the moderated interrupt (seg_nic_ring), then rode
        // the IRQ's DMA hold to completion (seg_irq_hold).
        if (auto *tw = sim_.trace(); tw && sim_.traceSegments()) {
            const sim::Tick dma_done = sim_.now();
            for (const RxPacket &p : batch) {
                if (p.id == UINT64_MAX)
                    continue; // internal arrival, not fleet-attributed
                if (irq_at > p.enqueuedAt)
                    tw->span(p.enqueuedAt, irq_at - p.enqueuedAt,
                             obs::Name::SegNicRing, obs::Track::Segments,
                             p.id);
                if (dma_done > irq_at)
                    tw->span(irq_at, dma_done - irq_at,
                             obs::Name::SegIrqHold, obs::Track::Segments,
                             p.id);
            }
        }
        if (deliverFn_)
            deliverFn_(std::move(batch), irq_at);
    });
}

void
Nic::txSend(std::function<void()> done)
{
    ++stats_.txPackets;
    dmaBegin();
    link_.transfer(cfg_.dmaPerPacket,
                   [this, done = std::move(done)] {
                       dmaEnd();
                       if (done)
                           done();
                   });
}

} // namespace apc::net
