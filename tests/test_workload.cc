/**
 * @file
 * Unit tests for the workload generators (workload/).
 */

#include <gtest/gtest.h>

#include "workload/cdf_table.h"
#include "workload/workload.h"

namespace apc::workload {
namespace {

using sim::kUs;

double
measuredRate(ArrivalProcess &p, sim::Rng &rng, int n = 200000)
{
    sim::Tick total = 0;
    for (int i = 0; i < n; ++i)
        total += p.nextGap(rng);
    return n / sim::toSeconds(total);
}

TEST(Arrivals, PoissonRateConverges)
{
    sim::Rng rng(1);
    PoissonArrivals p(50000.0);
    EXPECT_NEAR(measuredRate(p, rng), 50000.0, 1000.0);
    EXPECT_DOUBLE_EQ(p.ratePerSec(), 50000.0);
}

TEST(Arrivals, DeterministicIsExact)
{
    sim::Rng rng(1);
    DeterministicArrivals d(100 * kUs);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(d.nextGap(rng), 100 * kUs);
    EXPECT_NEAR(d.ratePerSec(), 10000.0, 1e-6);
}

TEST(Arrivals, MmppLongRunRateMatchesQps)
{
    sim::Rng rng(2);
    MmppArrivals m(20000.0, 3.0, 200 * kUs);
    EXPECT_NEAR(measuredRate(m, rng), 20000.0, 800.0);
}

TEST(Arrivals, MmppWithBurstinessOneIsPoisson)
{
    sim::Rng rng(3);
    MmppArrivals m(10000.0, 1.0, 200 * kUs);
    EXPECT_NEAR(measuredRate(m, rng), 10000.0, 400.0);
}

TEST(Arrivals, MmppIsBurstier)
{
    // Squared coefficient of variation of gaps must exceed Poisson's 1.
    sim::Rng rng(4);
    MmppArrivals m(10000.0, 4.0, 200 * kUs);
    double sum = 0, sum2 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = sim::toSeconds(m.nextGap(rng));
        sum += g;
        sum2 += g * g;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_GT(var / (mean * mean), 1.5);
}

TEST(Arrivals, SameSeedSameGapSequence)
{
    sim::Rng a(7), b(7);
    PoissonArrivals pa(30000.0), pb(30000.0);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(pa.nextGap(a), pb.nextGap(b));
    sim::Rng c(9), d(9);
    MmppArrivals ma(30000.0, 3.0, 200 * kUs), mb(30000.0, 3.0, 200 * kUs);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(ma.nextGap(c), mb.nextGap(d));
}

TEST(CdfTable, LoadsPercentTableAndNormalizes)
{
    // TrafficGenerator-style percent table (web-search-like shape).
    const auto t = CdfTable::fromString("# size_KB cdf%\n"
                                        "1 0\n"
                                        "10 50\n"
                                        "100 90\n"
                                        "1000 100\n");
    ASSERT_TRUE(t.valid());
    EXPECT_EQ(t.size(), 4u);
    EXPECT_DOUBLE_EQ(t.points().back().cdf, 1.0);
    EXPECT_DOUBLE_EQ(t.maxValue(), 1000.0);
}

TEST(CdfTable, AnalyticMeanMatchesPiecewiseLinear)
{
    // Uniform on [0, 10]: mean 5.
    const CdfTable u({{0, 0}, {10, 1}});
    EXPECT_DOUBLE_EQ(u.mean(), 5.0);
    // 50% uniform [0,10], 50% uniform [10,30]: 0.5*5 + 0.5*20 = 12.5.
    const CdfTable m({{0, 0}, {10, 0.5}, {30, 1}});
    EXPECT_DOUBLE_EQ(m.mean(), 12.5);
}

TEST(CdfTable, SamplingReproducesTableMean)
{
    const auto t = CdfTable::fromString("1 0\n"
                                        "10 50\n"
                                        "100 90\n"
                                        "1000 100\n");
    ASSERT_TRUE(t.valid());
    sim::Rng rng(11);
    double total = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double v = t.sample(rng);
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1000.0);
        total += v;
    }
    // Sample mean within 2% of the analytic mean.
    EXPECT_NEAR(total / n, t.mean(), 0.02 * t.mean());
}

TEST(CdfTable, PointMassStep)
{
    // All mass at exactly 42.
    const CdfTable t({{42, 1}});
    sim::Rng rng(1);
    double total = 0;
    for (int i = 0; i < 1000; ++i)
        total += t.sample(rng);
    // Leading segment interpolates from 0 per TrafficGenerator; mean
    // is 21 for a single-point table.
    EXPECT_NEAR(total / 1000, t.mean(), 0.05 * t.mean());
}

TEST(CdfTable, RejectsMalformedTables)
{
    EXPECT_FALSE(CdfTable::fromString("").valid());
    EXPECT_FALSE(CdfTable::fromString("10 50\n5 100\n").valid()); // desc v
    EXPECT_FALSE(CdfTable::fromString("1 60\n2 40\n").valid());   // desc cdf
    EXPECT_FALSE(CdfTable::fromString("1 0\n2 0\n").valid());     // no mass
    EXPECT_FALSE(CdfTable::fromFile("/nonexistent/cdf.txt").valid());
}

TEST(CdfTable, CdfServiceScalesToTicks)
{
    const CdfTable t({{0, 0}, {10, 1}}); // mean 5 table units
    CdfService svc(t, static_cast<double>(sim::kUs)); // 1 unit = 1 µs
    EXPECT_EQ(svc.mean(), 5 * sim::kUs);
    sim::Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(svc.sample(rng), 10 * sim::kUs);
}

TEST(Service, FixedAndMean)
{
    sim::Rng rng(1);
    FixedService f(10 * kUs);
    EXPECT_EQ(f.sample(rng), 10 * kUs);
    EXPECT_EQ(f.mean(), 10 * kUs);
}

TEST(Service, LognormalMeanConverges)
{
    sim::Rng rng(5);
    LognormalService l(20 * kUs, 0.5);
    double total = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total += sim::toMicros(l.sample(rng));
    EXPECT_NEAR(total / n, 20.0, 0.5);
}

TEST(Service, BimodalMeanAndModes)
{
    sim::Rng rng(6);
    BimodalService b(10 * kUs, 60 * kUs, 0.03);
    EXPECT_NEAR(sim::toMicros(b.mean()), 11.5, 0.01);
    double total = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total += sim::toMicros(b.sample(rng));
    EXPECT_NEAR(total / n, 11.5, 0.5);
}

TEST(Workload, PresetsBuild)
{
    const auto mc = WorkloadConfig::memcachedEtc(50000);
    EXPECT_EQ(mc.name, "memcached-etc");
    EXPECT_DOUBLE_EQ(mc.qps, 50000.0);
    EXPECT_NE(mc.makeArrivals(), nullptr);
    EXPECT_NE(mc.makeService(), nullptr);

    const auto my = WorkloadConfig::mysqlOltp(800);
    EXPECT_EQ(my.serviceMean, 1 * sim::kMs);

    const auto kf = WorkloadConfig::kafka(8000);
    EXPECT_EQ(kf.serviceMean, 100 * kUs);
}

TEST(Workload, QpsForUtilizationRoundTrips)
{
    const auto my = WorkloadConfig::mysqlOltp(0);
    // 1 ms service + avg(30,10)/2=20 µs wake on 10 cores: 8% => ~784.
    const double qps = my.qpsForUtilization(0.08, 10);
    EXPECT_NEAR(qps, 0.08 * 10 / 1.02e-3, 1.0);
}

TEST(Workload, MemcachedServiceIsMicrosecondScale)
{
    const auto mc = WorkloadConfig::memcachedEtc(10000);
    EXPECT_GE(mc.meanServiceTicks(), 5 * kUs);
    EXPECT_LE(mc.meanServiceTicks(), 30 * kUs);
}

} // namespace
} // namespace apc::workload
