/**
 * @file
 * Unit tests for the workload generators (workload/).
 */

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace apc::workload {
namespace {

using sim::kUs;

double
measuredRate(ArrivalProcess &p, sim::Rng &rng, int n = 200000)
{
    sim::Tick total = 0;
    for (int i = 0; i < n; ++i)
        total += p.nextGap(rng);
    return n / sim::toSeconds(total);
}

TEST(Arrivals, PoissonRateConverges)
{
    sim::Rng rng(1);
    PoissonArrivals p(50000.0);
    EXPECT_NEAR(measuredRate(p, rng), 50000.0, 1000.0);
    EXPECT_DOUBLE_EQ(p.ratePerSec(), 50000.0);
}

TEST(Arrivals, DeterministicIsExact)
{
    sim::Rng rng(1);
    DeterministicArrivals d(100 * kUs);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(d.nextGap(rng), 100 * kUs);
    EXPECT_NEAR(d.ratePerSec(), 10000.0, 1e-6);
}

TEST(Arrivals, MmppLongRunRateMatchesQps)
{
    sim::Rng rng(2);
    MmppArrivals m(20000.0, 3.0, 200 * kUs);
    EXPECT_NEAR(measuredRate(m, rng), 20000.0, 800.0);
}

TEST(Arrivals, MmppWithBurstinessOneIsPoisson)
{
    sim::Rng rng(3);
    MmppArrivals m(10000.0, 1.0, 200 * kUs);
    EXPECT_NEAR(measuredRate(m, rng), 10000.0, 400.0);
}

TEST(Arrivals, MmppIsBurstier)
{
    // Squared coefficient of variation of gaps must exceed Poisson's 1.
    sim::Rng rng(4);
    MmppArrivals m(10000.0, 4.0, 200 * kUs);
    double sum = 0, sum2 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = sim::toSeconds(m.nextGap(rng));
        sum += g;
        sum2 += g * g;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_GT(var / (mean * mean), 1.5);
}

TEST(Service, FixedAndMean)
{
    sim::Rng rng(1);
    FixedService f(10 * kUs);
    EXPECT_EQ(f.sample(rng), 10 * kUs);
    EXPECT_EQ(f.mean(), 10 * kUs);
}

TEST(Service, LognormalMeanConverges)
{
    sim::Rng rng(5);
    LognormalService l(20 * kUs, 0.5);
    double total = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total += sim::toMicros(l.sample(rng));
    EXPECT_NEAR(total / n, 20.0, 0.5);
}

TEST(Service, BimodalMeanAndModes)
{
    sim::Rng rng(6);
    BimodalService b(10 * kUs, 60 * kUs, 0.03);
    EXPECT_NEAR(sim::toMicros(b.mean()), 11.5, 0.01);
    double total = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total += sim::toMicros(b.sample(rng));
    EXPECT_NEAR(total / n, 11.5, 0.5);
}

TEST(Workload, PresetsBuild)
{
    const auto mc = WorkloadConfig::memcachedEtc(50000);
    EXPECT_EQ(mc.name, "memcached-etc");
    EXPECT_DOUBLE_EQ(mc.qps, 50000.0);
    EXPECT_NE(mc.makeArrivals(), nullptr);
    EXPECT_NE(mc.makeService(), nullptr);

    const auto my = WorkloadConfig::mysqlOltp(800);
    EXPECT_EQ(my.serviceMean, 1 * sim::kMs);

    const auto kf = WorkloadConfig::kafka(8000);
    EXPECT_EQ(kf.serviceMean, 100 * kUs);
}

TEST(Workload, QpsForUtilizationRoundTrips)
{
    const auto my = WorkloadConfig::mysqlOltp(0);
    // 1 ms service + avg(30,10)/2=20 µs wake on 10 cores: 8% => ~784.
    const double qps = my.qpsForUtilization(0.08, 10);
    EXPECT_NEAR(qps, 0.08 * 10 / 1.02e-3, 1.0);
}

TEST(Workload, MemcachedServiceIsMicrosecondScale)
{
    const auto mc = WorkloadConfig::memcachedEtc(10000);
    EXPECT_GE(mc.meanServiceTicks(), 5 * kUs);
    EXPECT_LE(mc.meanServiceTicks(), 30 * kUs);
}

} // namespace
} // namespace apc::workload
