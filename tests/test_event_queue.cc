/**
 * @file
 * Unit tests for the discrete-event kernel (sim/event_queue.h,
 * sim/simulation.h, sim/time.h).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace apc::sim {
namespace {

TEST(Time, UnitConstants)
{
    EXPECT_EQ(kNs, 1000);
    EXPECT_EQ(kUs, 1000 * kNs);
    EXPECT_EQ(kMs, 1000 * kUs);
    EXPECT_EQ(kSec, 1000 * kMs);
}

TEST(Time, Conversions)
{
    EXPECT_DOUBLE_EQ(toSeconds(kSec), 1.0);
    EXPECT_DOUBLE_EQ(toMicros(kUs), 1.0);
    EXPECT_DOUBLE_EQ(toNanos(150 * kNs), 150.0);
    EXPECT_EQ(fromSeconds(2.5), 2 * kSec + 500 * kMs);
    EXPECT_EQ(fromMicros(0.5), 500 * kNs);
    EXPECT_EQ(fromNanos(64.0), 64 * kNs);
}

TEST(Time, ClockPeriod500MHz)
{
    // The APMU clock from the paper: 500 MHz -> 2 ns period.
    EXPECT_EQ(clockPeriod(500e6), 2 * kNs);
    EXPECT_EQ(clockPeriod(1e9), 1 * kNs);
}

TEST(Time, CeilToPeriod)
{
    EXPECT_EQ(ceilToPeriod(0, 2 * kNs), 0);
    EXPECT_EQ(ceilToPeriod(1, 2 * kNs), 2 * kNs);
    EXPECT_EQ(ceilToPeriod(2 * kNs, 2 * kNs), 2 * kNs);
    EXPECT_EQ(ceilToPeriod(2 * kNs + 1, 2 * kNs), 4 * kNs);
}

TEST(Time, Format)
{
    EXPECT_EQ(formatTime(150 * kNs), "150ns");
    EXPECT_EQ(formatTime(2 * kUs + 500 * kNs), "2.5us");
    EXPECT_EQ(formatTime(1 * kSec), "1s");
    EXPECT_EQ(formatTime(500), "500ps");
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.scheduleAt(30, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20);
    EXPECT_EQ(q.runUntil(100), 1u);
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, RunUntilAdvancesTimeWithEmptyQueue)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, EventsScheduledFromEvents)
{
    EventQueue q;
    std::vector<Tick> times;
    q.scheduleAt(10, [&] {
        times.push_back(q.now());
        q.scheduleAfter(5, [&] { times.push_back(q.now()); });
    });
    q.runAll();
    EXPECT_EQ(times, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    auto h = q.scheduleAt(10, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsHarmless)
{
    EventQueue q;
    int fired = 0;
    auto h = q.scheduleAt(10, [&] { ++fired; });
    q.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(h.pending());
    h.cancel(); // no-op
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not crash
}

TEST(EventQueue, ExecutedCountsOnlyLiveEvents)
{
    EventQueue q;
    auto h = q.scheduleAt(5, [] {});
    q.scheduleAt(6, [] {});
    h.cancel();
    q.runAll();
    EXPECT_EQ(q.executedEvents(), 1u);
}

TEST(Simulation, NowAndAfter)
{
    Simulation s;
    Tick seen = -1;
    s.after(42, [&] { seen = s.now(); });
    s.runAll();
    EXPECT_EQ(seen, 42);
}

TEST(Simulation, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        Simulation s(seed);
        std::vector<double> xs;
        for (int i = 0; i < 16; ++i)
            xs.push_back(s.rng().uniform());
        return xs;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(Rng, ExponentialMean)
{
    Rng rng(123);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(25.0);
    EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(Rng, LognormalWithMeanHitsMean)
{
    Rng rng(5);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormalWithMean(20.0, 0.5);
    EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.boundedPareto(1.2, 1.0, 100.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 100.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
} // namespace apc::sim
