/**
 * @file
 * Unit tests for the discrete-event kernel (sim/event_queue.h,
 * sim/simulation.h, sim/time.h).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace apc::sim {
namespace {

TEST(Time, UnitConstants)
{
    EXPECT_EQ(kNs, 1000);
    EXPECT_EQ(kUs, 1000 * kNs);
    EXPECT_EQ(kMs, 1000 * kUs);
    EXPECT_EQ(kSec, 1000 * kMs);
}

TEST(Time, Conversions)
{
    EXPECT_DOUBLE_EQ(toSeconds(kSec), 1.0);
    EXPECT_DOUBLE_EQ(toMicros(kUs), 1.0);
    EXPECT_DOUBLE_EQ(toNanos(150 * kNs), 150.0);
    EXPECT_EQ(fromSeconds(2.5), 2 * kSec + 500 * kMs);
    EXPECT_EQ(fromMicros(0.5), 500 * kNs);
    EXPECT_EQ(fromNanos(64.0), 64 * kNs);
}

TEST(Time, NegativeDeltasRoundToNearest)
{
    // The old `+ 0.5`-then-truncate rounded negatives toward zero:
    // fromNanos(-0.6) evaluated to -599 ps and fromSeconds(-1e-12) to
    // 0. llround rounds to nearest with halves away from zero.
    EXPECT_EQ(fromNanos(-0.6), -600);
    EXPECT_EQ(fromNanos(-1.0), -1 * kNs);
    EXPECT_EQ(fromMicros(-0.5), -500 * kNs);
    EXPECT_EQ(fromSeconds(-2.5), -(2 * kSec + 500 * kMs));
    EXPECT_EQ(fromSeconds(-1e-12), -1); // -1 ps must not collapse to 0
}

TEST(Time, RoundingBoundaries)
{
    // Halves round away from zero (llround semantics).
    EXPECT_EQ(fromNanos(0.0005), 1);
    EXPECT_EQ(fromNanos(-0.0005), -1);
    EXPECT_EQ(fromNanos(0.0004), 0);
    EXPECT_EQ(fromNanos(-0.0004), 0);
    EXPECT_EQ(fromNanos(2.4999), 2500); // nearest, not floor
    EXPECT_EQ(fromMicros(-1.25), -1250 * kNs);
}

TEST(Time, ClockPeriod500MHz)
{
    // The APMU clock from the paper: 500 MHz -> 2 ns period.
    EXPECT_EQ(clockPeriod(500e6), 2 * kNs);
    EXPECT_EQ(clockPeriod(1e9), 1 * kNs);
}

TEST(Time, CeilToPeriod)
{
    EXPECT_EQ(ceilToPeriod(0, 2 * kNs), 0);
    EXPECT_EQ(ceilToPeriod(1, 2 * kNs), 2 * kNs);
    EXPECT_EQ(ceilToPeriod(2 * kNs, 2 * kNs), 2 * kNs);
    EXPECT_EQ(ceilToPeriod(2 * kNs + 1, 2 * kNs), 4 * kNs);
}

TEST(Time, Format)
{
    EXPECT_EQ(formatTime(150 * kNs), "150ns");
    EXPECT_EQ(formatTime(2 * kUs + 500 * kNs), "2.5us");
    EXPECT_EQ(formatTime(1 * kSec), "1s");
    EXPECT_EQ(formatTime(500), "500ps");
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.scheduleAt(30, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20);
    EXPECT_EQ(q.runUntil(100), 1u);
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, RunUntilAdvancesTimeWithEmptyQueue)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, EventsScheduledFromEvents)
{
    EventQueue q;
    std::vector<Tick> times;
    q.scheduleAt(10, [&] {
        times.push_back(q.now());
        q.scheduleAfter(5, [&] { times.push_back(q.now()); });
    });
    q.runAll();
    EXPECT_EQ(times, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    auto h = q.scheduleAt(10, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsHarmless)
{
    EventQueue q;
    int fired = 0;
    auto h = q.scheduleAt(10, [&] { ++fired; });
    q.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(h.pending());
    h.cancel(); // no-op
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not crash
}

TEST(EventQueue, ExecutedCountsOnlyLiveEvents)
{
    EventQueue q;
    auto h = q.scheduleAt(5, [] {});
    q.scheduleAt(6, [] {});
    h.cancel();
    q.runAll();
    EXPECT_EQ(q.executedEvents(), 1u);
}

TEST(EventQueue, SameTickFifoAcrossWheelAndHeap)
{
    // An event landing in the *current* (already-loaded) wheel bucket
    // goes to the binary heap while its same-tick sibling sits in the
    // sorted bucket run; FIFO order by sequence number must still hold
    // across the two containers.
    EventQueue q;
    const Tick target = EventQueue::kBucketTicks + 100;
    std::vector<int> order;
    q.scheduleAt(target, [&] { order.push_back(0); });      // via wheel
    q.scheduleAt(target - 50, [&] {
        // Running inside target's bucket: these same-tick events take
        // the heap path (their bucket has already been consumed).
        q.scheduleAt(target, [&] { order.push_back(1); });
        q.scheduleAt(target, [&] { order.push_back(2); });
    });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, WheelHeapBoundaryCrossings)
{
    // Events straddling the wheel horizon (± a few buckets) must fire
    // in global time order regardless of container.
    EventQueue q;
    std::vector<Tick> fired;
    const Tick span = EventQueue::kWheelSpan;
    const std::vector<Tick> whens = {
        span - 2 * EventQueue::kBucketTicks, // wheel
        span + 7,                            // heap (beyond horizon)
        5,                                   // wheel, first bucket
        span - 1,                            // wheel, last bucket
        span,                                // heap (exactly horizon)
        3 * span + 11,                       // deep heap
        span + 7,                            // duplicate tick, FIFO
    };
    for (Tick w : whens)
        q.scheduleAt(w, [&fired, &q] { fired.push_back(q.now()); });
    EXPECT_GT(q.wheelScheduled(), 0u);
    EXPECT_GT(q.heapScheduled(), 0u);
    q.runAll();
    std::vector<Tick> expect = whens;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(fired, expect);
}

TEST(EventQueue, FarFutureEventsReenterWheelWindow)
{
    // After a long quiet gap the wheel window resyncs to now(), so
    // short-horizon timers scheduled from a far-future event still take
    // the wheel path.
    EventQueue q;
    const Tick far = 10 * EventQueue::kWheelSpan + 123;
    bool inner = false;
    q.scheduleAt(far, [&] {
        const auto before = q.wheelScheduled();
        q.scheduleAfter(100, [&] { inner = true; });
        EXPECT_EQ(q.wheelScheduled(), before + 1);
    });
    q.runAll();
    EXPECT_TRUE(inner);
    EXPECT_EQ(q.now(), far + 100);
}

TEST(EventQueue, CancelThenFireRaceSameTick)
{
    // An event cancelling a same-tick later event must win the race:
    // the victim is already in a container but must never run.
    EventQueue q;
    int fired = 0;
    EventHandle victim;
    q.scheduleAt(10, [&] { victim.cancel(); });
    victim = q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(10, [&] { ++fired; }); // bystander after the victim
    q.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.executedEvents(), 2u);
}

TEST(EventQueue, RescheduleFromCallbackPreservesOrder)
{
    // The classic hysteresis-timer pattern: cancel + re-arm from inside
    // a callback, interleaved with an independent event stream.
    EventQueue q;
    std::vector<Tick> fired;
    EventHandle timer;
    timer = q.scheduleAt(100, [&] { fired.push_back(q.now()); });
    q.scheduleAt(50, [&] {
        timer.cancel();
        timer = q.scheduleAt(150, [&] { fired.push_back(q.now()); });
    });
    q.scheduleAt(120, [&] { fired.push_back(q.now()); });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<Tick>{120, 150}));
}

TEST(EventQueue, HandleInvalidationAfterGenerationReuse)
{
    EventQueue q;
    int first = 0, second = 0;
    auto h1 = q.scheduleAt(5, [&] { ++first; });
    q.runAll();
    EXPECT_EQ(first, 1);
    EXPECT_FALSE(h1.pending());
    // The pool recycles the slot for the next event; the stale handle
    // must not be able to cancel (or observe) the new occupant.
    auto h2 = q.scheduleAt(10, [&] { ++second; });
    h1.cancel();
    EXPECT_TRUE(h2.pending());
    q.runAll();
    EXPECT_EQ(second, 1);
}

TEST(EventQueue, DebugLivenessRegistryMatchesOnEpoch)
{
    // (After-destroy detection end-to-end is the death test below;
    // probing a literal freed pointer here would itself be UB.)
    auto q = std::make_unique<EventQueue>();
    const std::uint64_t epoch = q->debugEpoch();
    EXPECT_TRUE(detail::queueAlive(q.get(), epoch));
#ifndef NDEBUG
    // Epochs are process-unique, so a different queue — even one the
    // allocator later places at a destroyed queue's address — can
    // never satisfy a stale handle's probe (the ABA case fleet sweeps
    // hit when recycling same-sized per-server Simulations).
    auto q2 = std::make_unique<EventQueue>();
    EXPECT_NE(q2->debugEpoch(), epoch);
    EXPECT_FALSE(detail::queueAlive(q2.get(), epoch));
    EXPECT_FALSE(detail::queueAlive(q.get(), q2->debugEpoch()));
#endif
}

#ifndef NDEBUG
// Handles hold a raw EventQueue*; operating on one after the queue is
// gone is a teardown-order bug. Debug builds must trip the liveness
// assert instead of dereferencing freed memory.
TEST(EventQueueDeathTest, HandleUseAfterQueueDestroyedAsserts)
{
    auto q = std::make_unique<EventQueue>();
    auto h = q->scheduleAt(5, [] {});
    q.reset();
    EXPECT_DEATH(h.cancel(), "EventQueue was destroyed");
    EXPECT_DEATH((void)h.pending(), "EventQueue was destroyed");
}
#endif

TEST(EventQueue, CancelRescheduleKeepsMemoryBounded)
{
    // Regression: the old queue left every cancelled entry as a heap
    // tombstone until it surfaced, so a cancel/reschedule-heavy
    // workload (per-request hysteresis timers) grew without bound. With
    // eager compaction, internal entries stay within a small constant
    // of the live count.
    EventQueue q;
    EventHandle timer;
    std::size_t peakEntries = 0, peakPool = 0;
    for (int i = 0; i < 100000; ++i) {
        timer.cancel();
        timer = q.scheduleAfter(1000 + i % 7, [] {});
        peakEntries = std::max(peakEntries, q.internalEntries());
        peakPool = std::max(peakPool, q.poolCapacity());
    }
    EXPECT_EQ(q.pendingEvents(), 1u);
    EXPECT_LE(peakEntries, 256u);
    EXPECT_LE(peakPool, 256u);
    EXPECT_GT(q.compactions(), 0u);
    q.runAll();
    EXPECT_EQ(q.executedEvents(), 1u);
}

TEST(EventQueue, CrashStyleMassCancellationStorm)
{
    // A server crash cancels *everything at once* — every in-flight
    // completion, timer, and interrupt — then the restart schedules a
    // fresh population into the same wheel buckets. The queue must
    // reap the storm's tombstones, keep its bucket bitmap usable
    // despite stale-set bits, and fire only the survivors, in order.
    EventQueue q;
    std::vector<EventHandle> doomed;
    int fired_old = 0;
    for (int i = 0; i < 4096; ++i)
        doomed.push_back(q.scheduleAfter(
            1 + (i % 64) * (sim::kUs / 2) +
                (i % 3 == 0 ? 4 * EventQueue::kWheelSpan : 0),
            [&] { ++fired_old; }));
    for (EventHandle &h : doomed)
        h.cancel();
    EXPECT_EQ(q.pendingEvents(), 0u);

    // Refill the same time range; the storm's slots get recycled.
    std::vector<Tick> fired_new;
    for (int i = 0; i < 512; ++i)
        q.scheduleAfter(1 + (i % 64) * (sim::kUs / 2),
                        [&] { fired_new.push_back(q.now()); });
    q.runAll();

    EXPECT_EQ(fired_old, 0);
    EXPECT_EQ(fired_new.size(), 512u);
    EXPECT_TRUE(std::is_sorted(fired_new.begin(), fired_new.end()));
    EXPECT_GT(q.compactions(), 0u);
    // The storm left no unbounded residue behind.
    EXPECT_EQ(q.pendingEvents(), 0u);
    EXPECT_LE(q.internalEntries(), 1u);

    // Stale handles survived slot recycling: generation mismatch
    // degrades every operation to a no-op.
    for (EventHandle &h : doomed) {
        EXPECT_FALSE(h.pending());
        h.cancel(); // must not touch the recycled occupants
    }
}

TEST(EventQueue, SeededChurnReplayWithCancelStorms)
{
    // Deterministic replay under the nastiest schedule: random
    // schedule/cancel churn punctuated by epoch-style mass-cancel
    // storms that empty whole wheel buckets (leaving stale bitmap
    // bits) while the queue is mid-advance. Two runs with the same
    // seed must fire the identical (time, id) sequence.
    auto run = [](std::uint64_t seed) {
        Rng rng(seed);
        EventQueue q;
        std::vector<std::pair<Tick, int>> fired;
        std::vector<EventHandle> handles;
        int id = 0;
        for (int round = 0; round < 40; ++round) {
            for (int i = 0; i < 200; ++i) {
                const Tick d =
                    1 + rng.uniformInt(
                            0, static_cast<int>(
                                   2 * EventQueue::kWheelSpan / sim::kUs)) *
                            (sim::kUs / 4);
                const int my = id++;
                handles.push_back(q.scheduleAfter(d, [&fired, &q, my] {
                    fired.emplace_back(q.now(), my);
                }));
            }
            if (round % 4 == 3) {
                // The storm: cancel everything scheduled so far.
                for (EventHandle &h : handles)
                    h.cancel();
                handles.clear();
            }
            q.runUntil(q.now() + 3 * sim::kUs);
        }
        q.runAll();
        return fired;
    };
    const auto a = run(23);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, run(23));
    EXPECT_NE(a, run(24));
}

TEST(EventQueue, DeterministicUnderRandomizedChurn)
{
    // Same seed => identical firing sequence, across a schedule/cancel
    // mix that exercises wheel, heap, compaction, and slot reuse.
    auto run = [](std::uint64_t seed) {
        Rng rng(seed);
        EventQueue q;
        std::vector<std::pair<Tick, int>> fired;
        std::vector<EventHandle> handles;
        int id = 0;
        for (int i = 0; i < 2000; ++i) {
            const Tick d = 1 + rng.uniformInt(
                0, static_cast<int>(2 * EventQueue::kWheelSpan /
                                    sim::kUs)) * (sim::kUs / 4);
            const int my = id++;
            handles.push_back(q.scheduleAfter(
                d, [&fired, &q, my] { fired.emplace_back(q.now(), my); }));
            if (i % 3 == 0 && !handles.empty())
                handles[static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<int>(
                        handles.size() - 1)))].cancel();
            if (i % 5 == 0)
                q.runUntil(q.now() + sim::kUs);
        }
        q.runAll();
        return fired;
    };
    EXPECT_EQ(run(17), run(17));
}

TEST(Simulation, NowAndAfter)
{
    Simulation s;
    Tick seen = -1;
    s.after(42, [&] { seen = s.now(); });
    s.runAll();
    EXPECT_EQ(seen, 42);
}

TEST(Simulation, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        Simulation s(seed);
        std::vector<double> xs;
        for (int i = 0; i < 16; ++i)
            xs.push_back(s.rng().uniform());
        return xs;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(Rng, ExponentialMean)
{
    Rng rng(123);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(25.0);
    EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(Rng, LognormalWithMeanHitsMean)
{
    Rng rng(5);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormalWithMean(20.0, 0.5);
    EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.boundedPareto(1.2, 1.0, 100.0);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 100.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
} // namespace apc::sim
