/**
 * @file
 * Integration tests: the full server simulation (server/server_sim.h)
 * across the paper's three system configurations.
 */

#include <gtest/gtest.h>

#include "analysis/paper_reference.h"
#include "server/server_sim.h"

namespace apc::server {
namespace {

using sim::kMs;
using sim::kUs;

ServerResult
runMemcached(soc::PackagePolicy policy, double qps,
             sim::Tick duration = 300 * kMs, std::uint64_t seed = 42)
{
    ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(qps);
    cfg.duration = duration;
    cfg.seed = seed;
    ServerSim sim(std::move(cfg));
    return sim.run();
}

TEST(ServerSim, ProcessesApproximatelyQpsRequests)
{
    const auto r = runMemcached(soc::PackagePolicy::Cshallow, 20000);
    EXPECT_NEAR(r.achievedQps, 20000.0, 1500.0);
}

TEST(ServerSim, LatencyDominatedByNetwork)
{
    const auto r = runMemcached(soc::PackagePolicy::Cshallow, 20000);
    // >= network 117 µs + CC1 wake + service; well under 1 ms at 20K.
    EXPECT_GE(r.avgLatencyUs, 117.0);
    EXPECT_LE(r.avgLatencyUs, 400.0);
    EXPECT_GE(r.p99LatencyUs, r.p50LatencyUs);
}

TEST(ServerSim, ShallowIdlePowerMatchesTable1)
{
    ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cshallow;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(0); // idle
    cfg.duration = 100 * kMs;
    ServerSim sim(std::move(cfg));
    const auto r = sim.run();
    // All cores in CC1 nearly all the time: ~44 + 5.5 W (the 10 Hz-ish
    // housekeeping tick adds a whisker).
    EXPECT_NEAR(r.pkgPowerW, 44.0, 1.0);
    EXPECT_NEAR(r.dramPowerW, 5.5, 0.2);
    EXPECT_GT(r.allIdleFraction, 0.95);
}

TEST(ServerSim, Pc1aIdleSavingsAround41Percent)
{
    auto run_idle = [](soc::PackagePolicy p) {
        ServerConfig cfg;
        cfg.policy = p;
        cfg.workload = workload::WorkloadConfig::memcachedEtc(0);
        cfg.duration = 100 * kMs;
        ServerSim sim(std::move(cfg));
        return sim.run();
    };
    const auto base = run_idle(soc::PackagePolicy::Cshallow);
    const auto apc = run_idle(soc::PackagePolicy::Cpc1a);
    const double savings =
        1.0 - apc.totalPowerW() / base.totalPowerW();
    // Paper: ~41% idle power reduction (Sec. 2 / Fig. 7a).
    EXPECT_NEAR(savings, analysis::paper::kIdleSavings, 0.04);
    EXPECT_GT(apc.pc1aResidency(), 0.95);
}

TEST(ServerSim, Pc1aSavesPowerUnderLoad)
{
    const auto base = runMemcached(soc::PackagePolicy::Cshallow, 20000);
    const auto apc = runMemcached(soc::PackagePolicy::Cpc1a, 20000);
    EXPECT_LT(apc.totalPowerW(), base.totalPowerW());
    EXPECT_GT(apc.pc1aEntries, 100u);
    EXPECT_GT(apc.pc1aResidency(), 0.05);
}

TEST(ServerSim, Pc1aLatencyImpactBelowTenthPercent)
{
    const auto base = runMemcached(soc::PackagePolicy::Cshallow, 20000);
    const auto apc = runMemcached(soc::PackagePolicy::Cpc1a, 20000);
    const double impact =
        (apc.avgLatencyUs - base.avgLatencyUs) / base.avgLatencyUs;
    // Paper Fig. 7c: < 0.1% (we allow sampling noise around zero).
    EXPECT_LT(impact, 0.003);
}

TEST(ServerSim, ApmuLatenciesWithinPaperBounds)
{
    const auto apc = runMemcached(soc::PackagePolicy::Cpc1a, 20000);
    EXPECT_GT(apc.pc1aEntries, 0u);
    EXPECT_LE(apc.apmuEntryNsMax, 30.0);
    EXPECT_LE(apc.apmuExitNsMax, 170.0);
    EXPECT_LE(apc.apmuEntryNsMax + apc.apmuExitNsMax,
              analysis::paper::kPc1aTotalNs);
}

TEST(ServerSim, CdeepHurtsLatencyAtLowLoad)
{
    const auto shallow = runMemcached(soc::PackagePolicy::Cshallow, 8000,
                                      200 * kMs);
    const auto deep = runMemcached(soc::PackagePolicy::Cdeep, 8000,
                                   200 * kMs);
    // Fig. 5: Cdeep pays CC6 (and PC6) wake latency on most requests.
    EXPECT_GT(deep.avgLatencyUs, shallow.avgLatencyUs * 1.3);
    EXPECT_GT(deep.p99LatencyUs, shallow.p99LatencyUs);
}

TEST(ServerSim, CdeepSavesIdlePower)
{
    ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cdeep;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(0);
    cfg.workload.noise.enabled = false; // let it sink fully
    cfg.duration = 100 * kMs;
    ServerSim sim(std::move(cfg));
    const auto r = sim.run();
    // Table 1 PC6: 12 + 0.5 W.
    EXPECT_NEAR(r.totalPowerW(), 12.5, 1.0);
}

TEST(ServerSim, ResidencyFractionsSumToOne)
{
    const auto r = runMemcached(soc::PackagePolicy::Cpc1a, 20000);
    double total = 0.0;
    for (double f : r.pkgResidency)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-6);
    double cores = 0.0;
    for (double f : r.coreResidency)
        cores += f;
    EXPECT_NEAR(cores, 1.0, 0.02); // entry windows count as neither
}

TEST(ServerSim, OpportunityShrinksWithLoad)
{
    const auto lo = runMemcached(soc::PackagePolicy::Cshallow, 4000,
                                 200 * kMs);
    const auto hi = runMemcached(soc::PackagePolicy::Cshallow, 100000,
                                 200 * kMs);
    EXPECT_GT(lo.allIdleFraction, hi.allIdleFraction);
    EXPECT_GT(lo.socWatchIdleFraction, hi.socWatchIdleFraction);
    // SoCWatch's 10 µs floor only ever underestimates (paper Sec. 6).
    EXPECT_LE(lo.socWatchIdleFraction, lo.allIdleFraction + 1e-9);
    EXPECT_LE(hi.socWatchIdleFraction, hi.allIdleFraction + 1e-9);
}

TEST(ServerSim, DeterministicGivenSeed)
{
    const auto a = runMemcached(soc::PackagePolicy::Cpc1a, 10000,
                                100 * kMs, 7);
    const auto b = runMemcached(soc::PackagePolicy::Cpc1a, 10000,
                                100 * kMs, 7);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_DOUBLE_EQ(a.pkgPowerW, b.pkgPowerW);
    EXPECT_EQ(a.pc1aEntries, b.pc1aEntries);
}

TEST(ServerSim, SeedChangesRun)
{
    const auto a = runMemcached(soc::PackagePolicy::Cpc1a, 10000,
                                100 * kMs, 7);
    const auto b = runMemcached(soc::PackagePolicy::Cpc1a, 10000,
                                100 * kMs, 8);
    EXPECT_NE(a.requests, b.requests);
}

} // namespace
} // namespace apc::server
