/**
 * @file
 * Tests for the dual-socket (NUMA) extension: remote accesses wake the
 * remote package over UPI and complete correctly under every policy.
 */

#include <gtest/gtest.h>

#include "server/server_sim.h"

namespace apc::server {
namespace {

ServerResult
runNuma(soc::PackagePolicy policy, double frac,
        sim::Tick duration = 100 * sim::kMs)
{
    ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(20e3);
    cfg.duration = duration;
    cfg.numa.enabled = true;
    cfg.numa.remoteFraction = frac;
    ServerSim sim(std::move(cfg));
    return sim.run();
}

TEST(Numa, DisabledMeansNoRemoteSoc)
{
    ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cpc1a;
    ServerSim sim(std::move(cfg));
    EXPECT_EQ(sim.remoteSoc(), nullptr);
}

TEST(Numa, RemoteSocketIdlesInPc1aWithoutRemoteTraffic)
{
    const auto r = runNuma(soc::PackagePolicy::Cpc1a, 0.0);
    EXPECT_GT(r.remotePc1aResidency, 0.95);
    // Table 1 PC1A power on the remote socket.
    EXPECT_NEAR(r.remotePkgPowerW + r.remoteDramPowerW, 29.1, 0.5);
}

TEST(Numa, RemoteTrafficPuncturesButKeepsMostResidency)
{
    const auto r = runNuma(soc::PackagePolicy::Cpc1a, 0.2);
    EXPECT_GT(r.remoteWakes, 100u);
    // Each remote touch punctures PC1A for well under a microsecond
    // (L0p exit + CKE exit + CLM ramp), so even thousands of wakes per
    // second barely dent the residency — the headline NUMA result.
    EXPECT_GT(r.remotePc1aResidency, 0.99);
    EXPECT_LT(r.remotePc1aResidency, 1.0);
}

TEST(Numa, ResidencyDecreasesWithRemoteFraction)
{
    const auto lo = runNuma(soc::PackagePolicy::Cpc1a, 0.05);
    const auto hi = runNuma(soc::PackagePolicy::Cpc1a, 0.5);
    EXPECT_GT(lo.remotePc1aResidency, hi.remotePc1aResidency);
    EXPECT_GT(hi.remoteWakes, lo.remoteWakes);
}

TEST(Numa, ShallowRemoteSocketNeverSleeps)
{
    const auto r = runNuma(soc::PackagePolicy::Cshallow, 0.2);
    EXPECT_DOUBLE_EQ(r.remotePc1aResidency, 0.0);
    // Remote socket burns ~PC0idle power the whole time.
    EXPECT_NEAR(r.remotePkgPowerW + r.remoteDramPowerW, 49.5, 1.0);
}

TEST(Numa, Pc1aRemoteSavesVsShallowRemote)
{
    const auto sh = runNuma(soc::PackagePolicy::Cshallow, 0.2);
    const auto apc = runNuma(soc::PackagePolicy::Cpc1a, 0.2);
    EXPECT_LT(apc.remotePkgPowerW + apc.remoteDramPowerW,
              0.75 * (sh.remotePkgPowerW + sh.remoteDramPowerW));
}

TEST(Numa, RemoteLatencyCostIsSmallForPc1a)
{
    const auto sh = runNuma(soc::PackagePolicy::Cshallow, 0.2);
    const auto apc = runNuma(soc::PackagePolicy::Cpc1a, 0.2);
    // The ~300 ns remote wake disappears against ~140 µs end-to-end.
    EXPECT_LT((apc.avgLatencyUs - sh.avgLatencyUs) / sh.avgLatencyUs,
              0.005);
}

TEST(Numa, CdeepRemoteWakesAreExpensive)
{
    const auto apc = runNuma(soc::PackagePolicy::Cpc1a, 0.2);
    const auto deep = runNuma(soc::PackagePolicy::Cdeep, 0.2);
    // Remote PC6/self-refresh exits tax the touched requests visibly.
    EXPECT_GT(deep.p99LatencyUs, apc.p99LatencyUs * 1.1);
}

TEST(Numa, AllRequestsComplete)
{
    const auto r = runNuma(soc::PackagePolicy::Cpc1a, 0.5);
    // Throughput is preserved (no lost joins in the remote path).
    EXPECT_NEAR(r.achievedQps, 20e3, 2e3);
}

} // namespace
} // namespace apc::server
