/**
 * @file
 * Tail-latency attribution tests: causal chain reassembly from synthetic
 * traces, the exact-additivity invariant on a fabric+NIC+cap fleet grid
 * (every critical path sums to its request's measured end-to-end latency
 * in integer ticks), the zero-footprint contract (reports byte-identical
 * with attribution on or off, across thread counts and shard layouts),
 * blame-report export shape, drop flagging, and Perfetto flow events.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "obs/attribution.h"
#include "obs/critpath.h"

namespace apc {
namespace {

using sim::kMs;
using sim::kUs;

sim::Tick
segOf(const obs::ReplicaPath &rp, obs::Segment s)
{
    return rp.seg[static_cast<std::size_t>(s)];
}

// -------------------------------------------------- synthetic assembly

TEST(Attribution, ReassemblesSyntheticFanoutChain)
{
    obs::TraceConfig tc;
    tc.enabled = true;
    obs::Tracer tr(tc, 3); // writer 0 = fleet, 1 = server 0, 2 = server 1

    // Request 7: fanout to servers 0 and 1; server 1 is the slow leg.
    tr.writer(0)->span(100 * kUs, 50 * kUs, obs::Name::Request,
                       obs::Track::Requests, 7);
    // Replica on server 0 (fast): 10 xmit + 5 wake + 20 serve + 10 resp.
    tr.writer(0)->span(100 * kUs, 10 * kUs, obs::Name::SegXmitReq,
                       obs::Track::Segments, 7, 0.0);
    tr.writer(1)->span(110 * kUs, 5 * kUs, obs::Name::SegWake,
                       obs::Track::Segments, 7);
    tr.writer(1)->span(115 * kUs, 20 * kUs, obs::Name::SegServe,
                       obs::Track::Segments, 7);
    tr.writer(0)->span(135 * kUs, 10 * kUs, obs::Name::SegXmitResp,
                       obs::Track::Segments, 7, 0.0);
    // Replica on server 1 (critical): sums to the full 50 us.
    tr.writer(0)->span(100 * kUs, 10 * kUs, obs::Name::SegXmitReq,
                       obs::Track::Segments, 7, 1.0);
    tr.writer(2)->span(110 * kUs, 8 * kUs, obs::Name::SegQueue,
                       obs::Track::Segments, 7);
    tr.writer(2)->span(118 * kUs, 4 * kUs, obs::Name::SegStallGate,
                       obs::Track::Segments, 7);
    tr.writer(2)->span(122 * kUs, 18 * kUs, obs::Name::SegServe,
                       obs::Track::Segments, 7);
    tr.writer(2)->span(140 * kUs, 2 * kUs, obs::Name::SegStallDvfs,
                       obs::Track::Segments, 7);
    tr.writer(0)->span(142 * kUs, 8 * kUs, obs::Name::SegXmitResp,
                       obs::Track::Segments, 7, 1.0);

    const obs::AttributionResult res = obs::buildAttribution(tr);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_EQ(res.incomplete, 0u);
    EXPECT_EQ(res.ringDropped, 0u);
    ASSERT_EQ(res.requests.size(), 1u);

    const obs::RequestPath &rp = res.requests[0];
    EXPECT_EQ(rp.id, 7u);
    EXPECT_EQ(rp.arrival, 100 * kUs);
    EXPECT_EQ(rp.e2e, 50 * kUs);
    EXPECT_TRUE(rp.additive);
    ASSERT_EQ(rp.replicas.size(), 2u);

    const obs::ReplicaPath &cp = rp.criticalPath();
    EXPECT_EQ(cp.srv, 1u); // the slow leg won
    EXPECT_EQ(cp.total(), 50 * kUs);
    EXPECT_EQ(segOf(cp, obs::Segment::XmitReq), 10 * kUs);
    EXPECT_EQ(segOf(cp, obs::Segment::Queue), 8 * kUs);
    EXPECT_EQ(segOf(cp, obs::Segment::StallGate), 4 * kUs);
    EXPECT_EQ(segOf(cp, obs::Segment::Serve), 18 * kUs);
    EXPECT_EQ(segOf(cp, obs::Segment::StallDvfs), 2 * kUs);
    EXPECT_EQ(segOf(cp, obs::Segment::XmitResp), 8 * kUs);
    EXPECT_EQ(cp.dominant(), obs::Segment::Serve);

    // The fast leg assembled independently and sums to its own latency.
    const obs::ReplicaPath &fast = rp.replicas[1 - rp.critical];
    EXPECT_EQ(fast.srv, 0u);
    EXPECT_EQ(fast.total(), 45 * kUs);
}

TEST(Attribution, LostRequestsAreExcluded)
{
    obs::TraceConfig tc;
    tc.enabled = true;
    obs::Tracer tr(tc, 2);
    tr.writer(0)->instant(10 * kUs, obs::Name::Lost, obs::Track::Requests,
                          3);
    tr.writer(0)->span(10 * kUs, 5 * kUs, obs::Name::SegXmitReq,
                       obs::Track::Segments, 3, 0.0);

    const obs::AttributionResult res = obs::buildAttribution(tr);
    EXPECT_EQ(res.requests.size(), 0u);
    EXPECT_EQ(res.lostExcluded, 1u);
    EXPECT_EQ(res.violations, 0u);
}

TEST(Attribution, PlainTracesWithoutSegmentsProduceNothing)
{
    // A trace recorded without attribution has Request spans but no
    // segment spans: nothing to attribute, nothing to flag.
    obs::TraceConfig tc;
    tc.enabled = true;
    obs::Tracer tr(tc, 2);
    tr.writer(0)->span(0, 100 * kUs, obs::Name::Request,
                       obs::Track::Requests, 1);
    tr.writer(0)->span(0, 200 * kUs, obs::Name::Request,
                       obs::Track::Requests, 2);

    const obs::AttributionResult res = obs::buildAttribution(tr);
    EXPECT_EQ(res.requests.size(), 0u);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_EQ(res.incomplete, 0u);
}

TEST(Attribution, RingDropsFlagMismatchedChainsAsIncomplete)
{
    obs::TraceConfig tc;
    tc.enabled = true;
    tc.ringCapacity = 2; // forces wrap on the fleet writer
    obs::Tracer tr(tc, 2);
    // Three records through a 2-slot ring: the oldest (the request's
    // xmit span) is evicted, so the surviving chain cannot sum to e2e.
    tr.writer(0)->span(0, 30 * kUs, obs::Name::SegXmitReq,
                       obs::Track::Segments, 9, 0.0);
    tr.writer(1)->span(30 * kUs, 70 * kUs, obs::Name::SegServe,
                       obs::Track::Segments, 9);
    tr.writer(0)->span(0, 100 * kUs, obs::Name::Request,
                       obs::Track::Requests, 9);
    tr.writer(0)->span(0, 1 * kUs, obs::Name::SegRto,
                       obs::Track::Segments, 9, 0.0);

    const obs::AttributionResult res = obs::buildAttribution(tr);
    EXPECT_GT(res.ringDropped, 0u);
    EXPECT_EQ(res.requests.size(), 0u);
    EXPECT_EQ(res.incomplete, 1u);
    EXPECT_EQ(res.violations, 0u); // drops explain the gap, not a bug
}

// ---------------------------------------------- fleet-level invariants

fleet::FleetConfig
gridFleet(std::size_t servers, unsigned threads, std::size_t shard_size,
          bool attribution)
{
    fleet::FleetConfig fc;
    fc.numServers = servers;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.dispatch = fleet::DispatchKind::LeastOutstanding;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.05, static_cast<int>(fc.numServers) * 10);
    fc.traffic.fanout = {0.05, 4};
    fc.sloUs = 10000.0;
    fc.warmup = 4 * kMs;
    fc.duration = 12 * kMs;
    fc.seed = 99;
    fc.threads = threads;
    fc.shardSize = shard_size;
    // The full stack: lossy fabric + NIC coalescing + oversubscribed
    // budget capping (both actuators), so every segment class can
    // appear on a critical path.
    fc.fabric.enabled = true;
    fc.nic.enabled = true;
    fc.nic.rxUsecs = 20 * kUs;
    fc.budget.enabled = true;
    fc.budget.oversubscription = 1.5;
    fc.cap.actuator = cap::CapActuator::Hybrid;
    fc.attribution.enabled = attribution;
    fc.trace.ringCapacity = 1u << 18; // fleet spine carries all transits
    return fc;
}

TEST(AttributionFleet, ThousandServerGridIsExactlyAdditive)
{
    auto fc = gridFleet(1000, 8, 0, true);
    // The fleet spine records every request's transits: at this scale
    // that is several records per request, so give writer 0 room — the
    // additivity check below requires zero ring drops.
    fc.trace.ringCapacity = 1u << 20;
    fleet::FleetSim fleet(fc);
    const fleet::FleetReport rep = fleet.run();
    ASSERT_GT(rep.dispatched, 1000u);

    // No ring wrap: every chain must be present and exact.
    EXPECT_EQ(rep.traceDrops, 0u);
    ASSERT_TRUE(rep.attribution.enabled);
    EXPECT_EQ(rep.attribution.violations, 0u);
    EXPECT_EQ(rep.attribution.incomplete, 0u);
    EXPECT_GT(rep.attribution.requests, 1000u);
    EXPECT_GT(rep.attribution.fanoutRequests, 0u);

    // Exact integer additivity on every carried sample: the critical
    // path's segments sum to the measured end-to-end latency.
    ASSERT_GT(rep.attribution.samples.size(), 100u);
    for (const obs::RequestSample &s : rep.attribution.samples) {
        sim::Tick sum = 0;
        for (std::size_t k = 0; k < obs::kNumSegments; ++k)
            sum += s.segTicks[k];
        ASSERT_EQ(sum, s.e2eTicks) << "request " << s.id;
    }

    // Bands partition the attributed population, and each band's
    // per-segment means sum (in FP) to its end-to-end mean.
    std::uint64_t banded = 0;
    for (std::size_t b = 0; b < obs::LatencyAttribution::kNumBands; ++b) {
        const obs::BlameBand &band = rep.attribution.bands[b];
        banded += band.count;
        if (band.count == 0)
            continue;
        double sum = 0.0;
        for (double v : band.segMeanUs)
            sum += v;
        EXPECT_NEAR(sum, band.e2eMeanUs, 1e-6 * band.e2eMeanUs + 1e-9)
            << "band " << obs::LatencyAttribution::bandLabel(b);
    }
    EXPECT_EQ(banded, rep.attribution.requests);

    // Critical-segment counts cover every attributed request.
    std::uint64_t critical = 0;
    for (std::uint64_t c : rep.attribution.criticalBySegment)
        critical += c;
    EXPECT_EQ(critical, rep.attribution.requests);

    // The grid ran hot enough that serve time isn't the whole story.
    EXPECT_GT(rep.attribution.tailMeanUs(obs::Segment::Serve), 0.0);
}

TEST(AttributionFleet, ZeroFootprintAcrossThreadsAndShardLayouts)
{
    // Reports must be byte-identical with attribution on or off, at any
    // thread count and shard size — and the attribution itself must be
    // identical across layouts.
    const fleet::FleetReport plain =
        fleet::FleetSim(gridFleet(192, 1, 0, false)).run();
    const std::string reference = plain.csvRow();

    struct Point
    {
        unsigned threads;
        std::size_t shardSize;
    };
    std::string ref_blame;
    for (const Point &p : std::vector<Point>{{1, 0}, {2, 7}, {8, 64}}) {
        fleet::FleetSim fleet(
            gridFleet(192, p.threads, p.shardSize, true));
        const fleet::FleetReport rep = fleet.run();
        EXPECT_EQ(rep.csvRow(), reference)
            << "threads=" << p.threads << " shardSize=" << p.shardSize;
        EXPECT_EQ(rep.attribution.violations, 0u);

        char *buf = nullptr;
        std::size_t len = 0;
        std::FILE *f = open_memstream(&buf, &len);
        ASSERT_TRUE(rep.attribution.writeJson(f));
        std::fclose(f);
        std::string blame(buf, len);
        free(buf);
        if (ref_blame.empty())
            ref_blame = blame;
        else
            EXPECT_EQ(blame, ref_blame)
                << "blame report differs at threads=" << p.threads;
    }
}

TEST(AttributionFleet, BlameReportExportShape)
{
    fleet::FleetSim fleet(gridFleet(32, 2, 0, true));
    const fleet::FleetReport rep = fleet.run();
    ASSERT_TRUE(rep.attribution.enabled);

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    ASSERT_TRUE(rep.attribution.writeCsv(f));
    std::fclose(f);
    std::string csv(buf, len);
    free(buf);
    EXPECT_NE(csv.find("band,count,e2e_mean_us"), std::string::npos);
    EXPECT_NE(csv.find("stall_gate_us"), std::string::npos);
    for (const char *band : {"p50", "p95", "p99", "p999", "p100"})
        EXPECT_NE(csv.find(std::string("\n") + band + ","),
                  std::string::npos)
            << band;

    f = open_memstream(&buf, &len);
    ASSERT_TRUE(rep.attribution.writeJson(f));
    std::fclose(f);
    std::string json(buf, len);
    free(buf);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"segments\": [\"xmit_req\", \"rto\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bands\": ["), std::string::npos);
    EXPECT_NE(json.find("\"blame_us\""), std::string::npos);
    EXPECT_NE(json.find("\"critical_segment_counts\""), std::string::npos);
    EXPECT_NE(json.find("\"samples\": ["), std::string::npos);
    EXPECT_NE(json.find("\"seg_ticks\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
    EXPECT_FALSE(rep.attribution.writeJson("/nonexistent/dir/blame.json"));
}

TEST(AttributionFleet, TraceExportCarriesFlowEvents)
{
    fleet::FleetSim fleet(gridFleet(32, 2, 0, true));
    (void)fleet.run();
    const std::string path = "/tmp/apc_test_attr_trace.json";
    ASSERT_TRUE(fleet.writeTrace(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string out;
    char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, n);
    std::fclose(f);
    std::remove(path.c_str());

    // Segment spans and the s/t/f flow triplets made it into the export.
    EXPECT_NE(out.find("\"name\":\"seg_serve\""), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"segments\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"req_flow\""), std::string::npos);
}

TEST(AttributionFleet, TinyRingsAreFlaggedNotAsserted)
{
    auto fc = gridFleet(32, 2, 0, true);
    fc.trace.ringCapacity = 512; // far too small: rings must wrap
    fleet::FleetSim fleet(fc);
    const fleet::FleetReport rep = fleet.run();
    EXPECT_GT(rep.traceDrops, 0u);
    EXPECT_GT(rep.traceRecords, rep.traceDrops);
    // Broken chains are flagged incomplete — never reported as additive
    // garbage, and never counted as invariant violations.
    EXPECT_EQ(rep.attribution.violations, 0u);
    EXPECT_EQ(rep.attribution.ringDropped, rep.traceDrops);
}

} // namespace
} // namespace apc
