/**
 * @file
 * Tests for the tracing module (analysis/trace.h) and trace-replayed
 * arrivals (workload/trace_arrivals.h).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "analysis/trace.h"
#include "workload/trace_arrivals.h"

namespace apc {
namespace {

using sim::kMs;
using sim::kNs;
using sim::kUs;

TEST(TraceRecorder, RecordsPc1aChoreography)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    analysis::TraceRecorder trace(soc);

    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * kUs);
    // Entry: InCC1 up, InL0s up, Allow_CKE_OFF up, InPC1A up.
    EXPECT_EQ(trace.count("wire", "InCC1=1"), 1u);
    EXPECT_EQ(trace.count("wire", "InL0s=1"), 1u);
    EXPECT_EQ(trace.count("wire", "InPC1A=1"), 1u);
    EXPECT_EQ(trace.count("wire", "mc0.Allow_CKE_OFF=1"), 1u);
    EXPECT_GE(trace.count("pkg", "PC1A"), 1u);

    // Wake via NIC: the down-edges and the PwrOk handshake appear.
    soc.nic().transfer(100 * kNs, nullptr);
    s.runUntil(12 * kUs);
    EXPECT_EQ(trace.count("wire", "InPC1A=0"), 1u);
    EXPECT_GE(trace.count("wire", "PwrOk=1"), 1u);

    // Events are time-ordered.
    for (std::size_t i = 1; i < trace.events().size(); ++i)
        EXPECT_LE(trace.events()[i - 1].when, trace.events()[i].when);
}

TEST(TraceRecorder, CsvRoundTrip)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    analysis::TraceRecorder trace(soc);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * kUs);

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    trace.writeCsv(f);
    std::fclose(f);
    std::string out(buf, len);
    free(buf);
    EXPECT_NE(out.find("time_us,kind,detail"), std::string::npos);
    EXPECT_NE(out.find("InPC1A=1"), std::string::npos);
    // One line per event plus the header.
    const auto lines = std::count(out.begin(), out.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(lines),
              trace.events().size() + 1);
}

TEST(TraceRecorder, BoundedCapacityDropsOldestAndCounts)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    analysis::TraceRecorder trace(soc, false, 8); // tiny ring
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    // Repeated sleep/wake cycles overflow an 8-record ring.
    for (int i = 0; i < 6; ++i) {
        s.runUntil(s.now() + 10 * kUs);
        soc.nic().transfer(100 * kNs, nullptr);
    }
    s.runUntil(s.now() + 10 * kUs);
    EXPECT_EQ(trace.size(), 8u);
    EXPECT_GT(trace.droppedEvents(), 0u);
    // The surviving window is still time-ordered.
    const auto evs = trace.events();
    for (std::size_t i = 1; i < evs.size(); ++i)
        EXPECT_LE(evs[i - 1].when, evs[i].when);
}

TEST(TraceRecorder, WriteCsvReportsIoFailure)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    analysis::TraceRecorder trace(soc);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * kUs);
    EXPECT_FALSE(trace.writeCsv("/nonexistent/dir/trace.csv"));
    const std::string path = "/tmp/apc_test_trace_csv.csv";
    EXPECT_TRUE(trace.writeCsv(path));
    std::remove(path.c_str());
}

TEST(TraceRecorder, PerCoreTracingOptIn)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    analysis::TraceRecorder quiet(soc, false);
    analysis::TraceRecorder verbose(soc, true);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * kUs);
    EXPECT_EQ(quiet.countKind("core"), 0u);
    EXPECT_EQ(verbose.countKind("core"), soc.numCores());
}

TEST(TraceArrivals, ReplaysGapsExactly)
{
    sim::Rng rng(1);
    workload::TraceArrivals t({10 * kUs, 25 * kUs, 100 * kUs}, false);
    EXPECT_EQ(t.nextGap(rng), 10 * kUs);
    EXPECT_EQ(t.nextGap(rng), 15 * kUs);
    EXPECT_EQ(t.nextGap(rng), 75 * kUs);
    EXPECT_EQ(t.nextGap(rng), sim::kTickNever);
    EXPECT_TRUE(t.exhausted());
}

TEST(TraceArrivals, LoopsWithPeriod)
{
    sim::Rng rng(1);
    workload::TraceArrivals t({10 * kUs, 30 * kUs}, true);
    EXPECT_EQ(t.nextGap(rng), 10 * kUs);
    EXPECT_EQ(t.nextGap(rng), 20 * kUs);
    // Wraps: replays from zero again.
    EXPECT_EQ(t.nextGap(rng), 10 * kUs);
    EXPECT_EQ(t.nextGap(rng), 20 * kUs);
    EXPECT_FALSE(t.exhausted());
}

TEST(TraceArrivals, RateFromTrace)
{
    workload::TraceArrivals t(
        {100 * kUs, 200 * kUs, 300 * kUs, 400 * kUs, 1 * kMs}, true);
    EXPECT_NEAR(t.ratePerSec(), 5 / 1e-3, 1e-6);
}

TEST(TraceArrivals, SynthesizeMatchesSourceRate)
{
    sim::Rng rng(7);
    workload::PoissonArrivals p(50000.0);
    const auto trace =
        workload::TraceArrivals::synthesize(p, rng, 1 * sim::kSec);
    EXPECT_NEAR(static_cast<double>(trace.size()), 50000.0, 1500.0);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i], trace[i - 1]);
}

TEST(TraceArrivals, FileRoundTrip)
{
    const std::string path = "/tmp/apc_test_trace.txt";
    const std::vector<sim::Tick> arrivals = {1 * kUs, 500 * kUs, 2 * kMs};
    ASSERT_TRUE(workload::TraceArrivals::toFile(path, arrivals));
    auto t = workload::TraceArrivals::fromFile(path, false);
    ASSERT_EQ(t.size(), 3u);
    sim::Rng rng(1);
    EXPECT_EQ(t.nextGap(rng), 1 * kUs);
    EXPECT_EQ(t.nextGap(rng), 499 * kUs);
    EXPECT_EQ(t.nextGap(rng), 1500 * kUs);
    std::remove(path.c_str());
}

TEST(TraceArrivals, MissingFileYieldsEmptyTrace)
{
    auto t = workload::TraceArrivals::fromFile(
        "/nonexistent/apc_trace.txt");
    EXPECT_EQ(t.size(), 0u);
    sim::Rng rng(1);
    EXPECT_EQ(t.nextGap(rng), sim::kTickNever);
}

} // namespace
} // namespace apc
