// Corpus fixture: ambient randomness must fire [ambient-rng]. Never
// compiled.
#include <cstdlib>
#include <random>

int jitterTicks()
{
    return rand() % 7; // process-global RNG: unreplayable
}

unsigned seedFromHardware()
{
    std::random_device rd; // hardware entropy: unreplayable
    return rd();
}

double portableNoise()
{
    std::default_random_engine eng(42); // engine varies per stdlib
    return std::uniform_real_distribution<double>(0.0, 1.0)(eng);
}
