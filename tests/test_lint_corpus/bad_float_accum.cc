// Corpus fixture: loop accumulation into floating-point state must
// fire [float-accum]. Never compiled.
#include <cstddef>
#include <vector>

double mergeShardPower(const std::vector<std::vector<double>> &shards)
{
    double total = 0.0;
    for (const auto &shard : shards)
        for (std::size_t i = 0; i < shard.size(); ++i)
            total += shard[i]; // shape depends on shard layout
    return total;
}

float runningMean(const std::vector<float> &xs)
{
    float acc = 0.0f;
    for (float x : xs)
        acc += x;
    return xs.empty() ? 0.0f : acc / static_cast<float>(xs.size());
}

// Integer accumulation must NOT fire:
long countAll(const std::vector<int> &xs)
{
    long n = 0;
    for (int x : xs)
        n += x;
    return n;
}
