// Corpus fixture: stateful randomness in the fault subsystem must
// fire [fault-rng]. The failure schedule has to be a pure function of
// (seed, entity, kind, counter) — a stateful stream makes it depend
// on draw order, which varies with thread count and shard layout.
// Never compiled.
#include <random>

#include "sim/rng.h" // stateful stream header in fault scope

namespace apc::fault {

long crashGapTicks()
{
    sim::Rng rng(42); // stateful stream: draw order leaks into schedule
    return static_cast<long>(rng.exponential(1e9));
}

double flapJitter()
{
    std::mt19937_64 eng(7); // stateful engine in fault scope
    return std::uniform_real_distribution<double>(0.0, 1.0)(eng);
}

} // namespace apc::fault
