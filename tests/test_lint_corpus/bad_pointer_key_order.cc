// Corpus fixture: pointer-keyed ordered containers must fire
// [pointer-key-order]. Never compiled.
#include <functional>
#include <map>
#include <set>

struct Server;

std::map<Server *, double> g_powerByServer;  // ASLR decides the order
std::set<const Server *> g_active;           // same problem

void sortByAddress(std::set<Server *, std::less<Server *>> &s)
{
    (void)s;
}

// Keying by a stable id must NOT fire:
std::map<int, double> g_powerById;
