// Corpus fixture: mutable static / thread_local state must fire
// [mutable-global]. Never compiled.
#include <atomic>
#include <cstdint>

static std::uint64_t g_totalRequests = 0;    // couples runs
thread_local int tls_scratch = 0;            // couples threads

std::uint64_t nextId()
{
    static std::atomic<std::uint64_t> counter{0}; // hidden channel
    return ++counter;
}

// Constants must NOT fire:
static const int kTableSize = 64;
static constexpr double kEps = 1e-9;

void touch()
{
    g_totalRequests += static_cast<std::uint64_t>(tls_scratch);
}
