// Corpus fixture: every violation below carries a lint:allow with a
// reason, so this file must lint CLEAN. Never compiled.
#include <cstdint>
#include <unordered_map>

std::uint64_t countMeasured(
    const std::unordered_map<std::uint64_t, bool> &flights)
{
    std::uint64_t n = 0;
    // lint:allow(unordered-iteration) commutative integer count; the
    // result is independent of visit order
    for (const auto &kv : flights)
        if (kv.second)
            ++n;
    return n;
}

double sumFixedOrder(const double *xs, int n)
{
    double acc = 0.0;
    for (int i = 0; i < n; ++i)
        acc += xs[i]; // lint:allow(float-accum) fixed index order
    return acc;
}

std::uint64_t debugEpoch()
{
    // lint:allow(mutable-global) debug-only identity mint; never
    // reaches a report sink
    static std::uint64_t counter = 0;
    return ++counter;
}
