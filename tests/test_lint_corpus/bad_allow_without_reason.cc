// Corpus fixture: a lint:allow with NO reason must itself be flagged
// — the waiver trail stays auditable. Never compiled.
#include <unordered_map>

int walk(const std::unordered_map<int, int> &m)
{
    int n = 0;
    for (const auto &kv : m) // lint:allow(unordered-iteration)
        n += kv.second;
    return n;
}
