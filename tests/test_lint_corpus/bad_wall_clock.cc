// Corpus fixture: host-clock reads must fire [wall-clock]. Never
// compiled.
#include <chrono>
#include <ctime>

double simulatedLatency()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::system_clock::now();
    (void)t1;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

long stampReport()
{
    return static_cast<long>(time(nullptr)) + clock();
}

// A comment mentioning system_clock must NOT fire, nor must the
// string literal below.
const char *kDoc = "uses std::chrono::system_clock internally";
