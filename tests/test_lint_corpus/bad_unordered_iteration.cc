// Corpus fixture: iteration over unordered containers must fire
// [unordered-iteration]. Never compiled.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using FlightMap = std::unordered_map<std::uint64_t, int>;

struct Report
{
    std::unordered_map<std::string, double> byName;
    FlightMap inFlight;

    std::vector<double> dump() const
    {
        std::vector<double> out;
        for (const auto &kv : byName) // hash order leaks into the sink
            out.push_back(kv.second);
        return out;
    }

    int walkAlias() const
    {
        int n = 0;
        for (const auto &kv : inFlight) // alias-typed container
            n += kv.second;
        return n;
    }

    double iterators() const
    {
        std::unordered_set<int> seen{1, 2, 3};
        double acc2 = 0.0;
        for (auto it = seen.begin(); it != seen.end(); ++it)
            acc2 += static_cast<double>(*it);
        return acc2;
    }
};
