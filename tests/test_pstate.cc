/**
 * @file
 * Unit tests for the P-state/DVFS model (cpu/pstate.h) and its server
 * integration (the Sec. 8 race-to-halt comparison substrate).
 */

#include <gtest/gtest.h>

#include "cpu/pstate.h"
#include "server/server_sim.h"

namespace apc::cpu {
namespace {

TEST(PStateTable, SkxPointsAreOrderedAndNominal)
{
    const auto t = PStateTable::skxDefaults();
    ASSERT_GE(t.size(), 3u);
    for (std::size_t i = 1; i < t.size(); ++i) {
        EXPECT_GT(t.point(i).freqGhz, t.point(i - 1).freqGhz);
        EXPECT_GE(t.point(i).volts, t.point(i - 1).volts);
    }
    EXPECT_DOUBLE_EQ(t.nominal().freqGhz, 2.2); // Xeon Silver 4114
    EXPECT_DOUBLE_EQ(t.point(0).freqGhz, 0.8);  // min
    EXPECT_DOUBLE_EQ(t.point(t.size() - 1).freqGhz, 3.0); // turbo
}

TEST(PStateTable, PowerScalesAsV2F)
{
    const auto t = PStateTable::skxDefaults();
    const double nominal = 5.30;
    EXPECT_DOUBLE_EQ(t.activePowerWatts(nominal, t.nominalIndex()),
                     nominal);
    // Min point: (0.70/0.80)^2 * (0.8/2.2) of nominal.
    const double expect =
        nominal * (0.70 / 0.80) * (0.70 / 0.80) * (0.8 / 2.2);
    EXPECT_NEAR(t.activePowerWatts(nominal, 0), expect, 1e-9);
    // Turbo draws more than nominal.
    EXPECT_GT(t.activePowerWatts(nominal, t.size() - 1), nominal);
}

TEST(PStateTable, SlowdownIsInverseFrequency)
{
    const auto t = PStateTable::skxDefaults();
    EXPECT_DOUBLE_EQ(t.slowdown(t.nominalIndex()), 1.0);
    EXPECT_NEAR(t.slowdown(0), 2.2 / 0.8, 1e-12);
    EXPECT_LT(t.slowdown(t.size() - 1), 1.0); // turbo speeds up
}

TEST(PStateTable, IndexForFrequencyClamps)
{
    const auto t = PStateTable::skxDefaults();
    EXPECT_EQ(t.indexForFrequency(0.1), 0u);
    EXPECT_EQ(t.indexForFrequency(2.2), t.nominalIndex());
    EXPECT_EQ(t.indexForFrequency(99.0), t.size() - 1);
}

TEST(DvfsPolicy, LowUtilizationDropsFrequency)
{
    const auto t = PStateTable::skxDefaults();
    DvfsConfig cfg;
    cfg.enabled = true;
    const auto next =
        dvfsNextPState(t, cfg, t.nominalIndex(), /*util=*/0.05);
    EXPECT_LT(next, t.nominalIndex());
    EXPECT_EQ(next, 0u); // 2.2 * 0.05/0.8 = 0.14 GHz -> min point
}

TEST(DvfsPolicy, SaturationJumpsToMax)
{
    const auto t = PStateTable::skxDefaults();
    DvfsConfig cfg;
    const auto next = dvfsNextPState(t, cfg, 0, /*util=*/0.99);
    EXPECT_EQ(next, t.size() - 1);
}

TEST(DvfsPolicy, TargetUtilizationHolds)
{
    const auto t = PStateTable::skxDefaults();
    DvfsConfig cfg;
    // util exactly at target: stay at (or round up to) current freq.
    const auto next = dvfsNextPState(t, cfg, t.nominalIndex(), 0.80);
    EXPECT_EQ(next, t.nominalIndex());
}

TEST(DvfsIntegration, SavesPowerButStretchesService)
{
    auto run = [](bool dvfs) {
        server::ServerConfig cfg;
        cfg.policy = soc::PackagePolicy::Cshallow;
        cfg.workload = workload::WorkloadConfig::memcachedEtc(25e3);
        cfg.duration = 150 * sim::kMs;
        cfg.dvfs.enabled = dvfs;
        server::ServerSim sim(std::move(cfg));
        return sim.run();
    };
    const auto base = run(false);
    const auto dvfs = run(true);
    EXPECT_LT(dvfs.pkgPowerW, base.pkgPowerW);
    // Slower cores -> longer service -> higher latency.
    EXPECT_GT(dvfs.avgLatencyUs, base.avgLatencyUs);
}

TEST(DvfsIntegration, RaceToHaltBeatsDvfsOnTail)
{
    // The paper's Sec. 8 claim, as a regression test.
    auto run = [](soc::PackagePolicy p, bool dvfs) {
        server::ServerConfig cfg;
        cfg.policy = p;
        cfg.workload = workload::WorkloadConfig::memcachedEtc(25e3);
        cfg.duration = 150 * sim::kMs;
        cfg.dvfs.enabled = dvfs;
        server::ServerSim sim(std::move(cfg));
        return sim.run();
    };
    const auto dvfs = run(soc::PackagePolicy::Cshallow, true);
    const auto apc = run(soc::PackagePolicy::Cpc1a, false);
    EXPECT_LT(apc.p99LatencyUs, dvfs.p99LatencyUs);
    // And APC still saves meaningful power at this operating point.
    const auto base = run(soc::PackagePolicy::Cshallow, false);
    EXPECT_LT(apc.totalPowerW(), base.totalPowerW());
}

TEST(CoreActivePower, SetterAffectsLoadWhenActive)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    LadderGovernor::Config g;
    Core core(s, m, 0, CoreConfig::skxDefaults(),
              std::make_unique<LadderGovernor>(g));
    EXPECT_NEAR(m.planePower(power::Plane::Package), 5.30, 1e-9);
    core.setActivePower(2.0);
    EXPECT_NEAR(m.planePower(power::Plane::Package), 2.0, 1e-9);
    // Idle power is unaffected by the P-state.
    core.release();
    s.runUntil(10 * sim::kUs);
    EXPECT_NEAR(m.planePower(power::Plane::Package), 1.21, 1e-9);
    // Wake burns the configured active power again.
    core.requestWake(nullptr);
    s.runAll();
    EXPECT_NEAR(m.planePower(power::Plane::Package), 2.0, 1e-9);
}

} // namespace
} // namespace apc::cpu
