/**
 * @file
 * Unit tests for the power subsystem: energy metering (including ramp
 * integration), RAPL facade, FIVR, PLL and clock tree.
 */

#include <gtest/gtest.h>

#include "power/clock_tree.h"
#include "power/energy_meter.h"
#include "power/fivr.h"
#include "power/pll.h"
#include "power/rapl.h"

namespace apc::power {
namespace {

using sim::kNs;
using sim::kSec;
using sim::kUs;

TEST(EnergyMeter, ConstantPowerIntegration)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad load(m, "x", Plane::Package, 10.0);
    s.runUntil(kSec);
    EXPECT_NEAR(load.energyJoules(), 10.0, 1e-9);
    EXPECT_NEAR(m.planeEnergy(Plane::Package), 10.0, 1e-9);
}

TEST(EnergyMeter, PowerChangeSplitsIntegration)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad load(m, "x", Plane::Package, 10.0);
    s.runUntil(kSec / 2);
    load.setPower(20.0);
    s.runUntil(kSec);
    EXPECT_NEAR(load.energyJoules(), 5.0 + 10.0, 1e-9);
}

TEST(EnergyMeter, RampIntegratesTrapezoid)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad load(m, "x", Plane::Package, 10.0);
    // Ramp 10 W -> 30 W over 1 s: average 20 W -> 20 J.
    load.setRamp(30.0, kSec);
    s.runUntil(kSec);
    EXPECT_NEAR(load.energyJoules(), 20.0, 1e-9);
    // After the ramp the power stays at the end level.
    s.runUntil(2 * kSec);
    EXPECT_NEAR(load.energyJoules(), 50.0, 1e-9);
    EXPECT_NEAR(load.currentPower(), 30.0, 1e-12);
}

TEST(EnergyMeter, MidRampPowerIsLinear)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad load(m, "x", Plane::Package, 0.0);
    load.setRamp(100.0, kSec);
    s.runUntil(kSec / 4);
    EXPECT_NEAR(load.currentPower(), 25.0, 1e-9);
    s.runUntil(kSec / 2);
    EXPECT_NEAR(load.currentPower(), 50.0, 1e-9);
}

TEST(EnergyMeter, RampSupersededMidway)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad load(m, "x", Plane::Package, 0.0);
    load.setRamp(100.0, kSec);
    s.runUntil(kSec / 2); // at 50 W, 12.5 J so far
    load.setPower(0.0);
    s.runUntil(2 * kSec);
    EXPECT_NEAR(load.energyJoules(), 12.5, 1e-9);
}

TEST(EnergyMeter, PlanesAreSeparate)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad a(m, "soc", Plane::Package, 40.0);
    PowerLoad b(m, "dram", Plane::Dram, 5.0);
    s.runUntil(kSec);
    EXPECT_NEAR(m.planeEnergy(Plane::Package), 40.0, 1e-9);
    EXPECT_NEAR(m.planeEnergy(Plane::Dram), 5.0, 1e-9);
    EXPECT_NEAR(m.totalPower(), 45.0, 1e-12);
    EXPECT_NEAR(m.totalEnergy(), 45.0, 1e-9);
}

TEST(EnergyMeter, LoadUnregistersOnDestruction)
{
    sim::Simulation s;
    EnergyMeter m(s);
    {
        PowerLoad tmp(m, "t", Plane::Package, 100.0);
        EXPECT_EQ(m.loads().size(), 1u);
    }
    EXPECT_TRUE(m.loads().empty());
    EXPECT_DOUBLE_EQ(m.totalPower(), 0.0);
}

TEST(Rapl, CountersQuantizeAndAverage)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PowerLoad load(m, "x", Plane::Package, 44.0);
    Rapl rapl(m);
    const auto before = rapl.readCounter(Plane::Package);
    s.runUntil(kSec);
    const auto after = rapl.readCounter(Plane::Package);
    EXPECT_NEAR(rapl.averagePower(before, after), 44.0, 0.01);
}

TEST(Rapl, ZeroWindowIsZeroPower)
{
    sim::Simulation s;
    EnergyMeter m(s);
    Rapl rapl(m);
    const auto a = rapl.readCounter(Plane::Dram);
    EXPECT_DOUBLE_EQ(rapl.averagePower(a, a), 0.0);
}

TEST(Fivr, StartsSettledAtNominal)
{
    sim::Simulation s;
    Fivr f(s, "f", FivrConfig{});
    EXPECT_DOUBLE_EQ(f.voltage(), 0.8);
    EXPECT_TRUE(f.pwrOk().read());
    EXPECT_FALSE(f.ramping());
}

TEST(Fivr, RetentionRampTakes150ns)
{
    // 0.8 V -> 0.5 V at 2 mV/ns = 150 ns (paper Sec. 5.5).
    sim::Simulation s;
    Fivr f(s, "f", FivrConfig{});
    f.toRetention();
    EXPECT_FALSE(f.pwrOk().read());
    EXPECT_EQ(f.settleTimeRemaining(), 150 * kNs);
    s.runAll();
    EXPECT_DOUBLE_EQ(f.voltage(), 0.5);
    EXPECT_TRUE(f.pwrOk().read());
}

TEST(Fivr, VoltageIsLinearDuringRamp)
{
    sim::Simulation s;
    Fivr f(s, "f", FivrConfig{});
    f.toRetention();
    s.runUntil(75 * kNs);
    EXPECT_NEAR(f.voltage(), 0.65, 1e-9);
}

TEST(Fivr, PreemptiveCommandReversesMidRamp)
{
    // A wake mid-entry reverses the ramp from the partial voltage —
    // this is what bounds PC1A's worst-case exit (paper footnote 11).
    sim::Simulation s;
    Fivr f(s, "f", FivrConfig{});
    f.toRetention();
    s.runUntil(50 * kNs); // at 0.7 V
    f.toNominal();
    // Only 100 mV to climb: 50 ns.
    EXPECT_EQ(f.settleTimeRemaining(), 50 * kNs);
    s.runAll();
    EXPECT_DOUBLE_EQ(f.voltage(), 0.8);
    EXPECT_TRUE(f.pwrOk().read());
}

TEST(Fivr, PwrOkEdgeFiresOnceAtSettle)
{
    sim::Simulation s;
    Fivr f(s, "f", FivrConfig{});
    int rises = 0;
    f.pwrOk().subscribe([&](bool v) {
        if (v)
            ++rises;
    });
    f.toRetention();
    s.runAll();
    EXPECT_EQ(rises, 1);
}

TEST(Fivr, RedundantCommandIsNoop)
{
    sim::Simulation s;
    Fivr f(s, "f", FivrConfig{});
    f.toNominal(); // already there
    EXPECT_TRUE(f.pwrOk().read());
    EXPECT_FALSE(f.ramping());
}

TEST(Pll, StartsLocked)
{
    sim::Simulation s;
    EnergyMeter m(s);
    Pll p(s, m, "pll", PllConfig{});
    EXPECT_EQ(p.state(), Pll::State::Locked);
    EXPECT_TRUE(p.locked().read());
    EXPECT_NEAR(p.currentPowerWatts(), 0.007, 1e-12);
}

TEST(Pll, PowerOffDropsLockAndPower)
{
    sim::Simulation s;
    EnergyMeter m(s);
    Pll p(s, m, "pll", PllConfig{});
    p.powerOff();
    EXPECT_EQ(p.state(), Pll::State::Off);
    EXPECT_FALSE(p.locked().read());
    EXPECT_DOUBLE_EQ(p.currentPowerWatts(), 0.0);
}

TEST(Pll, RelockTakesConfiguredLatency)
{
    sim::Simulation s;
    EnergyMeter m(s);
    PllConfig cfg;
    cfg.relockLatency = 5 * kUs;
    Pll p(s, m, "pll", cfg);
    p.powerOff();
    sim::Tick locked_at = -1;
    p.locked().subscribe([&](bool v) {
        if (v)
            locked_at = s.now();
    });
    s.runUntil(100 * kNs);
    p.powerOn();
    EXPECT_EQ(p.state(), Pll::State::Locking);
    s.runAll();
    EXPECT_EQ(p.state(), Pll::State::Locked);
    EXPECT_EQ(locked_at, 100 * kNs + 5 * kUs);
}

TEST(Pll, PowerOnWhileLockedIsNoop)
{
    sim::Simulation s;
    EnergyMeter m(s);
    Pll p(s, m, "pll", PllConfig{});
    p.powerOn();
    EXPECT_EQ(p.state(), Pll::State::Locked);
    EXPECT_EQ(s.events().pendingEvents(), 0u);
}

TEST(Pll, PowerOffDuringLockCancelsIt)
{
    sim::Simulation s;
    EnergyMeter m(s);
    Pll p(s, m, "pll", PllConfig{});
    p.powerOff();
    p.powerOn();
    p.powerOff();
    s.runAll();
    EXPECT_EQ(p.state(), Pll::State::Off);
    EXPECT_FALSE(p.locked().read());
}

TEST(ClockTree, GateAfterLatency)
{
    sim::Simulation s;
    ClockTreeConfig cfg;
    cfg.gateLatency = 4 * kNs; // 2 cycles @ 500 MHz
    ClockTree t(s, "clk", cfg);
    EXPECT_TRUE(t.running());
    t.gate();
    EXPECT_TRUE(t.running()); // not yet
    s.runUntil(4 * kNs);
    EXPECT_FALSE(t.running());
    t.ungate();
    s.runAll();
    EXPECT_TRUE(t.running());
}

TEST(ClockTree, RapidGateUngateLastWins)
{
    sim::Simulation s;
    ClockTree t(s, "clk", ClockTreeConfig{});
    t.gate();
    t.ungate(); // supersedes before the gate applies
    s.runAll();
    EXPECT_TRUE(t.running());
}

} // namespace
} // namespace apc::power
