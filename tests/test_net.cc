/**
 * @file
 * Unit tests for the network fabric subsystem (net/): drop-tail link
 * conservation, NIC interrupt moderation, coalescing-timer determinism
 * under seed replay, and NIC-wake -> package-exit latency accounting.
 */

#include <gtest/gtest.h>

#include "fleet/fleet_sim.h"
#include "net/fabric.h"
#include "net/nic.h"
#include "server/server_sim.h"

namespace apc::net {
namespace {

using sim::kMs;
using sim::kNs;
using sim::kUs;

// ----------------------------------------------------------- DropTailLink

LinkConfig
tinyLink(std::size_t queue_pkts)
{
    LinkConfig lc;
    lc.gbps = 10.0;
    lc.propDelay = 1 * kUs;
    lc.queuePackets = queue_pkts;
    return lc;
}

TEST(DropTailLink, QueuesThenDeliversInFifoOrder)
{
    DropTailLink link(tinyLink(64));
    const sim::Tick ser = link.serializationTime(1500); // 1.2 us @ 10G
    EXPECT_EQ(ser, 1200 * kNs);

    const auto a = link.offer(0, 1500);
    const auto b = link.offer(0, 1500);
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    EXPECT_EQ(a.deliverAt, ser + 1 * kUs);
    EXPECT_EQ(b.deliverAt, 2 * ser + 1 * kUs); // queued behind a
}

TEST(DropTailLink, IdleGapDrainsTheQueue)
{
    DropTailLink link(tinyLink(64));
    const sim::Tick ser = link.serializationTime(1500);
    link.offer(0, 1500);
    // Far beyond the backlog: no queueing delay.
    const auto late = link.offer(100 * kUs, 1500);
    EXPECT_EQ(late.deliverAt, 100 * kUs + ser + 1 * kUs);
}

TEST(DropTailLink, TailDropsWhenBufferFullAndConserves)
{
    const std::size_t cap = 8;
    DropTailLink link(tinyLink(cap));
    std::uint64_t accepted = 0, dropped = 0;
    for (int i = 0; i < 50; ++i) {
        const auto o = link.offer(0, 1500); // all at t=0: queue builds
        o.accepted ? ++accepted : ++dropped;
    }
    EXPECT_GT(dropped, 0u);
    // Conservation: every offer either delivered or dropped.
    EXPECT_EQ(link.offered(), 50u);
    EXPECT_EQ(link.delivered(), accepted);
    EXPECT_EQ(link.dropped(), dropped);
    EXPECT_EQ(link.offered(), link.delivered() + link.dropped());
    // The buffer held about its configured packet count.
    EXPECT_NEAR(static_cast<double>(accepted), static_cast<double>(cap),
                2.0);
}

// ----------------------------------------------------------------- Fabric

TEST(Fabric, RoutesAndRetransmitsThroughCongestion)
{
    FabricConfig fc;
    fc.enabled = true;
    fc.edge.queuePackets = 4; // tiny buffers: force drops
    fc.core.queuePackets = 4;
    fc.rto = 100 * kUs;
    fc.maxTries = 3;
    Fabric fab(fc, 4);

    std::uint64_t ok = 0, lost = 0, retransmits = 0;
    for (int i = 0; i < 400; ++i) {
        const auto tr = fab.toServer(0, static_cast<std::size_t>(i % 4));
        retransmits += static_cast<std::uint64_t>(tr.retransmits);
        tr.lost ? ++lost : ++ok;
    }
    EXPECT_GT(retransmits, 0u);
    EXPECT_GT(ok, 0u);

    const auto s = fab.stats();
    // Per-link conservation is exact.
    EXPECT_EQ(s.enqueued, s.delivered + s.dropped);
    EXPECT_GT(s.dropped, 0u);
    // Path accounting: every transit asked is delivered or lost.
    EXPECT_EQ(s.requests, 400u);
    EXPECT_EQ(s.requests, ok + lost);
    EXPECT_EQ(s.retransmits, retransmits);
    EXPECT_EQ(s.giveUps, lost);
}

TEST(Fabric, RtoBacksOffExponentiallyWithCap)
{
    FabricConfig fc;
    fc.enabled = true;
    fc.rto = 100 * kUs;
    fc.rtoBackoff = 2.0;
    fc.rtoMax = 300 * kUs;
    fc.maxTries = 5;
    Fabric fab(fc, 1);
    // Flap the edge so every attempt drops: all four waits happen.
    fab.flapServer(0, 0, 10 * sim::kMs);
    const auto tr = fab.toServer(0, 0);
    EXPECT_TRUE(tr.lost);
    EXPECT_EQ(tr.retransmits, 4);
    // Waits: 100, 200, 300 (capped), 300 (capped) µs.
    EXPECT_EQ(tr.rtoWait, 900 * kUs);
    const auto s = fab.stats();
    EXPECT_EQ(s.giveUps, 1u);
    EXPECT_EQ(s.retransmits, 4u);
    EXPECT_EQ(s.flapDropped, 5u);
    // Flap drops still balance the per-link books.
    EXPECT_EQ(s.enqueued, s.delivered + s.dropped);
}

TEST(Fabric, FlapWindowIsAHardLossWindow)
{
    FabricConfig fc;
    fc.enabled = true;
    fc.maxTries = 1; // no retries: outcomes map 1:1 to windows
    Fabric fab(fc, 2);
    fab.flapServer(1, 1 * sim::kMs, 2 * sim::kMs);
    EXPECT_FALSE(fab.toServer(0, 1).lost);             // before
    EXPECT_TRUE(fab.toServer(1 * sim::kMs, 1).lost);   // inside
    EXPECT_FALSE(fab.toServer(1 * sim::kMs, 0).lost);  // other server
    // Still inside with margin for the ~56 µs core transit the packet
    // takes before it reaches the flapped edge link.
    EXPECT_TRUE(fab.toServer(3 * sim::kMs / 2, 1).lost);
    EXPECT_FALSE(fab.toServer(2 * sim::kMs, 1).lost);  // after
    // Core blackout severs every server.
    fab.flapCore(5 * sim::kMs, 6 * sim::kMs);
    EXPECT_TRUE(fab.toServer(5 * sim::kMs, 0).lost);
    EXPECT_TRUE(fab.toServer(5 * sim::kMs, 1).lost);
}

TEST(Fabric, UncongestedTransitMatchesWireMath)
{
    FabricConfig fc;
    fc.enabled = true;
    Fabric fab(fc, 2);
    const auto tr = fab.toServer(0, 1);
    ASSERT_FALSE(tr.lost);
    const sim::Tick expect =
        fab.coreIngress().serializationTime(fc.requestBytes) +
        fc.core.propDelay + fc.switchLatency +
        fab.downlink(1).serializationTime(fc.requestBytes) +
        fc.edge.propDelay;
    EXPECT_EQ(tr.deliverAt, expect);
}

// -------------------------------------------------------------------- Nic

struct NicHarness
{
    sim::Simulation sim{1};
    power::EnergyMeter meter{sim};
    io::IoLink link;
    Nic nic;

    std::vector<std::vector<Nic::RxPacket>> batches;
    std::vector<sim::Tick> irqAts;
    std::vector<std::uint64_t> drops;

    explicit NicHarness(NicConfig cfg)
        : link(sim, meter, io::IoLinkConfig::pcie(0)),
          nic(sim, meter, link, cfg)
    {
        nic.onDeliver([this](std::vector<Nic::RxPacket> b,
                             sim::Tick irq_at) {
            batches.push_back(std::move(b));
            irqAts.push_back(irq_at);
        });
        nic.onRxDrop([this](std::uint64_t id, sim::Tick) {
            drops.push_back(id);
        });
    }
};

TEST(Nic, FrameThresholdFiresBeforeTimer)
{
    NicConfig cfg;
    cfg.enabled = true;
    cfg.rxFrames = 4;
    cfg.rxUsecs = 10 * kMs; // timer far away: frames must trigger
    NicHarness h(cfg);

    for (std::uint64_t i = 0; i < 4; ++i)
        h.sim.at(static_cast<sim::Tick>(i) * kUs, [&h, i] {
            h.nic.rxEnqueue(i, 5 * kUs);
        });
    h.sim.runUntil(1 * kMs);

    ASSERT_EQ(h.batches.size(), 1u);
    EXPECT_EQ(h.batches[0].size(), 4u);
    EXPECT_EQ(h.irqAts[0], 3 * kUs); // the 4th packet raised it
    EXPECT_EQ(h.nic.stats().interrupts, 1u);
    EXPECT_DOUBLE_EQ(h.nic.stats().pktsPerIrq.mean(), 4.0);
    // One DMA burst over the PCIe link per interrupt.
    EXPECT_EQ(h.link.transfers(), 1u);
}

TEST(Nic, TimerFlushesPartialBatch)
{
    NicConfig cfg;
    cfg.enabled = true;
    cfg.rxFrames = 64;
    cfg.rxUsecs = 50 * kUs;
    NicHarness h(cfg);

    h.sim.at(7 * kUs, [&h] { h.nic.rxEnqueue(1, 5 * kUs); });
    h.sim.at(9 * kUs, [&h] { h.nic.rxEnqueue(2, 5 * kUs); });
    h.sim.runUntil(1 * kMs);

    ASSERT_EQ(h.batches.size(), 1u);
    EXPECT_EQ(h.batches[0].size(), 2u);
    // Timer runs from the oldest descriptor.
    EXPECT_EQ(h.irqAts[0], 7 * kUs + 50 * kUs);
    // Ring wait: 50 us for the first packet, 48 us for the second.
    EXPECT_NEAR(h.nic.stats().ringWaitUs.mean(), 49.0, 1e-9);
}

TEST(Nic, ZeroWindowInterruptsPerPacket)
{
    NicConfig cfg;
    cfg.enabled = true;
    cfg.rxUsecs = 0;
    NicHarness h(cfg);
    for (std::uint64_t i = 0; i < 5; ++i)
        h.sim.at(static_cast<sim::Tick>(i) * kUs,
                 [&h, i] { h.nic.rxEnqueue(i, kUs); });
    h.sim.runUntil(1 * kMs);
    EXPECT_EQ(h.nic.stats().interrupts, 5u);
    ASSERT_EQ(h.batches.size(), 5u);
    EXPECT_EQ(h.batches[0].size(), 1u);
}

TEST(Nic, FullRingTailDropsWithConservation)
{
    NicConfig cfg;
    cfg.enabled = true;
    cfg.rxRingSize = 8;
    cfg.rxFrames = 1000;
    cfg.rxUsecs = 10 * kMs; // nothing drains the ring
    NicHarness h(cfg);
    h.sim.at(0, [&h] {
        for (std::uint64_t i = 0; i < 20; ++i)
            h.nic.rxEnqueue(i, kUs);
    });
    h.sim.runUntil(1 * kMs);

    EXPECT_EQ(h.nic.stats().rxDropped, 12u);
    EXPECT_EQ(h.drops.size(), 12u);
    EXPECT_EQ(h.drops.front(), 8u); // first id past the ring
    // enqueued = (delivered later) + dropped + still-in-ring.
    EXPECT_EQ(h.nic.stats().rxPackets, 8u);
    EXPECT_EQ(h.nic.ringOccupancy(), 8u);
}

// ----------------------------------------------- ServerSim NIC wake path

server::ServerConfig
nicServerConfig(sim::Tick rx_usecs, std::uint64_t seed = 42)
{
    server::ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cpc1a;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(8000);
    cfg.duration = 150 * kMs;
    cfg.seed = seed;
    cfg.nic.enabled = true;
    cfg.nic.rxUsecs = rx_usecs;
    cfg.nic.rxFrames = 64;
    return cfg;
}

TEST(NicServer, WakeLatencyCoversPackageExit)
{
    server::ServerSim srv(nicServerConfig(20 * kUs));
    const auto r = srv.run();

    ASSERT_GT(r.nicInterrupts, 100u);
    ASSERT_GT(r.nicWakeUs.count(), 0u);
    // Every delivery paid at least the DMA burst; wakes from PC1A add
    // the L0s exit (~64 ns) and the APMU exit (~150 ns), all well
    // under the legacy PC6's tens of microseconds.
    EXPECT_GT(r.nicWakeUs.mean(), 0.1);
    EXPECT_LT(r.nicWakeUs.max(), 50.0);
    // The server did reach PC1A between interrupts, and the APMU (not
    // a request teleport) ran the exits.
    EXPECT_GT(r.pc1aResidency(), 0.2);
    EXPECT_GT(r.pc1aEntries, 0u);
    // NIC energy is accounted off-RAPL on the Network plane.
    EXPECT_GT(r.nicPowerW, 1.0);
    EXPECT_LT(r.nicPowerW, 20.0);
}

TEST(NicServer, SeedReplayIsDeterministic)
{
    server::ServerSim a(nicServerConfig(20 * kUs, 7));
    server::ServerSim b(nicServerConfig(20 * kUs, 7));
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.requests, rb.requests);
    EXPECT_EQ(ra.nicInterrupts, rb.nicInterrupts);
    EXPECT_EQ(ra.nicRxPackets, rb.nicRxPackets);
    EXPECT_DOUBLE_EQ(ra.nicWakeUs.mean(), rb.nicWakeUs.mean());
    EXPECT_DOUBLE_EQ(ra.avgLatencyUs, rb.avgLatencyUs);
    EXPECT_DOUBLE_EQ(ra.pkgPowerW, rb.pkgPowerW);
}

TEST(NicServer, WiderWindowCoalescesWakes)
{
    const auto tight = server::ServerSim(nicServerConfig(0)).run();
    const auto wide =
        server::ServerSim(nicServerConfig(200 * kUs)).run();

    // Same offered load, far fewer interrupts, bigger batches.
    EXPECT_LT(wide.nicInterrupts, tight.nicInterrupts / 2);
    EXPECT_GT(wide.nicPktsPerIrq.mean(),
              1.5 * tight.nicPktsPerIrq.mean());
    // Wake sharing + longer quiet periods: more PC1A residency.
    EXPECT_GT(wide.pc1aResidency(), tight.pc1aResidency());
    // The held packets pay for it in latency.
    EXPECT_GT(wide.avgLatencyUs, tight.avgLatencyUs);
}

// ------------------------------------------------------- Fleet over fabric

fleet::FleetConfig
netFleet(double util, std::uint64_t seed = 42)
{
    fleet::FleetConfig fc;
    fc.numServers = 4;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.dispatch = fleet::DispatchKind::LeastOutstanding;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        util, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 2000.0;
    fc.warmup = 20 * kMs;
    fc.duration = 150 * kMs;
    fc.seed = seed;
    fc.fabric.enabled = true;
    fc.nic.enabled = true;
    fc.nic.rxUsecs = 20 * kUs;
    return fc;
}

TEST(NetFleet, ConservationAndCompletion)
{
    const auto rep = fleet::FleetSim(netFleet(0.2)).run();
    ASSERT_GT(rep.dispatched, 100u);
    // Benign fabric defaults: nothing is lost, everything drains.
    EXPECT_EQ(rep.inFlightAtEnd, 0u);
    EXPECT_EQ(rep.dispatched, rep.completed + rep.lostRequests);
    EXPECT_EQ(rep.lostRequests, 0u);
    // Exact per-link packet conservation.
    EXPECT_EQ(rep.fabricStats.enqueued,
              rep.fabricStats.delivered + rep.fabricStats.dropped);
    // Every request crossed the fabric twice (there + response); the
    // counters reset at the measurement edge, so warmup carryover can
    // only add responses, never requests.
    EXPECT_GT(rep.fabricStats.requests, 0u);
    EXPECT_GE(rep.fabricStats.responses, rep.fabricStats.requests);
    EXPECT_LT(rep.fabricStats.responses - rep.fabricStats.requests,
              rep.fabricStats.requests / 50);
    // Net power shows up in the report.
    EXPECT_GT(rep.nicPowerW, 0.0);
    EXPECT_GT(rep.fabricPowerW, 0.0);
    EXPECT_GT(rep.totalPowerW(),
              rep.pkgPowerW + rep.dramPowerW);
    EXPECT_GT(rep.nicInterrupts, 0u);
    EXPECT_GT(rep.nicWakeUs.count(), 0u);
}

TEST(NetFleet, LossyFabricRetransmitsAndConserves)
{
    auto fc = netFleet(0.3, 11);
    // Starve the buffers so bursts overflow; keep retries bounded.
    fc.fabric.edge.queuePackets = 2;
    fc.fabric.core.queuePackets = 3;
    fc.fabric.rto = 300 * kUs;
    fc.fabric.maxTries = 2;
    fc.traffic.arrivalKind = workload::ArrivalKind::Mmpp;
    fc.traffic.burstiness = 6.0;
    const auto rep = fleet::FleetSim(fc).run();

    ASSERT_GT(rep.dispatched, 100u);
    EXPECT_GT(rep.fabricStats.dropped, 0u);
    EXPECT_GT(rep.netRetransmits, 0u);
    // Drops beyond retry surface as lost requests, not hung flights.
    EXPECT_EQ(rep.inFlightAtEnd, 0u);
    EXPECT_EQ(rep.dispatched, rep.completed + rep.lostRequests);
    EXPECT_EQ(rep.fabricStats.enqueued,
              rep.fabricStats.delivered + rep.fabricStats.dropped);
}

TEST(NetFleet, SeedAndThreadCountInvariant)
{
    auto fc1 = netFleet(0.15, 9);
    fc1.threads = 1;
    auto fc2 = netFleet(0.15, 9);
    fc2.threads = 4;
    const auto ra = fleet::FleetSim(fc1).run();
    const auto rb = fleet::FleetSim(fc2).run();

    EXPECT_EQ(ra.dispatched, rb.dispatched);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.lostRequests, rb.lostRequests);
    EXPECT_EQ(ra.netRetransmits, rb.netRetransmits);
    EXPECT_EQ(ra.nicInterrupts, rb.nicInterrupts);
    EXPECT_EQ(ra.fabricStats.enqueued, rb.fabricStats.enqueued);
    EXPECT_DOUBLE_EQ(ra.p99LatencyUs, rb.p99LatencyUs);
    EXPECT_DOUBLE_EQ(ra.pkgPowerW, rb.pkgPowerW);
    EXPECT_DOUBLE_EQ(ra.joulesPerRequest, rb.joulesPerRequest);

    // And an identical rerun reproduces bit-identical results.
    auto fc3 = netFleet(0.15, 9);
    fc3.threads = 4;
    const auto rc = fleet::FleetSim(fc3).run();
    EXPECT_EQ(rb.completed, rc.completed);
    EXPECT_DOUBLE_EQ(rb.avgLatencyUs, rc.avgLatencyUs);
    EXPECT_DOUBLE_EQ(rb.pkgPowerW, rc.pkgPowerW);
}

TEST(NetFleet, CoalescingTradeoffVisibleAtFleetScale)
{
    auto tight_cfg = netFleet(0.1, 5);
    tight_cfg.nic.rxUsecs = 0;
    auto wide_cfg = netFleet(0.1, 5);
    wide_cfg.nic.rxUsecs = 250 * kUs;
    wide_cfg.nic.rxFrames = 64;
    const auto tight = fleet::FleetSim(tight_cfg).run();
    const auto wide = fleet::FleetSim(wide_cfg).run();

    EXPECT_LT(wide.nicInterrupts, tight.nicInterrupts);
    EXPECT_GT(wide.pc1aResidency(), tight.pc1aResidency());
    EXPECT_GT(wide.avgLatencyUs, tight.avgLatencyUs);
}

// --------------------------------------------------------------- CSV export

TEST(Csv, HistogramAndFleetReportRender)
{
    stats::Histogram h(0.1, 1e4, 8);
    h.record(1.0);
    h.record(1.0);
    h.record(250.0);
    const std::string csv = h.toCsv();
    EXPECT_NE(csv.find("bin_lower,bin_upper,count"), std::string::npos);
    // Two non-empty bins -> header + 2 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find(",2\n"), std::string::npos);

    fleet::FleetReport rep;
    rep.numServers = 4;
    rep.dispatched = 100;
    const std::string header = fleet::FleetReport::csvHeader();
    const std::string row = rep.csvRow();
    // Same arity, parseable as one record per report.
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    EXPECT_EQ(row.rfind("4,100,", 0), 0u);
}

} // namespace
} // namespace apc::net
