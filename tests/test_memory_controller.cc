/**
 * @file
 * Unit tests for the memory controller / DRAM power model
 * (dram/memory_controller.h): CKE-off under Allow_CKE_OFF, self-refresh
 * flows, wake latencies, power levels.
 */

#include <gtest/gtest.h>

#include "dram/memory_controller.h"
#include "power/energy_meter.h"

namespace apc::dram {
namespace {

using sim::kNs;
using sim::kUs;

struct McFixture
{
    sim::Simulation s;
    power::EnergyMeter m{s};
    MemoryController mc;

    McFixture() : mc(s, m, MemoryControllerConfig{}) {}

    double pkgW() { return m.planePower(power::Plane::Package); }
    double dramW() { return m.planePower(power::Plane::Dram); }
};

TEST(MemoryController, StartsActive)
{
    McFixture f;
    EXPECT_EQ(f.mc.state(), McState::Active);
    EXPECT_TRUE(f.mc.active().read());
    EXPECT_NEAR(f.pkgW(), 1.25, 1e-9);
    EXPECT_NEAR(f.dramW(), 2.75, 1e-9);
}

TEST(MemoryController, NoCkeOffWithoutAllow)
{
    McFixture f;
    f.s.runUntil(1 * sim::kMs);
    EXPECT_EQ(f.mc.state(), McState::Active);
}

TEST(MemoryController, EntersCkeOffWhenAllowedAndIdle)
{
    McFixture f;
    f.mc.allowCkeOff().write(true);
    f.s.runUntil(9 * kNs);
    EXPECT_EQ(f.mc.state(), McState::Active);
    f.s.runUntil(10 * kNs); // 10 ns entry (paper Sec. 5.5)
    EXPECT_EQ(f.mc.state(), McState::CkeOff);
    EXPECT_FALSE(f.mc.active().read());
    EXPECT_NEAR(f.pkgW(), 0.375, 1e-9);
    EXPECT_NEAR(f.dramW(), 0.80, 1e-9);
}

TEST(MemoryController, DisallowWakesWithin24ns)
{
    McFixture f;
    f.mc.allowCkeOff().write(true);
    f.s.runUntil(1 * kUs);
    ASSERT_EQ(f.mc.state(), McState::CkeOff);
    f.mc.allowCkeOff().write(false);
    f.s.runUntil(1 * kUs + 24 * kNs);
    EXPECT_EQ(f.mc.state(), McState::Active);
    EXPECT_EQ(f.mc.ckeWakes(), 1u);
}

TEST(MemoryController, AccessWakesFromCkeOff)
{
    McFixture f;
    f.mc.allowCkeOff().write(true);
    f.s.runUntil(1 * kUs);
    ASSERT_EQ(f.mc.state(), McState::CkeOff);
    sim::Tick ready_at = -1;
    f.mc.access(100 * kNs, [&] { ready_at = f.s.now(); });
    f.s.runAll();
    EXPECT_EQ(ready_at, 1 * kUs + 24 * kNs);
    // After the access drains and the signal is still set, it drops
    // back down.
    EXPECT_EQ(f.mc.state(), McState::CkeOff);
}

TEST(MemoryController, AccessWhileActiveIsImmediate)
{
    McFixture f;
    bool ready = false;
    f.mc.access(10 * kNs, [&] { ready = true; });
    EXPECT_TRUE(ready);
    EXPECT_TRUE(f.mc.busy());
    f.s.runAll();
    EXPECT_FALSE(f.mc.busy());
}

TEST(MemoryController, BusyPreventsPowerDown)
{
    McFixture f;
    f.mc.beginAccess();
    f.mc.allowCkeOff().write(true);
    f.s.runUntil(1 * kUs);
    EXPECT_EQ(f.mc.state(), McState::Active);
    f.mc.endAccess();
    f.s.runUntil(2 * kUs);
    EXPECT_EQ(f.mc.state(), McState::CkeOff);
}

TEST(MemoryController, DramBusyPowerWhileAccessing)
{
    McFixture f;
    EXPECT_NEAR(f.dramW(), 2.75, 1e-9);
    f.mc.beginAccess();
    EXPECT_NEAR(f.dramW(), 3.50, 1e-9); // +0.75 busy
    f.mc.endAccess();
    EXPECT_NEAR(f.dramW(), 2.75, 1e-9);
}

TEST(MemoryController, SelfRefreshEntryExit)
{
    McFixture f;
    bool in_sr = false;
    f.mc.enterSelfRefresh([&] { in_sr = true; });
    f.s.runAll();
    EXPECT_TRUE(in_sr);
    EXPECT_EQ(f.mc.state(), McState::SelfRefresh);
    EXPECT_NEAR(f.pkgW(), 0.30, 1e-9);
    EXPECT_NEAR(f.dramW(), 0.255, 1e-9);

    const sim::Tick t0 = f.s.now();
    sim::Tick out_at = -1;
    f.mc.exitSelfRefresh([&] { out_at = f.s.now(); });
    f.s.runAll();
    EXPECT_EQ(out_at, t0 + 10 * kUs); // µs-scale SR exit
    EXPECT_EQ(f.mc.state(), McState::Active);
}

TEST(MemoryController, AccessWakesFromSelfRefresh)
{
    McFixture f;
    f.mc.enterSelfRefresh(nullptr);
    f.s.runAll();
    const sim::Tick t0 = f.s.now();
    sim::Tick ready_at = -1;
    f.mc.access(0, [&] { ready_at = f.s.now(); });
    f.s.runAll();
    EXPECT_EQ(ready_at, t0 + 10 * kUs);
}

TEST(MemoryController, CkeVsSelfRefreshLatencyGap)
{
    // The design choice PC1A hinges on: CKE-off wakes ~400x faster.
    MemoryControllerConfig cfg;
    EXPECT_GE(cfg.selfRefreshExit / cfg.ckeOffExit, 400);
}

TEST(MemoryController, CalibrationTotalsMatchDesign)
{
    // Two controllers: idle 5.5 W, CKE-off 1.6 W, SR 0.51 W (Table 1
    // derivation in DESIGN.md Sec. 3).
    MemoryControllerConfig cfg;
    EXPECT_NEAR(2 * cfg.dramIdleWatts, 5.5, 1e-9);
    EXPECT_NEAR(2 * cfg.dramCkeOffWatts, 1.6, 1e-9);
    EXPECT_NEAR(2 * cfg.dramSelfRefreshWatts, 0.51, 1e-9);
    EXPECT_NEAR(2 * (cfg.dramIdleWatts + cfg.dramBusyExtraWatts), 7.0,
                1e-9);
}

TEST(MemoryController, ResidencyAccumulates)
{
    McFixture f;
    f.mc.allowCkeOff().write(true);
    f.s.runUntil(1 * sim::kMs);
    const auto &r = f.mc.residency();
    EXPECT_GT(r.residency(static_cast<std::size_t>(McState::CkeOff),
                          f.s.now()),
              0.99);
}

TEST(MemoryController, RapidAllowToggleEndsActive)
{
    McFixture f;
    f.mc.allowCkeOff().write(true);
    f.mc.allowCkeOff().write(false);
    f.s.runAll();
    EXPECT_EQ(f.mc.state(), McState::Active);
}

} // namespace
} // namespace apc::dram
