/**
 * @file
 * Unit tests for the uncore: CLM domain (clock gating + retention
 * voltage) and the PLL farm.
 */

#include <gtest/gtest.h>

#include "power/energy_meter.h"
#include "uncore/clm.h"
#include "uncore/pll_farm.h"

namespace apc::uncore {
namespace {

using sim::kNs;
using sim::kUs;

struct ClmFixture
{
    sim::Simulation s;
    power::EnergyMeter m{s};
    Clm clm;

    ClmFixture() : clm(s, m, ClmConfig{}) {}

    double watts() { return m.planePower(power::Plane::Package); }
};

TEST(Clm, StartsAvailableAtFullPower)
{
    ClmFixture f;
    EXPECT_TRUE(f.clm.available().read());
    EXPECT_TRUE(f.clm.pwrOk().read());
    EXPECT_DOUBLE_EQ(f.clm.voltage(), 0.8);
    // dyn 6.54 + leak 13.30 = 19.84 W (DESIGN.md Sec. 3).
    EXPECT_NEAR(f.watts(), 19.84, 1e-9);
}

TEST(Clm, ClockGatingDropsDynamicPower)
{
    ClmFixture f;
    f.clm.gateClocks();
    f.s.runAll();
    EXPECT_FALSE(f.clm.available().read());
    EXPECT_NEAR(f.watts(), 13.30, 1e-9); // leakage only
}

TEST(Clm, RetentionDropsLeakage)
{
    ClmFixture f;
    f.clm.gateClocks();
    f.s.runAll();
    f.clm.setRetention(true);
    EXPECT_FALSE(f.clm.pwrOk().read());
    f.s.runAll();
    EXPECT_DOUBLE_EQ(f.clm.voltage(), 0.5);
    EXPECT_TRUE(f.clm.pwrOk().read());
    // Leakage scales with V: 13.30 * 0.5/0.8 = 8.3125 W.
    EXPECT_NEAR(f.watts(), 8.3125, 1e-6);
}

TEST(Clm, RetentionRampTakes150ns)
{
    ClmFixture f;
    f.clm.gateClocks();
    f.s.runAll();
    const sim::Tick t0 = f.s.now();
    f.clm.setRetention(true);
    EXPECT_EQ(f.clm.settleTimeRemaining(), 150 * kNs);
    sim::Tick ok_at = -1;
    f.clm.pwrOk().subscribe([&](bool v) {
        if (v)
            ok_at = f.s.now();
    });
    f.s.runAll();
    EXPECT_EQ(ok_at, t0 + 150 * kNs);
}

TEST(Clm, EnergyDuringRampIsTrapezoidal)
{
    ClmFixture f;
    f.clm.gateClocks();
    f.s.runAll();
    const double e0 = f.m.planeEnergy(power::Plane::Package);
    const sim::Tick t0 = f.s.now();
    f.clm.setRetention(true);
    f.s.runUntil(t0 + 150 * kNs);
    const double e1 = f.m.planeEnergy(power::Plane::Package);
    // Average of 13.30 and 8.3125 over 150 ns.
    const double expected = 0.5 * (13.30 + 8.3125) * 150e-9;
    EXPECT_NEAR(e1 - e0, expected, 1e-12);
}

TEST(Clm, AvailableRequiresNominalAndClocks)
{
    ClmFixture f;
    f.clm.gateClocks();
    f.s.runAll();
    f.clm.setRetention(true);
    f.s.runAll();
    EXPECT_FALSE(f.clm.available().read());
    // Ramp back up, but clocks still gated -> not available.
    f.clm.setRetention(false);
    f.s.runAll();
    EXPECT_FALSE(f.clm.available().read());
    f.clm.ungateClocks();
    f.s.runAll();
    EXPECT_TRUE(f.clm.available().read());
    EXPECT_NEAR(f.watts(), 19.84, 1e-9);
}

TEST(Clm, PreemptiveWakeMidEntryRamp)
{
    ClmFixture f;
    f.clm.gateClocks();
    f.s.runAll();
    const sim::Tick t0 = f.s.now();
    f.clm.setRetention(true);
    f.s.runUntil(t0 + 75 * kNs); // halfway down, ~0.65 V
    f.clm.setRetention(false);
    EXPECT_EQ(f.clm.settleTimeRemaining(), 75 * kNs);
    f.s.runAll();
    EXPECT_DOUBLE_EQ(f.clm.voltage(), 0.8);
}

TEST(Clm, BothFivrsTrackEachOther)
{
    ClmFixture f;
    f.clm.setRetention(true);
    f.s.runAll();
    EXPECT_DOUBLE_EQ(f.clm.fivr0().voltage(), 0.5);
    EXPECT_DOUBLE_EQ(f.clm.fivr1().voltage(), 0.5);
    EXPECT_TRUE(f.clm.inRetention());
}

TEST(PllFarm, HasEightPllsAllLocked)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    PllFarm farm(s, m, power::PllConfig{});
    EXPECT_EQ(farm.size(), 8u);
    EXPECT_TRUE(farm.allLocked());
    // 8 x 7 mW = 56 mW: the paper's PPLLs_diff (Sec. 5.4).
    EXPECT_NEAR(farm.totalPowerWatts(), 0.056, 1e-9);
}

TEST(PllFarm, PowerOffAllDropsPower)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    PllFarm farm(s, m, power::PllConfig{});
    farm.powerOffAll();
    EXPECT_FALSE(farm.allLocked());
    EXPECT_NEAR(farm.totalPowerWatts(), 0.0, 1e-12);
}

TEST(PllFarm, PowerOnAllWaitsForSlowestRelock)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    power::PllConfig cfg;
    cfg.relockLatency = 5 * kUs;
    PllFarm farm(s, m, cfg);
    farm.powerOffAll();
    s.runUntil(1 * kUs);
    sim::Tick done_at = -1;
    farm.powerOnAll([&] { done_at = s.now(); });
    s.runAll();
    EXPECT_EQ(done_at, 1 * kUs + 5 * kUs);
    EXPECT_TRUE(farm.allLocked());
}

TEST(PllFarm, PowerOnAllWhenLockedIsImmediate)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    PllFarm farm(s, m, power::PllConfig{});
    bool done = false;
    farm.powerOnAll([&] { done = true; });
    EXPECT_TRUE(done);
}

} // namespace
} // namespace apc::uncore
