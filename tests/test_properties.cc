/**
 * @file
 * Property-based and parameterized invariant tests.
 *
 * These sweep the configuration/seed space and assert properties that
 * must hold for *any* parameterization:
 *  - energy accounting conserves (plane totals == sum of loads, energy
 *    is monotone, average power within physical bounds),
 *  - the APMU never reports PC1A unless every IOSM/CLMR condition holds
 *    (checked live, on every edge, under random traffic),
 *  - the system always recovers to a serviceable state after any wake,
 *  - FIVR output stays within [retention, nominal] under arbitrary
 *    preemptive command sequences,
 *  - residency fractions always sum to 1.
 */

#include <gtest/gtest.h>

#include "power/fivr.h"
#include "server/server_sim.h"
#include "soc/soc.h"

namespace apc {
namespace {

using sim::kNs;
using sim::kUs;

// --- FIVR fuzz: random preemptive commands -------------------------

class FivrFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FivrFuzz, VoltageStaysInRangeAndSettles)
{
    sim::Simulation s(GetParam());
    power::FivrConfig cfg;
    power::Fivr f(s, "f", cfg);
    for (int i = 0; i < 300; ++i) {
        // Random command at a random time, often mid-ramp.
        const bool ret = s.rng().bernoulli(0.5);
        if (ret)
            f.toRetention();
        else
            f.toNominal();
        const auto step =
            static_cast<sim::Tick>(s.rng().uniformInt(1, 200)) * kNs;
        s.runUntil(s.now() + step);
        const double v = f.voltage();
        EXPECT_GE(v, cfg.retentionVolts - 1e-9);
        EXPECT_LE(v, cfg.nominalVolts + 1e-9);
        // PwrOk implies settled at the commanded target.
        if (f.pwrOk().read()) {
            EXPECT_FALSE(f.ramping());
            EXPECT_DOUBLE_EQ(v, f.target());
        }
    }
    s.runAll();
    EXPECT_TRUE(f.pwrOk().read());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FivrFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- APMU invariants under random traffic ---------------------------

class ApmuInvariants : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ApmuInvariants, Pc1aImpliesAllConditions)
{
    sim::Simulation s(GetParam());
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();

    std::uint64_t checks = 0;
    soc.apmu()->inPc1a().subscribe([&](bool v) {
        if (!v)
            return;
        ++checks;
        // On the InPC1A rising edge every technique must be engaged.
        for (std::size_t i = 0; i < soc.numLinks(); ++i)
            EXPECT_TRUE(soc.link(i).inL0s().read())
                << soc.link(i).name();
        EXPECT_TRUE(soc.clm().inRetention());
        EXPECT_FALSE(soc.clm().clockTree().running());
        EXPECT_TRUE(soc.plls().allLocked());
        for (std::size_t i = 0; i < soc.numCores(); ++i)
            EXPECT_TRUE(soc.core(i).inCc1().read());
    });

    // Random traffic: NIC packets, direct core wakes, UPI chatter.
    for (int i = 0; i < 200; ++i) {
        s.runUntil(s.now() +
                   static_cast<sim::Tick>(s.rng().uniformInt(1, 80)) *
                       kUs);
        switch (s.rng().uniformInt(0, 2)) {
          case 0:
            soc.nic().transfer(100 * kNs, nullptr);
            break;
          case 1: {
            const auto c = static_cast<std::size_t>(
                s.rng().uniformInt(0, 9));
            soc.core(c).requestWake([&soc, &s, c] {
                s.after(2 * kUs, [&soc, c] { soc.core(c).release(); });
            });
            break;
          }
          default:
            soc.link(4).transfer(50 * kNs, nullptr);
            break;
        }
    }
    s.runUntil(s.now() + 200 * kUs);
    EXPECT_GT(checks, 10u) << "PC1A was rarely entered; test is vacuous";
    // The system must end in a coherent, serviceable state.
    soc.nic().transfer(0, nullptr);
    s.runUntil(s.now() + 300 * kUs);
    EXPECT_TRUE(soc.fabricReady() ||
                soc.apmu()->state() == core::Apmu::State::Pc1a ||
                soc.apmu()->state() == core::Apmu::State::Entering);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApmuInvariants,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Energy conservation across policies and loads -------------------

struct EnergyCase
{
    soc::PackagePolicy policy;
    double qps;
};

class EnergyConservation : public ::testing::TestWithParam<EnergyCase>
{};

TEST_P(EnergyConservation, PlaneEnergyEqualsSumOfLoads)
{
    const auto p = GetParam();
    server::ServerConfig cfg;
    cfg.policy = p.policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(p.qps);
    cfg.duration = 50 * sim::kMs;
    server::ServerSim sim(std::move(cfg));
    auto &soc = sim.soc();
    const auto res = sim.run();

    double pkg_sum = 0, dram_sum = 0;
    for (const auto *l : soc.meter().loads()) {
        EXPECT_GE(l->energyJoules(), 0.0) << l->name();
        if (l->plane() == power::Plane::Package)
            pkg_sum += l->energyJoules();
        else
            dram_sum += l->energyJoules();
    }
    EXPECT_NEAR(soc.meter().planeEnergy(power::Plane::Package), pkg_sum,
                1e-6);
    EXPECT_NEAR(soc.meter().planeEnergy(power::Plane::Dram), dram_sum,
                1e-6);

    // Physical bounds: between the deepest and the saturated state.
    EXPECT_GE(res.pkgPowerW, 11.0);
    EXPECT_LE(res.pkgPowerW, 86.0);
    EXPECT_GE(res.dramPowerW, 0.4);
    EXPECT_LE(res.dramPowerW, 7.5);

    // Residency fractions sum to one.
    double total = 0;
    for (double f : res.pkgResidency)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnergyConservation,
    ::testing::Values(
        EnergyCase{soc::PackagePolicy::Cshallow, 0},
        EnergyCase{soc::PackagePolicy::Cshallow, 10e3},
        EnergyCase{soc::PackagePolicy::Cshallow, 100e3},
        EnergyCase{soc::PackagePolicy::Cdeep, 0},
        EnergyCase{soc::PackagePolicy::Cdeep, 10e3},
        EnergyCase{soc::PackagePolicy::Cdeep, 100e3},
        EnergyCase{soc::PackagePolicy::Cpc1a, 0},
        EnergyCase{soc::PackagePolicy::Cpc1a, 10e3},
        EnergyCase{soc::PackagePolicy::Cpc1a, 100e3}));

// --- RAPL counters are monotone --------------------------------------

TEST(EnergyProperties, RaplCountersMonotone)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    std::uint64_t prev_pkg = 0, prev_dram = 0;
    for (int i = 0; i < 50; ++i) {
        s.runUntil(s.now() + 100 * kUs);
        if (i % 7 == 0)
            soc.nic().transfer(100 * kNs, nullptr);
        const auto pkg =
            soc.rapl().readCounter(power::Plane::Package).counter;
        const auto dram =
            soc.rapl().readCounter(power::Plane::Dram).counter;
        EXPECT_GE(pkg, prev_pkg);
        EXPECT_GE(dram, prev_dram);
        prev_pkg = pkg;
        prev_dram = dram;
    }
}

// --- Latency sweep sanity (parameterized over QPS) --------------------

class LatencySweep : public ::testing::TestWithParam<double>
{};

TEST_P(LatencySweep, OrderingAndBoundsHold)
{
    server::ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cpc1a;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(GetParam());
    cfg.duration = 80 * sim::kMs;
    server::ServerSim sim(std::move(cfg));
    const auto r = sim.run();
    EXPECT_GT(r.requests, 0u);
    // Latency must at least cover the network constant and respect
    // quantile ordering (bin-resolution tolerance on the histogram).
    EXPECT_GE(r.avgLatencyUs, 117.0);
    EXPECT_LE(r.p50LatencyUs, r.p95LatencyUs * 1.05);
    EXPECT_LE(r.p95LatencyUs, r.p99LatencyUs * 1.05);
    EXPECT_LE(r.p99LatencyUs, r.maxLatencyUs * 1.05);
    // Whenever PC1A was exercised its transitions stayed in bounds.
    if (r.pc1aEntries > 0) {
        EXPECT_LE(r.apmuEntryNsMax + r.apmuExitNsMax, 200.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Qps, LatencySweep,
                         ::testing::Values(2e3, 8e3, 20e3, 60e3, 150e3,
                                           400e3));

// --- Idle-period accounting -------------------------------------------

TEST(IdleAccounting, SocWatchNeverExceedsTrueIdle)
{
    for (const double qps : {5e3, 50e3}) {
        server::ServerConfig cfg;
        cfg.policy = soc::PackagePolicy::Cshallow;
        cfg.workload = workload::WorkloadConfig::memcachedEtc(qps);
        cfg.duration = 60 * sim::kMs;
        server::ServerSim sim(std::move(cfg));
        const auto r = sim.run();
        EXPECT_LE(r.socWatchIdleFraction, r.allIdleFraction + 1e-9);
        EXPECT_GE(r.allIdleFraction, 0.0);
        EXPECT_LE(r.allIdleFraction, 1.0);
    }
}

} // namespace
} // namespace apc
