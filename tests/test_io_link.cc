/**
 * @file
 * Unit tests for the IO link LTSSM model (io/io_link.h): autonomous L0s
 * entry under AllowL0s, wake-on-traffic, InL0s semantics, L1 flows.
 */

#include <gtest/gtest.h>

#include "io/io_link.h"
#include "power/energy_meter.h"

namespace apc::io {
namespace {

using sim::kNs;
using sim::kUs;

struct LinkFixture
{
    sim::Simulation s;
    power::EnergyMeter m{s};
    IoLink link;

    explicit LinkFixture(IoLinkConfig cfg = IoLinkConfig::pcie(0))
        : link(s, m, cfg)
    {}
};

TEST(IoLink, StartsInL0NotAllowed)
{
    LinkFixture f;
    EXPECT_EQ(f.link.state(), LState::L0);
    EXPECT_FALSE(f.link.inL0s().read());
    // Without AllowL0s, an idle link never enters standby (datacenter
    // baseline behaviour).
    f.s.runUntil(1 * sim::kMs);
    EXPECT_EQ(f.link.state(), LState::L0);
}

TEST(IoLink, EntersL0sAfterIdleWindowWhenAllowed)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    // Entry window = 1/4 of the 64 ns exit latency = 16 ns.
    f.s.runUntil(15 * kNs);
    EXPECT_EQ(f.link.state(), LState::L0);
    f.s.runUntil(16 * kNs);
    EXPECT_EQ(f.link.state(), LState::L0s);
    EXPECT_TRUE(f.link.inL0s().read());
}

TEST(IoLink, UpiUsesL0pWithFastExit)
{
    LinkFixture f(IoLinkConfig::upi(0));
    f.link.allowL0s().write(true);
    f.s.runUntil(100 * kNs);
    EXPECT_EQ(f.link.state(), LState::L0p);
    sim::Tick done_at = -1;
    f.link.transfer(0, [&] { done_at = f.s.now(); });
    f.s.runAll();
    // L0p exit is ~10 ns (paper footnote 3).
    EXPECT_EQ(done_at, 100 * kNs + 10 * kNs);
}

TEST(IoLink, TransferFromL0sPaysExitLatency)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    f.s.runUntil(1 * kUs);
    ASSERT_EQ(f.link.state(), LState::L0s);
    sim::Tick done_at = -1;
    f.link.transfer(200 * kNs, [&] { done_at = f.s.now(); });
    // InL0s drops at wake start, not completion.
    EXPECT_FALSE(f.link.inL0s().read());
    f.s.runAll();
    EXPECT_EQ(done_at, 1 * kUs + 64 * kNs + 200 * kNs);
    EXPECT_EQ(f.link.shallowWakes(), 1u);
}

TEST(IoLink, TransferInL0HasNoWakeCost)
{
    LinkFixture f;
    sim::Tick done_at = -1;
    f.link.transfer(200 * kNs, [&] { done_at = f.s.now(); });
    f.s.runAll();
    EXPECT_EQ(done_at, 200 * kNs);
}

TEST(IoLink, BusyLinkDoesNotEnterStandby)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    f.link.beginTransaction();
    f.s.runUntil(10 * kUs);
    EXPECT_EQ(f.link.state(), LState::L0);
    f.link.endTransaction();
    f.s.runUntil(11 * kUs);
    EXPECT_EQ(f.link.state(), LState::L0s);
}

TEST(IoLink, DisallowWakesStandbyLink)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    f.s.runUntil(1 * kUs);
    ASSERT_EQ(f.link.state(), LState::L0s);
    f.link.allowL0s().write(false);
    EXPECT_FALSE(f.link.inL0s().read());
    f.s.runAll();
    EXPECT_EQ(f.link.state(), LState::L0);
    // And it stays in L0 afterwards.
    f.s.runUntil(f.s.now() + 10 * kUs);
    EXPECT_EQ(f.link.state(), LState::L0);
}

TEST(IoLink, BackToBackTransfersQueueBehindWake)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    f.s.runUntil(1 * kUs);
    int done = 0;
    f.link.transfer(100 * kNs, [&] { ++done; });
    f.link.transfer(100 * kNs, [&] { ++done; });
    f.s.runAll();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(f.link.shallowWakes(), 1u); // one wake served both
}

TEST(IoLink, EnterL1SetsInL0sDeeper)
{
    LinkFixture f;
    bool entered = false;
    f.link.enterL1([&] { entered = true; });
    f.s.runAll();
    EXPECT_TRUE(entered);
    EXPECT_EQ(f.link.state(), LState::L1);
    // InL0s means "L0s or deeper" (paper Sec. 4.2.1).
    EXPECT_TRUE(f.link.inL0s().read());
}

TEST(IoLink, ExitL1TakesRetrainLatency)
{
    LinkFixture f;
    f.link.enterL1(nullptr);
    f.s.runAll();
    const sim::Tick t0 = f.s.now();
    sim::Tick at_l0 = -1;
    f.link.exitL1([&] { at_l0 = f.s.now(); });
    f.s.runAll();
    EXPECT_EQ(at_l0, t0 + 6 * kUs);
    EXPECT_EQ(f.link.state(), LState::L0);
}

TEST(IoLink, TransferWakesL1Link)
{
    LinkFixture f;
    f.link.enterL1(nullptr);
    f.s.runAll();
    const sim::Tick t0 = f.s.now();
    sim::Tick done_at = -1;
    f.link.transfer(100 * kNs, [&] { done_at = f.s.now(); });
    EXPECT_FALSE(f.link.inL0s().read());
    f.s.runAll();
    EXPECT_EQ(done_at, t0 + 6 * kUs + 100 * kNs);
}

TEST(IoLink, PowerFollowsState)
{
    LinkFixture f; // PCIe: L0 1.5 W, L0s 0.75 W, L1 0.18 W
    EXPECT_NEAR(f.m.planePower(power::Plane::Package), 1.5, 1e-9);
    f.link.allowL0s().write(true);
    f.s.runUntil(1 * kUs);
    EXPECT_NEAR(f.m.planePower(power::Plane::Package), 0.75, 1e-9);
    f.link.allowL0s().write(false);
    f.s.runAll();
    f.link.enterL1(nullptr);
    f.s.runAll();
    EXPECT_NEAR(f.m.planePower(power::Plane::Package), 0.18, 1e-9);
}

TEST(IoLink, ShallowSavingsMatchCalibration)
{
    // DESIGN.md Sec. 3: total link L0 power 7.5 W, shallow 4.25 W,
    // L1 0.9 W across 3 PCIe + 1 DMI + 2 UPI.
    sim::Simulation s;
    power::EnergyMeter m(s);
    std::vector<IoLinkConfig> cfgs = {
        IoLinkConfig::pcie(0), IoLinkConfig::pcie(1),
        IoLinkConfig::pcie(2), IoLinkConfig::dmi(),
        IoLinkConfig::upi(0), IoLinkConfig::upi(1)};
    double l0 = 0, shallow = 0, l1 = 0;
    for (const auto &c : cfgs) {
        l0 += c.powerL0;
        shallow += c.powerShallow;
        l1 += c.powerL1;
    }
    EXPECT_NEAR(l0, 7.5, 1e-9);
    EXPECT_NEAR(shallow, 4.25, 1e-9);
    EXPECT_NEAR(l1, 0.9, 1e-9);
}

TEST(IoLink, ResidencyTracksStates)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    f.s.runUntil(1 * sim::kMs);
    const auto &r = f.link.residency();
    const double l0s =
        r.residency(static_cast<std::size_t>(LState::L0s), f.s.now());
    EXPECT_GT(l0s, 0.98);
}

TEST(IoLink, ReentersStandbyAfterTraffic)
{
    LinkFixture f;
    f.link.allowL0s().write(true);
    f.s.runUntil(1 * kUs);
    f.link.transfer(100 * kNs, nullptr);
    f.s.runAll();
    EXPECT_EQ(f.link.state(), LState::L0s);
    EXPECT_EQ(f.link.shallowWakes(), 1u);
}

} // namespace
} // namespace apc::io
