/**
 * @file
 * Unit tests for the statistics utilities (stats/).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include "stats/histogram.h"
#include "stats/rank.h"
#include "stats/residency.h"
#include "stats/summary.h"

namespace apc::stats {
namespace {

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MeanIsExact)
{
    Histogram h(1.0, 1e6, 32);
    h.record(10.0);
    h.record(20.0);
    h.record(30.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 10.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 30.0);
}

TEST(Histogram, QuantileWithinBinResolution)
{
    Histogram h(1.0, 1e6, 64);
    for (int i = 1; i <= 10000; ++i)
        h.record(static_cast<double>(i));
    // p50 ~ 5000, p99 ~ 9900; allow bin-resolution error (~4%).
    EXPECT_NEAR(h.quantile(0.5), 5000.0, 250.0);
    EXPECT_NEAR(h.quantile(0.99), 9900.0, 500.0);
}

TEST(Histogram, QuantileEdgesReturnExactMinMax)
{
    Histogram h(1.0, 1e6, 32);
    h.record(42.0);
    h.record(1234.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1234.0);
}

TEST(Histogram, UnderflowAndOverflowCounted)
{
    Histogram h(10.0, 100.0, 8);
    h.record(1.0);    // underflow
    h.record(1e9);    // overflow
    h.record(50.0);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, FractionBetween)
{
    Histogram h(0.1, 1e6, 64);
    for (int i = 0; i < 60; ++i)
        h.record(100.0); // in [20, 200)
    for (int i = 0; i < 40; ++i)
        h.record(1000.0); // outside
    EXPECT_NEAR(h.fractionBetween(20.0, 200.0), 0.60, 0.02);
    EXPECT_NEAR(h.fractionBetween(500.0, 2000.0), 0.40, 0.02);
    EXPECT_NEAR(h.fractionBetween(1.0, 5.0), 0.0, 1e-12);
}

TEST(Histogram, WeightedRecord)
{
    Histogram h(1.0, 1e6, 32);
    h.record(10.0, 3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 30.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h(1.0, 1e6, 32);
    h.record(5.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, NonPositiveGoesToUnderflowWithoutCrash)
{
    Histogram h(1.0, 1e6, 32);
    h.record(0.0);
    h.record(-5.0);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, MergePoolsSamples)
{
    Histogram a(1.0, 1e6, 64), b(1.0, 1e6, 64), ref(1.0, 1e6, 64);
    for (int i = 1; i <= 5000; ++i) {
        a.record(static_cast<double>(i));
        ref.record(static_cast<double>(i));
    }
    for (int i = 5001; i <= 10000; ++i) {
        b.record(static_cast<double>(i));
        ref.record(static_cast<double>(i));
    }
    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.count(), ref.count());
    EXPECT_DOUBLE_EQ(a.sum(), ref.sum());
    EXPECT_DOUBLE_EQ(a.minSample(), 1.0);
    EXPECT_DOUBLE_EQ(a.maxSample(), 10000.0);
    // Merged quantiles equal the pooled single-stream quantiles exactly
    // (same binning grid => identical bin counts).
    EXPECT_DOUBLE_EQ(a.quantile(0.5), ref.quantile(0.5));
    EXPECT_DOUBLE_EQ(a.quantile(0.99), ref.quantile(0.99));
}

TEST(Histogram, MergeIntoEmptyAndFromEmpty)
{
    Histogram a(1.0, 1e6, 32), b(1.0, 1e6, 32);
    b.record(7.0);
    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.minSample(), 7.0);
    Histogram empty(1.0, 1e6, 32);
    ASSERT_TRUE(a.merge(empty));
    EXPECT_EQ(a.count(), 1u);
}

TEST(Histogram, MergeBothEmptyStaysEmpty)
{
    Histogram a(1.0, 1e6, 32), b(1.0, 1e6, 32);
    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
    // Still usable afterwards.
    a.record(3.0);
    EXPECT_DOUBLE_EQ(a.minSample(), 3.0);
    EXPECT_DOUBLE_EQ(a.maxSample(), 3.0);
}

TEST(Histogram, QuantileOfIdenticalSamplesIsExact)
{
    // All mass in one bin: interpolation must clamp to the recorded
    // value, not report the bin's geometric interior.
    Histogram h(1.0, 1e6, 32);
    for (int i = 0; i < 1000; ++i)
        h.record(77.0);
    for (double q : {0.01, 0.25, 0.5, 0.75, 0.99})
        EXPECT_DOUBLE_EQ(h.quantile(q), 77.0) << q;
}

TEST(Histogram, QuantileAtBucketBoundaries)
{
    // Two samples in distinct bins: any interior quantile interpolates
    // within a matched bin and must stay inside [min, max] and on the
    // correct side of the bin split.
    Histogram h(1.0, 1e6, 8);
    h.record(10.0);
    h.record(1000.0);
    const double p25 = h.quantile(0.25);
    const double p75 = h.quantile(0.75);
    EXPECT_GE(p25, 10.0);
    EXPECT_LT(p25, 1000.0);
    EXPECT_GT(p75, 10.0);
    EXPECT_LE(p75, 1000.0);
    EXPECT_LE(p25, p75);
    // The cumulative boundary between the two samples: q just below
    // 0.5 resolves inside the first sample's bin (10 lives in
    // [10, 10^(9/8)) on this grid), just above inside the second's
    // ([1000, 10^(25/8))).
    EXPECT_LT(h.quantile(0.49), std::pow(10.0, 9.0 / 8.0));
    EXPECT_GE(h.quantile(0.51), 1000.0);
}

TEST(Histogram, ToCsvEmptyIsHeaderOnly)
{
    Histogram h(1.0, 1e6, 32);
    EXPECT_EQ(h.toCsv(), "bin_lower,bin_upper,count\n");
}

TEST(Histogram, ToCsvRoundTripPreservesBinContents)
{
    Histogram h(1.0, 1e4, 16);
    h.record(0.5);  // underflow
    h.record(5e6);  // overflow
    for (int i = 1; i <= 2000; ++i)
        h.record(static_cast<double>(i % 997) + 1.0);

    // Re-record every CSV row's geometric midpoint with its count into
    // a second histogram with identical binning (the midpoint is
    // robust against the lower edge rounding into the previous bin):
    // bin contents — and therefore counts and bin-resolution
    // quantiles — must survive.
    Histogram back(1.0, 1e4, 16);
    std::istringstream in(h.toCsv());
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // header
    EXPECT_EQ(line, "bin_lower,bin_upper,count");
    while (std::getline(in, line)) {
        double lo = 0, hi = 0;
        unsigned long long cnt = 0;
        ASSERT_EQ(std::sscanf(line.c_str(), "%lf,%lf,%llu", &lo, &hi,
                              &cnt),
                  3)
            << line;
        EXPECT_LE(lo, hi);
        back.record(lo > 0 ? std::sqrt(lo * hi) : 0.0, cnt);
    }
    ASSERT_EQ(back.count(), h.count());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        EXPECT_EQ(back.binCount(i), h.binCount(i)) << i;
    // Quantiles agree to within the interpolation inside one bin.
    for (double q : {0.5, 0.95, 0.99})
        EXPECT_NEAR(back.quantile(q), h.quantile(q),
                    h.quantile(q) * 0.16)
            << q;
}

TEST(Histogram, ToCsvOverflowRowUsesMaxSampleAsUpperEdge)
{
    Histogram h(1.0, 100.0, 8);
    h.record(5000.0);
    const std::string csv = h.toCsv();
    double lo = 0, hi = 0;
    unsigned long long cnt = 0;
    ASSERT_EQ(std::sscanf(csv.c_str(), "bin_lower,bin_upper,count\n"
                                       "%lf,%lf,%llu",
                          &lo, &hi, &cnt),
              3);
    EXPECT_DOUBLE_EQ(hi, 5000.0);
    EXPECT_EQ(cnt, 1u);
}

TEST(Histogram, NanSamplesAreRejectedAndCounted)
{
    Histogram h(1.0, 1e6, 32);
    h.record(10.0);
    h.record(std::nan(""));
    h.record(std::numeric_limits<double>::quiet_NaN(), 3);
    h.record(20.0);
    // NaNs poison nothing: count/sum/min/max/quantiles see only the
    // two real samples.
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.nanCount(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 30.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 10.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 20.0);
    EXPECT_EQ(h.binCount(0), 0u); // not silently bucketed as underflow
    // toCsv reports them in a trailing marker row.
    const std::string csv = h.toCsv();
    EXPECT_NE(csv.find("nan,nan,4\n"), std::string::npos) << csv;
}

TEST(Histogram, InfiniteSamplesAreRejectedAndCounted)
{
    // ±inf passes an isnan check but poisons sum/mean/min/max just the
    // same (one +inf makes mean() inf forever; +inf after -inf makes
    // sum_ NaN); record() rejects all non-finite samples.
    Histogram h(1.0, 1e6, 32);
    h.record(10.0);
    h.record(std::numeric_limits<double>::infinity());
    h.record(-std::numeric_limits<double>::infinity(), 2);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.nanCount(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 10.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 10.0);
    const std::string csv = h.toCsv();
    EXPECT_NE(csv.find("nan,nan,3\n"), std::string::npos) << csv;
}

TEST(Histogram, NanCountSurvivesMergeAndClear)
{
    Histogram a(1.0, 1e6, 32), b(1.0, 1e6, 32);
    a.record(std::nan(""));
    b.record(std::nan(""), 2);
    b.record(5.0);
    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.nanCount(), 3u);
    EXPECT_EQ(a.count(), 1u);
    // An all-NaN right-hand side still folds its rejection count.
    Histogram c(1.0, 1e6, 32);
    c.record(std::nan(""));
    ASSERT_TRUE(a.merge(c));
    EXPECT_EQ(a.nanCount(), 4u);
    a.clear();
    EXPECT_EQ(a.nanCount(), 0u);
    EXPECT_EQ(a.toCsv(), "bin_lower,bin_upper,count\n");
}

TEST(Histogram, MergeRejectsBinningMismatch)
{
    Histogram a(1.0, 1e6, 32), b(1.0, 1e6, 64), c(0.1, 1e6, 32);
    b.record(5.0);
    EXPECT_FALSE(a.merge(b));
    EXPECT_FALSE(a.merge(c));
    EXPECT_EQ(a.count(), 0u);
}

TEST(Summary, Empty)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MeanMinMax)
{
    Summary s;
    s.record(2.0);
    s.record(4.0);
    s.record(9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Summary, VarianceMatchesClosedForm)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.record(v);
    EXPECT_NEAR(s.variance(), 2.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Summary, ClearResets)
{
    Summary s;
    s.record(7.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Summary, MergeMatchesSingleStream)
{
    Summary a, b, ref;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i * 0.1) * 10.0 + 20.0;
        (i < 40 ? a : b).record(v);
        ref.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), ref.count());
    EXPECT_NEAR(a.mean(), ref.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), ref.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), ref.min());
    EXPECT_DOUBLE_EQ(a.max(), ref.max());
    EXPECT_NEAR(a.sum(), ref.sum(), 1e-9);
}

TEST(Summary, MergeWithEmptySides)
{
    Summary a, b;
    b.record(3.0);
    b.record(5.0);
    a.merge(b); // empty <- full
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    Summary empty;
    a.merge(empty); // full <- empty
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Summary, MergeBothEmptyStaysEmptyAndUsable)
{
    Summary a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    a.record(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 9.0);
    EXPECT_DOUBLE_EQ(a.min(), 9.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Residency, AccumulatesTimePerState)
{
    ResidencyCounter<3> r(0, 0);
    r.transitionTo(1, 100);
    r.transitionTo(2, 250);
    r.transitionTo(0, 400);
    EXPECT_EQ(r.timeIn(0, 500), 100 + 100);
    EXPECT_EQ(r.timeIn(1, 500), 150);
    EXPECT_EQ(r.timeIn(2, 500), 150);
}

TEST(Residency, FractionsSumToOne)
{
    ResidencyCounter<3> r(0, 0);
    r.transitionTo(1, 123);
    r.transitionTo(2, 457);
    const sim::Tick now = 1000;
    const double total = r.residency(0, now) + r.residency(1, now) +
        r.residency(2, now);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Residency, SelfTransitionIsNoop)
{
    ResidencyCounter<2> r(0, 0);
    r.transitionTo(0, 50);
    EXPECT_EQ(r.enterCount(0), 0u);
    EXPECT_EQ(r.timeIn(0, 100), 100);
}

TEST(Residency, EnterCounts)
{
    ResidencyCounter<2> r(0, 0);
    r.transitionTo(1, 10);
    r.transitionTo(0, 20);
    r.transitionTo(1, 30);
    EXPECT_EQ(r.enterCount(1), 2u);
    EXPECT_EQ(r.enterCount(0), 1u);
}

TEST(Residency, ResetKeepsCurrentState)
{
    ResidencyCounter<2> r(0, 0);
    r.transitionTo(1, 100);
    r.reset(200);
    EXPECT_EQ(r.state(), 1u);
    EXPECT_EQ(r.timeIn(1, 300), 100);
    EXPECT_EQ(r.timeIn(0, 300), 0);
    EXPECT_DOUBLE_EQ(r.residency(1, 300), 1.0);
}

TEST(Residency, ZeroWindowIsZero)
{
    ResidencyCounter<2> r(0, 100);
    EXPECT_DOUBLE_EQ(r.residency(0, 100), 0.0);
}

TEST(Rank, ExactRankCountMatchesCeiling)
{
    EXPECT_EQ(exactRankCount(100, 1, 2), 50u);
    EXPECT_EQ(exactRankCount(100, 19, 20), 95u);
    EXPECT_EQ(exactRankCount(100, 99, 100), 99u);
    // ceil(100 * 0.999) = 100: p999 of 100 samples is the maximum.
    EXPECT_EQ(exactRankCount(100, 999, 1000), 100u);
    EXPECT_EQ(exactRankCount(10000, 999, 1000), 9990u);
    // Any nonzero quantile of one sample is that sample.
    EXPECT_EQ(exactRankCount(1, 1, 2), 1u);
    EXPECT_EQ(exactRankCount(0, 1, 2), 0u);
}

TEST(Rank, BandEdgesPartitionEveryPopulation)
{
    for (std::size_t n : {0u, 1u, 2u, 99u, 100u, 1000u, 12345u}) {
        const auto edges = percentileBandEdges(n);
        EXPECT_EQ(edges.front(), 0u) << n;
        EXPECT_EQ(edges.back(), n) << n;
        for (std::size_t b = 0; b + 1 < edges.size(); ++b)
            EXPECT_LE(edges[b], edges[b + 1]) << n << " band " << b;
    }
    const auto e = percentileBandEdges(100000);
    EXPECT_EQ(e[1], 50000u);
    EXPECT_EQ(e[2], 95000u);
    EXPECT_EQ(e[3], 99000u);
    EXPECT_EQ(e[4], 99900u);
}

TEST(Rank, BandLabelsAreStable)
{
    ASSERT_EQ(kNumPercentileBands, 5u);
    EXPECT_STREQ(percentileBandLabel(0), "p50");
    EXPECT_STREQ(percentileBandLabel(1), "p95");
    EXPECT_STREQ(percentileBandLabel(2), "p99");
    EXPECT_STREQ(percentileBandLabel(3), "p999");
    EXPECT_STREQ(percentileBandLabel(4), "p100");
}

TEST(Rank, QuantileSortedPicksExactRanks)
{
    std::vector<int> v(1000);
    for (int i = 0; i < 1000; ++i)
        v[static_cast<std::size_t>(i)] = i + 1; // 1..1000, sorted
    EXPECT_EQ(quantileSorted(v, 1, 2), 500);
    EXPECT_EQ(quantileSorted(v, 99, 100), 990);
    EXPECT_EQ(quantileSorted(v, 999, 1000), 999);
    EXPECT_EQ(quantileSorted(v, 1, 1), 1000); // p100 = max
    EXPECT_EQ(quantileSorted(v, 0, 1), 1);    // p0 clamps to min
    EXPECT_EQ(quantileSorted(std::vector<int>{}, 1, 2), 0);
    EXPECT_DOUBLE_EQ(quantileSorted(std::vector<double>{7.5}, 99, 100),
                     7.5);
}

} // namespace
} // namespace apc::stats
