/**
 * @file
 * Unit tests for the fleet simulation subsystem (fleet/).
 */

#include <gtest/gtest.h>

#include <random>

#include "fleet/dispatch.h"
#include "fleet/fleet_sim.h"
#include "fleet/thread_pool.h"
#include "fleet/traffic.h"

namespace apc::fleet {
namespace {

using sim::kMs;
using sim::kUs;

// ---------------------------------------------------------------- dispatch

TEST(Dispatch, RoundRobinCycles)
{
    RoundRobinDispatcher rr(4);
    rr.refresh({5, 0, 9, 2}); // load is irrelevant to round-robin
    EXPECT_EQ(rr.pick(), 0u);
    EXPECT_EQ(rr.pick(), 1u);
    EXPECT_EQ(rr.pick(), 2u);
    EXPECT_EQ(rr.pick(), 3u);
    EXPECT_EQ(rr.pick(), 0u);
}

TEST(Dispatch, RoundRobinSkipsExcluded)
{
    RoundRobinDispatcher rr(3);
    rr.exclude(0);
    EXPECT_EQ(rr.pick(), 1u); // cursor moved past the excluded 0
    rr.clearExclusions();
    rr.exclude(1);
    rr.exclude(2);
    EXPECT_EQ(rr.pick(), 0u);
    rr.clearExclusions();
}

TEST(Dispatch, LeastOutstandingPicksShortestQueue)
{
    LeastOutstandingDispatcher lo(3);
    lo.refresh({3, 1, 2});
    EXPECT_EQ(lo.pick(), 1u);
    // Ties break towards the lowest index.
    lo.refresh({2, 1, 1});
    EXPECT_EQ(lo.pick(), 1u);
    lo.refresh({1, 1, 1});
    lo.exclude(0);
    EXPECT_EQ(lo.pick(), 1u);
    lo.clearExclusions();
}

TEST(Dispatch, LeastOutstandingSeesOwnDispatches)
{
    LeastOutstandingDispatcher lo(3);
    lo.refresh({1, 0, 2});
    EXPECT_EQ(lo.pick(), 1u);
    lo.onDispatch(1); // in-epoch dispatch: 1 now ties with 0 at 1
    EXPECT_EQ(lo.pick(), 0u); // leftmost of the tied 1s
    lo.onDispatch(0); // counts {2, 1, 2}
    EXPECT_EQ(lo.pick(), 1u);
}

TEST(Dispatch, ExclusionParksAndRestoresTheCount)
{
    LeastOutstandingDispatcher lo(3);
    lo.refresh({0, 5, 5});
    EXPECT_EQ(lo.pick(), 0u);
    lo.onDispatch(0);
    lo.exclude(0);
    // Dispatches while excluded still land on the saved count.
    lo.onDispatch(0);
    EXPECT_EQ(lo.pick(), 1u); // 0 is hidden
    lo.clearExclusions();
    lo.refresh({0, 0, 0});
    EXPECT_EQ(lo.pick(), 0u); // restored and usable again
}

TEST(Dispatch, PackingFillsInOrderThenSpills)
{
    PackingDispatcher pk(3, 2);
    pk.refresh({0, 0, 0});
    EXPECT_EQ(pk.pick(), 0u);
    pk.refresh({1, 0, 0});
    EXPECT_EQ(pk.pick(), 0u);
    pk.refresh({2, 0, 0});
    EXPECT_EQ(pk.pick(), 1u); // server 0 at budget
    pk.refresh({2, 2, 0});
    EXPECT_EQ(pk.pick(), 2u);
    // Everyone at budget: joins the shortest queue instead.
    pk.refresh({4, 2, 3});
    EXPECT_EQ(pk.pick(), 1u);
}

// ---------------------------------------------------------------- MinIndex

TEST(MinIndexTest, ArgminAndFirstUnderMatchLinearScan)
{
    // Property check against the reference scans the old dispatchers
    // used, under random churn.
    std::mt19937_64 gen(1234);
    for (std::size_t n : {1ul, 2ul, 3ul, 17ul, 64ul, 100ul}) {
        std::vector<std::uint32_t> v(n);
        for (auto &x : v)
            x = static_cast<std::uint32_t>(gen() % 7);
        MinIndex idx;
        idx.assign(v);
        for (int step = 0; step < 300; ++step) {
            // Reference: leftmost min and leftmost under bound.
            std::size_t best = 0;
            for (std::size_t i = 1; i < n; ++i)
                if (v[i] < v[best])
                    best = i;
            ASSERT_EQ(idx.argmin(), best);
            const auto bound = static_cast<std::uint32_t>(gen() % 8);
            std::size_t first = MinIndex::npos;
            for (std::size_t i = 0; i < n; ++i)
                if (v[i] < bound) {
                    first = i;
                    break;
                }
            ASSERT_EQ(idx.firstUnder(bound), first);
            // Churn one slot.
            const std::size_t i = gen() % n;
            const auto nv = static_cast<std::uint32_t>(gen() % 7);
            v[i] = nv;
            idx.set(i, nv);
        }
    }
}

// ----------------------------------------------------------------- traffic

TEST(Traffic, DiurnalProfileInterpolatesAndWraps)
{
    const auto p = DiurnalProfile::dayNight(24 * kMs, 0.5, 1.5);
    EXPECT_NEAR(p.multiplierAt(0), 0.5, 1e-9);
    EXPECT_NEAR(p.multiplierAt(12 * kMs), 1.5, 1e-9);
    EXPECT_NEAR(p.multiplierAt(6 * kMs), 1.0, 1e-6);
    // Wraps: one full period later looks the same.
    EXPECT_NEAR(p.multiplierAt(24 * kMs + 6 * kMs),
                p.multiplierAt(6 * kMs), 1e-6);
    const DiurnalProfile flat;
    EXPECT_DOUBLE_EQ(flat.multiplierAt(123 * kMs), 1.0);
}

TEST(Traffic, EpochArrivalsMatchConfiguredRate)
{
    TrafficConfig tc;
    tc.arrivalKind = workload::ArrivalKind::Poisson;
    tc.qps = 50000.0;
    TrafficSource src(tc, 7);
    std::uint64_t n = 0;
    const sim::Tick epoch = 1 * kMs;
    for (sim::Tick t = 0; t < 2 * sim::kSec; t += epoch)
        n += src.epoch(t, t + epoch).size();
    EXPECT_NEAR(static_cast<double>(n) / 2.0, 50000.0, 1500.0);
}

TEST(Traffic, DiurnalModulatesRate)
{
    TrafficConfig tc;
    tc.qps = 20000.0;
    tc.diurnal = DiurnalProfile::dayNight(200 * kMs, 0.4, 1.6);
    TrafficSource src(tc, 11);
    // Count arrivals in the trough vs the peak quarter of one period.
    std::uint64_t trough = 0, peak = 0;
    for (sim::Tick t = 0; t < 200 * kMs; t += kMs) {
        const auto evs = src.epoch(t, t + kMs);
        if (t < 50 * kMs)
            trough += evs.size();
        else if (t >= 75 * kMs && t < 125 * kMs)
            peak += evs.size();
    }
    EXPECT_GT(static_cast<double>(peak),
              1.5 * static_cast<double>(trough));
}

TEST(Traffic, CdfServiceDemandsAndFanoutFlags)
{
    TrafficConfig tc;
    tc.qps = 30000.0;
    tc.serviceCdf = workload::CdfTable({{0, 0}, {20, 1}}); // µs, mean 10
    tc.fanout = {0.5, 4};
    TrafficSource src(tc, 13);
    EXPECT_EQ(src.meanServiceTicks(), 10 * kUs);
    std::uint64_t fanned = 0, total = 0;
    double service_sum = 0;
    for (sim::Tick t = 0; t < 500 * kMs; t += kMs)
        for (const auto &ev : src.epoch(t, t + kMs)) {
            ++total;
            service_sum += sim::toMicros(ev.service);
            EXPECT_GE(ev.service, 0);
            EXPECT_LE(ev.service, 20 * kUs);
            if (ev.fanout > 1) {
                EXPECT_EQ(ev.fanout, 4);
                ++fanned;
            }
        }
    ASSERT_GT(total, 0u);
    EXPECT_NEAR(service_sum / static_cast<double>(total), 10.0, 0.5);
    EXPECT_NEAR(static_cast<double>(fanned) / static_cast<double>(total),
                0.5, 0.02);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, InlineAndThreadedBothCoverAllIndices)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<int> hits(257, 0);
        for (int round = 0; round < 3; ++round)
            pool.parallelFor(hits.size(), [&](std::size_t i) {
                ++hits[i]; // distinct index => no race
            });
        for (int h : hits)
            EXPECT_EQ(h, 3);
    }
}

// --------------------------------------------------------------- fleet sim

FleetConfig
smallFleet(DispatchKind kind, double util, std::uint64_t seed = 42)
{
    FleetConfig fc;
    fc.numServers = 4;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::mysqlOltp(0);
    fc.dispatch = kind;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        util, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 10000.0;
    fc.warmup = 20 * kMs;
    fc.duration = 200 * kMs;
    fc.seed = seed;
    return fc;
}

TEST(Fleet, RequestConservation)
{
    auto fc = smallFleet(DispatchKind::LeastOutstanding, 0.2);
    FleetSim fleet(fc);
    const auto rep = fleet.run();

    ASSERT_GT(rep.dispatched, 100u);
    // Every routed replica is accounted for: accepted by some server,
    // and either completed or still in flight at the drain deadline.
    EXPECT_EQ(rep.replicasDispatched, rep.serversAccepted);
    EXPECT_EQ(rep.replicasDispatched,
              rep.serversCompleted + rep.serversOutstanding);
    // The drain window is generous: everything finishes.
    EXPECT_EQ(rep.inFlightAtEnd, 0u);
    EXPECT_EQ(rep.dispatched, rep.completed);
}

TEST(Fleet, IdenticalSeedsIdenticalReports)
{
    const auto fc1 = smallFleet(DispatchKind::PowerAwarePacking, 0.15, 7);
    const auto fc2 = smallFleet(DispatchKind::PowerAwarePacking, 0.15, 7);
    FleetSim a(fc1), b(fc2);
    const auto ra = a.run();
    const auto rb = b.run();

    EXPECT_EQ(ra.dispatched, rb.dispatched);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.replicasDispatched, rb.replicasDispatched);
    EXPECT_EQ(ra.sloViolations, rb.sloViolations);
    EXPECT_DOUBLE_EQ(ra.pkgPowerW, rb.pkgPowerW);
    EXPECT_DOUBLE_EQ(ra.dramPowerW, rb.dramPowerW);
    EXPECT_DOUBLE_EQ(ra.avgLatencyUs, rb.avgLatencyUs);
    EXPECT_DOUBLE_EQ(ra.p99LatencyUs, rb.p99LatencyUs);
    EXPECT_DOUBLE_EQ(ra.joulesPerRequest, rb.joulesPerRequest);
    EXPECT_DOUBLE_EQ(ra.avgUtilization, rb.avgUtilization);
}

TEST(Fleet, ThreadCountDoesNotChangeResults)
{
    auto fc1 = smallFleet(DispatchKind::LeastOutstanding, 0.15, 9);
    fc1.threads = 1;
    auto fc2 = smallFleet(DispatchKind::LeastOutstanding, 0.15, 9);
    fc2.threads = 4;
    FleetSim a(fc1), b(fc2);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.pkgPowerW, rb.pkgPowerW);
    EXPECT_DOUBLE_EQ(ra.p99LatencyUs, rb.p99LatencyUs);
}

TEST(Fleet, PackingBeatsRoundRobinPowerAtLowLoad)
{
    // ≤30% aggregate load: packing concentrates work so drained
    // servers reach deep package idle; round-robin keeps every server
    // lukewarm. Packing must save fleet power without busting the SLO.
    const auto rr =
        FleetSim(smallFleet(DispatchKind::RoundRobin, 0.25)).run();
    const auto pk =
        FleetSim(smallFleet(DispatchKind::PowerAwarePacking, 0.25)).run();

    ASSERT_GT(rr.completed, 500u);
    ASSERT_GT(pk.completed, 500u);
    EXPECT_LT(pk.totalPowerW(), rr.totalPowerW());
    EXPECT_LT(pk.joulesPerRequest, rr.joulesPerRequest);
    EXPECT_LT(pk.p99LatencyUs, pk.sloUs);
}

TEST(Fleet, FanoutAmplifiesTailLatency)
{
    auto base = smallFleet(DispatchKind::LeastOutstanding, 0.15, 21);
    base.numServers = 8;
    base.traffic.qps = base.workload.qpsForUtilization(0.15, 80);
    base.duration = 150 * kMs;

    auto fanned = base;
    fanned.traffic.fanout = {1.0, 8}; // every request fans to 8 replicas
    // Same *request* rate; each request now costs 8 replicas, so scale
    // the rate down to keep aggregate work comparable.
    fanned.traffic.qps = base.traffic.qps / 8.0;

    const auto rs = FleetSim(base).run();
    const auto rf = FleetSim(fanned).run();

    ASSERT_GT(rs.completed, 300u);
    ASSERT_GT(rf.completed, 50u);
    // Incast: completion gated by the slowest of 8 replicas.
    EXPECT_GE(rf.p99LatencyUs, rs.p99LatencyUs);
    EXPECT_GT(rf.avgLatencyUs, rs.avgLatencyUs);
}

TEST(Fleet, PerServerBreakdownIsConsistent)
{
    const auto rep =
        FleetSim(smallFleet(DispatchKind::RoundRobin, 0.1)).run();
    ASSERT_EQ(rep.perServer.size(), rep.numServers);
    double pkg = 0;
    std::uint64_t reqs = 0, lat_samples = 0;
    for (const auto &r : rep.perServer) {
        pkg += r.pkgPowerW;
        reqs += r.requests;
        lat_samples += r.latencyHistUs.count();
    }
    EXPECT_DOUBLE_EQ(pkg, rep.pkgPowerW);
    // Per-server stats cover only the measurement window (warmup
    // traffic must not leak in), and the merged replica-level
    // distribution pools exactly the per-server samples.
    EXPECT_EQ(reqs, lat_samples);
    EXPECT_EQ(rep.replicaLatencyUs.count(), lat_samples);
    EXPECT_EQ(rep.replicaLatencySummary.count(), lat_samples);
    EXPECT_LE(reqs, rep.serversCompleted);
    EXPECT_GT(rep.idlePeriodsUs.count(), 0u);
    // Residency fractions stay fractions after averaging.
    double total = 0;
    for (double f : rep.pkgResidency)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

} // namespace
} // namespace apc::fleet
