/**
 * @file
 * Unit tests for the fleet simulation subsystem (fleet/).
 */

#include <gtest/gtest.h>

#include "fleet/dispatch.h"
#include "fleet/fleet_sim.h"
#include "fleet/thread_pool.h"
#include "fleet/traffic.h"

namespace apc::fleet {
namespace {

using sim::kMs;
using sim::kUs;

// ---------------------------------------------------------------- dispatch

TEST(Dispatch, RoundRobinCycles)
{
    RoundRobinDispatcher rr;
    const std::vector<std::uint32_t> q{5, 0, 9, 2};
    const std::vector<bool> none;
    EXPECT_EQ(rr.pick(q, none), 0u);
    EXPECT_EQ(rr.pick(q, none), 1u);
    EXPECT_EQ(rr.pick(q, none), 2u);
    EXPECT_EQ(rr.pick(q, none), 3u);
    EXPECT_EQ(rr.pick(q, none), 0u);
}

TEST(Dispatch, RoundRobinSkipsBanned)
{
    RoundRobinDispatcher rr;
    const std::vector<std::uint32_t> q{0, 0, 0};
    EXPECT_EQ(rr.pick(q, {true, false, false}), 1u);
    EXPECT_EQ(rr.pick(q, {false, true, true}), 0u);
}

TEST(Dispatch, LeastOutstandingPicksShortestQueue)
{
    LeastOutstandingDispatcher lo;
    const std::vector<bool> none;
    EXPECT_EQ(lo.pick({3, 1, 2}, none), 1u);
    // Ties break towards the lowest index.
    EXPECT_EQ(lo.pick({2, 1, 1}, none), 1u);
    EXPECT_EQ(lo.pick({1, 1, 1}, {true, false, false}), 1u);
}

TEST(Dispatch, PackingFillsInOrderThenSpills)
{
    PackingDispatcher pk(2);
    const std::vector<bool> none;
    EXPECT_EQ(pk.pick({0, 0, 0}, none), 0u);
    EXPECT_EQ(pk.pick({1, 0, 0}, none), 0u);
    EXPECT_EQ(pk.pick({2, 0, 0}, none), 1u); // server 0 at budget
    EXPECT_EQ(pk.pick({2, 2, 0}, none), 2u);
    // Everyone at budget: joins the shortest queue instead.
    EXPECT_EQ(pk.pick({4, 2, 3}, none), 1u);
}

// ----------------------------------------------------------------- traffic

TEST(Traffic, DiurnalProfileInterpolatesAndWraps)
{
    const auto p = DiurnalProfile::dayNight(24 * kMs, 0.5, 1.5);
    EXPECT_NEAR(p.multiplierAt(0), 0.5, 1e-9);
    EXPECT_NEAR(p.multiplierAt(12 * kMs), 1.5, 1e-9);
    EXPECT_NEAR(p.multiplierAt(6 * kMs), 1.0, 1e-6);
    // Wraps: one full period later looks the same.
    EXPECT_NEAR(p.multiplierAt(24 * kMs + 6 * kMs),
                p.multiplierAt(6 * kMs), 1e-6);
    const DiurnalProfile flat;
    EXPECT_DOUBLE_EQ(flat.multiplierAt(123 * kMs), 1.0);
}

TEST(Traffic, EpochArrivalsMatchConfiguredRate)
{
    TrafficConfig tc;
    tc.arrivalKind = workload::ArrivalKind::Poisson;
    tc.qps = 50000.0;
    TrafficSource src(tc, 7);
    std::uint64_t n = 0;
    const sim::Tick epoch = 1 * kMs;
    for (sim::Tick t = 0; t < 2 * sim::kSec; t += epoch)
        n += src.epoch(t, t + epoch).size();
    EXPECT_NEAR(static_cast<double>(n) / 2.0, 50000.0, 1500.0);
}

TEST(Traffic, DiurnalModulatesRate)
{
    TrafficConfig tc;
    tc.qps = 20000.0;
    tc.diurnal = DiurnalProfile::dayNight(200 * kMs, 0.4, 1.6);
    TrafficSource src(tc, 11);
    // Count arrivals in the trough vs the peak quarter of one period.
    std::uint64_t trough = 0, peak = 0;
    for (sim::Tick t = 0; t < 200 * kMs; t += kMs) {
        const auto evs = src.epoch(t, t + kMs);
        if (t < 50 * kMs)
            trough += evs.size();
        else if (t >= 75 * kMs && t < 125 * kMs)
            peak += evs.size();
    }
    EXPECT_GT(static_cast<double>(peak),
              1.5 * static_cast<double>(trough));
}

TEST(Traffic, CdfServiceDemandsAndFanoutFlags)
{
    TrafficConfig tc;
    tc.qps = 30000.0;
    tc.serviceCdf = workload::CdfTable({{0, 0}, {20, 1}}); // µs, mean 10
    tc.fanout = {0.5, 4};
    TrafficSource src(tc, 13);
    EXPECT_EQ(src.meanServiceTicks(), 10 * kUs);
    std::uint64_t fanned = 0, total = 0;
    double service_sum = 0;
    for (sim::Tick t = 0; t < 500 * kMs; t += kMs)
        for (const auto &ev : src.epoch(t, t + kMs)) {
            ++total;
            service_sum += sim::toMicros(ev.service);
            EXPECT_GE(ev.service, 0);
            EXPECT_LE(ev.service, 20 * kUs);
            if (ev.fanout > 1) {
                EXPECT_EQ(ev.fanout, 4);
                ++fanned;
            }
        }
    ASSERT_GT(total, 0u);
    EXPECT_NEAR(service_sum / static_cast<double>(total), 10.0, 0.5);
    EXPECT_NEAR(static_cast<double>(fanned) / static_cast<double>(total),
                0.5, 0.02);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, InlineAndThreadedBothCoverAllIndices)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<int> hits(257, 0);
        for (int round = 0; round < 3; ++round)
            pool.parallelFor(hits.size(), [&](std::size_t i) {
                ++hits[i]; // distinct index => no race
            });
        for (int h : hits)
            EXPECT_EQ(h, 3);
    }
}

// --------------------------------------------------------------- fleet sim

FleetConfig
smallFleet(DispatchKind kind, double util, std::uint64_t seed = 42)
{
    FleetConfig fc;
    fc.numServers = 4;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::mysqlOltp(0);
    fc.dispatch = kind;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        util, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 10000.0;
    fc.warmup = 20 * kMs;
    fc.duration = 200 * kMs;
    fc.seed = seed;
    return fc;
}

TEST(Fleet, RequestConservation)
{
    auto fc = smallFleet(DispatchKind::LeastOutstanding, 0.2);
    FleetSim fleet(fc);
    const auto rep = fleet.run();

    ASSERT_GT(rep.dispatched, 100u);
    // Every routed replica is accounted for: accepted by some server,
    // and either completed or still in flight at the drain deadline.
    EXPECT_EQ(rep.replicasDispatched, rep.serversAccepted);
    EXPECT_EQ(rep.replicasDispatched,
              rep.serversCompleted + rep.serversOutstanding);
    // The drain window is generous: everything finishes.
    EXPECT_EQ(rep.inFlightAtEnd, 0u);
    EXPECT_EQ(rep.dispatched, rep.completed);
}

TEST(Fleet, IdenticalSeedsIdenticalReports)
{
    const auto fc1 = smallFleet(DispatchKind::PowerAwarePacking, 0.15, 7);
    const auto fc2 = smallFleet(DispatchKind::PowerAwarePacking, 0.15, 7);
    FleetSim a(fc1), b(fc2);
    const auto ra = a.run();
    const auto rb = b.run();

    EXPECT_EQ(ra.dispatched, rb.dispatched);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.replicasDispatched, rb.replicasDispatched);
    EXPECT_EQ(ra.sloViolations, rb.sloViolations);
    EXPECT_DOUBLE_EQ(ra.pkgPowerW, rb.pkgPowerW);
    EXPECT_DOUBLE_EQ(ra.dramPowerW, rb.dramPowerW);
    EXPECT_DOUBLE_EQ(ra.avgLatencyUs, rb.avgLatencyUs);
    EXPECT_DOUBLE_EQ(ra.p99LatencyUs, rb.p99LatencyUs);
    EXPECT_DOUBLE_EQ(ra.joulesPerRequest, rb.joulesPerRequest);
    EXPECT_DOUBLE_EQ(ra.avgUtilization, rb.avgUtilization);
}

TEST(Fleet, ThreadCountDoesNotChangeResults)
{
    auto fc1 = smallFleet(DispatchKind::LeastOutstanding, 0.15, 9);
    fc1.threads = 1;
    auto fc2 = smallFleet(DispatchKind::LeastOutstanding, 0.15, 9);
    fc2.threads = 4;
    FleetSim a(fc1), b(fc2);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.pkgPowerW, rb.pkgPowerW);
    EXPECT_DOUBLE_EQ(ra.p99LatencyUs, rb.p99LatencyUs);
}

TEST(Fleet, PackingBeatsRoundRobinPowerAtLowLoad)
{
    // ≤30% aggregate load: packing concentrates work so drained
    // servers reach deep package idle; round-robin keeps every server
    // lukewarm. Packing must save fleet power without busting the SLO.
    const auto rr =
        FleetSim(smallFleet(DispatchKind::RoundRobin, 0.25)).run();
    const auto pk =
        FleetSim(smallFleet(DispatchKind::PowerAwarePacking, 0.25)).run();

    ASSERT_GT(rr.completed, 500u);
    ASSERT_GT(pk.completed, 500u);
    EXPECT_LT(pk.totalPowerW(), rr.totalPowerW());
    EXPECT_LT(pk.joulesPerRequest, rr.joulesPerRequest);
    EXPECT_LT(pk.p99LatencyUs, pk.sloUs);
}

TEST(Fleet, FanoutAmplifiesTailLatency)
{
    auto base = smallFleet(DispatchKind::LeastOutstanding, 0.15, 21);
    base.numServers = 8;
    base.traffic.qps = base.workload.qpsForUtilization(0.15, 80);
    base.duration = 150 * kMs;

    auto fanned = base;
    fanned.traffic.fanout = {1.0, 8}; // every request fans to 8 replicas
    // Same *request* rate; each request now costs 8 replicas, so scale
    // the rate down to keep aggregate work comparable.
    fanned.traffic.qps = base.traffic.qps / 8.0;

    const auto rs = FleetSim(base).run();
    const auto rf = FleetSim(fanned).run();

    ASSERT_GT(rs.completed, 300u);
    ASSERT_GT(rf.completed, 50u);
    // Incast: completion gated by the slowest of 8 replicas.
    EXPECT_GE(rf.p99LatencyUs, rs.p99LatencyUs);
    EXPECT_GT(rf.avgLatencyUs, rs.avgLatencyUs);
}

TEST(Fleet, PerServerBreakdownIsConsistent)
{
    const auto rep =
        FleetSim(smallFleet(DispatchKind::RoundRobin, 0.1)).run();
    ASSERT_EQ(rep.perServer.size(), rep.numServers);
    double pkg = 0;
    std::uint64_t reqs = 0, lat_samples = 0;
    for (const auto &r : rep.perServer) {
        pkg += r.pkgPowerW;
        reqs += r.requests;
        lat_samples += r.latencyHistUs.count();
    }
    EXPECT_DOUBLE_EQ(pkg, rep.pkgPowerW);
    // Per-server stats cover only the measurement window (warmup
    // traffic must not leak in), and the merged replica-level
    // distribution pools exactly the per-server samples.
    EXPECT_EQ(reqs, lat_samples);
    EXPECT_EQ(rep.replicaLatencyUs.count(), lat_samples);
    EXPECT_EQ(rep.replicaLatencySummary.count(), lat_samples);
    EXPECT_LE(reqs, rep.serversCompleted);
    EXPECT_GT(rep.idlePeriodsUs.count(), 0u);
    // Residency fractions stay fractions after averaging.
    double total = 0;
    for (double f : rep.pkgResidency)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

} // namespace
} // namespace apc::fleet
