/**
 * @file
 * Parameterized configuration sweeps:
 *  - all 16 APC ablation-flag combinations must reach a stable low-power
 *    state and recover on wake (no flow deadlocks in any variant),
 *  - every IO-link preset obeys the LTSSM invariants,
 *  - the GPMU PC6 flow stays >50 µs across firmware-latency settings,
 *  - histogram quantile error stays within bin resolution across
 *    binning choices.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "soc/soc.h"
#include "stats/histogram.h"

namespace apc {
namespace {

using sim::kMs;
using sim::kNs;
using sim::kUs;

// --- APC ablation combination sweep -----------------------------------

class ApcFlagSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ApcFlagSweep, ReachesPc1aAndRecovers)
{
    const int bits = GetParam();
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    cfg.apc.useClmr = bits & 1;
    cfg.apc.useShallowLinks = bits & 2;
    cfg.apc.useCkeOff = bits & 4;
    cfg.apc.keepPllsOn = bits & 8;
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    // Deep variants (L1 links, self-refresh) take µs to settle.
    s.runUntil(500 * kUs);
    ASSERT_EQ(soc.apmu()->state(), core::Apmu::State::Pc1a)
        << "flags=" << bits;
    // Every variant must save power relative to PC0idle...
    EXPECT_LT(soc.meter().planePower(power::Plane::Package), 43.0);

    // ...and must recover to a serviceable system on an IO wake.
    bool delivered = false;
    soc.nic().transfer(100 * kNs, [&] { delivered = true; });
    s.runUntil(s.now() + 1 * kMs);
    EXPECT_TRUE(delivered) << "flags=" << bits;

    // And on a core wake.
    bool woke = false;
    soc.core(0).requestWake([&] { woke = true; });
    s.runUntil(s.now() + 1 * kMs);
    EXPECT_TRUE(woke) << "flags=" << bits;
    EXPECT_TRUE(soc.fabricReady()) << "flags=" << bits;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, ApcFlagSweep, ::testing::Range(0, 16));

// --- IO link preset sweep ----------------------------------------------

class LinkPresetSweep
    : public ::testing::TestWithParam<io::IoLinkConfig>
{};

TEST_P(LinkPresetSweep, LtssmInvariantsHold)
{
    const auto cfg = GetParam();
    sim::Simulation s;
    power::EnergyMeter m(s);
    io::IoLink link(s, m, cfg);

    // Power ordering: L0 > shallow > L1.
    EXPECT_GT(cfg.powerL0, cfg.powerShallow);
    EXPECT_GT(cfg.powerShallow, cfg.powerL1);
    // Entry window is 1/4 of the exit latency (L0S_ENTRY_LAT=1).
    EXPECT_EQ(cfg.entryWindow(), cfg.shallowExitLatency / 4);

    // Autonomous entry under AllowL0s, wake restores L0 and the
    // payload is only delivered at L0.
    link.allowL0s().write(true);
    s.runUntil(1 * kUs);
    EXPECT_EQ(link.state(), cfg.shallowState) << cfg.name;
    sim::Tick done_at = -1;
    link.transfer(0, [&] { done_at = s.now(); });
    s.runAll();
    EXPECT_EQ(done_at, 1 * kUs + cfg.shallowExitLatency) << cfg.name;
    EXPECT_EQ(link.state(), cfg.shallowState); // re-entered after idle
}

INSTANTIATE_TEST_SUITE_P(
    Presets, LinkPresetSweep,
    ::testing::Values(io::IoLinkConfig::pcie(0), io::IoLinkConfig::pcie(1),
                      io::IoLinkConfig::pcie(2), io::IoLinkConfig::dmi(),
                      io::IoLinkConfig::upi(0), io::IoLinkConfig::upi(1)),
    [](const auto &pinfo) { return pinfo.param.name; });

// --- GPMU firmware-latency sweep ----------------------------------------

struct GpmuTiming
{
    const char *name;
    double scale;
};

class GpmuTimingSweep : public ::testing::TestWithParam<GpmuTiming>
{};

TEST_P(GpmuTimingSweep, Pc6FlowCompletesAndStaysSlow)
{
    const auto p = GetParam();
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cdeep);
    cfg.ladder.cc1ToCc1e = 10 * kUs;
    cfg.ladder.cc1eToCc6 = 50 * kUs;
    auto scale = [&](sim::Tick &t) {
        t = static_cast<sim::Tick>(static_cast<double>(t) * p.scale);
    };
    scale(cfg.gpmu.ioL1Msg);
    scale(cfg.gpmu.dramSrMsg);
    scale(cfg.gpmu.clkPllMsg);
    scale(cfg.gpmu.vRetMsg);
    scale(cfg.gpmu.vNomMsg);
    scale(cfg.gpmu.ungateMsg);
    scale(cfg.gpmu.dramExitMsg);
    scale(cfg.gpmu.ioExitMsg);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cdeep);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(3 * kMs);
    ASSERT_EQ(soc.gpmu().state(), uncore::Gpmu::State::Pc6) << p.name;
    soc.core(0).requestWake(nullptr);
    s.runUntil(6 * kMs);
    ASSERT_EQ(soc.gpmu().state(), uncore::Gpmu::State::Pc0) << p.name;
    const double total_us = soc.gpmu().entryLatencyUs().mean() +
        soc.gpmu().exitLatencyUs().mean();
    // Even the fastest plausible firmware keeps PC6 latency far above
    // PC1A's 200 ns — the structural gap the paper exploits.
    EXPECT_GT(total_us, 20.0) << p.name;
    if (p.scale >= 1.0) {
        EXPECT_GT(total_us, 50.0) << p.name; // Table 1 bound
    }
}

INSTANTIATE_TEST_SUITE_P(Timing, GpmuTimingSweep,
                         ::testing::Values(GpmuTiming{"fast", 0.5},
                                           GpmuTiming{"nominal", 1.0},
                                           GpmuTiming{"slow", 2.0}),
                         [](const auto &pinfo) {
                             return std::string(pinfo.param.name);
                         });

// --- Histogram binning sweep ---------------------------------------------

class HistogramBinSweep : public ::testing::TestWithParam<int>
{};

TEST_P(HistogramBinSweep, QuantileErrorWithinBinResolution)
{
    const int bins = GetParam();
    stats::Histogram h(1.0, 1e6, bins);
    sim::Rng rng(3);
    std::vector<double> exact;
    for (int i = 0; i < 50000; ++i) {
        const double v = rng.lognormalWithMean(100.0, 0.7);
        h.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    // Relative bin width = 10^(1/bins) - 1.
    const double tol = 2.0 * (std::pow(10.0, 1.0 / bins) - 1.0) + 0.01;
    for (const double q : {0.5, 0.9, 0.99}) {
        const double truth =
            exact[static_cast<std::size_t>(q * (exact.size() - 1))];
        EXPECT_NEAR(h.quantile(q) / truth, 1.0, tol)
            << "q=" << q << " bins=" << bins;
    }
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramBinSweep,
                         ::testing::Values(16, 32, 64, 128));

} // namespace
} // namespace apc
