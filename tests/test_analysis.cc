/**
 * @file
 * Unit tests for the analysis module: Eq. 1 power model, the die-area
 * model (paper Sec. 5), and the table printer.
 */

#include <gtest/gtest.h>

#include "analysis/area_model.h"
#include "analysis/eq1_model.h"
#include "analysis/paper_reference.h"
#include "analysis/table_printer.h"

namespace apc::analysis {
namespace {

TEST(Eq1, BaselineIsWeightedSum)
{
    Eq1Inputs in;
    in.rPc0 = 0.3;
    in.rPc0idle = 0.7;
    in.pPc0 = 60.0;
    in.pPc0idle = 49.5;
    in.pPc1a = 29.1;
    EXPECT_NEAR(eq1BaselinePower(in), 0.3 * 60 + 0.7 * 49.5, 1e-12);
}

TEST(Eq1, PaperIdleCase)
{
    // Paper Sec. 2: idle server -> 1 - P_PC1A/P_PC0idle ~ 41%.
    const double s = eq1IdleSavings(49.5, 29.1);
    EXPECT_NEAR(s, paper::kIdleSavings, 0.005);
}

TEST(Eq1, PaperLoadPoints)
{
    // Paper: 57% all-CC1 at 5% load -> ~23% savings; 39% -> ~17%.
    Eq1Inputs in;
    in.pPc0idle = 49.5;
    in.pPc1a = 29.1;

    in.rPc0idle = 0.57;
    in.rPc0 = 0.43;
    in.pPc0 = 55.0; // low-load active power
    EXPECT_NEAR(eq1Savings(in), paper::kSavingsAt5pct, 0.015);

    in.rPc0idle = 0.39;
    in.rPc0 = 0.61;
    EXPECT_NEAR(eq1Savings(in), paper::kSavingsAt10pct, 0.02);
}

TEST(Eq1, SavingsZeroWhenPc1aEqualsIdle)
{
    Eq1Inputs in;
    in.rPc0 = 0.5;
    in.rPc0idle = 0.5;
    in.pPc0 = 60;
    in.pPc0idle = 49.5;
    in.pPc1a = 49.5;
    EXPECT_DOUBLE_EQ(eq1Savings(in), 0.0);
}

TEST(Eq1, PowerWithPc1aConsistent)
{
    Eq1Inputs in;
    in.rPc0 = 0.4;
    in.rPc0idle = 0.6;
    in.pPc0 = 60;
    in.pPc0idle = 49.5;
    in.pPc1a = 29.1;
    const double expected =
        eq1BaselinePower(in) * (1.0 - eq1Savings(in));
    EXPECT_NEAR(eq1PowerWithPc1a(in), expected, 1e-12);
    // Converting idle time to PC1A time directly:
    const double direct = in.rPc0 * in.pPc0 + in.rPc0idle * in.pPc1a;
    EXPECT_NEAR(eq1PowerWithPc1a(in), direct, 1e-9);
}

TEST(Eq1, DegenerateInputsAreSafe)
{
    Eq1Inputs zero;
    EXPECT_DOUBLE_EQ(eq1Savings(zero), 0.0);
    EXPECT_DOUBLE_EQ(eq1IdleSavings(0.0, 10.0), 0.0);
}

TEST(AreaModel, PaperBoundsHold)
{
    const auto b = computeAreaOverhead(AreaParams{});
    EXPECT_LE(b.iosmWires, paper::kAreaIosmWires + 1e-6);
    // The paper prints "<0.14%", rounded from 3 * 0.06/128 = 0.1406%.
    EXPECT_LE(b.clmrWires, paper::kAreaClmrWires + 1e-5);
    EXPECT_LE(b.incc1Wires, paper::kAreaIncc1Wires + 1e-5);
    EXPECT_LE(b.apmuLogic, paper::kAreaApmu + 1e-9);
    EXPECT_LE(b.total(), paper::kAreaTotal);
    EXPECT_GT(b.total(), 0.005); // sanity: not trivially zero
}

TEST(AreaModel, WiderInterconnectShrinksWireCost)
{
    AreaParams narrow;
    AreaParams wide = narrow;
    wide.ioInterconnectBits = 512;
    const auto b_narrow = computeAreaOverhead(narrow);
    const auto b_wide = computeAreaOverhead(wide);
    EXPECT_NEAR(b_wide.iosmWires, b_narrow.iosmWires / 4.0, 1e-9);
    EXPECT_LT(b_wide.total(), b_narrow.total());
    // Logic terms are width-independent.
    EXPECT_DOUBLE_EQ(b_wide.apmuLogic, b_narrow.apmuLogic);
}

TEST(AreaModel, TotalIsSumOfParts)
{
    const auto b = computeAreaOverhead(AreaParams{});
    EXPECT_NEAR(b.total(),
                b.iosmWires + b.iosmControllerLogic + b.clmrWires +
                    b.clmrFcm + b.apmuLogic + b.incc1Wires,
                1e-15);
}

TEST(TablePrinter, Formatters)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::percent(0.413), "41.3%");
    EXPECT_EQ(TablePrinter::watts(27.47, 1), "27.5W");
}

TEST(TablePrinter, PrintsAlignedColumns)
{
    TablePrinter t("demo");
    t.header({"A", "LongHeader"});
    t.row({"x", "1"});
    t.row({"longer", "2"});
    // Render into a memstream and check alignment survived.
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    ASSERT_NE(f, nullptr);
    t.print(f);
    std::fclose(f);
    std::string out(buf, len);
    free(buf);
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(PaperReference, InternalConsistency)
{
    // Table 1 totals used throughout the benches.
    EXPECT_NEAR(paper::kPc0idleSocW + paper::kPc0idleDramW, 49.5, 1e-9);
    EXPECT_NEAR(paper::kPc1aSocW + paper::kPc1aDramW, 29.1, 1e-9);
    // Sec. 5.4 composition: PC6 + deltas = PC1A (paper rounds 27.5).
    EXPECT_NEAR(11.9 + paper::kPcoresDiffW + paper::kPiosDiffW +
                    paper::kPpllsDiffW,
                paper::kPc1aSocW, 0.1);
    // Idle savings claim follows from Table 1.
    EXPECT_NEAR(1.0 - 29.1 / 49.5, paper::kIdleSavings, 0.005);
}

} // namespace
} // namespace apc::analysis
