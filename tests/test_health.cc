/**
 * @file
 * Fleet health tests: SLO burn-rate alert lifecycle (multi-window
 * gating, fire/resolve edges, power SLI from cap-counter deltas), the
 * invariant auditor (clean pass, every conservation break flagged,
 * monotonicity tracking, failFast abort, retention bounds), and the
 * fleet-in-the-loop contracts — zero behavioral footprint (reports
 * byte-identical with health on or off at any thread count and shard
 * layout), a thread-count-invariant alert log, a clean audit over a
 * fabric+NIC+budget run, and a breaker trip that fires a burn-rate
 * alert.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/slo.h"

namespace apc {
namespace {

using sim::kMs;
using sim::kUs;

// ------------------------------------------------- SLO monitor (unit)

/** Scripted single-policy config: latency budget 0.1, fast pair
 *  8 ms / 2 ms @ burn 5, slow pair inert. */
obs::SloConfig
scriptedSlo()
{
    obs::SloConfig c;
    c.latencyThresholdUs = 100.0;
    c.latencyObjective = 0.9;
    c.fast = {8 * kMs, 2 * kMs, 5.0, "page"};
    c.slow = {8 * kMs, 2 * kMs, 1e9, "ticket"};
    return c;
}

/** One 1 ms epoch ending at @p k ms: @p good fast samples (50 µs) and
 *  @p bad slow ones (500 µs). */
void
feedEpoch(obs::SloMonitor &m, int k, int good, int bad)
{
    for (int i = 0; i < good; ++i)
        m.recordLatency(50.0);
    for (int i = 0; i < bad; ++i)
        m.recordLatency(500.0);
    m.onEpoch((k - 1) * kMs, k * kMs);
}

TEST(SloMonitor, ThresholdInheritsFleetSloOnlyWhenUnset)
{
    obs::SloConfig explicit_cfg;
    explicit_cfg.latencyThresholdUs = 250.0;
    EXPECT_DOUBLE_EQ(
        obs::SloMonitor(explicit_cfg, 777.0).config().latencyThresholdUs,
        250.0);
    EXPECT_DOUBLE_EQ(
        obs::SloMonitor(obs::SloConfig{}, 777.0)
            .config()
            .latencyThresholdUs,
        777.0);
}

TEST(SloMonitor, FiresOnlyWhenBothWindowsBurnAndResolvesOnEither)
{
    obs::SloMonitor m(scriptedSlo(), 0.0);

    // 4 healthy epochs, then the SLI goes fully bad.
    for (int k = 1; k <= 4; ++k)
        feedEpoch(m, k, 10, 0);
    feedEpoch(m, 5, 0, 10);

    // Epoch 5: the 2 ms window already burns at 5 (10 bad / 20), but
    // the 8 ms window sits at 2 (10 bad / 50) — multi-window gating
    // keeps a short spike from paging.
    EXPECT_EQ(m.alertsFired(), 0u);
    EXPECT_FALSE(m.anyActive());

    // Sustained badness: the long window crosses 5 at epoch 8
    // (40 bad / 80 over the full 8 ms).
    for (int k = 6; k <= 8; ++k)
        feedEpoch(m, k, 0, 10);
    ASSERT_EQ(m.alertsFired(), 1u);
    EXPECT_TRUE(m.anyActive());
    ASSERT_EQ(m.alerts().size(), 1u);
    const obs::AlertEvent &fire = m.alerts()[0];
    EXPECT_EQ(fire.at, 8 * kMs);
    EXPECT_TRUE(fire.fire);
    EXPECT_EQ(fire.sli, obs::Sli::Latency);
    EXPECT_EQ(fire.policy, 0);
    EXPECT_NEAR(fire.burnLong, 5.0, 1e-9);
    EXPECT_NEAR(fire.burnShort, 10.0, 1e-9);

    // One healthy epoch: the short window (epochs 8+9) still burns at
    // 5 and the long window at 5 — the alert holds.
    feedEpoch(m, 9, 10, 0);
    EXPECT_TRUE(m.anyActive());
    EXPECT_EQ(m.alertsResolved(), 0u);

    // Second healthy epoch: the short window goes clean, and either
    // window dropping below threshold resolves (the conjunction that
    // fired no longer holds).
    feedEpoch(m, 10, 10, 0);
    EXPECT_FALSE(m.anyActive());
    ASSERT_EQ(m.alertsResolved(), 1u);
    ASSERT_EQ(m.alerts().size(), 2u);
    EXPECT_FALSE(m.alerts()[1].fire);
    EXPECT_EQ(m.alerts()[1].at, 10 * kMs);

    // Violation time covers the two epochs the alert was active for.
    EXPECT_EQ(m.timeInViolation(), 2 * kMs);
    // Worst sustained burn = max over evaluations of min(long, short).
    EXPECT_NEAR(m.worstBurn(), 5.0, 1e-9);
    EXPECT_EQ(m.worstBurnSli(), obs::Sli::Latency);
    // Rolling exact-rank p99 saw the 500 µs regime.
    EXPECT_DOUBLE_EQ(m.worstWindowP99Us(), 500.0);
}

TEST(SloMonitor, PowerSliFollowsCapCounterDeltas)
{
    obs::SloConfig c;
    c.latencyThresholdUs = 100.0;
    c.powerObjective = 0.9;
    c.fast = {4 * kMs, 1 * kMs, 5.0, "page"};
    c.slow = {4 * kMs, 1 * kMs, 1e9, "ticket"};
    obs::SloMonitor m(c, 0.0);

    // Counters are cumulative; the monitor consumes epoch deltas.
    m.setCapCounters(100, 0);
    m.onEpoch(0, 1 * kMs);
    EXPECT_EQ(m.alertsFired(), 0u);

    m.setCapCounters(200, 100); // 100 new samples, all violations
    m.onEpoch(1 * kMs, 2 * kMs);
    ASSERT_EQ(m.alertsFired(), 1u);
    EXPECT_EQ(m.alerts()[0].sli, obs::Sli::Power);
    EXPECT_EQ(m.worstBurnSli(), obs::Sli::Power);

    // finish() closes still-active alerts as resolves at run end.
    m.finish(3 * kMs);
    EXPECT_EQ(m.alertsResolved(), 1u);
    EXPECT_FALSE(m.anyActive());
    ASSERT_EQ(m.alerts().size(), 2u);
    EXPECT_FALSE(m.alerts()[1].fire);
    EXPECT_EQ(m.alerts()[1].at, 3 * kMs);
}

TEST(SloMonitor, LatencyPercentileBufferIsBoundedAndCounted)
{
    obs::SloConfig c = scriptedSlo();
    c.maxSamplesPerEpoch = 4;
    obs::SloMonitor m(c, 0.0);
    for (int i = 0; i < 10; ++i)
        m.recordLatency(50.0);
    m.onEpoch(0, 1 * kMs);
    EXPECT_EQ(m.latencySamplesDropped(), 6u);
    // Dropped samples still counted good/bad: nothing burned.
    EXPECT_DOUBLE_EQ(m.worstBurn(), 0.0);
}

TEST(SloMonitor, IdleFleetIsFullyAvailableNotNaN)
{
    obs::SloMonitor m(scriptedSlo(), 0.0);

    // Before any epoch is sealed the window is empty: availability is
    // a healthy 1.0, never 0/0.
    EXPECT_DOUBLE_EQ(
        m.windowGoodFraction(obs::Sli::Availability, 8 * kMs), 1.0);

    // Zero-traffic epochs: zero requests means zero requests failed.
    for (int k = 1; k <= 4; ++k)
        m.onEpoch((k - 1) * kMs, k * kMs);
    const double f =
        m.windowGoodFraction(obs::Sli::Availability, 8 * kMs);
    EXPECT_FALSE(std::isnan(f));
    EXPECT_DOUBLE_EQ(f, 1.0);
    EXPECT_DOUBLE_EQ(
        m.windowGoodFraction(obs::Sli::Latency, 2 * kMs), 1.0);
    EXPECT_EQ(m.alertsFired(), 0u);
    EXPECT_DOUBLE_EQ(m.worstBurn(), 0.0);

    // The guard never masks real damage: one lost request in an
    // otherwise-idle window burns it.
    m.recordLost();
    m.onEpoch(4 * kMs, 5 * kMs);
    EXPECT_LT(m.windowGoodFraction(obs::Sli::Availability, 2 * kMs),
              1.0);
}

// ----------------------------------------------------- auditor (unit)

/** A snapshot every check passes on. */
obs::AuditSnapshot
cleanSnapshot()
{
    obs::AuditSnapshot s;
    s.now = 10 * kMs;
    s.flightsCreated = 100;
    s.flightsFinished = 90;
    s.flightsInFlight = 10;
    s.dispatched = 80;
    s.completed = 70;
    s.lost = 5;
    s.measuredInFlight = 5;
    s.servers = {{200, 180}, {150, 150}};
    s.links = {{50, 45, 5}, {30, 30, 0}};
    // 12.5 J at a 1/16 J unit: counter 200 brackets exactly.
    s.energy = {{0, 0, 12.5, 12.5, 200, 0.0625}};
    s.budgetEnabled = true;
    s.floorW = 20.0;
    s.deadbandW = 1.0;
    s.numServers = 2;
    s.anyEmergencyEver = false;
    s.newEpochs = {{5 * kMs, 100.0, 90.0, false}};
    s.lastBudgetW = 100.0;
    s.serverLimitW = {50.0, 40.0};
    return s;
}

TEST(Auditor, CleanSnapshotPasses)
{
    obs::Auditor a(obs::AuditConfig{});
    a.audit(cleanSnapshot());
    EXPECT_EQ(a.audits(), 1u);
    EXPECT_EQ(a.violationCount(), 0u);
    // flights + requests + 2 servers + 2 links + 1 plane + 1 budget
    // epoch + limit check.
    EXPECT_EQ(a.checksRun(), 9u);
}

TEST(Auditor, EveryConservationBreakIsFlagged)
{
    struct Case
    {
        const char *what;
        void (*corrupt)(obs::AuditSnapshot &);
        obs::AuditCheck expect;
    };
    const std::vector<Case> cases = {
        {"flight leak",
         [](obs::AuditSnapshot &s) { s.flightsInFlight = 9; },
         obs::AuditCheck::FleetFlights},
        {"request leak",
         [](obs::AuditSnapshot &s) { s.completed = 69; },
         obs::AuditCheck::FleetRequests},
        {"completed > accepted",
         [](obs::AuditSnapshot &s) { s.servers[1].completed = 151; },
         obs::AuditCheck::ServerCounters},
        {"link leak",
         [](obs::AuditSnapshot &s) { s.links[0].delivered = 44; },
         obs::AuditCheck::LinkConservation},
        {"counter outside bracket",
         [](obs::AuditSnapshot &s) { s.energy[0].counter = 210; },
         obs::AuditCheck::Energy},
        {"plane != load sum",
         [](obs::AuditSnapshot &s) { s.energy[0].loadSumJ = 12.0; },
         obs::AuditCheck::Energy},
        {"grant over budget",
         [](obs::AuditSnapshot &s) {
             s.newEpochs[0].allocatedW = 101.0;
         },
         obs::AuditCheck::Budget},
        {"limits over budget+deadband",
         [](obs::AuditSnapshot &s) { s.serverLimitW[0] = 90.0; },
         obs::AuditCheck::Budget},
        {"limit below floor",
         [](obs::AuditSnapshot &s) { s.serverLimitW[1] = 10.0; },
         obs::AuditCheck::Budget},
    };
    for (const Case &c : cases) {
        obs::Auditor a(obs::AuditConfig{});
        obs::AuditSnapshot s = cleanSnapshot();
        c.corrupt(s);
        a.audit(s);
        EXPECT_EQ(a.violationCount(), 1u) << c.what;
        EXPECT_EQ(a.violations(c.expect), 1u) << c.what;
        ASSERT_EQ(a.log().size(), 1u) << c.what;
        EXPECT_EQ(a.log()[0].check, c.expect) << c.what;
        EXPECT_FALSE(a.log()[0].detail.empty()) << c.what;
    }
}

TEST(Auditor, MonotonicityTrackedAcrossAudits)
{
    obs::Auditor a(obs::AuditConfig{});
    a.audit(cleanSnapshot());
    ASSERT_EQ(a.violationCount(), 0u);

    // Second snapshot keeps every identity internally consistent but
    // rolls counters backwards — only cross-audit tracking catches it.
    obs::AuditSnapshot s = cleanSnapshot();
    s.flightsFinished = 80;
    s.flightsInFlight = 20;
    s.servers[0] = {190, 170};
    s.energy[0] = {0, 0, 10.0, 10.0, 160, 0.0625};
    a.audit(s);
    EXPECT_EQ(a.violations(obs::AuditCheck::FleetFlights), 1u);
    EXPECT_EQ(a.violations(obs::AuditCheck::ServerCounters), 1u);
    EXPECT_EQ(a.violations(obs::AuditCheck::Energy), 1u);
    EXPECT_EQ(a.violationCount(), 3u);
}

TEST(Auditor, CadenceRespectsInterval)
{
    obs::AuditConfig cfg;
    cfg.interval = 5 * kMs;
    obs::Auditor a(cfg);
    EXPECT_TRUE(a.due(0)); // never audited yet
    a.audit(cleanSnapshot()); // snapshot.now = 10 ms
    EXPECT_FALSE(a.due(14 * kMs));
    EXPECT_TRUE(a.due(15 * kMs));
    // interval 0 audits at every boundary.
    obs::Auditor every{obs::AuditConfig{}};
    every.audit(cleanSnapshot());
    EXPECT_TRUE(every.due(10 * kMs));
}

TEST(Auditor, ViolationLogIsBoundedButCountsAreNot)
{
    obs::Auditor a(obs::AuditConfig{});
    obs::AuditSnapshot s = cleanSnapshot();
    s.links.assign(100, {10, 5, 4}); // every link leaks one packet
    a.audit(s);
    EXPECT_EQ(a.violationCount(), 100u);
    EXPECT_EQ(a.violations(obs::AuditCheck::LinkConservation), 100u);
    EXPECT_EQ(a.log().size(), obs::Auditor::kMaxKept);
}

TEST(AuditorDeathTest, FailFastAbortsWithDiagnosticDump)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    obs::AuditConfig cfg;
    cfg.failFast = true;
    obs::AuditSnapshot s = cleanSnapshot();
    s.flightsInFlight = 9;
    EXPECT_DEATH(
        {
            obs::Auditor a(cfg);
            a.audit(s);
        },
        "failFast diagnostic dump");
}

// ------------------------------------------- fleet-in-the-loop health

std::string
alertsCsv(const obs::HealthReport &r)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    EXPECT_TRUE(r.writeAlertsCsv(f));
    std::fclose(f);
    std::string out(buf, len);
    free(buf);
    return out;
}

std::string
alertsJson(const obs::HealthReport &r)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    EXPECT_TRUE(r.writeAlertsJson(f));
    std::fclose(f);
    std::string out(buf, len);
    free(buf);
    return out;
}

/** Fabric + NIC + rack budget fleet — every audit family has state to
 *  check — with health optionally on. */
fleet::FleetConfig
healthFleet(unsigned threads, std::size_t shard_size, bool health_on)
{
    fleet::FleetConfig fc;
    fc.numServers = 8;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.20, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 10000.0;
    fc.warmup = 10 * kMs;
    fc.duration = 60 * kMs;
    fc.seed = 21;
    fc.fabric.enabled = true;
    // Tight edge buffers: drops, retransmits and losses feed the
    // availability SLI and the link-conservation audit.
    fc.fabric.edge.queuePackets = 3;
    fc.fabric.core.queuePackets = 24;
    fc.fabric.rto = 300 * kUs;
    fc.fabric.maxTries = 2;
    fc.nic.enabled = true;
    fc.nic.rxUsecs = 20 * kUs;
    fc.budget.enabled = true;
    fc.budget.oversubscription = 1.3;
    fc.cap.actuator = cap::CapActuator::Hybrid;
    fc.threads = threads;
    fc.shardSize = shard_size;
    fc.health.enabled = health_on;
    return fc;
}

TEST(HealthFleet, ZeroFootprintAndThreadInvariantAlertLog)
{
    // Health-off baseline: every monitored run must match its bytes.
    const std::string reference =
        fleet::FleetSim(healthFleet(1, 0, false)).run().csvRow();

    struct Point
    {
        unsigned threads;
        std::size_t shardSize;
    };
    std::string ref_csv, ref_json;
    bool first = true;
    for (const Point &p :
         std::vector<Point>{{1, 0}, {2, 7}, {8, 64}}) {
        fleet::FleetSim fleet(healthFleet(p.threads, p.shardSize, true));
        const fleet::FleetReport rep = fleet.run();
        ASSERT_GT(rep.dispatched, 1000u);
        EXPECT_EQ(rep.csvRow(), reference)
            << "threads=" << p.threads << " shardSize=" << p.shardSize;

        ASSERT_TRUE(rep.health.enabled);
        // The auditor ran at every epoch boundary and found the
        // engine's books in order.
        EXPECT_GT(rep.health.audits, 100u);
        EXPECT_GT(rep.health.auditChecks, rep.health.audits);
        EXPECT_EQ(rep.health.auditViolations, 0u);

        // The alert log (and its exports) are invariant across thread
        // counts and shard layouts.
        const std::string csv = alertsCsv(rep.health);
        const std::string json = alertsJson(rep.health);
        if (first) {
            ref_csv = csv;
            ref_json = json;
            first = false;
        } else {
            EXPECT_EQ(csv, ref_csv) << "threads=" << p.threads;
            EXPECT_EQ(json, ref_json) << "threads=" << p.threads;
        }
    }
}

/** Rack-budget fleet with a mid-run breaker trip derating the budget
 *  far below demand: SLIs burn through their windows during the trip. */
fleet::FleetConfig
trippedFleet(unsigned threads, bool trip)
{
    fleet::FleetConfig fc;
    fc.numServers = 4;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.workload.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.20, static_cast<int>(fc.numServers) *
            soc::SkxConfig::forPolicy(fc.policy).numCores);
    fc.sloUs = 10000.0;
    fc.warmup = 40 * kMs;
    fc.duration = 220 * kMs;
    fc.seed = 5;
    fc.budget.enabled = true;
    fc.budget.oversubscription = 1.0;
    fc.cap.actuator = cap::CapActuator::IdleInject;
    // Short grace: violations count soon after the emergency retarget.
    fc.cap.settleTime = 2 * kMs;
    fc.budget.breaker.enabled = trip;
    fc.budget.breaker.at = 120 * kMs;
    fc.budget.breaker.duration = 80 * kMs;
    fc.budget.breaker.factor = 0.35;
    fc.threads = threads;
    fc.health.enabled = true;
    // Tail regressions under emergency throttling, not outright SLO
    // misses, are what the on-call should see first.
    fc.health.slo.latencyThresholdUs = 2000.0;
    return fc;
}

TEST(HealthFleet, BreakerTripFiresBurnRateAlert)
{
    // Without the trip the fleet is healthy: no alert fires.
    const fleet::FleetReport calm =
        fleet::FleetSim(trippedFleet(1, false)).run();
    ASSERT_TRUE(calm.health.enabled);
    EXPECT_EQ(calm.health.alertsFired, 0u);
    EXPECT_EQ(calm.health.timeInViolation, 0);

    fleet::FleetSim fleet(trippedFleet(1, true));
    const fleet::FleetReport rep = fleet.run();
    ASSERT_TRUE(rep.health.enabled);
    ASSERT_GE(rep.health.alertsFired, 1u);
    // finish() guarantees a resolve edge for every fire.
    EXPECT_EQ(rep.health.alertsResolved, rep.health.alertsFired);
    EXPECT_GT(rep.health.timeInViolation, 0);
    // A fired policy means both its windows sustained at least the
    // slow-burn threshold.
    EXPECT_GE(rep.health.worstBurn, rep.health.slo.slow.threshold);
    // The first fire lands inside the trip, not before it.
    bool saw_fire = false;
    for (const obs::AlertEvent &ev : rep.health.alerts) {
        if (!ev.fire)
            continue;
        saw_fire = true;
        EXPECT_GE(ev.at, 120 * kMs);
        break;
    }
    EXPECT_TRUE(saw_fire);
    EXPECT_EQ(rep.health.auditViolations, 0u);

    // The alert log is thread-count invariant even through the trip.
    const fleet::FleetReport rep4 =
        fleet::FleetSim(trippedFleet(4, true)).run();
    EXPECT_EQ(alertsCsv(rep4.health), alertsCsv(rep.health));

    // Export shape: CSV header and schema_versioned JSON.
    const std::string csv = alertsCsv(rep.health);
    EXPECT_EQ(csv.compare(0,
                          std::string("t_us,sli,policy,severity,kind,"
                                      "burn_long,burn_short,"
                                      "window_p99_us")
                              .size(),
                          "t_us,sli,policy,severity,kind,burn_long,"
                          "burn_short,window_p99_us"),
              0);
    EXPECT_NE(csv.find(",fire,"), std::string::npos);
    const std::string json = alertsJson(rep.health);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"policies\": ["), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"fire\""), std::string::npos);
    EXPECT_NE(json.find("\"audit\": {"), std::string::npos);

    // File exports through the fleet facade.
    const std::string path = "/tmp/apc_test_health_alerts.json";
    ASSERT_TRUE(fleet.writeAlertsJson(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string out;
    char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(out, json);
}

} // namespace
} // namespace apc
