/**
 * @file
 * Fault injection and graceful degradation (fault/ + the fleet's
 * recovery path): counter-based substream determinism, FaultPlan
 * schedule invariance across epoch slicings, server crash/drain/
 * restart lifecycle semantics, and the full churn scenario — crash +
 * drain + flap under client failover — byte-identical across thread
 * counts and shard layouts with the conservation auditor watching.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fleet/fleet_sim.h"
#include "obs/audit.h"
#include "server/server_sim.h"

namespace apc {
namespace {

using sim::kMs;
using sim::kUs;

// ------------------------------------------- counter-based substreams

TEST(Substream, DrawsArePureFunctionsOfTheKey)
{
    const std::uint64_t a = fault::substream(42, 3, 1, 7);
    EXPECT_EQ(a, fault::substream(42, 3, 1, 7));
    // Any key component moves the stream.
    EXPECT_NE(a, fault::substream(43, 3, 1, 7));
    EXPECT_NE(a, fault::substream(42, 4, 1, 7));
    EXPECT_NE(a, fault::substream(42, 3, 2, 7));
    EXPECT_NE(a, fault::substream(42, 3, 1, 8));
}

TEST(Substream, U01AndExpStayInRange)
{
    for (std::uint64_t c = 0; c < 1000; ++c) {
        const double u = fault::substreamU01(7, 1, 2, c);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_GE(fault::substreamExp(7, 1, 2, c, 1e6), 1);
    }
    // Degenerate mean still never returns a zero-length gap.
    EXPECT_GE(fault::substreamExp(7, 1, 2, 0, 0.0), 1);
}

TEST(Backoff, DelayIsDeterministicCappedAndJittered)
{
    fault::RecoveryConfig rc;
    rc.backoffBase = 200 * kUs;
    rc.backoffFactor = 2.0;
    rc.backoffCap = 2 * kMs;
    rc.jitterFrac = 0.25;

    for (int attempt = 0; attempt < 8; ++attempt) {
        const sim::Tick d = fault::backoffDelay(rc, 99, 1234, attempt);
        // Re-evaluating the same (seed, id, attempt) is free of state.
        EXPECT_EQ(d, fault::backoffDelay(rc, 99, 1234, attempt));
        double nominal = static_cast<double>(rc.backoffBase);
        for (int k = 0; k < attempt; ++k)
            nominal *= rc.backoffFactor;
        if (nominal > static_cast<double>(rc.backoffCap))
            nominal = static_cast<double>(rc.backoffCap);
        EXPECT_GE(d, static_cast<sim::Tick>(nominal * 0.74));
        EXPECT_LE(d, static_cast<sim::Tick>(nominal * 1.26));
        EXPECT_GE(d, 1);
    }
    // Distinct requests jitter independently.
    bool any_diff = false;
    for (std::uint64_t id = 0; id < 16 && !any_diff; ++id)
        any_diff = fault::backoffDelay(rc, 99, id, 1) !=
                   fault::backoffDelay(rc, 99, id + 16, 1);
    EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------ fault plans

fault::FaultPlanConfig
hazardPlan()
{
    fault::FaultPlanConfig fc;
    fc.enabled = true;
    fc.crash.ratePerSec = 40.0;
    fc.crash.mttr = 5 * kMs;
    fc.flap.ratePerSec = 25.0;
    fc.flap.mttr = 2 * kMs;
    fc.scripted = {
        {30 * kMs, 10 * kMs, fault::FaultKind::ServerDrain, 1},
        {5 * kMs, 3 * kMs, fault::FaultKind::ServerCrash, 0},
        {700 * kMs, 1 * kMs, fault::FaultKind::LinkFlap,
         fault::kCoreLinkEntity},
    };
    return fc;
}

std::vector<fault::FaultEvent>
enumeratePlan(fault::FaultPlan &plan, sim::Tick horizon, sim::Tick step)
{
    std::vector<fault::FaultEvent> all, e;
    for (sim::Tick t = 0; t < horizon; t += step) {
        const sim::Tick to = std::min(t + step, horizon);
        plan.epoch(t, to, e);
        for (const fault::FaultEvent &ev : e) {
            // Epoch contract: only events inside [t, to), in order.
            EXPECT_GE(ev.at, t);
            EXPECT_LT(ev.at, to);
        }
        for (std::size_t i = 1; i < e.size(); ++i)
            EXPECT_TRUE(!fault::faultBefore(e[i], e[i - 1]));
        all.insert(all.end(), e.begin(), e.end());
    }
    return all;
}

bool
sameEvents(const std::vector<fault::FaultEvent> &a,
           const std::vector<fault::FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].at != b[i].at || a[i].duration != b[i].duration ||
            a[i].kind != b[i].kind || a[i].entity != b[i].entity)
            return false;
    return true;
}

TEST(FaultPlan, EpochSlicingDoesNotChangeTheSchedule)
{
    const sim::Tick horizon = 1000 * kMs;
    fault::FaultPlan whole(hazardPlan(), 11, 4);
    fault::FaultPlan fine(hazardPlan(), 11, 4);
    fault::FaultPlan odd(hazardPlan(), 11, 4);

    const auto a = enumeratePlan(whole, horizon, horizon);
    const auto b = enumeratePlan(fine, horizon, 1 * kMs);
    const auto c = enumeratePlan(odd, horizon, 7 * kMs + 13);

    ASSERT_GT(a.size(), 100u); // the hazards actually produced events
    EXPECT_TRUE(sameEvents(a, b));
    EXPECT_TRUE(sameEvents(a, c));
}

TEST(FaultPlan, SeedSelectsTheSchedule)
{
    const sim::Tick horizon = 500 * kMs;
    fault::FaultPlan p1(hazardPlan(), 11, 4);
    fault::FaultPlan p2(hazardPlan(), 12, 4);
    const auto a = enumeratePlan(p1, horizon, horizon);
    const auto b = enumeratePlan(p2, horizon, horizon);
    ASSERT_GT(a.size(), 50u);
    EXPECT_FALSE(sameEvents(a, b));
}

TEST(FaultPlan, ScriptedEventsFireExactlyOnce)
{
    fault::FaultPlan plan(hazardPlan(), 3, 4);
    const auto all = enumeratePlan(plan, 1000 * kMs, 3 * kMs);
    int drains = 0, core_flaps = 0;
    for (const fault::FaultEvent &ev : all) {
        drains += ev.kind == fault::FaultKind::ServerDrain ? 1 : 0;
        core_flaps +=
            ev.entity == fault::kCoreLinkEntity ? 1 : 0;
    }
    // Drain has no hazard configured, so the one scripted drain (and
    // the one scripted core blackout) appear exactly once.
    EXPECT_EQ(drains, 1);
    EXPECT_EQ(core_flaps, 1);
}

TEST(FaultPlan, RenewalProcessNeverOverlapsOutages)
{
    fault::FaultPlanConfig fc;
    fc.enabled = true;
    fc.crash.ratePerSec = 200.0; // dense stream to stress the spacing
    fc.crash.mttr = 4 * kMs;
    fault::FaultPlan plan(fc, 5, 3);
    const auto all = enumeratePlan(plan, 2000 * kMs, 2000 * kMs);
    ASSERT_GT(all.size(), 200u);
    std::vector<sim::Tick> last(3, -1);
    for (const fault::FaultEvent &ev : all) {
        ASSERT_LT(ev.entity, 3u);
        if (last[ev.entity] >= 0) {
            // The next failure draws *after* the previous outage
            // window closed: an entity cannot fail while Down.
            EXPECT_GE(ev.at, last[ev.entity] + fc.crash.mttr);
        }
        last[ev.entity] = ev.at;
    }
}

// -------------------------------------------- server fault lifecycle

server::ServerSim
drivenServer()
{
    server::ServerConfig sc;
    sc.policy = soc::PackagePolicy::Cpc1a;
    sc.workload = workload::WorkloadConfig::memcachedEtc(0);
    sc.externalArrivals = true;
    sc.seed = 3;
    return server::ServerSim(std::move(sc));
}

TEST(ServerLifecycle, CrashDestroysInFlightWorkLoudly)
{
    server::ServerSim srv = drivenServer();
    std::vector<std::uint64_t> aborted;
    std::uint64_t completions = 0;
    srv.onCompletion([&](std::uint64_t, sim::Tick) { ++completions; });
    srv.onAbort(
        [&](std::uint64_t id, sim::Tick) { aborted.push_back(id); });
    srv.start();

    srv.advanceTo(1 * kMs);
    for (std::uint64_t id = 1; id <= 6; ++id)
        srv.inject(id, 2 * kMs);
    EXPECT_EQ(srv.lifecycle(), server::Lifecycle::Up);
    EXPECT_EQ(srv.outstanding(), 6u);

    srv.scheduleCrash(1 * kMs + 500 * kUs);
    srv.scheduleRestart(3 * kMs, 4 * kMs);
    srv.advanceTo(2 * kMs);

    // Every in-flight request died with the crash — reported through
    // the abort hook, counted in aborted(), none completed.
    EXPECT_EQ(srv.lifecycle(), server::Lifecycle::Down);
    EXPECT_EQ(srv.aborted(), 6u);
    EXPECT_EQ(aborted.size(), 6u);
    EXPECT_EQ(srv.outstanding(), 0u);
    EXPECT_EQ(completions, 0u);

    // A Down server refuses admission: the abort hook fires on
    // arrival and the request is never accepted.
    srv.inject(7, 1 * kMs);
    EXPECT_EQ(aborted.size(), 7u);
    EXPECT_EQ(srv.accepted(), 6u);

    srv.advanceTo(3 * kMs + 500 * kUs);
    EXPECT_EQ(srv.lifecycle(), server::Lifecycle::Restarting);
    srv.inject(8, 1 * kMs); // still refusing until ready_at
    EXPECT_EQ(aborted.size(), 8u);

    srv.advanceTo(5 * kMs);
    EXPECT_EQ(srv.lifecycle(), server::Lifecycle::Up);
    srv.inject(9, 200 * kUs);
    srv.advanceTo(10 * kMs);
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(srv.completed(), 1u);

    // Conservation: accepted = completed + aborted + outstanding.
    EXPECT_EQ(srv.accepted(),
              srv.completed() + srv.aborted() + srv.outstanding());
}

TEST(ServerLifecycle, DrainStopsAdmissionButFinishesWork)
{
    server::ServerSim srv = drivenServer();
    std::vector<std::uint64_t> aborted;
    std::uint64_t completions = 0;
    srv.onCompletion([&](std::uint64_t, sim::Tick) { ++completions; });
    srv.onAbort(
        [&](std::uint64_t id, sim::Tick) { aborted.push_back(id); });
    srv.start();

    srv.advanceTo(1 * kMs);
    srv.inject(1, 1 * kMs);
    srv.scheduleDrain(1 * kMs + 100 * kUs);
    srv.advanceTo(1 * kMs + 200 * kUs);
    EXPECT_EQ(srv.lifecycle(), server::Lifecycle::Draining);

    // New arrivals bounce (the fleet fails them over)...
    srv.inject(2, 1 * kMs);
    ASSERT_EQ(aborted.size(), 1u);
    EXPECT_EQ(aborted[0], 2u);

    // ...but the outstanding request runs to completion: a drain
    // destroys nothing.
    srv.advanceTo(8 * kMs);
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(srv.aborted(), 0u);
    EXPECT_EQ(srv.outstanding(), 0u);
}

// ------------------------------------------------- fleet churn grid

std::string
alertsCsv(const obs::HealthReport &r)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    EXPECT_TRUE(r.writeAlertsCsv(f));
    std::fclose(f);
    std::string out(buf, len);
    free(buf);
    return out;
}

/** Fabric + NIC + health fleet with a scripted churn scenario — one
 *  crash, one drain, one edge flap, one core blackout — plus a mild
 *  stochastic crash hazard, under client timeout/backoff/failover. */
fleet::FleetConfig
churnFleet(unsigned threads, std::size_t shard_size, bool recovery = true)
{
    fleet::FleetConfig fc;
    fc.numServers = 8;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.20, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 10000.0;
    fc.warmup = 10 * kMs;
    fc.duration = 80 * kMs;
    fc.seed = 33;
    fc.fabric.enabled = true;
    fc.nic.enabled = true;
    fc.health.enabled = true;
    fc.faults.enabled = true;
    fc.faults.scripted = {
        {25 * kMs, 12 * kMs, fault::FaultKind::ServerCrash, 2},
        {35 * kMs, 10 * kMs, fault::FaultKind::ServerDrain, 5},
        {50 * kMs, 6 * kMs, fault::FaultKind::LinkFlap, 1},
        {70 * kMs, 1 * kMs, fault::FaultKind::LinkFlap,
         fault::kCoreLinkEntity},
    };
    fc.faults.crash.ratePerSec = 4.0;
    fc.faults.crash.mttr = 8 * kMs;
    fc.recovery.enabled = recovery;
    fc.threads = threads;
    fc.shardSize = shard_size;
    return fc;
}

TEST(FleetChurn, FailoverMasksFaultsAndTheAuditorStaysGreen)
{
    const fleet::FleetReport rep =
        fleet::FleetSim(churnFleet(1, 0)).run();

    ASSERT_GT(rep.dispatched, 1000u);
    // The crash and the flap forced re-dispatches: clients timed out
    // or saw aborts, backed off, and failed over.
    EXPECT_GT(rep.failovers, 0u);
    EXPECT_GT(rep.timeouts, 0u);
    // Failover masks most of the damage.
    EXPECT_GT(rep.completed, rep.dispatched * 9 / 10);

    // The extended conservation law held at every epoch boundary:
    // injected = completed + lostToDrop + lostToCrash + inFlight.
    ASSERT_TRUE(rep.health.enabled);
    EXPECT_GT(rep.health.audits, 50u);
    EXPECT_EQ(rep.health.auditViolations, 0u);
}

TEST(FleetChurn, WithoutRecoveryCrashLossIsCountedNotVanished)
{
    const fleet::FleetReport rep =
        fleet::FleetSim(churnFleet(1, 0, false)).run();

    ASSERT_GT(rep.dispatched, 1000u);
    // No failover: work destroyed by the crash (and refused while the
    // server was Down) lands in lostToCrash — a separate ledger from
    // congestion drops, and never an accounting hole.
    EXPECT_GT(rep.lostToCrash, 0u);
    EXPECT_EQ(rep.failovers, 0u);
    ASSERT_TRUE(rep.health.enabled);
    EXPECT_EQ(rep.health.auditViolations, 0u);
}

TEST(FleetChurn, ReportAndAlertLogBytesAreLayoutInvariant)
{
    struct Point
    {
        unsigned threads;
        std::size_t shardSize;
    };
    std::string ref_row, ref_alerts;
    bool first = true;
    for (const Point &p :
         std::vector<Point>{{1, 0}, {2, 7}, {8, 64}}) {
        fleet::FleetSim fleet(churnFleet(p.threads, p.shardSize));
        const fleet::FleetReport rep = fleet.run();
        ASSERT_GT(rep.dispatched, 1000u);
        ASSERT_TRUE(rep.health.enabled);
        EXPECT_EQ(rep.health.auditViolations, 0u);
        const std::string row = rep.csvRow();
        const std::string alerts = alertsCsv(rep.health);
        if (first) {
            ref_row = row;
            ref_alerts = alerts;
            first = false;
        } else {
            EXPECT_EQ(row, ref_row)
                << "threads=" << p.threads
                << " shardSize=" << p.shardSize;
            EXPECT_EQ(alerts, ref_alerts)
                << "threads=" << p.threads
                << " shardSize=" << p.shardSize;
        }
    }
}

// ------------------------------------------- extended audit law

obs::AuditSnapshot
crashySnapshot()
{
    obs::AuditSnapshot s;
    s.now = 10 * kMs;
    s.flightsCreated = 100;
    s.flightsFinished = 99;
    s.flightsInFlight = 1;
    s.dispatched = 90;
    s.completed = 80;
    s.lost = 4;
    s.lostToCrash = 5;
    s.measuredInFlight = 1;
    return s;
}

TEST(FaultAudit, CrashLossBalancesTheRequestLaw)
{
    obs::Auditor a(obs::AuditConfig{});
    a.audit(crashySnapshot());
    EXPECT_EQ(a.violationCount(), 0u);

    // Silently vanish the crashed work: the law breaks immediately.
    obs::AuditSnapshot bad = crashySnapshot();
    bad.lostToCrash = 0;
    a.audit(bad);
    EXPECT_EQ(a.violations(obs::AuditCheck::FleetRequests), 1u);
}

TEST(FaultAuditDeathTest, VanishedCrashLossAbortsUnderFailFast)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    obs::AuditConfig ac;
    ac.failFast = true;
    obs::Auditor a(ac);
    obs::AuditSnapshot bad = crashySnapshot();
    bad.lostToCrash = 2; // three crash losses swept under the rug
    EXPECT_DEATH(a.audit(bad), "fleet_requests");
}

} // namespace
} // namespace apc
